package haralick4d

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"haralick4d/internal/dataset"
)

// chaosDims gives 48 slices across four default chunks, so a single lost
// slice degrades one chunk and leaves three intact for the oracle check.
var chaosDims = [4]int{24, 24, 6, 8}

// chaosDataset writes a phantom study and, when corrupt is set, damages one
// slice file (a byte flip only the checksum catches), returning the dataset
// directory and the damaged slice ids.
func chaosDataset(t *testing.T, corrupt bool) (string, []int) {
	t.Helper()
	dir := t.TempDir()
	v := GeneratePhantom(PhantomConfig{Dims: chaosDims, Seed: 11})
	if err := WriteDataset(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	if !corrupt {
		return dir, nil
	}
	damaged, err := dataset.CorruptSlices(dir, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, f := range damaged {
		var tt, z int
		if _, err := fmt.Sscanf(filepath.Base(f), "slice_t%04d_z%04d.raw", &tt, &z); err != nil {
			t.Fatalf("damaged file %q: %v", f, err)
		}
		ids = append(ids, tt*chaosDims[2]+z)
	}
	sort.Ints(ids)
	return dir, ids
}

func TestAnalyzeDatasetFailFastOnCorruption(t *testing.T) {
	dir, _ := chaosDataset(t, true)
	// FailFast is the zero value: any damaged slice aborts the run.
	_, err := AnalyzeDataset(dir, smallOpts(3))
	if !errors.Is(err, ErrDegradedData) {
		t.Fatalf("fail-fast err = %v, want ErrDegradedData", err)
	}
}

func TestAnalyzeDatasetSkipDegraded(t *testing.T) {
	cleanDir, _ := chaosDataset(t, false)
	ref, err := AnalyzeDataset(cleanDir, smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	dir, wantSlices := chaosDataset(t, true)
	opts := smallOpts(3)
	opts.ReadAhead = 2
	opts.FaultPolicy = SkipDegraded
	res, err := AnalyzeDataset(dir, opts)
	if err != nil {
		t.Fatalf("skip-degraded run: %v", err)
	}
	d := res.Degraded
	if d == nil {
		t.Fatal("Result.Degraded not populated")
	}
	if !reflect.DeepEqual(d.Slices, wantSlices) {
		t.Errorf("degraded slices = %v, want %v", d.Slices, wantSlices)
	}
	if d.Chunks != len(d.ROIs) || d.Chunks == 0 {
		t.Errorf("degraded chunks = %d with %d ROIs", d.Chunks, len(d.ROIs))
	}
	sum := 0
	for _, roi := range d.ROIs {
		n := 1
		for k := 0; k < 4; k++ {
			n *= roi[1][k] - roi[0][k]
		}
		sum += n
	}
	total := res.OutputDims[0] * res.OutputDims[1] * res.OutputDims[2] * res.OutputDims[3]
	if d.Voxels != sum || d.Voxels <= 0 || d.Voxels >= total {
		t.Fatalf("degraded voxels = %d (ROIs sum %d, grid total %d), want a proper subset", d.Voxels, sum, total)
	}
	inROI := func(x, y, z, tt int) bool {
		p := [4]int{x, y, z, tt}
		for _, roi := range d.ROIs {
			inside := true
			for k := 0; k < 4; k++ {
				if p[k] < roi[0][k] || p[k] >= roi[1][k] {
					inside = false
					break
				}
			}
			if inside {
				return true
			}
		}
		return false
	}
	// Outside the reported ROIs the output must be bit-identical to the
	// clean run; inside it must stay unwritten.
	for _, f := range PaperFeatures() {
		got, want := res.Grids[f], ref.Grids[f]
		if got == nil {
			t.Fatalf("%v: grid missing", f)
		}
		for tt := 0; tt < res.OutputDims[3]; tt++ {
			for z := 0; z < res.OutputDims[2]; z++ {
				for y := 0; y < res.OutputDims[1]; y++ {
					for x := 0; x < res.OutputDims[0]; x++ {
						g, w := got.At(x, y, z, tt), want.At(x, y, z, tt)
						if inROI(x, y, z, tt) {
							if g != 0 {
								t.Fatalf("%v: degraded voxel (%d,%d,%d,%d) written: %v", f, x, y, z, tt, g)
							}
						} else if g != w {
							t.Fatalf("%v: clean voxel (%d,%d,%d,%d) = %v, want %v", f, x, y, z, tt, g, w)
						}
					}
				}
			}
		}
	}
}

package haralick4d

import (
	"math"
	"testing"
)

func phantom(t testing.TB) *Volume {
	t.Helper()
	return GeneratePhantom(PhantomConfig{Dims: [4]int{24, 24, 5, 6}, Seed: 11})
}

func smallOpts(par int) *Options {
	return &Options{
		ROI:         [4]int{5, 5, 2, 2},
		GrayLevels:  16,
		Parallelism: par,
	}
}

func TestAnalyzeSequential(t *testing.T) {
	res, err := Analyze(phantom(t), smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputDims != [4]int{20, 20, 4, 5} {
		t.Fatalf("OutputDims = %v", res.OutputDims)
	}
	if len(res.Grids) != len(PaperFeatures()) {
		t.Fatalf("got %d grids", len(res.Grids))
	}
	for f, g := range res.Grids {
		if g.Dims != res.OutputDims {
			t.Errorf("%v dims %v", f, g.Dims)
		}
		for _, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v has NaN/Inf", f)
			}
		}
	}
	// ASM must lie in (0, 1].
	asm := res.Grids[ASM]
	for _, v := range asm.Data {
		if v <= 0 || v > 1 {
			t.Fatalf("ASM value %v out of range", v)
		}
	}
}

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	v := phantom(t)
	seq, err := Analyze(v, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(v, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := seq.Grids[f], par.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d: %v != %v", f, i, a.Data[i], b.Data[i])
			}
		}
	}
}

func TestAnalyzeDefaultsAndErrors(t *testing.T) {
	// Defaults (paper config) on a dataset smaller than the default ROI
	// must fail cleanly.
	v := NewVolume([4]int{8, 8, 2, 2})
	if _, err := Analyze(v, nil); err == nil {
		t.Error("default ROI larger than dataset accepted")
	}
	// Invalid options are rejected.
	if _, err := Analyze(v, &Options{GrayLevels: 1}); err == nil {
		t.Error("invalid gray levels accepted")
	}
}

func TestAnalyzeDatasetRoundTrip(t *testing.T) {
	v := phantom(t)
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeDataset(dir, smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	// Disk-resident analysis must equal the in-memory path. (The dataset
	// header preserves the global min/max, so requantization agrees.)
	mem, err := Analyze(v, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := mem.Grids[f], res.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d differs between memory and disk paths", f, i)
			}
		}
	}
}

func TestAnalyzeDatasetMissing(t *testing.T) {
	if _, err := AnalyzeDataset(t.TempDir(), smallOpts(1)); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestFeatureHelpers(t *testing.T) {
	if len(AllFeatures()) != 14 {
		t.Error("AllFeatures != 14")
	}
	if len(PaperFeatures()) != 4 {
		t.Error("PaperFeatures != 4")
	}
	f, err := ParseFeature("entropy")
	if err != nil || f != Entropy {
		t.Error("ParseFeature failed")
	}
	if Version == "" {
		t.Error("empty version")
	}
}

func TestAllFourteenFeatures(t *testing.T) {
	opts := smallOpts(2)
	opts.Features = AllFeatures()
	res, err := Analyze(phantom(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grids) != 14 {
		t.Fatalf("got %d grids", len(res.Grids))
	}
	for f, g := range res.Grids {
		for _, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %v produced NaN/Inf", f)
			}
		}
	}
}

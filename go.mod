module haralick4d

go 1.22

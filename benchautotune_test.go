package haralick4d

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// autotuneScenario is one BENCH_autotune.json workload: a dataset behind an
// injected per-read latency plus an analysis config, pipelined with the
// given texture copy count. Static and tuned runs share every parameter;
// the only difference is whether the feedback controller is attached.
type autotuneScenario struct {
	name      string
	dims      [4]int
	readDelay time.Duration
	analysis  core.Config
	copies    int
}

// runScenario builds and runs the HMP pipeline over the scenario's dataset,
// returning elapsed wall time, the collected grids, and the attached report
// when tuned.
func runScenario(t *testing.T, sc *autotuneScenario, dir string, tuned bool) (time.Duration, map[features.Feature]*volume.FloatGrid, *autotune.Controller) {
	t.Helper()
	var reads atomic.Int64
	be := dataset.WrapObjects(dataset.NewLocalBackend(dir, 0), func(name string, r io.ReaderAt) io.ReaderAt {
		return countingReaderAt{r: &fault.SlowReaderAt{R: r, Delay: sc.readDelay}, n: &reads}
	})
	st, err := dataset.OpenBackend(context.Background(), be)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var ctrl *autotune.Controller
	if tuned {
		ctrl = autotune.New(autotune.Config{Seed: 1, Interval: 10 * time.Millisecond})
	}
	cfg := &pipeline.Config{
		Analysis:  sc.analysis,
		Impl:      pipeline.HMPImpl,
		Policy:    filter.DemandDriven,
		Output:    pipeline.OutputCollect,
		ReadAhead: 1, // the conservative static depth both runs start from
		AutoTune:  ctrl,
	}
	layout := &pipeline.Layout{HMPNodes: make([]int, sc.copies)}
	g, sink, _, err := pipeline.Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := pipeline.Run(g, pipeline.EngineLocal, &pipeline.RunOptions{AutoTune: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(cfg.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	grids := map[features.Feature]*volume.FloatGrid{}
	for _, f := range cfg.Analysis.Features {
		grids[f] = sink.Grid(f)
	}
	t.Logf("reads=%d tuned=%v", reads.Load(), tuned)
	return rs.Elapsed, grids, ctrl
}

type countingReaderAt struct {
	r io.ReaderAt
	n *atomic.Int64
}

func (c countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.n.Add(1)
	return c.r.ReadAt(p, off)
}

func sameGrids(t *testing.T, name string, a, b map[features.Feature]*volume.FloatGrid) {
	t.Helper()
	for f, ga := range a {
		gb := b[f]
		if gb == nil || ga.Dims != gb.Dims || len(ga.Data) != len(gb.Data) {
			t.Fatalf("%s: feature %v grids differ in shape", name, f)
		}
		for i := range ga.Data {
			if ga.Data[i] != gb.Data[i] {
				t.Fatalf("%s: feature %v voxel %d differs between static and tuned runs", name, f, i)
			}
		}
	}
}

type autotuneBenchRow struct {
	StaticNS  int64          `json:"static_ns"`
	TunedNS   int64          `json:"tuned_ns"`
	Speedup   float64        `json:"speedup"`
	Decisions int            `json:"decisions"`
	Final     map[string]int `json:"final"`
}

// TestWriteAutotuneBenchJSON measures the live controller's effect on an
// I/O-bound and a compute-bound pipeline configuration and writes
// BENCH_autotune.json. Both runs of each scenario start from the same
// conservative configuration (read-ahead depth 1); the tuned run additionally
// attaches the feedback controller. Outputs are asserted bit-identical —
// tuning changes scheduling only.
//
//	HARALICK4D_BENCH_AUTOTUNE_OUT=$PWD/BENCH_autotune.json go test -run TestWriteAutotuneBenchJSON
func TestWriteAutotuneBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_AUTOTUNE_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_AUTOTUNE_OUT to regenerate BENCH_autotune.json")
	}
	scenarios := []*autotuneScenario{
		{
			// I/O-bound: every slice read eats 8 ms of injected latency over a
			// 144-slice dataset while the texture kernel is cheap, so wall
			// time is read time. A static depth-1 run leaves most of the read
			// latency exposed; the controller's win is raising the prefetch
			// depth until reads overlap (a static sweep of this config shows
			// ~2x between depth 1 and depth 8).
			name:      "io_bound",
			dims:      [4]int{24, 24, 12, 12},
			readDelay: 8 * time.Millisecond,
			analysis: core.Config{
				ROI: [4]int{4, 4, 2, 2}, GrayLevels: 8, NDim: 4, Distance: 1,
				Features: features.PaperSet(),
			},
			copies: 2,
		},
		{
			// Compute-bound: the full 40-direction 4D set over ROI 6x6x3x3 at
			// G=32 dominates wall time; reads (144 slices at 5 ms) are the
			// minority share. A single texture copy keeps the admission knob
			// out of play — the controller's modest win is overlapping the
			// residual read latency the static depth-1 run leaves exposed.
			name:      "compute_bound",
			dims:      [4]int{32, 32, 12, 12},
			readDelay: 5 * time.Millisecond,
			analysis: core.Config{
				ROI: [4]int{6, 6, 3, 3}, GrayLevels: 32, NDim: 4, Distance: 1,
				Features: features.PaperSet(),
			},
			copies: 1,
		},
	}
	const reps = 3
	rows := map[string]autotuneBenchRow{}
	for _, sc := range scenarios {
		v := synthetic.Generate(synthetic.Config{Dims: sc.dims, Seed: 11})
		dir := t.TempDir()
		if _, err := dataset.Write(dir, v, 3); err != nil {
			t.Fatal(err)
		}
		var static, tuned time.Duration
		var grids, tunedGrids map[features.Feature]*volume.FloatGrid
		var ctrl *autotune.Controller
		// Alternate static/tuned repetitions so slow host drift hits both.
		for i := 0; i < reps; i++ {
			runtime.GC()
			ds, dg, _ := runScenario(t, sc, dir, false)
			runtime.GC()
			dt, tg, c := runScenario(t, sc, dir, true)
			if i == 0 || ds < static {
				static = ds
			}
			if i == 0 || dt < tuned {
				tuned = dt
			}
			grids, tunedGrids, ctrl = dg, tg, c
		}
		sameGrids(t, sc.name, grids, tunedGrids)
		decisions := ctrl.Decisions()
		final := map[string]int{}
		for _, d := range decisions {
			final[d.Knob] = d.To
		}
		row := autotuneBenchRow{
			StaticNS:  int64(static),
			TunedNS:   int64(tuned),
			Speedup:   float64(static) / float64(tuned),
			Decisions: len(decisions),
			Final:     final,
		}
		rows[sc.name] = row
		t.Logf("%-13s static %v, tuned %v: %.2fx (%d decisions, final %v)",
			sc.name, static, tuned, row.Speedup, row.Decisions, row.Final)
		if row.Speedup < 1 {
			t.Errorf("%s: autotuned run slower than static (%.2fx) — rerun on a quiet host", sc.name, row.Speedup)
		}
	}
	doc := struct {
		GeneratedBy string                      `json:"generated_by"`
		Host        map[string]any              `json:"host"`
		Workload    string                      `json:"workload"`
		Results     map[string]autotuneBenchRow `json:"results"`
		Notes       []string                    `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteAutotuneBenchJSON (HARALICK4D_BENCH_AUTOTUNE_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: "HMP pipeline over a disk-resident phantom behind injected per-read latency; static and tuned runs both start at read-ahead depth 1, min of 3 alternating repetitions",
		Results:  rows,
		Notes: []string{
			"io_bound: 8 ms per slice read over 144 slices, cheap kernel (ROI 4x4x2x2, G=8), 2 texture copies — wall time is read latency, the controller buys overlap by raising the prefetch depth",
			"compute_bound: 5 ms per slice read, full 40-direction 4D set over ROI 6x6x3x3 at G=32, single texture copy (admission knob idle) — compute dominates; the controller overlaps the residual exposed read latency",
			"speedup = static_ns / tuned_ns; both runs share every configuration value, the tuned run only adds the feedback controller (seed 1, 10 ms ticks)",
			"outputs are asserted bit-identical between static and tuned runs before the row is written — tuning turns scheduling knobs only",
			"final is the last logged value per knob; decisions counts init records and every accepted/reverted move",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestAutotuneBenchBaselineShape pins the committed BENCH_autotune.json:
// host metadata, a row per scenario, and the headline claim — the autotuned
// run is at least as fast as the static run on both the I/O-bound and the
// compute-bound configuration, with tuning decisions actually logged.
func TestAutotuneBenchBaselineShape(t *testing.T) {
	raw, err := os.ReadFile("BENCH_autotune.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc struct {
		Host    map[string]any              `json:"host"`
		Results map[string]autotuneBenchRow `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	for _, name := range []string{"io_bound", "compute_bound"} {
		row, ok := doc.Results[name]
		if !ok {
			t.Errorf("results lack scenario %q", name)
			continue
		}
		if row.StaticNS <= 0 || row.TunedNS <= 0 {
			t.Errorf("%s: non-positive timings (%d, %d)", name, row.StaticNS, row.TunedNS)
		}
		if row.Speedup < 1 {
			t.Errorf("%s: speedup %.3f < 1 (regenerate BENCH_autotune.json on a quiet host)", name, row.Speedup)
		}
		if row.Decisions == 0 {
			t.Errorf("%s: no tuning decisions logged", name)
		}
		if _, ok := row.Final["readahead"]; !ok {
			t.Errorf("%s: final knob values lack readahead: %v", name, row.Final)
		}
	}
}

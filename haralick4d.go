// Package haralick4d implements parallel 4-dimensional Haralick texture
// analysis for disk-resident image datasets, reproducing Woods, Clymer,
// Saltz and Kurc (SC 2004).
//
// The analysis rasters a region-of-interest (ROI) window over a 4D (x, y,
// z, t) image dataset; for each ROI it computes a gray-level co-occurrence
// matrix and derives up to fourteen Haralick textural parameters, producing
// one 4D parameter image per feature. Datasets too large for one machine
// are declustered across storage nodes and processed by a filter-stream
// pipeline (a DataCutter-style middleware, see internal/filter) with
// configurable task- and data-parallelism.
//
// This package is the façade over the building blocks in internal/: use
// Analyze for in-memory volumes, AnalyzeDataset for disk-resident datasets
// created with WriteDataset, and GeneratePhantom for synthetic DCE-MRI test
// studies. Lower-level control (filter placement, execution engines, the
// simulated cluster) is available through the internal packages and the
// cmd/ tools.
package haralick4d

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/checkpoint"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/resilience"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// Feature identifies one of Haralick's fourteen textural parameters.
type Feature = features.Feature

// The fourteen Haralick parameters (f1–f14).
const (
	ASM                 = features.ASM
	Contrast            = features.Contrast
	Correlation         = features.Correlation
	Variance            = features.Variance
	IDM                 = features.IDM
	SumAverage          = features.SumAverage
	SumVariance         = features.SumVariance
	SumEntropy          = features.SumEntropy
	Entropy             = features.Entropy
	DifferenceVariance  = features.DifferenceVariance
	DifferenceEntropy   = features.DifferenceEntropy
	InfoCorrelation1    = features.InfoCorrelation1
	InfoCorrelation2    = features.InfoCorrelation2
	MaxCorrelationCoeff = features.MaxCorrelationCoeff
)

// AllFeatures returns all fourteen parameters in f1–f14 order.
func AllFeatures() []Feature { return features.All() }

// PaperFeatures returns the four parameters used throughout the paper's
// evaluation: angular second moment, correlation, sum of squares (variance)
// and inverse difference moment.
func PaperFeatures() []Feature { return features.PaperSet() }

// ParseFeature returns the feature with the given canonical name (e.g.
// "asm", "contrast", "max-correlation-coeff").
func ParseFeature(name string) (Feature, error) { return features.Parse(name) }

// Representation selects the co-occurrence matrix storage scheme.
type Representation = core.Representation

// The three storage schemes studied by the paper.
const (
	// FullMatrix is the dense G×G array with the zero-skip parameter
	// calculation (the paper's optimized full representation).
	FullMatrix = core.FullMatrix
	// FullMatrixNoSkip disables the zero test (ablation baseline).
	FullMatrixNoSkip = core.FullMatrixNoSkip
	// SparseMatrix stores only non-zero entries and computes parameters
	// directly from the sparse form.
	SparseMatrix = core.SparseMatrix
)

// KernelMode selects the GLCM accumulation kernel of the parallel
// intra-chunk scan (see Options.Kernel).
type KernelMode = core.KernelMode

// The three kernel modes.
const (
	// KernelAuto (default) uses the cache-blocked, direction-batched kernel
	// whenever the scan geometry supports it, falling back to the legacy
	// sliding-window kernels otherwise.
	KernelAuto = core.KernelAuto
	// KernelBlocked requests the blocked kernel explicitly (unsupported
	// geometries still fall back per worker).
	KernelBlocked = core.KernelBlocked
	// KernelLegacy forces the per-direction legacy kernels everywhere.
	KernelLegacy = core.KernelLegacy
)

// ParseKernelMode returns the kernel mode with the given canonical name
// ("auto", "blocked", "legacy").
func ParseKernelMode(s string) (KernelMode, error) { return core.ParseKernelMode(s) }

// Volume is a raw 4D image dataset of 2-byte voxels with dimensions
// (X, Y, Z, T), x varying fastest.
type Volume = volume.Volume

// FloatGrid is a 4D grid of float64 values — one per ROI position — the
// output type of the analysis.
type FloatGrid = volume.FloatGrid

// NewVolume allocates a zeroed volume with the given dimensions.
func NewVolume(dims [4]int) *Volume { return volume.NewVolume(dims) }

// Options configures an analysis. The zero value is the paper's
// configuration: 16×16×3×3 ROI, 32 gray levels, distance-1 displacements in
// all 40 unique 4D directions, the paper's four parameters, and the
// optimized full-matrix representation.
type Options struct {
	// ROI is the region-of-interest window shape (x, y, z, t).
	// Zero value: 16×16×3×3, the paper's window.
	ROI [4]int
	// GrayLevels is the requantization level count G (co-occurrence
	// matrices are G×G). Zero value: 32; valid range [2, 256].
	GrayLevels int
	// NDim selects the direction-set dimensionality (1–4).
	// Zero value: 4 (all 40 unique 4D directions).
	NDim int
	// Distance is the voxel-pair displacement magnitude. Zero value: 1.
	Distance int
	// Features are the Haralick parameters to compute. Zero value (nil):
	// the paper's four (ASM, correlation, variance, IDM).
	Features []Feature
	// Representation selects the matrix storage scheme. Zero value:
	// FullMatrix, the paper's optimized full representation.
	Representation Representation
	// Parallelism is the number of parallel texture filter copies; 0 uses
	// all CPUs, 1 forces the sequential reference path.
	Parallelism int
	// KernelWorkers bounds the intra-chunk parallelism inside each texture
	// filter: ROI raster rows are striped across this many workers, whose
	// per-row kernel reuses overlapping-window work (sliding-window GLCM
	// updates). 0 uses all CPUs, 1 forces the sequential reference kernel.
	// Outputs are bit-identical at every setting.
	KernelWorkers int
	// Kernel selects the GLCM accumulation kernel those workers run. The
	// zero value, KernelAuto, enables the cache-blocked, direction-batched
	// kernel by default; KernelLegacy restores the per-direction kernels.
	// The sequential reference path (KernelWorkers 1) is always legacy, and
	// outputs are bit-identical across modes.
	Kernel KernelMode
	// KernelBlock bounds the x extent of the blocked kernel's accumulation
	// runs (an L1 tile width in voxels) for ROIs whose rows outgrow the
	// cache. 0 — the default — leaves rows untiled.
	KernelBlock int
	// DisableMetrics turns off the run's observability layer; Result.Report
	// stays nil. Metrics are on by default and cost a few atomic operations
	// per stream buffer.
	DisableMetrics bool
	// ReadAhead is the number of I/O windows the dataset readers fetch and
	// decode ahead of the pipeline (AnalyzeDataset only). 0 — the default —
	// reads synchronously; any depth produces bit-identical outputs.
	ReadAhead int
	// FaultPolicy selects how AnalyzeDataset handles degraded slices —
	// checksum mismatches, truncated or missing files. FailFast (the zero
	// value) aborts with an error matching ErrDegradedData; SkipDegraded
	// completes the healthy remainder of the dataset, leaves the affected
	// output voxels zero and reports them in Result.Degraded. SkipDegraded
	// also enables copy failover in the runtime so a crashed filter copy
	// degrades the run instead of killing it.
	FaultPolicy FaultPolicy
	// Retry bounds reconnect-and-retransmit on engines with real transport
	// faults. The local engine AnalyzeDataset uses has none, so this is
	// carried for callers driving the TCP engine through the pipeline
	// package; nil keeps single-shot sends.
	Retry *RetryPolicy
	// Checkpoint is the path of a durable progress journal (AnalyzeDataset
	// only): every assembled output portion is recorded there as it lands,
	// so a crashed or killed run can be continued with Resume instead of
	// restarted. Empty disables checkpointing.
	Checkpoint string
	// CheckpointInterval is the journal's fsync cadence: records are written
	// through on every append but only forced to stable storage this often
	// (plus once on Close). 0 selects the 1s default; larger values trade
	// crash-window size for fewer fsyncs. Must not be negative.
	CheckpointInterval time.Duration
	// Resume reopens the Checkpoint journal from an earlier run of the same
	// configuration: verified recovered portions are trusted, fully-durable
	// chunks are never re-read or recomputed, and the final Result is
	// bit-identical to an uninterrupted run. Requires Checkpoint.
	Resume bool
	// StallTimeout arms a watchdog over the run: if no filter copy anywhere
	// makes progress for this long, the run fails with an error matching
	// ErrStalled that names the wedged copies — instead of hanging forever
	// on, say, a dead NFS mount. It is a global no-progress deadline, not a
	// per-operation one; it must comfortably exceed the longest single
	// read/compute the run can legitimately perform. 0 disables.
	StallTimeout time.Duration
	// CacheBlocks layers a fixed-size block cache between the dataset
	// backend and the readers (AnalyzeDataset only): a shared LRU budget of
	// this many blocks. 0 — the default — disables caching; negative is
	// invalid. Most useful with remote (http) dataset URLs, where a hit
	// saves a network round trip.
	CacheBlocks int
	// CacheBlockSize is the cache's block granularity in bytes; 0 selects
	// the 128 KiB default. Requires CacheBlocks > 0.
	CacheBlockSize int
	// Resilience arms failure-control on the dataset backend (AnalyzeDataset
	// only): a circuit breaker fast-failing calls while the backend is sick,
	// a shared retry budget capping total retry traffic, and hedged range
	// reads for tail latency. Nil — the default — keeps the plain retry
	// behavior. Most useful with remote (http) dataset URLs.
	Resilience *ResiliencePolicy
	// ServeStale, while the backend breaker is open, converts unavailable
	// slice reads into degraded slices (still served from cache when a
	// block-cache holds them) instead of failing the run. Requires
	// FaultPolicy SkipDegraded, which is what makes degraded slices
	// survivable. AnalyzeDataset only.
	ServeStale bool
	// Deadline bounds the whole analysis in wall-clock time (AnalyzeDataset
	// only): it is propagated as a context deadline into every backend read,
	// so an overrunning run fails with context.DeadlineExceeded instead of
	// hanging. 0 disables.
	Deadline time.Duration
	// AutoTune runs the online feedback controller during the pipeline run:
	// reader prefetch depth and texture compute admission are resized live
	// from periodic progress snapshots (hill climbing with hysteresis), and
	// the decisions appear in Result.Report.Tuning. Tuning changes
	// scheduling only — outputs are bit-identical to an untuned run.
	// Requires metrics; ignored by the sequential reference path
	// (Parallelism 1 in Analyze), which has nothing to actuate.
	AutoTune bool
	// AutoTuneInterval is the controller's sampling period; 0 selects the
	// 100 ms default. Requires AutoTune.
	AutoTuneInterval time.Duration
	// AutoTuneSeed fixes the controller's tie-break RNG so a given metric
	// trace reproduces the same decisions; 0 selects seed 1. Requires
	// AutoTune.
	AutoTuneSeed int64
	// Progress, when non-nil, is called with a live cumulative progress
	// summary every ProgressInterval while a pipeline run is in flight —
	// the export point for job-status APIs (the serve daemon streams these
	// per job). Calls happen on a dedicated goroutine; the callback must
	// not block for long and must tolerate being called zero times on very
	// short runs. Requires metrics; ignored by the sequential reference
	// path, which has no live counters to sample.
	Progress func(Progress)
	// ProgressInterval is the sampling period; 0 selects the 500 ms
	// default. Requires Progress.
	ProgressInterval time.Duration
}

// Progress is the compact cumulative progress summary delivered to
// Options.Progress (see internal/metrics.Progress for field semantics).
type Progress = metrics.Progress

// DefaultProgressInterval is the Options.Progress sampling period when
// ProgressInterval is zero.
const DefaultProgressInterval = 500 * time.Millisecond

// Validate checks the options and reports the first problem — the same
// error an Analyze call would return before doing any work. It does not
// modify o; zero-valued fields are valid and select the documented
// defaults.
func (o *Options) Validate() error {
	_, err := o.coreConfig()
	if err != nil {
		return err
	}
	if err := o.validateRestart(); err != nil {
		return err
	}
	if err := o.validateBackend(); err != nil {
		return err
	}
	if err := o.validateAutoTune(); err != nil {
		return err
	}
	return o.validateProgress()
}

// validateProgress checks the live-progress option subset.
func (o *Options) validateProgress() error {
	if o == nil {
		return nil
	}
	if o.ProgressInterval < 0 {
		return fmt.Errorf("haralick4d: ProgressInterval must not be negative")
	}
	if o.Progress == nil {
		if o.ProgressInterval > 0 {
			return fmt.Errorf("haralick4d: ProgressInterval set without a Progress callback")
		}
		return nil
	}
	if o.DisableMetrics {
		return fmt.Errorf("haralick4d: Progress needs the metrics it samples (unset DisableMetrics)")
	}
	return nil
}

// progressMonitor adapts the Progress callback into the filter runtime's
// Monitor hook: a ticker loop sampling the live probe until the run ends.
func (o *Options) progressMonitor() func(stop <-chan struct{}, p filter.Probe) {
	if o == nil || o.Progress == nil {
		return nil
	}
	fn, interval := o.Progress, o.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return func(stop <-chan struct{}, p filter.Probe) {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				fn(p.Snapshot().Progress())
			}
		}
	}
}

// validateAutoTune checks the online-tuning option subset.
func (o *Options) validateAutoTune() error {
	if o == nil {
		return nil
	}
	if o.AutoTuneInterval < 0 {
		return fmt.Errorf("haralick4d: AutoTuneInterval must not be negative")
	}
	if !o.AutoTune {
		if o.AutoTuneInterval > 0 {
			return fmt.Errorf("haralick4d: AutoTuneInterval set without AutoTune")
		}
		if o.AutoTuneSeed != 0 {
			return fmt.Errorf("haralick4d: AutoTuneSeed set without AutoTune")
		}
		return nil
	}
	if o.DisableMetrics {
		return fmt.Errorf("haralick4d: AutoTune needs the metrics the controller feeds on (unset DisableMetrics)")
	}
	return nil
}

// controller builds the run's autotune controller, or nil when tuning is
// off. cacheStats, when non-nil, feeds the block-cache hit/miss counters
// into each snapshot the controller sees.
func (o *Options) controller(cacheStats func() (hits, misses int64)) *autotune.Controller {
	if o == nil || !o.AutoTune {
		return nil
	}
	return autotune.New(autotune.Config{
		Seed:       o.AutoTuneSeed,
		Interval:   o.AutoTuneInterval,
		CacheStats: cacheStats,
	})
}

// validateBackend checks the dataset-backend option subset.
func (o *Options) validateBackend() error {
	if o == nil {
		return nil
	}
	if o.CacheBlocks < 0 {
		return fmt.Errorf("haralick4d: CacheBlocks must not be negative")
	}
	if o.CacheBlockSize < 0 {
		return fmt.Errorf("haralick4d: CacheBlockSize must not be negative")
	}
	if o.CacheBlockSize > 0 && o.CacheBlocks == 0 {
		return fmt.Errorf("haralick4d: CacheBlockSize set without a CacheBlocks budget")
	}
	return nil
}

// validateResilience checks the resilience option subset.
func (o *Options) validateResilience() error {
	if o == nil {
		return nil
	}
	if o.Deadline < 0 {
		return fmt.Errorf("haralick4d: Deadline must not be negative")
	}
	if o.ServeStale && o.FaultPolicy != SkipDegraded {
		return fmt.Errorf("haralick4d: ServeStale requires FaultPolicy SkipDegraded (stale reads surface as degraded slices)")
	}
	return nil
}

// validateRestart checks the checkpoint/watchdog option subset.
func (o *Options) validateRestart() error {
	if o == nil {
		return nil
	}
	if o.CheckpointInterval < 0 {
		return fmt.Errorf("haralick4d: CheckpointInterval must not be negative")
	}
	if o.CheckpointInterval > 0 && o.Checkpoint == "" {
		return fmt.Errorf("haralick4d: CheckpointInterval set without a Checkpoint path")
	}
	if o.Resume && o.Checkpoint == "" {
		return fmt.Errorf("haralick4d: Resume requires a Checkpoint path")
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("haralick4d: StallTimeout must not be negative")
	}
	return nil
}

func (o *Options) coreConfig() (core.Config, error) {
	var cfg core.Config
	if o != nil {
		cfg = core.Config{
			ROI:            o.ROI,
			GrayLevels:     o.GrayLevels,
			NDim:           o.NDim,
			Distance:       o.Distance,
			Features:       o.Features,
			Representation: o.Representation,
			Workers:        o.KernelWorkers,
			Kernel:         o.Kernel,
			KernelBlock:    o.KernelBlock,
		}
	}
	err := cfg.Validate()
	return cfg, err
}

func (o *Options) workers() int {
	if o == nil || o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// FaultPolicy selects how dataset-level faults are handled (see
// Options.FaultPolicy).
type FaultPolicy = fault.Policy

// The two fault policies.
const (
	// FailFast aborts the analysis on the first degraded slice (default).
	FailFast = fault.FailFast
	// SkipDegraded completes the healthy remainder and reports the damage.
	SkipDegraded = fault.SkipDegraded
)

// RetryPolicy bounds transport retries (see internal/filter.RetryPolicy).
type RetryPolicy = filter.RetryPolicy

// ResiliencePolicy configures the failure-control primitives — circuit
// breaker, shared retry budget, hedged reads (see
// internal/resilience.Policy). Parse flag-style specs with
// resilience.ParseBreaker / resilience.ParseBudget.
type ResiliencePolicy = resilience.Policy

// Typed failures an analysis can return; match with errors.Is.
var (
	// ErrDegradedData marks per-slice data failures: checksum mismatch,
	// truncation, missing file.
	ErrDegradedData = dataset.ErrDegradedData
	// ErrBackendUnavailable marks transport- or storage-layer failures of a
	// dataset backend (an unreachable HTTP server, exhausted retries). It is
	// distinct from ErrDegradedData: it says nothing about any one slice, so
	// SkipDegraded never skips past it — the run aborts.
	ErrBackendUnavailable = dataset.ErrBackendUnavailable
	// ErrCopyFailed marks a filter-copy crash the runtime could not absorb.
	ErrCopyFailed = filter.ErrCopyFailed
	// ErrAllCopiesDead marks the terminal failover state: every copy of a
	// filter has crashed.
	ErrAllCopiesDead = filter.ErrAllCopiesDead
	// ErrStalled marks a run killed by the Options.StallTimeout watchdog;
	// the full error names the copies that stopped making progress.
	ErrStalled = filter.ErrStalled
	// ErrCheckpointMismatch marks a Resume against a journal written by a
	// run with a different configuration.
	ErrCheckpointMismatch = checkpoint.ErrMismatch
	// ErrCheckpointCorrupt marks a journal whose checksummed body holds
	// semantically invalid records — damage a torn tail cannot explain.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
)

// RestartSummary reports what a resumed analysis recovered from its journal
// (see Result.Restart).
type RestartSummary = pipeline.RestartSummary

// DegradedSummary reports what a SkipDegraded analysis had to drop.
type DegradedSummary struct {
	// Slices are the global slice ids (t·Z + z) that failed to read, sorted.
	Slices []int
	// Chunks is the number of texture chunks poisoned by those slices.
	Chunks int
	// ROIs are the [Lo, Hi) output boxes left zero, one per degraded chunk
	// in chunk order.
	ROIs [][2][4]int
	// Voxels is the total output voxel count left zero per feature.
	Voxels int
}

// RunReport is the structured observability report of one analysis run:
// per-filter busy/blocked/stalled times and span decompositions (read,
// assemble, compute, emit, write), per-stream traffic, network activity
// under the TCP engine, dataset-backend I/O and cache counters, and a
// pipeline-wide critical-path summary. It serializes to JSON via
// encoding/json or its JSON method.
type RunReport = metrics.RunReport

// Result holds the assembled parameter images of one analysis.
type Result struct {
	// Grids maps each requested feature to its 4D parameter image. The
	// grid dimensions are the dataset dimensions minus ROI−1 per axis (one
	// value per fully-contained ROI).
	Grids map[Feature]*FloatGrid
	// OutputDims are the dimensions of every grid.
	OutputDims [4]int
	// Report is the run's observability report: nil only when
	// Options.DisableMetrics is set. Sequential runs (Parallelism 1)
	// report a single SEQ pseudo-filter with the whole scan as one
	// compute span.
	Report *RunReport
	// Degraded summarizes data a SkipDegraded run skipped; nil when the run
	// was clean (and always nil under FailFast, which errors instead).
	Degraded *DegradedSummary
	// Restart reports what a Resume run recovered from its checkpoint
	// journal; nil unless Options.Resume was set.
	Restart *RestartSummary
}

// Analyze runs 4D Haralick texture analysis over an in-memory volume: the
// volume is requantized to the configured gray levels over its own
// intensity range and raster-scanned with the configured ROI. With
// Parallelism > 1 the work is chunked and spread over a local filter
// pipeline; outputs are identical to the sequential path.
func Analyze(v *Volume, opts *Options) (*Result, error) {
	return AnalyzeContext(context.Background(), v, opts)
}

// AnalyzeContext is Analyze under a context: cancelling ctx makes the
// pipeline engines stop promptly and return ctx's error. The sequential
// path (Parallelism 1) checks the context only between setup steps — a
// running kernel scan is not interrupted.
func AnalyzeContext(ctx context.Context, v *Volume, opts *Options) (*Result, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	if err := opts.validateRestart(); err != nil {
		return nil, err
	}
	if err := opts.validateAutoTune(); err != nil {
		return nil, err
	}
	if err := opts.validateProgress(); err != nil {
		return nil, err
	}
	if opts != nil && opts.Checkpoint != "" {
		// The in-memory path holds no disk-resident inputs to re-read on a
		// later life, so a journal could never be honoured.
		return nil, fmt.Errorf("haralick4d: checkpointing requires a disk-resident dataset (AnalyzeDataset)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	grid := volume.Requantize(v, cfg.GrayLevels)
	return analyzeGrid(ctx, grid, cfg, opts)
}

// sequentialReport wraps the reference path's timing in the report schema:
// one SEQ pseudo-filter whose single copy was busy for the whole scan.
func sequentialReport(elapsed time.Duration) *RunReport {
	rep := &metrics.RunReport{
		Engine:    "direct",
		ElapsedNS: int64(elapsed),
		Filters: []metrics.FilterReport{{
			Name: "SEQ",
			Copies: []metrics.CopyReport{{
				BusyNS: int64(elapsed),
				Spans: map[string]metrics.SpanStat{
					metrics.SpanCompute: {Count: 1, TotalNS: int64(elapsed), MaxNS: int64(elapsed)},
				},
			}},
		}},
	}
	rep.Finalize()
	return rep
}

func analyzeGrid(ctx context.Context, grid *volume.Grid, cfg core.Config, opts *Options) (*Result, error) {
	outDims, err := volume.OutputDims(grid.Dims, cfg.ROI)
	if err != nil {
		return nil, err
	}
	res := &Result{Grids: map[Feature]*FloatGrid{}, OutputDims: outDims}
	metricsOn := opts == nil || !opts.DisableMetrics
	if opts.workers() <= 1 {
		start := time.Now()
		grids, err := core.AnalyzeGrid(grid, &cfg, nil)
		if err != nil {
			return nil, err
		}
		for i, f := range cfg.Features {
			res.Grids[f] = grids[i]
		}
		if metricsOn {
			res.Report = sequentialReport(time.Since(start))
		}
		return res, nil
	}
	ctrl := opts.controller(nil)
	pcfg := &pipeline.Config{
		Analysis: cfg,
		Impl:     pipeline.HMPImpl,
		Policy:   filter.DemandDriven,
		Output:   pipeline.OutputCollect,
		AutoTune: ctrl,
	}
	layout := &pipeline.Layout{HMPNodes: make([]int, opts.workers())}
	g, sink, _, err := pipeline.BuildMem(grid, pcfg, layout)
	if err != nil {
		return nil, err
	}
	ropts := &pipeline.RunOptions{DisableMetrics: !metricsOn, AutoTune: ctrl, Monitor: opts.progressMonitor()}
	if opts != nil {
		ropts.StallTimeout = opts.StallTimeout
	}
	rs, err := pipeline.RunContext(ctx, g, pipeline.EngineLocal, ropts)
	if err != nil {
		return nil, err
	}
	if err := sink.Complete(cfg.Features); err != nil {
		return nil, err
	}
	for _, f := range cfg.Features {
		res.Grids[f] = sink.Grid(f)
	}
	res.Report = rs.Report
	ctrl.Attach(res.Report)
	return res, nil
}

// WriteDataset declusters a volume across storageNodes node directories
// under dir in the paper's disk-resident layout (§4.2): one raw file per 2D
// slice, slices dealt round-robin, an index file per node and a JSON
// header.
func WriteDataset(dir string, v *Volume, storageNodes int) error {
	_, err := dataset.Write(dir, v, storageNodes)
	return err
}

// AnalyzeDataset runs the full parallel pipeline over a disk-resident
// dataset created by WriteDataset: RFR readers (one per storage node) feed
// an InputImageConstructor, which distributes overlapping 4D chunks to
// parallel texture filters; results are assembled in memory.
//
// url names the dataset: a plain directory path (or file:// URL) for local
// storage, mem://name for a backend registered with dataset.RegisterMem, or
// http(s)://host/prefix for a remote server answering range requests over
// the same layout.
func AnalyzeDataset(url string, opts *Options) (*Result, error) {
	return AnalyzeDatasetContext(context.Background(), url, opts)
}

// AnalyzeDatasetContext is AnalyzeDataset under a context: cancelling ctx
// makes the pipeline engines stop promptly and return ctx's error.
func AnalyzeDatasetContext(ctx context.Context, url string, opts *Options) (*Result, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	if err := opts.validateRestart(); err != nil {
		return nil, err
	}
	if err := opts.validateBackend(); err != nil {
		return nil, err
	}
	if err := opts.validateAutoTune(); err != nil {
		return nil, err
	}
	if err := opts.validateProgress(); err != nil {
		return nil, err
	}
	if err := opts.validateResilience(); err != nil {
		return nil, err
	}
	uopts := &dataset.URLOptions{}
	if opts != nil {
		uopts.CacheBlocks = opts.CacheBlocks
		uopts.CacheBlockSize = opts.CacheBlockSize
		uopts.ResiliencePolicy = opts.Resilience
		uopts.ServeStale = opts.ServeStale
		if opts.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
			defer cancel()
		}
	}
	st, err := dataset.OpenURL(ctx, url, uopts)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	ctrl := opts.controller(func() (hits, misses int64) {
		s := st.Stats()
		return s.CacheHits, s.CacheMisses
	})
	pcfg := &pipeline.Config{
		Analysis: cfg,
		Impl:     pipeline.HMPImpl,
		Policy:   filter.DemandDriven,
		Output:   pipeline.OutputCollect,
		AutoTune: ctrl,
	}
	if opts != nil {
		pcfg.ReadAhead = opts.ReadAhead
		pcfg.FaultPolicy = opts.FaultPolicy
	}
	var jour *checkpoint.Journal
	var restart *pipeline.RestartSummary
	if opts != nil && opts.Checkpoint != "" {
		jour, restart, err = pipeline.PrepareCheckpoint(st.Meta.Dims, pcfg, opts.Checkpoint, opts.Resume, opts.CheckpointInterval)
		if err != nil {
			return nil, err
		}
	}
	layout := &pipeline.Layout{HMPNodes: make([]int, opts.workers())}
	g, sink, outDims, err := pipeline.Build(st, pcfg, layout)
	if err != nil {
		if jour != nil {
			jour.Close()
		}
		return nil, err
	}
	ropts := &pipeline.RunOptions{DisableMetrics: opts != nil && opts.DisableMetrics, AutoTune: ctrl, Monitor: opts.progressMonitor()}
	if opts != nil {
		// SkipDegraded asks for a run that survives faults, so crashed
		// copies fail over to survivors instead of aborting.
		ropts.Failover = opts.FaultPolicy == SkipDegraded
		ropts.Retry = opts.Retry
		ropts.StallTimeout = opts.StallTimeout
	}
	rs, err := pipeline.RunContext(ctx, g, pipeline.EngineLocal, ropts)
	if err != nil {
		if jour != nil {
			// Best-effort final sync: the journal is the artifact the next
			// life resumes from, so keep whatever landed before the failure.
			jour.Close()
		}
		return nil, err
	}
	if jour != nil {
		// Close errors matter on the success path: a journal that could not
		// be made durable must not be reported as a completed checkpoint.
		if err := jour.Close(); err != nil {
			return nil, err
		}
	}
	if err := sink.Complete(cfg.Features); err != nil {
		return nil, err
	}
	res := &Result{Grids: map[Feature]*FloatGrid{}, OutputDims: outDims, Report: rs.Report}
	ctrl.Attach(res.Report)
	pipeline.AttachBackendStats(res.Report, st)
	if opts != nil && opts.Resume {
		res.Restart = restart
	}
	for _, f := range cfg.Features {
		res.Grids[f] = sink.Grid(f)
	}
	if slices, rois, voxels := sink.Degraded(); voxels > 0 {
		sum := &DegradedSummary{Slices: slices, Chunks: len(rois), Voxels: voxels}
		sum.ROIs = make([][2][4]int, len(rois))
		for i, b := range rois {
			sum.ROIs[i] = [2][4]int{b.Lo, b.Hi}
		}
		res.Degraded = sum
	}
	return res, nil
}

// PhantomConfig parameterizes a synthetic DCE-MRI study (see
// internal/synthetic): smooth anatomy, tumors with gamma-variate contrast
// uptake and washout, vessels and acquisition noise. Deterministic per
// seed.
type PhantomConfig struct {
	Dims       [4]int
	Seed       int64
	NumTumors  int
	NumVessels int
	NoiseSigma float64
}

// GeneratePhantom builds a synthetic DCE-MRI study.
func GeneratePhantom(cfg PhantomConfig) *Volume {
	return synthetic.Generate(synthetic.Config{
		Dims:       cfg.Dims,
		Seed:       cfg.Seed,
		NumTumors:  cfg.NumTumors,
		NumVessels: cfg.NumVessels,
		NoiseSigma: cfg.NoiseSigma,
	})
}

// Version is the library version.
const Version = "1.0.0"

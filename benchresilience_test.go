package haralick4d

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/resilience"
	"haralick4d/internal/synthetic"
)

// resilienceBenchPolicy is the guarded configuration every resilience
// measurement uses: a fast-tripping breaker with quick half-open probes and
// a small shared retry budget. Hedging is left off — it changes latency
// distributions, not fault behavior, and would blur the overhead number.
func resilienceBenchPolicy(openFor time.Duration) *resilience.Policy {
	return &resilience.Policy{
		Breaker: &resilience.BreakerConfig{ConsecFails: 3, OpenFor: openFor},
		Budget:  &resilience.BudgetConfig{Tokens: 2, Ratio: 0},
	}
}

// faultedSweep reads every slice of every node, re-trying slices that failed
// on later passes until all have been read clean (or the deadline passes),
// and returns the elapsed wall time, the pass count, and how many individual
// read attempts returned an error. The retry-pending loop is what turns
// "time to read through a brownout" into a single elapsed number.
func faultedSweep(t *testing.T, st *dataset.Store, deadline time.Duration) (time.Duration, int, int) {
	t.Helper()
	ctx := context.Background()
	out := make([]uint16, st.Meta.Dims[0]*st.Meta.Dims[1])
	type sliceRef struct {
		node int
		ref  dataset.SliceRef
	}
	var pending []sliceRef
	for node := 0; node < st.Meta.Nodes; node++ {
		refs, err := st.NodeIndexContext(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			pending = append(pending, sliceRef{node, ref})
		}
	}
	start := time.Now()
	passes, readErrors := 0, 0
	for len(pending) > 0 && time.Since(start) < deadline {
		passes++
		var still []sliceRef
		for _, s := range pending {
			if err := st.ReadSliceIntoContext(ctx, s.node, s.ref, out); err != nil {
				readErrors++
				still = append(still, s)
			}
		}
		pending = still
	}
	if len(pending) > 0 {
		t.Fatalf("faulted sweep never drained: %d slices still unread after %v (%d passes)",
			len(pending), deadline, passes)
	}
	return time.Since(start), passes, readErrors
}

type resilienceBrownoutRow struct {
	ElapsedNS    int64 `json:"elapsed_ns"`
	Passes       int   `json:"passes"`
	ReadErrors   int   `json:"read_errors"`
	DeadRequests int64 `json:"dead_requests"`
	Trips        int64 `json:"trips,omitempty"`
	Probes       int64 `json:"probes,omitempty"`
}

// TestWriteResilienceBenchJSON measures what the resilience layer costs when
// nothing is failing and what it buys when the backend is: a fault-free
// whole-dataset sweep with the policy off versus on (overhead ≈ 0%), a
// permanent blackout ("blackhole") counting requests sent into the dead
// backend with naive per-read retries versus breaker + budget, and a
// recovering blackout ("brownout") timing how long each mode takes to read
// the dataset clean through the outage. Writes the numbers to the path in
// HARALICK4D_BENCH_RESILIENCE_OUT; used to produce the committed
// BENCH_resilience.json:
//
//	HARALICK4D_BENCH_RESILIENCE_OUT=$PWD/BENCH_resilience.json go test -run TestWriteResilienceBenchJSON
func TestWriteResilienceBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_RESILIENCE_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_RESILIENCE_OUT to regenerate BENCH_resilience.json")
	}
	dims := [4]int{96, 96, 8, 8}
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	open := func(rt http.RoundTripper, pol *resilience.Policy) *dataset.Store {
		t.Helper()
		uopts := &dataset.URLOptions{ResiliencePolicy: pol}
		if rt != nil {
			uopts.HTTPClient = &http.Client{Transport: rt}
		}
		st, err := dataset.OpenURL(context.Background(), srv.URL, uopts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Fault-free overhead: min of 3 sweeps, policy off vs on. The guarded
	// path adds one breaker Allow/Record and zero budget traffic per read.
	var baseline, guarded time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(nil, nil)
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < baseline {
			baseline = d
		}
	}
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(nil, resilienceBenchPolicy(time.Hour))
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < guarded {
			guarded = d
		}
	}
	overheadPct := (float64(guarded)/float64(baseline) - 1) * 100

	// Blackhole: the backend goes dark at the 20th request and never comes
	// back; a single sweep pass, counting requests into the dead backend.
	// Naive mode retries every failed read to its attempt cap; the breaker
	// trips after 3 consecutive failures and fast-fails the rest.
	blackhole := func(pol *resilience.Policy) int64 {
		bo := &fault.BlackoutTransport{StartAfter: 20, FailN: 1 << 30}
		st := open(bo, pol)
		defer st.Close()
		ctx := context.Background()
		buf := make([]uint16, dims[0]*dims[1])
		for node := 0; node < st.Meta.Nodes; node++ {
			refs, err := st.NodeIndexContext(ctx, node)
			if err != nil {
				continue
			}
			for _, ref := range refs {
				_ = st.ReadSliceIntoContext(ctx, node, ref, buf) // errors expected
			}
		}
		return bo.Failures()
	}
	naiveDead := blackhole(nil)
	guardedDead := blackhole(resilienceBenchPolicy(time.Hour))

	// Brownout: the backend drops 12 requests starting at the 20th, then
	// recovers. The retry-pending sweep loops until every slice is read
	// clean; naive mode pays the full linear-backoff schedule for each
	// failed read, the guarded mode trips after one read and burns the rest
	// of the outage with cheap half-open probes.
	brownout := func(pol *resilience.Policy) resilienceBrownoutRow {
		bo := &fault.BlackoutTransport{StartAfter: 20, FailN: 12}
		st := open(bo, pol)
		defer st.Close()
		d, passes, readErrors := faultedSweep(t, st, 30*time.Second)
		s := st.Stats()
		return resilienceBrownoutRow{
			ElapsedNS:    int64(d),
			Passes:       passes,
			ReadErrors:   readErrors,
			DeadRequests: bo.Failures(),
			Trips:        s.BreakerTrips,
			Probes:       s.BreakerProbes,
		}
	}
	naiveBrown := brownout(nil)
	guardedBrown := brownout(resilienceBenchPolicy(100 * time.Microsecond))

	t.Logf("fault-free: baseline %v, guarded %v (%+.2f%%)", baseline, guarded, overheadPct)
	t.Logf("blackhole dead requests: naive %d, guarded %d", naiveDead, guardedDead)
	t.Logf("brownout: naive %v (%d errors), guarded %v (%d errors, %d trips, %d probes)",
		time.Duration(naiveBrown.ElapsedNS), naiveBrown.ReadErrors,
		time.Duration(guardedBrown.ElapsedNS), guardedBrown.ReadErrors,
		guardedBrown.Trips, guardedBrown.Probes)

	doc := struct {
		GeneratedBy string         `json:"generated_by"`
		Host        map[string]any `json:"host"`
		Workload    string         `json:"workload"`
		Policy      string         `json:"policy"`
		Results     struct {
			FaultFree struct {
				BaselineNS  int64   `json:"baseline_ns"`
				GuardedNS   int64   `json:"guarded_ns"`
				OverheadPct float64 `json:"overhead_pct"`
			} `json:"fault_free"`
			Blackhole struct {
				NaiveDeadRequests   int64 `json:"naive_dead_requests"`
				GuardedDeadRequests int64 `json:"guarded_dead_requests"`
			} `json:"blackhole"`
			Brownout struct {
				Naive   resilienceBrownoutRow `json:"naive"`
				Guarded resilienceBrownoutRow `json:"guarded"`
			} `json:"brownout"`
		} `json:"results"`
		Notes []string `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteResilienceBenchJSON (HARALICK4D_BENCH_RESILIENCE_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: "96x96x8x8 phantom on 3 storage nodes over an httptest HTTP backend; 64-slice whole-dataset sweeps; blackout windows are request-count based (dark at request 20)",
		Policy:   "breaker: 3 consecutive failures, half-open probe after 100us (1h for the non-recovering rows); retry budget: 2 tokens, no replenish; hedging off",
		Notes: []string{
			"fault_free elapsed_ns are each the min of 3 sweeps; overhead_pct is the guarded sweep's cost over the plain sweep — the resilience path adds one breaker Allow/Record per read and no budget traffic while nothing fails",
			"blackhole counts transport requests into a permanently dark backend during one sweep pass: naive pays the full per-read retry schedule for every remaining slice, breaker + budget cap it at the trip threshold plus the budget",
			"brownout is the time-to-recover number: the backend drops 12 requests then heals, and the sweep re-reads failed slices until clean; naive burns the linear-backoff schedule on every dark read, the guarded mode trips once and spends the outage on half-open probes",
			"naive rows run with no ResiliencePolicy — the exact pre-resilience HTTPBackend behavior, so they double as the prior-PR baseline",
			"the same counters (trips/probes/budget/hedge) appear per-backend in RunReport.Backends for real pipeline runs",
		},
	}
	doc.Results.FaultFree.BaselineNS = int64(baseline)
	doc.Results.FaultFree.GuardedNS = int64(guarded)
	doc.Results.FaultFree.OverheadPct = overheadPct
	doc.Results.Blackhole.NaiveDeadRequests = naiveDead
	doc.Results.Blackhole.GuardedDeadRequests = guardedDead
	doc.Results.Brownout.Naive = naiveBrown
	doc.Results.Brownout.Guarded = guardedBrown

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

package haralick4d

// The benchmark harness regenerates every figure of the paper's evaluation
// section (there are no tables): Figures 7a, 7b, 8, 9, 10 and 11, the two
// quantified in-text claims (sparse density, zero-skip speedup), the IIC
// replication observation, and the design-choice ablations from DESIGN.md.
// Each figure bench executes its complete experiment on the simulated
// cluster at the tiny scale and logs the regenerated series (run with
// `go test -bench=. -benchmem -v` to see them); cmd/experiments regenerates
// the same figures at larger scales.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/experiments"
	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
	benchEnvDir  string
)

func figureEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvDir, benchEnvErr = os.MkdirTemp("", "haralick4d-bench")
		if benchEnvErr != nil {
			return
		}
		benchEnv, benchEnvErr = experiments.Setup(experiments.TinyScale(), benchEnvDir)
		if benchEnv != nil {
			benchEnv.Repeats = 1
		}
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func benchFigure(b *testing.B, id string) {
	env := figureEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ByID(env, id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + fig.String())
		}
	}
}

// BenchmarkFig7aHMPFullVsSparse regenerates Figure 7(a): HMP implementation
// execution time, full vs sparse matrix representation, 1–16 processors.
func BenchmarkFig7aHMPFullVsSparse(b *testing.B) { benchFigure(b, "7a") }

// BenchmarkFig7bSplitFullVsSparse regenerates Figure 7(b): split HCC+HPC
// implementation, full vs sparse representation.
func BenchmarkFig7bSplitFullVsSparse(b *testing.B) { benchFigure(b, "7b") }

// BenchmarkFig8Colocation regenerates Figure 8: HCC+HPC co-located vs on
// separate processors vs the HMP implementation.
func BenchmarkFig8Colocation(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9PerFilterTime regenerates Figure 9: the processing time of
// each filter of the split implementation as processors are added.
func BenchmarkFig9PerFilterTime(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10Heterogeneous regenerates Figure 10: HMP vs split HCC+HPC
// across the heterogeneous PIII+XEON environment.
func BenchmarkFig10Heterogeneous(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11Scheduling regenerates Figure 11: round-robin vs
// demand-driven buffer scheduling on the XEON+OPTERON environment.
func BenchmarkFig11Scheduling(b *testing.B) { benchFigure(b, "11") }

// BenchmarkSparseDensity regenerates the §4.4.1 sparsity statistic (the
// paper's "10.7 non-zero entries per matrix, about 1%").
func BenchmarkSparseDensity(b *testing.B) { benchFigure(b, "density") }

// BenchmarkZeroSkipAblation regenerates the §4.4.1 zero-skip claim (the
// paper's "one-fourth the time").
func BenchmarkZeroSkipAblation(b *testing.B) { benchFigure(b, "zeroskip") }

// BenchmarkIICScaling regenerates the §5.2 explicit-IIC-replication
// observation.
func BenchmarkIICScaling(b *testing.B) { benchFigure(b, "iic") }

// BenchmarkDirectionsAblation sweeps the direction-set size (DESIGN.md
// ablation).
func BenchmarkDirectionsAblation(b *testing.B) { benchFigure(b, "dirs") }

// BenchmarkChunkSizeAblation sweeps the IIC-to-TEXTURE chunk size (the
// §5.1 overlap/distribution tradeoff).
func BenchmarkChunkSizeAblation(b *testing.B) { benchFigure(b, "chunk") }

// BenchmarkDeclusteringAblation compares slice declustering policies (§4.2).
func BenchmarkDeclusteringAblation(b *testing.B) { benchFigure(b, "decluster") }

// ----- kernel microbenchmarks -----

func phantomGrid(b *testing.B, dims [4]int, g int) *volume.Grid {
	b.Helper()
	v := GeneratePhantom(PhantomConfig{Dims: dims, Seed: 3})
	return volume.Requantize(v, g)
}

// BenchmarkGLCMFull measures dense co-occurrence accumulation for one paper
// ROI (16×16×3×3, 40 directions, G=32).
func BenchmarkGLCMFull(b *testing.B) {
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	m := glcm.NewFull(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		glcm.ComputeFull(grid.Data, grid.Strides(), [4]int{}, [4]int{16, 16, 3, 3}, dirs, m)
	}
}

// BenchmarkGLCMSparseScratch measures the production sparse build (dense
// scratch + touched list) for the same ROI.
func BenchmarkGLCMSparseScratch(b *testing.B) {
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	bu := glcm.NewSparseBuilder(32)
	s := glcm.NewSparse(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		glcm.ComputeSparseScratch(grid.Data, grid.Strides(), [4]int{}, [4]int{16, 16, 3, 3}, dirs, bu)
		bu.Flush(s)
	}
}

// BenchmarkGLCMSparseInsertion measures the direct sorted-insertion sparse
// build (the build-strategy ablation baseline).
func BenchmarkGLCMSparseInsertion(b *testing.B) {
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	s := glcm.NewSparse(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		glcm.ComputeSparse(grid.Data, grid.Strides(), [4]int{}, [4]int{16, 16, 3, 3}, dirs, s)
	}
}

func benchMatrices(b *testing.B) ([]*glcm.Full, []*glcm.Sparse) {
	b.Helper()
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	cfg := &core.Config{ROI: [4]int{16, 16, 3, 3}, GrayLevels: 32}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	region := &volume.Region{Box: volume.BoxAt([4]int{}, grid.Dims), Data: grid.Data}
	var fulls []*glcm.Full
	err := core.ScanRegion(region, volume.BoxAt([4]int{2, 2, 1, 1}, [4]int{8, 8, 2, 2}), cfg, nil,
		func(_ [4]int, m *glcm.Full, _ *glcm.Sparse) error {
			fulls = append(fulls, &glcm.Full{G: m.G, Counts: append([]uint32(nil), m.Counts...), Total: m.Total})
			return nil
		})
	if err != nil {
		b.Fatal(err)
	}
	sparses := make([]*glcm.Sparse, len(fulls))
	for i, m := range fulls {
		sparses[i] = m.Sparse()
	}
	return fulls, sparses
}

// BenchmarkFeaturesFullNoSkip measures parameter calculation over the dense
// matrix without the zero test.
func BenchmarkFeaturesFullNoSkip(b *testing.B) {
	fulls, _ := benchMatrices(b)
	calc := features.NewCalculator(32, features.PaperSet())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calc.FromFull(fulls[i%len(fulls)], false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturesFullZeroSkip measures the paper's zero-skip optimization.
func BenchmarkFeaturesFullZeroSkip(b *testing.B) {
	fulls, _ := benchMatrices(b)
	calc := features.NewCalculator(32, features.PaperSet())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calc.FromFull(fulls[i%len(fulls)], true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturesSparse measures parameter calculation directly from the
// sparse form.
func BenchmarkFeaturesSparse(b *testing.B) {
	_, sparses := benchMatrices(b)
	calc := features.NewCalculator(32, features.PaperSet())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calc.FromSparse(sparses[i%len(sparses)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturesAllFourteen measures the full f1–f14 set including the
// maximal correlation coefficient's eigenproblem.
func BenchmarkFeaturesAllFourteen(b *testing.B) {
	fulls, _ := benchMatrices(b)
	calc := features.NewCalculator(32, features.All())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calc.FromFull(fulls[i%len(fulls)], true); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- sliding-window and worker-pool kernel benchmarks -----
//
// These probe the parallel intra-chunk kernel (internal/core/parallel.go,
// internal/glcm/sliding.go). Every benchmark reports pairs/s — voxel-pair
// accumulations per second, counting *logical* pairs (pairsPerROI × ROIs) so
// the sliding kernel's savings show up as higher throughput rather than a
// different workload. TestWriteKernelBenchJSON records them in
// BENCH_kernels.json.

// reportPairs attaches the logical voxel-pair throughput of the timed
// section.
func reportPairs(b *testing.B, pairsPerOp uint64) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pairsPerOp)*float64(b.N)/sec, "pairs/s")
	}
}

// BenchmarkComputeFull measures the full-recompute dense kernel for one
// paper ROI (16×16×3×3, 40 directions, G=32) — the per-ROI cost the sliding
// kernel avoids.
func BenchmarkComputeFull(b *testing.B) {
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	roi := [4]int{16, 16, 3, 3}
	m := glcm.NewFull(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		glcm.ComputeFull(grid.Data, grid.Strides(), [4]int{}, roi, dirs, m)
	}
	reportPairs(b, glcm.PairCount(roi, dirs))
}

// BenchmarkComputeSparse measures the full-recompute sparse kernel (dense
// scratch + touched list, then Flush) for the same ROI.
func BenchmarkComputeSparse(b *testing.B) {
	grid := phantomGrid(b, [4]int{32, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	roi := [4]int{16, 16, 3, 3}
	bu := glcm.NewSparseBuilder(32)
	s := glcm.NewSparse(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		glcm.ComputeSparseScratch(grid.Data, grid.Strides(), [4]int{}, roi, dirs, bu)
		bu.Flush(s)
	}
	reportPairs(b, glcm.PairCount(roi, dirs))
}

// BenchmarkSlidingWindow measures one whole raster row scanned with the
// sliding-window kernel: a full accumulation at the row start, then one
// incremental SlideFull per remaining origin. The grid is 256 voxels wide —
// the paper dataset's row length — so the row-start cost amortizes as it
// does in a real scan. pairs/s counts logical pairs (pairsPerROI ×
// positions), so it is directly comparable to BenchmarkComputeFull — the
// gap is the overlapping-window reuse win.
func BenchmarkSlidingWindow(b *testing.B) {
	grid := phantomGrid(b, [4]int{256, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	roi := [4]int{16, 16, 3, 3}
	if !glcm.Reusable(roi, 1, dirs) {
		b.Fatal("paper ROI should be reusable at stride 1")
	}
	nx := grid.Dims[0] - roi[0] + 1
	m := glcm.NewFull(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		glcm.ComputeFull(grid.Data, grid.Strides(), [4]int{}, roi, dirs, m)
		for x := 0; x+1 < nx; x++ {
			glcm.SlideFull(grid.Data, grid.Strides(), [4]int{x, 0, 0, 0}, roi, 1, dirs, m)
		}
	}
	reportPairs(b, glcm.PairCount(roi, dirs)*uint64(nx))
}

// BenchmarkBlockedRow measures the same whole-raster-row scan as
// BenchmarkSlidingWindow on the blocked, direction-batched kernel — one
// Accumulate at the row start, one Slide per remaining origin — including a
// merging SnapshotFull at every position (the legacy kernel's matrix is live
// incrementally, so the snapshot is the blocked kernel's honest per-position
// cost). pairs/s counts the same logical pairs over the same grid, so the
// two rows compare directly.
func BenchmarkBlockedRow(b *testing.B) {
	grid := phantomGrid(b, [4]int{256, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	roi := [4]int{16, 16, 3, 3}
	nx := grid.Dims[0] - roi[0] + 1
	k := glcm.NewBlocked(32)
	if !k.Plan(grid.Strides(), roi, dirs, 1, 0) {
		b.Fatal("paper geometry should be supported by the blocked planner")
	}
	m := glcm.NewFull(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset()
		k.Accumulate(grid.Data, 0)
		k.SnapshotFull(m)
		for x := 0; x+1 < nx; x++ {
			k.Slide(grid.Data, x)
			k.SnapshotFull(m)
		}
	}
	reportPairs(b, glcm.PairCount(roi, dirs)*uint64(nx))
}

// BenchmarkBlockedSparseRow is BenchmarkBlockedRow extracting the sparse
// representation at every position: the blocked scratch emits the sorted
// entry list directly, with no touched-key tracking or sort.
func BenchmarkBlockedSparseRow(b *testing.B) {
	grid := phantomGrid(b, [4]int{256, 32, 8, 8}, 32)
	dirs := glcm.Directions(4, 1)
	roi := [4]int{16, 16, 3, 3}
	nx := grid.Dims[0] - roi[0] + 1
	k := glcm.NewBlocked(32)
	if !k.Plan(grid.Strides(), roi, dirs, 1, 0) {
		b.Fatal("paper geometry should be supported by the blocked planner")
	}
	s := glcm.NewSparse(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset()
		k.Accumulate(grid.Data, 0)
		k.SnapshotSparse(s)
		for x := 0; x+1 < nx; x++ {
			k.Slide(grid.Data, x)
			k.SnapshotSparse(s)
		}
	}
	reportPairs(b, glcm.PairCount(roi, dirs)*uint64(nx))
}

// benchAnalyzeRegion returns an AnalyzeRegion benchmark pinned to one
// intra-chunk worker count and kernel mode (shared by
// BenchmarkAnalyzeRegionWorkers and the BENCH_kernels.json writer).
func benchAnalyzeRegion(workers int, kernel core.KernelMode) func(*testing.B) {
	return func(b *testing.B) {
		grid := phantomGrid(b, [4]int{24, 24, 6, 6}, 32)
		cfg := &core.Config{ROI: [4]int{8, 8, 3, 3}, GrayLevels: 32, Representation: core.SparseMatrix, Workers: workers, Kernel: kernel}
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		outDims, err := volume.OutputDims(grid.Dims, cfg.ROI)
		if err != nil {
			b.Fatal(err)
		}
		region := &volume.Region{Box: volume.BoxAt([4]int{}, grid.Dims), Data: grid.Data}
		origins := volume.BoxAt([4]int{}, outDims)
		pairs := glcm.PairCount(cfg.ROI, cfg.DirectionSet()) * uint64(origins.NumVoxels())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeRegion(region, origins, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
		reportPairs(b, pairs)
	}
}

// BenchmarkAnalyzeRegionWorkers sweeps the Workers knob over a full region
// scan (matrices + paper parameters). Workers=1 is the sequential
// full-recompute reference; workers>1 stripe raster rows across a pool
// running the blocked direction-batched kernel (the default), so throughput
// rises even on a single-CPU host. Outputs are bit-identical at every
// setting (see internal/core TestParallelMatchesSequential and
// TestKernelModesAgree).
func BenchmarkAnalyzeRegionWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", w), benchAnalyzeRegion(w, core.KernelAuto))
	}
}

// BenchmarkAnalyzeRegionLegacy is the same sweep with the legacy sliding
// per-direction kernels forced — the A/B baseline for the blocked kernel.
func BenchmarkAnalyzeRegionLegacy(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%d", w), benchAnalyzeRegion(w, core.KernelLegacy))
	}
}

// BenchmarkAnalyzeParallel measures end-to-end in-memory analysis through
// the local pipeline with all CPUs.
func BenchmarkAnalyzeParallel(b *testing.B) {
	v := GeneratePhantom(PhantomConfig{Dims: [4]int{32, 32, 6, 6}, Seed: 5})
	opts := &Options{ROI: [4]int{6, 6, 2, 2}, GrayLevels: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(v, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequantize measures the intensity requantization pass.
func BenchmarkRequantize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := NewVolume([4]int{64, 64, 8, 8})
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		volume.Requantize(v, 32)
	}
}

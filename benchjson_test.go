package haralick4d

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// TestWriteKernelBenchJSON runs the kernel microbenchmarks and writes their
// results, machine-readable, to the path in HARALICK4D_BENCH_OUT; used to
// produce the committed BENCH_kernels.json:
//
//	HARALICK4D_BENCH_OUT=$PWD/BENCH_kernels.json go test -run TestWriteKernelBenchJSON
func TestWriteKernelBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_OUT to regenerate BENCH_kernels.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		Iterations  int     `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		PairsPerSec float64 `json:"pairs_per_sec"`
	}
	run := func(name string, fn func(*testing.B)) entry {
		r := testing.Benchmark(fn)
		e := entry{Name: name, Iterations: r.N, NsPerOp: float64(r.NsPerOp()), PairsPerSec: r.Extra["pairs/s"]}
		t.Logf("%-24s %12.0f ns/op %14.0f pairs/s", e.Name, e.NsPerOp, e.PairsPerSec)
		return e
	}
	entries := []entry{
		run("ComputeFull", BenchmarkComputeFull),
		run("ComputeSparse", BenchmarkComputeSparse),
		run("SlidingWindow", BenchmarkSlidingWindow),
	}
	byWorkers := map[int]entry{}
	for _, w := range []int{1, 2, 4, 8} {
		e := run(fmt.Sprintf("AnalyzeRegionWorkers/%d", w), benchAnalyzeRegion(w))
		byWorkers[w] = e
		entries = append(entries, e)
	}
	doc := struct {
		GeneratedBy string             `json:"generated_by"`
		Host        map[string]any     `json:"host"`
		Unit        string             `json:"unit"`
		Benchmarks  []entry            `json:"benchmarks"`
		Speedups    map[string]float64 `json:"speedups"`
		Notes       []string           `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteKernelBenchJSON (HARALICK4D_BENCH_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Unit:       "pairs_per_sec counts logical voxel-pair accumulations (pairsPerROI x ROIs) per second",
		Benchmarks: entries,
		Speedups: map[string]float64{
			"sliding_window_vs_compute_full": entries[2].PairsPerSec / entries[0].PairsPerSec,
			"analyze_region_workers_2_vs_1":  byWorkers[2].PairsPerSec / byWorkers[1].PairsPerSec,
			"analyze_region_workers_4_vs_1":  byWorkers[4].PairsPerSec / byWorkers[1].PairsPerSec,
			"analyze_region_workers_8_vs_1":  byWorkers[8].PairsPerSec / byWorkers[1].PairsPerSec,
		},
		Notes: []string{
			"workers=1 is the sequential reference kernel: full recompute per ROI, no goroutines, no sliding reuse",
			"workers>1 stripe raster rows across a worker pool and apply sliding-window GLCM updates along each row",
			"on a single-CPU host (gomaxprocs above) the workers>1 gain comes from the sliding-window reuse, not hardware parallelism; multi-core hosts stack both",
			"outputs are bit-identical at every worker count (internal/core TestParallelMatchesSequential)",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

package haralick4d

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"haralick4d/internal/core"
)

// TestWriteKernelBenchJSON runs the kernel microbenchmarks and writes their
// results, machine-readable, to the path in HARALICK4D_BENCH_OUT; used to
// produce the committed BENCH_kernels.json:
//
//	HARALICK4D_BENCH_OUT=$PWD/BENCH_kernels.json go test -run TestWriteKernelBenchJSON
func TestWriteKernelBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_OUT to regenerate BENCH_kernels.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		Kernel      string  `json:"kernel"`
		Iterations  int     `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		PairsPerSec float64 `json:"pairs_per_sec"`
	}
	run := func(name, kernel string, fn func(*testing.B)) entry {
		r := testing.Benchmark(fn)
		e := entry{Name: name, Kernel: kernel, Iterations: r.N, NsPerOp: float64(r.NsPerOp()), PairsPerSec: r.Extra["pairs/s"]}
		t.Logf("%-26s %-8s %12.0f ns/op %14.0f pairs/s", e.Name, e.Kernel, e.NsPerOp, e.PairsPerSec)
		return e
	}
	entries := []entry{
		run("ComputeFull", "legacy", BenchmarkComputeFull),
		run("ComputeSparse", "legacy", BenchmarkComputeSparse),
		run("SlidingWindow", "legacy", BenchmarkSlidingWindow),
		run("BlockedRow", "blocked", BenchmarkBlockedRow),
		run("BlockedSparseRow", "blocked", BenchmarkBlockedSparseRow),
	}
	byWorkers := map[int]entry{}
	for _, w := range []int{1, 2, 4, 8} {
		// Workers>1 run the blocked kernel by default; workers=1 is the
		// sequential legacy reference.
		kernel := "blocked"
		if w == 1 {
			kernel = "legacy"
		}
		e := run(fmt.Sprintf("AnalyzeRegionWorkers/%d", w), kernel, benchAnalyzeRegion(w, core.KernelAuto))
		byWorkers[w] = e
		entries = append(entries, e)
	}
	legacy4 := run("AnalyzeRegionLegacy/4", "legacy", benchAnalyzeRegion(4, core.KernelLegacy))
	entries = append(entries, legacy4)
	doc := struct {
		GeneratedBy string             `json:"generated_by"`
		Host        map[string]any     `json:"host"`
		Unit        string             `json:"unit"`
		Benchmarks  []entry            `json:"benchmarks"`
		Speedups    map[string]float64 `json:"speedups"`
		Notes       []string           `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteKernelBenchJSON (HARALICK4D_BENCH_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Unit:       "pairs_per_sec counts logical voxel-pair accumulations (pairsPerROI x ROIs) per second",
		Benchmarks: entries,
		Speedups: map[string]float64{
			"sliding_window_vs_compute_full":   entries[2].PairsPerSec / entries[0].PairsPerSec,
			"blocked_row_vs_sliding_window":    entries[3].PairsPerSec / entries[2].PairsPerSec,
			"blocked_row_vs_compute_full":      entries[3].PairsPerSec / entries[0].PairsPerSec,
			"analyze_region_workers_2_vs_1":    byWorkers[2].PairsPerSec / byWorkers[1].PairsPerSec,
			"analyze_region_workers_4_vs_1":    byWorkers[4].PairsPerSec / byWorkers[1].PairsPerSec,
			"analyze_region_workers_8_vs_1":    byWorkers[8].PairsPerSec / byWorkers[1].PairsPerSec,
			"analyze_region_blocked_vs_legacy": byWorkers[4].PairsPerSec / legacy4.PairsPerSec,
		},
		Notes: []string{
			"host metadata (cpus, gomaxprocs) is captured at bench time on the generating machine via runtime.NumCPU()/runtime.GOMAXPROCS(0)",
			"the kernel field distinguishes legacy rows (per-direction kernels of compute.go/sliding.go) from blocked rows (direction-batched kernel of blocked.go)",
			"workers=1 is the sequential reference kernel: full recompute per ROI, no goroutines, no sliding reuse",
			"workers>1 stripe raster rows across a worker pool running the blocked kernel by default (KernelAuto); AnalyzeRegionLegacy/4 forces the sliding per-direction kernels for comparison",
			"BlockedRow/BlockedSparseRow pay a merging snapshot per position (the legacy kernel's matrix is live incrementally), so the comparison with SlidingWindow is honest",
			"on a single-CPU host (gomaxprocs above) the workers>1 gain comes from kernel efficiency, not hardware parallelism; multi-core hosts stack both",
			"outputs are bit-identical at every worker count and kernel mode (internal/core TestParallelMatchesSequential, TestKernelModesAgree)",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

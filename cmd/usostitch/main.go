// Command usostitch postprocesses UnstitchedOutput record files (the USO
// filter's on-disk format of parameter values with positional information,
// §4.3.3): it assembles the records from any number of USO copies into
// complete 4D parameter datasets and writes them as JPEG slice series —
// the offline equivalent of the HIC → JIW output path.
//
// Usage:
//
//	usostitch -in /tmp/uso -dims 241x241x30x30 -out /tmp/maps
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"math"
	"os"
	"path/filepath"
	"sort"

	"haralick4d/internal/features"
	"haralick4d/internal/filters"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "usostitch: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		in      = flag.String("in", "", "directory holding uso_*.bin record files (required)")
		out     = flag.String("out", "", "output directory for JPEG series (required)")
		dimsS   = flag.String("dims", "", "output (parameter map) dimensions XxYxZxT (required)")
		quality = flag.Int("quality", 90, "JPEG quality")
		rangeS  = flag.String("range", "", "fixed \"lo,hi\" grayscale normalization for every feature instead of per-feature min/max; makes stitched bytes comparable between runs that filled different voxel subsets (e.g. a degraded run vs its oracle)")
	)
	flag.Parse()
	if *in == "" || *out == "" || *dimsS == "" {
		flag.Usage()
		os.Exit(2)
	}
	var dims [4]int
	if _, err := fmt.Sscanf(*dimsS, "%dx%dx%dx%d", &dims[0], &dims[1], &dims[2], &dims[3]); err != nil {
		fail("invalid -dims %q", *dimsS)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("%v", err)
	}
	grids, err := filters.ReadUSODir(*in, dims)
	if err != nil {
		fail("%v", err)
	}
	if len(grids) == 0 {
		fail("no USO record files under %s", *in)
	}
	var feats []features.Feature
	for ft := range grids {
		feats = append(feats, ft)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })

	total := 0
	var fixedLo, fixedHi float64
	useFixed := false
	if *rangeS != "" {
		if _, err := fmt.Sscanf(*rangeS, "%f,%f", &fixedLo, &fixedHi); err != nil || fixedHi <= fixedLo {
			fail("invalid -range %q (want \"lo,hi\" with hi > lo)", *rangeS)
		}
		useFixed = true
	}

	for _, ft := range feats {
		g := grids[ft]
		lo, hi := g.MinMax()
		if useFixed {
			lo, hi = fixedLo, fixedHi
		}
		scale := 0.0
		if hi > lo {
			scale = 255 / (hi - lo)
		}
		for t := 0; t < dims[3]; t++ {
			for z := 0; z < dims[2]; z++ {
				img := image.NewGray(image.Rect(0, 0, dims[0], dims[1]))
				for y := 0; y < dims[1]; y++ {
					for x := 0; x < dims[0]; x++ {
						v := (g.At(x, y, z, t) - lo) * scale
						img.SetGray(x, y, color.Gray{Y: uint8(math.Round(math.Max(0, math.Min(255, v))))})
					}
				}
				name := fmt.Sprintf("%s_t%04d_z%04d.jpg", ft, t, z)
				f, err := os.Create(filepath.Join(*out, name))
				if err != nil {
					fail("%v", err)
				}
				if err := jpeg.Encode(f, img, &jpeg.Options{Quality: *quality}); err != nil {
					f.Close()
					fail("%v", err)
				}
				f.Close()
				total++
			}
		}
	}
	fmt.Printf("stitched %d parameters into %d JPEG images under %s\n", len(feats), total, *out)
}

// Command gendata synthesizes a DCE-MRI phantom study and writes it as a
// disk-resident dataset declustered across storage-node directories, in the
// format the paper's pipeline reads (one raw file per 2D slice, round-robin
// across nodes, per-node index files, JSON header).
//
// Usage:
//
//	gendata -out /data/study1 -dims 256x256x32x32 -nodes 4 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/synthetic"
)

func main() {
	var (
		out    = flag.String("out", "", "output dataset directory (required)")
		dims   = flag.String("dims", "64x64x16x16", "dataset dimensions XxYxZxT")
		nodes  = flag.Int("nodes", 4, "storage nodes to decluster across")
		seed   = flag.Int64("seed", 1, "phantom random seed")
		tumors = flag.Int("tumors", 2, "number of enhancing lesions")
		noise  = flag.Float64("noise", 8, "acquisition noise sigma")
		format = flag.String("format", "raw", "on-disk format: raw (paper layout) or dicom")
		distS  = flag.String("dist", "round-robin", "raw declustering policy: round-robin, block, slice-mod")

		corruptFrac = flag.Float64("corrupt-frac", 0, "after writing, damage this fraction of slice files (raw format only; byte flips, truncations and deletions cycled deterministically) for fault-tolerance testing")
		corruptSeed = flag.Int64("corrupt-seed", 1, "seed selecting which slices -corrupt-frac damages")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendata: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	var d [4]int
	if _, err := fmt.Sscanf(*dims, "%dx%dx%dx%d", &d[0], &d[1], &d[2], &d[3]); err != nil {
		fmt.Fprintf(os.Stderr, "gendata: invalid -dims %q: %v\n", *dims, err)
		os.Exit(2)
	}
	if *corruptFrac < 0 || *corruptFrac > 1 {
		fmt.Fprintf(os.Stderr, "gendata: -corrupt-frac %v outside [0, 1]\n", *corruptFrac)
		os.Exit(2)
	}
	if *corruptFrac > 0 && *format != "raw" {
		fmt.Fprintln(os.Stderr, "gendata: -corrupt-frac only supports -format raw")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("generating %s phantom (seed %d)...\n", *dims, *seed)
	v := synthetic.Generate(synthetic.Config{
		Dims:       d,
		Seed:       *seed,
		NumTumors:  *tumors,
		NoiseSigma: *noise,
	})
	dist, err := dataset.ParseDistribution(*distS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
		os.Exit(2)
	}
	switch *format {
	case "raw":
		meta, err := dataset.WriteDistributed(*out, v, *nodes, dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d raw slices across %d storage nodes under %s (intensity range [%d, %d])\n",
			d[2]*d[3], meta.Nodes, *out, meta.Min, meta.Max)
		if *corruptFrac > 0 {
			damaged, err := dataset.CorruptSlices(*out, *corruptFrac, *corruptSeed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("corrupted %d slice files (seed %d):\n", len(damaged), *corruptSeed)
			for _, f := range damaged {
				fmt.Printf("  %s\n", f)
			}
		}
	case "dicom":
		if err := dicom.WriteStudy(*out, v, *nodes); err != nil {
			fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d DICOM slices across %d storage nodes under %s\n", d[2]*d[3], *nodes, *out)
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown -format %q\n", *format)
		os.Exit(2)
	}
}

// Command experiments regenerates the paper's evaluation: every figure
// (7a, 7b, 8, 9, 10, 11), the quantified in-text claims (sparse matrix
// density, zero-skip speedup), the IIC replication observation, and the
// design-choice ablations, on the simulated cluster testbed.
//
// Usage:
//
//	experiments                      # all figures at the small scale
//	experiments -fig 7b              # one figure
//	experiments -scale tiny -csv out # CSV series for plotting
//	experiments -scale paper         # full-size dataset (hours)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"haralick4d/internal/cliflags"
	"haralick4d/internal/core"
	"haralick4d/internal/experiments"
	"haralick4d/internal/metrics"
)

// validateCountFlags rejects the negative values the flag package happily
// parses; 0 keeps each flag's documented meaning (synchronous reads, all
// CPUs).
func validateCountFlags(readAhead, kernelWorkers int) error {
	if readAhead < 0 {
		return fmt.Errorf("-readahead must be >= 0, got %d", readAhead)
	}
	if kernelWorkers < 0 {
		return fmt.Errorf("-kernel-workers must be >= 0, got %d", kernelWorkers)
	}
	return nil
}

func parseKernel(s string) (core.KernelMode, error) {
	k, err := core.ParseKernelMode(s)
	if err != nil {
		return 0, fmt.Errorf("-kernel: %w", err)
	}
	return k, nil
}

func main() {
	var (
		fig      = flag.String("fig", "", "figure id: 7a, 7b, 8, 9, 10, 11, density, zeroskip, iic, dirs, chunk, decluster, kernel, autotune (default: all)")
		scaleS   = flag.String("scale", "small", "experiment scale: tiny, small, paper")
		dataDir  = flag.String("data", "", "reuse/create the phantom dataset in this directory (default: temp)")
		csvDir   = flag.String("csv", "", "also write each figure's series as CSV into this directory")
		repeats  = flag.Int("repeats", 3, "simulation repetitions per configuration (min is reported)")
		computeS = flag.Float64("compute-scale", experiments.DefaultComputeScale, "virtual seconds per host second on a speed-1 node")
		kworkers = flag.Int("kernel-workers", 1, "intra-chunk kernel workers inside each texture filter (0 = all CPUs, 1 = sequential reference kernel; the kernel figure sweeps this itself)")
		kernelS  = flag.String("kernel", "auto", "parallel-scan GLCM kernel: auto (blocked when supported), blocked, legacy (the kernel figure sweeps both)")
		rdAhead  = flag.Int("readahead", 4, "I/O windows the reader filters fetch ahead of the pipeline (0 = synchronous reads; outputs are identical either way)")
		cacheBl  = flag.Int("cache-blocks", 0, "block-cache budget between the dataset backend and the readers, in blocks (0 = no cache)")
		cacheBS  = flag.Int("cache-block-size", 0, "block-cache granularity in bytes (default 128KiB; requires -cache-blocks)")
		memoP    = flag.String("memo", "", "autotune sweep memo file recording measured cells across invocations (default: autotune-memo.json next to the dataset; \"off\" disables)")
		// Only the watchdog half of the restart surface is exposed here:
		// resuming a half-finished figure sweep from a checkpoint would
		// splice timings from two separate processes into one curve, so the
		// checkpoint/-resume flags are deliberately haralick4d-only.
		stallS   = flag.String("stall-timeout", "", "fail a figure's engine run if no filter makes progress for this long, e.g. 5m (default: disabled; the simulated engine runs in virtual time and ignores it)")
		metricsF = flag.Bool("metrics", false, "after each figure, print the run report of its last engine run")
		metJSON  = flag.String("metrics-json", "", "write the last figure's run report as JSON to this file (\"-\" for stdout)")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Parse()
	if err := validateCountFlags(*rdAhead, *kworkers); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	kernel, err := parseKernel(*kernelS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	_, stallTimeout, err := cliflags.ParseRestartFlags("", false, "", *stallS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	// The dataset location is decided later (a temp dir when -data is empty),
	// so validate the cache sizing against a stand-in local path.
	if _, err := cliflags.ParseBackendFlags(".", *cacheBl, *cacheBS); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAt)
	}

	scale, err := experiments.ScaleByName(*scaleS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "haralick4d-exp")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Printf("preparing %s-scale phantom dataset (%v) under %s...\n", scale.Name, scale.Dims, dir)
	env, err := experiments.Setup(scale, dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *cacheBl > 0 {
		cached, err := env.Store.WithCache(*cacheBS, *cacheBl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		env.Store = cached
	}
	// ^C and SIGTERM (what containers and orchestrators send first) cancel
	// the figures' engine runs cleanly; a second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	env.Ctx = ctx
	env.Repeats = *repeats
	env.ComputeScale = *computeS
	env.KernelWorkers = *kworkers
	env.Kernel = kernel
	env.ReadAhead = *rdAhead
	env.StallTimeout = stallTimeout
	switch *memoP {
	case "":
		// keep Setup's default next to the dataset
	case "off":
		env.MemoPath = ""
	default:
		env.MemoPath = *memoP
	}

	ids := experiments.AllIDs()
	if *fig != "" {
		ids = []string{*fig}
	}
	// jsonReport tracks the most recent engine run across figures: the
	// in-process figures (density, zeroskip, dirs) never run an engine and
	// leave no report.
	var jsonReport *metrics.RunReport
	for _, id := range ids {
		env.LastReport = nil
		f, err := experiments.ByID(env, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(f.String())
		if env.LastReport != nil {
			jsonReport = env.LastReport
			if *metricsF {
				fmt.Print(env.LastReport.String())
				fmt.Println()
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, "fig"+f.ID+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  (csv: %s)\n\n", path)
		}
	}
	if *metJSON != "" {
		if jsonReport == nil {
			fmt.Fprintln(os.Stderr, "experiments: -metrics-json: no engine run produced a report")
			os.Exit(1)
		}
		if err := jsonReport.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: run report: %v\n", err)
			os.Exit(1)
		}
		data, err := jsonReport.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: run report: %v\n", err)
			os.Exit(1)
		}
		if *metJSON == "-" {
			os.Stdout.Write(append(data, '\n'))
		} else if err := os.WriteFile(*metJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}

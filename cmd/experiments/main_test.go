package main

import (
	"strings"
	"testing"
	"time"

	"haralick4d/internal/cliflags"
)

func TestValidateCountFlags(t *testing.T) {
	cases := []struct {
		readAhead, kernelWorkers int
		wantErr                  string
	}{
		{0, 0, ""},
		{4, 1, ""},
		{-1, 1, "-readahead must be >= 0, got -1"},
		{4, -1, "-kernel-workers must be >= 0, got -1"},
	}
	for _, c := range cases {
		err := validateCountFlags(c.readAhead, c.kernelWorkers)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateCountFlags(%d, %d) = %v, want nil", c.readAhead, c.kernelWorkers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateCountFlags(%d, %d) = %v, want %q", c.readAhead, c.kernelWorkers, err, c.wantErr)
		}
	}
}

// TestStallTimeoutFlagShape exercises the exact invocation main forwards to
// the shared parser: this binary exposes only -stall-timeout (no checkpoint
// flags — resuming a figure sweep would splice timings from two processes),
// so the checkpoint arguments are hardwired empty.
func TestStallTimeoutFlagShape(t *testing.T) {
	cases := []struct {
		stallS  string
		want    time.Duration
		wantErr string
	}{
		{stallS: ""},
		{stallS: "5m", want: 5 * time.Minute},
		{stallS: "0s", wantErr: "-stall-timeout must be positive"},
		{stallS: "-1m", wantErr: "-stall-timeout must be positive"},
		{stallS: "whenever", wantErr: "invalid -stall-timeout"},
	}
	for _, c := range cases {
		_, stall, err := cliflags.ParseRestartFlags("", false, "", c.stallS)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("stall-timeout %q: err = %v, want %q", c.stallS, err, c.wantErr)
			}
			continue
		}
		if err != nil || stall != c.want {
			t.Errorf("stall-timeout %q: got (%s, %v), want %s", c.stallS, stall, err, c.want)
		}
	}
}

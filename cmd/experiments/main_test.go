package main

import (
	"strings"
	"testing"
)

func TestValidateCountFlags(t *testing.T) {
	cases := []struct {
		readAhead, kernelWorkers int
		wantErr                  string
	}{
		{0, 0, ""},
		{4, 1, ""},
		{-1, 1, "-readahead must be >= 0, got -1"},
		{4, -1, "-kernel-workers must be >= 0, got -1"},
	}
	for _, c := range cases {
		err := validateCountFlags(c.readAhead, c.kernelWorkers)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateCountFlags(%d, %d) = %v, want nil", c.readAhead, c.kernelWorkers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateCountFlags(%d, %d) = %v, want %q", c.readAhead, c.kernelWorkers, err, c.wantErr)
		}
	}
}

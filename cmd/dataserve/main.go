// Command dataserve serves a dataset directory over HTTP with Range
// support, turning any directory written by cmd/gendata into a remote
// backend for `haralick4d -dataset-url http://...`. It is a thin wrapper
// over http.FileServer (which already answers ranged GETs), plus an optional
// request log and a -ready file the CI smoke test polls instead of sleeping.
//
// For resilience testing it can also misbehave on demand: -fail-rate
// injects deterministic seeded 503s, -latency delays every response, and
// -blackout takes the server down (503 + Retry-After) for a fixed window —
// the knobs the brownout smoke tests drive the client's circuit breaker,
// retry budget and hedging with.
//
// Example:
//
//	dataserve -dir /data/study1 -addr localhost:8171 &
//	haralick4d -dataset-url http://localhost:8171 -out /tmp/maps -format uso
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// faultInjector decides per request whether to serve an injected failure.
// All decisions are deterministic: -fail-rate draws from a seeded PRNG in
// request-arrival order, and -blackout is a fixed request-count window, so
// a test replaying the same request sequence sees the same faults.
type faultInjector struct {
	failRate float64
	latency  time.Duration

	blackoutStart int64 // request ordinal opening the blackout; 0 = off
	blackoutLen   int64 // requests the blackout spans

	reqs atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// inject reports whether this request should fail, and with what
// Retry-After hint (seconds; 0 = none).
func (fi *faultInjector) inject() (fail bool, retryAfter int) {
	n := fi.reqs.Add(1)
	if fi.blackoutStart > 0 && n >= fi.blackoutStart && n < fi.blackoutStart+fi.blackoutLen {
		// Hint the remaining window length, in whole requests — the client
		// treats it as seconds; capped so a long window doesn't advertise an
		// hour-scale wait (clients bound it too, but the hint should be sane).
		after := fi.blackoutStart + fi.blackoutLen - n
		if after > 60 {
			after = 60
		}
		return true, int(after)
	}
	if fi.failRate > 0 {
		fi.mu.Lock()
		roll := fi.rng.Float64()
		fi.mu.Unlock()
		if roll < fi.failRate {
			return true, 0
		}
	}
	return false, 0
}

func (fi *faultInjector) wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fi.latency > 0 {
			time.Sleep(fi.latency)
		}
		if fail, after := fi.inject(); fail {
			if after > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(after))
			}
			http.Error(w, "dataserve: injected failure", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

func main() {
	var (
		dir      = flag.String("dir", "", "dataset directory to serve (required)")
		addr     = flag.String("addr", "localhost:0", "listen address; port 0 picks a free port")
		ready    = flag.String("ready", "", "after listening, write the bound address to this file (for scripts)")
		logReqs  = flag.Bool("log", false, "log every request to stderr")
		failRate = flag.Float64("fail-rate", 0, "FAULT INJECTION: fail this fraction of requests with 503, drawn from the -seed PRNG in arrival order (0 = off)")
		latency  = flag.Duration("latency", 0, "FAULT INJECTION: delay every response by this duration (0 = off)")
		blackout = flag.String("blackout", "", "FAULT INJECTION: \"start,count\" — answer 503 + Retry-After to requests start..start+count-1 (1-based arrival order; empty = off)")
		seed     = flag.Int64("seed", 1, "PRNG seed for -fail-rate (fixed default keeps runs reproducible)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dataserve: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if _, err := os.Stat(*dir); err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}
	if *failRate < 0 || *failRate > 1 {
		fmt.Fprintf(os.Stderr, "dataserve: -fail-rate must be in [0,1], got %g\n", *failRate)
		os.Exit(2)
	}
	fi := &faultInjector{
		failRate: *failRate,
		latency:  *latency,
		rng:      rand.New(rand.NewSource(*seed)),
	}
	if *blackout != "" {
		var start, count int64
		if _, err := fmt.Sscanf(*blackout, "%d,%d", &start, &count); err != nil || start < 1 || count < 1 {
			fmt.Fprintf(os.Stderr, "dataserve: invalid -blackout %q (want \"start,count\" with both >= 1)\n", *blackout)
			os.Exit(2)
		}
		fi.blackoutStart, fi.blackoutLen = start, count
	}

	var h http.Handler = http.FileServer(http.Dir(*dir))
	if *failRate > 0 || *latency > 0 || fi.blackoutStart > 0 {
		h = fi.wrap(h)
	}
	if *logReqs {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(os.Stderr, "dataserve: %s %s %s\n", r.Method, r.URL.Path, r.Header.Get("Range"))
			inner.ServeHTTP(w, r)
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("dataserve: serving %s on http://%s\n", *dir, bound)
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
			os.Exit(1)
		}
	}
	if err := http.Serve(ln, h); err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}
}

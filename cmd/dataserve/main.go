// Command dataserve serves a dataset directory over HTTP with Range
// support, turning any directory written by cmd/gendata into a remote
// backend for `haralick4d -dataset-url http://...`. It is a thin wrapper
// over http.FileServer (which already answers ranged GETs), plus an optional
// request log and a -ready file the CI smoke test polls instead of sleeping.
//
// Example:
//
//	dataserve -dir /data/study1 -addr localhost:8171 &
//	haralick4d -dataset-url http://localhost:8171 -out /tmp/maps -format uso
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
)

func main() {
	var (
		dir     = flag.String("dir", "", "dataset directory to serve (required)")
		addr    = flag.String("addr", "localhost:0", "listen address; port 0 picks a free port")
		ready   = flag.String("ready", "", "after listening, write the bound address to this file (for scripts)")
		logReqs = flag.Bool("log", false, "log every request to stderr")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dataserve: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if _, err := os.Stat(*dir); err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}

	var h http.Handler = http.FileServer(http.Dir(*dir))
	if *logReqs {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(os.Stderr, "dataserve: %s %s %s\n", r.Method, r.URL.Path, r.Header.Get("Range"))
			inner.ServeHTTP(w, r)
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("dataserve: serving %s on http://%s\n", *dir, bound)
	if *ready != "" {
		if err := os.WriteFile(*ready, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
			os.Exit(1)
		}
	}
	if err := http.Serve(ln, h); err != nil {
		fmt.Fprintf(os.Stderr, "dataserve: %v\n", err)
		os.Exit(1)
	}
}

// Command haralick4d runs the parallel 4D Haralick texture analysis
// pipeline over a disk-resident dataset, with the paper's configuration
// surface exposed as flags: the implementation (combined HMP vs split
// HCC+HPC), the co-occurrence matrix representation (full, full without the
// zero-skip optimization, sparse), the buffer scheduling policy
// (round-robin vs demand-driven), copy counts, chunk geometry and the
// execution engine (local goroutines, loopback TCP between virtual nodes,
// or the simulated cluster).
//
// Examples:
//
//	haralick4d -data /data/study1 -out /tmp/maps -format jpeg
//	haralick4d -data /data/study1 -impl split -rep sparse -texture 8 -engine tcp -out /tmp/uso -format uso
//	haralick4d -data /data/study1 -engine sim -impl split -stats
//
// The serve subcommand runs the multi-job analysis daemon instead of a
// single analysis (see internal/server):
//
//	haralick4d serve -serve-addr localhost:7474 -state-dir /var/lib/haralick4d
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/checkpoint"
	"haralick4d/internal/cliflags"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/netdesc"
	"haralick4d/internal/pipeline"
)

// dicomStudy abstracts the two dataset formats behind one build call.
type dicomStudy struct {
	dcm *dicom.Study
	raw *dataset.Store
}

func (s *dicomStudy) build(cfg *pipeline.Config, layout *pipeline.Layout) (*filter.Graph, *filters.Results, [4]int, error) {
	if s.dcm != nil {
		return pipeline.BuildDICOM(s.dcm, cfg, layout)
	}
	return pipeline.Build(s.raw, cfg, layout)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haralick4d: "+format+"\n", args...)
	os.Exit(1)
}

// parseAutoTuneFlags checks the -autotune flag family and resolves the
// sampling interval. The simulated engine replays a virtual clock and never
// runs the live monitor, so tuning there would silently do nothing.
func parseAutoTuneFlags(on bool, intervalS string, seed int64, engine pipeline.Engine) (time.Duration, error) {
	var interval time.Duration
	if intervalS != "" {
		d, err := time.ParseDuration(intervalS)
		if err != nil {
			return 0, fmt.Errorf("invalid -autotune-interval %q: %v", intervalS, err)
		}
		if d <= 0 {
			return 0, fmt.Errorf("-autotune-interval must be positive, got %v", d)
		}
		interval = d
	}
	if !on {
		if intervalS != "" {
			return 0, fmt.Errorf("-autotune-interval requires -autotune")
		}
		if seed != 0 {
			return 0, fmt.Errorf("-autotune-seed requires -autotune")
		}
		return 0, nil
	}
	if engine == pipeline.EngineSim {
		return 0, fmt.Errorf("-autotune needs a live engine (local or tcp), not sim")
	}
	return interval, nil
}

// validateCountFlags rejects the negative values the flag package happily
// parses; 0 keeps each flag's documented meaning (synchronous reads, all
// CPUs, untiled kernel rows).
func validateCountFlags(readAhead, kernelWorkers, kernelBlock int) error {
	if readAhead < 0 {
		return fmt.Errorf("-readahead must be >= 0, got %d", readAhead)
	}
	if kernelWorkers < 0 {
		return fmt.Errorf("-kernel-workers must be >= 0, got %d", kernelWorkers)
	}
	if kernelBlock < 0 {
		return fmt.Errorf("-kernel-block must be >= 0, got %d", kernelBlock)
	}
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		data     = flag.String("data", "", "dataset directory (see cmd/gendata); required unless -dataset-url is given")
		dataURL  = flag.String("dataset-url", "", "dataset URL: a directory path, file://dir, mem://name, or http(s)://host/prefix for a remote range-read server (overrides -data)")
		cacheBl  = flag.Int("cache-blocks", 0, "block-cache budget between the backend and the readers, in blocks (0 = no cache)")
		cacheBS  = flag.Int("cache-block-size", 0, "block-cache granularity in bytes (default 128KiB; requires -cache-blocks)")
		graph    = flag.String("graph", "", "XML pipeline description (overrides the analysis/layout flags)")
		dicomIn  = flag.Bool("dicom", false, "the dataset directory is a DICOM study (see internal/dicom)")
		out      = flag.String("out", "", "output directory (required unless -format none)")
		format   = flag.String("format", "jpeg", "output format: jpeg (HIC+JIW), uso (unstitched), none (collect only)")
		implS    = flag.String("impl", "hmp", "texture implementation: hmp or split")
		repS     = flag.String("rep", "full", "matrix representation: full, full-noskip, sparse")
		policyS  = flag.String("policy", "demand-driven", "buffer scheduling: round-robin or demand-driven")
		engineS  = flag.String("engine", "local", "execution engine: local, tcp, sim")
		rdAhead  = flag.Int("readahead", 4, "I/O windows the dataset readers fetch ahead of the pipeline (0 = synchronous reads)")
		codecS   = flag.String("wire-codec", "binary", "TCP wire codec: binary or gob")
		retryS   = flag.String("retry", "", "TCP link retry policy \"attempts[,base[,max]]\", e.g. \"5,10ms,1s\" (empty = single-shot sends)")
		faultS   = flag.String("fault-policy", "fail-fast", "degraded-slice handling: fail-fast or skip-degraded")
		brkS     = flag.String("breaker", "", "circuit breaker \"consec[,open-for[,window,error-rate]]\" for backend calls and TCP links, e.g. \"5,2s\" (empty = off)")
		budgetS  = flag.String("retry-budget", "", "shared retry budget \"tokens[,ratio]\" capping total retries against a sick dependency, e.g. \"10,0.1\" (empty = unbounded)")
		hedgeS   = flag.String("hedge-after", "", "launch a second backend range read if the first has not answered within this duration, e.g. 200ms (empty = off)")
		staleF   = flag.Bool("serve-stale", false, "while the backend breaker is open, degrade unavailable slices instead of failing the run (requires -fault-policy skip-degraded)")
		deadS    = flag.String("deadline", "", "wall-clock budget for the whole run, e.g. 10m; propagated as a context deadline into every backend read (empty = none)")
		texture  = flag.Int("texture", 4, "texture filter copies (HMP, or HCC+HPC pairs for split)")
		kworkers = flag.Int("kernel-workers", 1, "intra-chunk kernel workers per texture filter copy (0 = all CPUs, 1 = sequential reference kernel)")
		kernelS  = flag.String("kernel", "auto", "parallel-scan GLCM kernel: auto (blocked when supported), blocked, legacy")
		kblock   = flag.Int("kernel-block", 0, "x tile width of the blocked kernel's accumulation runs (0 = untiled rows)")
		iic      = flag.Int("iic", 1, "explicit IIC copies")
		roiS     = flag.String("roi", "16x16x3x3", "ROI window XxYxZxT")
		chunkS   = flag.String("chunk", "", "IIC-to-TEXTURE chunk shape XxYxZxT (default: auto)")
		gray     = flag.Int("gray", 32, "gray levels G")
		featS    = flag.String("features", "", "comma-separated feature names (default: the paper's four)")
		ndim     = flag.Int("ndim", 4, "direction-set dimensionality (1-4)")
		dist     = flag.Int("distance", 1, "displacement distance")
		ckptS    = flag.String("checkpoint", "", "durable progress journal path; makes the run resumable after a crash (formats uso/none)")
		ckptIntS = flag.String("checkpoint-interval", "", "journal fsync cadence, e.g. 500ms (default 1s; requires -checkpoint)")
		resumeF  = flag.Bool("resume", false, "resume from the -checkpoint journal of an interrupted run of the same configuration")
		stallS   = flag.String("stall-timeout", "", "fail the run if no filter makes progress for this long, e.g. 2m (default: wait forever)")
		tuneF    = flag.Bool("autotune", false, "tune read-ahead depth and texture admission live from run metrics (engines local/tcp)")
		tuneIntS = flag.String("autotune-interval", "", "autotune sampling cadence, e.g. 250ms (default 100ms; requires -autotune)")
		tuneSeed = flag.Int64("autotune-seed", 0, "autotune tie-break seed, 0 = default (requires -autotune)")
		crashN   = flag.Int("crash-after", 0, "TESTING: crash texture copy 0 after receiving this many buffers (0 = never)")
		stats    = flag.Bool("stats", false, "print per-filter runtime statistics")
		metricsF = flag.Bool("metrics", false, "print the structured run report (per-filter spans, streams, critical path)")
		metJSON  = flag.String("metrics-json", "", "write the run report as JSON to this file (\"-\" for stdout)")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Parse()
	if *data == "" && *dataURL == "" {
		fmt.Fprintln(os.Stderr, "haralick4d: -data or -dataset-url is required")
		flag.Usage()
		os.Exit(2)
	}
	if *dataURL == "" {
		*dataURL = *data
	}

	impl, err := pipeline.ParseImpl(*implS)
	if err != nil {
		fail("%v", err)
	}
	rep, err := core.ParseRepresentation(*repS)
	if err != nil {
		fail("%v", err)
	}
	policy, err := filter.ParsePolicy(*policyS)
	if err != nil {
		fail("%v", err)
	}
	engine, err := pipeline.ParseEngine(*engineS)
	if err != nil {
		fail("%v", err)
	}
	codec, err := filter.ParseCodec(*codecS)
	if err != nil {
		fail("%v", err)
	}
	retry, err := filter.ParseRetry(*retryS)
	if err != nil {
		fail("%v", err)
	}
	faultPolicy, err := fault.ParsePolicy(*faultS)
	if err != nil {
		fail("%v", err)
	}
	kernel, err := core.ParseKernelMode(*kernelS)
	if err != nil {
		fail("%v", err)
	}
	if err := validateCountFlags(*rdAhead, *kworkers, *kblock); err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	ckptInterval, stallTimeout, err := cliflags.ParseRestartFlags(*ckptS, *resumeF, *ckptIntS, *stallS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	uopts, err := cliflags.ParseBackendFlags(*dataURL, *cacheBl, *cacheBS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	respol, deadline, err := cliflags.ParseResilienceFlags(*brkS, *budgetS, *hedgeS, *deadS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *staleF && faultPolicy != fault.SkipDegraded {
		fmt.Fprintln(os.Stderr, "haralick4d: -serve-stale requires -fault-policy skip-degraded (stale reads surface as degraded slices)")
		flag.Usage()
		os.Exit(2)
	}
	uopts.ResiliencePolicy = respol
	uopts.ServeStale = *staleF
	if respol != nil && retry != nil {
		// The same flag-level policy arms the TCP links: each ordered node
		// pair gets its own breaker and retry budget.
		retry.PairBudget = respol.Budget
		retry.PairBreaker = respol.Breaker
	}
	tuneInterval, err := parseAutoTuneFlags(*tuneF, *tuneIntS, *tuneSeed, engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	var roi [4]int
	if _, err := fmt.Sscanf(*roiS, "%dx%dx%dx%d", &roi[0], &roi[1], &roi[2], &roi[3]); err != nil {
		fail("invalid -roi %q", *roiS)
	}
	var chunk [4]int
	if *chunkS != "" {
		if _, err := fmt.Sscanf(*chunkS, "%dx%dx%dx%d", &chunk[0], &chunk[1], &chunk[2], &chunk[3]); err != nil {
			fail("invalid -chunk %q", *chunkS)
		}
	}
	var feats []features.Feature
	if *featS != "" {
		for _, name := range strings.Split(*featS, ",") {
			f, err := features.Parse(name)
			if err != nil {
				fail("%v", err)
			}
			feats = append(feats, f)
		}
	}

	var (
		cfg    *pipeline.Config
		layout *pipeline.Layout
	)
	var dims [4]int
	var storageNodes int
	var study *dicomStudy
	if *dicomIn {
		if *data == "" {
			fail("-dicom requires a local -data directory")
		}
		s, err := dicom.OpenStudy(*data)
		if err != nil {
			fail("%v", err)
		}
		study = &dicomStudy{dcm: s}
		dims, storageNodes = s.Dims, s.Nodes
	} else {
		st, err := dataset.OpenURL(context.Background(), *dataURL, uopts)
		if err != nil {
			fail("%v", err)
		}
		defer st.Close()
		study = &dicomStudy{raw: st}
		dims, storageNodes = st.Meta.Dims, st.Meta.Nodes
	}

	if *graph != "" {
		doc, err := netdesc.ParseFile(*graph)
		if err != nil {
			fail("%v", err)
		}
		if cfg, layout, err = doc.Build(); err != nil {
			fail("%v", err)
		}
		if *out != "" {
			cfg.OutDir = *out
		}
	} else {
		cfg = &pipeline.Config{
			Analysis: core.Config{
				ROI:            roi,
				GrayLevels:     *gray,
				NDim:           *ndim,
				Distance:       *dist,
				Features:       feats,
				Representation: rep,
				Workers:        *kworkers,
				Kernel:         kernel,
				KernelBlock:    *kblock,
			},
			ChunkShape: chunk,
			Impl:       impl,
			Policy:     policy,
			OutDir:     *out,
		}
		switch *format {
		case "jpeg":
			cfg.Output = pipeline.OutputJPEG
		case "uso":
			cfg.Output = pipeline.OutputUSO
		case "none":
			cfg.Output = pipeline.OutputCollect
		default:
			fail("unknown -format %q", *format)
		}
		// Placement: storage nodes first, then IIC, output, texture nodes.
		next := storageNodes
		take := func(n int) []int {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = next
				next++
			}
			return ids
		}
		layout = &pipeline.Layout{
			IICNodes:    take(*iic),
			OutputNodes: take(1),
		}
		tex := take(*texture)
		switch impl {
		case pipeline.HMPImpl:
			layout.HMPNodes = tex
		case pipeline.SplitImpl:
			layout.HCCNodes = tex
			layout.HPCNodes = tex // co-located pairs (the paper's best layout)
		}
	}
	cfg.ReadAhead = *rdAhead
	cfg.FaultPolicy = faultPolicy
	var ctrl *autotune.Controller
	if *tuneF {
		acfg := autotune.Config{Seed: *tuneSeed, Interval: tuneInterval}
		if st := study.raw; st != nil {
			acfg.CacheStats = func() (hits, misses int64) {
				s := st.Stats()
				return s.CacheHits, s.CacheMisses
			}
		}
		ctrl = autotune.New(acfg)
	}
	cfg.AutoTune = ctrl
	if cfg.Output != pipeline.OutputCollect {
		if cfg.OutDir == "" {
			fail("an output directory is required (use -out)")
		}
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			fail("%v", err)
		}
	}
	var journal *checkpoint.Journal
	if *ckptS != "" {
		j, restart, err := pipeline.PrepareCheckpoint(dims, cfg, *ckptS, *resumeF, ckptInterval)
		if err != nil {
			fail("%v", err)
		}
		journal = j
		if *resumeF {
			fmt.Println(restart)
		}
	}

	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintf(os.Stderr, "haralick4d: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAt)
	}

	g, sink, outDims, err := study.build(cfg, layout)
	if err != nil {
		fail("%v", err)
	}
	if *crashN > 0 {
		// Fault-injection hook for the restart smoke test: kill the first
		// texture copy while it holds an in-flight buffer.
		name := "HMP"
		if cfg.Impl == pipeline.SplitImpl {
			name = "HCC"
		}
		if spec, ok := g.Filter(name); ok {
			spec.New = fault.CrashAfter(spec.New, 0, *crashN)
		}
	}
	fmt.Printf("dataset %v, ROI %v, G=%d, %s/%s/%s on %s engine\n",
		dims, cfg.Analysis.ROI, cfg.Analysis.GrayLevels, cfg.Impl, cfg.Analysis.Representation, cfg.Policy, engine)
	// SIGTERM is what containers and orchestrators send first: treat it
	// like ^C so the run cancels cleanly and the checkpoint journal is
	// flushed instead of dying mid-frame.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if deadline > 0 {
		// The -deadline budget rides the same context as ^C/SIGTERM, so an
		// overrunning run cancels exactly like an interrupted one.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	rs, err := pipeline.RunContext(ctx, g, engine, &pipeline.RunOptions{
		WireCodec:    codec,
		Retry:        retry,
		Failover:     faultPolicy == fault.SkipDegraded,
		StallTimeout: stallTimeout,
		AutoTune:     ctrl,
	})
	if journal != nil {
		// Close regardless of the run's outcome: the journal is the artifact
		// a later -resume trusts, so whatever landed must reach the disk.
		if cerr := journal.Close(); cerr != nil && err == nil {
			fail("%v", cerr)
		}
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("done in %v; output dims %v\n", rs.Elapsed, outDims)
	ctrl.Attach(rs.Report)
	pipeline.AttachBackendStats(rs.Report, study.raw)
	if *stats {
		fmt.Print(rs.String())
	}
	if *metricsF || *metJSON != "" {
		if err := rs.Report.Validate(); err != nil {
			fail("run report: %v", err)
		}
	}
	if *metricsF {
		fmt.Print(rs.Report.String())
	}
	if *metJSON != "" {
		data, err := rs.Report.JSON()
		if err != nil {
			fail("run report: %v", err)
		}
		if *metJSON == "-" {
			os.Stdout.Write(append(data, '\n'))
		} else if err := os.WriteFile(*metJSON, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
	}
	if sink != nil {
		if slices, rois, voxels := sink.Degraded(); voxels > 0 {
			fmt.Printf("degraded: skipped %d slices poisoning %d chunks (%d output voxels left zero); lost slice ids %v\n",
				len(slices), len(rois), voxels, slices)
		}
		fmt.Println("results collected in memory (use -format jpeg or uso to persist)")
	}
}

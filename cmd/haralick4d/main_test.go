package main

import (
	"strings"
	"testing"
	"time"

	"haralick4d/internal/cliflags"
)

func TestValidateCountFlags(t *testing.T) {
	cases := []struct {
		readAhead, kernelWorkers, kernelBlock int
		wantErr                               string
	}{
		{0, 0, 0, ""},
		{4, 8, 16, ""},
		{-1, 0, 0, "-readahead must be >= 0, got -1"},
		{0, -3, 0, "-kernel-workers must be >= 0, got -3"},
		{0, 0, -4, "-kernel-block must be >= 0, got -4"},
		{-2, -2, -2, "-readahead must be >= 0, got -2"}, // first offender wins
	}
	for _, c := range cases {
		err := validateCountFlags(c.readAhead, c.kernelWorkers, c.kernelBlock)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateCountFlags(%d, %d, %d) = %v, want nil", c.readAhead, c.kernelWorkers, c.kernelBlock, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateCountFlags(%d, %d, %d) = %v, want %q", c.readAhead, c.kernelWorkers, c.kernelBlock, err, c.wantErr)
		}
	}
}

// TestRestartFlagShape exercises the invocation main forwards to the shared
// parser for the full -checkpoint/-checkpoint-interval/-resume/-stall-timeout
// surface; each error case is one the binary turns into an exit-2 usage
// failure.
func TestRestartFlagShape(t *testing.T) {
	cases := []struct {
		name              string
		checkpoint        string
		resume            bool
		intervalS, stallS string
		wantInterval      time.Duration
		wantStall         time.Duration
		wantErr           string
	}{
		{name: "off"},
		{name: "full", checkpoint: "run.ckpt", resume: true, intervalS: "500ms", stallS: "2m",
			wantInterval: 500 * time.Millisecond, wantStall: 2 * time.Minute},
		{name: "resume-without-checkpoint", resume: true, wantErr: "-resume requires -checkpoint"},
		{name: "orphan-interval", intervalS: "1s", wantErr: "-checkpoint-interval without -checkpoint"},
		{name: "zero-interval", checkpoint: "run.ckpt", intervalS: "0s", wantErr: "-checkpoint-interval must be positive"},
		{name: "bad-stall", stallS: "later", wantErr: "invalid -stall-timeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			interval, stall, err := cliflags.ParseRestartFlags(c.checkpoint, c.resume, c.intervalS, c.stallS)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want %q", err, c.wantErr)
				}
				return
			}
			if err != nil || interval != c.wantInterval || stall != c.wantStall {
				t.Fatalf("got (%s, %s, %v), want (%s, %s)", interval, stall, err, c.wantInterval, c.wantStall)
			}
		})
	}
}

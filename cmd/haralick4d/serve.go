// The serve subcommand: `haralick4d serve` starts the multi-job analysis
// daemon (internal/server) and runs it until SIGTERM or ^C triggers a
// graceful drain — stop admissions, checkpoint and park running jobs,
// exit. A daemon killed outright (SIGKILL, OOM, power) instead recovers on
// its next start from the job journal in -state-dir.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"haralick4d/internal/cliflags"
	"haralick4d/internal/server"
)

func serveMain(args []string) {
	fs := flag.NewFlagSet("haralick4d serve", flag.ExitOnError)
	var (
		addr     = fs.String("serve-addr", "localhost:7474", "HTTP listen address of the control API")
		stateDir = fs.String("state-dir", "", "daemon state directory: job journal, per-job checkpoints, default output dirs (required)")
		maxJobs  = fs.Int("max-jobs", 0, "concurrently running jobs (0 = default 2)")
		maxQueue = fs.Int("max-queue", 0, "admission queue bound; submits beyond it are shed with 429 (0 = default 16)")
		totalRA  = fs.Int("total-readahead", 0, "global read-ahead credit budget split across running jobs (0 = default 64)")
		totalWk  = fs.Int("total-workers", 0, "global compute-admission budget split across running jobs (0 = GOMAXPROCS)")
		jobRA    = fs.Int("job-quota-readahead", 0, "per-job read-ahead quota cap (0 = default 16)")
		jobWk    = fs.Int("job-quota-workers", 0, "per-job compute quota cap (0 = GOMAXPROCS)")
		drainS   = fs.String("drain-timeout", "", "graceful-drain bound on SIGTERM/^C, e.g. 45s (default 30s)")
		stallS   = fs.String("stall-timeout", "", "per-job stall watchdog default when a spec leaves stall_timeout empty, e.g. 2m (default: disabled)")
		brkS     = fs.String("breaker", "", "circuit breaker \"consec[,open-for[,window,error-rate]]\" shared per backend host across jobs (empty = off)")
		budgetS  = fs.String("retry-budget", "", "shared retry budget \"tokens[,ratio]\" per backend host (empty = unbounded)")
		hedgeS   = fs.String("hedge-after", "", "hedge backend range reads not answered within this duration, e.g. 200ms (empty = off)")
	)
	fs.Parse(args)
	sf, err := cliflags.ParseServeFlags(*addr, *stateDir,
		*maxJobs, *maxQueue, *totalRA, *totalWk, *jobRA, *jobWk, *drainS, *stallS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d serve: %v\n", err)
		fs.Usage()
		os.Exit(2)
	}
	sf.Resilience, _, err = cliflags.ParseResilienceFlags(*brkS, *budgetS, *hedgeS, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "haralick4d serve: %v\n", err)
		fs.Usage()
		os.Exit(2)
	}

	s, err := server.New(server.Config{
		Addr:           sf.Addr,
		StateDir:       sf.StateDir,
		MaxJobs:        sf.MaxJobs,
		MaxQueue:       sf.MaxQueue,
		TotalReadAhead: sf.TotalReadAhead,
		TotalWorkers:   sf.TotalWorkers,
		JobReadAhead:   sf.JobReadAhead,
		JobWorkers:     sf.JobWorkers,
		DrainTimeout:   sf.DrainTimeout,
		StallTimeout:   sf.StallTimeout,
		Resilience:     sf.Resilience,
		Logf:           log.Printf,
	})
	if err != nil {
		fail("serve: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx); err != nil {
		fail("serve: %v", err)
	}
}

package haralick4d

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/resilience"
	"haralick4d/internal/synthetic"
)

// TestKernelBenchGate is the CI kernel-performance regression gate: it
// re-runs the blocked and legacy sliding row benchmarks and compares the
// blocked kernel's pairs/s against the committed BENCH_kernels.json
// baseline. Because CI hosts differ from the baseline host, the comparison
// is normalized by the legacy kernel's drift on the same run — the sliding
// kernel is untouched code, so its now/baseline ratio estimates the host
// speed difference. The gate fails when the blocked kernel retains less
// than 80% of its host-normalized baseline throughput.
//
// The gate is opt-in (set HARALICK4D_BENCH_GATE=1) so ordinary `go test`
// runs stay fast and unflaky; CI runs it in a dedicated step.
func TestKernelBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the kernel bench regression gate")
	}
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	base := map[string]float64{}
	for _, b := range doc.Benchmarks {
		base[b.Name] = b.PairsPerSec
	}
	slidingBase, blockedBase := base["SlidingWindow"], base["BlockedRow"]
	if slidingBase <= 0 || blockedBase <= 0 {
		t.Fatal("baseline lacks SlidingWindow/BlockedRow pairs_per_sec rows")
	}

	slidingNow := testing.Benchmark(BenchmarkSlidingWindow).Extra["pairs/s"]
	blockedNow := testing.Benchmark(BenchmarkBlockedRow).Extra["pairs/s"]
	if slidingNow <= 0 || blockedNow <= 0 {
		t.Fatal("benchmark reported no pairs/s metric")
	}

	// Host normalization: scale the blocked baseline by how much the legacy
	// kernel moved on this host, then require 80% of that.
	norm := slidingNow / slidingBase
	want := 0.8 * blockedBase * norm

	row := func(name string, baseV, nowV float64) {
		t.Logf("%-16s %14.0f pairs/s (baseline) %14.0f pairs/s (now) %6.2fx",
			name, baseV, nowV, nowV/baseV)
	}
	row("SlidingWindow", slidingBase, slidingNow)
	row("BlockedRow", blockedBase, blockedNow)
	t.Logf("host norm (legacy drift) %.3f; gate: blocked >= %.0f pairs/s", norm, want)
	t.Logf("blocked/sliding now: %.2fx (baseline %.2fx)",
		blockedNow/slidingNow, blockedBase/slidingBase)

	if blockedNow < want {
		t.Errorf("blocked kernel regressed: %.0f pairs/s < %.0f (80%% of host-normalized baseline %.0f)",
			blockedNow, want, blockedBase*norm)
	}
}

// TestKernelBenchBaselineShape pins the committed BENCH_kernels.json
// contract the gate and docs rely on: parseable, kernel-tagged rows for
// both kernels, and a blocked row at least 2x the legacy sliding row — the
// blocked kernel's headline claim, recorded on the generating host.
func TestKernelBenchBaselineShape(t *testing.T) {
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc struct {
		Host       map[string]any `json:"host"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
		Speedups map[string]float64 `json:"speedups"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	rows := map[string]string{}
	for _, b := range doc.Benchmarks {
		if b.Kernel != "legacy" && b.Kernel != "blocked" {
			t.Errorf("row %s: kernel %q is neither legacy nor blocked", b.Name, b.Kernel)
		}
		rows[b.Name] = b.Kernel
		if b.PairsPerSec <= 0 {
			t.Errorf("row %s: non-positive pairs_per_sec", b.Name)
		}
	}
	for name, kernel := range map[string]string{
		"SlidingWindow": "legacy", "BlockedRow": "blocked", "BlockedSparseRow": "blocked",
	} {
		if rows[name] != kernel {
			t.Errorf("row %s: kernel %q, want %q", name, rows[name], kernel)
		}
	}
	if s := doc.Speedups["blocked_row_vs_sliding_window"]; s < 2 {
		t.Errorf("blocked_row_vs_sliding_window = %.2f, want >= 2 (regenerate BENCH_kernels.json)", s)
	}
	if fmt.Sprintf("%v", doc.Host["cpus"]) == "0" {
		t.Error("host cpus metadata is zero")
	}
}

// backendBenchDoc mirrors the parts of BENCH_backend.json the shape pin and
// the cache gate read.
type backendBenchDoc struct {
	Host    map[string]any             `json:"host"`
	Results map[string]backendBenchRow `json:"results"`
}

func readBackendBaseline(t *testing.T) *backendBenchDoc {
	t.Helper()
	raw, err := os.ReadFile("BENCH_backend.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc backendBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	return &doc
}

// TestBackendBenchBaselineShape pins the committed BENCH_backend.json
// contract: host metadata, one row per backend (local, mem, http), each row
// carrying positive uncached/cold/warm points and cache counters, and the
// headline claim — the http backend's warm-cache sweep beats its uncached
// sweep by at least 2x on the generating host.
func TestBackendBenchBaselineShape(t *testing.T) {
	doc := readBackendBaseline(t)
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	for _, name := range []string{"local", "mem", "http"} {
		row, ok := doc.Results[name]
		if !ok {
			t.Errorf("results lack backend %q", name)
			continue
		}
		for pname, p := range map[string]backendBenchPoint{
			"uncached": row.Uncached, "cache_cold": row.CacheCold, "cache_warm": row.CacheWarm,
		} {
			if p.ElapsedNS <= 0 || p.MBPerS <= 0 {
				t.Errorf("%s.%s: non-positive elapsed_ns/mb_per_s (%d, %f)", name, pname, p.ElapsedNS, p.MBPerS)
			}
		}
		if row.CacheHits <= 0 || row.CacheMisses <= 0 {
			t.Errorf("%s: cache counters not recorded (hits=%d misses=%d)", name, row.CacheHits, row.CacheMisses)
		}
	}
	if http := doc.Results["http"]; http.CacheWarm.ElapsedNS > 0 {
		ratio := float64(http.Uncached.ElapsedNS) / float64(http.CacheWarm.ElapsedNS)
		if ratio < 2 {
			t.Errorf("http warm-cache speedup %.2fx < 2x (regenerate BENCH_backend.json)", ratio)
		}
	}
}

// resilienceBenchDoc mirrors the parts of BENCH_resilience.json the shape
// pin and the gate read.
type resilienceBenchDoc struct {
	Host    map[string]any `json:"host"`
	Results struct {
		FaultFree struct {
			BaselineNS  int64   `json:"baseline_ns"`
			GuardedNS   int64   `json:"guarded_ns"`
			OverheadPct float64 `json:"overhead_pct"`
		} `json:"fault_free"`
		Blackhole struct {
			NaiveDeadRequests   int64 `json:"naive_dead_requests"`
			GuardedDeadRequests int64 `json:"guarded_dead_requests"`
		} `json:"blackhole"`
		Brownout struct {
			Naive   resilienceBrownoutRow `json:"naive"`
			Guarded resilienceBrownoutRow `json:"guarded"`
		} `json:"brownout"`
	} `json:"results"`
}

func readResilienceBaseline(t *testing.T) *resilienceBenchDoc {
	t.Helper()
	raw, err := os.ReadFile("BENCH_resilience.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc resilienceBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	return &doc
}

// TestResilienceBenchBaselineShape pins the committed BENCH_resilience.json
// contract: host metadata, positive fault-free sweep points with near-zero
// overhead (the breaker's per-read Allow/Record must stay in the noise), a
// blackhole row where breaker + budget cut dead-backend traffic to at most a
// quarter of the naive retry schedule, and a brownout row where the guarded
// sweep recovers faster than the naive one — the layer's two headline
// claims, recorded on the generating host.
func TestResilienceBenchBaselineShape(t *testing.T) {
	doc := readResilienceBaseline(t)
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	ff := doc.Results.FaultFree
	if ff.BaselineNS <= 0 || ff.GuardedNS <= 0 {
		t.Errorf("fault_free: non-positive sweep points (%d, %d)", ff.BaselineNS, ff.GuardedNS)
	}
	if ff.OverheadPct > 10 {
		t.Errorf("fault_free overhead %.2f%% > 10%% (regenerate BENCH_resilience.json — the claim is ~0%%)", ff.OverheadPct)
	}
	bh := doc.Results.Blackhole
	if bh.NaiveDeadRequests <= 0 || bh.GuardedDeadRequests <= 0 {
		t.Errorf("blackhole: non-positive request counts (%d, %d)", bh.NaiveDeadRequests, bh.GuardedDeadRequests)
	}
	if 4*bh.GuardedDeadRequests > bh.NaiveDeadRequests {
		t.Errorf("blackhole: guarded %d dead requests vs naive %d, want <= 1/4 (breaker + budget must cap the storm)",
			bh.GuardedDeadRequests, bh.NaiveDeadRequests)
	}
	br := doc.Results.Brownout
	for name, row := range map[string]resilienceBrownoutRow{"naive": br.Naive, "guarded": br.Guarded} {
		if row.ElapsedNS <= 0 || row.Passes <= 0 || row.ReadErrors <= 0 || row.DeadRequests <= 0 {
			t.Errorf("brownout.%s: incomplete row %+v", name, row)
		}
	}
	if br.Guarded.Trips < 1 || br.Guarded.Probes < 1 {
		t.Errorf("brownout.guarded: trips=%d probes=%d, want a tripped, probing breaker", br.Guarded.Trips, br.Guarded.Probes)
	}
	if br.Guarded.ElapsedNS >= br.Naive.ElapsedNS {
		t.Errorf("brownout: guarded recovery %v not faster than naive %v (regenerate BENCH_resilience.json)",
			time.Duration(br.Guarded.ElapsedNS), time.Duration(br.Naive.ElapsedNS))
	}
}

// TestResilienceBenchGate is the CI resilience regression gate: it replays
// the blackhole measurement live — a sweep into a permanently dark backend,
// naive versus breaker + budget — and requires the guarded request count to
// stay at its deterministic cap (trip threshold + retry budget). It also
// re-times the fault-free sweep both ways and bounds the guarded overhead at
// 50% — far above the ~0% baseline claim, so only a pathological slow path
// (e.g. budget contention on the read path) fails it, not host noise.
//
// Opt-in via HARALICK4D_BENCH_GATE=1 like the kernel gate.
func TestResilienceBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the resilience regression gate")
	}
	doc := readResilienceBaseline(t)

	dims := [4]int{96, 96, 8, 8}
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	open := func(rt http.RoundTripper, pol *resilience.Policy) *dataset.Store {
		t.Helper()
		uopts := &dataset.URLOptions{ResiliencePolicy: pol}
		if rt != nil {
			uopts.HTTPClient = &http.Client{Transport: rt}
		}
		st, err := dataset.OpenURL(context.Background(), srv.URL, uopts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Live blackhole replay: the guarded sweep is single-caller, so its
	// dead-request count is deterministic — the breaker's trip threshold
	// plus the retry budget.
	blackhole := func(pol *resilience.Policy) int64 {
		bo := &fault.BlackoutTransport{StartAfter: 20, FailN: 1 << 30}
		st := open(bo, pol)
		defer st.Close()
		ctx := context.Background()
		buf := make([]uint16, dims[0]*dims[1])
		for node := 0; node < st.Meta.Nodes; node++ {
			refs, err := st.NodeIndexContext(ctx, node)
			if err != nil {
				continue
			}
			for _, ref := range refs {
				_ = st.ReadSliceIntoContext(ctx, node, ref, buf)
			}
		}
		return bo.Failures()
	}
	naiveDead := blackhole(nil)
	guardedDead := blackhole(resilienceBenchPolicy(time.Hour))
	const deadCap = 3 + 2 // ConsecFails + budget tokens of resilienceBenchPolicy
	t.Logf("blackhole dead requests: naive %d, guarded %d (cap %d, baseline %d/%d)",
		naiveDead, guardedDead, deadCap,
		doc.Results.Blackhole.NaiveDeadRequests, doc.Results.Blackhole.GuardedDeadRequests)
	if guardedDead > deadCap {
		t.Errorf("guarded blackhole sweep sent %d requests into the dead backend, want <= %d (breaker/budget cap broken)",
			guardedDead, deadCap)
	}
	if guardedDead*4 > naiveDead {
		t.Errorf("guarded blackhole traffic %d not under a quarter of naive %d", guardedDead, naiveDead)
	}

	// Live fault-free overhead, min of 3 each way.
	var baseline, guarded time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(nil, nil)
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < baseline {
			baseline = d
		}
	}
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(nil, resilienceBenchPolicy(time.Hour))
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < guarded {
			guarded = d
		}
	}
	t.Logf("fault-free: baseline %v, guarded %v (%+.2f%%)",
		baseline, guarded, (float64(guarded)/float64(baseline)-1)*100)
	if float64(guarded) > 1.5*float64(baseline) {
		t.Errorf("fault-free guarded sweep %v > 1.5x baseline %v (resilience path added real per-read cost)",
			guarded, baseline)
	}
}

// TestBackendBenchGate is the CI cache-effectiveness regression gate: it
// replays the http backend's measurement live — a ranged-GET sweep of a
// small dataset, uncached versus through a warm block cache — and requires
// the warm-cache speedup to retain at least a quarter of the committed
// baseline's ratio (floored at 2x). The wide margin absorbs host noise; a
// broken cache (every warm read going back to the server) fails by an order
// of magnitude, not by percents.
//
// Opt-in via HARALICK4D_BENCH_GATE=1 like the kernel gate.
func TestBackendBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the backend cache regression gate")
	}
	doc := readBackendBaseline(t)
	base := doc.Results["http"]
	if base.Uncached.ElapsedNS <= 0 || base.CacheWarm.ElapsedNS <= 0 {
		t.Fatal("baseline lacks http uncached/cache_warm rows")
	}
	baseRatio := float64(base.Uncached.ElapsedNS) / float64(base.CacheWarm.ElapsedNS)
	want := 0.25 * baseRatio
	if want < 2 {
		want = 2
	}

	dims := [4]int{96, 96, 8, 8}
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	open := func(cacheBlocks int) *dataset.Store {
		t.Helper()
		st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{CacheBlocks: cacheBlocks})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	var uncached, warm time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(0)
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < uncached {
			uncached = d
		}
	}
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(256)
		backendSweep(t, st) // cold fill
		d, _ := backendSweep(t, st)
		if s := st.Stats(); s.CacheHits == 0 {
			t.Fatalf("warm sweep recorded no cache hits (misses=%d)", s.CacheMisses)
		}
		st.Close()
		if i == 0 || d < warm {
			warm = d
		}
	}
	ratio := float64(uncached) / float64(warm)
	t.Logf("http uncached %v, warm %v: %.2fx (baseline %.2fx, gate >= %.2fx)",
		uncached, warm, ratio, baseRatio, want)
	if ratio < want {
		t.Errorf("http warm-cache speedup regressed: %.2fx < %.2fx (25%% of baseline %.2fx, floored at 2x)",
			ratio, want, baseRatio)
	}
}

package haralick4d

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"haralick4d/internal/dataset"
	"haralick4d/internal/synthetic"
)

// TestKernelBenchGate is the CI kernel-performance regression gate: it
// re-runs the blocked and legacy sliding row benchmarks and compares the
// blocked kernel's pairs/s against the committed BENCH_kernels.json
// baseline. Because CI hosts differ from the baseline host, the comparison
// is normalized by the legacy kernel's drift on the same run — the sliding
// kernel is untouched code, so its now/baseline ratio estimates the host
// speed difference. The gate fails when the blocked kernel retains less
// than 80% of its host-normalized baseline throughput.
//
// The gate is opt-in (set HARALICK4D_BENCH_GATE=1) so ordinary `go test`
// runs stay fast and unflaky; CI runs it in a dedicated step.
func TestKernelBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the kernel bench regression gate")
	}
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	base := map[string]float64{}
	for _, b := range doc.Benchmarks {
		base[b.Name] = b.PairsPerSec
	}
	slidingBase, blockedBase := base["SlidingWindow"], base["BlockedRow"]
	if slidingBase <= 0 || blockedBase <= 0 {
		t.Fatal("baseline lacks SlidingWindow/BlockedRow pairs_per_sec rows")
	}

	slidingNow := testing.Benchmark(BenchmarkSlidingWindow).Extra["pairs/s"]
	blockedNow := testing.Benchmark(BenchmarkBlockedRow).Extra["pairs/s"]
	if slidingNow <= 0 || blockedNow <= 0 {
		t.Fatal("benchmark reported no pairs/s metric")
	}

	// Host normalization: scale the blocked baseline by how much the legacy
	// kernel moved on this host, then require 80% of that.
	norm := slidingNow / slidingBase
	want := 0.8 * blockedBase * norm

	row := func(name string, baseV, nowV float64) {
		t.Logf("%-16s %14.0f pairs/s (baseline) %14.0f pairs/s (now) %6.2fx",
			name, baseV, nowV, nowV/baseV)
	}
	row("SlidingWindow", slidingBase, slidingNow)
	row("BlockedRow", blockedBase, blockedNow)
	t.Logf("host norm (legacy drift) %.3f; gate: blocked >= %.0f pairs/s", norm, want)
	t.Logf("blocked/sliding now: %.2fx (baseline %.2fx)",
		blockedNow/slidingNow, blockedBase/slidingBase)

	if blockedNow < want {
		t.Errorf("blocked kernel regressed: %.0f pairs/s < %.0f (80%% of host-normalized baseline %.0f)",
			blockedNow, want, blockedBase*norm)
	}
}

// TestKernelBenchBaselineShape pins the committed BENCH_kernels.json
// contract the gate and docs rely on: parseable, kernel-tagged rows for
// both kernels, and a blocked row at least 2x the legacy sliding row — the
// blocked kernel's headline claim, recorded on the generating host.
func TestKernelBenchBaselineShape(t *testing.T) {
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc struct {
		Host       map[string]any `json:"host"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
		Speedups map[string]float64 `json:"speedups"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	rows := map[string]string{}
	for _, b := range doc.Benchmarks {
		if b.Kernel != "legacy" && b.Kernel != "blocked" {
			t.Errorf("row %s: kernel %q is neither legacy nor blocked", b.Name, b.Kernel)
		}
		rows[b.Name] = b.Kernel
		if b.PairsPerSec <= 0 {
			t.Errorf("row %s: non-positive pairs_per_sec", b.Name)
		}
	}
	for name, kernel := range map[string]string{
		"SlidingWindow": "legacy", "BlockedRow": "blocked", "BlockedSparseRow": "blocked",
	} {
		if rows[name] != kernel {
			t.Errorf("row %s: kernel %q, want %q", name, rows[name], kernel)
		}
	}
	if s := doc.Speedups["blocked_row_vs_sliding_window"]; s < 2 {
		t.Errorf("blocked_row_vs_sliding_window = %.2f, want >= 2 (regenerate BENCH_kernels.json)", s)
	}
	if fmt.Sprintf("%v", doc.Host["cpus"]) == "0" {
		t.Error("host cpus metadata is zero")
	}
}

// backendBenchDoc mirrors the parts of BENCH_backend.json the shape pin and
// the cache gate read.
type backendBenchDoc struct {
	Host    map[string]any             `json:"host"`
	Results map[string]backendBenchRow `json:"results"`
}

func readBackendBaseline(t *testing.T) *backendBenchDoc {
	t.Helper()
	raw, err := os.ReadFile("BENCH_backend.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc backendBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	return &doc
}

// TestBackendBenchBaselineShape pins the committed BENCH_backend.json
// contract: host metadata, one row per backend (local, mem, http), each row
// carrying positive uncached/cold/warm points and cache counters, and the
// headline claim — the http backend's warm-cache sweep beats its uncached
// sweep by at least 2x on the generating host.
func TestBackendBenchBaselineShape(t *testing.T) {
	doc := readBackendBaseline(t)
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	for _, name := range []string{"local", "mem", "http"} {
		row, ok := doc.Results[name]
		if !ok {
			t.Errorf("results lack backend %q", name)
			continue
		}
		for pname, p := range map[string]backendBenchPoint{
			"uncached": row.Uncached, "cache_cold": row.CacheCold, "cache_warm": row.CacheWarm,
		} {
			if p.ElapsedNS <= 0 || p.MBPerS <= 0 {
				t.Errorf("%s.%s: non-positive elapsed_ns/mb_per_s (%d, %f)", name, pname, p.ElapsedNS, p.MBPerS)
			}
		}
		if row.CacheHits <= 0 || row.CacheMisses <= 0 {
			t.Errorf("%s: cache counters not recorded (hits=%d misses=%d)", name, row.CacheHits, row.CacheMisses)
		}
	}
	if http := doc.Results["http"]; http.CacheWarm.ElapsedNS > 0 {
		ratio := float64(http.Uncached.ElapsedNS) / float64(http.CacheWarm.ElapsedNS)
		if ratio < 2 {
			t.Errorf("http warm-cache speedup %.2fx < 2x (regenerate BENCH_backend.json)", ratio)
		}
	}
}

// TestBackendBenchGate is the CI cache-effectiveness regression gate: it
// replays the http backend's measurement live — a ranged-GET sweep of a
// small dataset, uncached versus through a warm block cache — and requires
// the warm-cache speedup to retain at least a quarter of the committed
// baseline's ratio (floored at 2x). The wide margin absorbs host noise; a
// broken cache (every warm read going back to the server) fails by an order
// of magnitude, not by percents.
//
// Opt-in via HARALICK4D_BENCH_GATE=1 like the kernel gate.
func TestBackendBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the backend cache regression gate")
	}
	doc := readBackendBaseline(t)
	base := doc.Results["http"]
	if base.Uncached.ElapsedNS <= 0 || base.CacheWarm.ElapsedNS <= 0 {
		t.Fatal("baseline lacks http uncached/cache_warm rows")
	}
	baseRatio := float64(base.Uncached.ElapsedNS) / float64(base.CacheWarm.ElapsedNS)
	want := 0.25 * baseRatio
	if want < 2 {
		want = 2
	}

	dims := [4]int{96, 96, 8, 8}
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	open := func(cacheBlocks int) *dataset.Store {
		t.Helper()
		st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{CacheBlocks: cacheBlocks})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	var uncached, warm time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(0)
		d, _ := backendSweep(t, st)
		st.Close()
		if i == 0 || d < uncached {
			uncached = d
		}
	}
	for i := 0; i < 3; i++ {
		runtime.GC()
		st := open(256)
		backendSweep(t, st) // cold fill
		d, _ := backendSweep(t, st)
		if s := st.Stats(); s.CacheHits == 0 {
			t.Fatalf("warm sweep recorded no cache hits (misses=%d)", s.CacheMisses)
		}
		st.Close()
		if i == 0 || d < warm {
			warm = d
		}
	}
	ratio := float64(uncached) / float64(warm)
	t.Logf("http uncached %v, warm %v: %.2fx (baseline %.2fx, gate >= %.2fx)",
		uncached, warm, ratio, baseRatio, want)
	if ratio < want {
		t.Errorf("http warm-cache speedup regressed: %.2fx < %.2fx (25%% of baseline %.2fx, floored at 2x)",
			ratio, want, baseRatio)
	}
}

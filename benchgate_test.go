package haralick4d

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestKernelBenchGate is the CI kernel-performance regression gate: it
// re-runs the blocked and legacy sliding row benchmarks and compares the
// blocked kernel's pairs/s against the committed BENCH_kernels.json
// baseline. Because CI hosts differ from the baseline host, the comparison
// is normalized by the legacy kernel's drift on the same run — the sliding
// kernel is untouched code, so its now/baseline ratio estimates the host
// speed difference. The gate fails when the blocked kernel retains less
// than 80% of its host-normalized baseline throughput.
//
// The gate is opt-in (set HARALICK4D_BENCH_GATE=1) so ordinary `go test`
// runs stay fast and unflaky; CI runs it in a dedicated step.
func TestKernelBenchGate(t *testing.T) {
	if os.Getenv("HARALICK4D_BENCH_GATE") == "" {
		t.Skip("set HARALICK4D_BENCH_GATE=1 to run the kernel bench regression gate")
	}
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	base := map[string]float64{}
	for _, b := range doc.Benchmarks {
		base[b.Name] = b.PairsPerSec
	}
	slidingBase, blockedBase := base["SlidingWindow"], base["BlockedRow"]
	if slidingBase <= 0 || blockedBase <= 0 {
		t.Fatal("baseline lacks SlidingWindow/BlockedRow pairs_per_sec rows")
	}

	slidingNow := testing.Benchmark(BenchmarkSlidingWindow).Extra["pairs/s"]
	blockedNow := testing.Benchmark(BenchmarkBlockedRow).Extra["pairs/s"]
	if slidingNow <= 0 || blockedNow <= 0 {
		t.Fatal("benchmark reported no pairs/s metric")
	}

	// Host normalization: scale the blocked baseline by how much the legacy
	// kernel moved on this host, then require 80% of that.
	norm := slidingNow / slidingBase
	want := 0.8 * blockedBase * norm

	row := func(name string, baseV, nowV float64) {
		t.Logf("%-16s %14.0f pairs/s (baseline) %14.0f pairs/s (now) %6.2fx",
			name, baseV, nowV, nowV/baseV)
	}
	row("SlidingWindow", slidingBase, slidingNow)
	row("BlockedRow", blockedBase, blockedNow)
	t.Logf("host norm (legacy drift) %.3f; gate: blocked >= %.0f pairs/s", norm, want)
	t.Logf("blocked/sliding now: %.2fx (baseline %.2fx)",
		blockedNow/slidingNow, blockedBase/slidingBase)

	if blockedNow < want {
		t.Errorf("blocked kernel regressed: %.0f pairs/s < %.0f (80%% of host-normalized baseline %.0f)",
			blockedNow, want, blockedBase*norm)
	}
}

// TestKernelBenchBaselineShape pins the committed BENCH_kernels.json
// contract the gate and docs rely on: parseable, kernel-tagged rows for
// both kernels, and a blocked row at least 2x the legacy sliding row — the
// blocked kernel's headline claim, recorded on the generating host.
func TestKernelBenchBaselineShape(t *testing.T) {
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var doc struct {
		Host       map[string]any `json:"host"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			Kernel      string  `json:"kernel"`
			PairsPerSec float64 `json:"pairs_per_sec"`
		} `json:"benchmarks"`
		Speedups map[string]float64 `json:"speedups"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	for _, key := range []string{"cpus", "gomaxprocs", "go", "goos", "goarch"} {
		if _, ok := doc.Host[key]; !ok {
			t.Errorf("host metadata lacks %q", key)
		}
	}
	rows := map[string]string{}
	for _, b := range doc.Benchmarks {
		if b.Kernel != "legacy" && b.Kernel != "blocked" {
			t.Errorf("row %s: kernel %q is neither legacy nor blocked", b.Name, b.Kernel)
		}
		rows[b.Name] = b.Kernel
		if b.PairsPerSec <= 0 {
			t.Errorf("row %s: non-positive pairs_per_sec", b.Name)
		}
	}
	for name, kernel := range map[string]string{
		"SlidingWindow": "legacy", "BlockedRow": "blocked", "BlockedSparseRow": "blocked",
	} {
		if rows[name] != kernel {
			t.Errorf("row %s: kernel %q, want %q", name, rows[name], kernel)
		}
	}
	if s := doc.Speedups["blocked_row_vs_sliding_window"]; s < 2 {
		t.Errorf("blocked_row_vs_sliding_window = %.2f, want >= 2 (regenerate BENCH_kernels.json)", s)
	}
	if fmt.Sprintf("%v", doc.Host["cpus"]) == "0" {
		t.Error("host cpus metadata is zero")
	}
}

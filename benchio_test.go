package haralick4d

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/glcm"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// ioBenchResult is one configuration's measurement: min-of-3 wall time plus,
// on the TCP engine, the summed per-connection send time and wire bytes.
type ioBenchResult struct {
	ElapsedNS    int64 `json:"elapsed_ns"`
	SendNS       int64 `json:"send_ns,omitempty"`
	WireBytesOut int64 `json:"wire_bytes_out,omitempty"`
}

// ioBenchConfig builds the I/O-heavy pipeline config for the bench: a light
// compute load (four axis directions, sparse matrices) over many small
// positioned reads, so the reader stage dominates and the read-ahead and
// codec changes are visible in the end-to-end time.
func ioBenchConfig(readAhead int) *pipeline.Config {
	return &pipeline.Config{
		Analysis: core.Config{
			ROI:            [4]int{5, 5, 2, 2},
			GrayLevels:     16,
			NDim:           4,
			Distance:       1,
			Directions:     glcm.AxisDirections(4, 1),
			Features:       features.PaperSet(),
			Representation: core.SparseMatrix,
		},
		ChunkShape: [4]int{16, 16, 4, 4},
		IOChunk:    [2]int{16, 16},
		ReadAhead:  readAhead,
		Impl:       pipeline.HMPImpl,
		Policy:     filter.DemandDriven,
		Output:     pipeline.OutputCollect,
	}
}

var ioBenchLayout = &pipeline.Layout{
	SourceNodes: []int{0, 1, 2},
	HMPNodes:    []int{1, 2},
	OutputNodes: []int{0},
}

// TestWriteIOBenchJSON measures the I/O fast path end to end — read-ahead
// off + gob codec (the seed behaviour) against read-ahead 4 + binary codec
// (the CLI defaults) — over both dataset layouts and both in-process
// engines, and writes the numbers to the path in HARALICK4D_BENCH_IO_OUT;
// used to produce the committed BENCH_io.json:
//
//	HARALICK4D_BENCH_IO_OUT=$PWD/BENCH_io.json go test -run TestWriteIOBenchJSON
func TestWriteIOBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_IO_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_IO_OUT to regenerate BENCH_io.json")
	}
	dims := [4]int{48, 48, 8, 8}
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	rawDir := filepath.Join(t.TempDir(), "raw")
	if _, err := dataset.Write(rawDir, v, 3); err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Open(rawDir)
	if err != nil {
		t.Fatal(err)
	}
	dcmDir := filepath.Join(t.TempDir(), "dicom")
	if err := dicom.WriteStudy(dcmDir, v, 3); err != nil {
		t.Fatal(err)
	}
	study, err := dicom.OpenStudy(dcmDir)
	if err != nil {
		t.Fatal(err)
	}

	build := func(layout string, cfg *pipeline.Config) *filter.Graph {
		t.Helper()
		var g *filter.Graph
		var err error
		if layout == "dicom" {
			g, _, _, err = pipeline.BuildDICOM(study, cfg, ioBenchLayout)
		} else {
			g, _, _, err = pipeline.Build(store, cfg, ioBenchLayout)
		}
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// measure reports the min-of-3 run for one configuration; pipeline wall
	// times carry scheduler noise that a single run does not suppress.
	measure := func(layout string, engine pipeline.Engine, readAhead int, codec filter.Codec) ioBenchResult {
		t.Helper()
		var best ioBenchResult
		for i := 0; i < 3; i++ {
			runtime.GC()
			rs, err := pipeline.Run(build(layout, ioBenchConfig(readAhead)), engine,
				&pipeline.RunOptions{WireCodec: codec})
			if err != nil {
				t.Fatal(err)
			}
			r := ioBenchResult{ElapsedNS: int64(rs.Elapsed)}
			if rs.Report != nil {
				for _, c := range rs.Report.Network {
					r.SendNS += c.SendNS
					r.WireBytesOut += c.WireBytesOut
				}
			}
			if i == 0 || r.ElapsedNS < best.ElapsedNS {
				best = r
			}
		}
		return best
	}

	// Encode-only comparison of the two codecs on a representative hot
	// message (a 16×16 single-slice piece), free of the socket wait the TCP
	// Send timer folds in.
	piece := &filters.PieceMsg{Chunk: 3, Region: volume.NewRegion(volume.Box{
		Lo: [4]int{0, 0, 2, 1}, Hi: [4]int{16, 16, 3, 2},
	})}
	for i := range piece.Region.Data {
		piece.Region.Data[i] = uint8(i)
	}
	minNs := func(fn func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(fn)
			if ns := float64(r.NsPerOp()); i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	binaryEncNs := minNs(func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = piece.AppendWire(buf[:0])
		}
	})
	gobEncNs := minNs(func(b *testing.B) {
		var p filter.Payload = piece
		var blob bytes.Buffer
		enc := gob.NewEncoder(&blob)
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&p); err != nil {
				b.Fatal(err)
			}
			blob.Reset()
		}
	})
	t.Logf("piece encode: binary %.0f ns/op, gob %.0f ns/op (%.1fx)", binaryEncNs, gobEncNs, gobEncNs/binaryEncNs)

	type pair struct {
		Before  ioBenchResult `json:"before"` // readahead 0, gob
		After   ioBenchResult `json:"after"`  // readahead 4, binary
		Speedup float64       `json:"speedup"`
	}
	results := map[string]pair{}
	for _, layout := range []string{"raw", "dicom"} {
		for _, eng := range []pipeline.Engine{pipeline.EngineLocal, pipeline.EngineTCP} {
			before := measure(layout, eng, 0, filter.CodecGob)
			after := measure(layout, eng, 4, filter.CodecBinary)
			p := pair{Before: before, After: after,
				Speedup: float64(before.ElapsedNS) / float64(after.ElapsedNS)}
			key := layout + "-" + eng.String()
			results[key] = p
			t.Logf("%-12s before %12d ns, after %12d ns, speedup %.2fx", key, before.ElapsedNS, after.ElapsedNS, p.Speedup)
		}
	}

	doc := struct {
		GeneratedBy string          `json:"generated_by"`
		Host        map[string]any  `json:"host"`
		Workload    string          `json:"workload"`
		Results     map[string]pair `json:"results"`
		Codec       map[string]any  `json:"codec"`
		Notes       []string        `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteIOBenchJSON (HARALICK4D_BENCH_IO_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: "48x48x8x8 phantom on 3 storage nodes, ROI 5x5x2x2, G=16, 4 axis directions, sparse matrices, 16x16 I/O windows, HMP on 2 remote nodes",
		Results:  results,
		Codec: map[string]any{
			"piece_encode_binary_ns_per_op": binaryEncNs,
			"piece_encode_gob_ns_per_op":    gobEncNs,
			"encode_speedup":                gobEncNs / binaryEncNs,
		},
		Notes: []string{
			"before = the seed behaviour: synchronous reads (ReadAhead 0) and per-connection gob streams",
			"after = the CLI defaults: ReadAhead 4 with the length-prefixed binary wire codec",
			"elapsed_ns is the min of 3 end-to-end runs; send_ns and wire_bytes_out sum the TCP engine's per-connection Send timer and counting-writer bytes (zero on the local engine, which moves pointers); the Send timer includes socket backpressure, so the codec block carries the clean encode-only comparison",
			"outputs are bit-identical across all four configurations per layout (TestTCPWireCodecEquivalence, TestRFRReadAheadInvariance)",
			"on a single-CPU host (gomaxprocs 1) the read-ahead workers cannot overlap with compute, so the local-engine pairs measure mostly run-to-run noise; the TCP pairs still gain from the codec, and multi-core hosts see the read-ahead overlap on top",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

package haralick4d

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"haralick4d/internal/dataset"
	"haralick4d/internal/synthetic"
)

// backendSweep reads every slice of every node once through st and returns
// the elapsed wall time plus the byte volume decoded.
func backendSweep(t *testing.T, st *dataset.Store) (time.Duration, int64) {
	t.Helper()
	ctx := context.Background()
	out := make([]uint16, st.Meta.Dims[0]*st.Meta.Dims[1])
	var bytes int64
	start := time.Now()
	for node := 0; node < st.Meta.Nodes; node++ {
		refs, err := st.NodeIndexContext(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if err := st.ReadSliceIntoContext(ctx, node, ref, out); err != nil {
				t.Fatal(err)
			}
			bytes += int64(2 * len(out))
		}
	}
	return time.Since(start), bytes
}

type backendBenchPoint struct {
	ElapsedNS int64   `json:"elapsed_ns"`
	MBPerS    float64 `json:"mb_per_s"`
}

type backendBenchRow struct {
	Uncached  backendBenchPoint `json:"uncached"`
	CacheCold backendBenchPoint `json:"cache_cold"`
	CacheWarm backendBenchPoint `json:"cache_warm"`
	// Counters from one cold+warm cached pass (not the min-of-3 pass):
	// hits/misses/evictions/fetch bytes as surfaced in RunReport.Backends.
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheEvictions  int64 `json:"cache_evictions"`
	CacheFetchBytes int64 `json:"cache_fetch_bytes"`
}

func point(d time.Duration, bytes int64) backendBenchPoint {
	return backendBenchPoint{
		ElapsedNS: int64(d),
		MBPerS:    float64(bytes) / (1 << 20) / d.Seconds(),
	}
}

// TestWriteBackendBenchJSON measures whole-dataset sequential read
// throughput across the three storage backends — local FS, in-memory and
// HTTP range reads — each uncached and through a cold and a warm block
// cache, and writes the numbers to the path in HARALICK4D_BENCH_BACKEND_OUT;
// used to produce the committed BENCH_backend.json:
//
//	HARALICK4D_BENCH_BACKEND_OUT=$PWD/BENCH_backend.json go test -run TestWriteBackendBenchJSON
func TestWriteBackendBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_BACKEND_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_BACKEND_OUT to regenerate BENCH_backend.json")
	}
	dims := [4]int{96, 96, 8, 8}
	nodes := 3
	v := synthetic.Generate(synthetic.Config{Dims: dims, Seed: 11})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, nodes); err != nil {
		t.Fatal(err)
	}
	mb, _, err := dataset.WriteMemDataset(v, nodes)
	if err != nil {
		t.Fatal(err)
	}
	dataset.RegisterMem("bench-backend", mb)
	defer dataset.UnregisterMem("bench-backend")
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()

	urls := map[string]string{
		"local": dir,
		"mem":   "mem://bench-backend",
		"http":  srv.URL,
	}
	const cacheBlocks = 256 // 256 × 128 KiB: the whole working set fits

	open := func(url string, cached bool) *dataset.Store {
		t.Helper()
		uopts := &dataset.URLOptions{}
		if cached {
			uopts.CacheBlocks = cacheBlocks
		}
		st, err := dataset.OpenURL(context.Background(), url, uopts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	results := map[string]backendBenchRow{}
	for _, name := range []string{"local", "mem", "http"} {
		url := urls[name]
		var row backendBenchRow
		var bytes int64
		// Uncached: min of 3 independent sweeps.
		for i := 0; i < 3; i++ {
			runtime.GC()
			st := open(url, false)
			d, b := backendSweep(t, st)
			bytes = b
			if i == 0 || int64(d) < row.Uncached.ElapsedNS {
				row.Uncached = point(d, b)
			}
			st.Close()
		}
		// Cached: each repetition opens a fresh cache, sweeps cold, then
		// warm; the min per phase is kept.
		for i := 0; i < 3; i++ {
			runtime.GC()
			st := open(url, true)
			cold, b := backendSweep(t, st)
			warm, _ := backendSweep(t, st)
			if i == 0 || int64(cold) < row.CacheCold.ElapsedNS {
				row.CacheCold = point(cold, b)
			}
			if i == 0 || int64(warm) < row.CacheWarm.ElapsedNS {
				row.CacheWarm = point(warm, b)
			}
			if i == 0 {
				s := st.Stats()
				row.CacheHits = s.CacheHits
				row.CacheMisses = s.CacheMisses
				row.CacheEvictions = s.CacheEvictions
				row.CacheFetchBytes = s.CacheFetchBytes
			}
			st.Close()
		}
		results[name] = row
		t.Logf("%-5s uncached %8.1f MB/s, cold %8.1f MB/s, warm %8.1f MB/s (%d hits / %d misses, %d B fetched over %d B read)",
			name, row.Uncached.MBPerS, row.CacheCold.MBPerS, row.CacheWarm.MBPerS,
			row.CacheHits, row.CacheMisses, row.CacheFetchBytes, bytes)
	}

	doc := struct {
		GeneratedBy string                     `json:"generated_by"`
		Host        map[string]any             `json:"host"`
		Workload    string                     `json:"workload"`
		Results     map[string]backendBenchRow `json:"results"`
		Notes       []string                   `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteBackendBenchJSON (HARALICK4D_BENCH_BACKEND_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: "96x96x8x8 phantom on 3 storage nodes (1.1 GiB-scale layout at 1/100 size: 64 slice files of 18 KiB), CRC-verified whole-slice sweep of every node, block cache 256 x 128 KiB",
		Results:  results,
		Notes: []string{
			"uncached / cache_cold / cache_warm elapsed_ns are each the min of 3 sweeps; a cold sweep starts with an empty block cache, the warm sweep re-reads the same slices through the now-populated cache",
			"the http backend is an httptest server on the loopback interface serving the local-FS layout via ranged GETs, so the gap to 'local' is pure HTTP/transport overhead — wide-area latency multiplies it",
			"cache counters come from the first cold+warm repetition: with the whole working set resident, warm-sweep reads hit for every block and fetch_bytes stays at one dataset's worth",
			"mem:// uncached is the in-RAM floor; its cached rows mostly measure cache bookkeeping overhead",
			"the same counters appear per-backend in RunReport.Backends for real pipeline runs (see AttachBackendStats)",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

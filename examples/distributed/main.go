// Distributed execution: the same pipeline spread across multiple "nodes"
// whose streams cross real TCP sockets (loopback). Co-located filter copies
// hand buffers over by pointer; copies on different nodes serialize buffers
// with encoding/gob through the kernel network stack — the transport split
// DataCutter makes. Per-filter statistics show the bytes that actually
// crossed the wire.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
)

func main() {
	dir, err := os.MkdirTemp("", "haralick4d-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A study across 3 storage nodes; 8 virtual nodes total.
	study := synthetic.Generate(synthetic.Config{Dims: [4]int{48, 48, 6, 8}, Seed: 3})
	if _, err := dataset.Write(dir, study, 3); err != nil {
		log.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := &pipeline.Config{
		Analysis: core.Config{
			ROI:            [4]int{8, 8, 3, 3},
			GrayLevels:     32,
			Representation: core.SparseMatrix,
		},
		Impl:   pipeline.SplitImpl,
		Policy: filter.DemandDriven,
		Output: pipeline.OutputCollect,
	}
	// Placement: storage nodes 0-2 run the RFR readers; node 3 runs the
	// IIC; nodes 4-6 run co-located HCC+HPC pairs; node 7 collects output.
	layout := &pipeline.Layout{
		SourceNodes: []int{0, 1, 2},
		IICNodes:    []int{3},
		HCCNodes:    []int{4, 5, 6},
		HPCNodes:    []int{4, 5, 6},
		OutputNodes: []int{7},
	}
	g, sink, outDims, err := pipeline.Build(st, cfg, layout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the split HCC+HPC pipeline across 8 TCP-connected nodes...")
	stats, err := pipeline.Run(g, pipeline.EngineTCP, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Complete(cfg.Analysis.Features); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed in %v; output dims %v\n\nper-filter activity:\n%s",
		stats.Elapsed, outDims, stats.String())

	fmt.Println("note: RFR→IIC and IIC→HCC buffers crossed real sockets; each")
	fmt.Println("co-located HCC→HPC hand-off stayed in memory (pointer copy).")
}

// Tumor detection: the paper's motivating application end to end (§1).
// Haralick texture features are computed over a DCE-MRI study and used to
// train a small neural network ("once trained, the neural network becomes a
// convenient tool for discovering cancerous tissue given the texture
// analysis results"); the classifier is then evaluated on a second,
// unseen study.
//
//	go run ./examples/tumordetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/mlp"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

var featureSet = []features.Feature{
	features.ASM, features.Contrast, features.Correlation,
	features.Variance, features.IDM, features.Entropy,
	features.SumAverage, features.SumVariance,
}

// study computes per-ROI texture feature vectors and tumor labels for one
// phantom.
func study(seed int64) (samples [][]float64, labels [][]float64, positives int) {
	dims := [4]int{48, 48, 6, 8}
	roi := [4]int{8, 8, 3, 3}
	v, truth := synthetic.GenerateWithTruth(synthetic.Config{Dims: dims, Seed: seed})
	grid := volume.Requantize(v, 32)

	cfg := &core.Config{ROI: roi, GrayLevels: 32, Features: featureSet}
	grids, err := core.AnalyzeGrid(grid, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	outDims := grids[0].Dims

	// One sample per spatial ROI position. Tumors are detected by their
	// contrast dynamics (the paper's motivation: "characterizing contrast
	// uptake and elimination in a region"), so each sample pairs the ROI's
	// texture features before the bolus arrives (t=0) with the features at
	// peak enhancement — the network sees the uptake-induced texture
	// change. The label is whether the ROI's central region overlaps
	// substantial tumor enhancement.
	tPre, tPeak := 0, (2*outDims[3])/3
	for z := 0; z < outDims[2]; z++ {
		for y := 0; y < outDims[1]; y++ {
			for x := 0; x < outDims[0]; x++ {
				vec := make([]float64, 0, 2*len(grids))
				for _, g := range grids {
					vec = append(vec, g.At(x, y, z, tPre))
				}
				for _, g := range grids {
					vec = append(vec, g.At(x, y, z, tPeak))
				}
				w := truth.MeanIn(
					[3]int{x + roi[0]/4, y + roi[1]/4, z},
					[3]int{x + 3*roi[0]/4, y + 3*roi[1]/4, z + roi[2]},
				)
				label := 0.0
				if w > 200 { // substantial enhancement amplitude
					label = 1
					positives++
				}
				samples = append(samples, vec)
				labels = append(labels, []float64{label})
			}
		}
	}
	return samples, labels, positives
}

func main() {
	fmt.Println("computing texture features for two training studies...")
	trainX, trainY, trainPos := study(100)
	x2, y2, p2 := study(101)
	trainX = append(trainX, x2...)
	trainY = append(trainY, y2...)
	trainPos += p2
	fmt.Printf("  %d ROIs (%d tumor-positive)\n", len(trainX), trainPos)

	std, err := mlp.FitStandardizer(trainX)
	if err != nil {
		log.Fatal(err)
	}

	// Tumor ROIs are a few percent of the study; balance the training set
	// (all positives plus an equal share of negatives) so the network does
	// not collapse to the majority class.
	rng := rand.New(rand.NewSource(3))
	var balX, balY [][]float64
	for i := range trainX {
		if trainY[i][0] > 0.5 || rng.Float64() < 3*float64(trainPos)/float64(len(trainX)) {
			balX = append(balX, std.Apply(trainX[i]))
			balY = append(balY, trainY[i])
		}
	}
	fmt.Printf("  balanced training set: %d ROIs\n", len(balX))

	net := mlp.New([]int{2 * len(featureSet), 12, 1}, 1)
	fmt.Println("training the neural network on texture features...")
	losses, err := net.Train(balX, balY, mlp.TrainConfig{
		Epochs: 300, LearningRate: 0.3, Momentum: 0.9, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loss %.4f -> %.4f over %d epochs\n", losses[0], losses[len(losses)-1], len(losses))

	fmt.Println("evaluating on an unseen study...")
	testX, testY, testPos := study(200)
	var tp, tn, fp, fn int
	for i := range testX {
		pred := net.Forward(std.Apply(testX[i]))[0] > 0.5
		actual := testY[i][0] > 0.5
		switch {
		case pred && actual:
			tp++
		case !pred && !actual:
			tn++
		case pred && !actual:
			fp++
		default:
			fn++
		}
	}
	total := len(testX)
	acc := float64(tp+tn) / float64(total)
	sens := float64(tp) / float64(tp+fn)
	spec := float64(tn) / float64(tn+fp)
	fmt.Printf("  %d ROIs (%d tumor-positive)\n", total, testPos)
	fmt.Printf("  accuracy %.1f%%   sensitivity %.1f%%   specificity %.1f%%\n",
		100*acc, 100*sens, 100*spec)
	fmt.Println("pairing pre-contrast and peak-enhancement texture captures the uptake dynamics the paper describes (§1).")
}

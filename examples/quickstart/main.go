// Quickstart: run 4D Haralick texture analysis on a small synthetic DCE-MRI
// study entirely in memory, using the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"haralick4d"
)

func main() {
	// A small synthetic DCE-MRI study: 48×48 pixels, 6 slices, 8 time
	// steps, with two contrast-enhancing lesions.
	study := haralick4d.GeneratePhantom(haralick4d.PhantomConfig{
		Dims: [4]int{48, 48, 6, 8},
		Seed: 42,
	})

	// Analyze with an 8×8×3×3 ROI at 32 gray levels, computing the paper's
	// four parameters over all 40 unique 4D directions, in parallel.
	res, err := haralick4d.Analyze(study, &haralick4d.Options{
		ROI:        [4]int{8, 8, 3, 3},
		GrayLevels: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %v study -> %v parameter maps\n", study.Dims, res.OutputDims)
	for _, f := range haralick4d.PaperFeatures() {
		grid := res.Grids[f]
		lo, hi := grid.MinMax()
		mean := 0.0
		for _, v := range grid.Data {
			mean += v
		}
		mean /= float64(len(grid.Data))
		fmt.Printf("  %-22s min %8.4f   mean %8.4f   max %8.4f\n", f, lo, mean, hi)
	}

	// Texture distinguishes tissue: compare entropy at the center (lesion
	// territory) against a corner (background).
	opts := &haralick4d.Options{
		ROI:        [4]int{8, 8, 3, 3},
		GrayLevels: 32,
		Features:   []haralick4d.Feature{haralick4d.Entropy},
	}
	res2, err := haralick4d.Analyze(study, opts)
	if err != nil {
		log.Fatal(err)
	}
	ent := res2.Grids[haralick4d.Entropy]
	d := res2.OutputDims
	center := ent.At(d[0]/2, d[1]/2, d[2]/2, d[3]/2)
	corner := ent.At(0, 0, 0, 0)
	fmt.Printf("entropy at center %.3f vs corner %.3f\n", center, corner)
}

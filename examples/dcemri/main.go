// DCE-MRI workflow: the paper's motivating scenario end to end. A dynamic
// contrast-enhanced MRI study is written to disk declustered across storage
// nodes; the full filter pipeline (RFR readers → IIC stitcher → texture
// filters → HIC output stitcher → JPEG writer) computes 4D Haralick
// parameter maps and renders them as JPEG slice series — the images a
// radiologist (or a downstream classifier) would consume.
//
//	go run ./examples/dcemri [workdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
)

func main() {
	workdir := "dcemri-out"
	if len(os.Args) > 1 {
		workdir = os.Args[1]
	}
	dataDir := filepath.Join(workdir, "study")
	mapsDir := filepath.Join(workdir, "maps")
	for _, d := range []string{dataDir, mapsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Acquire: a synthetic breast DCE-MRI study — 64×64 pixels, 8
	// slices, 12 time steps, two enhancing tumors — declustered over 4
	// storage nodes exactly as the paper stores clinical studies.
	fmt.Println("writing DCE-MRI study to disk...")
	study := synthetic.Generate(synthetic.Config{
		Dims: [4]int{64, 64, 8, 12}, Seed: 7, NumTumors: 2,
	})
	if _, err := dataset.Write(dataDir, study, 4); err != nil {
		log.Fatal(err)
	}
	st, err := dataset.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Analyze: the split HCC+HPC implementation with the sparse matrix
	// representation — the paper's best configuration — producing stitched
	// 4D parameter datasets rendered as JPEG series.
	cfg := &pipeline.Config{
		Analysis: core.Config{
			ROI:            [4]int{10, 10, 3, 3},
			GrayLevels:     32,
			Representation: core.SparseMatrix,
		},
		Impl:   pipeline.SplitImpl,
		Policy: filter.DemandDriven,
		Output: pipeline.OutputJPEG,
		OutDir: mapsDir,
	}
	layout := &pipeline.Layout{
		HCCNodes: []int{0, 0, 0, 0}, // four co-located HCC+HPC pairs
		HPCNodes: []int{0, 0, 0, 0},
	}
	g, _, outDims, err := pipeline.Build(st, cfg, layout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the texture-analysis pipeline...")
	stats, err := pipeline.Run(g, pipeline.EngineLocal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline finished in %v; parameter maps are %v\n", stats.Elapsed, outDims)

	entries, err := os.ReadDir(mapsDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d JPEG parameter images under %s, e.g.:\n", len(entries), mapsDir)
	for i, e := range entries {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", e.Name())
	}
	fmt.Println("bright regions in the correlation/variance maps flag texture anomalies (lesions).")
}

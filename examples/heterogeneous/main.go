// Heterogeneous-cluster scheduling: reproduce the paper's §5.3 experiment
// interactively. The pipeline runs on a simulated environment of a slow
// Xeon cluster and a faster Opteron cluster joined by a Gigabit trunk, and
// compares round-robin against demand-driven buffer scheduling. The
// demand-driven scheduler steers co-occurrence matrix buffers toward the
// copies that consume them fastest — the Opteron HCCs whose HPC consumers
// are co-located — exactly the effect the paper reports in Figure 11.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"

	"haralick4d/internal/cluster"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
)

func main() {
	dir, err := os.MkdirTemp("", "haralick4d-hetero")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	study := synthetic.Generate(synthetic.Config{Dims: [4]int{48, 48, 8, 8}, Seed: 1})
	if _, err := dataset.Write(dir, study, 4); err != nil {
		log.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's second heterogeneous environment: 5 dual-Xeon boxes and
	// 6 dual-Opteron boxes, Gigabit everywhere.
	h := cluster.NewHeterogeneous([]cluster.ClusterSpec{
		{Name: "XEON", Nodes: 5, CPUs: 2, Speed: cluster.SpeedXeon, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
		{Name: "OPTERON", Nodes: 6, CPUs: 2, Speed: cluster.SpeedOpteron, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
	}, cluster.Link{Latency: cluster.LANLatency, MBPerSecond: cluster.GigabitMBps})

	// 4 RFR, 1 IIC, 2 HPC and the output filter on OPTERON; 4 HCC copies
	// on each cluster (the paper's Figure 11 layout).
	layout := &pipeline.Layout{
		SourceNodes: []int{10, 12, 14, 16},
		IICNodes:    []int{18},
		HPCNodes:    []int{11, 13},
		HCCNodes:    []int{0, 2, 4, 6, 15, 17, 19, 21},
		OutputNodes: []int{20},
	}

	fmt.Println("simulating the XEON+OPTERON environment (virtual time)...")
	for _, policy := range []filter.Policy{filter.RoundRobin, filter.DemandDriven} {
		cfg := &pipeline.Config{
			Analysis: core.Config{
				ROI:            [4]int{8, 8, 3, 3},
				GrayLevels:     32,
				Representation: core.SparseMatrix,
			},
			// Fine-grained chunks give the scheduler enough buffers to
			// express a preference.
			ChunkShape: [4]int{16, 16, 5, 5},
			Impl:       pipeline.SplitImpl,
			Policy:     policy,
			Output:     pipeline.OutputCollect,
		}
		// Three repetitions, keeping the fastest: the simulation charges
		// real host time as virtual compute, so host jitter (GC pauses)
		// must be filtered out like in any benchmark.
		var stats *filter.RunStats
		for rep := 0; rep < 3; rep++ {
			g, _, _, err := pipeline.Build(st, cfg, layout)
			if err != nil {
				log.Fatal(err)
			}
			s, err := pipeline.Run(g, pipeline.EngineSim, &pipeline.RunOptions{
				Topology:     &h.Topology,
				QueueDepth:   16,
				ComputeScale: 2.5,
			})
			if err != nil {
				log.Fatal(err)
			}
			if stats == nil || s.Elapsed < stats.Elapsed {
				stats = s
			}
		}
		var xeonBufs, opteronBufs int64
		for _, c := range stats.Copies["HCC"] {
			if h.ClusterOf(c.Node) == 0 {
				xeonBufs += c.MsgsIn
			} else {
				opteronBufs += c.MsgsIn
			}
		}
		fmt.Printf("  %-14s execution time %10v   chunks to XEON HCCs: %3d, to OPTERON HCCs: %3d\n",
			policy, stats.Elapsed.Round(1e6), xeonBufs, opteronBufs)
	}
	fmt.Println("demand-driven shifts chunks toward the faster, better-placed OPTERON copies (paper Fig. 11).")
}

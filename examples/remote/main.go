// Remote storage: the full texture pipeline reading its dataset over HTTP
// range requests through the block cache, exactly as it would from an
// object store — the storage nodes become elastic. The example starts an
// in-process HTTP server over a generated study (any server with Range
// support works: cmd/dataserve, nginx, an S3 gateway), analyzes the
// dataset twice through haralick4d.AnalyzeDataset — once uncached, once
// through a block cache — and prints the backend I/O counters the run
// report collects for each.
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"haralick4d"
)

func main() {
	dir, err := os.MkdirTemp("", "haralick4d-remote")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A study declustered across 3 storage nodes, then published over HTTP.
	study := haralick4d.GeneratePhantom(haralick4d.PhantomConfig{
		Dims: [4]int{48, 48, 6, 8}, Seed: 3,
	})
	if err := haralick4d.WriteDataset(dir, study, 3); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()
	fmt.Printf("serving %s at %s\n\n", dir, srv.URL)

	opts := &haralick4d.Options{
		ROI:         [4]int{8, 8, 3, 3},
		GrayLevels:  32,
		Parallelism: 3,
	}

	run := func(label string, cacheBlocks int) {
		o := *opts
		o.CacheBlocks = cacheBlocks
		res, err := haralick4d.AnalyzeDataset(srv.URL, &o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: output dims %v\n", label, res.OutputDims)
		for _, be := range res.Report.Backends {
			fmt.Printf("  backend %s (%s): %d opens, %d reads, %d bytes\n",
				be.Scheme, be.URL, be.Opens, be.Reads, be.ReadBytes)
			if be.CacheHits+be.CacheMisses > 0 {
				fmt.Printf("  block cache: %d hits, %d misses, %d evictions, %d bytes fetched\n",
					be.CacheHits, be.CacheMisses, be.CacheEvictions, be.CacheFetchBytes)
			}
		}
		fmt.Println()
	}

	run("uncached remote run", 0)
	run("cached remote run (256 x 128KiB blocks)", 256)

	// The same maps from local disk, proving the transport changes nothing.
	local, err := haralick4d.AnalyzeDataset(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	remote, err := haralick4d.AnalyzeDataset(srv.URL, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range haralick4d.PaperFeatures() {
		a, b := local.Grids[f], remote.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				log.Fatalf("%v differs between local and remote reads", f)
			}
		}
	}
	fmt.Println("local and remote feature maps are bit-identical")
}

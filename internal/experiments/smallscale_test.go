package experiments

import (
	"os"
	"testing"
)

// TestReferenceRun regenerates every figure at the small scale and writes
// the results to the path in HARALICK4D_REF_OUT; used to produce the
// EXPERIMENTS.md reference numbers. Skipped unless the variable is set.
func TestReferenceRun(t *testing.T) {
	out := os.Getenv("HARALICK4D_REF_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_REF_OUT to run the reference sweep")
	}
	env, err := Setup(SmallScale(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := All(env)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, fig := range figs {
		if _, err := f.WriteString(fig.String() + "\n"); err != nil {
			t.Fatal(err)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"os"

	"haralick4d/internal/cluster"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/glcm"
	"haralick4d/internal/metrics"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/volume"
)

// sampleGrid loads the phantom, requantizes it with the dataset range, and
// returns it for in-process measurements.
func (e *Env) sampleGrid() (*volume.Grid, error) {
	v, err := e.Store.ReadVolume()
	if err != nil {
		return nil, err
	}
	return volume.RequantizeRange(v, e.Scale.GrayLevels, e.Store.Meta.Min, e.Store.Meta.Max), nil
}

// sampleOrigins returns a centered sub-box of ROI origins holding roughly
// limit origins, so statistics stabilize without a full raster scan.
func (e *Env) sampleOrigins(limit int) (volume.Box, error) {
	outDims, err := volume.OutputDims(e.Scale.Dims, e.Scale.ROI)
	if err != nil {
		return volume.Box{}, err
	}
	var shape, origin [4]int
	per := limit
	for k := 3; k >= 0; k-- {
		shape[k] = outDims[k]
		if shape[k] > 8 {
			shape[k] = 8
		}
		per /= shape[k]
	}
	// Shrink x until under the limit.
	for shape[0] > 1 && shape[0]*shape[1]*shape[2]*shape[3] > limit {
		shape[0]--
	}
	for k := 0; k < 4; k++ {
		origin[k] = (outDims[k] - shape[k]) / 2
	}
	return volume.BoxAt(origin, shape), nil
}

// Density regenerates the paper's §4.4.1 sparsity claim: "matrices
// generated using a typical ROI and requantized 32 levels can have on
// average as little as 10.7 non-zero entries per matrix (about 1% of the
// matrix)", counting symmetric entries once.
func Density(e *Env) (*Figure, error) {
	grid, err := e.sampleGrid()
	if err != nil {
		return nil, err
	}
	origins, err := e.sampleOrigins(600)
	if err != nil {
		return nil, err
	}
	cfg := e.analysis(core.SparseMatrix)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	region := &volume.Region{Box: volume.BoxAt([4]int{}, grid.Dims), Data: grid.Data}
	var st core.Stats
	if _, err := core.AnalyzeRegion(region, origins, &cfg, &st); err != nil {
		return nil, err
	}
	mean := st.MeanEntries()
	cells := float64(e.Scale.GrayLevels * e.Scale.GrayLevels)
	fig := &Figure{
		ID:     "density",
		Title:  "sparse co-occurrence matrix density (§4.4.1)",
		YLabel: "stored entries per matrix",
		Series: []Series{{Label: "mean non-zero stored entries", Y: []float64{mean}}},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%.1f entries of %d cells = %.2f%% of the matrix (paper: 10.7 entries, about 1%%)", mean, int(cells), 100*mean/cells),
		fmt.Sprintf("measured over %d ROIs of shape %v at G=%d", st.ROIs, e.Scale.ROI, e.Scale.GrayLevels))
	return fig, nil
}

// ZeroSkip regenerates the paper's §4.4.1 optimization claim: testing
// matrix entries for zero before folding them into the parameter sums "
// allowed us to process a typical MRI dataset in one-fourth the time". It
// measures parameter-calculation time per matrix over matrices sampled
// from the phantom, for the three computation paths.
func ZeroSkip(e *Env) (*Figure, error) {
	grid, err := e.sampleGrid()
	if err != nil {
		return nil, err
	}
	origins, err := e.sampleOrigins(256)
	if err != nil {
		return nil, err
	}
	cfg := e.analysis(core.FullMatrix)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	region := &volume.Region{Box: volume.BoxAt([4]int{}, grid.Dims), Data: grid.Data}
	var mats []*glcm.Full
	err = core.ScanRegion(region, origins, &cfg, nil, func(_ [4]int, full *glcm.Full, _ *glcm.Sparse) error {
		mats = append(mats, &glcm.Full{G: full.G, Counts: append([]uint32(nil), full.Counts...), Total: full.Total})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sparse := make([]*glcm.Sparse, len(mats))
	for i, m := range mats {
		sparse[i] = m.Sparse()
	}
	req := features.PaperSet()
	const rounds = 30
	timePath := func(f func() error) (float64, error) {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		perMatrix := time.Since(start).Seconds() / float64(rounds*len(mats))
		return perMatrix * 1e6, nil // µs per matrix
	}
	noskip, err := timePath(func() error {
		for _, m := range mats {
			if _, err := features.FromFull(m, req, false); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	skip, err := timePath(func() error {
		for _, m := range mats {
			if _, err := features.FromFull(m, req, true); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp, err := timePath(func() error {
		for _, s := range sparse {
			if _, err := features.FromSparse(s, req); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "zeroskip",
		Title:  "zero-skip optimization of full-matrix parameter calculation (§4.4.1)",
		YLabel: "µs per matrix (4 paper parameters)",
		Series: []Series{
			{Label: "full, no zero test", Y: []float64{noskip}},
			{Label: "full, zero-skip", Y: []float64{skip}},
			{Label: "sparse form", Y: []float64{sp}},
		},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("zero-skip speedup: %.1fx (paper: about 4x end-to-end)", noskip/skip),
		fmt.Sprintf("measured over %d matrices sampled from the phantom", len(mats)))
	return fig, nil
}

// IICScaling regenerates the §5.2 observation: "as the number of IIC
// filters is increased, the processing time of each IIC filter decreases
// almost linearly". Explicit IIC copies are swept with a fixed texture
// configuration.
func IICScaling(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "iic",
		Title:  "explicit IIC filter replication (§5.2)",
		XLabel: "IIC copies",
		YLabel: "max per-copy IIC compute time (virtual s)",
	}
	s := Series{Label: "IIC"}
	for _, copies := range []int{1, 2, 4, 8} {
		stats, err := e.runHomogeneous(pipeline.SplitImpl, core.SparseMatrix, 8, true, filter.DemandDriven, copies)
		if err != nil {
			return nil, fmt.Errorf("iic copies=%d: %w", copies, err)
		}
		var maxC time.Duration
		for _, c := range stats.Copies["IIC"] {
			if c.Compute > maxC {
				maxC = c.Compute
			}
		}
		s.X = append(s.X, float64(copies))
		s.Y = append(s.Y, seconds(maxC))
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes, "paper: per-copy IIC processing time decreases almost linearly with copies")
	return fig, nil
}

// Directions is an ablation of the direction-set size (not in the paper,
// which fixes the 4D direction set): sequential scan cost for 1 (single
// axis), 4 (2D), 13 (3D) and 40 (4D) unique directions.
func Directions(e *Env) (*Figure, error) {
	grid, err := e.sampleGrid()
	if err != nil {
		return nil, err
	}
	origins, err := e.sampleOrigins(400)
	if err != nil {
		return nil, err
	}
	region := &volume.Region{Box: volume.BoxAt([4]int{}, grid.Dims), Data: grid.Data}
	fig := &Figure{
		ID:     "dirs",
		Title:  "ablation: direction-set size vs scan cost",
		XLabel: "unique directions",
		YLabel: "ms per 100 ROIs (host time)",
	}
	s := Series{Label: "full matrix + paper parameters"}
	for _, nd := range []int{1, 2, 3, 4} {
		cfg := e.analysis(core.FullMatrix)
		cfg.NDim = nd
		cfg.Directions = nil // sweep the full canonical set of each NDim
		if nd == 1 {
			cfg.Directions = []glcm.Direction{{1, 0, 0, 0}}
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		start := time.Now()
		var st core.Stats
		if _, err := core.AnalyzeRegion(region, origins, &cfg, &st); err != nil {
			return nil, err
		}
		el := time.Since(start)
		s.X = append(s.X, float64(len(cfg.DirectionSet())))
		s.Y = append(s.Y, el.Seconds()*1000/float64(st.ROIs)*100)
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes, "cost grows with the direction set; 4D (40 directions) is the paper's configuration")
	return fig, nil
}

// ChunkShape is an ablation of the IIC-to-TEXTURE chunk size (the paper
// discusses the tradeoff in §5.1: small chunks duplicate too much overlap,
// huge chunks starve the texture filters).
func ChunkShape(e *Env) (*Figure, error) {
	outDims, err := volume.OutputDims(e.Scale.Dims, e.Scale.ROI)
	if err != nil {
		return nil, err
	}
	_ = outDims
	fig := &Figure{
		ID:     "chunk",
		Title:  "ablation: IIC-to-TEXTURE chunk size (§5.1 tradeoff)",
		XLabel: "chunk edge (x=y)",
		YLabel: "execution time (virtual s)",
	}
	s := Series{Label: "HMP full, 8 texture nodes"}
	var notes []string
	for _, edge := range chunkEdges(e.Scale) {
		cs := [4]int{edge, edge, e.Scale.ChunkShape[2], e.Scale.ChunkShape[3]}
		plan := newHomPlan(e.Scale.StorageNodes, 1, 8)
		stats, err := e.simulate(func() (*pipeline.Config, *pipeline.Layout, error) {
			cfg := &pipeline.Config{
				Analysis:   e.analysis(core.FullMatrix),
				ChunkShape: cs,
				Impl:       pipeline.HMPImpl,
				Policy:     filter.DemandDriven,
				Output:     pipeline.OutputCollect,
			}
			layout := &pipeline.Layout{
				SourceNodes: plan.rfr,
				IICNodes:    plan.iic,
				OutputNodes: plan.out,
				HMPNodes:    plan.texture,
			}
			return cfg, layout, nil
		}, cluster.PIIICluster(plan.numNodes()))
		if err != nil {
			return nil, fmt.Errorf("chunk edge=%d: %w", edge, err)
		}
		s.X = append(s.X, float64(edge))
		s.Y = append(s.Y, seconds(stats.Elapsed))
		in := stats.BytesSent("RFR")
		notes = append(notes, fmt.Sprintf("edge %d: %.1f MB read-and-sent by RFR (overlap duplication)", edge, float64(in)/1e6))
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes, "paper: small chunks create too much overlap communication, large chunks distribute poorly")
	fig.Notes = append(fig.Notes, notes...)
	return fig, nil
}

// chunkEdges picks a sweep of square chunk x/y edges valid for the scale.
func chunkEdges(sc Scale) []int {
	roiEdge := sc.ROI[0]
	if sc.ROI[1] > roiEdge {
		roiEdge = sc.ROI[1]
	}
	maxEdge := sc.Dims[0]
	if sc.Dims[1] < maxEdge {
		maxEdge = sc.Dims[1]
	}
	var edges []int
	for e := roiEdge + 1; e <= maxEdge; e *= 2 {
		edges = append(edges, e)
	}
	if len(edges) == 0 || edges[len(edges)-1] != maxEdge {
		edges = append(edges, maxEdge)
	}
	return edges
}

// Kernel sweeps the intra-chunk worker count of the texture kernel (the
// `Workers` knob of core.Config): ROI raster rows are striped across the
// workers, and each worker's per-row scan reuses the overlapping-window
// work with sliding GLCM updates (workers > 1 only; workers = 1 is the
// sequential full-recompute reference). The measurement runs the real
// local-engine pipeline over a one-chunk in-memory sample and reads the
// HMP compute span from the run report — this is the one figure probing
// the in-process kernel rather than the simulated cluster.
func Kernel(e *Env) (*Figure, error) {
	grid, err := e.sampleGrid()
	if err != nil {
		return nil, err
	}
	// Sliding reuse happens along consecutive x origins, so the sample must
	// keep whole raster rows: full x extent, y/z/t clamped (and centered)
	// to bound the ROI count. sampleOrigins would shrink x instead and hide
	// the reuse entirely.
	outDims, err := volume.OutputDims(e.Scale.Dims, e.Scale.ROI)
	if err != nil {
		return nil, err
	}
	shape := outDims
	for k, lim := range [4]int{outDims[0], 8, 2, 2} {
		if shape[k] > lim {
			shape[k] = lim
		}
	}
	for shape[1] > 1 && shape[0]*shape[1]*shape[2]*shape[3] > 1600 {
		shape[1]--
	}
	// Cut the voxel extent those origins cover out of the phantom; its
	// output grid is exactly the sampled origins, and a chunk shaped like
	// the whole sample keeps the sliding reuse unbroken.
	var origin, voxShape [4]int
	for k := 0; k < 4; k++ {
		origin[k] = (outDims[k] - shape[k]) / 2
		voxShape[k] = shape[k] + e.Scale.ROI[k] - 1
	}
	sample := volume.ExtractRegion(grid, volume.BoxAt(origin, voxShape)).Grid(e.Scale.GrayLevels)
	rois := shape[0] * shape[1] * shape[2] * shape[3]
	fig := &Figure{
		ID:     "kernel",
		Title:  "intra-chunk kernel workers with sliding-window GLCM reuse",
		XLabel: "kernel workers",
		YLabel: "ms per 100 ROIs (host time)",
	}
	repeats := e.Repeats
	if repeats < 1 {
		repeats = 1
	}
	// measure runs the one-chunk local-engine pipeline and returns the best
	// HMP compute span (seconds) across the repeats.
	measure := func(analysis core.Config) (float64, *metrics.RunReport, error) {
		var best metrics.SpanStat
		var report *metrics.RunReport
		for r := 0; r < repeats; r++ {
			cfg := &pipeline.Config{
				Analysis:   analysis,
				ChunkShape: sample.Dims,
				Impl:       pipeline.HMPImpl,
				Policy:     filter.DemandDriven,
				Output:     pipeline.OutputCollect,
			}
			layout := &pipeline.Layout{SourceNodes: []int{0}, OutputNodes: []int{0}, HMPNodes: []int{0}}
			g, _, _, err := pipeline.BuildMem(sample, cfg, layout)
			if err != nil {
				return 0, nil, err
			}
			rs, err := pipeline.RunContext(e.ctx(), g, pipeline.EngineLocal, &pipeline.RunOptions{StallTimeout: e.StallTimeout})
			if err != nil {
				return 0, nil, err
			}
			comp := rs.Report.Span("HMP", metrics.SpanCompute)
			if comp.Count == 0 {
				return 0, nil, fmt.Errorf("run report carries no HMP compute span")
			}
			if r == 0 || comp.TotalNS < best.TotalNS {
				best, report = comp, rs.Report
			}
		}
		return float64(best.TotalNS) / 1e9, report, nil
	}
	// Two series over the same worker sweep: the blocked direction-batched
	// kernel (the default) against the legacy sliding per-direction kernels.
	// workers=1 is the shared sequential reference point of both.
	modes := []struct {
		label  string
		kernel core.KernelMode
	}{
		{"blocked kernel (default)", core.KernelAuto},
		{"legacy sliding kernel", core.KernelLegacy},
	}
	for _, mode := range modes {
		s := Series{Label: mode.label + ", sparse matrix + paper parameters"}
		var base float64
		for _, w := range []int{1, 2, 4, 8} {
			analysis := e.analysis(core.SparseMatrix)
			analysis.Workers = w
			analysis.Kernel = mode.kernel
			sec, report, err := measure(analysis)
			if err != nil {
				return nil, fmt.Errorf("kernel %s workers=%d: %w", mode.kernel, w, err)
			}
			e.LastReport = report
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, sec*1000/float64(rois)*100)
			pairs := float64(rois) * float64(glcm.PairCount(e.Scale.ROI, analysis.DirectionSet()))
			if w == 1 {
				base = sec
			}
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%s workers=%d: %.2f Mpairs/s over %d ROIs (%.2fx vs workers=1)",
				mode.kernel, w, pairs/sec/1e6, rois, base/sec))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"timings are the HMP compute span of the run report (local engine, one chunk, one texture copy)",
		"workers=1 is the sequential reference kernel (full recompute per ROI) in both series; workers>1 add window reuse, so single-CPU hosts still gain",
		"the blocked series batches all directions into one raster pass with a dense private scratch (internal/glcm/blocked.go); legacy slides each direction separately",
		"outputs are bit-identical at every worker count and kernel mode (property-tested in internal/core)")
	return fig, nil
}

// AllIDs lists every figure id in presentation order.
func AllIDs() []string {
	return []string{
		"7a", "7b", "8", "9", "10", "11",
		"density", "zeroskip", "iic", "dirs", "chunk", "decluster", "kernel",
		"autotune",
	}
}

// All runs every experiment and returns the figures in presentation order.
func All(e *Env) ([]*Figure, error) {
	var figs []*Figure
	for _, id := range AllIDs() {
		f, err := ByID(e, id)
		if err != nil {
			return figs, fmt.Errorf("experiment %s: %w", id, err)
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// ByID runs the single experiment with the given figure id.
func ByID(e *Env, id string) (*Figure, error) {
	m := map[string]func(*Env) (*Figure, error){
		"7a": Fig7a, "7b": Fig7b, "8": Fig8, "9": Fig9, "10": Fig10, "11": Fig11,
		"density": Density, "zeroskip": ZeroSkip, "iic": IICScaling,
		"dirs": Directions, "chunk": ChunkShape, "decluster": Declustering,
		"kernel": Kernel, "autotune": AutoTuneSweep,
	}
	f, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure id %q", id)
	}
	return f(e)
}

// Declustering is an ablation of the storage distribution policy (§4.2
// cites several declustering methods; the paper picks round-robin because
// analysis queries read whole volumes over time ranges). Each policy's
// dataset is written to a sibling directory and run through the HMP
// pipeline on the simulated PIII cluster with four explicit IIC copies —
// with a single IIC, its receive link serializes ingest and hides the
// layout entirely (the same coupling behind the paper's §5.2 IIC
// replication).
func Declustering(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "decluster",
		Title:  "ablation: slice declustering policy (§4.2)",
		YLabel: "execution time (virtual s)",
	}
	v, err := e.Store.ReadVolume()
	if err != nil {
		return nil, err
	}
	for _, dist := range []dataset.Distribution{dataset.RoundRobinDist, dataset.BlockDist, dataset.SliceModDist} {
		dir, err := os.MkdirTemp("", "haralick4d-dist")
		if err != nil {
			return nil, fmt.Errorf("decluster: %w", err)
		}
		defer os.RemoveAll(dir)
		if _, err := dataset.WriteDistributed(dir, v, e.Scale.StorageNodes, dist); err != nil {
			return nil, err
		}
		st, err := dataset.Open(dir)
		if err != nil {
			return nil, err
		}
		plan := newHomPlan(e.Scale.StorageNodes, 4, 8)
		saved := e.Store
		e.Store = st
		stats, err := e.simulate(func() (*pipeline.Config, *pipeline.Layout, error) {
			cfg := &pipeline.Config{
				Analysis:   e.analysis(core.FullMatrix),
				ChunkShape: e.Scale.ChunkShape,
				Impl:       pipeline.HMPImpl,
				Policy:     filter.DemandDriven,
				Output:     pipeline.OutputCollect,
			}
			layout := &pipeline.Layout{
				SourceNodes: plan.rfr,
				IICNodes:    plan.iic,
				OutputNodes: plan.out,
				HMPNodes:    plan.texture,
			}
			return cfg, layout, nil
		}, cluster.PIIICluster(plan.numNodes()))
		e.Store = saved
		if err != nil {
			return nil, fmt.Errorf("decluster %v: %w", dist, err)
		}
		// Read balance: bytes sent per RFR copy.
		var lo, hi int64 = -1, 0
		for _, c := range stats.Copies["RFR"] {
			if lo < 0 || c.BytesOut < lo {
				lo = c.BytesOut
			}
			if c.BytesOut > hi {
				hi = c.BytesOut
			}
		}
		fig.Series = append(fig.Series, Series{Label: dist.String(), Y: []float64{seconds(stats.Elapsed)}})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: per-reader output %d..%d KB", dist, lo/1000, hi/1000))
	}
	fig.Notes = append(fig.Notes,
		"at this scale the layouts tie: reads are a small fraction of compute, and the z/t-symmetric chunk grid equalizes the per-reader byte totals",
		"the layout matters when retrieval dominates (full-size studies) or when ingest is serialized by a single IIC (see the §5.2 replication experiment)")
	return fig, nil
}

// Package experiments regenerates every figure of the paper's evaluation
// (Figures 7a, 7b, 8, 9, 10, 11), its two quantified in-text claims (sparse
// matrix density, zero-skip speedup) and the IIC-scaling observation, plus
// ablations of the design choices called out in DESIGN.md.
//
// Absolute times are not expected to match the 2004 testbeds; each
// experiment reproduces the *shape* of the paper's result — which variant
// wins, by roughly what factor, and where the crossovers fall. The
// simulated-cluster engine supplies the testbed (relative node speeds,
// FastEthernet/Gigabit links, shared uplinks); the computation itself is
// real.
package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/glcm"
	"haralick4d/internal/metrics"
	"haralick4d/internal/synthetic"
)

// Scale bundles the dataset and analysis geometry of an experiment run.
type Scale struct {
	Name         string
	Dims         [4]int
	ROI          [4]int
	GrayLevels   int
	ChunkShape   [4]int // IIC-to-TEXTURE chunk
	StorageNodes int
	Seed         int64
}

// TinyScale is sized for unit tests and testing.B benchmarks: a full
// experiment completes in well under a second of host time.
func TinyScale() Scale {
	return Scale{
		Name:         "tiny",
		Dims:         [4]int{32, 32, 6, 6},
		ROI:          [4]int{6, 6, 2, 2},
		GrayLevels:   32,
		ChunkShape:   [4]int{12, 12, 4, 4},
		StorageNodes: 4,
		Seed:         1,
	}
}

// SmallScale is the default for cmd/experiments: every figure regenerates
// in minutes on one host while preserving the paper's compute/communication
// ratios.
func SmallScale() Scale {
	return Scale{
		Name:         "small",
		Dims:         [4]int{48, 48, 8, 8},
		ROI:          [4]int{8, 8, 3, 3},
		GrayLevels:   32,
		ChunkShape:   [4]int{16, 16, 5, 5},
		StorageNodes: 4,
		Seed:         1,
	}
}

// PaperScale matches the paper's dataset (§5.1) with the documented
// substitutions for transcription-lost values. A full figure sweep at this
// scale takes hours.
func PaperScale() Scale {
	return Scale{
		Name:         "paper",
		Dims:         [4]int{256, 256, 32, 32},
		ROI:          [4]int{16, 16, 3, 3},
		GrayLevels:   32,
		ChunkShape:   [4]int{48, 48, 8, 8},
		StorageNodes: 4,
		Seed:         1,
	}
}

// ScaleByName returns the named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return TinyScale(), nil
	case "small":
		return SmallScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// DefaultComputeScale calibrates virtual compute time: virtual seconds on a
// speed-1.0 (PIII-900) node per wall second on the host. The texture kernels
// are integer, cache-resident loops whose per-pair cycle counts changed
// little since the PIII, so the honest calibration is close to the clock
// ratio (~2.1 GHz / 0.9 GHz); measured dense-accumulation throughput on this
// class of host confirms ~2–3x. The value shifts absolute virtual times;
// the compute-to-communication ratio it sets is what lets the figures
// reproduce the paper's crossovers.
const DefaultComputeScale = 2.5

// Env is a prepared experiment environment: a phantom study written as a
// disk-resident dataset plus the simulation calibration.
type Env struct {
	Scale        Scale
	Store        *dataset.Store
	ComputeScale float64
	QueueDepth   int
	// Ctx cancels the figures' engine runs: cmd/experiments wires it to
	// SIGTERM/^C so an unattended sweep killed by an orchestrator unwinds
	// through the filter runtime instead of dying mid-write. Nil means
	// context.Background() (uncancellable).
	Ctx context.Context
	// Repeats is how many times each simulated configuration runs; the run
	// with the smallest virtual elapsed time is reported, suppressing host
	// jitter (GC pauses, scheduling noise) that the emulation would
	// otherwise charge as compute. Default 3.
	Repeats int
	// ReadAhead is the depth of the reader filters' read-ahead stage (see
	// filters.RFRConfig.ReadAhead). 0 keeps the synchronous reads; outputs
	// are bit-identical at every depth, so only I/O timing changes.
	ReadAhead int
	// KernelWorkers pins the intra-chunk worker count of the texture
	// kernel. The paper's figures measure scaling across filter copies, so
	// the default is 1 (the sequential reference kernel) — leaving each
	// figure's shape exactly as the paper's single-threaded filters produce
	// it. The `kernel` figure sweeps this knob explicitly.
	KernelWorkers int
	// Kernel selects the accumulation kernel of the parallel scan path.
	// The zero value (core.KernelAuto) uses the blocked kernel whenever the
	// worker count exceeds one; core.KernelLegacy restores the sliding
	// per-direction kernels. The `kernel` figure sweeps both.
	Kernel core.KernelMode
	// MemoPath is the cross-run result journal of the autotune sweep
	// (internal/autotune.Memo): repeated invocations reuse measured cells
	// instead of recomputing them. Setup defaults it to a file next to the
	// dataset; empty disables memoization.
	MemoPath string
	// StallTimeout arms the filter runtime's no-progress watchdog on the
	// figures' engine runs, so an unattended sweep fails with a diagnostic
	// instead of hanging. The simulated cluster runs in virtual time and
	// ignores it; the local-engine ablations honour it. 0 disables.
	StallTimeout time.Duration
	// LastReport is the observability report of the most recent engine run
	// an experiment performed (the best repetition of the last simulated
	// configuration). cmd/experiments surfaces it behind -metrics.
	LastReport *metrics.RunReport
}

// ctx is Env.Ctx with the nil default resolved, so every engine-run site
// cancels consistently without each one re-spelling the fallback.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// Setup generates the phantom study for the scale and writes it, declustered
// across the scale's storage nodes, under dir (created if needed).
//
// Generation is memoized: a marker journal next to the dataset records the
// fingerprint of the generation inputs (dims, seed, storage nodes), and a
// repeated Setup with the same inputs reopens the dataset already on disk
// instead of regenerating and rewriting it — at the paper scale the write
// alone dominates a sweep's startup. A fingerprint mismatch (the directory
// holds a different scale's dataset) regenerates and replaces the marker.
func Setup(scale Scale, dir string) (*Env, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	genPath := filepath.Join(dir, "gen.memo.json")
	genKey := autotune.Key(autotune.FingerprintBytes([]byte(fmt.Sprintf(
		"gendata dims=%v seed=%d nodes=%d", scale.Dims, scale.Seed, scale.StorageNodes))), "gendata")
	genMemo, err := autotune.OpenMemo(genPath)
	if err != nil {
		return nil, err
	}
	if _, ok := genMemo.Get(genKey); !ok {
		// The directory holds exactly one dataset, so a stale marker for a
		// different configuration must not survive the rewrite.
		if err := os.Remove(genPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		genMemo, err = autotune.OpenMemo(genPath)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		v := synthetic.Generate(synthetic.Config{Dims: scale.Dims, Seed: scale.Seed})
		if _, err := dataset.Write(dir, v, scale.StorageNodes); err != nil {
			return nil, err
		}
		if err := genMemo.Put(genKey, autotune.Cell{ElapsedNS: time.Since(start).Nanoseconds()}); err != nil {
			return nil, err
		}
	}
	st, err := dataset.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:         scale,
		Store:         st,
		ComputeScale:  DefaultComputeScale,
		QueueDepth:    16,
		Repeats:       3,
		KernelWorkers: 1,
		MemoPath:      filepath.Join(dir, "autotune-memo.json"),
	}, nil
}

// analysis returns the core analysis config for a representation. The
// performance experiments probe one direction per dimension (the four axis
// directions at distance 1): the paper's formulation computes one
// co-occurrence matrix for "a specific distance ... and a specific
// direction", and its reported runtimes are only consistent with a small
// direction set. The full 40-direction 4D set remains the library default
// and is swept by the `dirs` ablation.
func (e *Env) analysis(rep core.Representation) core.Config {
	workers := e.KernelWorkers
	if workers == 0 {
		workers = 1 // zero-value Env: keep the paper-faithful sequential kernel
	}
	return core.Config{
		ROI:            e.Scale.ROI,
		GrayLevels:     e.Scale.GrayLevels,
		NDim:           4,
		Distance:       1,
		Directions:     glcm.AxisDirections(4, 1),
		Representation: rep,
		Workers:        workers,
		Kernel:         e.Kernel,
	}
}

package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"haralick4d/internal/cluster"
	"haralick4d/internal/core"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
)

// TextureNodeSweep is the processor-count axis of the homogeneous
// experiments (paper Figures 7–9: 1 to 16 texture processors).
var TextureNodeSweep = []int{1, 2, 4, 8, 16}

// homogeneous node-id plan for the PIII-cluster experiments: the input
// dataset "was distributed across 4 I/O nodes. One of the nodes ... was
// used to run the IIC filter. One USO filter was used for output. The
// remaining nodes were used to run the HMP filters or the HCC and HPC
// filters."
type homPlan struct {
	rfr     []int
	iic     []int
	out     []int
	texture []int // texture node pool
}

func newHomPlan(storage, iicCopies, textureNodes int) homPlan {
	p := homPlan{}
	next := 0
	take := func(n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = next
			next++
		}
		return ids
	}
	p.rfr = take(storage)
	p.iic = take(iicCopies)
	p.out = take(1)
	p.texture = take(textureNodes)
	return p
}

func (p homPlan) numNodes() int { return p.texture[len(p.texture)-1] + 1 }

// hccHPCSplit applies the paper's 4-to-1 node ratio between HCC and HPC
// ("the HCC filter was about 4 to 5 times more expensive than the HPC
// filter"); with one node, both run co-located on it.
func hccHPCSplit(textureNodes []int) (hcc, hpc []int) {
	n := len(textureNodes)
	if n == 1 {
		return textureNodes, textureNodes
	}
	nHPC := int(math.Round(float64(n) / 5.0))
	if nHPC < 1 {
		nHPC = 1
	}
	return textureNodes[:n-nHPC], textureNodes[n-nHPC:]
}

// simulate builds and runs a configuration Repeats times on the simulated
// cluster, reporting the run with the smallest virtual elapsed time (the
// one least polluted by host jitter).
func (e *Env) simulate(mk func() (*pipeline.Config, *pipeline.Layout, error), topo *cluster.Topology) (*filter.RunStats, error) {
	reps := e.Repeats
	if reps < 1 {
		reps = 1
	}
	var best *filter.RunStats
	for r := 0; r < reps; r++ {
		// Normalize the collector's state so that garbage from earlier
		// experiments is not charged to this run's filters (the emulation
		// charges all host time, GC assists included, as virtual compute).
		runtime.GC()
		cfg, layout, err := mk()
		if err != nil {
			return nil, err
		}
		cfg.ReadAhead = e.ReadAhead
		g, _, _, err := pipeline.Build(e.Store, cfg, layout)
		if err != nil {
			return nil, err
		}
		stats, err := pipeline.RunContext(e.ctx(), g, pipeline.EngineSim, &pipeline.RunOptions{
			Topology:     topo,
			QueueDepth:   e.QueueDepth,
			ComputeScale: e.ComputeScale,
			StallTimeout: e.StallTimeout,
		})
		if err != nil {
			return nil, err
		}
		if best == nil || stats.Elapsed < best.Elapsed {
			best = stats
		}
	}
	e.LastReport = best.Report
	return best, nil
}

// runHomogeneous executes one homogeneous-cluster configuration on the
// simulated PIII cluster and returns the run statistics (virtual time).
func (e *Env) runHomogeneous(impl pipeline.Impl, rep core.Representation, textureNodes int,
	overlap bool, policy filter.Policy, iicCopies int) (*filter.RunStats, error) {
	plan := newHomPlan(e.Scale.StorageNodes, iicCopies, textureNodes)
	mk := func() (*pipeline.Config, *pipeline.Layout, error) {
		cfg := &pipeline.Config{
			Analysis:   e.analysis(rep),
			ChunkShape: e.Scale.ChunkShape,
			Impl:       impl,
			Policy:     policy,
			Output:     pipeline.OutputCollect,
		}
		layout := &pipeline.Layout{
			SourceNodes: plan.rfr,
			IICNodes:    plan.iic,
			OutputNodes: plan.out,
		}
		switch impl {
		case pipeline.HMPImpl:
			layout.HMPNodes = plan.texture
		case pipeline.SplitImpl:
			if overlap {
				// One HCC and one HPC co-located on every texture node.
				layout.HCCNodes = plan.texture
				layout.HPCNodes = plan.texture
			} else {
				layout.HCCNodes, layout.HPCNodes = hccHPCSplit(plan.texture)
			}
		}
		return cfg, layout, nil
	}
	return e.simulate(mk, cluster.PIIICluster(plan.numNodes()))
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// Fig7a regenerates Figure 7(a): the HMP implementation with full vs sparse
// co-occurrence matrix representation, execution time against the number of
// texture processors. Paper shape: sparse is *worse* (no communication
// between matrix computation and parameter calculation, so the sparse
// build/access overhead is pure loss).
func Fig7a(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "7a",
		Title:  "HMP implementation: full vs sparse matrix representation",
		XLabel: "processors",
		YLabel: "execution time (virtual s)",
	}
	for _, rep := range []core.Representation{core.FullMatrix, core.SparseMatrix} {
		s := Series{Label: "HMP " + rep.String()}
		for _, n := range TextureNodeSweep {
			stats, err := e.runHomogeneous(pipeline.HMPImpl, rep, n, false, filter.DemandDriven, 1)
			if err != nil {
				return nil, fmt.Errorf("fig7a n=%d rep=%v: %w", n, rep, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, seconds(stats.Elapsed))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: sparse representation performs worse than full in the HMP filter")
	return fig, nil
}

// Fig7b regenerates Figure 7(b): the split HCC+HPC implementation with full
// vs sparse representation. Paper shape: sparse is *better* — it shrinks
// the HCC→HPC stream dramatically.
func Fig7b(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "7b",
		Title:  "split HCC+HPC implementation: full vs sparse matrix representation",
		XLabel: "processors",
		YLabel: "execution time (virtual s)",
	}
	for _, rep := range []core.Representation{core.FullMatrix, core.SparseMatrix} {
		s := Series{Label: "HCC+HPC " + rep.String()}
		for _, n := range TextureNodeSweep {
			stats, err := e.runHomogeneous(pipeline.SplitImpl, rep, n, false, filter.DemandDriven, 1)
			if err != nil {
				return nil, fmt.Errorf("fig7b n=%d rep=%v: %w", n, rep, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, seconds(stats.Elapsed))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: sparse representation achieves better performance in the split case (reduced communication)")
	return fig, nil
}

// Fig8 regenerates Figure 8: co-locating HCC and HPC on every texture node
// ("Overlap") vs separate nodes ("No Overlap") vs the HMP implementation.
// Per the paper, HMP uses the full representation and the split variants
// use sparse. Paper shape: Overlap best, despite CPU sharing.
func Fig8(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "8",
		Title:  "co-locating HCC and HPC vs separate processors vs HMP",
		XLabel: "processors",
		YLabel: "execution time (virtual s)",
	}
	type variant struct {
		label   string
		impl    pipeline.Impl
		rep     core.Representation
		overlap bool
	}
	for _, v := range []variant{
		{"HCC+HPC No Overlap", pipeline.SplitImpl, core.SparseMatrix, false},
		{"HCC+HPC All Overlap", pipeline.SplitImpl, core.SparseMatrix, true},
		{"HMP", pipeline.HMPImpl, core.FullMatrix, false},
	} {
		s := Series{Label: v.label}
		for _, n := range TextureNodeSweep {
			stats, err := e.runHomogeneous(v.impl, v.rep, n, v.overlap, filter.DemandDriven, 1)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s n=%d: %w", v.label, n, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, seconds(stats.Elapsed))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: Overlap achieves the best performance; the split implementation beats HMP even on one node (pipelining)")
	return fig, nil
}

// Fig9 regenerates Figure 9: the processing time of each filter (RFR, IIC,
// HCC, HPC, USO) in the split implementation as texture nodes are added.
// Paper shape: HCC/HPC times fall with more nodes; the single IIC flattens
// out and becomes the bottleneck by 16 nodes; RFR and output are
// negligible.
func Fig9(e *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "9",
		Title:  "per-filter processing time, split HCC+HPC implementation",
		XLabel: "processors",
		YLabel: "max per-copy compute time (virtual s)",
	}
	names := []string{"RFR", "IIC", "HCC", "HPC", "OUT"}
	series := make([]Series, len(names))
	for i, n := range names {
		series[i].Label = n
	}
	for _, n := range TextureNodeSweep {
		stats, err := e.runHomogeneous(pipeline.SplitImpl, core.SparseMatrix, n, false, filter.DemandDriven, 1)
		if err != nil {
			return nil, fmt.Errorf("fig9 n=%d: %w", n, err)
		}
		for i, name := range names {
			var maxC time.Duration
			for _, c := range stats.Copies[name] {
				if c.Compute > maxC {
					maxC = c.Compute
				}
			}
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, seconds(maxC))
		}
	}
	fig.Series = series
	fig.Notes = append(fig.Notes,
		"paper: read (RFR) and write (USO) overheads negligible; HCC and HPC decrease with nodes; IIC becomes the bottleneck at 16 nodes")
	return fig, nil
}

// piiiXeonTopology builds the paper's first heterogeneous environment: the
// PIII cluster plus the dual-Xeon cluster, joined by a shared 100 Mbit/s
// uplink.
func piiiXeonTopology() *cluster.Heterogeneous {
	h := cluster.NewHeterogeneous([]cluster.ClusterSpec{
		{Name: "PIII", Nodes: 24, CPUs: 1, Speed: cluster.SpeedPIII, Latency: cluster.LANLatency, MBps: cluster.FastEthernetMBps},
		{Name: "XEON", Nodes: 5, CPUs: 2, Speed: cluster.SpeedXeon, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
	}, cluster.Link{Latency: cluster.LANLatency, MBPerSecond: cluster.FastEthernetMBps})
	return h
}

// Fig10 regenerates Figure 10: HMP vs split HCC+HPC in the heterogeneous
// PIII+XEON environment. Per the paper: 4 RFR, 4 IIC and 2 output filters
// on the PIII cluster; texture filters across 13 PIII nodes and the 5 XEON
// boxes; HMP gets one copy per processor (23), the split implementation
// co-locates one HCC and one HPC on each of the 18 nodes. Paper shape: the
// split implementation wins.
func Fig10(e *Env) (*Figure, error) {
	if e.Scale.StorageNodes != 4 {
		return nil, fmt.Errorf("fig10 requires 4 storage nodes, scale has %d", e.Scale.StorageNodes)
	}
	h := piiiXeonTopology()
	// PIII vnodes 0..23; XEON vnodes 24..33 (two per box).
	piiiTexture := make([]int, 13)
	for i := range piiiTexture {
		piiiTexture[i] = 10 + i
	}
	xeonFirst := []int{24, 26, 28, 30, 32}
	xeonSecond := []int{25, 27, 29, 31, 33}
	base := pipeline.Layout{
		SourceNodes: []int{0, 1, 2, 3},
		IICNodes:    []int{4, 5, 6, 7},
		OutputNodes: []int{8, 9},
	}
	fig := &Figure{
		ID:     "10",
		Title:  "heterogeneous PIII+XEON: HMP vs split HCC+HPC",
		YLabel: "execution time (virtual s)",
	}
	// A bar comparison needs tighter timing than a trend curve: use extra
	// repetitions to squeeze host jitter out of the emulation.
	savedReps := e.Repeats
	if e.Repeats < 7 {
		e.Repeats = 7
	}
	defer func() { e.Repeats = savedReps }()

	// HMP: one transparent copy per processor, 13 + 10 = 23 copies.
	hmpLayout := base
	hmpLayout.HMPNodes = append(append([]int{}, piiiTexture...), append(append([]int{}, xeonFirst...), xeonSecond...)...)
	// Split: 18 co-located HCC/HPC pairs; on the dual-CPU XEON boxes the
	// two filters run on separate processors of the same box.
	splitLayout := base
	splitLayout.HCCNodes = append(append([]int{}, piiiTexture...), xeonFirst...)
	splitLayout.HPCNodes = append(append([]int{}, piiiTexture...), xeonSecond...)

	for _, v := range []struct {
		label  string
		impl   pipeline.Impl
		rep    core.Representation
		layout pipeline.Layout
	}{
		{"HMP implementation", pipeline.HMPImpl, core.FullMatrix, hmpLayout},
		{"HCC+HPC", pipeline.SplitImpl, core.SparseMatrix, splitLayout},
	} {
		v := v
		stats, err := e.simulate(func() (*pipeline.Config, *pipeline.Layout, error) {
			cfg := &pipeline.Config{
				Analysis:   e.analysis(v.rep),
				ChunkShape: e.Scale.ChunkShape,
				Impl:       v.impl,
				Policy:     filter.DemandDriven,
				Output:     pipeline.OutputCollect,
			}
			layout := v.layout
			return cfg, &layout, nil
		}, &h.Topology)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", v.label, err)
		}
		fig.Series = append(fig.Series, Series{Label: v.label, Y: []float64{seconds(stats.Elapsed)}})
	}
	fig.Notes = append(fig.Notes, "paper: the split implementation achieves better performance across the slow inter-cluster link")
	return fig, nil
}

// Fig11 regenerates Figure 11: round-robin vs demand-driven buffer
// scheduling on the XEON+OPTERON environment. Per the paper: 4 RFR, 1 IIC,
// 2 HPC and the output filter on the OPTERON cluster; 4 HCC filters on each
// cluster. Paper shape: demand-driven wins — it steers buffers to the
// OPTERON HCC copies whose HPC consumers are local.
func Fig11(e *Env) (*Figure, error) {
	if e.Scale.StorageNodes != 4 {
		return nil, fmt.Errorf("fig11 requires 4 storage nodes, scale has %d", e.Scale.StorageNodes)
	}
	h := cluster.NewHeterogeneous([]cluster.ClusterSpec{
		{Name: "XEON", Nodes: 5, CPUs: 2, Speed: cluster.SpeedXeon, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
		{Name: "OPTERON", Nodes: 6, CPUs: 2, Speed: cluster.SpeedOpteron, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
	}, cluster.Link{Latency: cluster.LANLatency, MBPerSecond: cluster.GigabitMBps})
	// XEON vnodes 0..9; OPTERON vnodes 10..21.
	layout := &pipeline.Layout{
		SourceNodes: []int{10, 12, 14, 16},             // separate OPTERON boxes
		IICNodes:    []int{18},                         // its own box
		HPCNodes:    []int{11, 13},                     // second processors of RFR boxes
		HCCNodes:    []int{0, 2, 4, 6, 15, 17, 19, 21}, // 4 XEON + 4 OPTERON
		OutputNodes: []int{20},
	}
	fig := &Figure{
		ID:     "11",
		Title:  "round-robin vs demand-driven buffer scheduling (XEON+OPTERON)",
		YLabel: "execution time (virtual s)",
	}
	// Scheduling only differentiates when the scheduler receives feedback
	// while buffers are still unassigned, so this experiment uses a shallow
	// buffer pool (the paper notes the buffer-size sensitivity in its §5.3
	// discussion). Extra repetitions tighten the bar comparison.
	savedDepth, savedReps := e.QueueDepth, e.Repeats
	e.QueueDepth = 4
	if e.Repeats < 7 {
		e.Repeats = 7
	}
	defer func() { e.QueueDepth, e.Repeats = savedDepth, savedReps }()
	for _, policy := range []filter.Policy{filter.RoundRobin, filter.DemandDriven} {
		policy := policy
		stats, err := e.simulate(func() (*pipeline.Config, *pipeline.Layout, error) {
			cfg := &pipeline.Config{
				Analysis:   e.analysis(core.SparseMatrix),
				ChunkShape: e.Scale.ChunkShape,
				Impl:       pipeline.SplitImpl,
				Policy:     policy,
				Output:     pipeline.OutputCollect,
			}
			return cfg, layout, nil
		}, &h.Topology)
		if err != nil {
			return nil, fmt.Errorf("fig11 %v: %w", policy, err)
		}
		fig.Series = append(fig.Series, Series{Label: policy.String(), Y: []float64{seconds(stats.Elapsed)}})
	}
	fig.Notes = append(fig.Notes, "paper: the demand driven method performs better than the round robin method",
		fmt.Sprintf("buffer pool depth %d (shallow pools give the scheduler feedback; see §5.3)", 4))
	return fig, nil
}

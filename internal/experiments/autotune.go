package experiments

import (
	"fmt"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/checkpoint"
	"haralick4d/internal/core"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/volume"
)

// AutoTuneSweep (figure id "autotune") is the cross-run half of the
// autotune design. The knobs the live controller cannot turn mid-run —
// texture copy count and the blocked kernel's tile width, both baked into
// the graph at build time — are tuned the only honest way: repeated real
// trials of the local-engine pipeline over the disk-resident phantom, best
// of Repeats per cell.
//
// Every measured cell is journaled in the Env's Memo under a
// (config fingerprint, parameter cell) key. The fingerprint is the
// checkpoint header's digest of the analysis geometry, so exactly the
// configuration changes that would invalidate a resume journal also
// invalidate a memoized measurement — and a repeated sweep over an
// unchanged configuration recomputes nothing. The figure's `memo:` note
// reports the split (CI asserts recomputed=0 on the second invocation).
func AutoTuneSweep(e *Env) (*Figure, error) {
	copiesSweep := []int{1, 2, 4}
	kblocks := []int{0, 16}
	repeats := e.Repeats
	if repeats < 1 {
		repeats = 1
	}
	// The swept cells only differ on the parallel scan path, so the worker
	// count is pinned above one; everything else rides the Env defaults.
	analysis := e.analysis(core.SparseMatrix)
	analysis.Workers = 2

	// The fingerprint half of the memo key: the same header bytes a resume
	// would verify, over the cell-independent configuration.
	probe := &pipeline.Config{
		Analysis:   analysis,
		ChunkShape: e.Scale.ChunkShape,
		Impl:       pipeline.HMPImpl,
		Policy:     filter.DemandDriven,
		Output:     pipeline.OutputCollect,
	}
	if err := probe.Validate(e.Store.Meta.Dims); err != nil {
		return nil, err
	}
	chunker, err := volume.NewChunker(e.Store.Meta.Dims, probe.ChunkShape, analysis.ROI)
	if err != nil {
		return nil, err
	}
	feats := make([]int, len(probe.Analysis.Features))
	for i, f := range probe.Analysis.Features {
		feats[i] = int(f)
	}
	hdr := checkpoint.Header{
		Dims:           e.Store.Meta.Dims,
		ROI:            analysis.ROI,
		ChunkShape:     probe.ChunkShape,
		OutDims:        chunker.OutputDims(),
		GrayLevels:     analysis.GrayLevels,
		NDim:           analysis.NDim,
		Distance:       analysis.Distance,
		Representation: int(probe.Analysis.Representation),
		Features:       feats,
	}
	fp := hdr.Fingerprint()

	var memo *autotune.Memo
	if e.MemoPath != "" {
		memo, err = autotune.OpenMemo(e.MemoPath)
		if err != nil {
			return nil, err
		}
	}
	recomputed, cached := 0, 0

	measure := func(copies, kblock int) (float64, error) {
		cell := fmt.Sprintf("impl=hmp,workers=%d,ra=%d,copies=%d,kblock=%d",
			analysis.Workers, e.ReadAhead, copies, kblock)
		if memo != nil {
			if c, ok := memo.Get(autotune.Key(fp, cell)); ok {
				cached++
				return float64(c.ElapsedNS) / 1e9, nil
			}
		}
		recomputed++
		var best time.Duration
		for r := 0; r < repeats; r++ {
			acfg := analysis
			acfg.KernelBlock = kblock
			cfg := &pipeline.Config{
				Analysis:   acfg,
				ChunkShape: e.Scale.ChunkShape,
				Impl:       pipeline.HMPImpl,
				Policy:     filter.DemandDriven,
				Output:     pipeline.OutputCollect,
				ReadAhead:  e.ReadAhead,
			}
			layout := &pipeline.Layout{HMPNodes: make([]int, copies)}
			g, _, _, err := pipeline.Build(e.Store, cfg, layout)
			if err != nil {
				return 0, err
			}
			rs, err := pipeline.RunContext(e.ctx(), g, pipeline.EngineLocal, &pipeline.RunOptions{StallTimeout: e.StallTimeout})
			if err != nil {
				return 0, err
			}
			e.LastReport = rs.Report
			if r == 0 || rs.Elapsed < best {
				best = rs.Elapsed
			}
		}
		if memo != nil {
			if err := memo.Put(autotune.Key(fp, cell), autotune.Cell{ElapsedNS: best.Nanoseconds()}); err != nil {
				return 0, err
			}
		}
		return best.Seconds(), nil
	}

	fig := &Figure{
		ID:     "autotune",
		Title:  "cross-run tuning sweep: texture copies × kernel tile width (memoized)",
		XLabel: "texture copies",
		YLabel: "execution time (host s)",
	}
	bestSec, bestCell := 0.0, ""
	for _, kblock := range kblocks {
		s := Series{Label: fmt.Sprintf("kernel-block=%d", kblock)}
		for _, copies := range copiesSweep {
			sec, err := measure(copies, kblock)
			if err != nil {
				return nil, fmt.Errorf("autotune copies=%d kblock=%d: %w", copies, kblock, err)
			}
			s.X = append(s.X, float64(copies))
			s.Y = append(s.Y, sec)
			if bestCell == "" || sec < bestSec {
				bestSec, bestCell = sec, fmt.Sprintf("copies=%d,kblock=%d", copies, kblock)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	memoPath := e.MemoPath
	if memoPath == "" {
		memoPath = "(disabled)"
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("best cell: %s (%.3f s, best of %d repeats per cell)", bestCell, bestSec, repeats),
		fmt.Sprintf("memo: cells=%d recomputed=%d cached=%d path=%s",
			len(copiesSweep)*len(kblocks), recomputed, cached, memoPath),
		fmt.Sprintf("config fingerprint %s (checkpoint header digest: the changes that invalidate a resume journal invalidate these cells)", fp),
		"real local-engine runs over the disk-resident phantom; outputs are bit-identical across all cells, only timing differs")
	return fig, nil
}

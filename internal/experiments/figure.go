package experiments

import (
	"fmt"
	"strings"
)

// Series is one curve (or one bar, when X is empty) of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated evaluation result: one or more series plus notes
// comparing against what the paper reports.
type Figure struct {
	ID     string // e.g. "7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Bars reports whether the figure is categorical (every series is a single
// value, as in the paper's Figures 10 and 11).
func (f *Figure) Bars() bool {
	for _, s := range f.Series {
		if len(s.X) != 0 || len(s.Y) != 1 {
			return false
		}
	}
	return len(f.Series) > 0
}

// String renders the figure as an aligned text table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	if f.Bars() {
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %-28s %12.3f %s\n", s.Label, s.Y[0], f.YLabel)
		}
	} else {
		fmt.Fprintf(&b, "  %-14s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %16s", s.Label)
		}
		b.WriteByte('\n')
		if len(f.Series) > 0 {
			for i, x := range f.Series[0].X {
				fmt.Fprintf(&b, "  %-14g", x)
				for _, s := range f.Series {
					if i < len(s.Y) {
						fmt.Fprintf(&b, " %16.3f", s.Y[i])
					} else {
						fmt.Fprintf(&b, " %16s", "-")
					}
				}
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "  (y: %s)\n", f.YLabel)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values for plotting.
func (f *Figure) CSV() string {
	var b strings.Builder
	if f.Bars() {
		b.WriteString("label,value\n")
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%s,%g\n", s.Label, s.Y[0])
		}
		return b.String()
	}
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			fmt.Fprintf(&b, "%g", x)
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// seriesValue returns the y value of the labeled series at index i (helper
// for tests and EXPERIMENTS.md generation).
func (f *Figure) seriesValue(label string, i int) (float64, bool) {
	for _, s := range f.Series {
		if s.Label == label && i < len(s.Y) {
			return s.Y[i], true
		}
	}
	return 0, false
}

package experiments

import (
	"strings"
	"testing"
)

// raceEnabled is set by race_off_test.go when the race detector is on.
var raceEnabled bool

// sharedEnv runs the full experiment suite once at tiny scale; the shape
// assertions below all test against these figures. Skipped with -short and
// under the race detector (both distort the timing the shapes depend on).
func runAll(t *testing.T) map[string]*Figure {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing-based shape checks are not meaningful under the race detector")
	}
	env, err := Setup(TinyScale(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env.Repeats = 2 // jitter suppression without tripling the suite's runtime
	figs, err := All(env)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]*Figure{}
	for _, f := range figs {
		m[f.ID] = f
	}
	return m
}

var figsOnce map[string]*Figure

func figures(t *testing.T) map[string]*Figure {
	if figsOnce == nil {
		figsOnce = runAll(t)
	}
	return figsOnce
}

func series(t *testing.T, f *Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return Series{}
}

// Figure 7a shape: in the HMP implementation the sparse representation is
// slower than full where compute dominates (few processors), and both
// curves fall as processors are added.
func TestFig7aShape(t *testing.T) {
	f := figures(t)["7a"]
	full := series(t, f, "HMP full")
	sparse := series(t, f, "HMP sparse")
	if sparse.Y[0] <= full.Y[0] {
		t.Errorf("sparse (%v) not slower than full (%v) at 1 processor", sparse.Y[0], full.Y[0])
	}
	if full.Y[len(full.Y)-1] >= full.Y[0] {
		t.Errorf("HMP full did not speed up with processors: %v", full.Y)
	}
	if sparse.Y[len(sparse.Y)-1] >= sparse.Y[0] {
		t.Errorf("HMP sparse did not speed up with processors: %v", sparse.Y)
	}
}

// Figure 7b shape: in the split implementation the sparse representation
// wins decisively once HCC and HPC are on separate nodes (the full
// matrices' communication volume dominates).
func TestFig7bShape(t *testing.T) {
	f := figures(t)["7b"]
	full := series(t, f, "HCC+HPC full")
	sparse := series(t, f, "HCC+HPC sparse")
	for i := 1; i < len(full.Y); i++ { // skip the 1-node co-located point
		if sparse.Y[i] >= full.Y[i] {
			t.Errorf("at %v processors sparse (%v) not faster than full (%v)", full.X[i], sparse.Y[i], full.Y[i])
		}
	}
}

// Figure 8 shape: co-locating HCC and HPC beats running them on separate
// node sets.
func TestFig8Shape(t *testing.T) {
	f := figures(t)["8"]
	noOv := series(t, f, "HCC+HPC No Overlap")
	ov := series(t, f, "HCC+HPC All Overlap")
	better := 0
	for i := 1; i < len(ov.Y); i++ {
		if ov.Y[i] < noOv.Y[i] {
			better++
		}
	}
	if better < len(ov.Y)-2 {
		t.Errorf("Overlap not consistently better: overlap=%v, no-overlap=%v", ov.Y, noOv.Y)
	}
}

// Figure 9 shape: HCC dominates and scales down with processors; input and
// output filters are negligible next to it.
func TestFig9Shape(t *testing.T) {
	f := figures(t)["9"]
	hcc := series(t, f, "HCC")
	rfr := series(t, f, "RFR")
	out := series(t, f, "OUT")
	if hcc.Y[len(hcc.Y)-1] >= hcc.Y[0] {
		t.Errorf("HCC per-copy time did not fall: %v", hcc.Y)
	}
	if rfr.Y[0] > hcc.Y[0]/5 || out.Y[0] > hcc.Y[0]/5 {
		t.Errorf("read/write overheads not negligible: rfr=%v out=%v hcc=%v", rfr.Y[0], out.Y[0], hcc.Y[0])
	}
}

// Figure 10 sanity: both variants complete in comparable virtual time (the
// decisive split-wins margin appears at the larger scales; at tiny scale we
// only require the split implementation not to collapse).
func TestFig10Sanity(t *testing.T) {
	f := figures(t)["10"]
	if !f.Bars() || len(f.Series) != 2 {
		t.Fatalf("unexpected figure: %+v", f)
	}
	hmp, split := f.Series[0].Y[0], f.Series[1].Y[0]
	if hmp <= 0 || split <= 0 {
		t.Fatal("non-positive times")
	}
	if split > 3*hmp {
		t.Errorf("split (%v) collapsed vs HMP (%v)", split, hmp)
	}
}

// Figure 11 shape: demand-driven is at least as fast as round-robin on the
// heterogeneous clusters.
func TestFig11Shape(t *testing.T) {
	f := figures(t)["11"]
	rr := series(t, f, "round-robin").Y[0]
	dd := series(t, f, "demand-driven").Y[0]
	if dd > rr*1.1 {
		t.Errorf("demand-driven (%v) clearly slower than round-robin (%v)", dd, rr)
	}
}

// The sparsity statistic: matrices on MRI-like data are a few percent
// dense, in the paper's ballpark.
func TestDensityShape(t *testing.T) {
	f := figures(t)["density"]
	mean := f.Series[0].Y[0]
	if mean < 2 || mean > 80 {
		t.Errorf("implausible mean entries %v", mean)
	}
	g := 32.0
	if mean/(g*g) > 0.08 {
		t.Errorf("density %.3f not sparse", mean/(g*g))
	}
}

// Zero-skip gives a multiple-x speedup and the sparse form is at least as
// fast as zero-skip (fewer terms to visit).
func TestZeroSkipShape(t *testing.T) {
	f := figures(t)["zeroskip"]
	noskip := series(t, f, "full, no zero test").Y[0]
	skip := series(t, f, "full, zero-skip").Y[0]
	sp := series(t, f, "sparse form").Y[0]
	if noskip/skip < 2 {
		t.Errorf("zero-skip speedup only %.2fx", noskip/skip)
	}
	if sp > skip*1.5 {
		t.Errorf("sparse parameter calculation (%v) much slower than zero-skip (%v)", sp, skip)
	}
}

// IIC replication: per-copy time decreases with copies.
func TestIICScalingShape(t *testing.T) {
	f := figures(t)["iic"]
	s := f.Series[0]
	if s.Y[len(s.Y)-1] > s.Y[0] {
		t.Errorf("IIC per-copy time rose with copies: %v", s.Y)
	}
}

// Direction ablation: cost increases with the direction-set size and the
// x axis hits the canonical counts.
func TestDirectionsShape(t *testing.T) {
	f := figures(t)["dirs"]
	s := f.Series[0]
	wantX := []float64{1, 4, 13, 40}
	for i, x := range wantX {
		if s.X[i] != x {
			t.Errorf("X[%d] = %v, want %v", i, s.X[i], x)
		}
	}
	if s.Y[3] <= s.Y[0] {
		t.Errorf("40 directions (%v) not costlier than 1 (%v)", s.Y[3], s.Y[0])
	}
}

// Chunk-size ablation: the smallest chunk (max overlap duplication) is
// worse than the best chunk.
func TestChunkShapeAblation(t *testing.T) {
	f := figures(t)["chunk"]
	s := f.Series[0]
	best := s.Y[0]
	for _, y := range s.Y {
		if y < best {
			best = y
		}
	}
	if s.Y[0] <= best {
		t.Errorf("smallest chunk (%v) should pay an overlap penalty over the best (%v)", s.Y[0], best)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{
		ID: "x", Title: "t", XLabel: "n", YLabel: "s",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:  []string{"hello"},
	}
	if fig.Bars() {
		t.Error("line figure classified as bars")
	}
	str := fig.String()
	if !strings.Contains(str, "Figure x") || !strings.Contains(str, "hello") {
		t.Errorf("bad rendering: %s", str)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "n,a") || !strings.Contains(csv, "1,3") {
		t.Errorf("bad CSV: %s", csv)
	}
	bars := &Figure{ID: "y", Series: []Series{{Label: "b", Y: []float64{7}}}}
	if !bars.Bars() {
		t.Error("bar figure not classified")
	}
	if !strings.Contains(bars.String(), "b") || !strings.Contains(bars.CSV(), "b,7") {
		t.Error("bad bar rendering")
	}
	if v, ok := fig.seriesValue("a", 1); !ok || v != 4 {
		t.Error("seriesValue failed")
	}
	if _, ok := fig.seriesValue("nope", 0); ok {
		t.Error("seriesValue found missing series")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestByIDUnknown(t *testing.T) {
	env := &Env{}
	if _, err := ByID(env, "nope"); err == nil {
		t.Error("unknown figure id accepted")
	}
}

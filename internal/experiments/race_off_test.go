//go:build race

package experiments

// The experiment shape checks compare virtual times derived from measured
// host compute; the race detector inflates different code paths by
// different factors, making those comparisons meaningless.
func init() { raceEnabled = true }

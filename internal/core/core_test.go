package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

func randomGrid(rng *rand.Rand, dims [4]int, g int) *volume.Grid {
	gr := volume.NewGrid(dims, g)
	for i := range gr.Data {
		gr.Data[i] = uint8(rng.Intn(g))
	}
	return gr
}

func smallConfig(rep Representation) *Config {
	return &Config{
		ROI:            [4]int{4, 4, 2, 2},
		GrayLevels:     8,
		NDim:           4,
		Distance:       1,
		Features:       features.PaperSet(),
		Representation: rep,
	}
}

func TestValidateDefaults(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if c.ROI != def.ROI || c.GrayLevels != def.GrayLevels || c.NDim != def.NDim ||
		c.Distance != def.Distance || len(c.Features) != len(def.Features) {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Config{
		{ROI: [4]int{-1, 1, 1, 1}},
		{GrayLevels: 1},
		{GrayLevels: 300},
		{NDim: 5},
		{Distance: -2},
		{Features: []features.Feature{features.Feature(99)}},
		{Representation: Representation(7)},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestRepresentationString(t *testing.T) {
	for _, r := range []Representation{FullMatrix, FullMatrixNoSkip, SparseMatrix} {
		got, err := ParseRepresentation(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v failed: %v, %v", r, got, err)
		}
	}
	if _, err := ParseRepresentation("bogus"); err == nil {
		t.Error("bogus representation accepted")
	}
	if Representation(9).String() != "representation(9)" {
		t.Error("unknown representation String")
	}
}

func TestDirectionSetOverride(t *testing.T) {
	c := smallConfig(FullMatrix)
	if n := len(c.DirectionSet()); n != 40 {
		t.Errorf("default 4D direction count = %d, want 40", n)
	}
	c.Directions = []glcm.Direction{{1, 0, 0, 0}}
	if n := len(c.DirectionSet()); n != 1 {
		t.Errorf("override direction count = %d", n)
	}
}

func TestAnalyzeGridOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGrid(rng, [4]int{10, 9, 4, 4}, 8)
	cfg := smallConfig(FullMatrix)
	grids, err := AnalyzeGrid(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != len(cfg.Features) {
		t.Fatalf("got %d feature grids", len(grids))
	}
	want := [4]int{7, 6, 3, 3}
	for i, fg := range grids {
		if fg.Dims != want {
			t.Errorf("grid %d dims = %v, want %v", i, fg.Dims, want)
		}
		for _, v := range fg.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %v contains NaN/Inf", cfg.Features[i])
			}
		}
	}
}

// Property: all three representations produce identical outputs on random
// grids — the core cross-check the paper relies on when swapping storage
// schemes.
func TestRepresentationsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [4]int{5 + rng.Intn(4), 5 + rng.Intn(4), 2 + rng.Intn(3), 2 + rng.Intn(3)}
		g := randomGrid(rng, dims, 8)
		var ref []*volume.FloatGrid
		for _, rep := range []Representation{FullMatrix, FullMatrixNoSkip, SparseMatrix} {
			cfg := smallConfig(rep)
			cfg.ROI = [4]int{3, 3, 2, 2}
			cfg.Features = features.All()
			out, err := AnalyzeGrid(g, cfg, nil)
			if err != nil {
				return false
			}
			if ref == nil {
				ref = out
				continue
			}
			for i := range out {
				for j := range out[i].Data {
					a, b := ref[i].Data[j], out[i].Data[j]
					if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: analyzing a grid chunk-by-chunk (through the chunker, as the
// parallel pipelines do) reproduces the whole-grid analysis exactly.
func TestChunkedEqualsWholeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [4]int{8 + rng.Intn(6), 8 + rng.Intn(6), 3 + rng.Intn(3), 3 + rng.Intn(3)}
		g := randomGrid(rng, dims, 8)
		cfg := smallConfig(FullMatrix)
		cfg.ROI = [4]int{3, 3, 2, 2}

		whole, err := AnalyzeGrid(g, cfg, nil)
		if err != nil {
			return false
		}
		chunkShape := [4]int{5, 5, 3, 3}
		ck, err := volume.NewChunker(dims, chunkShape, cfg.ROI)
		if err != nil {
			return false
		}
		outDims, _ := volume.OutputDims(dims, cfg.ROI)
		assembled := make([]*volume.FloatGrid, len(cfg.Features))
		for i := range assembled {
			assembled[i] = volume.NewFloatGrid(outDims)
		}
		for _, ch := range ck.Chunks() {
			region := volume.ExtractRegion(g, ch.Voxels)
			frs, err := AnalyzeRegion(region, ch.Origins, cfg, nil)
			if err != nil {
				return false
			}
			for i, fr := range frs {
				fr.StoreInto(assembled[i])
			}
		}
		for i := range whole {
			for j := range whole[i].Data {
				if whole[i].Data[j] != assembled[i].Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestScanRegionBoundsError(t *testing.T) {
	g := randomGrid(rand.New(rand.NewSource(1)), [4]int{6, 6, 2, 2}, 8)
	region := volume.ExtractRegion(g, volume.BoxAt([4]int{0, 0, 0, 0}, [4]int{4, 4, 2, 2}))
	cfg := smallConfig(FullMatrix)
	// Origins whose ROIs spill outside the region must be rejected.
	err := ScanRegion(region, volume.BoxAt([4]int{0, 0, 0, 0}, [4]int{2, 2, 1, 1}), cfg, nil,
		func([4]int, *glcm.Full, *glcm.Sparse) error { return nil })
	if err == nil {
		t.Error("out-of-region origins accepted")
	}
	if err := ScanRegion(nil, volume.Box{}, cfg, nil, nil); !errors.Is(err, ErrNilRegion) {
		t.Errorf("nil region error = %v", err)
	}
}

func TestScanRegionVisitorError(t *testing.T) {
	g := randomGrid(rand.New(rand.NewSource(2)), [4]int{6, 6, 2, 2}, 8)
	region := &volume.Region{Box: volume.BoxAt([4]int{}, g.Dims), Data: g.Data}
	cfg := smallConfig(FullMatrix)
	boom := errors.New("boom")
	calls := 0
	err := ScanRegion(region, volume.BoxAt([4]int{}, [4]int{2, 1, 1, 1}), cfg, nil,
		func([4]int, *glcm.Full, *glcm.Sparse) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) || calls != 1 {
		t.Errorf("visitor error not propagated: err=%v calls=%d", err, calls)
	}
}

func TestStats(t *testing.T) {
	g := randomGrid(rand.New(rand.NewSource(3)), [4]int{8, 8, 3, 3}, 8)
	cfg := smallConfig(SparseMatrix)
	cfg.ROI = [4]int{3, 3, 2, 2}
	var st Stats
	if _, err := AnalyzeGrid(g, cfg, &st); err != nil {
		t.Fatal(err)
	}
	outDims, _ := volume.OutputDims(g.Dims, cfg.ROI)
	wantROIs := int64(volume.NumVoxels(outDims))
	if st.ROIs != wantROIs {
		t.Errorf("ROIs = %d, want %d", st.ROIs, wantROIs)
	}
	perROI := glcm.PairCount(cfg.ROI, cfg.DirectionSet())
	if st.Pairs != uint64(wantROIs)*perROI {
		t.Errorf("Pairs = %d, want %d", st.Pairs, uint64(wantROIs)*perROI)
	}
	if st.MeanEntries() <= 0 {
		t.Error("MeanEntries should be positive")
	}
	var empty Stats
	if empty.MeanEntries() != 0 {
		t.Error("empty stats MeanEntries should be 0")
	}
}

func TestAnalyzeGridGrayLevelMismatch(t *testing.T) {
	g := volume.NewGrid([4]int{8, 8, 3, 3}, 16)
	cfg := smallConfig(FullMatrix)
	cfg.ROI = [4]int{3, 3, 2, 2}
	if _, err := AnalyzeGrid(g, cfg, nil); err == nil {
		t.Error("gray-level mismatch accepted")
	}
}

func TestAnalyzeGridROIBiggerThanGrid(t *testing.T) {
	g := volume.NewGrid([4]int{4, 4, 1, 1}, 8)
	cfg := smallConfig(FullMatrix)
	cfg.ROI = [4]int{8, 8, 1, 1}
	if _, err := AnalyzeGrid(g, cfg, nil); err == nil {
		t.Error("oversized ROI accepted")
	}
}

// SparseBatch and FullBatch must agree exactly with the matrices ScanRegion
// produces, in raster order, and share the arena correctly.
func TestBatchesMatchScan(t *testing.T) {
	g := randomGrid(rand.New(rand.NewSource(21)), [4]int{10, 9, 4, 4}, 8)
	region := &volume.Region{Box: volume.BoxAt([4]int{}, g.Dims), Data: g.Data}
	origins := volume.BoxAt([4]int{1, 1, 0, 0}, [4]int{4, 3, 2, 2})
	cfg := smallConfig(SparseMatrix)
	cfg.ROI = [4]int{3, 3, 2, 2}

	var wantSparse []*glcm.Sparse
	scanCfg := *cfg
	scanCfg.Representation = SparseMatrix
	err := ScanRegion(region, origins, &scanCfg, nil, func(_ [4]int, _ *glcm.Full, s *glcm.Sparse) error {
		wantSparse = append(wantSparse, &glcm.Sparse{G: s.G, Entries: append([]glcm.Entry(nil), s.Entries...), Total: s.Total})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	gotSparse, err := SparseBatch(region, origins, &scanCfg, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSparse) != len(wantSparse) {
		t.Fatalf("batch has %d matrices, want %d", len(gotSparse), len(wantSparse))
	}
	if st.ROIs != int64(len(wantSparse)) {
		t.Errorf("stats ROIs = %d", st.ROIs)
	}
	for k := range wantSparse {
		if gotSparse[k].Total != wantSparse[k].Total || len(gotSparse[k].Entries) != len(wantSparse[k].Entries) {
			t.Fatalf("matrix %d differs", k)
		}
		for i := range wantSparse[k].Entries {
			if gotSparse[k].Entries[i] != wantSparse[k].Entries[i] {
				t.Fatalf("matrix %d entry %d differs", k, i)
			}
		}
		if err := gotSparse[k].Validate(); err != nil {
			t.Fatalf("matrix %d invalid: %v", k, err)
		}
	}

	fullCfg := *cfg
	fullCfg.Representation = FullMatrix
	gotFull, err := FullBatch(region, origins, &fullCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range gotFull {
		sp := gotFull[k].Sparse()
		if sp.Total != gotSparse[k].Total || sp.NonZero() != gotSparse[k].NonZero() {
			t.Fatalf("full/sparse batch disagree at %d", k)
		}
	}
}

func TestBatchErrors(t *testing.T) {
	g := randomGrid(rand.New(rand.NewSource(22)), [4]int{6, 6, 2, 2}, 8)
	region := volume.ExtractRegion(g, volume.BoxAt([4]int{0, 0, 0, 0}, [4]int{4, 4, 2, 2}))
	cfg := smallConfig(SparseMatrix)
	cfg.ROI = [4]int{3, 3, 2, 2}
	badOrigins := volume.BoxAt([4]int{0, 0, 0, 0}, [4]int{4, 4, 1, 1})
	if _, err := SparseBatch(region, badOrigins, cfg, nil); err == nil {
		t.Error("out-of-region origins accepted by SparseBatch")
	}
	if _, err := FullBatch(region, badOrigins, cfg, nil); err == nil {
		t.Error("out-of-region origins accepted by FullBatch")
	}
	if _, err := SparseBatch(nil, badOrigins, cfg, nil); err == nil {
		t.Error("nil region accepted by SparseBatch")
	}
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"haralick4d/internal/volume"
)

// TestKernelModesAgree pins the kernel knob's contract: for random
// geometries, every mode — auto (blocked by default), forced blocked,
// forced legacy — produces feature values and Stats bit-identical to the
// sequential workers=1 oracle, with and without x tiling.
func TestKernelModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 12; iter++ {
		cfg := Config{}
		var region *volume.Region
		var dims [4]int
		for {
			region, dims = randRegion(rng, 32)
			cfg = randConfig(rng, dims)
			if err := cfg.Validate(); err == nil {
				break
			}
		}
		for i := range region.Data {
			region.Data[i] %= uint8(cfg.GrayLevels)
		}
		outDims, err := volume.OutputDims(dims, cfg.ROI)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		origins := volume.BoxAt([4]int{}, outDims)

		ref := cfg
		ref.Workers = 1
		var refStats Stats
		want, err := AnalyzeRegion(region, origins, &ref, &refStats)
		if err != nil {
			t.Fatalf("iter %d: sequential: %v", iter, err)
		}

		cases := []struct {
			name   string
			kernel KernelMode
			block  int
		}{
			{"auto", KernelAuto, 0},
			{"blocked", KernelBlocked, 0},
			{"blocked-tiled", KernelBlocked, 3},
			{"legacy", KernelLegacy, 0},
		}
		for _, c := range cases {
			pcfg := cfg
			pcfg.Workers = 4
			pcfg.Kernel = c.kernel
			pcfg.KernelBlock = c.block
			var stats Stats
			got, err := AnalyzeRegion(region, origins, &pcfg, &stats)
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, c.name, err)
			}
			if stats != refStats {
				t.Fatalf("iter %d %s: stats %+v, want %+v", iter, c.name, stats, refStats)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Data, want[i].Data) {
					t.Fatalf("iter %d %s: feature %v diverged from sequential reference",
						iter, c.name, cfg.Features[i])
				}
			}
		}
	}
}

// TestKernelModeStringParse round-trips the flag surface.
func TestKernelModeStringParse(t *testing.T) {
	for _, k := range []KernelMode{KernelAuto, KernelBlocked, KernelLegacy} {
		got, err := ParseKernelMode(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernelMode(%q) = (%v, %v), want %v", k.String(), got, err, k)
		}
	}
	if got, err := ParseKernelMode(""); err != nil || got != KernelAuto {
		t.Errorf("empty kernel mode = (%v, %v), want auto", got, err)
	}
	if _, err := ParseKernelMode("vectorized"); err == nil {
		t.Error("ParseKernelMode accepted an unknown mode")
	}
	if s := KernelMode(9).String(); s != "kernel(9)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// TestValidateKernelKnobs covers the Validate rejections of the kernel knob
// pair.
func TestValidateKernelKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kernel = KernelMode(7)
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for out-of-range kernel mode")
	}
	cfg = DefaultConfig()
	cfg.KernelBlock = -1
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for negative kernel block")
	}
	cfg = DefaultConfig()
	cfg.Kernel = KernelBlocked
	cfg.KernelBlock = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid kernel knobs rejected: %v", err)
	}
}

package core

import (
	"fmt"
	"runtime"
	"sync"

	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// This file implements the parallel intra-chunk compute path. The unit of
// work distribution is one ROI raster row (fixed y, z, t — all origins along
// x): rows are split into contiguous blocks, one block per worker, so the
// per-worker results concatenate back into global raster order. Each worker
// owns its own scratch matrix, sparse builder and feature calculator, so the
// hot loop performs no allocation and shares no mutable state; within a row
// the worker advances the matrix with the sliding-window kernels
// (glcm.SlideFull / glcm.SlideSparseScratch) instead of re-rastering every
// ROI, falling back to a full recompute when the window geometry admits no
// reuse.
//
// Workers == 1 never enters this file's machinery: it runs the untouched
// sequential kernel (ScanRegion), which remains the verification oracle.
// Because co-occurrence counts are integers and each matrix's features are
// computed independently, the results are bit-identical across worker
// counts.

// EffectiveWorkers resolves the Workers knob to a concrete worker count:
// the knob itself when positive, GOMAXPROCS when zero.
func (c *Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// spanWorkers bounds the effective worker count by the number of ROI raster
// rows in the origin box, the grain of work distribution.
func spanWorkers(cfg *Config, origins volume.Box) int {
	shape := origins.Shape()
	rows := shape[1] * shape[2] * shape[3]
	w := cfg.EffectiveWorkers()
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// blockRange splits n units into parts contiguous blocks and returns the
// half-open range of block i.
func blockRange(n, parts, i int) (lo, hi int) {
	base, rem := n/parts, n%parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// runRows executes fn over contiguous row blocks: inline for a single
// worker, on one goroutine per block otherwise. It returns the first
// non-nil error in block order.
func runRows(rows, workers int, fn func(w, r0, r1 int) error) error {
	if workers <= 1 {
		return fn(0, 0, rows)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		r0, r1 := blockRange(rows, workers, w)
		if r0 >= r1 {
			continue
		}
		wg.Add(1)
		go func(w, r0, r1 int) {
			defer wg.Done()
			errs[w] = fn(w, r0, r1)
		}(w, r0, r1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rowScanner is one worker's kernel state: the scan geometry plus its own
// scratch matrix or builder. Matrices handed to the visitor are reused
// across calls and must not be retained, exactly like ScanRegion.
type rowScanner struct {
	cfg      *Config
	dirs     []glcm.Direction
	data     []uint8
	strides  [4]int
	lo       [4]int // origins.Lo
	regionLo [4]int
	sy, sz   int
	nx       int
	slide    bool
	pairs    uint64 // logical pairs per matrix (Total/2)
	full     *glcm.Full
	sparse   *glcm.Sparse
	builder  *glcm.SparseBuilder
	blocked  *glcm.Blocked // non-nil when the blocked kernel is planned
}

// newRowScanner builds a scanner for the given scan; sparseRep selects the
// matrix representation (independently of cfg.Representation, because the
// batch builders fix the representation by API). Consecutive raster origins
// are one voxel apart, so the slide stride is always 1; sliding engages
// whenever some direction's pair box is wider than that.
//
// When blocked is set the scanner plans the cache-blocked, direction-batched
// kernel (pooled across chunks via glcm.GetBlocked); geometries the planner
// rejects fall back to the legacy sliding-window kernels. Callers must
// release() the scanner when done so the pooled scratch is recycled.
func newRowScanner(region *volume.Region, origins volume.Box, cfg *Config, sparseRep, blocked bool) *rowScanner {
	shape := origins.Shape()
	dirs := cfg.DirectionSet()
	s := &rowScanner{
		cfg:      cfg,
		dirs:     dirs,
		data:     region.Data,
		strides:  volume.Strides(region.Box.Shape()),
		lo:       origins.Lo,
		regionLo: region.Box.Lo,
		sy:       shape[1],
		sz:       shape[2],
		nx:       shape[0],
		slide:    glcm.Reusable(cfg.ROI, 1, dirs),
		pairs:    glcm.PairCount(cfg.ROI, dirs),
	}
	if blocked {
		k := glcm.GetBlocked(cfg.GrayLevels)
		if k.Plan(s.strides, cfg.ROI, dirs, 1, cfg.KernelBlock) {
			s.blocked = k
		} else {
			glcm.PutBlocked(k)
		}
	}
	if sparseRep {
		s.sparse = glcm.NewSparse(cfg.GrayLevels)
		if s.blocked == nil {
			s.builder = glcm.NewSparseBuilder(cfg.GrayLevels)
		}
	} else {
		s.full = glcm.NewFull(cfg.GrayLevels)
	}
	return s
}

// release returns the scanner's pooled kernel state; the scanner must not
// be used afterwards.
func (s *rowScanner) release() {
	if s.blocked != nil {
		glcm.PutBlocked(s.blocked)
		s.blocked = nil
	}
}

// scan visits the origins of rows [r0, r1) in raster order. Stats counts
// the pairs each matrix represents, not the accumulations performed — the
// sliding kernel performs far fewer, and that gap is the optimization.
func (s *rowScanner) scan(r0, r1 int, stats *Stats, visit ROIVisitor) error {
	for r := r0; r < r1; r++ {
		p := [4]int{
			s.lo[0],
			s.lo[1] + r%s.sy,
			s.lo[2] + (r/s.sy)%s.sz,
			s.lo[3] + r/(s.sy*s.sz),
		}
		for i := 0; i < s.nx; i++ {
			p[0] = s.lo[0] + i
			rel := [4]int{p[0] - s.regionLo[0], p[1] - s.regionLo[1], p[2] - s.regionLo[2], p[3] - s.regionLo[3]}
			if s.blocked != nil {
				// Blocked kernel: one batched pass (or slab update) over all
				// directions, then a merging snapshot into the visitor's
				// matrix. The planner guarantees strides[0] == 1, so the flat
				// origin of the previous window is base-1.
				base := rel[0] + rel[1]*s.strides[1] + rel[2]*s.strides[2] + rel[3]*s.strides[3]
				if i == 0 {
					s.blocked.Reset()
					s.blocked.Accumulate(s.data, base)
				} else {
					s.blocked.Slide(s.data, base-1)
				}
				if s.sparse != nil {
					s.blocked.SnapshotSparse(s.sparse)
					if stats != nil {
						stats.StoredEntries += int64(s.sparse.NonZero())
					}
				} else {
					s.blocked.SnapshotFull(s.full)
					if stats != nil {
						stats.StoredEntries += int64(s.full.NonZero())
					}
				}
			} else if s.sparse != nil {
				if i == 0 || !s.slide {
					s.builder.Clear()
					glcm.ComputeSparseScratch(s.data, s.strides, rel, s.cfg.ROI, s.dirs, s.builder)
				} else {
					prev := rel
					prev[0]--
					glcm.SlideSparseScratch(s.data, s.strides, prev, s.cfg.ROI, 1, s.dirs, s.builder)
				}
				s.builder.Snapshot(s.sparse)
				if stats != nil {
					stats.StoredEntries += int64(s.sparse.NonZero())
				}
			} else {
				if i == 0 || !s.slide {
					s.full.Reset()
					glcm.ComputeFull(s.data, s.strides, rel, s.cfg.ROI, s.dirs, s.full)
				} else {
					prev := rel
					prev[0]--
					glcm.SlideFull(s.data, s.strides, prev, s.cfg.ROI, 1, s.dirs, s.full)
				}
				if stats != nil {
					stats.StoredEntries += int64(s.full.NonZero())
				}
			}
			if stats != nil {
				stats.ROIs++
				stats.Pairs += s.pairs
			}
			if err := visit(p, s.full, s.sparse); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeStats folds per-worker counters into stats (nil-safe).
func mergeStats(stats *Stats, local []Stats) {
	if stats == nil {
		return
	}
	for i := range local {
		stats.ROIs += local[i].ROIs
		stats.Pairs += local[i].Pairs
		stats.StoredEntries += local[i].StoredEntries
	}
}

// AnalyzeRegionInto is AnalyzeRegion writing into caller-provided output
// regions — one per configured feature, each spanning exactly the origin
// box — so callers can pool the float backing across chunks. With an
// effective worker count above one, the ROI raster rows are striped across
// a worker pool running the sliding-window kernel; at one, it runs the
// sequential reference path (ScanRegion), the verification oracle.
func AnalyzeRegionInto(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats, out []*volume.FloatRegion) error {
	if region == nil {
		return ErrNilRegion
	}
	if len(out) != len(cfg.Features) {
		return fmt.Errorf("core: %d output regions for %d features", len(out), len(cfg.Features))
	}
	for i, fr := range out {
		if fr == nil || fr.Box != origins || len(fr.Data) != origins.NumVoxels() {
			return fmt.Errorf("core: output region %d does not span origins %v", i, origins)
		}
	}
	zeroSkip := cfg.Representation == FullMatrix
	workers := spanWorkers(cfg, origins)
	if workers <= 1 {
		calc := features.NewCalculator(cfg.GrayLevels, cfg.Features)
		return ScanRegion(region, origins, cfg, stats, func(origin [4]int, full *glcm.Full, sparse *glcm.Sparse) error {
			vals, err := calcValues(calc, full, sparse, zeroSkip)
			if err != nil {
				return err
			}
			for i, v := range vals {
				out[i].Set(origin, v)
			}
			return nil
		})
	}
	if err := checkOrigins(region, origins, cfg); err != nil {
		return err
	}
	shape := origins.Shape()
	rows := shape[1] * shape[2] * shape[3]
	local := make([]Stats, workers)
	err := runRows(rows, workers, func(w, r0, r1 int) error {
		sc := newRowScanner(region, origins, cfg, cfg.Representation == SparseMatrix, cfg.useBlocked())
		defer sc.release()
		calc := features.NewCalculator(cfg.GrayLevels, cfg.Features)
		var st *Stats
		if stats != nil {
			st = &local[w]
		}
		return sc.scan(r0, r1, st, func(origin [4]int, full *glcm.Full, sparse *glcm.Sparse) error {
			vals, err := calcValues(calc, full, sparse, zeroSkip)
			if err != nil {
				return err
			}
			// Workers write disjoint elements of the shared backing: every
			// origin maps to a unique index.
			for i, v := range vals {
				out[i].Set(origin, v)
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	mergeStats(stats, local)
	return nil
}

func calcValues(calc *features.Calculator, full *glcm.Full, sparse *glcm.Sparse, zeroSkip bool) ([]float64, error) {
	if sparse != nil {
		return calc.FromSparse(sparse)
	}
	return calc.FromFull(full, zeroSkip)
}

package core

import "fmt"

// KernelMode selects the GLCM accumulation kernel used by the parallel
// intra-chunk scan (Workers resolving above one). The sequential workers=1
// path always runs the legacy per-direction reference kernels — it is the
// verification oracle — so the knob only affects which kernel the worker
// pool runs. All kernels produce bit-identical matrices; the blocked kernel
// is simply faster (single raster pass over all directions, LUT
// quantization, one scratch write per pair).
type KernelMode int

const (
	// KernelAuto — the zero value and the default — selects the blocked
	// kernel whenever the scan geometry supports it (x-fastest layout,
	// direction set of at most 64 directions) and falls back to the legacy
	// sliding-window kernels otherwise.
	KernelAuto KernelMode = iota
	// KernelBlocked requests the blocked kernel explicitly. Geometries the
	// blocked planner rejects still fall back to the legacy kernels, so the
	// scan never fails on an exotic configuration.
	KernelBlocked
	// KernelLegacy forces the per-direction legacy kernels everywhere —
	// the pre-blocked behavior, kept for A/B comparison and as an escape
	// hatch.
	KernelLegacy
)

// String returns the short stable name used in flags and reports.
func (k KernelMode) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelBlocked:
		return "blocked"
	case KernelLegacy:
		return "legacy"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// ParseKernelMode is the inverse of String.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "blocked":
		return KernelBlocked, nil
	case "legacy":
		return KernelLegacy, nil
	}
	return 0, fmt.Errorf("core: unknown kernel mode %q", s)
}

// useBlocked reports whether a parallel scan should attempt the blocked
// kernel. Both auto and blocked modes do; the planner's own geometry check
// provides the per-scan fallback.
func (c *Config) useBlocked() bool { return c.Kernel != KernelLegacy }

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

func randRegion(rng *rand.Rand, g int) (*volume.Region, [4]int) {
	dims := [4]int{8 + rng.Intn(20), 6 + rng.Intn(10), 3 + rng.Intn(4), 3 + rng.Intn(4)}
	data := make([]uint8, dims[0]*dims[1]*dims[2]*dims[3])
	for i := range data {
		data[i] = uint8(rng.Intn(g))
	}
	return &volume.Region{Box: volume.BoxAt([4]int{}, dims), Data: data}, dims
}

func randConfig(rng *rand.Rand, dims [4]int) Config {
	cfg := Config{
		ROI: [4]int{
			2 + rng.Intn(dims[0]-2),
			2 + rng.Intn(dims[1]-2),
			1 + rng.Intn(dims[2]-1),
			1 + rng.Intn(dims[3]-1),
		},
		GrayLevels:     2 + rng.Intn(30),
		NDim:           1 + rng.Intn(4),
		Distance:       1,
		Representation: Representation(rng.Intn(3)),
		Features:       features.PaperSet(),
	}
	if rng.Intn(2) == 0 {
		cfg.Directions = glcm.AxisDirections(4, 1)
	}
	return cfg
}

// TestParallelMatchesSequential is the property test of the parallel path:
// for randomized dims, ROI, gray levels, direction set and representation,
// every worker count must produce bit-identical feature values and
// identical Stats to the sequential reference (Workers = 1).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		cfg := Config{}
		var region *volume.Region
		var dims [4]int
		for {
			region, dims = randRegion(rng, 32)
			cfg = randConfig(rng, dims)
			if err := cfg.Validate(); err == nil {
				break
			}
		}
		for i := range region.Data {
			region.Data[i] %= uint8(cfg.GrayLevels)
		}
		outDims, err := volume.OutputDims(dims, cfg.ROI)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		origins := volume.BoxAt([4]int{}, outDims)

		ref := cfg
		ref.Workers = 1
		var refStats Stats
		want, err := AnalyzeRegion(region, origins, &ref, &refStats)
		if err != nil {
			t.Fatalf("iter %d: sequential: %v", iter, err)
		}
		if wantPairs := refStats.Pairs; wantPairs != uint64(refStats.ROIs)*glcm.PairCount(cfg.ROI, cfg.DirectionSet()) {
			t.Fatalf("iter %d: stats pairs %d inconsistent with %d ROIs", iter, wantPairs, refStats.ROIs)
		}

		for _, workers := range []int{2, 3, 4, 8} {
			pcfg := cfg
			pcfg.Workers = workers
			var stats Stats
			got, err := AnalyzeRegion(region, origins, &pcfg, &stats)
			if err != nil {
				t.Fatalf("iter %d workers %d: %v", iter, workers, err)
			}
			if stats != refStats {
				t.Fatalf("iter %d workers %d: stats %+v, want %+v", iter, workers, stats, refStats)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Data, want[i].Data) {
					t.Fatalf("iter %d workers %d: feature %v diverged from sequential reference",
						iter, workers, cfg.Features[i])
				}
			}
		}
	}
}

// TestBatchesMatchSequential checks that the batch builders produce
// value-identical matrices (and Stats) at every worker count.
func TestBatchesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 15; iter++ {
		cfg := Config{}
		var region *volume.Region
		var dims [4]int
		for {
			region, dims = randRegion(rng, 32)
			cfg = randConfig(rng, dims)
			if err := cfg.Validate(); err == nil {
				break
			}
		}
		for i := range region.Data {
			region.Data[i] %= uint8(cfg.GrayLevels)
		}
		outDims, err := volume.OutputDims(dims, cfg.ROI)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		origins := volume.BoxAt([4]int{}, outDims)

		ref := cfg
		ref.Workers = 1
		var refStats Stats
		wantS, err := SparseBatch(region, origins, &ref, &refStats)
		if err != nil {
			t.Fatalf("iter %d: sparse reference: %v", iter, err)
		}
		wantF, err := FullBatch(region, origins, &ref, nil)
		if err != nil {
			t.Fatalf("iter %d: full reference: %v", iter, err)
		}

		for _, workers := range []int{2, 4, 7} {
			pcfg := cfg
			pcfg.Workers = workers
			var stats Stats
			gotS, err := SparseBatch(region, origins, &pcfg, &stats)
			if err != nil {
				t.Fatalf("iter %d workers %d: sparse: %v", iter, workers, err)
			}
			if stats != refStats {
				t.Fatalf("iter %d workers %d: sparse stats %+v, want %+v", iter, workers, stats, refStats)
			}
			if len(gotS) != len(wantS) {
				t.Fatalf("iter %d workers %d: %d sparse matrices, want %d", iter, workers, len(gotS), len(wantS))
			}
			for k := range wantS {
				if err := gotS[k].Validate(); err != nil {
					t.Fatalf("iter %d workers %d: matrix %d invalid: %v", iter, workers, k, err)
				}
				if gotS[k].Total != wantS[k].Total || !reflect.DeepEqual(gotS[k].Entries, wantS[k].Entries) {
					t.Fatalf("iter %d workers %d: sparse matrix %d diverged", iter, workers, k)
				}
			}
			gotF, err := FullBatch(region, origins, &pcfg, nil)
			if err != nil {
				t.Fatalf("iter %d workers %d: full: %v", iter, workers, err)
			}
			if len(gotF) != len(wantF) {
				t.Fatalf("iter %d workers %d: %d full matrices, want %d", iter, workers, len(gotF), len(wantF))
			}
			for k := range wantF {
				if gotF[k].Total != wantF[k].Total || !reflect.DeepEqual(gotF[k].Counts, wantF[k].Counts) {
					t.Fatalf("iter %d workers %d: full matrix %d diverged", iter, workers, k)
				}
			}
		}
	}
}

// TestAnalyzeRegionIntoReuse checks that pooled output regions are refilled
// correctly on reuse (stale values must be overwritten).
func TestAnalyzeRegionIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	region, dims := randRegion(rng, 8)
	cfg := Config{ROI: [4]int{4, 4, 2, 2}, GrayLevels: 8, NDim: 2, Distance: 1, Workers: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	outDims, err := volume.OutputDims(dims, cfg.ROI)
	if err != nil {
		t.Fatal(err)
	}
	origins := volume.BoxAt([4]int{}, outDims)
	want, err := AnalyzeRegion(region, origins, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*volume.FloatRegion, len(cfg.Features))
	for i := range out {
		out[i] = volume.NewFloatRegion(origins)
		for j := range out[i].Data {
			out[i].Data[j] = -1 // stale garbage that must be overwritten
		}
	}
	if err := AnalyzeRegionInto(region, origins, &cfg, nil, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(out[i].Data, want[i].Data) {
			t.Fatalf("feature %v: reused output region diverged", cfg.Features[i])
		}
	}

	if err := AnalyzeRegionInto(region, origins, &cfg, nil, out[:1]); err == nil {
		t.Error("expected error for wrong output region count")
	}
	bad := []*volume.FloatRegion{volume.NewFloatRegion(volume.BoxAt([4]int{}, [4]int{1, 1, 1, 1}))}
	badCfg := cfg
	badCfg.Features = cfg.Features[:1]
	if err := AnalyzeRegionInto(region, origins, &badCfg, nil, bad); err == nil {
		t.Error("expected error for mismatched output region box")
	}
}

// TestValidateWorkersAndPairs covers the new Validate rejections and the
// CheckRegion helper.
func TestValidateWorkersAndPairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for negative workers")
	}
	cfg = DefaultConfig()
	cfg.ROI = [4]int{1, 1, 1, 1}
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for ROI admitting no voxel pairs")
	}
	cfg = DefaultConfig()
	cfg.ROI = [4]int{2, 1, 1, 1}
	cfg.Distance = 2
	if err := cfg.Validate(); err == nil {
		t.Error("expected error when every displacement exceeds the ROI")
	}
	cfg = DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cfg.CheckRegion([4]int{256, 256, 32, 32}); err != nil {
		t.Errorf("CheckRegion rejected a containing region: %v", err)
	}
	if err := cfg.CheckRegion([4]int{8, 256, 32, 32}); err == nil {
		t.Error("CheckRegion accepted a region smaller than the ROI")
	}
	if cfg.EffectiveWorkers() < 1 {
		t.Error("EffectiveWorkers must be at least 1")
	}
	cfg.Workers = 6
	if cfg.EffectiveWorkers() != 6 {
		t.Error("explicit worker count not honored")
	}
}

// Package core implements the 4D Haralick texture analysis algorithm of the
// paper (Fig. 2): a raster scan that visits every region of interest (ROI)
// of a requantized 4D dataset, computes a co-occurrence matrix per ROI in
// the configured representation, and derives the selected Haralick
// parameters from each matrix.
//
// The package is deliberately sequential: it is both the reference
// implementation that the parallel pipelines are verified against and the
// per-chunk computation kernel executed inside the HMP/HCC/HPC filters.
package core

import (
	"errors"
	"fmt"

	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// Representation selects the co-occurrence matrix storage scheme (paper
// §4.4.1).
type Representation int

const (
	// FullMatrix is the dense G×G array with the zero-skip optimization
	// applied during parameter calculation (the paper's optimized full
	// representation, "one-fourth the time").
	FullMatrix Representation = iota
	// FullMatrixNoSkip is the dense array without the zero test — the
	// unoptimized baseline, kept for the ablation experiment.
	FullMatrixNoSkip
	// SparseMatrix stores only non-zero, non-duplicated entries and computes
	// parameters directly from the sparse form.
	SparseMatrix
)

// String returns a short stable name used in flags and reports.
func (r Representation) String() string {
	switch r {
	case FullMatrix:
		return "full"
	case FullMatrixNoSkip:
		return "full-noskip"
	case SparseMatrix:
		return "sparse"
	}
	return fmt.Sprintf("representation(%d)", int(r))
}

// ParseRepresentation is the inverse of String.
func ParseRepresentation(s string) (Representation, error) {
	switch s {
	case "full":
		return FullMatrix, nil
	case "full-noskip":
		return FullMatrixNoSkip, nil
	case "sparse":
		return SparseMatrix, nil
	}
	return 0, fmt.Errorf("core: unknown representation %q", s)
}

// Config holds the texture-analysis parameters shared by the sequential
// reference and all parallel pipelines.
type Config struct {
	// ROI is the region-of-interest window shape (x, y, z, t). Paper default
	// (§5.1, value partly lost in transcription): 16×16×3×3.
	ROI [4]int
	// GrayLevels is G, the requantization level count and co-occurrence
	// matrix size. Paper: 32.
	GrayLevels int
	// NDim selects the direction-set dimensionality (2, 3 or 4); a 4D
	// analysis uses all 40 unique 4D directions.
	NDim int
	// Distance is the displacement magnitude between voxel pairs. Paper
	// uses distance 1.
	Distance int
	// Directions overrides the direction set when non-nil (e.g. a single
	// direction, or axis-only analyses).
	Directions []glcm.Direction
	// Features are the Haralick parameters to compute. Defaults to the
	// paper's four most expensive: ASM, correlation, sum of squares, IDM.
	Features []features.Feature
	// Representation selects the matrix storage scheme.
	Representation Representation
	// Workers bounds the intra-chunk parallelism of AnalyzeRegion and the
	// batch builders: 0 selects GOMAXPROCS, 1 forces the sequential
	// reference kernel (the verification oracle), and larger values stripe
	// ROI raster rows across a worker pool whose per-row kernel also reuses
	// overlapping-window work (glcm.SlideFull / glcm.SlideSparseScratch).
	Workers int
	// Kernel selects the accumulation kernel of the parallel scan path
	// (see KernelMode). The zero value, KernelAuto, enables the blocked
	// kernel by default; the sequential workers=1 reference path is always
	// legacy regardless of this knob.
	Kernel KernelMode
	// KernelBlock bounds the x extent of the blocked kernel's accumulation
	// runs — an L1 tile width in voxels for ROIs whose rows outgrow the
	// cache. 0 (the default) leaves rows untiled; the legacy kernels ignore
	// it.
	KernelBlock int
}

// DefaultConfig returns the paper's experimental configuration (§5.1) with
// the documented substitutions for transcription-lost values.
func DefaultConfig() Config {
	return Config{
		ROI:            [4]int{16, 16, 3, 3},
		GrayLevels:     32,
		NDim:           4,
		Distance:       1,
		Features:       features.PaperSet(),
		Representation: FullMatrix,
	}
}

// Validate checks the configuration and fills zero-valued fields with
// defaults. It returns an error describing the first problem found.
func (c *Config) Validate() error {
	def := DefaultConfig()
	if c.ROI == ([4]int{}) {
		c.ROI = def.ROI
	}
	for k, d := range c.ROI {
		if d < 1 {
			return fmt.Errorf("core: ROI dimension %d is %d, must be >= 1", k, d)
		}
	}
	if c.GrayLevels == 0 {
		c.GrayLevels = def.GrayLevels
	}
	if c.GrayLevels < 2 || c.GrayLevels > 256 {
		return fmt.Errorf("core: gray levels %d out of range [2, 256]", c.GrayLevels)
	}
	if c.NDim == 0 {
		c.NDim = def.NDim
	}
	if c.NDim < 1 || c.NDim > 4 {
		return fmt.Errorf("core: NDim %d out of range [1, 4]", c.NDim)
	}
	if c.Distance == 0 {
		c.Distance = def.Distance
	}
	if c.Distance < 1 {
		return fmt.Errorf("core: distance %d must be >= 1", c.Distance)
	}
	if len(c.Features) == 0 {
		c.Features = def.Features
	}
	for _, f := range c.Features {
		if f < 0 || int(f) >= features.NumFeatures {
			return fmt.Errorf("core: invalid feature %d", int(f))
		}
	}
	if c.Representation < FullMatrix || c.Representation > SparseMatrix {
		return fmt.Errorf("core: invalid representation %d", int(c.Representation))
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d must be >= 0 (0 selects GOMAXPROCS)", c.Workers)
	}
	if c.Kernel < KernelAuto || c.Kernel > KernelLegacy {
		return fmt.Errorf("core: invalid kernel mode %d", int(c.Kernel))
	}
	if c.KernelBlock < 0 {
		return fmt.Errorf("core: kernel block %d must be >= 0 (0 disables tiling)", c.KernelBlock)
	}
	if glcm.PairCount(c.ROI, c.DirectionSet()) == 0 {
		return fmt.Errorf("core: ROI %v admits no voxel pairs at distance %d with %d direction(s) — every direction's displacement exceeds the ROI extent, so all matrices would be empty", c.ROI, c.Distance, len(c.DirectionSet()))
	}
	return nil
}

// CheckRegion verifies that a region (or chunk) of the given shape can host
// at least one ROI of the configured size. It exists so that callers which
// know their data shape up front (the pipeline validator, the library entry
// points) can reject an oversized ROI with a clear error instead of letting
// the scan produce an empty output.
func (c *Config) CheckRegion(shape [4]int) error {
	for k := range shape {
		if c.ROI[k] > shape[k] {
			return fmt.Errorf("core: ROI %v exceeds region shape %v along dimension %d", c.ROI, shape, k)
		}
	}
	return nil
}

// DirectionSet returns the effective direction set.
func (c *Config) DirectionSet() []glcm.Direction {
	if len(c.Directions) > 0 {
		return c.Directions
	}
	return glcm.Directions(c.NDim, c.Distance)
}

// Stats accumulates work counters during a scan; useful for the cost model
// and the sparsity experiment.
type Stats struct {
	ROIs          int64  // co-occurrence matrices computed
	Pairs         uint64 // voxel pairs accumulated
	StoredEntries int64  // sparse entries (or non-zero full cells), summed
}

// MeanEntries returns the average number of stored (non-zero, non-duplicate)
// matrix entries per ROI — the paper's "10.7 non-zero entries per matrix"
// statistic.
func (s *Stats) MeanEntries() float64 {
	if s.ROIs == 0 {
		return 0
	}
	return float64(s.StoredEntries) / float64(s.ROIs)
}

// ErrNilRegion is returned when a scan is invoked with no data.
var ErrNilRegion = errors.New("core: nil region")

// ROIVisitor receives each ROI's co-occurrence matrix during a scan. Exactly
// one of full/sparse is non-nil depending on the configured representation;
// the matrix is reused across calls and must not be retained.
type ROIVisitor func(origin [4]int, full *glcm.Full, sparse *glcm.Sparse) error

// ScanRegion rasters the ROI origins of the box origins over the region
// (paper Fig. 1/2), computing one co-occurrence matrix per origin in the
// configured representation and passing it to visit. Every ROI must lie
// entirely within the region (the chunker guarantees this for chunks).
// stats may be nil.
func ScanRegion(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats, visit ROIVisitor) error {
	if region == nil {
		return ErrNilRegion
	}
	if err := checkOrigins(region, origins, cfg); err != nil {
		return err
	}
	dirs := cfg.DirectionSet()
	shape := region.Box.Shape()
	strides := volume.Strides(shape)
	pairsPerROI := glcm.PairCount(cfg.ROI, dirs)

	var full *glcm.Full
	var sparse *glcm.Sparse
	var builder *glcm.SparseBuilder
	if cfg.Representation == SparseMatrix {
		sparse = glcm.NewSparse(cfg.GrayLevels)
		builder = glcm.NewSparseBuilder(cfg.GrayLevels)
	} else {
		full = glcm.NewFull(cfg.GrayLevels)
	}

	var p [4]int
	for p[3] = origins.Lo[3]; p[3] < origins.Hi[3]; p[3]++ {
		for p[2] = origins.Lo[2]; p[2] < origins.Hi[2]; p[2]++ {
			for p[1] = origins.Lo[1]; p[1] < origins.Hi[1]; p[1]++ {
				for p[0] = origins.Lo[0]; p[0] < origins.Hi[0]; p[0]++ {
					rel := [4]int{p[0] - region.Box.Lo[0], p[1] - region.Box.Lo[1], p[2] - region.Box.Lo[2], p[3] - region.Box.Lo[3]}
					if sparse != nil {
						glcm.ComputeSparseScratch(region.Data, strides, rel, cfg.ROI, dirs, builder)
						builder.Flush(sparse)
						if stats != nil {
							stats.StoredEntries += int64(sparse.NonZero())
						}
					} else {
						full.Reset()
						glcm.ComputeFull(region.Data, strides, rel, cfg.ROI, dirs, full)
						if stats != nil {
							stats.StoredEntries += int64(full.NonZero())
						}
					}
					if stats != nil {
						stats.ROIs++
						stats.Pairs += pairsPerROI
					}
					if err := visit(p, full, sparse); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// SparseBatch computes one sparse co-occurrence matrix per ROI origin of
// the box, in raster order — the HCC filter's product for one packet. The
// matrices of the batch share backing arenas; callers that process chunks
// in a loop should reuse a MatrixBatch via SparseBatchInto instead.
func SparseBatch(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats) ([]*glcm.Sparse, error) {
	var b MatrixBatch
	if err := SparseBatchInto(region, origins, cfg, stats, &b); err != nil {
		return nil, err
	}
	return b.Sparse, nil
}

// FullBatch computes one dense co-occurrence matrix per ROI origin of the
// box, in raster order — the HCC filter's product when the full
// representation is configured. See SparseBatch about reuse.
func FullBatch(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats) ([]*glcm.Full, error) {
	var b MatrixBatch
	if err := FullBatchInto(region, origins, cfg, stats, &b); err != nil {
		return nil, err
	}
	return b.Full, nil
}

// checkOrigins verifies that every ROI rooted in origins lies inside the
// region.
func checkOrigins(region *volume.Region, origins volume.Box, cfg *Config) error {
	roiBoxAll := volume.BoxAt(origins.Lo, [4]int{
		origins.Hi[0] - origins.Lo[0] + cfg.ROI[0] - 1,
		origins.Hi[1] - origins.Lo[1] + cfg.ROI[1] - 1,
		origins.Hi[2] - origins.Lo[2] + cfg.ROI[2] - 1,
		origins.Hi[3] - origins.Lo[3] + cfg.ROI[3] - 1,
	})
	if !region.Box.ContainsBox(roiBoxAll) {
		return fmt.Errorf("core: origins %v with ROI %v exceed region %v", origins, cfg.ROI, region.Box)
	}
	return nil
}

// AnalyzeRegion runs the complete per-chunk computation (co-occurrence
// matrices plus Haralick parameters — what the HMP filter does) over the
// given origins and returns one FloatRegion per requested feature, in the
// order of cfg.Features. With cfg.Workers resolving above one, the ROI
// raster rows are striped across a worker pool (see AnalyzeRegionInto);
// the result is bit-identical to the sequential reference either way.
func AnalyzeRegion(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats) ([]*volume.FloatRegion, error) {
	out := make([]*volume.FloatRegion, len(cfg.Features))
	for i := range out {
		out[i] = volume.NewFloatRegion(origins)
	}
	if err := AnalyzeRegionInto(region, origins, cfg, stats, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AnalyzeGrid is the sequential end-to-end reference: it scans the whole
// grid and returns one full-size FloatGrid per requested feature, in the
// order of cfg.Features. The grid's gray levels must match the config.
func AnalyzeGrid(g *volume.Grid, cfg *Config, stats *Stats) ([]*volume.FloatGrid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.G != cfg.GrayLevels {
		return nil, fmt.Errorf("core: grid has %d gray levels, config %d", g.G, cfg.GrayLevels)
	}
	outDims, err := volume.OutputDims(g.Dims, cfg.ROI)
	if err != nil {
		return nil, err
	}
	region := &volume.Region{Box: volume.BoxAt([4]int{}, g.Dims), Data: g.Data}
	origins := volume.BoxAt([4]int{}, outDims)
	fr, err := AnalyzeRegion(region, origins, cfg, stats)
	if err != nil {
		return nil, err
	}
	grids := make([]*volume.FloatGrid, len(fr))
	for i, r := range fr {
		grids[i] = &volume.FloatGrid{Dims: outDims, Data: r.Data}
	}
	return grids, nil
}

package core

import (
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// MatrixBatch is a reusable container for the batch builders' outputs. The
// matrices of a batch share a handful of backing arrays (one set per
// worker) instead of allocating per ROI, and every backing array is kept
// and re-carved on the next *Into call, so a filter that processes chunks
// in a loop reaches a steady state with no per-chunk allocation. Batches
// are recycled through a sync.Pool by the filter layer.
//
// The published matrices alias the container's arenas: a batch must not be
// reused (or returned to a pool) until its consumer is done with them.
type MatrixBatch struct {
	Sparse []*glcm.Sparse // populated by SparseBatchInto, raster order
	Full   []*glcm.Full   // populated by FullBatchInto, raster order

	sparseHeaders []glcm.Sparse
	fullHeaders   []glcm.Full
	shards        []batchShard
}

// batchShard is one worker's private output arena. Workers own contiguous
// raster-row blocks, so concatenating the shards in worker order restores
// global raster order.
type batchShard struct {
	entries []glcm.Entry // sparse entry arena
	cells   []uint32     // dense counts arena
	counts  []int        // entries per matrix (sparse)
	totals  []uint64     // pair total per matrix
}

func (b *MatrixBatch) reset(workers int) {
	b.Sparse = b.Sparse[:0]
	b.Full = b.Full[:0]
	if cap(b.shards) < workers {
		b.shards = append(b.shards[:cap(b.shards)], make([]batchShard, workers-cap(b.shards))...)
	}
	b.shards = b.shards[:workers]
	for i := range b.shards {
		sh := &b.shards[i]
		sh.entries = sh.entries[:0]
		sh.cells = sh.cells[:0]
		sh.counts = sh.counts[:0]
		sh.totals = sh.totals[:0]
	}
}

// SparseBatchInto computes one sparse co-occurrence matrix per ROI origin
// of the box, in raster order, publishing them on b.Sparse. The matrices
// alias b's arenas; see MatrixBatch. With an effective worker count above
// one the raster rows are striped across a worker pool running the
// sliding-window kernel; at one it runs the sequential reference kernel.
func SparseBatchInto(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats, b *MatrixBatch) error {
	if region == nil {
		return ErrNilRegion
	}
	if err := checkOrigins(region, origins, cfg); err != nil {
		return err
	}
	workers := spanWorkers(cfg, origins)
	b.reset(workers)
	shape := origins.Shape()
	rows := shape[1] * shape[2] * shape[3]
	local := make([]Stats, workers)
	err := runRows(rows, workers, func(w, r0, r1 int) error {
		sc := newRowScanner(region, origins, cfg, true, workers > 1 && cfg.useBlocked())
		defer sc.release()
		if workers == 1 {
			sc.slide = false // sequential reference: full recompute per ROI
		}
		var st *Stats
		if stats != nil {
			st = &local[w]
		}
		sh := &b.shards[w]
		return sc.scan(r0, r1, st, func(_ [4]int, _ *glcm.Full, s *glcm.Sparse) error {
			sh.entries = append(sh.entries, s.Entries...)
			sh.counts = append(sh.counts, len(s.Entries))
			sh.totals = append(sh.totals, s.Total)
			return nil
		})
	})
	if err != nil {
		return err
	}
	mergeStats(stats, local)

	n := origins.NumVoxels()
	if cap(b.sparseHeaders) < n {
		b.sparseHeaders = make([]glcm.Sparse, n)
	}
	hdrs := b.sparseHeaders[:n]
	k := 0
	for si := range b.shards {
		sh := &b.shards[si]
		off := 0
		for m, c := range sh.counts {
			hdrs[k] = glcm.Sparse{G: cfg.GrayLevels, Entries: sh.entries[off : off+c : off+c], Total: sh.totals[m]}
			b.Sparse = append(b.Sparse, &hdrs[k])
			k++
			off += c
		}
	}
	return nil
}

// FullBatchInto is SparseBatchInto for the dense representation: one G×G
// matrix per ROI origin, carved out of per-worker arenas, published on
// b.Full in raster order.
func FullBatchInto(region *volume.Region, origins volume.Box, cfg *Config, stats *Stats, b *MatrixBatch) error {
	if region == nil {
		return ErrNilRegion
	}
	if err := checkOrigins(region, origins, cfg); err != nil {
		return err
	}
	workers := spanWorkers(cfg, origins)
	b.reset(workers)
	shape := origins.Shape()
	rows := shape[1] * shape[2] * shape[3]
	local := make([]Stats, workers)
	err := runRows(rows, workers, func(w, r0, r1 int) error {
		sc := newRowScanner(region, origins, cfg, false, workers > 1 && cfg.useBlocked())
		defer sc.release()
		if workers == 1 {
			sc.slide = false // sequential reference: full recompute per ROI
		}
		var st *Stats
		if stats != nil {
			st = &local[w]
		}
		sh := &b.shards[w]
		return sc.scan(r0, r1, st, func(_ [4]int, full *glcm.Full, _ *glcm.Sparse) error {
			sh.cells = append(sh.cells, full.Counts...)
			sh.totals = append(sh.totals, full.Total)
			return nil
		})
	})
	if err != nil {
		return err
	}
	mergeStats(stats, local)

	n := origins.NumVoxels()
	if cap(b.fullHeaders) < n {
		b.fullHeaders = make([]glcm.Full, n)
	}
	hdrs := b.fullHeaders[:n]
	gg := cfg.GrayLevels * cfg.GrayLevels
	k := 0
	for si := range b.shards {
		sh := &b.shards[si]
		for off := 0; off < len(sh.cells); off += gg {
			hdrs[k] = glcm.Full{G: cfg.GrayLevels, Counts: sh.cells[off : off+gg : off+gg], Total: sh.totals[off/gg]}
			b.Full = append(b.Full, &hdrs[k])
			k++
		}
	}
	return nil
}

package volume

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexAndStrides(t *testing.T) {
	dims := [4]int{4, 5, 6, 7}
	s := Strides(dims)
	if s != [4]int{1, 4, 20, 120} {
		t.Fatalf("Strides = %v", s)
	}
	if Index(dims, 1, 2, 3, 4) != 1+2*4+3*20+4*120 {
		t.Error("Index mismatch")
	}
	if NumVoxels(dims) != 4*5*6*7 {
		t.Error("NumVoxels mismatch")
	}
}

func TestVolumeAccessors(t *testing.T) {
	v := NewVolume([4]int{3, 3, 2, 2})
	v.Set(1, 2, 1, 0, 777)
	if v.At(1, 2, 1, 0) != 777 {
		t.Error("Set/At mismatch")
	}
	sl := v.Slice(1, 0)
	if len(sl) != 9 {
		t.Fatalf("slice length %d", len(sl))
	}
	if sl[1+2*3] != 777 {
		t.Error("Slice view does not alias volume data")
	}
	lo, hi := v.MinMax()
	if lo != 0 || hi != 777 {
		t.Errorf("MinMax = %d, %d", lo, hi)
	}
}

func TestQuantizeValue(t *testing.T) {
	// Full 16-bit range onto 32 levels.
	if QuantizeValue(0, 32, 0, 65535) != 0 {
		t.Error("min should map to 0")
	}
	if QuantizeValue(65535, 32, 0, 65535) != 31 {
		t.Error("max should map to G-1")
	}
	// Degenerate range.
	if QuantizeValue(123, 32, 50, 50) != 0 {
		t.Error("degenerate range should map to 0")
	}
	// Clamping.
	if QuantizeValue(10, 32, 100, 200) != 0 || QuantizeValue(250, 32, 100, 200) != 31 {
		t.Error("clamping failed")
	}
}

// Property: quantization is monotone and always lands in [0, G−1].
func TestQuantizeMonotoneProperty(t *testing.T) {
	f := func(a, b uint16, gRaw uint8) bool {
		g := int(gRaw%255) + 2
		lo, hi := uint16(100), uint16(60000)
		qa := QuantizeValue(a, g, lo, hi)
		qb := QuantizeValue(b, g, lo, hi)
		if int(qa) >= g || int(qb) >= g {
			return false
		}
		if a <= b {
			return qa <= qb
		}
		return qa >= qb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRequantize(t *testing.T) {
	v := NewVolume([4]int{2, 2, 1, 1})
	v.Data = []uint16{10, 20, 30, 40}
	g := Requantize(v, 4)
	if g.Data[0] != 0 {
		t.Errorf("min voxel level = %d, want 0", g.Data[0])
	}
	if g.Data[3] != 3 {
		t.Errorf("max voxel level = %d, want 3", g.Data[3])
	}
	for _, lv := range g.Data {
		if int(lv) >= 4 {
			t.Errorf("level %d out of range", lv)
		}
	}
}

func TestBoxBasics(t *testing.T) {
	b := BoxAt([4]int{1, 2, 3, 4}, [4]int{2, 2, 2, 2})
	if b.Shape() != [4]int{2, 2, 2, 2} || b.NumVoxels() != 16 || b.Empty() {
		t.Error("BoxAt geometry wrong")
	}
	if !b.Contains([4]int{1, 2, 3, 4}) || b.Contains([4]int{3, 2, 3, 4}) {
		t.Error("Contains wrong")
	}
	inter, ok := b.Intersect(BoxAt([4]int{2, 3, 4, 5}, [4]int{5, 5, 5, 5}))
	if !ok || inter.Shape() != [4]int{1, 1, 1, 1} {
		t.Errorf("Intersect = %v, %v", inter, ok)
	}
	if _, ok := b.Intersect(BoxAt([4]int{10, 10, 10, 10}, [4]int{1, 1, 1, 1})); ok {
		t.Error("disjoint boxes intersected")
	}
	if !b.ContainsBox(inter) || inter.ContainsBox(b) {
		t.Error("ContainsBox wrong")
	}
	if b.String() == "" {
		t.Error("empty String")
	}
}

func TestRegionCopyFrom(t *testing.T) {
	src := NewRegion(BoxAt([4]int{0, 0, 0, 0}, [4]int{4, 4, 1, 1}))
	for i := range src.Data {
		src.Data[i] = uint8(i)
	}
	dst := NewRegion(BoxAt([4]int{2, 2, 0, 0}, [4]int{4, 4, 1, 1}))
	n := dst.CopyFrom(src)
	if n != 4 {
		t.Fatalf("copied %d voxels, want 4", n)
	}
	// The overlap is x,y in [2,4): src values at (2,2),(3,2),(2,3),(3,3).
	for _, p := range [][4]int{{2, 2, 0, 0}, {3, 2, 0, 0}, {2, 3, 0, 0}, {3, 3, 0, 0}} {
		if dst.At(p) != src.At(p) {
			t.Errorf("dst%v = %d, want %d", p, dst.At(p), src.At(p))
		}
	}
	// Disjoint copy is a no-op.
	far := NewRegion(BoxAt([4]int{10, 10, 0, 0}, [4]int{2, 2, 1, 1}))
	if far.CopyFrom(src) != 0 {
		t.Error("disjoint CopyFrom copied voxels")
	}
}

func TestExtractRegion(t *testing.T) {
	g := NewGrid([4]int{4, 4, 2, 2}, 16)
	for i := range g.Data {
		g.Data[i] = uint8(i % 16)
	}
	b := BoxAt([4]int{1, 1, 0, 1}, [4]int{2, 2, 2, 1})
	r := ExtractRegion(g, b)
	var p [4]int
	for p[3] = b.Lo[3]; p[3] < b.Hi[3]; p[3]++ {
		for p[2] = b.Lo[2]; p[2] < b.Hi[2]; p[2]++ {
			for p[1] = b.Lo[1]; p[1] < b.Hi[1]; p[1]++ {
				for p[0] = b.Lo[0]; p[0] < b.Hi[0]; p[0]++ {
					if r.At(p) != g.At(p[0], p[1], p[2], p[3]) {
						t.Fatalf("mismatch at %v", p)
					}
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExtractRegion should panic for out-of-grid box")
		}
	}()
	ExtractRegion(g, BoxAt([4]int{3, 3, 0, 0}, [4]int{4, 4, 1, 1}))
}

func TestFloatRegionStoreInto(t *testing.T) {
	fg := NewFloatGrid([4]int{4, 4, 1, 1})
	fr := NewFloatRegion(BoxAt([4]int{1, 1, 0, 0}, [4]int{2, 2, 1, 1}))
	fr.Set([4]int{1, 1, 0, 0}, 3.5)
	fr.Set([4]int{2, 2, 0, 0}, -1.25)
	fr.StoreInto(fg)
	if fg.At(1, 1, 0, 0) != 3.5 || fg.At(2, 2, 0, 0) != -1.25 {
		t.Error("StoreInto values wrong")
	}
	lo, hi := fg.MinMax()
	if lo != -1.25 || hi != 3.5 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestOutputDims(t *testing.T) {
	out, err := OutputDims([4]int{256, 256, 32, 32}, [4]int{16, 16, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out != [4]int{241, 241, 30, 30} {
		t.Errorf("OutputDims = %v", out)
	}
	if _, err := OutputDims([4]int{4, 4, 1, 1}, [4]int{5, 1, 1, 1}); err == nil {
		t.Error("oversized ROI accepted")
	}
	if _, err := OutputDims([4]int{4, 4, 1, 1}, [4]int{0, 1, 1, 1}); err == nil {
		t.Error("zero ROI accepted")
	}
}

func TestChunkerGeometry(t *testing.T) {
	dims := [4]int{16, 16, 8, 8}
	roi := [4]int{4, 4, 3, 3}
	chunkShape := [4]int{8, 8, 4, 4}
	c, err := NewChunker(dims, chunkShape, roi)
	if err != nil {
		t.Fatal(err)
	}
	if c.Overlap() != [4]int{3, 3, 2, 2} {
		t.Errorf("Overlap = %v", c.Overlap())
	}
	outDims, _ := OutputDims(dims, roi)
	if c.OutputDims() != outDims {
		t.Errorf("OutputDims = %v, want %v", c.OutputDims(), outDims)
	}

	// Every chunk's voxel box must fit in the dataset and equal the origin
	// box plus the ROI halo.
	dsBox := BoxAt([4]int{}, dims)
	for _, ch := range c.Chunks() {
		if !dsBox.ContainsBox(ch.Voxels) {
			t.Fatalf("chunk %d voxels %v outside dataset", ch.Index, ch.Voxels)
		}
		for k := 0; k < 4; k++ {
			if ch.Voxels.Hi[k] != ch.Origins.Hi[k]+roi[k]-1 {
				t.Fatalf("chunk %d halo wrong in dim %d", ch.Index, k)
			}
		}
	}
}

// Property: chunk origin boxes tile the output space exactly — every ROI
// origin is owned by exactly one chunk, and OwnerOf agrees.
func TestChunkerTilingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var dims, roi, cs [4]int
		for k := 0; k < 4; k++ {
			dims[k] = 3 + rng.Intn(10)
			roi[k] = 1 + rng.Intn(dims[k])
			maxCS := dims[k]
			cs[k] = roi[k] + rng.Intn(maxCS-roi[k]+1)
		}
		c, err := NewChunker(dims, cs, roi)
		if err != nil {
			return false
		}
		owner := make(map[[4]int]int)
		for _, ch := range c.Chunks() {
			var p [4]int
			for p[3] = ch.Origins.Lo[3]; p[3] < ch.Origins.Hi[3]; p[3]++ {
				for p[2] = ch.Origins.Lo[2]; p[2] < ch.Origins.Hi[2]; p[2]++ {
					for p[1] = ch.Origins.Lo[1]; p[1] < ch.Origins.Hi[1]; p[1]++ {
						for p[0] = ch.Origins.Lo[0]; p[0] < ch.Origins.Hi[0]; p[0]++ {
							if _, dup := owner[p]; dup {
								return false // origin owned twice
							}
							owner[p] = ch.Index
							if c.OwnerOf(p) != ch.Index {
								return false
							}
						}
					}
				}
			}
		}
		out := c.OutputDims()
		return len(owner) == NumVoxels(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestChunkerErrors(t *testing.T) {
	if _, err := NewChunker([4]int{8, 8, 1, 1}, [4]int{2, 8, 1, 1}, [4]int{4, 4, 1, 1}); err == nil {
		t.Error("chunk smaller than ROI accepted")
	}
	if _, err := NewChunker([4]int{8, 8, 1, 1}, [4]int{9, 8, 1, 1}, [4]int{4, 4, 1, 1}); err == nil {
		t.Error("chunk larger than dataset accepted")
	}
}

func TestChunkIndexRoundTrip(t *testing.T) {
	c, err := NewChunker([4]int{20, 20, 6, 6}, [4]int{8, 8, 4, 4}, [4]int{3, 3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Count(); i++ {
		if c.Chunk(i).Index != i {
			t.Fatalf("chunk %d reports index %d", i, c.Chunk(i).Index)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range chunk index should panic")
		}
	}()
	c.Chunk(c.Count())
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewVolume([4]int{0, 1, 1, 1}) },
		func() { NewGrid([4]int{1, 1, 1, 1}, 0) },
		func() { NewFloatGrid([4]int{1, -1, 1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

package volume

import (
	"fmt"
	"sync"
)

// OutputDims returns the dimensions of the texture-analysis output for a
// grid of the given dimensions scanned by an ROI of the given shape: one
// output voxel per ROI origin, ROI fully contained in the dataset
// ("this scanning window process continues for all points in which the ROI
// occurs within the boundary of the image").
func OutputDims(dims, roi [4]int) ([4]int, error) {
	var out [4]int
	for k := 0; k < 4; k++ {
		if roi[k] < 1 {
			return out, fmt.Errorf("volume: ROI dimension %d is %d, must be >= 1", k, roi[k])
		}
		out[k] = dims[k] - roi[k] + 1
		if out[k] < 1 {
			return out, fmt.Errorf("volume: ROI %v larger than dataset %v in dimension %d", roi, dims, k)
		}
	}
	return out, nil
}

// Chunk is one 4D piece of the dataset handed to the texture-analysis
// filters: a voxel box plus the set of ROI origins it is responsible for.
// Index is the chunk's linear id in raster order, used for bookkeeping and
// explicit routing.
type Chunk struct {
	Index   int
	Voxels  Box // voxel extent including the ROI overlap halo
	Origins Box // ROI origins owned by this chunk (each origin owned once)
}

// Chunker partitions a dataset into IIC-to-TEXTURE chunks (paper §4.4):
// every ROI is fully contained in exactly one chunk, so adjacent chunks
// overlap by ROI−1 voxels along each dimension (Eqs. 1–2):
//
//	overlap_d = ROI_d − 1
//
// and chunk origins step by ChunkShape_d − (ROI_d − 1).
type Chunker struct {
	Dims       [4]int // dataset dimensions
	ChunkShape [4]int // requested voxel extent of a chunk
	ROI        [4]int // ROI shape
	counts     [4]int // number of chunks along each dimension
	outDims    [4]int // total ROI origins along each dimension

	sliceOnce  sync.Once
	sliceTable [][]Chunk // chunks intersecting each (z, t) plane, by t·Z + z
}

// NewChunker validates the geometry and returns a chunker. ChunkShape must
// be at least the ROI shape in every dimension (otherwise no ROI fits in a
// chunk) and no larger than the dataset.
func NewChunker(dims, chunkShape, roi [4]int) (*Chunker, error) {
	outDims, err := OutputDims(dims, roi)
	if err != nil {
		return nil, err
	}
	c := &Chunker{Dims: dims, ChunkShape: chunkShape, ROI: roi, outDims: outDims}
	for k := 0; k < 4; k++ {
		if chunkShape[k] < roi[k] {
			return nil, fmt.Errorf("volume: chunk shape %v smaller than ROI %v in dimension %d", chunkShape, roi, k)
		}
		if chunkShape[k] > dims[k] {
			return nil, fmt.Errorf("volume: chunk shape %v larger than dataset %v in dimension %d", chunkShape, dims, k)
		}
		step := chunkShape[k] - (roi[k] - 1) // origins per full chunk
		c.counts[k] = (outDims[k] + step - 1) / step
	}
	return c, nil
}

// Overlap returns the voxel overlap between adjacent chunks along each
// dimension — the quantity of Eqs. 1–2 (ROI_d − 1).
func (c *Chunker) Overlap() [4]int {
	var o [4]int
	for k := 0; k < 4; k++ {
		o[k] = c.ROI[k] - 1
	}
	return o
}

// Count returns the total number of chunks.
func (c *Chunker) Count() int {
	return c.counts[0] * c.counts[1] * c.counts[2] * c.counts[3]
}

// GridCounts returns the number of chunks along each dimension.
func (c *Chunker) GridCounts() [4]int { return c.counts }

// OutputDims returns the full output (ROI-origin) dimensions.
func (c *Chunker) OutputDims() [4]int { return c.outDims }

// Chunk returns the chunk with the given linear index in raster order
// (x-fastest).
func (c *Chunker) Chunk(index int) Chunk {
	if index < 0 || index >= c.Count() {
		panic(fmt.Sprintf("volume: chunk index %d out of range [0, %d)", index, c.Count()))
	}
	var ci [4]int
	rem := index
	for k := 0; k < 4; k++ {
		ci[k] = rem % c.counts[k]
		rem /= c.counts[k]
	}
	var ch Chunk
	ch.Index = index
	for k := 0; k < 4; k++ {
		step := c.ChunkShape[k] - (c.ROI[k] - 1)
		lo := ci[k] * step
		hi := lo + step
		if hi > c.outDims[k] {
			hi = c.outDims[k] // last chunk along this dimension is clipped
		}
		ch.Origins.Lo[k] = lo
		ch.Origins.Hi[k] = hi
		ch.Voxels.Lo[k] = lo
		ch.Voxels.Hi[k] = hi + c.ROI[k] - 1 // the ROI halo
	}
	return ch
}

// Chunks returns all chunks in raster order.
func (c *Chunker) Chunks() []Chunk {
	out := make([]Chunk, c.Count())
	for i := range out {
		out[i] = c.Chunk(i)
	}
	return out
}

// SliceChunks returns the chunks whose voxel boxes intersect the 2D slice
// plane (z, t), in raster order. The reader filters issue one call per I/O
// window; precomputing the per-plane lists replaces the all-chunks
// intersection scan each window used to pay (chunks overlap along z and t,
// so each plane belongs to only a handful of them). The returned slice is
// shared and must not be modified.
func (c *Chunker) SliceChunks(z, t int) []Chunk {
	if z < 0 || z >= c.Dims[2] || t < 0 || t >= c.Dims[3] {
		panic(fmt.Sprintf("volume: slice (z=%d, t=%d) outside dataset %v", z, t, c.Dims))
	}
	c.sliceOnce.Do(func() {
		c.sliceTable = make([][]Chunk, c.Dims[2]*c.Dims[3])
		for _, ch := range c.Chunks() {
			for t := ch.Voxels.Lo[3]; t < ch.Voxels.Hi[3]; t++ {
				for z := ch.Voxels.Lo[2]; z < ch.Voxels.Hi[2]; z++ {
					i := t*c.Dims[2] + z
					c.sliceTable[i] = append(c.sliceTable[i], ch)
				}
			}
		}
	})
	return c.sliceTable[t*c.Dims[2]+z]
}

// OwnerOf returns the linear index of the chunk owning the given ROI
// origin.
func (c *Chunker) OwnerOf(origin [4]int) int {
	idx := 0
	for k := 3; k >= 0; k-- {
		step := c.ChunkShape[k] - (c.ROI[k] - 1)
		ci := origin[k] / step
		if ci >= c.counts[k] {
			ci = c.counts[k] - 1
		}
		idx = idx*c.counts[k] + ci
	}
	if !c.Chunk(idx).Origins.Contains(origin) {
		panic(fmt.Sprintf("volume: owner computation failed for origin %v", origin))
	}
	return idx
}

package volume

import (
	"sync"
	"testing"
)

// TestSliceChunksMatchesBruteForce checks the precomputed per-(z, t) lists
// against intersecting every chunk with every slice plane, over geometries
// with and without clipped boundary chunks.
func TestSliceChunksMatchesBruteForce(t *testing.T) {
	cases := []struct{ dims, chunk, roi [4]int }{
		{[4]int{16, 16, 8, 8}, [4]int{16, 16, 4, 4}, [4]int{3, 3, 2, 2}},
		{[4]int{10, 12, 7, 5}, [4]int{6, 7, 4, 3}, [4]int{3, 4, 2, 2}},
		{[4]int{8, 8, 3, 3}, [4]int{8, 8, 3, 3}, [4]int{2, 2, 1, 1}},
		{[4]int{9, 9, 6, 4}, [4]int{5, 5, 3, 2}, [4]int{2, 2, 2, 1}},
	}
	for _, tc := range cases {
		c, err := NewChunker(tc.dims, tc.chunk, tc.roi)
		if err != nil {
			t.Fatal(err)
		}
		chunks := c.Chunks()
		for z := 0; z < tc.dims[2]; z++ {
			for tt := 0; tt < tc.dims[3]; tt++ {
				plane := Box{
					Lo: [4]int{0, 0, z, tt},
					Hi: [4]int{tc.dims[0], tc.dims[1], z + 1, tt + 1},
				}
				var want []int
				for _, ch := range chunks {
					if _, ok := ch.Voxels.Intersect(plane); ok {
						want = append(want, ch.Index)
					}
				}
				got := c.SliceChunks(z, tt)
				if len(got) != len(want) {
					t.Fatalf("dims %v (z=%d, t=%d): %d chunks, want %d", tc.dims, z, tt, len(got), len(want))
				}
				for i, ch := range got {
					if ch.Index != want[i] {
						t.Fatalf("dims %v (z=%d, t=%d) entry %d: chunk %d, want %d", tc.dims, z, tt, i, ch.Index, want[i])
					}
				}
				if len(got) == 0 {
					t.Fatalf("dims %v (z=%d, t=%d): no intersecting chunks", tc.dims, z, tt)
				}
			}
		}
	}
}

// TestSliceChunksConcurrent exercises the lazy table build from parallel
// readers (one RFR copy per storage node shares the chunker). Run with -race.
func TestSliceChunksConcurrent(t *testing.T) {
	c, err := NewChunker([4]int{16, 16, 6, 6}, [4]int{16, 16, 4, 4}, [4]int{3, 3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for z := 0; z < 6; z++ {
				for tt := 0; tt < 6; tt++ {
					if len(c.SliceChunks(z, tt)) == 0 {
						t.Errorf("no chunks for (z=%d, t=%d)", z, tt)
					}
				}
			}
		}()
	}
	wg.Wait()
}

package volume

import "fmt"

// Box is a half-open 4D axis-aligned box: the voxels p with
// Lo[k] ≤ p[k] < Hi[k] for every dimension k.
type Box struct {
	Lo, Hi [4]int
}

// BoxAt returns the box with the given origin and shape.
func BoxAt(origin, shape [4]int) Box {
	var b Box
	for k := 0; k < 4; k++ {
		b.Lo[k] = origin[k]
		b.Hi[k] = origin[k] + shape[k]
	}
	return b
}

// Shape returns the box's extent along each dimension (never negative).
func (b Box) Shape() [4]int {
	var s [4]int
	for k := 0; k < 4; k++ {
		s[k] = b.Hi[k] - b.Lo[k]
		if s[k] < 0 {
			s[k] = 0
		}
	}
	return s
}

// NumVoxels returns the number of voxels in the box.
func (b Box) NumVoxels() int { return NumVoxels(b.Shape()) }

// Empty reports whether the box contains no voxels.
func (b Box) Empty() bool {
	for k := 0; k < 4; k++ {
		if b.Hi[k] <= b.Lo[k] {
			return true
		}
	}
	return false
}

// Contains reports whether point p lies inside the box.
func (b Box) Contains(p [4]int) bool {
	for k := 0; k < 4; k++ {
		if p[k] < b.Lo[k] || p[k] >= b.Hi[k] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b. An empty o is
// contained in anything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	for k := 0; k < 4; k++ {
		if o.Lo[k] < b.Lo[k] || o.Hi[k] > b.Hi[k] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of the two boxes and whether it is
// non-empty.
func (b Box) Intersect(o Box) (Box, bool) {
	var r Box
	for k := 0; k < 4; k++ {
		r.Lo[k] = max(b.Lo[k], o.Lo[k])
		r.Hi[k] = min(b.Hi[k], o.Hi[k])
		if r.Lo[k] >= r.Hi[k] {
			return Box{}, false
		}
	}
	return r, true
}

// String formats the box as [lo,hi)×... for diagnostics.
func (b Box) String() string {
	return fmt.Sprintf("[%d:%d, %d:%d, %d:%d, %d:%d]",
		b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2], b.Lo[3], b.Hi[3])
}

// Region is a rectangular fragment of a gray-level grid: the voxels of Box,
// stored contiguously x-fastest within the box. Regions are the data chunks
// exchanged between the input filters (RFR → IIC → texture filters).
type Region struct {
	Box  Box
	Data []uint8
}

// NewRegion allocates a zeroed region covering the box.
func NewRegion(b Box) *Region {
	return &Region{Box: b, Data: make([]uint8, b.NumVoxels())}
}

// index returns the flat index of the absolute point p within the region.
// The caller must ensure p is inside the box.
func (r *Region) index(p [4]int) int {
	s := r.Box.Shape()
	return ((((p[3]-r.Box.Lo[3])*s[2]+(p[2]-r.Box.Lo[2]))*s[1])+(p[1]-r.Box.Lo[1]))*s[0] + (p[0] - r.Box.Lo[0])
}

// At returns the voxel at the absolute grid point p.
func (r *Region) At(p [4]int) uint8 { return r.Data[r.index(p)] }

// Set stores the voxel at the absolute grid point p.
func (r *Region) Set(p [4]int, v uint8) { r.Data[r.index(p)] = v }

// SizeBytes returns the approximate wire size of the region.
func (r *Region) SizeBytes() int { return 64 + len(r.Data) }

// CopyFrom copies the intersection of the two regions from src into r and
// returns the number of voxels copied. Row (x-run) copies are used so the
// assembly cost in the IIC filter stays near memcpy speed.
func (r *Region) CopyFrom(src *Region) int {
	inter, ok := r.Box.Intersect(src.Box)
	if !ok {
		return 0
	}
	n := 0
	runLen := inter.Hi[0] - inter.Lo[0]
	var p [4]int
	p[0] = inter.Lo[0]
	for p[3] = inter.Lo[3]; p[3] < inter.Hi[3]; p[3]++ {
		for p[2] = inter.Lo[2]; p[2] < inter.Hi[2]; p[2]++ {
			for p[1] = inter.Lo[1]; p[1] < inter.Hi[1]; p[1]++ {
				di := r.index(p)
				si := src.index(p)
				copy(r.Data[di:di+runLen], src.Data[si:si+runLen])
				n += runLen
			}
		}
	}
	return n
}

// Grid returns the region's data as a standalone grid with the box's shape
// (gray-level count g is supplied by the caller since regions don't carry
// it). The data slice is shared, not copied.
func (r *Region) Grid(g int) *Grid {
	return &Grid{Dims: r.Box.Shape(), G: g, Data: r.Data}
}

// ExtractRegion copies the given box out of a grid into a new contiguous
// region. The box must lie within the grid.
func ExtractRegion(g *Grid, b Box) *Region {
	gridBox := BoxAt([4]int{}, g.Dims)
	if !gridBox.ContainsBox(b) {
		panic(fmt.Sprintf("volume: box %v outside grid %v", b, g.Dims))
	}
	r := NewRegion(b)
	src := &Region{Box: gridBox, Data: g.Data}
	r.CopyFrom(src)
	return r
}

// FloatRegion is a rectangular fragment of a FloatGrid — the output pieces
// streamed from the texture filters to the output filters, carrying the
// computed values of one Haralick parameter plus their positions.
type FloatRegion struct {
	Box  Box
	Data []float64
}

// NewFloatRegion allocates a zeroed float region covering the box.
func NewFloatRegion(b Box) *FloatRegion {
	return &FloatRegion{Box: b, Data: make([]float64, b.NumVoxels())}
}

func (r *FloatRegion) index(p [4]int) int {
	s := r.Box.Shape()
	return ((((p[3]-r.Box.Lo[3])*s[2]+(p[2]-r.Box.Lo[2]))*s[1])+(p[1]-r.Box.Lo[1]))*s[0] + (p[0] - r.Box.Lo[0])
}

// At returns the value at the absolute grid point p.
func (r *FloatRegion) At(p [4]int) float64 { return r.Data[r.index(p)] }

// Set stores the value at the absolute grid point p.
func (r *FloatRegion) Set(p [4]int, v float64) { r.Data[r.index(p)] = v }

// SizeBytes returns the approximate wire size of the region.
func (r *FloatRegion) SizeBytes() int { return 64 + 8*len(r.Data) }

// StoreInto writes the region's values into the float grid at their
// absolute positions; parts outside the grid are ignored.
func (r *FloatRegion) StoreInto(g *FloatGrid) {
	gridBox := BoxAt([4]int{}, g.Dims)
	inter, ok := gridBox.Intersect(r.Box)
	if !ok {
		return
	}
	var p [4]int
	for p[3] = inter.Lo[3]; p[3] < inter.Hi[3]; p[3]++ {
		for p[2] = inter.Lo[2]; p[2] < inter.Hi[2]; p[2]++ {
			for p[1] = inter.Lo[1]; p[1] < inter.Hi[1]; p[1]++ {
				for p[0] = inter.Lo[0]; p[0] < inter.Hi[0]; p[0]++ {
					g.Set(p[0], p[1], p[2], p[3], r.At(p))
				}
			}
		}
	}
}

// Package volume provides the 4D dataset geometry used throughout the
// system: raw 16-bit volumes, requantized gray-level grids, half-open boxes,
// region fragments, the ROI raster-scan geometry, and the chunk partitioning
// with ROI overlap described by the paper (Eqs. 1–2).
//
// All 4D coordinates are (x, y, z, t) with x varying fastest in memory:
// a dataset is a time series (t) of 3D volumes (z slices of x×y images),
// matching the paper's DCE-MRI structure.
package volume

import (
	"fmt"
)

// Index returns the flat index of (x, y, z, t) in a grid with the given
// dimensions, laid out x-fastest.
func Index(dims [4]int, x, y, z, t int) int {
	return ((t*dims[2]+z)*dims[1]+y)*dims[0] + x
}

// NumVoxels returns the total voxel count of a grid with the given
// dimensions.
func NumVoxels(dims [4]int) int {
	return dims[0] * dims[1] * dims[2] * dims[3]
}

// Strides returns the flat-index strides of each dimension, x-fastest.
func Strides(dims [4]int) [4]int {
	return [4]int{1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]}
}

// Volume is a raw 4D image dataset of 2-byte voxels, the acquisition format
// of the paper's DCE-MRI studies.
type Volume struct {
	Dims [4]int // X, Y, Z, T
	Data []uint16
}

// NewVolume allocates a zeroed volume with the given dimensions.
func NewVolume(dims [4]int) *Volume {
	checkDims(dims)
	return &Volume{Dims: dims, Data: make([]uint16, NumVoxels(dims))}
}

func checkDims(dims [4]int) {
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("volume: non-positive dimension %v", dims))
		}
	}
}

// At returns the voxel at (x, y, z, t).
func (v *Volume) At(x, y, z, t int) uint16 { return v.Data[Index(v.Dims, x, y, z, t)] }

// Set stores a voxel at (x, y, z, t).
func (v *Volume) Set(x, y, z, t int, val uint16) { v.Data[Index(v.Dims, x, y, z, t)] = val }

// Slice returns the 2D image slice (z, t) as a view into the volume's data;
// its length is X·Y and modifying it modifies the volume.
func (v *Volume) Slice(z, t int) []uint16 {
	n := v.Dims[0] * v.Dims[1]
	off := Index(v.Dims, 0, 0, z, t)
	return v.Data[off : off+n]
}

// MinMax returns the smallest and largest voxel values. An all-zero volume
// returns (0, 0).
func (v *Volume) MinMax() (lo, hi uint16) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Grid is a requantized 4D dataset: every voxel holds one of G gray levels.
// This is the working representation of the texture analysis (paper: G=32,
// since "values greater than 32 do not significantly improve the texture
// analysis results").
type Grid struct {
	Dims [4]int
	G    int
	Data []uint8
}

// NewGrid allocates a zeroed grid.
func NewGrid(dims [4]int, g int) *Grid {
	checkDims(dims)
	if g < 1 || g > 256 {
		panic("volume: gray levels must be in [1, 256]")
	}
	return &Grid{Dims: dims, G: g, Data: make([]uint8, NumVoxels(dims))}
}

// At returns the gray level at (x, y, z, t).
func (g *Grid) At(x, y, z, t int) uint8 { return g.Data[Index(g.Dims, x, y, z, t)] }

// Set stores a gray level at (x, y, z, t).
func (g *Grid) Set(x, y, z, t int, v uint8) { g.Data[Index(g.Dims, x, y, z, t)] = v }

// Strides returns the grid's flat-index strides.
func (g *Grid) Strides() [4]int { return Strides(g.Dims) }

// Requantize maps the volume linearly onto levels gray levels using the
// volume's own min–max range.
func Requantize(v *Volume, levels int) *Grid {
	lo, hi := v.MinMax()
	return RequantizeRange(v, levels, lo, hi)
}

// RequantizeRange maps the volume linearly onto levels gray levels using the
// fixed range [lo, hi]; values outside the range are clamped. A degenerate
// range (hi ≤ lo) maps everything to level 0. Using a dataset-global range
// lets distributed readers requantize locally yet consistently.
func RequantizeRange(v *Volume, levels int, lo, hi uint16) *Grid {
	g := NewGrid(v.Dims, levels)
	for i, x := range v.Data {
		g.Data[i] = QuantizeValue(x, levels, lo, hi)
	}
	return g
}

// QuantizeValue maps one raw value onto [0, levels−1] linearly over
// [lo, hi], clamping out-of-range values.
func QuantizeValue(x uint16, levels int, lo, hi uint16) uint8 {
	if hi <= lo {
		return 0
	}
	if x <= lo {
		return 0
	}
	if x >= hi {
		return uint8(levels - 1)
	}
	q := int(uint64(x-lo) * uint64(levels) / uint64(hi-lo+1))
	if q >= levels {
		q = levels - 1
	}
	return uint8(q)
}

// FloatGrid is a 4D grid of float64 values — the output type of the texture
// analysis: one FloatGrid per Haralick parameter, with one value per ROI
// position.
type FloatGrid struct {
	Dims [4]int
	Data []float64
}

// NewFloatGrid allocates a zeroed float grid.
func NewFloatGrid(dims [4]int) *FloatGrid {
	checkDims(dims)
	return &FloatGrid{Dims: dims, Data: make([]float64, NumVoxels(dims))}
}

// At returns the value at (x, y, z, t).
func (g *FloatGrid) At(x, y, z, t int) float64 { return g.Data[Index(g.Dims, x, y, z, t)] }

// Set stores a value at (x, y, z, t).
func (g *FloatGrid) Set(x, y, z, t int, v float64) { g.Data[Index(g.Dims, x, y, z, t)] = v }

// MinMax returns the smallest and largest values; an empty grid returns
// (0, 0). Used by the JPEG writer to normalize parameter images.
func (g *FloatGrid) MinMax() (lo, hi float64) {
	if len(g.Data) == 0 {
		return 0, 0
	}
	lo, hi = g.Data[0], g.Data[0]
	for _, x := range g.Data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

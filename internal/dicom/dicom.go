// Package dicom implements the small DICOM subset needed to store and read
// DCE-MRI studies as standard-format image files — the paper's named
// extension point ("the filter developed to read raw DCE-MRI data may be
// easily replaced by a filter which reads DICOM format images", §4.3).
//
// Supported: DICOM Part 10 files (preamble + DICM magic + file meta group)
// holding a single-frame monochrome image in the Explicit VR Little Endian
// transfer syntax (UID 1.2.840.10008.1.2.1) with 16-bit unsigned pixels.
// Anything else is rejected with a descriptive error. This is a clean-room
// implementation of exactly the subset the pipeline produces and consumes;
// it is not a general DICOM toolkit.
package dicom

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"haralick4d/internal/dataset"
)

// ExplicitVRLittleEndian is the only transfer syntax this package handles.
const ExplicitVRLittleEndian = "1.2.840.10008.1.2.1"

// Tag identifies a DICOM data element (group, element).
type Tag struct{ Group, Element uint16 }

// The tags used by the study reader/writer.
var (
	TagFileMetaLength  = Tag{0x0002, 0x0000}
	TagTransferSyntax  = Tag{0x0002, 0x0010}
	TagModality        = Tag{0x0008, 0x0060}
	TagInstanceNumber  = Tag{0x0020, 0x0013}
	TagAcquisitionNum  = Tag{0x0020, 0x0012}
	TagSliceLocation   = Tag{0x0020, 0x1041}
	TagSamplesPerPixel = Tag{0x0028, 0x0002}
	TagPhotometric     = Tag{0x0028, 0x0004}
	TagRows            = Tag{0x0028, 0x0010}
	TagColumns         = Tag{0x0028, 0x0011}
	TagBitsAllocated   = Tag{0x0028, 0x0100}
	TagBitsStored      = Tag{0x0028, 0x0101}
	TagHighBit         = Tag{0x0028, 0x0102}
	TagPixelRep        = Tag{0x0028, 0x0103}
	TagWindowCenter    = Tag{0x0028, 0x1050}
	TagWindowWidth     = Tag{0x0028, 0x1051}
	TagPixelData       = Tag{0x7FE0, 0x0010}
)

// String formats the tag in the conventional (gggg,eeee) form.
func (t Tag) String() string { return fmt.Sprintf("(%04X,%04X)", t.Group, t.Element) }

// Element is one decoded data element.
type Element struct {
	Tag   Tag
	VR    string
	Value []byte
}

// Uint16 decodes a US value.
func (e *Element) Uint16() (uint16, error) {
	if len(e.Value) < 2 {
		return 0, fmt.Errorf("dicom: element %v too short for US", e.Tag)
	}
	return binary.LittleEndian.Uint16(e.Value), nil
}

// Int decodes an IS (integer string) value.
func (e *Element) Int() (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(string(e.Value)))
	if err != nil {
		return 0, fmt.Errorf("dicom: element %v: %w", e.Tag, err)
	}
	return v, nil
}

// Float decodes a DS (decimal string) value.
func (e *Element) Float() (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(string(e.Value)), 64)
	if err != nil {
		return 0, fmt.Errorf("dicom: element %v: %w", e.Tag, err)
	}
	return v, nil
}

// Text decodes a string value with padding stripped.
func (e *Element) Text() string { return strings.TrimRight(string(e.Value), " \x00") }

// longVRs need a 4-byte length preceded by 2 reserved bytes in explicit VR.
var longVRs = map[string]bool{"OB": true, "OW": true, "OF": true, "SQ": true, "UT": true, "UN": true}

// writeElement encodes one element in Explicit VR Little Endian.
func writeElement(w io.Writer, e Element) error {
	// Text VRs are padded to even length per the standard.
	val := e.Value
	if len(val)%2 == 1 {
		pad := byte(' ')
		if e.VR == "OB" || e.VR == "OW" || e.VR == "UI" {
			pad = 0
		}
		val = append(append([]byte{}, val...), pad)
	}
	var hdr bytes.Buffer
	binary.Write(&hdr, binary.LittleEndian, e.Tag.Group)
	binary.Write(&hdr, binary.LittleEndian, e.Tag.Element)
	if len(e.VR) != 2 {
		return fmt.Errorf("dicom: element %v has invalid VR %q", e.Tag, e.VR)
	}
	hdr.WriteString(e.VR)
	if longVRs[e.VR] {
		hdr.Write([]byte{0, 0})
		if len(val) > math.MaxUint32 {
			return fmt.Errorf("dicom: element %v too large", e.Tag)
		}
		binary.Write(&hdr, binary.LittleEndian, uint32(len(val)))
	} else {
		if len(val) > math.MaxUint16 {
			return fmt.Errorf("dicom: element %v too large for short VR", e.Tag)
		}
		binary.Write(&hdr, binary.LittleEndian, uint16(len(val)))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(val)
	return err
}

// readElement decodes one element in Explicit VR Little Endian.
func readElement(r io.Reader) (Element, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Element{}, err // io.EOF at a clean boundary
	}
	e := Element{
		Tag: Tag{binary.LittleEndian.Uint16(head[0:2]), binary.LittleEndian.Uint16(head[2:4])},
		VR:  string(head[4:6]),
	}
	var length uint32
	if longVRs[e.VR] {
		var ext [4]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Element{}, fmt.Errorf("dicom: truncated element %v: %w", e.Tag, err)
		}
		length = binary.LittleEndian.Uint32(ext[:])
	} else {
		length = uint32(binary.LittleEndian.Uint16(head[6:8]))
	}
	if length == 0xFFFFFFFF {
		return Element{}, fmt.Errorf("dicom: element %v has undefined length (sequences unsupported)", e.Tag)
	}
	if length > 1<<30 {
		return Element{}, fmt.Errorf("dicom: element %v implausibly large (%d bytes)", e.Tag, length)
	}
	if !vrPlausible(e.VR) {
		return Element{}, fmt.Errorf("dicom: element %v has implausible VR %q (implicit VR unsupported)", e.Tag, e.VR)
	}
	e.Value = make([]byte, length)
	if _, err := io.ReadFull(r, e.Value); err != nil {
		return Element{}, fmt.Errorf("dicom: truncated element %v: %w", e.Tag, err)
	}
	return e, nil
}

func vrPlausible(vr string) bool {
	for i := 0; i < 2; i++ {
		if vr[i] < 'A' || vr[i] > 'Z' {
			return false
		}
	}
	return true
}

// Image is one decoded single-frame monochrome DICOM image plus the
// metadata the pipeline needs.
type Image struct {
	Rows, Cols     int
	Pixels         []uint16 // row-major, Cols fastest
	InstanceNumber int      // global slice id
	Acquisition    int      // time step t
	SliceLocation  float64  // slice index z
	WindowCenter   float64
	WindowWidth    float64
}

// preambleLen is the Part 10 preamble size.
const preambleLen = 128

var dicmMagic = []byte("DICM")

// Encode writes the image as a DICOM Part 10 file body.
func Encode(w io.Writer, img *Image) error {
	if img.Rows < 1 || img.Cols < 1 || len(img.Pixels) != img.Rows*img.Cols {
		return fmt.Errorf("dicom: image geometry %dx%d does not match %d pixels", img.Cols, img.Rows, len(img.Pixels))
	}
	if _, err := w.Write(make([]byte, preambleLen)); err != nil {
		return err
	}
	if _, err := w.Write(dicmMagic); err != nil {
		return err
	}
	// File meta group: group length first, computed over the following
	// meta elements.
	var meta bytes.Buffer
	if err := writeElement(&meta, Element{Tag: TagTransferSyntax, VR: "UI", Value: []byte(ExplicitVRLittleEndian)}); err != nil {
		return err
	}
	lenBuf := make([]byte, 4)
	binary.LittleEndian.PutUint32(lenBuf, uint32(meta.Len()))
	if err := writeElement(w, Element{Tag: TagFileMetaLength, VR: "UL", Value: lenBuf}); err != nil {
		return err
	}
	if _, err := w.Write(meta.Bytes()); err != nil {
		return err
	}

	pix := make([]byte, 2*len(img.Pixels))
	for i, v := range img.Pixels {
		binary.LittleEndian.PutUint16(pix[2*i:], v)
	}
	us := func(v uint16) []byte {
		b := make([]byte, 2)
		binary.LittleEndian.PutUint16(b, v)
		return b
	}
	ds := func(v float64) []byte { return []byte(strconv.FormatFloat(v, 'f', -1, 64)) }
	is := func(v int) []byte { return []byte(strconv.Itoa(v)) }

	// Dataset elements must appear in ascending tag order.
	elems := []Element{
		{Tag: TagModality, VR: "CS", Value: []byte("MR")},
		{Tag: TagAcquisitionNum, VR: "IS", Value: is(img.Acquisition)},
		{Tag: TagInstanceNumber, VR: "IS", Value: is(img.InstanceNumber)},
		{Tag: TagSliceLocation, VR: "DS", Value: ds(img.SliceLocation)},
		{Tag: TagSamplesPerPixel, VR: "US", Value: us(1)},
		{Tag: TagPhotometric, VR: "CS", Value: []byte("MONOCHROME2")},
		{Tag: TagRows, VR: "US", Value: us(uint16(img.Rows))},
		{Tag: TagColumns, VR: "US", Value: us(uint16(img.Cols))},
		{Tag: TagBitsAllocated, VR: "US", Value: us(16)},
		{Tag: TagBitsStored, VR: "US", Value: us(16)},
		{Tag: TagHighBit, VR: "US", Value: us(15)},
		{Tag: TagPixelRep, VR: "US", Value: us(0)},
		{Tag: TagWindowCenter, VR: "DS", Value: ds(img.WindowCenter)},
		{Tag: TagWindowWidth, VR: "DS", Value: ds(img.WindowWidth)},
		{Tag: TagPixelData, VR: "OW", Value: pix},
	}
	for _, e := range elems {
		if err := writeElement(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses a DICOM Part 10 file produced by Encode (or any conforming
// Explicit-VR-LE single-frame 16-bit monochrome file carrying the tags the
// pipeline needs). headerOnly stops before materializing pixel data, for
// cheap index scans.
func Decode(r io.Reader, headerOnly bool) (*Image, error) {
	return decode(r, headerOnly, nil)
}

// DecodeInto is Decode with the pixel values written into the caller's
// buffer (which must hold exactly Rows·Cols values) instead of a fresh
// allocation — the streaming reader's steady-state path. The returned
// Image's Pixels aliases pixels.
func DecodeInto(r io.Reader, pixels []uint16) (*Image, error) {
	return decode(r, false, pixels)
}

func decode(r io.Reader, headerOnly bool, dst []uint16) (*Image, error) {
	pre := make([]byte, preambleLen+4)
	if _, err := io.ReadFull(r, pre); err != nil {
		return nil, fmt.Errorf("dicom: truncated preamble: %w", err)
	}
	if !bytes.Equal(pre[preambleLen:], dicmMagic) {
		return nil, fmt.Errorf("dicom: missing DICM magic")
	}
	// File meta group.
	metaLenElem, err := readElement(r)
	if err != nil {
		return nil, fmt.Errorf("dicom: reading file meta length: %w", err)
	}
	if metaLenElem.Tag != TagFileMetaLength || len(metaLenElem.Value) != 4 {
		return nil, fmt.Errorf("dicom: expected %v first, got %v", TagFileMetaLength, metaLenElem.Tag)
	}
	metaLen := binary.LittleEndian.Uint32(metaLenElem.Value)
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("dicom: implausible file meta length %d", metaLen)
	}
	metaRaw := make([]byte, metaLen)
	if _, err := io.ReadFull(r, metaRaw); err != nil {
		return nil, fmt.Errorf("dicom: truncated file meta group: %w", err)
	}
	syntax := ""
	metaR := bytes.NewReader(metaRaw)
	for {
		e, err := readElement(metaR)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if e.Tag == TagTransferSyntax {
			syntax = e.Text()
		}
	}
	if syntax != ExplicitVRLittleEndian {
		return nil, fmt.Errorf("dicom: unsupported transfer syntax %q (only explicit VR little endian)", syntax)
	}

	img := &Image{}
	bitsAllocated := 16
	for {
		e, err := readElement(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch e.Tag {
		case TagRows:
			v, err := e.Uint16()
			if err != nil {
				return nil, err
			}
			img.Rows = int(v)
		case TagColumns:
			v, err := e.Uint16()
			if err != nil {
				return nil, err
			}
			img.Cols = int(v)
		case TagBitsAllocated:
			v, err := e.Uint16()
			if err != nil {
				return nil, err
			}
			bitsAllocated = int(v)
		case TagInstanceNumber:
			if img.InstanceNumber, err = e.Int(); err != nil {
				return nil, err
			}
		case TagAcquisitionNum:
			if img.Acquisition, err = e.Int(); err != nil {
				return nil, err
			}
		case TagSliceLocation:
			if img.SliceLocation, err = e.Float(); err != nil {
				return nil, err
			}
		case TagWindowCenter:
			if img.WindowCenter, err = e.Float(); err != nil {
				return nil, err
			}
		case TagWindowWidth:
			if img.WindowWidth, err = e.Float(); err != nil {
				return nil, err
			}
		case TagPixelData:
			if headerOnly {
				return img, nil
			}
			if bitsAllocated != 16 {
				return nil, fmt.Errorf("dicom: unsupported bits allocated %d", bitsAllocated)
			}
			want := img.Rows * img.Cols * 2
			if len(e.Value) != want {
				return nil, fmt.Errorf("dicom: pixel data is %d bytes, want %d for %dx%d", len(e.Value), want, img.Cols, img.Rows)
			}
			if dst != nil {
				if len(dst) != img.Rows*img.Cols {
					return nil, fmt.Errorf("dicom: pixel buffer holds %d values, want %d", len(dst), img.Rows*img.Cols)
				}
				img.Pixels = dst
			} else {
				img.Pixels = make([]uint16, img.Rows*img.Cols)
			}
			dataset.DecodeUint16s(img.Pixels, e.Value)
		}
	}
	if img.Rows == 0 || img.Cols == 0 {
		return nil, fmt.Errorf("dicom: file carries no image geometry")
	}
	if !headerOnly && img.Pixels == nil {
		return nil, fmt.Errorf("dicom: file carries no pixel data")
	}
	return img, nil
}

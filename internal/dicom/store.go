package dicom

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"haralick4d/internal/dataset"
	"haralick4d/internal/volume"
)

// WriteStudy stores a 4D volume as a DICOM study declustered across nodes
// storage-node subdirectories of dir, one single-frame DICOM file per 2D
// slice, distributed round-robin exactly like the raw layout (§4.2). Unlike
// the raw layout there is no index file: the slice geometry is recovered
// from the DICOM headers themselves. The volume's global intensity range is
// recorded in every file's window center/width so distributed readers
// requantize consistently.
func WriteStudy(dir string, v *volume.Volume, nodes int) error {
	if nodes < 1 {
		return fmt.Errorf("dicom: node count %d must be >= 1", nodes)
	}
	lo, hi := v.MinMax()
	center := (float64(lo) + float64(hi)) / 2
	width := float64(hi) - float64(lo)
	if width < 1 {
		width = 1
	}
	meta := &dataset.Meta{Dims: v.Dims, Nodes: nodes}
	for t := 0; t < v.Dims[3]; t++ {
		for z := 0; z < v.Dims[2]; z++ {
			node := dataset.OwnerNode(meta, z, t)
			ndir := filepath.Join(dir, fmt.Sprintf("node%03d", node))
			if err := os.MkdirAll(ndir, 0o755); err != nil {
				return fmt.Errorf("dicom: %w", err)
			}
			img := &Image{
				Rows:           v.Dims[1],
				Cols:           v.Dims[0],
				Pixels:         v.Slice(z, t),
				InstanceNumber: dataset.SliceID(meta, z, t),
				Acquisition:    t,
				SliceLocation:  float64(z),
				WindowCenter:   center,
				WindowWidth:    width,
			}
			name := fmt.Sprintf("img_t%04d_z%04d.dcm", t, z)
			f, err := os.Create(filepath.Join(ndir, name))
			if err != nil {
				return fmt.Errorf("dicom: %w", err)
			}
			if err := Encode(f, img); err != nil {
				f.Close()
				return fmt.Errorf("dicom: encoding %s: %w", name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("dicom: %w", err)
			}
		}
	}
	return nil
}

// SliceFile locates one slice within a study.
type SliceFile struct {
	Path string
	Z, T int
}

// Study is an opened DICOM study directory: the 4D geometry recovered from
// the headers plus the per-node slice inventories.
type Study struct {
	Dir    string
	Dims   [4]int
	Nodes  int
	Min    uint16 // from window center/width
	Max    uint16
	slices [][]SliceFile // per node, sorted by (T, Z)
}

// OpenStudy scans the node directories under dir, reads every DICOM header
// (not the pixels), validates the study's consistency and returns its
// geometry.
func OpenStudy(dir string) (*Study, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dicom: %w", err)
	}
	var nodeDirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "node") {
			nodeDirs = append(nodeDirs, e.Name())
		}
	}
	if len(nodeDirs) == 0 {
		return nil, fmt.Errorf("dicom: no node directories under %s", dir)
	}
	sort.Strings(nodeDirs)
	st := &Study{Dir: dir, Nodes: len(nodeDirs), slices: make([][]SliceFile, len(nodeDirs))}

	maxZ, maxT := -1, -1
	type key struct{ z, t int }
	seen := map[key]bool{}
	for node, nd := range nodeDirs {
		files, err := os.ReadDir(filepath.Join(dir, nd))
		if err != nil {
			return nil, fmt.Errorf("dicom: %w", err)
		}
		for _, fe := range files {
			if fe.IsDir() || !strings.HasSuffix(fe.Name(), ".dcm") {
				continue
			}
			path := filepath.Join(dir, nd, fe.Name())
			img, err := readHeader(path)
			if err != nil {
				return nil, fmt.Errorf("dicom: %s: %w", path, err)
			}
			z := int(img.SliceLocation)
			t := img.Acquisition
			if z < 0 || t < 0 {
				return nil, fmt.Errorf("dicom: %s has negative slice location or acquisition", path)
			}
			k := key{z, t}
			if seen[k] {
				return nil, fmt.Errorf("dicom: duplicate slice (z=%d, t=%d)", z, t)
			}
			seen[k] = true
			if st.Dims[0] == 0 {
				st.Dims[0], st.Dims[1] = img.Cols, img.Rows
				lo := img.WindowCenter - img.WindowWidth/2
				hi := img.WindowCenter + img.WindowWidth/2
				st.Min = clampU16(lo)
				st.Max = clampU16(hi)
			} else if st.Dims[0] != img.Cols || st.Dims[1] != img.Rows {
				return nil, fmt.Errorf("dicom: %s is %dx%d, study is %dx%d", path, img.Cols, img.Rows, st.Dims[0], st.Dims[1])
			}
			if z > maxZ {
				maxZ = z
			}
			if t > maxT {
				maxT = t
			}
			st.slices[node] = append(st.slices[node], SliceFile{Path: path, Z: z, T: t})
		}
	}
	st.Dims[2], st.Dims[3] = maxZ+1, maxT+1
	if want := st.Dims[2] * st.Dims[3]; len(seen) != want {
		return nil, fmt.Errorf("dicom: study has %d slices, geometry needs %d", len(seen), want)
	}
	for node := range st.slices {
		s := st.slices[node]
		sort.Slice(s, func(i, j int) bool {
			if s[i].T != s[j].T {
				return s[i].T < s[j].T
			}
			return s[i].Z < s[j].Z
		})
	}
	return st, nil
}

func clampU16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

func readHeader(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f, true)
}

// NodeSlices returns the slices stored on one node, sorted by (T, Z).
func (s *Study) NodeSlices(node int) ([]SliceFile, error) {
	if node < 0 || node >= s.Nodes {
		return nil, fmt.Errorf("dicom: node %d out of range [0, %d)", node, s.Nodes)
	}
	return s.slices[node], nil
}

// ReadSlice loads one slice's pixels.
func (s *Study) ReadSlice(sf SliceFile) ([]uint16, error) {
	f, err := os.Open(sf.Path)
	if err != nil {
		return nil, fmt.Errorf("dicom: %w", err)
	}
	defer f.Close()
	img, err := Decode(f, false)
	if err != nil {
		return nil, fmt.Errorf("dicom: %s: %w", sf.Path, err)
	}
	return img.Pixels, nil
}

// ReadSliceInto loads one slice's pixels into the caller's X·Y-value
// buffer, so a streaming reader reuses one buffer per window.
func (s *Study) ReadSliceInto(sf SliceFile, out []uint16) error {
	f, err := os.Open(sf.Path)
	if err != nil {
		return fmt.Errorf("dicom: %w", err)
	}
	defer f.Close()
	if _, err := DecodeInto(f, out); err != nil {
		return fmt.Errorf("dicom: %s: %w", sf.Path, err)
	}
	return nil
}

// ReadVolume loads the whole study into memory (test oracle and
// small-study convenience).
func (s *Study) ReadVolume() (*volume.Volume, error) {
	v := volume.NewVolume(s.Dims)
	for node := 0; node < s.Nodes; node++ {
		for _, sf := range s.slices[node] {
			pix, err := s.ReadSlice(sf)
			if err != nil {
				return nil, err
			}
			copy(v.Slice(sf.Z, sf.T), pix)
		}
	}
	return v, nil
}

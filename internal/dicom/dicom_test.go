package dicom

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"haralick4d/internal/volume"
)

func testImage(seed int64, cols, rows int) *Image {
	rng := rand.New(rand.NewSource(seed))
	img := &Image{
		Rows: rows, Cols: cols,
		Pixels:         make([]uint16, rows*cols),
		InstanceNumber: 17,
		Acquisition:    3,
		SliceLocation:  5,
		WindowCenter:   2048,
		WindowWidth:    4096,
	}
	for i := range img.Pixels {
		img.Pixels[i] = uint16(rng.Intn(4096))
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := testImage(1, 13, 9) // odd sizes exercise padding
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()), false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != img.Rows || got.Cols != img.Cols ||
		got.InstanceNumber != img.InstanceNumber || got.Acquisition != img.Acquisition ||
		got.SliceLocation != img.SliceLocation ||
		got.WindowCenter != img.WindowCenter || got.WindowWidth != img.WindowWidth {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, img)
	}
	for i := range img.Pixels {
		if got.Pixels[i] != img.Pixels[i] {
			t.Fatalf("pixel %d: %d != %d", i, got.Pixels[i], img.Pixels[i])
		}
	}
}

// Property: encode/decode round-trips arbitrary geometries and pixel
// contents.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, colsRaw, rowsRaw uint8) bool {
		cols := int(colsRaw%40) + 1
		rows := int(rowsRaw%40) + 1
		img := testImage(seed, cols, rows)
		var buf bytes.Buffer
		if Encode(&buf, img) != nil {
			return false
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()), false)
		if err != nil {
			return false
		}
		if got.Rows != rows || got.Cols != cols {
			return false
		}
		for i := range img.Pixels {
			if got.Pixels[i] != img.Pixels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	img := testImage(2, 32, 32)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pixels != nil {
		t.Error("header-only decode materialized pixels")
	}
	if got.Rows != 32 || got.InstanceNumber != 17 {
		t.Error("header fields missing")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     make([]byte, 64),
		"bad magic": append(make([]byte, 128), []byte("NOPE")...),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data), false); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDecodeRejectsWrongSyntax(t *testing.T) {
	img := testImage(3, 8, 8)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the transfer syntax UID in place.
	i := bytes.Index(raw, []byte(ExplicitVRLittleEndian))
	if i < 0 {
		t.Fatal("syntax UID not found")
	}
	raw[i+len(ExplicitVRLittleEndian)-1] = '9'
	if _, err := Decode(bytes.NewReader(raw), false); err == nil || !strings.Contains(err.Error(), "transfer syntax") {
		t.Errorf("wrong syntax accepted: %v", err)
	}
}

func TestDecodeTruncatedPixelData(t *testing.T) {
	img := testImage(4, 16, 16)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-40]
	if _, err := Decode(bytes.NewReader(raw), false); err == nil {
		t.Error("truncated pixel data accepted")
	}
}

func TestEncodeRejectsBadGeometry(t *testing.T) {
	img := &Image{Rows: 4, Cols: 4, Pixels: make([]uint16, 3)}
	if err := Encode(&bytes.Buffer{}, img); err == nil {
		t.Error("mismatched geometry accepted")
	}
}

func randomStudyVolume(seed int64, dims [4]int) *volume.Volume {
	rng := rand.New(rand.NewSource(seed))
	v := volume.NewVolume(dims)
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(3000) + 50)
	}
	return v
}

func TestStudyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v := randomStudyVolume(5, [4]int{10, 8, 3, 4})
	if err := WriteStudy(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dims != v.Dims || st.Nodes != 3 {
		t.Fatalf("study geometry %+v", st)
	}
	lo, hi := v.MinMax()
	if st.Min > lo || st.Max < hi {
		t.Errorf("window range [%d, %d] does not cover data range [%d, %d]", st.Min, st.Max, lo, hi)
	}
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
}

func TestOpenStudyErrors(t *testing.T) {
	if _, err := OpenStudy(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	// A study with a missing slice is rejected.
	dir := t.TempDir()
	v := randomStudyVolume(6, [4]int{6, 6, 2, 2})
	if err := WriteStudy(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	var victim string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".dcm") && victim == "" {
			victim = p
		}
		return nil
	})
	os.Remove(victim)
	if _, err := OpenStudy(dir); err == nil {
		t.Error("incomplete study accepted")
	}
}

func TestOpenStudyRejectsMixedGeometry(t *testing.T) {
	dir := t.TempDir()
	v := randomStudyVolume(7, [4]int{6, 6, 1, 2})
	if err := WriteStudy(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	// Add a slice with different geometry claiming a new time step.
	odd := testImage(8, 12, 12)
	odd.Acquisition = 2
	odd.SliceLocation = 0
	f, err := os.Create(filepath.Join(dir, "node000", "odd.dcm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Encode(f, odd); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenStudy(dir); err == nil {
		t.Error("mixed-geometry study accepted")
	}
}

func TestNodeSlicesBounds(t *testing.T) {
	dir := t.TempDir()
	v := randomStudyVolume(9, [4]int{4, 4, 1, 2})
	if err := WriteStudy(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NodeSlices(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := st.NodeSlices(2); err == nil {
		t.Error("out-of-range node accepted")
	}
	s0, _ := st.NodeSlices(0)
	s1, _ := st.NodeSlices(1)
	if len(s0)+len(s1) != 2 {
		t.Errorf("slice counts %d + %d", len(s0), len(s1))
	}
}

func TestWriteStudyBadNodes(t *testing.T) {
	v := randomStudyVolume(10, [4]int{2, 2, 1, 1})
	if err := WriteStudy(t.TempDir(), v, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestTagString(t *testing.T) {
	if TagPixelData.String() != "(7FE0,0010)" {
		t.Errorf("Tag.String = %s", TagPixelData.String())
	}
}

package filter

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// crashyForward forwards every buffer, except that crashCopy panics while
// holding its after-th buffer — before forwarding it, so redelivery to a
// survivor is the only way the buffer reaches the sink.
func crashyForward(crashCopy, after int) func(int) Filter {
	return func(copy int) Filter {
		return Func(func(ctx Context) error {
			seen := 0
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if copy == crashCopy {
					seen++
					if seen == after {
						panic(fmt.Sprintf("injected crash holding buffer %d", seen))
					}
				}
				if err := ctx.Send("out", m.Payload); err != nil {
					return err
				}
			}
		})
	}
}

// failoverGraph builds source(n) → work (copies, policy, one crash) → sink.
func failoverGraph(n, copies, crashCopy, after int, policy Policy, workNodes []int) (*Graph, func() []int) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(n)})
	g.AddFilter(FilterSpec{Name: "work", Copies: copies, New: crashyForward(crashCopy, after), Nodes: workNodes})
	sink, got := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "work", ToPort: "in", Policy: policy})
	g.Connect(ConnSpec{From: "work", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	return g, got
}

func checkExactlyOnce(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("sink received %d buffers, want %d", len(got), n)
	}
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("sink contents %v: position %d holds %d", sorted, i, v)
		}
	}
}

func checkFailoverReport(t *testing.T, rs *RunStats) {
	t.Helper()
	if rs.Report == nil {
		t.Fatal("run report missing")
	}
	for _, f := range rs.Report.Filters {
		if f.Name != "work" {
			continue
		}
		if f.CopyFailures != 1 {
			t.Errorf("work CopyFailures = %d, want 1", f.CopyFailures)
		}
		if f.Redelivered < 1 {
			t.Errorf("work Redelivered = %d, want >= 1", f.Redelivered)
		}
		failed := 0
		for _, c := range f.Copies {
			if c.Failed {
				failed++
				if c.Failure == "" {
					t.Error("failed copy has no failure message")
				}
			}
		}
		if failed != 1 {
			t.Errorf("%d copies marked failed, want 1", failed)
		}
		return
	}
	t.Fatal("work filter missing from report")
}

func TestFailoverRedeliveryLocal(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, DemandDriven} {
		t.Run(policy.String(), func(t *testing.T) {
			const n = 100
			g, got := failoverGraph(n, 3, 1, 5, policy, nil)
			rs, err := RunLocal(g, &Options{Failover: true})
			if err != nil {
				t.Fatalf("run with failover: %v", err)
			}
			checkExactlyOnce(t, got(), n)
			checkFailoverReport(t, rs)
		})
	}
}

func TestFailoverRedeliveryTCP(t *testing.T) {
	const n = 60
	// RoundRobin (not DemandDriven): over TCP the demand-driven policy can
	// starve the crash copy entirely, leaving the injected fault unfired.
	g, got := failoverGraph(n, 3, 1, 5, RoundRobin, []int{0, 1, 2})
	rs, err := RunTCP(g, &Options{Failover: true})
	if err != nil {
		t.Fatalf("run with failover: %v", err)
	}
	checkExactlyOnce(t, got(), n)
	checkFailoverReport(t, rs)
}

func TestFailoverAllCopiesDead(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(50)})
	// Every copy crashes on its 3rd buffer; the last death is terminal.
	g.AddFilter(FilterSpec{Name: "work", Copies: 2, New: func(copy int) Filter {
		return crashyForward(copy, 3)(copy)
	}})
	sink, _ := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "work", ToPort: "in", Policy: RoundRobin})
	g.Connect(ConnSpec{From: "work", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	_, err := RunLocal(g, &Options{Failover: true})
	if !errors.Is(err, ErrAllCopiesDead) {
		t.Fatalf("err = %v, want ErrAllCopiesDead", err)
	}
}

func TestFailoverIneligibleExplicitInbound(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: func(copy int) Filter {
		return Func(func(ctx Context) error {
			for i := 0; i < 20; i++ {
				if err := ctx.SendTo("out", i%2, intPayload(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(FilterSpec{Name: "work", Copies: 2, New: crashyForward(0, 3)})
	sink, _ := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "work", ToPort: "in", Policy: Explicit})
	g.Connect(ConnSpec{From: "work", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	// Explicitly-addressed copies hold partitioned state; failover must not
	// absorb their crashes even when enabled.
	_, err := RunLocal(g, &Options{Failover: true})
	if !errors.Is(err, ErrCopyFailed) {
		t.Fatalf("err = %v, want ErrCopyFailed", err)
	}
}

func TestFailoverDisabledCrashStillFails(t *testing.T) {
	g, _ := failoverGraph(50, 3, 1, 5, RoundRobin, nil)
	_, err := RunLocal(g, nil)
	if err == nil {
		t.Fatal("crash absorbed with failover disabled")
	}
	if !errors.Is(err, ErrCopyFailed) {
		t.Fatalf("err = %v, want ErrCopyFailed", err)
	}
}

package filter

import (
	"fmt"
	"sync"
)

// failoverState coordinates copy failover for one eligible filter: buffers
// that were in flight at (or delivered after) a copy's death wait here for a
// surviving copy to take them, and the quiescence counters let survivors
// tell "no more work can appear" apart from "a sibling may still crash and
// requeue its buffer".
//
// A filter is eligible when failover is enabled, it has at least one inbound
// connection, every inbound connection is policy-routed (round-robin or
// demand-driven — transparent copies are interchangeable by construction),
// and it has more than one copy. Explicitly-addressed filters (IIC, HIC) are
// not eligible: their copies hold partitioned state no sibling can take over.
type failoverState struct {
	mu sync.Mutex
	// wake is closed and replaced on every state change; waiters grab the
	// current channel under mu and select on it.
	wake chan struct{}
	// requeued holds un-acked buffers of dead copies plus anything delivered
	// to a dead copy's inbox, awaiting redelivery to a survivor.
	requeued []inMsg
	// draining counts dead copies whose inboxes are still being drained —
	// their traffic may yet land in requeued.
	draining int
	// processing counts copies that may still produce requeued work: every
	// copy from start until it enters the final wait (all EOS seen, nothing
	// requeued), re-entering while it processes a requeued buffer. Dead
	// copies leave the count at death.
	processing int
	// alive counts copies that have not failed.
	alive int
	// redelivered counts buffers handed to a surviving copy's siblings.
	redelivered int64
}

func newFailoverState(copies int) *failoverState {
	return &failoverState{wake: make(chan struct{}), processing: copies, alive: copies}
}

// failoverEligible reports whether the named filter's copies may inherit
// each other's buffers.
func failoverEligible(g *Graph, name string, copies int) bool {
	if copies < 2 {
		return false
	}
	into := g.ConnsInto(name)
	if len(into) == 0 {
		return false
	}
	for _, c := range into {
		if c.Policy == Explicit {
			return false
		}
	}
	return true
}

// broadcastLocked wakes every waiter. Callers hold mu.
func (fo *failoverState) broadcastLocked() {
	close(fo.wake)
	fo.wake = make(chan struct{})
}

// requeue adds a buffer drained from a dead copy's inbox.
func (fo *failoverState) requeue(m inMsg) {
	fo.mu.Lock()
	fo.requeued = append(fo.requeued, m)
	fo.redelivered++
	fo.broadcastLocked()
	fo.mu.Unlock()
}

// release retires one processing slot for a copy that finished without ever
// entering the final wait (an early Run return).
func (fo *failoverState) release() {
	fo.mu.Lock()
	fo.processing--
	fo.broadcastLocked()
	fo.mu.Unlock()
}

// poll advances c's failover state machine under one lock acquisition. It
// returns a requeued buffer when one is available; otherwise, when c has
// seen all EOS, it parks c in the final wait and reports via done whether
// the filter's stream is fully quiescent (every copy parked or dead, no
// drains pending, nothing requeued). The returned channel wakes c on the
// next state change.
func (fo *failoverState) poll(c *localCtx) (m inMsg, ok, done bool, wake chan struct{}) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	if len(fo.requeued) > 0 {
		m = fo.requeued[0]
		fo.requeued = fo.requeued[1:]
		if c.finalWaited {
			fo.processing++
			c.finalWaited = false
		}
		return m, true, false, nil
	}
	if c.openIn == 0 {
		if !c.finalWaited {
			c.finalWaited = true
			fo.processing--
			fo.broadcastLocked()
		}
		if fo.draining == 0 && fo.processing == 0 {
			return inMsg{}, false, true, nil
		}
	}
	return inMsg{}, false, false, fo.wake
}

// tolerateFailure decides the fate of a failed copy. When the failure is
// tolerable it marks the copy dead, requeues its un-acked buffer, spawns the
// inbox drainer, and returns true — the caller proceeds to signal EOS
// downstream as if the copy had finished. Otherwise it records the terminal
// run error (typed: ErrCopyFailed, or ErrAllCopiesDead when this was the
// filter's last copy) and returns false.
func (rt *runtime) tolerateFailure(st *copyState, ctx *localCtx, err error) bool {
	fo := rt.failover[st.filter]
	if fo == nil {
		rt.fail(fmt.Errorf("filter %s[%d]: %w: %w", st.filter, st.copyIdx, ErrCopyFailed, err))
		return false
	}
	fo.mu.Lock()
	fo.alive--
	if fo.alive == 0 {
		fo.mu.Unlock()
		rt.fail(fmt.Errorf("filter %s: %w: last copy %d: %w", st.filter, ErrAllCopiesDead, st.copyIdx, err))
		return false
	}
	st.dead.Store(true)
	st.stats.Failed = true
	st.failMsg = err.Error()
	if ctx.hasInflight {
		fo.requeued = append(fo.requeued, ctx.inflight)
		fo.redelivered++
		ctx.hasInflight = false
	}
	if !ctx.finalWaited {
		fo.processing--
	}
	fo.draining++
	fo.broadcastLocked()
	fo.mu.Unlock()

	expect := 0
	for _, n := range st.eosExpect {
		expect += n
	}
	seen := 0
	for _, n := range ctx.eosSeen {
		seen += n
	}
	rt.auxWG.Add(1)
	go rt.drainDead(st, fo, expect-seen)
	return true
}

// drainDead consumes a dead copy's inbox on its behalf: data buffers are
// requeued to the survivors, end-of-stream markers are counted until every
// producer has signed off, keeping producers (and remote receive loops)
// unblocked.
func (rt *runtime) drainDead(st *copyState, fo *failoverState, remaining int) {
	defer rt.auxWG.Done()
	for remaining > 0 {
		select {
		case m := <-st.inbox:
			if m.eos {
				remaining--
				continue
			}
			st.pending.Add(-1)
			fo.requeue(m)
		case <-rt.done:
			return
		}
	}
	fo.mu.Lock()
	fo.draining--
	fo.broadcastLocked()
	fo.mu.Unlock()
}

// Package filter is a filter-stream middleware in the style of DataCutter,
// the runtime the paper builds on: a data-intensive application is expressed
// as a set of filters connected by unidirectional streams that deliver data
// in user-defined buffers.
//
// Filters are placed on (physical or virtual) nodes; multiple transparent
// copies of a filter may be instantiated, with the runtime distributing
// buffers among them round-robin or demand-driven, or explicit copies that
// the producer addresses directly. Buffers exchanged between co-located
// filter copies are handed over by pointer; buffers crossing nodes are
// serialized — over real TCP sockets in this package's TCP engine, or
// through a modeled network in the simulated-cluster engine (package
// cluster).
//
// The same Filter implementations run unmodified under every engine.
package filter

import (
	"fmt"
	"sort"

	"haralick4d/internal/metrics"
)

// Payload is the body of a data buffer exchanged on a stream. SizeBytes
// reports the approximate serialized size; the schedulers and the network
// models use it. Concrete payload types crossing TCP must be registered
// with encoding/gob by the package defining them.
type Payload interface {
	SizeBytes() int
}

// Msg is one received buffer: the input port it arrived on and its payload.
type Msg struct {
	Port    string
	Payload Payload
}

// Filter is one operational task of the application. Run is invoked once
// per transparent copy; it consumes input buffers via ctx.Recv until the
// context reports end-of-stream, and emits buffers via ctx.Send. Returning
// a non-nil error aborts the whole application run.
type Filter interface {
	Run(ctx Context) error
}

// Func adapts a plain function to the Filter interface.
type Func func(ctx Context) error

// Run implements Filter.
func (f Func) Run(ctx Context) error { return f(ctx) }

// Context is the runtime interface handed to each filter copy. It is
// implemented by every engine (local goroutines, TCP, simulated cluster).
type Context interface {
	// FilterName returns the logical filter name.
	FilterName() string
	// CopyIndex returns this copy's index in [0, NumCopies).
	CopyIndex() int
	// NumCopies returns the number of transparent copies of this filter.
	NumCopies() int
	// Node returns the id of the node this copy is placed on.
	Node() int
	// ConsumerCopies returns the number of copies of the filter consuming
	// the given output port (for explicit routing decisions).
	ConsumerCopies(port string) int
	// Recv blocks until a buffer arrives on any input port. ok is false
	// when every upstream copy has finished (end of all streams).
	Recv() (Msg, bool)
	// Send emits a buffer on an output port, letting the connection policy
	// pick the consumer copy. It blocks when the consumer's queue is full
	// (stream backpressure). It fails on explicit connections.
	Send(port string, p Payload) error
	// SendTo emits a buffer to a specific consumer copy (explicit routing).
	SendTo(port string, copy int, p Payload) error
	// Metrics returns this copy's metric set for span and pool-counter
	// recording, or nil when the run has metrics disabled. All methods of
	// the returned set are nil-receiver safe, so filters may use it
	// unconditionally.
	Metrics() *metrics.Copy
}

// Policy selects how a connection distributes buffers among the consumer's
// transparent copies (paper §4.1).
type Policy int

const (
	// RoundRobin assigns buffers to each transparent copy in turn, so each
	// receives roughly the same amount of data.
	RoundRobin Policy = iota
	// DemandDriven assigns each buffer to the copy with the smallest
	// outstanding queue — the copy that can process it the fastest.
	DemandDriven
	// Explicit requires the producer to address a copy with SendTo.
	Explicit
)

// String returns the policy's flag name.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case DemandDriven:
		return "demand-driven"
	case Explicit:
		return "explicit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "demand-driven", "dd":
		return DemandDriven, nil
	case "explicit":
		return Explicit, nil
	}
	return 0, fmt.Errorf("filter: unknown policy %q", s)
}

// FilterSpec declares one logical filter: its factory, copy count and the
// node each copy is placed on.
type FilterSpec struct {
	Name   string
	Copies int
	// New builds the filter instance for one copy. Factories must not share
	// mutable state between copies unless it is synchronized.
	New func(copy int) Filter
	// Nodes[i] is the node hosting copy i. Nil places every copy on node 0.
	Nodes []int
}

// ConnSpec declares one stream bundle: every copy of the producer filter
// may send buffers on FromPort to the copies of the consumer filter.
type ConnSpec struct {
	From, FromPort string
	To, ToPort     string
	Policy         Policy
}

// Graph is the application description: filters plus connections. Build it
// with AddFilter/Connect, then hand it to an engine.
type Graph struct {
	Filters []FilterSpec
	Conns   []ConnSpec
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddFilter registers a filter spec and returns the graph for chaining.
func (g *Graph) AddFilter(fs FilterSpec) *Graph {
	g.Filters = append(g.Filters, fs)
	return g
}

// Connect registers a connection and returns the graph for chaining.
func (g *Graph) Connect(c ConnSpec) *Graph {
	g.Conns = append(g.Conns, c)
	return g
}

// Filter returns the spec with the given name.
func (g *Graph) Filter(name string) (*FilterSpec, bool) {
	for i := range g.Filters {
		if g.Filters[i].Name == name {
			return &g.Filters[i], true
		}
	}
	return nil, false
}

// NumNodes returns one past the largest node id used by any placement.
func (g *Graph) NumNodes() int {
	n := 1
	for _, fs := range g.Filters {
		for _, node := range fs.Nodes {
			if node+1 > n {
				n = node + 1
			}
		}
	}
	return n
}

// Validate checks structural integrity: unique filter names, positive copy
// counts, factories present, placements well-formed, connections referring
// to existing filters, and at most one connection per (filter, output
// port). It normalizes nil placements to node 0.
func (g *Graph) Validate() error {
	seen := map[string]bool{}
	for i := range g.Filters {
		fs := &g.Filters[i]
		if fs.Name == "" {
			return fmt.Errorf("filter: filter %d has empty name", i)
		}
		if seen[fs.Name] {
			return fmt.Errorf("filter: duplicate filter name %q", fs.Name)
		}
		seen[fs.Name] = true
		if fs.Copies < 1 {
			return fmt.Errorf("filter: %s has %d copies, must be >= 1", fs.Name, fs.Copies)
		}
		if fs.New == nil {
			return fmt.Errorf("filter: %s has no factory", fs.Name)
		}
		if fs.Nodes == nil {
			fs.Nodes = make([]int, fs.Copies)
		}
		if len(fs.Nodes) != fs.Copies {
			return fmt.Errorf("filter: %s has %d copies but %d placements", fs.Name, fs.Copies, len(fs.Nodes))
		}
		for _, n := range fs.Nodes {
			if n < 0 {
				return fmt.Errorf("filter: %s placed on negative node %d", fs.Name, n)
			}
		}
	}
	outPorts := map[string]bool{}
	for _, c := range g.Conns {
		if _, ok := g.Filter(c.From); !ok {
			return fmt.Errorf("filter: connection from unknown filter %q", c.From)
		}
		if _, ok := g.Filter(c.To); !ok {
			return fmt.Errorf("filter: connection to unknown filter %q", c.To)
		}
		if c.FromPort == "" || c.ToPort == "" {
			return fmt.Errorf("filter: connection %s->%s has empty port name", c.From, c.To)
		}
		key := c.From + "." + c.FromPort
		if outPorts[key] {
			return fmt.Errorf("filter: output port %s connected twice", key)
		}
		outPorts[key] = true
		if c.Policy < RoundRobin || c.Policy > Explicit {
			return fmt.Errorf("filter: connection %s->%s has invalid policy %d", c.From, c.To, int(c.Policy))
		}
	}
	return nil
}

// ConnsFrom returns the connections leaving the given filter, sorted by
// port for determinism.
func (g *Graph) ConnsFrom(name string) []ConnSpec {
	var out []ConnSpec
	for _, c := range g.Conns {
		if c.From == name {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FromPort < out[j].FromPort })
	return out
}

// ConnsInto returns the connections entering the given filter.
func (g *Graph) ConnsInto(name string) []ConnSpec {
	var out []ConnSpec
	for _, c := range g.Conns {
		if c.To == name {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ToPort < out[j].ToPort })
	return out
}

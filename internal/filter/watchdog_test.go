// External test package: these tests wedge filters with the fault
// package's injectors, and fault imports filter.
package filter_test

import (
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
)

type wdPayload int

func (wdPayload) SizeBytes() int { return 8 }

func init() { gob.Register(wdPayload(0)) }

// wedgedReaderGraph builds SRC → SNK where SRC reads a real file through a
// SlowReaderAt whose delay far exceeds any test timeout — a straggling disk
// that has effectively hung.
func wedgedReaderGraph(t *testing.T, delay time.Duration) *filter.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "SRC", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			r := &fault.SlowReaderAt{R: f, Delay: delay}
			buf := make([]byte, 512)
			for i := 0; i < 8; i++ {
				if _, err := r.ReadAt(buf, int64(i)*512); err != nil {
					return err
				}
				if err := ctx.Send("out", wdPayload(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "SNK", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: "SRC", FromPort: "out", To: "SNK", ToPort: "in", Policy: filter.RoundRobin})
	return g
}

func TestWatchdogNamesWedgedReader(t *testing.T) {
	engines := map[string]func(*filter.Graph, *filter.Options) (*filter.RunStats, error){
		"local": filter.RunLocal,
		"tcp":   filter.RunTCP,
	}
	for name, run := range engines {
		t.Run(name, func(t *testing.T) {
			g := wedgedReaderGraph(t, time.Hour)
			start := time.Now()
			_, err := run(g, &filter.Options{StallTimeout: 300 * time.Millisecond})
			elapsed := time.Since(start)
			if !errors.Is(err, filter.ErrStalled) {
				t.Fatalf("err = %v, want ErrStalled", err)
			}
			// Timely: the run must end near the deadline, not hang for the
			// injected hour.
			if elapsed > 10*time.Second {
				t.Fatalf("watchdog took %v to trip a 300ms deadline", elapsed)
			}
			var se *filter.StallError
			if !errors.As(err, &se) {
				t.Fatalf("err %T does not unwrap to *StallError", err)
			}
			if len(se.Stalled) == 0 || se.Stalled[0].Filter != "SRC" {
				t.Fatalf("stalled copies %+v, want SRC first (the wedged reader, not its starved consumer)", se.Stalled)
			}
			if se.Stalled[0].State != "busy" {
				t.Errorf("SRC state = %q, want busy (stuck inside the read call)", se.Stalled[0].State)
			}
			if !strings.Contains(err.Error(), "SRC") {
				t.Errorf("diagnostic %q does not name the stalled filter", err)
			}
		})
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	// The per-read delay is real but modest; the pipeline makes progress on
	// every read, so the global no-progress deadline must never trip even
	// though the whole run takes far longer than the timeout.
	g := wedgedReaderGraph(t, 20*time.Millisecond)
	if _, err := filter.RunLocal(g, &filter.Options{StallTimeout: 80 * time.Millisecond}); err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

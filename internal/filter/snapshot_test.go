package filter

import (
	"sync"
	"testing"
	"time"

	"haralick4d/internal/metrics"
)

// slowSource emits n integers with a small delay so the monitor observes
// the run mid-flight across several ticks.
func slowSource(n int, delay time.Duration) func(int) Filter {
	return func(copy int) Filter {
		return Func(func(ctx Context) error {
			for i := 0; i < n; i++ {
				time.Sleep(delay)
				if err := ctx.Send("out", intPayload(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// collectSnapshots runs a src→sink pipeline with a Monitor that samples the
// probe on a tight ticker, returning every snapshot taken plus one final
// sample at stop time.
func collectSnapshots(t *testing.T, sinkCopies int) []*metrics.Snapshot {
	t.Helper()
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: slowSource(150, 300*time.Microsecond)})
	sink, _ := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: sinkCopies, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: DemandDriven})

	var mu sync.Mutex
	var snaps []*metrics.Snapshot
	opts := &Options{Monitor: func(stop <-chan struct{}, p Probe) {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				mu.Lock()
				snaps = append(snaps, p.Snapshot())
				mu.Unlock()
				return
			case <-tick.C:
				mu.Lock()
				snaps = append(snaps, p.Snapshot())
				mu.Unlock()
			}
		}
	}}
	if _, err := RunLocal(g, opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) < 2 {
		t.Fatalf("monitor took %d snapshots, want at least 2", len(snaps))
	}
	return snaps
}

// TestSnapshotDeltasMonotonic is the live-snapshot contract the autotune
// controller differentiates: across consecutive snapshots of one run, the
// wall clock advances and every per-copy counter and span total is
// monotonically non-decreasing.
func TestSnapshotDeltasMonotonic(t *testing.T) {
	snaps := collectSnapshots(t, 3)
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.WallNS < prev.WallNS {
			t.Fatalf("snapshot %d: wall went backwards (%d → %d)", i, prev.WallNS, cur.WallNS)
		}
		if len(cur.Filters) != len(prev.Filters) {
			t.Fatalf("snapshot %d: filter count changed (%d → %d)", i, len(prev.Filters), len(cur.Filters))
		}
		for fi := range cur.Filters {
			pf, cf := prev.Filters[fi], cur.Filters[fi]
			if len(cf.Copies) != len(pf.Copies) {
				t.Fatalf("snapshot %d: %s copy count changed (%d → %d)", i, cf.Name, len(pf.Copies), len(cf.Copies))
			}
			for ci := range cf.Copies {
				pc, cc := pf.Copies[ci], cf.Copies[ci]
				counters := [][2]int64{
					{pc.MsgsIn, cc.MsgsIn},
					{pc.MsgsOut, cc.MsgsOut},
					{pc.BusyNS, cc.BusyNS},
					{pc.BlockedRecvNS, cc.BlockedRecvNS},
					{pc.StalledSendNS, cc.StalledSendNS},
				}
				for k, pair := range counters {
					if pair[1] < pair[0] {
						t.Fatalf("snapshot %d: %s copy %d counter %d went backwards (%d → %d)",
							i, cf.Name, ci, k, pair[0], pair[1])
					}
				}
			}
			for span, ptot := range pf.Spans {
				if ctot := cf.Spans[span]; ctot < ptot {
					t.Fatalf("snapshot %d: %s span %q total went backwards (%d → %d)", i, cf.Name, span, ptot, ctot)
				}
			}
		}
	}
}

// TestSnapshotIdentitiesStable checks that filters appear in graph spec
// order and each copy keeps its position and node across snapshots, so
// position-wise deltas compare like with like.
func TestSnapshotIdentitiesStable(t *testing.T) {
	snaps := collectSnapshots(t, 2)
	first := snaps[0]
	if len(first.Filters) != 2 || first.Filters[0].Name != "src" || first.Filters[1].Name != "sink" {
		t.Fatalf("filters not in graph spec order: %+v", first.Filters)
	}
	if len(first.Filters[1].Copies) != 2 {
		t.Fatalf("sink has %d copy snaps, want 2", len(first.Filters[1].Copies))
	}
	for i, s := range snaps {
		for fi, f := range s.Filters {
			if f.Name != first.Filters[fi].Name {
				t.Fatalf("snapshot %d: filter %d renamed %q → %q", i, fi, first.Filters[fi].Name, f.Name)
			}
			for ci, c := range f.Copies {
				if c.Copy != first.Filters[fi].Copies[ci].Copy || c.Node != first.Filters[fi].Copies[ci].Node {
					t.Fatalf("snapshot %d: %s copy %d identity changed: %+v vs %+v",
						i, f.Name, ci, c, first.Filters[fi].Copies[ci])
				}
			}
		}
	}
}

// TestSnapshotSeesProgress checks the snapshots are live, not end-of-run
// artifacts: some snapshot taken before the final one reports partial
// output, and the totals grow to the full message count by the last.
func TestSnapshotSeesProgress(t *testing.T) {
	snaps := collectSnapshots(t, 2)
	last := snaps[len(snaps)-1]
	if got := last.TotalMsgsOut(); got < 150 {
		t.Fatalf("final snapshot reports %d total messages out, want >= 150", got)
	}
	var partial bool
	for _, s := range snaps[:len(snaps)-1] {
		if out := s.TotalMsgsOut(); out > 0 && out < last.TotalMsgsOut() {
			partial = true
			break
		}
	}
	if !partial {
		t.Fatal("no mid-run snapshot observed partial progress (monitor only fired at the end?)")
	}
}

package filter

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"haralick4d/internal/metrics"
)

// RunTCP executes the graph with one loopback TCP endpoint per node:
// buffers between co-located filter copies are handed over by pointer
// exactly as in RunLocal, while buffers crossing nodes are serialized with
// the configured wire codec (Options.WireCodec, gob by default) and travel
// through real TCP sockets — the transport split DataCutter makes between
// co-located and remote filters.
//
// All filter copies still run in this process (each node is a router, not a
// separate OS process), so the engine exercises real serialization and
// kernel socket behaviour while remaining a single testable binary. Payload
// types crossing nodes must be registered with encoding/gob.
func RunTCP(g *Graph, opts *Options) (*RunStats, error) {
	return RunTCPContext(context.Background(), g, opts)
}

// RunTCPContext is RunTCP under a context: on cancellation every copy winds
// down, receive loops drain their sockets so no sender stays blocked inside
// a partial write, and the run returns ctx's error with the statistics
// gathered so far.
func RunTCPContext(ctx context.Context, g *Graph, opts *Options) (*RunStats, error) {
	rt, err := newRuntime(g, opts, nil)
	if err != nil {
		return nil, err
	}
	tr, err := newTCPTransport(rt, g.NumNodes(), opts.codec())
	if err != nil {
		return nil, err
	}
	rt.trans = tr
	rt.engine = "tcp"
	stats, err := rt.run(ctx)
	tr.wait()
	return stats, err
}

// envelope is the wire format of one buffer crossing nodes. FromNode lets
// the receiver attribute wire traffic to the ordered node pair.
type envelope struct {
	FromNode int
	ToFilter string
	ToCopy   int
	Port     string
	EOS      bool
	Payload  Payload
}

func init() { gob.Register(envelope{}) }

// countingWriter counts bytes written through it. It is used under the
// owning tcpConn's mutex, so a plain int64 suffices.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader counts bytes read through it. Each instance is owned by a
// single receive-loop goroutine.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// tcpTransport maintains one TCP connection per ordered node pair that the
// graph actually uses, created lazily on first send.
type tcpTransport struct {
	rt        *runtime
	codec     Codec
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns map[[2]int]*tcpConn

	// Per ordered node pair network metrics, shared between the sending side
	// (Out fields, Send timer) and the receiving loop (In fields, Recv
	// timer). Nil values never enter the map.
	metMu sync.Mutex
	mets  map[[2]int]*metrics.Conn

	recvWG   sync.WaitGroup
	closed   bool
	closeErr error
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	cw  *countingWriter
	enc *gob.Encoder  // CodecGob only
	buf []byte        // CodecBinary frame scratch, reused under mu
	met *metrics.Conn // nil when metrics are disabled
}

func newTCPTransport(rt *runtime, nodes int, codec Codec) (*tcpTransport, error) {
	tr := &tcpTransport{rt: rt, codec: codec, conns: map[[2]int]*tcpConn{}, mets: map[[2]int]*metrics.Conn{}}
	for i := 0; i < nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("filter: tcp listen: %w", err)
		}
		tr.listeners = append(tr.listeners, ln)
		tr.addrs = append(tr.addrs, ln.Addr().String())
		tr.recvWG.Add(1)
		go tr.acceptLoop(ln, i)
	}
	return tr, nil
}

// connMetric returns the shared metric set for the ordered node pair, or nil
// when metrics are disabled.
func (tr *tcpTransport) connMetric(from, to int) *metrics.Conn {
	if !tr.rt.metricsOn {
		return nil
	}
	key := [2]int{from, to}
	tr.metMu.Lock()
	defer tr.metMu.Unlock()
	m, ok := tr.mets[key]
	if !ok {
		m = &metrics.Conn{}
		tr.mets[key] = m
	}
	return m
}

// netReport snapshots per-connection activity for the run report, ordered by
// (from, to) node pair.
func (tr *tcpTransport) netReport() []metrics.ConnReport {
	tr.metMu.Lock()
	defer tr.metMu.Unlock()
	keys := make([][2]int, 0, len(tr.mets))
	for k := range tr.mets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]metrics.ConnReport, 0, len(keys))
	for _, k := range keys {
		m := tr.mets[k]
		out = append(out, metrics.ConnReport{
			FromNode:     k[0],
			ToNode:       k[1],
			MsgsOut:      m.MsgsOut.Load(),
			WireBytesOut: m.WireBytesOut.Load(),
			SendNS:       m.Send.Stat().TotalNS,
			MsgsIn:       m.MsgsIn.Load(),
			WireBytesIn:  m.WireBytesIn.Load(),
			RecvNS:       m.Recv.Stat().TotalNS,
		})
	}
	return out
}

func (tr *tcpTransport) acceptLoop(ln net.Listener, node int) {
	defer tr.recvWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.recvWG.Add(1)
		go tr.recvLoop(conn, node)
	}
}

// envelopeDecoder reads one envelope per call from a connection, in the
// codec's wire format. io.EOF between envelopes means a clean close.
type envelopeDecoder interface {
	next() (envelope, error)
}

// gobEnvelopeDecoder is the CodecGob receive side: one gob stream per
// connection.
type gobEnvelopeDecoder struct{ dec *gob.Decoder }

func (d gobEnvelopeDecoder) next() (envelope, error) {
	var env envelope
	err := d.dec.Decode(&env)
	return env, err
}

// binaryEnvelopeDecoder is the CodecBinary receive side: a u32 length prefix
// followed by the frame body, read with exactly two ReadFull calls so the
// counting reader's per-message byte attribution stays exact.
type binaryEnvelopeDecoder struct {
	r   io.Reader
	hdr [4]byte
	buf []byte // frame scratch, reused across messages
}

func (d *binaryEnvelopeDecoder) next() (envelope, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return envelope{}, err
	}
	n := int(binaryFrameLen(d.hdr))
	if n > maxWireFrame {
		return envelope{}, fmt.Errorf("filter: tcp frame of %d bytes exceeds limit", n)
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return envelope{}, err
	}
	return decodeEnvelope(d.buf)
}

// recvLoop decodes envelopes arriving at one node's endpoint and enqueues
// them at the destination copy. The Recv timer includes socket wait, so on a
// mostly idle connection it approaches the connection's lifetime; WireBytesIn
// is exact. After the run aborts the loop keeps decoding and discarding
// envelopes instead of returning: a remote sender blocked inside a partial
// encode (which cannot observe the abort) would otherwise never finish
// its write, and the engine's shutdown would deadlock.
func (tr *tcpTransport) recvLoop(conn net.Conn, node int) {
	defer tr.recvWG.Done()
	cr := &countingReader{r: conn}
	var dec envelopeDecoder
	if tr.codec == CodecBinary {
		dec = &binaryEnvelopeDecoder{r: cr}
	} else {
		dec = gobEnvelopeDecoder{dec: gob.NewDecoder(cr)}
	}
	var met *metrics.Conn
	var lastBytes int64
	dropping := false
	for {
		start := time.Now()
		env, err := dec.next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !tr.isClosed() && !dropping {
				tr.rt.fail(fmt.Errorf("filter: tcp decode: %w", err))
			}
			return
		}
		if met == nil {
			met = tr.connMetric(env.FromNode, node)
		}
		if met != nil {
			met.Recv.Add(time.Since(start))
			met.MsgsIn.Inc()
			met.WireBytesIn.Add(cr.n - lastBytes)
			lastBytes = cr.n
		}
		if dropping {
			continue
		}
		copies, ok := tr.rt.copies[env.ToFilter]
		if !ok || env.ToCopy < 0 || env.ToCopy >= len(copies) {
			tr.rt.fail(fmt.Errorf("filter: tcp envelope for unknown copy %s[%d]", env.ToFilter, env.ToCopy))
			dropping = true
			continue
		}
		m := inMsg{port: env.Port, payload: env.Payload, eos: env.EOS}
		if err := tr.rt.enqueueLocal(copies[env.ToCopy], m); err != nil {
			dropping = true // run aborted; drain until the connection closes
		}
	}
}

func (tr *tcpTransport) isClosed() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.closed
}

// connTo returns (dialing if necessary) the connection from one node to
// another.
func (tr *tcpTransport) connTo(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return nil, errStopped
	}
	if c, ok := tr.conns[key]; ok {
		return c, nil
	}
	conn, err := net.Dial("tcp", tr.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("filter: tcp dial node %d: %w", to, err)
	}
	cw := &countingWriter{w: conn}
	c := &tcpConn{c: conn, cw: cw, met: tr.connMetric(from, to)}
	if tr.codec != CodecBinary {
		c.enc = gob.NewEncoder(cw)
	}
	tr.conns[key] = c
	return c, nil
}

func (tr *tcpTransport) deliver(from, to *copyState, m inMsg) error {
	c, err := tr.connTo(from.node, to.node)
	if err != nil {
		return err
	}
	env := envelope{FromNode: from.node, ToFilter: to.filter, ToCopy: to.copyIdx, Port: m.port, EOS: m.eos, Payload: m.payload}
	c.mu.Lock()
	defer c.mu.Unlock()
	var start time.Time
	before := c.cw.n
	if c.met != nil {
		start = time.Now()
	}
	if tr.codec == CodecBinary {
		buf, err := appendEnvelope(c.buf[:0], &env)
		if err != nil {
			return fmt.Errorf("filter: tcp encode to %s[%d]: %w", to.filter, to.copyIdx, err)
		}
		c.buf = buf // keep the grown scratch for the next message
		if _, err := c.cw.Write(buf); err != nil {
			return fmt.Errorf("filter: tcp write to %s[%d]: %w", to.filter, to.copyIdx, err)
		}
	} else if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("filter: tcp encode to %s[%d]: %w", to.filter, to.copyIdx, err)
	}
	if c.met != nil {
		c.met.Send.Add(time.Since(start))
		c.met.MsgsOut.Inc()
		c.met.WireBytesOut.Add(c.cw.n - before)
	}
	return nil
}

func (tr *tcpTransport) close() error {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return tr.closeErr
	}
	tr.closed = true
	for _, ln := range tr.listeners {
		if err := ln.Close(); err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	for _, c := range tr.conns {
		if err := c.c.Close(); err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	tr.mu.Unlock()
	return tr.closeErr
}

// wait blocks until all receive loops have exited (after close).
func (tr *tcpTransport) wait() { tr.recvWG.Wait() }

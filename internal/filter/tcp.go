package filter

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// RunTCP executes the graph with one loopback TCP endpoint per node:
// buffers between co-located filter copies are handed over by pointer
// exactly as in RunLocal, while buffers crossing nodes are gob-serialized
// and travel through real TCP sockets — the transport split DataCutter
// makes between co-located and remote filters.
//
// All filter copies still run in this process (each node is a router, not a
// separate OS process), so the engine exercises real serialization and
// kernel socket behaviour while remaining a single testable binary. Payload
// types crossing nodes must be registered with encoding/gob.
func RunTCP(g *Graph, opts *Options) (*RunStats, error) {
	rt, err := newRuntime(g, opts, nil)
	if err != nil {
		return nil, err
	}
	tr, err := newTCPTransport(rt, g.NumNodes())
	if err != nil {
		return nil, err
	}
	rt.trans = tr
	stats, err := rt.run()
	tr.wait()
	return stats, err
}

// envelope is the wire format of one buffer crossing nodes.
type envelope struct {
	ToFilter string
	ToCopy   int
	Port     string
	EOS      bool
	Payload  Payload
}

func init() { gob.Register(envelope{}) }

// tcpTransport maintains one TCP connection per ordered node pair that the
// graph actually uses, created lazily on first send.
type tcpTransport struct {
	rt        *runtime
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns map[[2]int]*tcpConn

	recvWG   sync.WaitGroup
	closed   bool
	closeErr error
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

func newTCPTransport(rt *runtime, nodes int) (*tcpTransport, error) {
	tr := &tcpTransport{rt: rt, conns: map[[2]int]*tcpConn{}}
	for i := 0; i < nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("filter: tcp listen: %w", err)
		}
		tr.listeners = append(tr.listeners, ln)
		tr.addrs = append(tr.addrs, ln.Addr().String())
		tr.recvWG.Add(1)
		go tr.acceptLoop(ln)
	}
	return tr, nil
}

func (tr *tcpTransport) acceptLoop(ln net.Listener) {
	defer tr.recvWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.recvWG.Add(1)
		go tr.recvLoop(conn)
	}
}

func (tr *tcpTransport) recvLoop(conn net.Conn) {
	defer tr.recvWG.Done()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !tr.isClosed() {
				tr.rt.fail(fmt.Errorf("filter: tcp decode: %w", err))
			}
			return
		}
		copies, ok := tr.rt.copies[env.ToFilter]
		if !ok || env.ToCopy < 0 || env.ToCopy >= len(copies) {
			tr.rt.fail(fmt.Errorf("filter: tcp envelope for unknown copy %s[%d]", env.ToFilter, env.ToCopy))
			return
		}
		m := inMsg{port: env.Port, payload: env.Payload, eos: env.EOS}
		if err := tr.rt.enqueueLocal(copies[env.ToCopy], m); err != nil {
			return // run aborted
		}
	}
}

func (tr *tcpTransport) isClosed() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.closed
}

// connTo returns (dialing if necessary) the connection from one node to
// another.
func (tr *tcpTransport) connTo(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return nil, errStopped
	}
	if c, ok := tr.conns[key]; ok {
		return c, nil
	}
	conn, err := net.Dial("tcp", tr.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("filter: tcp dial node %d: %w", to, err)
	}
	c := &tcpConn{c: conn, enc: gob.NewEncoder(conn)}
	tr.conns[key] = c
	return c, nil
}

func (tr *tcpTransport) deliver(from, to *copyState, m inMsg) error {
	c, err := tr.connTo(from.node, to.node)
	if err != nil {
		return err
	}
	env := envelope{ToFilter: to.filter, ToCopy: to.copyIdx, Port: m.port, EOS: m.eos, Payload: m.payload}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("filter: tcp encode to %s[%d]: %w", to.filter, to.copyIdx, err)
	}
	return nil
}

func (tr *tcpTransport) close() error {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return tr.closeErr
	}
	tr.closed = true
	for _, ln := range tr.listeners {
		if err := ln.Close(); err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	for _, c := range tr.conns {
		if err := c.c.Close(); err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	tr.mu.Unlock()
	return tr.closeErr
}

// wait blocks until all receive loops have exited (after close).
func (tr *tcpTransport) wait() { tr.recvWG.Wait() }

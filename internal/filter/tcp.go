package filter

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"haralick4d/internal/metrics"
	"haralick4d/internal/resilience"
)

// RunTCP executes the graph with one loopback TCP endpoint per node:
// buffers between co-located filter copies are handed over by pointer
// exactly as in RunLocal, while buffers crossing nodes are serialized with
// the configured wire codec (Options.WireCodec, gob by default) and travel
// through real TCP sockets — the transport split DataCutter makes between
// co-located and remote filters.
//
// All filter copies still run in this process (each node is a router, not a
// separate OS process), so the engine exercises real serialization and
// kernel socket behaviour while remaining a single testable binary. Payload
// types crossing nodes must be registered with encoding/gob.
func RunTCP(g *Graph, opts *Options) (*RunStats, error) {
	return RunTCPContext(context.Background(), g, opts)
}

// RunTCPContext is RunTCP under a context: on cancellation every copy winds
// down, receive loops drain their sockets so no sender stays blocked inside
// a partial write, and the run returns ctx's error with the statistics
// gathered so far.
func RunTCPContext(ctx context.Context, g *Graph, opts *Options) (*RunStats, error) {
	rt, err := newRuntime(g, opts, nil)
	if err != nil {
		return nil, err
	}
	tr, err := newTCPTransport(rt, g.NumNodes(), opts)
	if err != nil {
		return nil, err
	}
	rt.trans = tr
	rt.engine = "tcp"
	stats, err := rt.run(ctx)
	tr.wait()
	return stats, err
}

// envelope is the wire format of one buffer crossing nodes. FromNode lets
// the receiver attribute wire traffic to the ordered node pair. Seq is the
// per-ordered-node-pair sequence number, stamped only when a RetryPolicy is
// active (Seq 0 means no duplicate suppression): a retransmitted envelope
// keeps its number, so the receiver drops the copy it already enqueued.
type envelope struct {
	FromNode int
	ToFilter string
	ToCopy   int
	Port     string
	EOS      bool
	Seq      uint64
	Payload  Payload
}

func init() { gob.Register(envelope{}) }

// countingWriter counts bytes written through it. It is used under the
// owning tcpConn's mutex, so a plain int64 suffices.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader counts bytes read through it. Each instance is owned by a
// single receive-loop goroutine.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// tcpTransport maintains one TCP connection per ordered node pair that the
// graph actually uses, created lazily on first send.
type tcpTransport struct {
	rt        *runtime
	codec     Codec
	retry     *RetryPolicy // nil: single-attempt sends, no deadlines
	wrap      func(net.Conn, int, int) net.Conn
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	conns map[[2]int]*tcpConn

	// streams resequences arrivals per ordered node pair. It outlives
	// individual sockets: when a broken connection is replaced, its last
	// successfully-written frames can still be in flight while retransmitted
	// frames arrive over the fresh socket, so the receiver delivers strictly
	// in sequence order — retransmitted duplicates are dropped, and frames
	// that arrive early wait for the stragglers from the dying socket.
	seqMu   sync.Mutex
	streams map[[2]int]*pairStream

	// Per ordered node pair network metrics, shared between the sending side
	// (Out fields, Send timer) and the receiving loop (In fields, Recv
	// timer). Nil values never enter the map.
	metMu sync.Mutex
	mets  map[[2]int]*metrics.Conn

	// Per ordered node pair resilience state (breaker + shared retry
	// budget), created lazily when the retry policy configures either.
	resMu sync.Mutex
	res   map[[2]int]*resilience.Set

	recvWG   sync.WaitGroup
	closed   bool
	closeErr error
}

type tcpConn struct {
	tr       *tcpTransport
	from, to int

	mu  sync.Mutex
	c   net.Conn // replaced in place on redial, under mu
	cw  *countingWriter
	enc *gob.Encoder    // CodecGob only; rebuilt on redial (the re-handshake)
	buf []byte          // CodecBinary frame scratch, reused under mu
	met *metrics.Conn   // nil when metrics are disabled
	res *resilience.Set // pair breaker/budget; nil when not configured
	seq uint64          // last stamped sequence number (retry mode)
	rng *rand.Rand      // seeded backoff jitter, used under mu
}

func newTCPTransport(rt *runtime, nodes int, opts *Options) (*tcpTransport, error) {
	tr := &tcpTransport{
		rt:      rt,
		codec:   opts.codec(),
		conns:   map[[2]int]*tcpConn{},
		mets:    map[[2]int]*metrics.Conn{},
		streams: map[[2]int]*pairStream{},
		res:     map[[2]int]*resilience.Set{},
	}
	if opts != nil {
		tr.retry = opts.Retry
		tr.wrap = opts.WrapConn
	}
	for i := 0; i < nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("filter: tcp listen: %w", err)
		}
		tr.listeners = append(tr.listeners, ln)
		tr.addrs = append(tr.addrs, ln.Addr().String())
		tr.recvWG.Add(1)
		go tr.acceptLoop(ln, i)
	}
	return tr, nil
}

// connMetric returns the shared metric set for the ordered node pair, or nil
// when metrics are disabled.
func (tr *tcpTransport) connMetric(from, to int) *metrics.Conn {
	if !tr.rt.metricsOn {
		return nil
	}
	key := [2]int{from, to}
	tr.metMu.Lock()
	defer tr.metMu.Unlock()
	m, ok := tr.mets[key]
	if !ok {
		m = &metrics.Conn{}
		tr.mets[key] = m
	}
	return m
}

// pairRes returns the ordered node pair's shared resilience set, created on
// first use, or nil when the retry policy configures neither a pair budget
// nor a pair breaker. The set is shared by every copy sending over the
// link, and by dial and envelope retries alike — that sharing is what makes
// the retry cap storm-proof.
func (tr *tcpTransport) pairRes(from, to int) *resilience.Set {
	p := tr.retry
	if p == nil || (p.PairBudget == nil && p.PairBreaker == nil) {
		return nil
	}
	key := [2]int{from, to}
	tr.resMu.Lock()
	defer tr.resMu.Unlock()
	s, ok := tr.res[key]
	if !ok {
		s = &resilience.Set{}
		if p.PairBreaker != nil {
			s.Breaker = resilience.NewBreaker(*p.PairBreaker)
		}
		if p.PairBudget != nil {
			s.Budget = resilience.NewRetryBudget(p.PairBudget.Tokens, p.PairBudget.Ratio)
		}
		tr.res[key] = s
	}
	return s
}

// netReport snapshots per-connection activity for the run report, ordered by
// (from, to) node pair.
func (tr *tcpTransport) netReport() []metrics.ConnReport {
	tr.metMu.Lock()
	defer tr.metMu.Unlock()
	keys := make([][2]int, 0, len(tr.mets))
	for k := range tr.mets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]metrics.ConnReport, 0, len(keys))
	for _, k := range keys {
		m := tr.mets[k]
		cr := metrics.ConnReport{
			FromNode:     k[0],
			ToNode:       k[1],
			MsgsOut:      m.MsgsOut.Load(),
			WireBytesOut: m.WireBytesOut.Load(),
			SendNS:       m.Send.Stat().TotalNS,
			MsgsIn:       m.MsgsIn.Load(),
			WireBytesIn:  m.WireBytesIn.Load(),
			RecvNS:       m.Recv.Stat().TotalNS,
			Retries:      m.Retries.Load(),
			Redials:      m.Redials.Load(),
			DupsDropped:  m.DupsDropped.Load(),
			RecvErrors:   m.RecvErrors.Load(),
		}
		tr.resMu.Lock()
		set := tr.res[k]
		tr.resMu.Unlock()
		if set != nil {
			rs := set.Snapshot()
			cr.BreakerState = rs.BreakerState
			cr.BreakerTrips = rs.BreakerTrips
			cr.BreakerProbes = rs.BreakerProbes
			cr.BudgetSpent = rs.BudgetSpent
			cr.BudgetDenied = rs.BudgetDenied
		}
		out = append(out, cr)
	}
	return out
}

func (tr *tcpTransport) acceptLoop(ln net.Listener, node int) {
	defer tr.recvWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.recvWG.Add(1)
		go tr.recvLoop(conn, node)
	}
}

// envelopeDecoder reads one envelope per call from a connection, in the
// codec's wire format. io.EOF between envelopes means a clean close.
type envelopeDecoder interface {
	next() (envelope, error)
}

// gobEnvelopeDecoder is the CodecGob receive side: one gob stream per
// connection.
type gobEnvelopeDecoder struct{ dec *gob.Decoder }

func (d gobEnvelopeDecoder) next() (envelope, error) {
	var env envelope
	err := d.dec.Decode(&env)
	return env, err
}

// binaryEnvelopeDecoder is the CodecBinary receive side: a u32 length prefix
// followed by the frame body, read with exactly two ReadFull calls so the
// counting reader's per-message byte attribution stays exact. When a receive
// timeout is configured, the frame body is read under a deadline — a torn
// frame from a dead sender surfaces as an error instead of hanging the loop.
type binaryEnvelopeDecoder struct {
	r           io.Reader
	conn        net.Conn // deadline control; nil when timeouts are off
	bodyTimeout time.Duration
	hdr         [4]byte
	buf         []byte // frame scratch, reused across messages
}

func (d *binaryEnvelopeDecoder) next() (envelope, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return envelope{}, err
	}
	n := int(binaryFrameLen(d.hdr))
	if n > maxWireFrame {
		return envelope{}, fmt.Errorf("filter: tcp frame of %d bytes exceeds limit", n)
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if d.conn != nil && d.bodyTimeout > 0 {
		d.conn.SetReadDeadline(time.Now().Add(d.bodyTimeout))
		defer d.conn.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return envelope{}, err
	}
	return decodeEnvelope(d.buf)
}

// recvLoop decodes envelopes arriving at one node's endpoint and enqueues
// them at the destination copy. The Recv timer includes socket wait, so on a
// mostly idle connection it approaches the connection's lifetime; WireBytesIn
// is exact. After the run aborts the loop keeps decoding and discarding
// envelopes instead of returning: a remote sender blocked inside a partial
// encode (which cannot observe the abort) would otherwise never finish
// its write, and the engine's shutdown would deadlock.
func (tr *tcpTransport) recvLoop(conn net.Conn, node int) {
	defer tr.recvWG.Done()
	cr := &countingReader{r: conn}
	var dec envelopeDecoder
	if tr.codec == CodecBinary {
		bd := &binaryEnvelopeDecoder{r: cr}
		if tr.retry != nil && tr.retry.RecvTimeout > 0 {
			bd.conn, bd.bodyTimeout = conn, tr.retry.RecvTimeout
		}
		dec = bd
	} else {
		dec = gobEnvelopeDecoder{dec: gob.NewDecoder(cr)}
	}
	var met *metrics.Conn
	var lastBytes int64
	dropping := false
	for {
		start := time.Now()
		env, err := dec.next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !tr.isClosed() && !dropping {
				if tr.retry.enabled() {
					// A torn frame from a broken sender: drop this socket and
					// rely on the sender's retransmission over a fresh one —
					// the pair resequencer drops anything already delivered.
					if met != nil {
						met.RecvErrors.Inc()
					}
					conn.Close()
					return
				}
				tr.rt.fail(fmt.Errorf("filter: tcp decode: %w", err))
			}
			return
		}
		if met == nil {
			met = tr.connMetric(env.FromNode, node)
		}
		if met != nil {
			met.Recv.Add(time.Since(start))
			met.MsgsIn.Inc()
			met.WireBytesIn.Add(cr.n - lastBytes)
			lastBytes = cr.n
		}
		batch := []envelope{env}
		if env.Seq > 0 {
			ready, dup := tr.sequence(env.FromNode, node, env)
			if dup {
				if met != nil {
					met.DupsDropped.Inc()
				}
				continue
			}
			batch = ready // may be empty: held back until the gap fills
		}
		if dropping {
			continue
		}
		for _, env := range batch {
			copies, ok := tr.rt.copies[env.ToFilter]
			if !ok || env.ToCopy < 0 || env.ToCopy >= len(copies) {
				tr.rt.fail(fmt.Errorf("filter: tcp envelope for unknown copy %s[%d]", env.ToFilter, env.ToCopy))
				dropping = true
				break
			}
			m := inMsg{port: env.Port, payload: env.Payload, eos: env.EOS}
			if err := tr.rt.enqueueLocal(copies[env.ToCopy], m); err != nil {
				dropping = true // run aborted; drain until the connection closes
				break
			}
		}
	}
}

func (tr *tcpTransport) isClosed() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.closed
}

// pairStream holds one ordered node pair's delivery state: the next
// sequence number owed to the runtime and any frames that arrived ahead of
// it over a fresh socket while stragglers from a replaced socket were still
// in flight.
type pairStream struct {
	next uint64              // lowest sequence number not yet delivered
	held map[uint64]envelope // arrived early, waiting for the gap to fill
}

// sequence admits env into the pair's ordered stream. It returns the
// consecutive run of envelopes now ready for delivery (empty while a gap is
// outstanding) or dup=true for a frame that was already delivered or is
// already being held. Gap frames are guaranteed to arrive eventually: the
// sender closes a socket only after its writes succeeded (the orderly
// shutdown flushes buffered frames) or retransmits the failed envelope over
// the replacement connection.
func (tr *tcpTransport) sequence(from, to int, env envelope) (ready []envelope, dup bool) {
	key := [2]int{from, to}
	tr.seqMu.Lock()
	defer tr.seqMu.Unlock()
	ps := tr.streams[key]
	if ps == nil {
		ps = &pairStream{next: 1}
		tr.streams[key] = ps
	}
	if env.Seq < ps.next {
		return nil, true
	}
	if env.Seq > ps.next {
		if _, exists := ps.held[env.Seq]; exists {
			return nil, true
		}
		if ps.held == nil {
			ps.held = map[uint64]envelope{}
		}
		ps.held[env.Seq] = env
		return nil, false
	}
	ready = append(ready, env)
	ps.next++
	for {
		e, ok := ps.held[ps.next]
		if !ok {
			break
		}
		delete(ps.held, ps.next)
		ready = append(ready, e)
		ps.next++
	}
	return ready, false
}

// pairRNG seeds the backoff-jitter source deterministically from the policy
// seed and the ordered node pair, so chaos runs reproduce exactly.
func (tr *tcpTransport) pairRNG(from, to int) *rand.Rand {
	if !tr.retry.enabled() {
		return nil
	}
	seed := tr.retry.Seed
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed<<16 ^ int64(from)<<8 ^ int64(to)))
}

// dial establishes the raw socket for an ordered node pair, retrying with
// backoff per the retry policy, and applies the fault-injection hook. Dial
// retries draw from the same pair budget as envelope retransmissions, and
// each attempt's outcome feeds the pair breaker.
func (tr *tcpTransport) dial(from, to int, rng *rand.Rand, met *metrics.Conn) (net.Conn, error) {
	set := tr.pairRes(from, to)
	attempts := 1
	if tr.retry.enabled() {
		attempts = tr.retry.MaxAttempts
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			if set != nil && !set.Budget.Withdraw() {
				lastErr = fmt.Errorf("%w, last: %v", resilience.ErrBudgetExhausted, lastErr)
				break
			}
			if met != nil {
				met.Retries.Inc()
			}
			select {
			case <-time.After(tr.retry.backoff(a-1, rng)):
			case <-tr.rt.done:
				return nil, errStopped
			}
		}
		conn, err := net.Dial("tcp", tr.addrs[to])
		if err == nil {
			if set != nil {
				if set.Breaker != nil {
					set.Breaker.Record(resilience.Token{}, nil)
				}
				set.Budget.Deposit()
			}
			if tr.wrap != nil {
				conn = tr.wrap(conn, from, to)
			}
			return conn, nil
		}
		if set != nil && set.Breaker != nil {
			set.Breaker.Record(resilience.Token{}, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("filter: tcp dial node %d: %w", to, lastErr)
}

// connTo returns (dialing if necessary) the connection from one node to
// another. Dialing happens outside the transport lock: with retries enabled
// a dial may back off and sleep, which must not stall unrelated node pairs
// or the transport's shutdown.
func (tr *tcpTransport) connTo(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return nil, errStopped
	}
	if c, ok := tr.conns[key]; ok {
		tr.mu.Unlock()
		return c, nil
	}
	tr.mu.Unlock()

	met := tr.connMetric(from, to)
	rng := tr.pairRNG(from, to)
	conn, err := tr.dial(from, to, rng, met)
	if err != nil {
		return nil, err
	}
	cw := &countingWriter{w: conn}
	c := &tcpConn{tr: tr, from: from, to: to, c: conn, cw: cw, met: met, res: tr.pairRes(from, to), rng: rng}
	if tr.codec != CodecBinary {
		c.enc = gob.NewEncoder(cw)
	}
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		conn.Close()
		return nil, errStopped
	}
	if prev, ok := tr.conns[key]; ok { // lost a concurrent dial race
		tr.mu.Unlock()
		conn.Close()
		return prev, nil
	}
	tr.conns[key] = c
	tr.mu.Unlock()
	return c, nil
}

func (tr *tcpTransport) deliver(from, to *copyState, m inMsg) error {
	c, err := tr.connTo(from.node, to.node)
	if err != nil {
		return err
	}
	env := envelope{FromNode: from.node, ToFilter: to.filter, ToCopy: to.copyIdx, Port: m.port, EOS: m.eos, Payload: m.payload}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Ask the pair breaker before a sequence number is consumed: an
	// abandoned envelope must not leave a gap in the pair stream for the
	// receiver's resequencer to wait on. An open link fails the send
	// immediately — the copy dies and failover redistributes its work —
	// instead of burning redials against a dead peer.
	var tok resilience.Token
	if c.res != nil && c.res.Breaker != nil {
		var aerr error
		if tok, aerr = c.res.Breaker.Allow(); aerr != nil {
			return fmt.Errorf("filter: tcp link node %d->%d: %w", c.from, c.to, aerr)
		}
	}
	if tr.retry.enabled() {
		c.seq++
		env.Seq = c.seq
	}
	var start time.Time
	before := c.cw.n
	if c.met != nil {
		start = time.Now()
	}
	if err := c.writeEnvelope(&env, to, tok); err != nil {
		return err
	}
	if c.met != nil {
		c.met.Send.Add(time.Since(start))
		c.met.MsgsOut.Inc()
		c.met.WireBytesOut.Add(c.cw.n - before)
	}
	return nil
}

// writeEnvelope encodes and writes one envelope under c.mu. With retries
// enabled a failed write closes the socket, backs off, redials, and
// retransmits the same envelope (same sequence number) over the fresh
// connection; the receiver's pair resequencer drops any duplicate.
func (c *tcpConn) writeEnvelope(env *envelope, to *copyState, tok resilience.Token) error {
	p := c.tr.retry
	binary := c.tr.codec == CodecBinary
	if binary {
		// The binary frame is encoded once and retransmitted byte-identically;
		// gob re-encodes per attempt because every reconnect restarts the gob
		// stream (the re-handshake).
		buf, err := appendEnvelope(c.buf[:0], env)
		if err != nil {
			return fmt.Errorf("filter: tcp encode to %s[%d]: %w", to.filter, to.copyIdx, err)
		}
		c.buf = buf // keep the grown scratch for the next message
	}
	attempts := 1
	if p.enabled() {
		attempts = p.MaxAttempts
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			// Every retransmission is funded by the pair's shared budget:
			// when copies across the node have drained it, the send fails
			// now rather than adding to the storm.
			if c.res != nil && !c.res.Budget.Withdraw() {
				lastErr = fmt.Errorf("%w, last: %v", resilience.ErrBudgetExhausted, lastErr)
				break
			}
			if c.met != nil {
				c.met.Retries.Inc()
			}
			select {
			case <-time.After(p.backoff(a-1, c.rng)):
			case <-c.tr.rt.done:
				// Shutdown verdicts say nothing about the link; release a
				// granted half-open probe without recording an outcome.
				if c.res != nil && c.res.Breaker != nil {
					c.res.Breaker.Cancel(tok)
				}
				return errStopped
			}
			if err := c.redial(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := c.writeOnce(env, binary); err != nil {
			lastErr = err
			c.c.Close() // poison the socket so the next attempt redials
			continue
		}
		c.recordLink(tok, nil)
		return nil
	}
	c.recordLink(tok, lastErr)
	verb := "write"
	if !binary {
		verb = "encode"
	}
	if attempts > 1 {
		return fmt.Errorf("filter: tcp send to %s[%d] failed after %d attempts: %w", to.filter, to.copyIdx, attempts, lastErr)
	}
	return fmt.Errorf("filter: tcp %s to %s[%d]: %w", verb, to.filter, to.copyIdx, lastErr)
}

// recordLink reports the envelope's final outcome to the pair breaker —
// matching the Allow granted in deliver — and refunds the budget on
// success.
func (c *tcpConn) recordLink(tok resilience.Token, err error) {
	if c.res == nil {
		return
	}
	if c.res.Breaker != nil {
		c.res.Breaker.Record(tok, err)
	}
	if err == nil {
		c.res.Budget.Deposit()
	}
}

// writeOnce performs a single framed write under the policy's send deadline.
func (c *tcpConn) writeOnce(env *envelope, binary bool) error {
	if p := c.tr.retry; p != nil && p.SendTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(p.SendTimeout))
		defer c.c.SetWriteDeadline(time.Time{})
	}
	if binary {
		_, err := c.cw.Write(c.buf)
		return err
	}
	return c.enc.Encode(*env)
}

// redial replaces the broken socket with a fresh one. The counting writer is
// retargeted in place (cumulative byte counts continue) and the gob encoder
// is rebuilt, which restarts the type-descriptor handshake on the new stream.
func (c *tcpConn) redial() error {
	conn, err := net.Dial("tcp", c.tr.addrs[c.to])
	if err != nil {
		return fmt.Errorf("filter: tcp redial node %d: %w", c.to, err)
	}
	if c.tr.wrap != nil {
		conn = c.tr.wrap(conn, c.from, c.to)
	}
	c.c.Close()
	c.c = conn
	c.cw.w = conn
	if c.tr.codec != CodecBinary {
		c.enc = gob.NewEncoder(c.cw)
	}
	if c.met != nil {
		c.met.Redials.Inc()
	}
	return nil
}

func (tr *tcpTransport) close() error {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return tr.closeErr
	}
	tr.closed = true
	for _, ln := range tr.listeners {
		if err := ln.Close(); err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	for _, c := range tr.conns {
		c.mu.Lock() // c.c is replaced under c.mu on redial
		err := c.c.Close()
		c.mu.Unlock()
		if err != nil && tr.closeErr == nil {
			tr.closeErr = err
		}
	}
	tr.mu.Unlock()
	return tr.closeErr
}

// wait blocks until all receive loops have exited (after close).
func (tr *tcpTransport) wait() { tr.recvWG.Wait() }

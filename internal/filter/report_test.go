package filter

import (
	"context"
	"errors"
	"testing"
	"time"

	"haralick4d/internal/metrics"
)

// endlessSource emits integers until a send fails (run aborted).
func endlessSource() func(int) Filter {
	return func(int) Filter {
		return Func(func(ctx Context) error {
			for i := 0; ; i++ {
				if err := ctx.Send("out", intPayload(i)); err != nil {
					return err
				}
			}
		})
	}
}

// spin burns CPU for roughly d without sleeping, so the time is charged as
// compute rather than as scheduler wait.
func spin(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
		x := 0.0
		for i := 0; i < 1000; i++ {
			x += float64(i)
		}
		_ = x
	}
}

func TestLocalRunReportAccounting(t *testing.T) {
	// Source saturates two spinning sinks through a shallow queue, so every
	// copy lives essentially the whole run: the source is stalled on
	// backpressure while the sinks compute. Per copy, busy + blocked-recv +
	// stalled-send must then account for the elapsed wall time.
	const n = 120
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(n)})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 2, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
				spin(time.Millisecond)
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: DemandDriven})
	stats, err := RunLocal(g, &Options{QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Report
	if rep == nil {
		t.Fatal("RunStats.Report is nil with metrics enabled")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "local" {
		t.Errorf("Engine = %q", rep.Engine)
	}
	if rep.ElapsedNS <= 0 {
		t.Fatalf("ElapsedNS = %d", rep.ElapsedNS)
	}
	var copies int
	var accounted int64
	for _, f := range rep.Filters {
		for _, c := range f.Copies {
			copies++
			accounted += c.BusyNS + c.BlockedRecvNS + c.StalledSendNS
		}
	}
	wall := rep.ElapsedNS * int64(copies)
	if ratio := float64(accounted) / float64(wall); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("busy+blocked+stalled = %d over %d copies, %.1f%% of wall x copies %d (want within 10%%)",
			accounted, copies, 100*ratio, wall)
	}
	sink := rep.Filter("sink")
	if sink == nil || sink.MsgsIn != n {
		t.Fatalf("sink report: %+v", sink)
	}
	if sink.BusyNS < int64(n)*int64(time.Millisecond)/2 {
		t.Errorf("sink BusyNS = %d, want >= half the spin time", sink.BusyNS)
	}
	if len(rep.Streams) != 1 {
		t.Fatalf("Streams = %+v", rep.Streams)
	}
	s := rep.Streams[0]
	if s.Buffers != n || s.Bytes != n*8 || s.Policy != DemandDriven.String() {
		t.Errorf("stream report: %+v", s)
	}
	if s.SendWaitNS <= 0 {
		t.Error("no send wait recorded despite backpressure")
	}
	if rep.Summary.Bottleneck != "sink" {
		t.Errorf("bottleneck = %q, want sink", rep.Summary.Bottleneck)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestLocalMetricsDisabled(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(5)})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			if ctx.Metrics() != nil {
				return errors.New("ctx.Metrics() non-nil with metrics disabled")
			}
			// Nil-receiver metric calls must be safe no-ops.
			sp := ctx.Metrics().StartCompute()
			sp.End()
			ctx.Metrics().Pool(true)
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	stats, err := RunLocal(g, &Options{DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Report != nil {
		t.Error("Report non-nil with DisableMetrics")
	}
}

func TestLocalContextCancel(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: endlessSource()})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 2, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var stats *RunStats
	var err error
	go func() {
		stats, err = RunLocalContext(ctx, g, &Options{QueueDepth: 4})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Fatal("no stats returned on cancellation")
	}
}

func TestLocalPreCancelled(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: endlessSource()})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLocalContext(ctx, g, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTCPContextCancel(t *testing.T) {
	// Cross-node endless producer: on cancellation the receiver must keep
	// draining its socket (a sender mid-encode cannot observe the abort) and
	// the producer's next send must fail, or shutdown deadlocks.
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: endlessSource(), Nodes: []int{0}})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 2, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}, Nodes: []int{1, 1}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var err error
	go func() {
		_, err = RunTCPContext(ctx, g, &Options{QueueDepth: 4})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("TCP run did not stop after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTCPRunReportNetwork(t *testing.T) {
	stats, got := runPipe(t, 200, 4, RoundRobin, RunTCP)
	checkAllReceived(t, got, 200)
	rep := stats.Report
	if rep == nil {
		t.Fatal("no report from TCP run")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "tcp" {
		t.Errorf("Engine = %q", rep.Engine)
	}
	if len(rep.Network) == 0 {
		t.Fatal("no network table despite cross-node traffic")
	}
	var msgsOut, wireOut, msgsIn, wireIn int64
	for _, c := range rep.Network {
		if c.FromNode == c.ToNode {
			t.Errorf("self link %d -> %d in network table", c.FromNode, c.ToNode)
		}
		msgsOut += c.MsgsOut
		wireOut += c.WireBytesOut
		msgsIn += c.MsgsIn
		wireIn += c.WireBytesIn
	}
	// runPipe spreads 4 sink copies over nodes 0 and 1; the 100 buffers to
	// node-1 copies cross the wire, plus EOS envelopes.
	if msgsOut < 100 || msgsIn < 100 {
		t.Errorf("network msgs out=%d in=%d, want >= 100 each", msgsOut, msgsIn)
	}
	if msgsOut != msgsIn {
		t.Errorf("envelopes out %d != in %d", msgsOut, msgsIn)
	}
	if wireOut == 0 || wireOut != wireIn {
		t.Errorf("wire bytes out=%d in=%d, want equal and nonzero", wireOut, wireIn)
	}
}

func TestFinalizeAggregates(t *testing.T) {
	rep := &metrics.RunReport{
		Engine:    "local",
		ElapsedNS: 1000,
		Filters: []metrics.FilterReport{{
			Name: "f",
			Copies: []metrics.CopyReport{
				{BusyNS: 600, MsgsIn: 2, Spans: map[string]metrics.SpanStat{"compute": {Count: 1, TotalNS: 500, MaxNS: 500}}},
				{BusyNS: 400, MsgsIn: 3, Spans: map[string]metrics.SpanStat{"compute": {Count: 2, TotalNS: 300, MaxNS: 200}}},
			},
		}},
	}
	rep.Finalize()
	f := rep.Filter("f")
	if f.BusyNS != 1000 || f.MsgsIn != 5 {
		t.Errorf("aggregates: %+v", f)
	}
	sp := rep.Span("f", "compute")
	if sp.Count != 3 || sp.TotalNS != 800 || sp.MaxNS != 500 {
		t.Errorf("span aggregate: %+v", sp)
	}
	if rep.Summary.Bottleneck != "f" {
		t.Errorf("bottleneck: %q", rep.Summary.Bottleneck)
	}
}

package filter

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"haralick4d/internal/resilience"
)

// RetryPolicy hardens the TCP transport against transient network faults:
// dial attempts and envelope writes are retried with exponential backoff and
// seeded jitter, writes carry a deadline, and every retransmitted envelope
// keeps its per-node-pair sequence number so the receiver can drop
// duplicates after a reconnect.
//
// The zero value (and a nil policy) disables retries entirely — a single
// attempt per operation, the transport's original behaviour — so library
// callers that never asked for fault tolerance are unaffected.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per operation (first try
	// included). Values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent retry
	// doubles it up to MaxDelay. Zero selects 10ms when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero selects 1s.
	MaxDelay time.Duration
	// SendTimeout is the per-attempt write deadline on envelope sends; zero
	// leaves writes unbounded.
	SendTimeout time.Duration
	// RecvTimeout bounds how long the receiver waits for the body of a frame
	// whose header has already arrived (binary codec only) — a torn frame
	// from a failed sender is detected instead of hanging. Zero disables it.
	RecvTimeout time.Duration
	// Seed makes the backoff jitter deterministic for reproducible chaos
	// tests. Zero seeds from the policy defaults (still deterministic).
	Seed int64
	// PairBudget configures a retry budget shared per ordered node pair:
	// every redial and retransmission crossing one link — from any copy —
	// draws from the same token bucket, so a dead peer is hit by a bounded
	// number of retries no matter how many copies send to it. Nil leaves
	// retries bounded only by MaxAttempts per operation.
	PairBudget *resilience.BudgetConfig
	// PairBreaker configures a circuit breaker per ordered node pair. An
	// open link fast-fails sends before a sequence number is consumed; the
	// send error fails the copy, which the failover machinery converts
	// into redistribution to surviving copies instead of a redial loop.
	// Nil disables.
	PairBreaker *resilience.BreakerConfig
}

// enabled reports whether the policy asks for any retries.
func (p *RetryPolicy) enabled() bool { return p != nil && p.MaxAttempts > 1 }

func (p *RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 10 * time.Millisecond
}

func (p *RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return time.Second
}

// backoff returns the sleep before retry attempt (1-based), with up to 50%
// seeded jitter: base·2^(attempt−1) capped at MaxDelay.
func (p *RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.baseDelay() << (attempt - 1)
	if max := p.maxDelay(); d > max || d <= 0 {
		d = max
	}
	if rng != nil {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// ParseRetry parses the CLI retry spec "attempts[,base[,max]]" — e.g. "5",
// "5,20ms", "5,20ms,2s" — into a policy with default deadlines. "0", "1" and
// "" mean no retries (nil policy).
func ParseRetry(s string) (*RetryPolicy, error) {
	if s == "" || s == "0" || s == "1" {
		return nil, nil
	}
	var p RetryPolicy
	fields := splitComma(s)
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("filter: invalid retry attempts %q", fields[0])
	}
	p.MaxAttempts = n
	if len(fields) > 1 {
		if p.BaseDelay, err = time.ParseDuration(fields[1]); err != nil || p.BaseDelay < 0 {
			return nil, fmt.Errorf("filter: invalid retry base delay %q", fields[1])
		}
	}
	if len(fields) > 2 {
		if p.MaxDelay, err = time.ParseDuration(fields[2]); err != nil || p.MaxDelay < 0 {
			return nil, fmt.Errorf("filter: invalid retry max delay %q", fields[2])
		}
	}
	if len(fields) > 3 {
		return nil, fmt.Errorf("filter: retry spec %q has too many fields (want attempts[,base[,max]])", s)
	}
	if !p.enabled() {
		return nil, nil
	}
	return &p, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

package filter

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"haralick4d/internal/metrics"
)

// Options configures an in-process engine run.
type Options struct {
	// QueueDepth bounds each filter copy's input queue (stream
	// backpressure). Default 32 buffers.
	QueueDepth int
	// DisableMetrics turns off the observability layer: filters see a nil
	// metric set, stream counters are not kept, and RunStats.Report stays
	// nil. The default (metrics on) costs a few atomic operations per
	// buffer.
	DisableMetrics bool
	// WireCodec selects the serialization of buffers crossing nodes on the
	// TCP engine (ignored by the pure local engine). The zero value is
	// CodecGob, the original transport; CodecBinary uses the length-prefixed
	// framing with direct backing-array writes for registered payload types.
	WireCodec Codec
	// Failover lets surviving transparent copies inherit the un-acked buffers
	// of a failed copy instead of aborting the run. It applies to filters
	// whose inbound streams are all policy-routed (round-robin or
	// demand-driven) and that have more than one copy; a failure anywhere
	// else, or of a filter's last copy, still aborts with a typed error
	// (ErrCopyFailed / ErrAllCopiesDead). Default off: a copy failure aborts
	// the run, the original behaviour.
	Failover bool
	// Retry hardens the TCP transport (ignored by the pure local engine):
	// dial and send attempts are retried with exponential backoff and seeded
	// jitter, deadlines bound sends and frame-body receives, and sequence
	// numbers on the wire let the receiver drop duplicates created by
	// retransmission. Nil disables retries (single attempt, the original
	// behaviour).
	Retry *RetryPolicy
	// WrapConn, when set, wraps every outbound TCP connection right after a
	// successful dial — the hook used by fault injection (fault.FlakyConn) in
	// chaos tests. The arguments are the producer and consumer node indices.
	WrapConn func(c net.Conn, fromNode, toNode int) net.Conn
	// StallTimeout arms the stall watchdog: when no filter copy anywhere in
	// the graph makes progress (accepts, delivers, or completes any
	// instrumented span) for longer than this, the run fails with a
	// StallError naming the unfinished copies instead of hanging forever.
	// The deadline is global, so backpressure behind a slow-but-working
	// filter never trips it; it must exceed the longest time a single
	// buffer can legitimately spend inside one filter call. 0 (the default)
	// disables the watchdog.
	StallTimeout time.Duration
	// Monitor, when set, runs on its own goroutine for the duration of the
	// run with a Probe over the live runtime. stop is closed when the run
	// finishes (or aborts); the engine waits for Monitor to return before
	// building the final report. The autotune controller attaches here.
	// Requires metrics (ignored when DisableMetrics is set).
	Monitor func(stop <-chan struct{}, p Probe)
}

// Probe is the live view a Monitor gets of a running engine. Snapshot is
// safe to call at any time from the monitor goroutine: every field it reads
// is maintained atomically by the copies' hot paths.
type Probe interface {
	Snapshot() *metrics.Snapshot
}

func (o *Options) depth() int {
	if o == nil || o.QueueDepth <= 0 {
		return 32
	}
	return o.QueueDepth
}

func (o *Options) codec() Codec {
	if o == nil {
		return CodecGob
	}
	return o.WireCodec
}

// RunLocal executes the graph with every filter copy as a goroutine and all
// streams as in-memory queues — full shared-memory parallelism, the
// configuration DataCutter uses for co-located filters. Placement is
// recorded in the stats but has no performance meaning locally.
func RunLocal(g *Graph, opts *Options) (*RunStats, error) {
	return RunLocalContext(context.Background(), g, opts)
}

// RunLocalContext is RunLocal under a context: when ctx is cancelled every
// blocked Recv/Send returns immediately, all copies wind down, and the run
// returns ctx's error alongside the statistics gathered so far.
func RunLocalContext(ctx context.Context, g *Graph, opts *Options) (*RunStats, error) {
	rt, err := newRuntime(g, opts, nil)
	if err != nil {
		return nil, err
	}
	rt.engine = "local"
	return rt.run(ctx)
}

// inMsg is one queue element: a buffer or an end-of-stream marker.
type inMsg struct {
	port    string
	payload Payload
	eos     bool
}

// copyState is the runtime state of one filter copy.
type copyState struct {
	filter    string
	copyIdx   int
	node      int
	inbox     chan inMsg
	pending   atomic.Int64 // buffers queued + in flight
	eosExpect map[string]int
	stats     CopyStats
	met       *metrics.Copy // nil when metrics are disabled

	// dead marks a copy whose failure was tolerated by failover; producers
	// skip dead copies when picking targets. failMsg records the failure for
	// the report (written once at death, read after the run's WaitGroup).
	dead    atomic.Bool
	failMsg string

	// Stall-watchdog state: beats counts engine-level progress events
	// (buffers accepted and delivered), phase labels what the copy is doing
	// (see watchdog.go). Both are written on the hot path and sampled by the
	// watchdog goroutine.
	beats atomic.Int64
	phase atomic.Int32

	// Consumption-rate observations for demand-driven scheduling, updated
	// by the consumer goroutine and read by producers.
	svcCompute atomic.Int64 // total compute ns
	svcMsgs    atomic.Int64 // messages consumed

	// Atomic mirrors of the single-goroutine stats fields, maintained so a
	// Monitor can snapshot blocked/stalled/output mid-run without racing
	// the copy's own goroutine (svcCompute and svcMsgs already mirror
	// Compute and MsgsIn).
	aBlockRecv atomic.Int64
	aBlockSend atomic.Int64
	aMsgsOut   atomic.Int64
}

// connState is the runtime state of one connection.
type connState struct {
	spec      ConnSpec
	consumers []*copyState
	rr        atomic.Uint64
	met       *metrics.Stream // nil when metrics are disabled
}

// transport delivers a message to a consumer copy that is placed on a
// different node than the producer. A nil transport (pure local engine)
// delivers everything through memory.
type transport interface {
	// deliver must block until the message is queued at the consumer
	// (providing backpressure) and return an error on transport failure.
	deliver(from *copyState, to *copyState, m inMsg) error
	// close tears the transport down after the run.
	close() error
}

// runtime is the shared in-process engine used by both the local and TCP
// modes.
type runtime struct {
	graph     *Graph
	copies    map[string][]*copyState
	conns     map[string]*connState // key: from + "." + fromPort
	trans     transport
	engine    string // "local" or "tcp", recorded in the report
	metricsOn bool
	stall     time.Duration // watchdog deadline; 0 = no watchdog
	// stalled is closed by the watchdog when it trips, telling run not to
	// wait forever on goroutines wedged inside filter code. Nil when the
	// watchdog is off.
	stalled chan struct{}
	// failover has an entry per failover-eligible filter (nil map when the
	// option is off).
	failover map[string]*failoverState
	// auxWG tracks dead-copy inbox drainers, waited after the copies finish.
	auxWG sync.WaitGroup

	// Monitor plumbing: start anchors Snapshot's wall clock; monitor is the
	// Options hook (nil when unset or metrics are off).
	start   time.Time
	monitor func(stop <-chan struct{}, p Probe)

	done     chan struct{}
	stopOnce sync.Once
	errMu    sync.Mutex
	firstErr error
}

func newRuntime(g *Graph, opts *Options, trans transport) (*runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rt := &runtime{
		graph:     g,
		copies:    make(map[string][]*copyState),
		conns:     make(map[string]*connState),
		trans:     trans,
		metricsOn: opts == nil || !opts.DisableMetrics,
		done:      make(chan struct{}),
	}
	if opts != nil && opts.StallTimeout > 0 {
		rt.stall = opts.StallTimeout
		rt.stalled = make(chan struct{})
	}
	if opts != nil && opts.Monitor != nil && rt.metricsOn {
		rt.monitor = opts.Monitor
	}
	depth := opts.depth()
	for _, fs := range g.Filters {
		states := make([]*copyState, fs.Copies)
		for i := range states {
			states[i] = &copyState{
				filter:    fs.Name,
				copyIdx:   i,
				node:      fs.Nodes[i],
				inbox:     make(chan inMsg, depth),
				eosExpect: map[string]int{},
			}
			states[i].stats.Node = fs.Nodes[i]
			if rt.metricsOn {
				states[i].met = &metrics.Copy{}
			}
		}
		rt.copies[fs.Name] = states
	}
	if opts != nil && opts.Failover {
		rt.failover = make(map[string]*failoverState)
		for _, fs := range g.Filters {
			if failoverEligible(g, fs.Name, fs.Copies) {
				rt.failover[fs.Name] = newFailoverState(fs.Copies)
			}
		}
	}
	for _, c := range g.Conns {
		producer, _ := g.Filter(c.From)
		cs := &connState{spec: c, consumers: rt.copies[c.To]}
		if rt.metricsOn {
			cs.met = &metrics.Stream{}
		}
		rt.conns[c.From+"."+c.FromPort] = cs
		for _, consumer := range rt.copies[c.To] {
			consumer.eosExpect[c.ToPort] += producer.Copies
		}
	}
	return rt, nil
}

func (rt *runtime) fail(err error) {
	rt.errMu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.errMu.Unlock()
	rt.stopOnce.Do(func() { close(rt.done) })
}

var errStopped = errors.New("filter: run aborted")

// run executes every filter copy and waits for completion. Cancelling ctx
// aborts the run: every blocked Recv/Send observes the closed done channel
// and returns, and the run's error is ctx.Err().
func (rt *runtime) run(ctx context.Context) (*RunStats, error) {
	if ctx.Done() != nil {
		watchStop := make(chan struct{})
		defer close(watchStop)
		go func() {
			select {
			case <-ctx.Done():
				rt.fail(ctx.Err())
			case <-watchStop:
			case <-rt.done:
			}
		}()
	}
	start := time.Now()
	rt.start = start
	if rt.stall > 0 {
		finished := make(chan struct{})
		defer close(finished)
		go rt.watchdog(rt.stall, finished)
	}
	// Launch the monitor (autotune controller) before the copies so it
	// observes the run from the first tick. stopMonitor is idempotent and
	// waits for the monitor goroutine, so the final report sees the
	// controller's complete decision log.
	stopMonitor := func() {}
	if rt.monitor != nil {
		monStop := make(chan struct{})
		monDone := make(chan struct{})
		go func() {
			defer close(monDone)
			rt.monitor(monStop, rt)
		}()
		var once sync.Once
		stopMonitor = func() {
			once.Do(func() {
				close(monStop)
				<-monDone
			})
		}
		defer stopMonitor()
	}
	var wg sync.WaitGroup
	for _, fs := range rt.graph.Filters {
		fs := fs
		for i := 0; i < fs.Copies; i++ {
			st := rt.copies[fs.Name][i]
			ctx := &localCtx{rt: rt, st: st, fo: rt.failover[fs.Name]}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx.lastMark = time.Now()
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = fmt.Errorf("filter: %s[%d] panicked: %v", st.filter, st.copyIdx, r)
						}
					}()
					return fs.New(st.copyIdx).Run(ctx)
				}()
				ctx.closeCompute()
				// The copy leaves the watchdog's suspect set: whatever happens
				// from here (EOS delivery, draining) blocks only on copies
				// that are still live and will be named instead.
				st.phase.Store(phaseDone)
				if err != nil && !errors.Is(err, errStopped) {
					if !rt.tolerateFailure(st, ctx, err) {
						return
					}
					// Tolerated: the drainer owns this copy's inbox from here;
					// fall through to sign off downstream streams as if the
					// copy had finished.
				} else if ctx.fo != nil && !ctx.finalWaited {
					// Finished (or was stopped) without consuming all input:
					// retire the processing slot so survivors in the final
					// wait don't wait for us.
					ctx.fo.release()
				}
				// Signal end-of-stream on every outgoing connection.
				for _, c := range rt.graph.ConnsFrom(st.filter) {
					cs := rt.conns[c.From+"."+c.FromPort]
					for _, consumer := range cs.consumers {
						if derr := rt.deliver(st, consumer, inMsg{port: c.ToPort, eos: true}); derr != nil {
							if !errors.Is(derr, errStopped) {
								rt.fail(derr)
							}
							return
						}
					}
				}
				// Drain any input this copy chose not to consume, so that
				// upstream producers blocked on our full inbox make
				// progress (a filter may legitimately finish early). A dead
				// copy's inbox is drained (and requeued) by its drainer.
				if !st.dead.Load() {
					rt.drain(st, ctx)
				}
			}()
		}
	}
	wgDone := make(chan struct{})
	go func() {
		wg.Wait()
		rt.auxWG.Wait()
		close(wgDone)
	}()
	if rt.stalled == nil {
		<-wgDone
	} else {
		select {
		case <-wgDone:
		case <-rt.stalled:
			// The watchdog tripped. Copies blocked on streams unwind via
			// rt.done, but a goroutine truly wedged inside filter code (a
			// hung read, an endless loop) cannot be interrupted — after a
			// grace period, abandon it and return the diagnostic rather
			// than hang. The leaked goroutines still share the copy stats,
			// so no report is built on this path.
			grace := rt.stall
			if grace > 2*time.Second {
				grace = 2 * time.Second
			}
			select {
			case <-wgDone:
			case <-time.After(grace):
				if rt.trans != nil {
					rt.trans.close() // unblock the transport's receive loops
				}
				rt.errMu.Lock()
				err := rt.firstErr
				rt.errMu.Unlock()
				return &RunStats{Elapsed: time.Since(start), Copies: map[string][]CopyStats{}}, err
			}
		}
	}
	if rt.trans != nil {
		if cerr := rt.trans.close(); cerr != nil && rt.firstErr == nil {
			rt.firstErr = cerr
		}
	}
	stopMonitor()
	stats := &RunStats{Elapsed: time.Since(start), Copies: map[string][]CopyStats{}}
	for name, states := range rt.copies {
		out := make([]CopyStats, len(states))
		for i, st := range states {
			out[i] = st.stats
		}
		stats.Copies[name] = out
	}
	if rt.metricsOn {
		stats.Report = rt.buildReport(stats.Elapsed)
	}
	if rt.firstErr != nil {
		return stats, rt.firstErr
	}
	return stats, nil
}

// Snapshot implements Probe: a mid-run view assembled entirely from the
// atomics the copies maintain on their hot paths (service counters, the
// blocked/stalled mirrors, span timers). Filters appear in the graph's spec
// order and copies in index order, so per-copy identity is stable across
// snapshots and deltas can be taken position-wise.
func (rt *runtime) Snapshot() *metrics.Snapshot {
	s := &metrics.Snapshot{WallNS: int64(time.Since(rt.start))}
	for _, fs := range rt.graph.Filters {
		fsnap := metrics.FilterSnap{Name: fs.Name}
		for _, st := range rt.copies[fs.Name] {
			fsnap.Copies = append(fsnap.Copies, metrics.CopySnap{
				Copy:          st.copyIdx,
				Node:          st.node,
				BusyNS:        st.svcCompute.Load(),
				BlockedRecvNS: st.aBlockRecv.Load(),
				StalledSendNS: st.aBlockSend.Load(),
				MsgsIn:        st.svcMsgs.Load(),
				MsgsOut:       st.aMsgsOut.Load(),
				QueueLen:      st.pending.Load(),
			})
			for name, stat := range st.met.Spans() {
				if fsnap.Spans == nil {
					fsnap.Spans = map[string]int64{}
				}
				fsnap.Spans[name] += stat.TotalNS
			}
		}
		s.Filters = append(s.Filters, fsnap)
	}
	return s
}

// netReporter is implemented by transports that track per-connection network
// activity (the TCP transport).
type netReporter interface {
	netReport() []metrics.ConnReport
}

// buildReport assembles the structured run report from the engine-measured
// copy stats, the filter-recorded span timers, and the per-stream counters.
func (rt *runtime) buildReport(elapsed time.Duration) *metrics.RunReport {
	rep := &metrics.RunReport{Engine: rt.engine, ElapsedNS: int64(elapsed)}
	for _, fs := range rt.graph.Filters {
		fr := metrics.FilterReport{Name: fs.Name}
		for _, st := range rt.copies[fs.Name] {
			cr := metrics.CopyReport{
				Copy:          st.copyIdx,
				Node:          st.node,
				BusyNS:        int64(st.stats.Compute),
				BlockedRecvNS: int64(st.stats.BlockRecv),
				StalledSendNS: int64(st.stats.BlockSend),
				MsgsIn:        st.stats.MsgsIn,
				MsgsOut:       st.stats.MsgsOut,
				BytesIn:       st.stats.BytesIn,
				BytesOut:      st.stats.BytesOut,
				Spans:         st.met.Spans(),
			}
			if st.met != nil {
				cr.PoolHits = st.met.PoolHit.Load()
				cr.PoolMisses = st.met.PoolMiss.Load()
			}
			cr.Failed = st.stats.Failed
			cr.Failure = st.failMsg
			fr.Copies = append(fr.Copies, cr)
		}
		if fo := rt.failover[fs.Name]; fo != nil {
			fo.mu.Lock()
			fr.Redelivered = fo.redelivered
			fo.mu.Unlock()
		}
		rep.Filters = append(rep.Filters, fr)
	}
	for _, c := range rt.graph.Conns {
		cs := rt.conns[c.From+"."+c.FromPort]
		if cs == nil || cs.met == nil {
			continue
		}
		sw := cs.met.SendWait.Stat()
		rep.Streams = append(rep.Streams, metrics.StreamReport{
			From: c.From, FromPort: c.FromPort, To: c.To, ToPort: c.ToPort,
			Policy:     c.Policy.String(),
			Buffers:    cs.met.Buffers.Load(),
			Bytes:      cs.met.Bytes.Load(),
			QueueMax:   cs.met.QueueMax.Load(),
			SendWaits:  sw.Count,
			SendWaitNS: sw.TotalNS,
		})
	}
	if nr, ok := rt.trans.(netReporter); ok {
		rep.Network = nr.netReport()
	}
	rep.Finalize()
	return rep
}

// drain consumes and discards leftover inbox traffic after a copy's Run has
// returned, until every expected end-of-stream marker has arrived.
func (rt *runtime) drain(st *copyState, ctx *localCtx) {
	expect := 0
	for _, n := range st.eosExpect {
		expect += n
	}
	seen := 0
	for _, n := range ctx.eosSeen {
		seen += n
	}
	for seen < expect {
		select {
		case m := <-st.inbox:
			if m.eos {
				seen++
			} else {
				st.pending.Add(-1)
			}
		case <-rt.done:
			return
		}
	}
}

// deliver routes a message to the consumer copy, through memory when
// co-located (pointer hand-off) or through the transport when the producer
// and consumer are on different nodes.
func (rt *runtime) deliver(from, to *copyState, m inMsg) error {
	// After an abort, fail sends immediately: a transport delivery into a
	// draining remote endpoint would otherwise keep succeeding and a
	// producer with more work than queue space would never observe the stop.
	select {
	case <-rt.done:
		return errStopped
	default:
	}
	if !m.eos {
		to.pending.Add(1)
	}
	if rt.trans != nil && from.node != to.node {
		if err := rt.trans.deliver(from, to, m); err != nil {
			if !m.eos {
				to.pending.Add(-1)
			}
			return err
		}
		return nil
	}
	select {
	case to.inbox <- m:
		return nil
	case <-rt.done:
		if !m.eos {
			to.pending.Add(-1)
		}
		return errStopped
	}
}

// enqueueLocal is used by transports on the receiving side.
func (rt *runtime) enqueueLocal(to *copyState, m inMsg) error {
	select {
	case to.inbox <- m:
		return nil
	case <-rt.done:
		return errStopped
	}
}

// localCtx implements Context for the in-process engines.
type localCtx struct {
	rt *runtime
	st *copyState
	fo *failoverState // nil unless this filter is failover-eligible

	lastMark time.Time // start of the current compute segment
	eosSeen  map[string]int
	openIn   int // ports still expecting data; -1 = uninitialized

	// inflight is the last buffer handed to the filter, un-acked until the
	// next Recv call: if the copy dies in between, failover redelivers it to
	// a sibling. Same-goroutine access only (tolerateFailure runs on the
	// copy's own goroutine).
	inflight    inMsg
	hasInflight bool
	// finalWaited is true while this copy is parked in the failover final
	// wait (all EOS seen, processing slot released).
	finalWaited bool
}

// Aborting reports whether the runtime is tearing the run down after a
// failure: an end-of-stream a filter observes then is a side effect of the
// abort, not completion. Sink filters that finalize durable artifacts on
// clean end-of-stream (filters.NewUSO) discover it by type assertion.
func (c *localCtx) Aborting() bool {
	select {
	case <-c.rt.done:
		return true
	default:
		return false
	}
}

// RunContext returns a context.Context that is cancelled when the run aborts
// — the bridge between the engine's done channel and context-aware I/O
// (backend reads, HTTP range requests). Filters discover it by type
// assertion, like Aborting; engines without one (the simulation) leave the
// filters on context.Background.
func (c *localCtx) RunContext() context.Context { return doneCtx{done: c.rt.done} }

// doneCtx adapts the runtime's done channel to the context.Context interface
// without spawning a propagation goroutine per copy.
type doneCtx struct{ done chan struct{} }

func (d doneCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (d doneCtx) Done() <-chan struct{}       { return d.done }
func (d doneCtx) Err() error {
	select {
	case <-d.done:
		return context.Canceled
	default:
		return nil
	}
}
func (d doneCtx) Value(key any) any { return nil }

func (c *localCtx) FilterName() string     { return c.st.filter }
func (c *localCtx) CopyIndex() int         { return c.st.copyIdx }
func (c *localCtx) NumCopies() int         { return len(c.rt.copies[c.st.filter]) }
func (c *localCtx) Node() int              { return c.st.node }
func (c *localCtx) Metrics() *metrics.Copy { return c.st.met }

func (c *localCtx) ConsumerCopies(port string) int {
	cs, ok := c.rt.conns[c.st.filter+"."+port]
	if !ok {
		return 0
	}
	return len(cs.consumers)
}

// markCompute closes the current compute segment and returns the current
// time, which the caller uses to time the blocking section.
func (c *localCtx) markCompute() time.Time {
	now := time.Now()
	d := now.Sub(c.lastMark)
	c.st.stats.Compute += d
	c.st.svcCompute.Add(int64(d))
	return now
}

func (c *localCtx) closeCompute() { c.markCompute() }

func (c *localCtx) Recv() (Msg, bool) {
	if c.eosSeen == nil {
		c.eosSeen = map[string]int{}
		c.openIn = 0
		for _, n := range c.st.eosExpect {
			if n > 0 {
				c.openIn++
			}
		}
	}
	// Returning to Recv acks the previous buffer: the filter is done with it,
	// so it is no longer redelivered if this copy dies.
	c.hasInflight = false
	blockStart := c.markCompute()
	c.st.phase.Store(phaseRecv)
	defer func() {
		now := time.Now()
		c.st.stats.BlockRecv += now.Sub(blockStart)
		c.st.aBlockRecv.Add(int64(now.Sub(blockStart)))
		c.lastMark = now
		c.st.phase.Store(phaseRun)
	}()
	for {
		// Failover-eligible copies first take over requeued buffers from dead
		// siblings; once their own streams are closed they park in the final
		// wait until the whole filter is quiescent.
		var wake chan struct{}
		if c.fo != nil {
			m, ok, done, ch := c.fo.poll(c)
			if ok {
				return c.accept(m)
			}
			if done {
				return Msg{}, false
			}
			wake = ch
		}
		if c.openIn == 0 {
			if c.fo == nil {
				return Msg{}, false
			}
			select {
			case <-wake:
				continue
			case <-c.rt.done:
				return Msg{}, false
			}
		}
		var m inMsg
		select {
		case m = <-c.st.inbox:
		case <-wake: // nil (blocks forever) unless failover-eligible
			continue
		case <-c.rt.done:
			return Msg{}, false
		}
		if m.eos {
			c.eosSeen[m.port]++
			if c.eosSeen[m.port] == c.st.eosExpect[m.port] {
				c.openIn--
			}
			continue
		}
		c.st.pending.Add(-1)
		return c.accept(m)
	}
}

// accept records the consumption stats for a buffer and marks it in flight
// until the next Recv.
func (c *localCtx) accept(m inMsg) (Msg, bool) {
	c.st.stats.MsgsIn++
	c.st.beats.Add(1)
	c.st.svcMsgs.Add(1)
	c.st.stats.BytesIn += int64(m.payload.SizeBytes())
	if c.fo != nil {
		c.inflight = m
		c.hasInflight = true
	}
	return Msg{Port: m.port, Payload: m.payload}, true
}

func (c *localCtx) Send(port string, p Payload) error {
	cs, ok := c.rt.conns[c.st.filter+"."+port]
	if !ok {
		return fmt.Errorf("filter: %s has no connection on port %q", c.st.filter, port)
	}
	var target *copyState
	switch cs.spec.Policy {
	case RoundRobin:
		// Advance past dead copies (failover): the n-bounded scan keeps the
		// no-failure path identical to plain modulo round-robin.
		n := len(cs.consumers)
		for i := 0; i < n; i++ {
			if cand := cs.consumers[int(cs.rr.Add(1)-1)%n]; !cand.dead.Load() {
				target = cand
				break
			}
		}
	case DemandDriven:
		// DataCutter's demand-driven scheduler assigns each buffer based on
		// the copies' buffer consumption rates. Estimate each copy's
		// completion time for this buffer as (queue+1) × its observed mean
		// service time, preferring a co-located copy on ties (it receives
		// the buffer by pointer hand-off). Dead copies are not candidates.
		var best *copyState
		var bestScore int64
		for _, cand := range cs.consumers {
			if cand.dead.Load() {
				continue
			}
			if s := ddScore(cand, c.st.node); best == nil || s < bestScore {
				best, bestScore = cand, s
			}
		}
		target = best
	case Explicit:
		return fmt.Errorf("filter: port %s.%s is explicit; use SendTo", c.st.filter, port)
	}
	if target == nil {
		err := fmt.Errorf("filter: %s: %w", cs.spec.To, ErrAllCopiesDead)
		c.rt.fail(err)
		return errStopped
	}
	return c.send(cs, target, port, p)
}

func (c *localCtx) SendTo(port string, copy int, p Payload) error {
	cs, ok := c.rt.conns[c.st.filter+"."+port]
	if !ok {
		return fmt.Errorf("filter: %s has no connection on port %q", c.st.filter, port)
	}
	if copy < 0 || copy >= len(cs.consumers) {
		return fmt.Errorf("filter: %s.%s copy %d out of range [0, %d)", c.st.filter, port, copy, len(cs.consumers))
	}
	return c.send(cs, cs.consumers[copy], port, p)
}

// ddScore estimates a copy's completion time for one more buffer:
// (queue+1) × mean observed service time, in nanoseconds, doubled so that a
// one-unit remote penalty acts purely as a locality tie-break. Copies with
// no history score by queue length alone.
func ddScore(cand *copyState, fromNode int) int64 {
	svc := int64(1)
	if n := cand.svcMsgs.Load(); n > 0 {
		if s := cand.svcCompute.Load() / n; s > svc {
			svc = s
		}
	}
	score := (cand.pending.Load() + 1) * svc * 2
	if cand.node != fromNode {
		score++
	}
	return score
}

func (c *localCtx) send(cs *connState, target *copyState, port string, p Payload) error {
	if p == nil {
		return fmt.Errorf("filter: %s sent nil payload on %q", c.st.filter, port)
	}
	// Size the payload before the delivery: once delivered the consumer owns
	// it and may recycle its buffers (see filters.ParamMsg.Recycle).
	size := int64(p.SizeBytes())
	blockStart := c.markCompute()
	c.st.phase.Store(phaseSend)
	err := c.rt.deliver(c.st, target, inMsg{port: cs.spec.ToPort, payload: p})
	now := time.Now()
	c.st.stats.BlockSend += now.Sub(blockStart)
	c.st.aBlockSend.Add(int64(now.Sub(blockStart)))
	c.lastMark = now
	c.st.phase.Store(phaseRun)
	if err != nil {
		return err
	}
	c.st.stats.MsgsOut++
	c.st.aMsgsOut.Add(1)
	c.st.beats.Add(1)
	c.st.stats.BytesOut += size
	// The deliver block time is the producer's wait for queue credit on this
	// stream; the pending load right after delivery approximates the depth
	// the consumer's queue reached.
	cs.met.ObserveSend(size, now.Sub(blockStart), target.pending.Load())
	return nil
}

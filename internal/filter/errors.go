package filter

import "errors"

// Sentinel errors of the fault-tolerance layer. Engines wrap them with %w and
// context (filter name, copy index), so callers classify failures with
// errors.Is regardless of the wrapping depth.
var (
	// ErrCopyFailed marks a filter-copy failure (error return or panic) that
	// the runtime could not tolerate: failover disabled, the filter's inbound
	// streams are explicit, or the copy had no surviving siblings to inherit
	// its buffers.
	ErrCopyFailed = errors.New("filter copy failed")

	// ErrAllCopiesDead is the terminal failover error: every transparent copy
	// of a filter has failed, so its stream can no longer make progress.
	ErrAllCopiesDead = errors.New("all filter copies dead")
)

package filter

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// Codec selects the serialization of buffers crossing nodes on the TCP
// engine.
type Codec int

const (
	// CodecGob streams every envelope through one encoding/gob stream per
	// connection — the original transport and the zero-value default, so
	// existing library callers are unaffected.
	CodecGob Codec = iota
	// CodecBinary frames each envelope with a length prefix and writes the
	// hot payload types' backing arrays directly (see WirePayload). Payload
	// types without a registered binary encoding fall back to a per-message
	// gob blob inside the frame, so the codec is transparent to new types.
	CodecBinary
)

// String returns the codec's flag name.
func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	}
	return fmt.Sprintf("codec(%d)", int(c))
}

// ParseCodec is the inverse of String.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "gob":
		return CodecGob, nil
	case "binary":
		return CodecBinary, nil
	}
	return 0, fmt.Errorf("filter: unknown wire codec %q", s)
}

// WirePayload is implemented by payload types carrying their own binary
// encoding for CodecBinary. WireID identifies the type on the wire (one
// byte, process-wide unique, stable across both ends of a run); AppendWire
// appends the encoded payload to buf and returns the extended slice,
// writing backing arrays with bulk appends rather than per-element
// reflection.
type WirePayload interface {
	Payload
	WireID() byte
	AppendWire(buf []byte) []byte
}

// WireDecoder decodes one payload previously produced by AppendWire. The
// input slice is only valid during the call; implementations copy what they
// keep.
type WireDecoder func(data []byte) (Payload, error)

var wireDecoders [256]WireDecoder

// RegisterWireDecoder installs the decoder for one WireID. Payload packages
// call it from init(), mirroring gob.Register; registering the same id
// twice panics, catching accidental collisions early.
func RegisterWireDecoder(id byte, dec WireDecoder) {
	if wireDecoders[id] != nil {
		panic(fmt.Sprintf("filter: wire id %d registered twice", id))
	}
	wireDecoders[id] = dec
}

// Binary envelope framing: a u32 little-endian frame length followed by
//
//	flags    byte (EOS, payload present, payload is a gob blob)
//	FromNode uvarint
//	ToCopy   uvarint
//	Seq      uvarint (0 when duplicate suppression is off)
//	ToFilter uvarint length + bytes
//	Port     uvarint length + bytes
//	payload  WireID byte + AppendWire bytes, or a self-describing gob blob
const (
	flagEOS        = 1 << 0
	flagHasPayload = 1 << 1
	flagGobPayload = 1 << 2
)

// maxWireFrame bounds a frame so a corrupted or misaligned length prefix
// fails fast instead of attempting a multi-gigabyte allocation.
const maxWireFrame = 1 << 30

// binaryFrameLen extracts the frame length from the 4-byte prefix.
func binaryFrameLen(hdr [4]byte) uint32 { return binary.LittleEndian.Uint32(hdr[:]) }

// appendEnvelope encodes env after a 4-byte length placeholder and patches
// the length in, returning the extended buffer.
func appendEnvelope(buf []byte, env *envelope) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length patched below
	flags := byte(0)
	if env.EOS {
		flags |= flagEOS
	}
	wp, isWire := env.Payload.(WirePayload)
	if env.Payload != nil {
		flags |= flagHasPayload
		if !isWire {
			flags |= flagGobPayload
		}
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(env.FromNode))
	buf = binary.AppendUvarint(buf, uint64(env.ToCopy))
	buf = binary.AppendUvarint(buf, env.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(env.ToFilter)))
	buf = append(buf, env.ToFilter...)
	buf = binary.AppendUvarint(buf, uint64(len(env.Port)))
	buf = append(buf, env.Port...)
	switch {
	case isWire:
		buf = append(buf, wp.WireID())
		buf = wp.AppendWire(buf)
	case env.Payload != nil:
		// Transparent fallback for unregistered types: a self-describing
		// per-message gob blob (fresh encoder, so each message carries its
		// own type description — the price of not registering).
		var blob bytes.Buffer
		enc := gob.NewEncoder(&blob)
		if err := enc.Encode(&env.Payload); err != nil {
			return nil, fmt.Errorf("filter: wire gob fallback for %T: %w", env.Payload, err)
		}
		buf = append(buf, blob.Bytes()...)
	}
	n := len(buf) - start - 4
	if n > maxWireFrame {
		return nil, fmt.Errorf("filter: wire frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// decodeEnvelope parses one frame body (the bytes after the length prefix).
func decodeEnvelope(frame []byte) (envelope, error) {
	var env envelope
	if len(frame) < 1 {
		return env, fmt.Errorf("filter: empty wire frame")
	}
	flags := frame[0]
	rest := frame[1:]
	env.EOS = flags&flagEOS != 0
	u := func(field string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("filter: wire frame truncated at %s", field)
		}
		rest = rest[n:]
		return v, nil
	}
	str := func(field string) (string, error) {
		n, err := u(field)
		if err != nil {
			return "", err
		}
		if uint64(len(rest)) < n {
			return "", fmt.Errorf("filter: wire frame truncated in %s", field)
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	from, err := u("FromNode")
	if err != nil {
		return env, err
	}
	toCopy, err := u("ToCopy")
	if err != nil {
		return env, err
	}
	env.FromNode, env.ToCopy = int(from), int(toCopy)
	if env.Seq, err = u("Seq"); err != nil {
		return env, err
	}
	if env.ToFilter, err = str("ToFilter"); err != nil {
		return env, err
	}
	if env.Port, err = str("Port"); err != nil {
		return env, err
	}
	if flags&flagHasPayload == 0 {
		return env, nil
	}
	if flags&flagGobPayload != 0 {
		dec := gob.NewDecoder(bytes.NewReader(rest))
		if err := dec.Decode(&env.Payload); err != nil {
			return env, fmt.Errorf("filter: wire gob fallback decode: %w", err)
		}
		return env, nil
	}
	if len(rest) < 1 {
		return env, fmt.Errorf("filter: wire frame truncated at payload id")
	}
	id := rest[0]
	dec := wireDecoders[id]
	if dec == nil {
		return env, fmt.Errorf("filter: no wire decoder registered for id %d", id)
	}
	p, err := dec(rest[1:])
	if err != nil {
		return env, fmt.Errorf("filter: wire payload id %d: %w", id, err)
	}
	env.Payload = p
	return env, nil
}

package filter

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// intPayload is a trivial payload for middleware tests.
type intPayload int

func (p intPayload) SizeBytes() int { return 8 }

func init() { gob.Register(intPayload(0)) }

// source emits n integers on port "out".
func source(n int) func(int) Filter {
	return func(copy int) Filter {
		return Func(func(ctx Context) error {
			for i := 0; i < n; i++ {
				if err := ctx.Send("out", intPayload(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// collect returns a factory whose copies append received ints to a shared
// slice, plus the slice accessor.
func collect() (func(int) Filter, func() []int) {
	var mu sync.Mutex
	var got []int
	factory := func(copy int) Filter {
		return Func(func(ctx Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				mu.Lock()
				got = append(got, int(m.Payload.(intPayload)))
				mu.Unlock()
			}
		})
	}
	return factory, func() []int {
		mu.Lock()
		defer mu.Unlock()
		out := append([]int(nil), got...)
		return out
	}
}

func TestGraphValidate(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph()
		g.AddFilter(FilterSpec{Name: "a", Copies: 1, New: source(1)})
		g.AddFilter(FilterSpec{Name: "b", Copies: 2, New: source(1)})
		g.Connect(ConnSpec{From: "a", FromPort: "out", To: "b", ToPort: "in", Policy: RoundRobin})
		return g
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	cases := []func(*Graph){
		func(g *Graph) { g.Filters[0].Name = "" },
		func(g *Graph) { g.Filters[1].Name = "a" },
		func(g *Graph) { g.Filters[0].Copies = 0 },
		func(g *Graph) { g.Filters[0].New = nil },
		func(g *Graph) { g.Filters[0].Nodes = []int{1, 2} },
		func(g *Graph) { g.Filters[0].Nodes = []int{-1} },
		func(g *Graph) { g.Conns[0].From = "zzz" },
		func(g *Graph) { g.Conns[0].To = "zzz" },
		func(g *Graph) { g.Conns[0].FromPort = "" },
		func(g *Graph) { g.Conns = append(g.Conns, g.Conns[0]) },
		func(g *Graph) { g.Conns[0].Policy = Policy(9) },
	}
	for i, mutate := range cases {
		g := mk()
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid graph accepted", i)
		}
	}
}

func TestPolicyStringParse(t *testing.T) {
	for _, p := range []Policy{RoundRobin, DemandDriven, Explicit} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bogus policy accepted")
	}
	if p, err := ParsePolicy("rr"); err != nil || p != RoundRobin {
		t.Error("rr alias broken")
	}
	if p, err := ParsePolicy("dd"); err != nil || p != DemandDriven {
		t.Error("dd alias broken")
	}
}

func TestNumNodes(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "a", Copies: 2, New: source(1), Nodes: []int{0, 5}})
	if g.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6", g.NumNodes())
	}
}

func runPipe(t *testing.T, n, copies int, policy Policy, run func(*Graph, *Options) (*RunStats, error)) (*RunStats, []int) {
	t.Helper()
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(n)})
	sink, got := collect()
	nodes := make([]int, copies)
	for i := range nodes {
		nodes[i] = i % 2 // spread consumers over two nodes for TCP coverage
	}
	g.AddFilter(FilterSpec{Name: "sink", Copies: copies, New: sink, Nodes: nodes})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: policy})
	stats, err := run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats, got()
}

func checkAllReceived(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	seen := make([]bool, n)
	for _, v := range got {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("bad or duplicate message %d", v)
		}
		seen[v] = true
	}
}

func TestLocalPipeline(t *testing.T) {
	for _, copies := range []int{1, 3, 7} {
		for _, policy := range []Policy{RoundRobin, DemandDriven} {
			_, got := runPipe(t, 100, copies, policy, RunLocal)
			checkAllReceived(t, got, 100)
		}
	}
}

func TestRoundRobinExactBalance(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(100)})
	var counts [4]atomic.Int64
	g.AddFilter(FilterSpec{Name: "sink", Copies: 4, New: func(copy int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
				counts[copy].Add(1)
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 25 {
			t.Errorf("copy %d received %d buffers, want exactly 25", i, n)
		}
	}
}

func TestExplicitRouting(t *testing.T) {
	g := NewGraph()
	// Route value v to copy v%3; each sink copy verifies it only sees its
	// own residue class.
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			if ctx.ConsumerCopies("out") != 3 {
				return fmt.Errorf("ConsumerCopies = %d", ctx.ConsumerCopies("out"))
			}
			for i := 0; i < 30; i++ {
				if err := ctx.SendTo("out", i%3, intPayload(i)); err != nil {
					return err
				}
			}
			// Send on an explicit port must fail.
			if err := ctx.Send("out", intPayload(0)); err == nil {
				return errors.New("Send on explicit port succeeded")
			}
			// Out-of-range copy must fail.
			if err := ctx.SendTo("out", 99, intPayload(0)); err == nil {
				return errors.New("SendTo out of range succeeded")
			}
			return nil
		})
	}})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 3, New: func(copy int) Filter {
		return Func(func(ctx Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if int(m.Payload.(intPayload))%3 != copy {
					return fmt.Errorf("copy %d received %v", copy, m.Payload)
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: Explicit})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFanInEOS(t *testing.T) {
	// Multiple producer copies into one consumer: the consumer must see all
	// messages and terminate only after every producer copy signals EOS.
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 5, New: source(20)})
	sink, got := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	if n := len(got()); n != 100 {
		t.Errorf("received %d messages, want 100", n)
	}
}

func TestMultiPortRecv(t *testing.T) {
	// Two producers into two distinct ports of one consumer.
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "a", Copies: 1, New: source(10)})
	g.AddFilter(FilterSpec{Name: "b", Copies: 1, New: source(5)})
	var aCount, bCount atomic.Int64
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				switch m.Port {
				case "pa":
					aCount.Add(1)
				case "pb":
					bCount.Add(1)
				default:
					return fmt.Errorf("unknown port %q", m.Port)
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "a", FromPort: "out", To: "sink", ToPort: "pa", Policy: RoundRobin})
	g.Connect(ConnSpec{From: "b", FromPort: "out", To: "sink", ToPort: "pb", Policy: RoundRobin})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	if aCount.Load() != 10 || bCount.Load() != 5 {
		t.Errorf("port counts = %d, %d", aCount.Load(), bCount.Load())
	}
}

func TestErrorPropagation(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(1000)})
	boom := errors.New("boom")
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			ctx.Recv()
			return boom
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	_, err := RunLocal(g, &Options{QueueDepth: 2})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestPanicRecovered(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "p", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error { panic("kaboom") })
	}})
	_, err := RunLocal(g, nil)
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
}

func TestSendWithoutConnection(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "p", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			if err := ctx.Send("nowhere", intPayload(1)); err == nil {
				return errors.New("send on unconnected port succeeded")
			}
			if err := ctx.SendTo("nowhere", 0, intPayload(1)); err == nil {
				return errors.New("sendTo on unconnected port succeeded")
			}
			if ctx.ConsumerCopies("nowhere") != 0 {
				return errors.New("ConsumerCopies on unconnected port nonzero")
			}
			return nil
		})
	}})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilPayloadRejected(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			if err := ctx.Send("out", nil); err == nil {
				return errors.New("nil payload accepted")
			}
			return nil
		})
	}})
	sink, _ := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	if _, err := RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyConsumerExitDoesNotDeadlock(t *testing.T) {
	// Consumer takes one message and returns; producer must still finish.
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(500)})
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			ctx.Recv()
			return nil
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	if _, err := RunLocal(g, &Options{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	stats, got := runPipe(t, 64, 2, RoundRobin, RunLocal)
	checkAllReceived(t, got, 64)
	src := stats.Copies["src"]
	if len(src) != 1 || src[0].MsgsOut != 64 || src[0].BytesOut != 64*8 {
		t.Errorf("src stats wrong: %+v", src)
	}
	var in int64
	for _, c := range stats.Copies["sink"] {
		in += c.MsgsIn
	}
	if in != 64 {
		t.Errorf("sink MsgsIn = %d", in)
	}
	if stats.FilterCompute("sink") < 0 || stats.MeanCompute("sink") < 0 {
		t.Error("negative compute")
	}
	if stats.BytesSent("src") != 64*8 {
		t.Errorf("BytesSent = %d", stats.BytesSent("src"))
	}
	if stats.String() == "" {
		t.Error("empty stats string")
	}
	if stats.MeanCompute("missing") != 0 {
		t.Error("MeanCompute of unknown filter")
	}
}

func TestTCPPipeline(t *testing.T) {
	for _, copies := range []int{1, 4} {
		for _, policy := range []Policy{RoundRobin, DemandDriven} {
			stats, got := runPipe(t, 200, copies, policy, RunTCP)
			checkAllReceived(t, got, 200)
			_ = stats
		}
	}
}

func TestTCPMultiStage(t *testing.T) {
	// Three stages across three nodes; middle stage transforms values.
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(50), Nodes: []int{0}})
	g.AddFilter(FilterSpec{Name: "mid", Copies: 2, New: func(int) Filter {
		return Func(func(ctx Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if err := ctx.Send("out", m.Payload.(intPayload)*2); err != nil {
					return err
				}
			}
		})
	}, Nodes: []int{1, 2}})
	sink, got := collect()
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: sink, Nodes: []int{0}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "mid", ToPort: "in", Policy: DemandDriven})
	g.Connect(ConnSpec{From: "mid", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	if _, err := RunTCP(g, nil); err != nil {
		t.Fatal(err)
	}
	vals := got()
	if len(vals) != 50 {
		t.Fatalf("received %d", len(vals))
	}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 2*(49*50/2) {
		t.Errorf("sum = %d", sum)
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(100), Nodes: []int{0}})
	boom := errors.New("boom")
	g.AddFilter(FilterSpec{Name: "sink", Copies: 1, New: func(int) Filter {
		return Func(func(ctx Context) error {
			ctx.Recv()
			return boom
		})
	}, Nodes: []int{1}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: RoundRobin})
	_, err := RunTCP(g, &Options{QueueDepth: 2})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

// Demand-driven must starve no copy when consumers are equally fast and the
// producer is slower than the consumers (each copy gets some work), and must
// shift load toward fast consumers when speeds differ.
func TestDemandDrivenSkew(t *testing.T) {
	g := NewGraph()
	g.AddFilter(FilterSpec{Name: "src", Copies: 1, New: source(400)})
	var counts [2]atomic.Int64
	g.AddFilter(FilterSpec{Name: "sink", Copies: 2, New: func(copy int) Filter {
		return Func(func(ctx Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
				counts[copy].Add(1)
				if copy == 1 {
					// Slow copy: burn some CPU.
					x := 0.0
					for i := 0; i < 200000; i++ {
						x += float64(i)
					}
					_ = x
				}
			}
		})
	}})
	g.Connect(ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: DemandDriven})
	if _, err := RunLocal(g, &Options{QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	fast, slow := counts[0].Load(), counts[1].Load()
	if fast+slow != 400 {
		t.Fatalf("total = %d", fast+slow)
	}
	if fast <= slow {
		t.Errorf("demand-driven did not favor the fast copy: fast=%d slow=%d", fast, slow)
	}
}

package filter

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseRetry(t *testing.T) {
	for _, s := range []string{"", "0", "1"} {
		if p, err := ParseRetry(s); err != nil || p != nil {
			t.Errorf("ParseRetry(%q) = %v, %v, want nil policy", s, p, err)
		}
	}
	p, err := ParseRetry("5,20ms,2s")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAttempts != 5 || p.BaseDelay != 20*time.Millisecond || p.MaxDelay != 2*time.Second {
		t.Fatalf("ParseRetry full spec = %+v", p)
	}
	if p, err := ParseRetry("3"); err != nil || p.MaxAttempts != 3 || p.BaseDelay != 0 {
		t.Errorf("ParseRetry(\"3\") = %+v, %v", p, err)
	}
	for _, s := range []string{"x", "-2", "5,nope", "5,20ms,bad", "5,1ms,1s,extra"} {
		if _, err := ParseRetry(s); err == nil {
			t.Errorf("ParseRetry(%q) accepted", s)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	// Without jitter: 10, 20, 40, 80, 80, ...
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.backoff(i+1, nil); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// With jitter: bounded by 1.5x the unjittered delay, and deterministic
	// per seed.
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	for a := 1; a <= 6; a++ {
		d1, d2 := p.backoff(a, rng1), p.backoff(a, rng2)
		if d1 != d2 {
			t.Fatalf("backoff(%d) not deterministic per seed: %v vs %v", a, d1, d2)
		}
		base := p.backoff(a, nil)
		if d1 < base || d1 > base+base/2 {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", a, d1, base, base+base/2)
		}
	}
	// Defaults when zero-valued.
	zp := &RetryPolicy{MaxAttempts: 2}
	if zp.backoff(1, nil) != 10*time.Millisecond {
		t.Errorf("default base = %v, want 10ms", zp.backoff(1, nil))
	}
	if zp.backoff(20, nil) != time.Second {
		t.Errorf("default cap = %v, want 1s", zp.backoff(20, nil))
	}
}

func TestRetryEnabled(t *testing.T) {
	var nilP *RetryPolicy
	if nilP.enabled() {
		t.Error("nil policy enabled")
	}
	if (&RetryPolicy{MaxAttempts: 1}).enabled() {
		t.Error("single attempt enabled")
	}
	if !(&RetryPolicy{MaxAttempts: 2}).enabled() {
		t.Error("two attempts disabled")
	}
}

// TestPairRNGBackoffDeterminism pins the reproducibility contract of the
// transport's jittered backoff: for a fixed policy seed and ordered node
// pair, two independent runs draw the identical backoff sequence, and
// distinct node pairs draw de-correlated ones.
func TestPairRNGBackoffDeterminism(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Seed: 42}
	seq := func(from, to int) []time.Duration {
		tr := &tcpTransport{retry: p} // fresh transport = fresh run
		rng := tr.pairRNG(from, to)
		out := make([]time.Duration, 0, 5)
		for a := 1; a <= 5; a++ {
			out = append(out, p.backoff(a, rng))
		}
		return out
	}
	run1, run2 := seq(2, 5), seq(2, 5)
	for i := range run1 {
		if run1[i] != run2[i] {
			t.Fatalf("attempt %d: run1 %v != run2 %v for the same node pair", i+1, run1[i], run2[i])
		}
	}
	other := seq(5, 2) // the reversed pair must not share the jitter stream
	same := true
	for i := range run1 {
		if run1[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("node pairs (2,5) and (5,2) drew identical jitter sequences")
	}
	// The zero seed still yields a deterministic (default-seeded) stream.
	zp := &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	a := (&tcpTransport{retry: zp}).pairRNG(1, 2)
	b := (&tcpTransport{retry: zp}).pairRNG(1, 2)
	for i := 0; i < 5; i++ {
		if x, y := zp.backoff(2, a), zp.backoff(2, b); x != y {
			t.Fatalf("zero-seed backoff diverged at draw %d: %v vs %v", i, x, y)
		}
	}
}

package filter

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"haralick4d/internal/metrics"
)

// CopyStats aggregates one filter copy's activity during a run. Compute is
// the wall time the copy spent executing filter code between context calls;
// BlockRecv and BlockSend are the times spent blocked on empty inputs and
// full outputs respectively. Under the simulated-cluster engine all three
// are in virtual time.
type CopyStats struct {
	Node      int
	Compute   time.Duration
	BlockRecv time.Duration
	BlockSend time.Duration
	MsgsIn    int64
	MsgsOut   int64
	BytesIn   int64
	BytesOut  int64
	// Failed marks a copy whose failure was tolerated by failover (the run
	// completed on the surviving copies).
	Failed bool
}

// RunStats is the result of an engine run: per-filter per-copy statistics
// plus the end-to-end execution time (virtual time under simulation).
type RunStats struct {
	Elapsed time.Duration
	Copies  map[string][]CopyStats

	// Report is the structured observability report for the run: per-filter
	// span decompositions, per-stream traffic, network activity under the
	// TCP engine, and the critical-path summary. It is nil when the run was
	// started with metrics disabled.
	Report *metrics.RunReport
}

// FilterCompute returns the total compute time across all copies of the
// named filter — the paper's "processing time of each filter" (Fig. 9 plots
// the per-copy average; see MeanCompute).
func (s *RunStats) FilterCompute(name string) time.Duration {
	var sum time.Duration
	for _, c := range s.Copies[name] {
		sum += c.Compute
	}
	return sum
}

// MeanCompute returns the average per-copy compute time of the named
// filter.
func (s *RunStats) MeanCompute(name string) time.Duration {
	copies := s.Copies[name]
	if len(copies) == 0 {
		return 0
	}
	return s.FilterCompute(name) / time.Duration(len(copies))
}

// BytesSent returns the total bytes emitted by all copies of the named
// filter.
func (s *RunStats) BytesSent(name string) int64 {
	var sum int64
	for _, c := range s.Copies[name] {
		sum += c.BytesOut
	}
	return sum
}

// String renders a compact per-filter summary table.
func (s *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed %v\n", s.Elapsed)
	names := make([]string, 0, len(s.Copies))
	for n := range s.Copies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		copies := s.Copies[n]
		var cs CopyStats
		for _, c := range copies {
			cs.Compute += c.Compute
			cs.BlockRecv += c.BlockRecv
			cs.BlockSend += c.BlockSend
			cs.MsgsIn += c.MsgsIn
			cs.MsgsOut += c.MsgsOut
			cs.BytesIn += c.BytesIn
			cs.BytesOut += c.BytesOut
		}
		fmt.Fprintf(&b, "%-6s copies=%-3d compute=%-12v recv-wait=%-12v send-wait=%-12v in=%d/%dB out=%d/%dB\n",
			n, len(copies), cs.Compute.Round(time.Microsecond), cs.BlockRecv.Round(time.Microsecond),
			cs.BlockSend.Round(time.Microsecond), cs.MsgsIn, cs.BytesIn, cs.MsgsOut, cs.BytesOut)
	}
	return b.String()
}

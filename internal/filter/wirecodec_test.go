package filter

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"reflect"
	"strings"
	"testing"
)

var errTestTruncated = errors.New("test payload truncated")

// wireTestPayload exercises the registered-payload fast path.
type wireTestPayload struct {
	N    int
	Blob []byte
}

func (p *wireTestPayload) SizeBytes() int { return 8 + len(p.Blob) }
func (p *wireTestPayload) WireID() byte   { return 200 }
func (p *wireTestPayload) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.N))
	buf = binary.AppendUvarint(buf, uint64(len(p.Blob)))
	return append(buf, p.Blob...)
}

// gobOnlyPayload has no wire registration, so it must take the per-message
// gob fallback inside a binary frame.
type gobOnlyPayload struct {
	Name string
	Vals []float64
}

func (p *gobOnlyPayload) SizeBytes() int { return 16 + len(p.Name) + 8*len(p.Vals) }

func init() {
	RegisterWireDecoder(200, func(data []byte) (Payload, error) {
		var p wireTestPayload
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errTestTruncated
		}
		p.N = int(v)
		data = data[n:]
		ln, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < ln {
			return nil, errTestTruncated
		}
		data = data[n:]
		p.Blob = append([]byte(nil), data[:ln]...)
		return &p, nil
	})
	gob.Register(&gobOnlyPayload{})
}

// roundTrip pushes env through the binary framing and back.
func roundTrip(t *testing.T, env envelope) envelope {
	t.Helper()
	buf, err := appendEnvelope(nil, &env)
	if err != nil {
		t.Fatalf("appendEnvelope: %v", err)
	}
	var hdr [4]byte
	copy(hdr[:], buf)
	if got, want := int(binaryFrameLen(hdr)), len(buf)-4; got != want {
		t.Fatalf("frame length prefix %d, body is %d bytes", got, want)
	}
	out, err := decodeEnvelope(buf[4:])
	if err != nil {
		t.Fatalf("decodeEnvelope: %v", err)
	}
	return out
}

func TestBinaryEnvelopeRegisteredPayload(t *testing.T) {
	env := envelope{
		FromNode: 3, ToFilter: "IIC", ToCopy: 7, Port: "in",
		Payload: &wireTestPayload{N: 42, Blob: []byte{9, 8, 7, 6, 5}},
	}
	got := roundTrip(t, env)
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, env)
	}
}

func TestBinaryEnvelopeEOS(t *testing.T) {
	env := envelope{FromNode: 1, ToFilter: "sink", ToCopy: 0, Port: "in", EOS: true}
	got := roundTrip(t, env)
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("EOS round trip mismatch:\n got %+v\nwant %+v", got, env)
	}
	if got.Payload != nil {
		t.Fatalf("EOS envelope decoded with payload %T", got.Payload)
	}
}

func TestBinaryEnvelopeGobFallback(t *testing.T) {
	env := envelope{
		FromNode: 0, ToFilter: "JIW", ToCopy: 2, Port: "in",
		Payload: &gobOnlyPayload{Name: "energy", Vals: []float64{1.5, -2.25, 0}},
	}
	got := roundTrip(t, env)
	p, ok := got.Payload.(*gobOnlyPayload)
	if !ok {
		t.Fatalf("fallback payload decoded as %T", got.Payload)
	}
	if !reflect.DeepEqual(p, env.Payload) {
		t.Fatalf("fallback round trip mismatch:\n got %+v\nwant %+v", p, env.Payload)
	}
}

func TestBinaryEnvelopeScratchReuse(t *testing.T) {
	// Consecutive messages through one scratch buffer must not bleed into
	// each other — the tcpConn reuses c.buf exactly this way.
	var buf []byte
	envs := []envelope{
		{FromNode: 1, ToFilter: "a", ToCopy: 0, Port: "in", Payload: &wireTestPayload{N: 1, Blob: []byte{1}}},
		{FromNode: 2, ToFilter: "bb", ToCopy: 1, Port: "in", Payload: &wireTestPayload{N: 2, Blob: []byte{2, 2}}},
		{FromNode: 3, ToFilter: "ccc", ToCopy: 2, Port: "in", EOS: true},
	}
	for _, env := range envs {
		out, err := appendEnvelope(buf[:0], &env)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
		got, err := decodeEnvelope(buf[4:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("scratch reuse mismatch:\n got %+v\nwant %+v", got, env)
		}
	}
}

func TestBinaryEnvelopeDecodeErrors(t *testing.T) {
	if _, err := decodeEnvelope(nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	// A frame claiming a registered payload with an unknown id.
	env := envelope{FromNode: 0, ToFilter: "x", ToCopy: 0, Port: "in",
		Payload: &wireTestPayload{N: 1}}
	buf, err := appendEnvelope(nil, &env)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf[4:]...)
	// The payload here is 2 bytes (N=1, empty blob), so the WireID byte sits
	// 3 bytes from the end of the frame.
	frame[len(frame)-3] = 250 // unregistered id
	if _, err := decodeEnvelope(frame); err == nil || !strings.Contains(err.Error(), "no wire decoder") {
		t.Fatalf("unregistered id error = %v", err)
	}
	// Truncations at every prefix length must error, never panic.
	full := buf[4:]
	for n := 0; n < len(full); n++ {
		if _, err := decodeEnvelope(full[:n]); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded", n)
		}
	}
}

func TestParseCodec(t *testing.T) {
	for _, c := range []Codec{CodecGob, CodecBinary} {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("protobuf"); err == nil {
		t.Fatal("unknown codec parsed")
	}
}

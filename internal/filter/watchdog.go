package filter

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrStalled marks a run aborted by the stall watchdog: no filter copy in
// the whole pipeline made progress for longer than Options.StallTimeout.
// Use errors.As with *StallError for the per-copy diagnosis.
var ErrStalled = errors.New("filter: pipeline stalled")

// StalledCopy describes one filter copy that had not progressed when the
// watchdog tripped.
type StalledCopy struct {
	Filter string
	Copy   int
	Node   int
	// State is what the copy was doing when last observed: "busy" (inside
	// filter code — a wedged computation or blocked I/O call), "send-wait"
	// (blocked delivering a buffer downstream) or "recv-wait" (blocked
	// waiting for input).
	State string
	// Idle is how long the copy had shown no progress when the watchdog
	// tripped.
	Idle time.Duration
	// LastProgress is the wall-clock time the copy's heartbeat last
	// advanced — when reading a daemon log long after the fact, the
	// absolute timestamp correlates with backend/peer events in a way the
	// relative Idle cannot.
	LastProgress time.Time
}

// StallError is the diagnostic the watchdog fails the run with. The most
// suspicious copies come first: a copy stuck inside filter code outranks
// one blocked sending (its consumer is wedged), which outranks one merely
// starved of input — so Stalled[0] usually names the culprit rather than a
// victim of backpressure.
type StallError struct {
	Timeout time.Duration
	Stalled []StalledCopy
}

// Unwrap makes errors.Is(err, ErrStalled) hold.
func (e *StallError) Unwrap() error { return ErrStalled }

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "filter: pipeline stalled: no progress for %v", e.Timeout)
	if len(e.Stalled) == 0 {
		b.WriteString(" (every copy reports done; the run is wedged outside filter code)")
		return b.String()
	}
	b.WriteString("; unfinished copies: ")
	for i, s := range e.Stalled {
		if i == 4 {
			fmt.Fprintf(&b, ", +%d more", len(e.Stalled)-4)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[%d] on node %d (%s %v, last progress %s)",
			s.Filter, s.Copy, s.Node, s.State, s.Idle.Round(time.Millisecond),
			s.LastProgress.Format("15:04:05.000"))
	}
	return b.String()
}

// Copy lifecycle phases the watchdog reads to label a stalled copy. They
// are advisory (updated with plain atomic stores on the hot path), so a
// label can lag reality by one transition — good enough for a diagnostic.
const (
	phaseRun  = int32(iota) // inside filter code
	phaseRecv               // blocked in Recv
	phaseSend               // blocked delivering in Send/SendTo
	phaseDone               // filter Run returned
)

func phaseName(p int32) string {
	switch p {
	case phaseRecv:
		return "recv-wait"
	case phaseSend:
		return "send-wait"
	default:
		return "busy"
	}
}

// progress returns the copy's heartbeat: engine-level message activity plus
// the filter-recorded metrics spans. Any instrumented step — a buffer
// accepted, a delivery completed, a read/assemble/compute/write span closed
// — advances it.
func (st *copyState) progress() int64 {
	return st.beats.Load() + st.met.Progress()
}

// watchdog aborts the run with a StallError when no copy anywhere makes
// progress for longer than timeout. It watches the sum of all heartbeats —
// a global deadline, so ordinary backpressure chains (everyone waiting on
// one busy filter that IS progressing) never trip it; only a truly wedged
// pipeline does. finished is closed when all copies have wound down.
func (rt *runtime) watchdog(timeout time.Duration, finished <-chan struct{}) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	var all []*copyState
	for _, fs := range rt.graph.Filters {
		all = append(all, rt.copies[fs.Name]...)
	}
	last := make([]int64, len(all))
	seen := make([]time.Time, len(all))
	now := time.Now()
	var total int64
	for i, st := range all {
		last[i] = st.progress()
		seen[i] = now
		total += last[i]
	}
	lastTotal, lastChange := total, now
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-finished:
			return
		case <-rt.done:
			return
		case now = <-t.C:
		}
		total = 0
		for i, st := range all {
			p := st.progress()
			if p != last[i] {
				last[i] = p
				seen[i] = now
			}
			total += p
		}
		if total != lastTotal {
			lastTotal, lastChange = total, now
			continue
		}
		if now.Sub(lastChange) <= timeout {
			continue
		}
		e := &StallError{Timeout: timeout}
		for i, st := range all {
			ph := st.phase.Load()
			if ph == phaseDone || st.dead.Load() {
				continue
			}
			e.Stalled = append(e.Stalled, StalledCopy{
				Filter: st.filter, Copy: st.copyIdx, Node: st.node,
				State: phaseName(ph), Idle: now.Sub(seen[i]), LastProgress: seen[i],
			})
		}
		sort.SliceStable(e.Stalled, func(a, b int) bool {
			ra, rb := stateRankName(e.Stalled[a].State), stateRankName(e.Stalled[b].State)
			if ra != rb {
				return ra < rb
			}
			return e.Stalled[a].Idle > e.Stalled[b].Idle
		})
		rt.fail(e)
		close(rt.stalled)
		return
	}
}

func stateRankName(s string) int {
	switch s {
	case "busy":
		return 0
	case "send-wait":
		return 1
	default:
		return 2
	}
}

// The job runner: one job's trip through the same path the CLI takes —
// open the dataset by URL, translate the spec into a pipeline config,
// attach the per-job checkpoint journal, build the graph with the
// governor's gate and admission tokens injected, and run it on the local
// engine under the job's context. The runner never touches Job fields
// directly; everything mutable flows back through the onProgress callback
// and the returned runResult, so the server mutex stays with the server.
package server

import (
	"context"
	"os"
	"time"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/resilience"
)

// runInput is the immutable per-run view the scheduler hands the runner.
type runInput struct {
	spec     Spec
	ckptPath string // per-job checkpoint journal; "" when not checkpointable
	resume   bool   // reopen ckptPath instead of truncating it
	outDir   string // resolved output directory ("" for output "none")

	stallTimeout     time.Duration // default when the spec leaves it empty
	progressInterval time.Duration
	onProgress       func(metrics.Progress)

	gate *grant
	res  *resilience.Set // shared per-backend-host breaker/budget/hedger; nil = off
}

// runResult carries what the run produced back to the scheduler.
type runResult struct {
	report  *metrics.RunReport
	restart *pipeline.RestartSummary
}

// runJob executes one job to completion, cancellation or failure.
func runJob(ctx context.Context, in runInput) (runResult, error) {
	var res runResult
	uopts := &dataset.URLOptions{
		CacheBlocks:    in.spec.CacheBlocks,
		CacheBlockSize: in.spec.CacheBlockSize,
		Resilience:     in.res,
		ServeStale:     in.spec.ServeStale,
	}
	st, err := dataset.OpenURL(ctx, in.spec.Dataset, uopts)
	if err != nil {
		return res, err
	}
	defer st.Close()

	cfg, layout, err := in.spec.pipelineConfig(st.Meta.Nodes)
	if err != nil {
		return res, err
	}
	cfg.OutDir = in.outDir
	cfg.ReadAheadGate = in.gate.gate
	cfg.Admission = in.gate.tokens
	if cfg.Output != pipeline.OutputCollect {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return res, err
		}
	}

	var jour *checkpoint.Journal
	if in.ckptPath != "" {
		resume := in.resume
		if resume {
			// A job parked or killed before its first portion landed has no
			// journal yet; that is a fresh start, not an error.
			if _, serr := os.Stat(in.ckptPath); serr != nil {
				resume = false
			}
		}
		jour, res.restart, err = pipeline.PrepareCheckpoint(st.Meta.Dims, cfg, in.ckptPath, resume, 0)
		if err != nil {
			return res, err
		}
		if !resume {
			res.restart = nil
		}
	}

	g, sink, _, err := pipeline.Build(st, cfg, layout)
	if err != nil {
		if jour != nil {
			jour.Close()
		}
		return res, err
	}
	stall, err := in.spec.stallTimeout(in.stallTimeout)
	if err != nil {
		if jour != nil {
			jour.Close()
		}
		return res, err
	}
	ropts := &pipeline.RunOptions{
		Failover:     cfg.FaultPolicy == fault.SkipDegraded,
		StallTimeout: stall,
		Monitor:      progressMonitor(in.progressInterval, in.onProgress),
	}
	rs, err := pipeline.RunContext(ctx, g, pipeline.EngineLocal, ropts)
	if jour != nil {
		// Close regardless of outcome: the journal is what a pause, park or
		// crash resumes from, so whatever landed must reach the disk.
		if cerr := jour.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return res, err
	}
	if sink != nil {
		if err := sink.Complete(cfg.Analysis.Features); err != nil {
			return res, err
		}
	}
	res.report = rs.Report
	pipeline.AttachBackendStats(res.report, st)
	return res, nil
}

// progressMonitor builds the runtime Monitor hook sampling live snapshots
// on the given cadence.
func progressMonitor(interval time.Duration, fn func(metrics.Progress)) func(stop <-chan struct{}, p filter.Probe) {
	if fn == nil {
		return nil
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return func(stop <-chan struct{}, p filter.Probe) {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				fn(p.Snapshot().Progress())
			}
		}
	}
}

// Per-job event streams: a small fan-out hub feeding GET /jobs/{id}/events
// subscribers. Publishing never blocks the scheduler or a runner — a
// subscriber that cannot keep up loses intermediate progress events (each
// carries cumulative counters, so nothing is miscounted) and always
// receives state transitions via the buffered channel headroom.
package server

import "haralick4d/internal/metrics"

// Event is one NDJSON line of a job's event stream.
type Event struct {
	// Type is "state" or "progress".
	Type  string `json:"type"`
	JobID int64  `json:"job_id"`
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	Kind  string `json:"error_kind,omitempty"`

	Progress *metrics.Progress `json:"progress,omitempty"`
}

type subscriber struct {
	jobID int64
	ch    chan Event
}

type hub struct {
	// Guarded by the server mutex (the hub has no lock of its own; every
	// call site already holds it).
	subs map[*subscriber]struct{}
}

func newHub() *hub { return &hub{subs: map[*subscriber]struct{}{}} }

// subscribe registers a listener for one job's events. The caller must
// eventually unsubscribe.
func (h *hub) subscribe(jobID int64) *subscriber {
	s := &subscriber{jobID: jobID, ch: make(chan Event, 64)}
	h.subs[s] = struct{}{}
	return s
}

func (h *hub) unsubscribe(s *subscriber) {
	delete(h.subs, s)
}

// publish fans an event out to the job's subscribers, dropping it for any
// subscriber whose buffer is full.
func (h *hub) publish(ev Event) {
	for s := range h.subs {
		if s.jobID != ev.JobID {
			continue
		}
		select {
		case s.ch <- ev:
		default:
		}
	}
}

// The job journal: every submission and state transition appended as a
// JSON payload inside a CRC-framed checkpoint.Log, so a daemon killed at
// any instant — mid-frame included — reopens the file, drops the torn
// tail, and reconstructs exactly the jobs it had accepted. Recovery then
// re-admits the in-flight ones: queued, running and parked jobs go back on
// the queue (running/parked ones resume from their per-job checkpoint when
// one exists), paused jobs stay paused because a client asked for that,
// and terminal jobs are kept for listing only.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"haralick4d/internal/checkpoint"
)

// journalHeader fingerprints the record schema; a daemon refuses a state
// dir written by an incompatible version (checkpoint.ErrMismatch).
const journalHeader = "haralick4d-job-journal-v1"

// record is one journal entry.
type record struct {
	// Type is "submit" (Spec set) or "state" (State set).
	Type  string `json:"type"`
	ID    int64  `json:"id"`
	Spec  *Spec  `json:"spec,omitempty"`
	State State  `json:"state,omitempty"`
	Err   string `json:"error,omitempty"`
	Kind  string `json:"error_kind,omitempty"`
	// Resume records, on pause/park/fail transitions, whether a later run
	// may reopen the job's checkpoint.
	Resume bool `json:"resume,omitempty"`
}

// openJournal creates or reopens the job journal at path and replays it.
// It returns the open log, the reconstructed jobs in submission order, and
// the next unused job id.
func openJournal(path string, syncInterval time.Duration) (*checkpoint.Log, []*Job, int64, error) {
	hdr := []byte(journalHeader)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		l, err := checkpoint.CreateLog(path, hdr, syncInterval)
		if err != nil {
			return nil, nil, 1, err
		}
		return l, nil, 1, nil
	}
	l, payloads, _, err := checkpoint.OpenLog(path, hdr, syncInterval)
	if err != nil {
		return nil, nil, 1, err
	}
	jobs, nextID, err := replay(payloads)
	if err != nil {
		l.Close()
		return nil, nil, 1, err
	}
	return l, jobs, nextID, nil
}

// replay folds the journal records into per-job final states.
func replay(payloads [][]byte) ([]*Job, int64, error) {
	byID := map[int64]*Job{}
	var order []*Job
	nextID := int64(1)
	for i, p := range payloads {
		var r record
		if err := json.Unmarshal(p, &r); err != nil {
			return nil, 1, fmt.Errorf("%w: job journal record %d: %v", checkpoint.ErrCorrupt, i, err)
		}
		switch r.Type {
		case "submit":
			if r.Spec == nil || r.ID <= 0 || byID[r.ID] != nil {
				return nil, 1, fmt.Errorf("%w: job journal record %d: bad submit", checkpoint.ErrCorrupt, i)
			}
			j := &Job{ID: r.ID, Spec: *r.Spec, State: StateQueued}
			byID[r.ID] = j
			order = append(order, j)
			if r.ID >= nextID {
				nextID = r.ID + 1
			}
		case "state":
			j := byID[r.ID]
			if j == nil || !r.State.valid() {
				return nil, 1, fmt.Errorf("%w: job journal record %d: state for unknown job or unknown state", checkpoint.ErrCorrupt, i)
			}
			j.State = r.State
			j.Err, j.ErrKind = r.Err, r.Kind
			j.Resume = r.Resume
		default:
			return nil, 1, fmt.Errorf("%w: job journal record %d: unknown type %q", checkpoint.ErrCorrupt, i, r.Type)
		}
	}
	return order, nextID, nil
}

// appendSubmit journals a new job's spec.
func appendSubmit(l *checkpoint.Log, j *Job) error {
	return appendRecord(l, record{Type: "submit", ID: j.ID, Spec: &j.Spec})
}

// appendState journals a job's current state.
func appendState(l *checkpoint.Log, j *Job) error {
	return appendRecord(l, record{
		Type: "state", ID: j.ID, State: j.State,
		Err: j.Err, Kind: j.ErrKind, Resume: j.Resume,
	})
}

func appendRecord(l *checkpoint.Log, r record) error {
	p, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return l.Append(p)
}

// Job model: the submitted analysis spec, the job state machine and the
// failure taxonomy the daemon reports instead of dying.
//
// States and transitions:
//
//	          submit                 slot free
//	(client) ───────▶ queued ─────────────────────▶ running
//	                    │  cancel                      │
//	                    ▼                              │ run returns
//	                canceled ◀── reason=cancel ────────┤
//	                 paused  ◀── reason=pause ─────────┤   (resume ▶ queued)
//	                 parked  ◀── reason=park (drain) ──┤   (restart/resume ▶ queued)
//	               completed ◀── err == nil ───────────┤
//	                  failed ◀── otherwise ────────────┘   (resume ▶ queued)
//
// completed, failed and canceled are terminal for the daemon's scheduler;
// failed, paused and parked can be re-queued by POST /jobs/{id}/resume, and
// non-terminal jobs found in the journal on startup are re-admitted
// automatically (paused ones stay paused — that state was asked for).
package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/pipeline"
)

// State is one node of the job lifecycle state machine.
type State string

// The seven job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"    // client-requested stop; checkpointed, resumable
	StateParked    State = "parked"    // drain-requested stop; re-admitted on restart
	StateCompleted State = "completed" // terminal
	StateFailed    State = "failed"    // terminal for the scheduler; resumable by the client
	StateCanceled  State = "canceled"  // terminal
)

// Terminal reports whether the scheduler is done with a job in this state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// valid reports whether s is one of the seven states (journal replay guard).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StatePaused, StateParked, StateCompleted, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Spec is the client-submitted description of one analysis job. Zero-valued
// fields select the same defaults the haralick4d CLI documents; string
// enums reuse the CLI's flag vocabulary so a curl body reads like a flag
// line.
type Spec struct {
	// Dataset is the dataset URL (directory path, file://, mem://,
	// http(s)://). Required.
	Dataset string `json:"dataset"`
	// Output selects the sink: "uso" (default; unstitched parameter files,
	// checkpointable), "jpeg" (stitched slice series; not checkpointable, so
	// pause/park/crash restart this job from scratch) or "none" (collect and
	// discard — smoke tests).
	Output string `json:"output,omitempty"`
	// OutDir receives the output files; empty picks a per-job directory
	// under the daemon's state dir.
	OutDir string `json:"out_dir,omitempty"`

	ROI        [4]int   `json:"roi,omitempty"`            // default 16x16x3x3
	ChunkShape [4]int   `json:"chunk,omitempty"`          // default: auto
	GrayLevels int      `json:"gray,omitempty"`           // default 32
	NDim       int      `json:"ndim,omitempty"`           // default 4
	Distance   int      `json:"distance,omitempty"`       // default 1
	Features   []string `json:"features,omitempty"`       // default: the paper's four
	Impl       string   `json:"impl,omitempty"`           // hmp (default) | split
	Rep        string   `json:"rep,omitempty"`            // full (default) | full-noskip | sparse
	Policy     string   `json:"policy,omitempty"`         // demand-driven (default) | round-robin
	Texture    int      `json:"texture,omitempty"`        // texture filter copies, default 4
	KernelWkrs int      `json:"kernel_workers,omitempty"` // default 1
	ReadAhead  int      `json:"readahead,omitempty"`      // seed depth; the governor resizes it live

	FaultPolicy    string `json:"fault_policy,omitempty"` // fail-fast (default) | skip-degraded
	CacheBlocks    int    `json:"cache_blocks,omitempty"`
	CacheBlockSize int    `json:"cache_block_size,omitempty"`
	StallTimeout   string `json:"stall_timeout,omitempty"` // e.g. "2m"; empty = the daemon default
	// DeadlineMS bounds the job's total runtime in milliseconds. The
	// deadline is attached to the job's context when it is scheduled and
	// propagates through the pipeline into every backend read; an expired
	// job fails with error_kind "deadline_exceeded". 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ServeStale lets a brownout of the job's HTTP backend degrade reads
	// (served from the block cache where possible, reported as degraded
	// ROIs otherwise) instead of failing the job. Requires fault_policy
	// "skip-degraded".
	ServeStale bool `json:"serve_stale,omitempty"`
}

// validate rejects a spec the runner could not execute, without touching
// the dataset (that happens at run time and fails the job, not the submit).
func (sp *Spec) validate() error {
	if sp.Dataset == "" {
		return fmt.Errorf("spec: dataset is required")
	}
	switch sp.Output {
	case "", "uso", "jpeg", "none":
	default:
		return fmt.Errorf("spec: unknown output %q (uso, jpeg or none)", sp.Output)
	}
	if _, err := sp.impl(); err != nil {
		return err
	}
	if sp.Rep != "" {
		if _, err := core.ParseRepresentation(sp.Rep); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if sp.Policy != "" {
		if p, err := filter.ParsePolicy(sp.Policy); err != nil {
			return fmt.Errorf("spec: %w", err)
		} else if p == filter.Explicit {
			return fmt.Errorf("spec: policy must be round-robin or demand-driven")
		}
	}
	if sp.FaultPolicy != "" {
		if _, err := fault.ParsePolicy(sp.FaultPolicy); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	for _, name := range sp.Features {
		if _, err := features.Parse(name); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if sp.Texture < 0 || sp.ReadAhead < 0 || sp.KernelWkrs < 0 ||
		sp.CacheBlocks < 0 || sp.CacheBlockSize < 0 {
		return fmt.Errorf("spec: counts must not be negative")
	}
	if _, err := sp.stallTimeout(0); err != nil {
		return err
	}
	if sp.DeadlineMS < 0 {
		return fmt.Errorf("spec: deadline_ms must not be negative")
	}
	if sp.ServeStale {
		if p, err := fault.ParsePolicy(sp.FaultPolicy); err != nil || p != fault.SkipDegraded {
			return fmt.Errorf("spec: serve_stale requires fault_policy \"skip-degraded\"")
		}
	}
	return nil
}

func (sp *Spec) impl() (pipeline.Impl, error) {
	if sp.Impl == "" {
		return pipeline.HMPImpl, nil
	}
	im, err := pipeline.ParseImpl(sp.Impl)
	if err != nil {
		return 0, fmt.Errorf("spec: %w", err)
	}
	return im, nil
}

func (sp *Spec) stallTimeout(def time.Duration) (time.Duration, error) {
	if sp.StallTimeout == "" {
		return def, nil
	}
	d, err := time.ParseDuration(sp.StallTimeout)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("spec: invalid stall_timeout %q", sp.StallTimeout)
	}
	return d, nil
}

// checkpointable reports whether the job's output mode supports a durable
// progress journal (JPEG stitching holds no durable portions).
func (sp *Spec) checkpointable() bool { return sp.Output != "jpeg" }

// pipelineConfig translates the spec into the pipeline config and layout
// the graph builder consumes, mirroring the CLI's placement scheme
// (storage nodes first, then IIC, output, texture nodes).
func (sp *Spec) pipelineConfig(storageNodes int) (*pipeline.Config, *pipeline.Layout, error) {
	impl, err := sp.impl()
	if err != nil {
		return nil, nil, err
	}
	var rep core.Representation
	if sp.Rep != "" {
		rep, _ = core.ParseRepresentation(sp.Rep)
	}
	policy := filter.DemandDriven
	if sp.Policy != "" {
		policy, _ = filter.ParsePolicy(sp.Policy)
	}
	var fpol fault.Policy
	if sp.FaultPolicy != "" {
		fpol, _ = fault.ParsePolicy(sp.FaultPolicy)
	}
	var feats []features.Feature
	for _, name := range sp.Features {
		f, _ := features.Parse(name)
		feats = append(feats, f)
	}
	roi := sp.ROI
	if roi == ([4]int{}) {
		roi = [4]int{16, 16, 3, 3}
	}
	gray := sp.GrayLevels
	if gray == 0 {
		gray = 32
	}
	ndim := sp.NDim
	if ndim == 0 {
		ndim = 4
	}
	dist := sp.Distance
	if dist == 0 {
		dist = 1
	}
	kworkers := sp.KernelWkrs
	if kworkers == 0 {
		kworkers = 1
	}
	cfg := &pipeline.Config{
		Analysis: core.Config{
			ROI:            roi,
			GrayLevels:     gray,
			NDim:           ndim,
			Distance:       dist,
			Features:       feats,
			Representation: rep,
			Workers:        kworkers,
		},
		ChunkShape:  sp.ChunkShape,
		ReadAhead:   sp.ReadAhead,
		Impl:        impl,
		Policy:      policy,
		FaultPolicy: fpol,
		OutDir:      sp.OutDir,
	}
	switch sp.Output {
	case "", "uso":
		cfg.Output = pipeline.OutputUSO
	case "jpeg":
		cfg.Output = pipeline.OutputJPEG
	case "none":
		cfg.Output = pipeline.OutputCollect
		cfg.OutDir = ""
	}
	texture := sp.Texture
	if texture <= 0 {
		texture = 4
	}
	next := storageNodes
	take := func(n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = next
			next++
		}
		return ids
	}
	layout := &pipeline.Layout{IICNodes: take(1), OutputNodes: take(1)}
	tex := take(texture)
	switch impl {
	case pipeline.HMPImpl:
		layout.HMPNodes = tex
	case pipeline.SplitImpl:
		layout.HCCNodes = tex
		layout.HPCNodes = tex
	}
	return cfg, layout, nil
}

// Job is one tracked analysis. All mutable fields are guarded by the
// server's mutex; the runner only touches them through server methods.
type Job struct {
	ID    int64
	Spec  Spec
	State State
	// Err/ErrKind describe the last failure (State failed, or the abort
	// reason recorded for paused/parked).
	Err     string
	ErrKind string
	// Resume marks that the next run should reopen the job's checkpoint.
	Resume bool
	// Progress is the latest live snapshot summary while running.
	Progress metrics.Progress
	// Report is the structured run report of the last completed run.
	Report *metrics.RunReport
	// Restart summarizes what a resumed run recovered.
	Restart *pipeline.RestartSummary

	// Runtime control, set while State is running.
	cancel context.CancelFunc
	reason string // "", "cancel", "pause", "park": why cancel() was called
}

// view is the JSON shape of a job in API responses.
type view struct {
	ID       int64                    `json:"id"`
	State    State                    `json:"state"`
	Spec     Spec                     `json:"spec"`
	Error    string                   `json:"error,omitempty"`
	ErrKind  string                   `json:"error_kind,omitempty"`
	Resume   bool                     `json:"resume,omitempty"`
	Progress *metrics.Progress        `json:"progress,omitempty"`
	Report   *metrics.RunReport       `json:"report,omitempty"`
	Restart  *pipeline.RestartSummary `json:"restart,omitempty"`
}

// snapshotView renders the job for the API. Caller holds the server mutex.
func (j *Job) snapshotView() view {
	v := view{
		ID: j.ID, State: j.State, Spec: j.Spec,
		Error: j.Err, ErrKind: j.ErrKind, Resume: j.Resume,
		Report: j.Report, Restart: j.Restart,
	}
	if j.Progress != (metrics.Progress{}) {
		p := j.Progress
		v.Progress = &p
	}
	return v
}

// errKind maps a run error onto the daemon's failure taxonomy — the typed
// states the API reports instead of an opaque string (or a dead daemon).
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, filter.ErrStalled):
		return "stalled"
	case errors.Is(err, filter.ErrAllCopiesDead):
		return "all_copies_dead"
	case errors.Is(err, dataset.ErrBackendUnavailable):
		return "backend_unavailable"
	case errors.Is(err, dataset.ErrDegradedData):
		return "degraded_data"
	case errors.Is(err, checkpoint.ErrMismatch):
		return "checkpoint_mismatch"
	case errors.Is(err, checkpoint.ErrCorrupt):
		return "checkpoint_corrupt"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "error"
}

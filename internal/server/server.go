// Package server implements the haralick4d analysis daemon: an HTTP/JSON
// control plane over the filter-stream pipeline that runs many analyses
// concurrently against one shared resource budget.
//
// The control API:
//
//	POST /jobs              submit a Spec          → 202 + job, 429 when saturated
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         one job + live progress / final report
//	GET  /jobs/{id}/events  NDJSON stream of state + progress events
//	POST /jobs/{id}/cancel  abort (queued, running, paused or parked)
//	POST /jobs/{id}/pause   checkpoint and stop; resumable
//	POST /jobs/{id}/resume  re-queue a paused/parked/failed job
//	GET  /healthz           liveness ("ok" / "draining")
//	GET  /stats             scheduler + governor counters
//
// Robustness contract: every submission and state transition is appended
// to a CRC-framed job journal before the API acknowledges it, so a daemon
// killed with SIGKILL restarts with the same job table, re-admits the jobs
// that were queued, running or parked, and resumes each from its per-job
// checkpoint — producing output bit-identical to an uninterrupted run.
// SIGTERM takes the graceful path: Drain stops admissions, parks running
// jobs (cancel + checkpoint), and returns once they are journaled.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/metrics"
	"haralick4d/internal/resilience"
)

// Config parameterizes a daemon.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. "localhost:7474").
	Addr string
	// StateDir holds the job journal, per-job checkpoints and default
	// output directories. Required.
	StateDir string
	// MaxJobs bounds concurrently running jobs (default 2).
	MaxJobs int
	// MaxQueue bounds the admission queue; a submit beyond it is shed with
	// 429 + Retry-After (default 16).
	MaxQueue int
	// TotalReadAhead / TotalWorkers are the global budgets the governor
	// splits across running jobs (defaults: 64 read-ahead credits,
	// GOMAXPROCS compute slots).
	TotalReadAhead int
	TotalWorkers   int
	// JobReadAhead / JobWorkers cap any single job's share (defaults: 16,
	// GOMAXPROCS).
	JobReadAhead int
	JobWorkers   int
	// DrainTimeout bounds how long Drain waits for running jobs to park
	// (default 30s).
	DrainTimeout time.Duration
	// StallTimeout is the per-job watchdog default when a spec leaves
	// stall_timeout empty; 0 disables.
	StallTimeout time.Duration
	// ProgressInterval is the live-progress sampling cadence (default 500ms).
	ProgressInterval time.Duration
	// SyncInterval is the job journal's fsync cadence (default 1s).
	SyncInterval time.Duration
	// Resilience, when non-nil, arms circuit breakers / retry budgets /
	// hedged reads for every job's remote backend, shared per backend host
	// across jobs. A submit naming a host whose breaker is open is shed with
	// 503 + Retry-After instead of admitted into a known brownout.
	Resilience *resilience.Policy
	// Logf sinks daemon logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() error {
	if c.StateDir == "" {
		return fmt.Errorf("server: StateDir is required")
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.TotalReadAhead <= 0 {
		c.TotalReadAhead = 64
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.JobReadAhead <= 0 {
		c.JobReadAhead = 16
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return nil
}

// Server is one daemon instance.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[int64]*Job
	order    []int64 // submission order, for listing
	queue    []int64 // admitted, waiting for a run slot
	running  int
	nextID   int64
	draining bool
	closed   bool

	jour *checkpoint.Log
	gov  *governor
	hub  *hub
	res  *resilience.Registry // nil when Config.Resilience is off
	wg   sync.WaitGroup       // one per running job
}

// New opens (or creates) the daemon state under cfg.StateDir, replays the
// job journal, re-admits recovered in-flight jobs and starts as many as
// the scheduler allows. The caller serves s.Handler() and must Close.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	jour, recovered, nextID, err := openJournal(filepath.Join(cfg.StateDir, "jobs.journal"), cfg.SyncInterval)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		jobs:   map[int64]*Job{},
		nextID: nextID,
		jour:   jour,
		gov: newGovernor(budgets{
			TotalReadAhead: cfg.TotalReadAhead,
			TotalWorkers:   cfg.TotalWorkers,
			JobReadAhead:   cfg.JobReadAhead,
			JobWorkers:     cfg.JobWorkers,
		}),
		hub: newHub(),
		res: resilience.NewRegistry(cfg.Resilience),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range recovered {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		switch j.State {
		case StateRunning, StateParked:
			// In flight when the last life ended (SIGKILL, or a drain that
			// parked it): re-admit, resuming from the per-job checkpoint
			// when the output mode can honour one.
			j.State = StateQueued
			j.Resume = j.Spec.checkpointable()
			if err := appendState(s.jour, j); err != nil {
				s.cfg.Logf("server: journal: %v", err)
			}
			s.queue = append(s.queue, j.ID)
			s.cfg.Logf("server: recovered job %d (re-queued, resume=%v)", j.ID, j.Resume)
		case StateQueued:
			s.queue = append(s.queue, j.ID)
			s.cfg.Logf("server: recovered job %d (queued)", j.ID)
		}
	}
	s.scheduleLocked()
	return s, nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// ListenAndServe serves the API on cfg.Addr until ctx is canceled, then
// drains and shuts down. It logs the bound address, so Addr may use port 0.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.Logf("server: listening on http://%s", ln.Addr())
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("server: shutdown requested, draining (timeout %v)", s.cfg.DrainTimeout)
	derr := s.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	if cerr := s.closeJournal(); derr == nil {
		derr = cerr
	}
	return derr
}

// Drain stops admissions, parks every running job (cancel + checkpoint)
// and waits up to DrainTimeout for them to reach a journaled state.
// Queued jobs stay queued in the journal and restart with the next life.
func (s *Server) Drain() error {
	s.mu.Lock()
	s.draining = true
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateRunning && j.cancel != nil {
			j.reason = "park"
			j.cancel()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return s.jour.Sync()
	case <-time.After(s.cfg.DrainTimeout):
		return fmt.Errorf("server: drain timed out after %v with jobs still running", s.cfg.DrainTimeout)
	}
}

// Close drains and closes the journal. Safe to call twice.
func (s *Server) Close() error {
	err := s.Drain()
	if cerr := s.closeJournal(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) closeJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.jour.Close()
}

// ---- scheduling ----

// scheduleLocked starts queued jobs while run slots are free. Caller holds
// the mutex.
func (s *Server) scheduleLocked() {
	for !s.draining && s.running < s.cfg.MaxJobs && len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		if j == nil || j.State != StateQueued {
			continue
		}
		var ctx context.Context
		var cancel context.CancelFunc
		if j.Spec.DeadlineMS > 0 {
			// The job's wall-clock budget: the deadline context threads
			// through pipeline.RunContext into every backend read, so an
			// expired job fails with "deadline_exceeded" instead of hanging.
			ctx, cancel = context.WithTimeout(context.Background(), time.Duration(j.Spec.DeadlineMS)*time.Millisecond)
		} else {
			ctx, cancel = context.WithCancel(context.Background())
		}
		j.State = StateRunning
		j.reason = ""
		j.cancel = cancel
		j.Progress = metrics.Progress{}
		s.journalStateLocked(j)
		s.running++
		gr := s.gov.admit(j.ID)
		in := runInput{
			spec:             j.Spec,
			resume:           j.Resume,
			outDir:           s.outDir(j),
			stallTimeout:     s.cfg.StallTimeout,
			progressInterval: s.cfg.ProgressInterval,
			gate:             gr,
		}
		if j.Spec.checkpointable() {
			in.ckptPath = filepath.Join(s.cfg.StateDir, fmt.Sprintf("job-%d.ckpt", j.ID))
		}
		in.res = s.resilienceFor(j.Spec.Dataset)
		in.onProgress = func(p metrics.Progress) { s.setProgress(id, p) }
		s.wg.Add(1)
		go func() {
			defer cancel() // release the deadline timer once the run ends
			s.run(j, ctx, in)
		}()
	}
}

// outDir resolves a job's output directory.
func (s *Server) outDir(j *Job) string {
	if j.Spec.Output == "none" {
		return ""
	}
	if j.Spec.OutDir != "" {
		return j.Spec.OutDir
	}
	return filepath.Join(s.cfg.StateDir, "out", fmt.Sprintf("job-%d", j.ID))
}

// run hosts one job's runner goroutine and records its final transition.
func (s *Server) run(j *Job, ctx context.Context, in runInput) {
	defer s.wg.Done()
	res, err := runJob(ctx, in)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.gov.release(j.ID)
	j.cancel = nil
	switch {
	case err == nil:
		j.State = StateCompleted
		j.Err, j.ErrKind = "", ""
		j.Resume = false
		j.Report = res.report
		if res.restart != nil {
			j.Restart = res.restart
		}
	case j.reason == "cancel":
		j.State = StateCanceled
		j.Err, j.ErrKind = err.Error(), "canceled"
		j.Resume = false
	case j.reason == "pause":
		j.State = StatePaused
		j.Err, j.ErrKind = "", ""
		j.Resume = j.Spec.checkpointable()
	case j.reason == "park":
		j.State = StateParked
		j.Err, j.ErrKind = "", ""
		j.Resume = j.Spec.checkpointable()
	default:
		j.State = StateFailed
		j.Err, j.ErrKind = err.Error(), errKind(err)
		j.Resume = j.Spec.checkpointable()
		s.cfg.Logf("server: job %d failed (%s): %v", j.ID, j.ErrKind, err)
	}
	s.journalStateLocked(j)
	s.scheduleLocked()
}

// setProgress records a live snapshot summary and fans it out.
func (s *Server) setProgress(id int64, p metrics.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.State != StateRunning {
		return
	}
	j.Progress = p
	s.hub.publish(Event{Type: "progress", JobID: id, State: j.State, Progress: &p})
}

// journalStateLocked appends a state record and publishes the transition.
// Journal failures are logged, not fatal: the in-memory state machine stays
// authoritative for this life, and the next restart surfaces the gap.
func (s *Server) journalStateLocked(j *Job) {
	if err := appendState(s.jour, j); err != nil {
		s.cfg.Logf("server: journal: %v", err)
	}
	s.hub.publish(Event{Type: "state", JobID: j.ID, State: j.State, Error: j.Err, Kind: j.ErrKind})
}

// ---- HTTP handlers ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if err := spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if after, open := s.breakerOpenFor(spec.Dataset); open {
		// Admission shedding: the spec's backend is in a known brownout —
		// admitting the job would only burn a run slot failing fast.
		w.Header().Set("Retry-After", strconv.Itoa(after))
		httpError(w, http.StatusServiceUnavailable, "backend %s circuit open; retry in ~%ds", resilienceKey(spec.Dataset), after)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining: no new admissions")
		return
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		// Bounded-queue admission control: shed this submit instead of
		// degrading every running job.
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full (%d queued, %d running)", s.cfg.MaxQueue, s.cfg.MaxJobs)
		return
	}
	j := &Job{ID: s.nextID, Spec: spec, State: StateQueued}
	if err := appendSubmit(s.jour, j); err != nil {
		// An unjournaled job would vanish on restart; refuse it.
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queue = append(s.queue, j.ID)
	s.hub.publish(Event{Type: "state", JobID: j.ID, State: j.State})
	s.scheduleLocked()
	v := j.snapshotView()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]view, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].snapshotView())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := j.snapshotView()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State {
	case StateQueued:
		s.dequeueLocked(j.ID)
		j.State = StateCanceled
		s.journalStateLocked(j)
		writeJSONLocked(w, http.StatusOK, j.snapshotView())
	case StateRunning:
		j.reason = "cancel"
		j.cancel()
		writeJSONLocked(w, http.StatusAccepted, j.snapshotView())
	case StatePaused, StateParked:
		j.State = StateCanceled
		j.Resume = false
		s.journalStateLocked(j)
		writeJSONLocked(w, http.StatusOK, j.snapshotView())
	default:
		httpError(w, http.StatusConflict, "job %d is %s", j.ID, j.State)
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State {
	case StateQueued:
		s.dequeueLocked(j.ID)
		j.State = StatePaused
		s.journalStateLocked(j)
		writeJSONLocked(w, http.StatusOK, j.snapshotView())
	case StateRunning:
		j.reason = "pause"
		j.cancel()
		writeJSONLocked(w, http.StatusAccepted, j.snapshotView())
	default:
		httpError(w, http.StatusConflict, "job %d is %s", j.ID, j.State)
	}
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		httpError(w, http.StatusServiceUnavailable, "draining: no new admissions")
		return
	}
	switch j.State {
	case StatePaused, StateParked, StateFailed:
		j.State = StateQueued
		j.Resume = j.Spec.checkpointable()
		s.journalStateLocked(j)
		s.queue = append(s.queue, j.ID)
		s.scheduleLocked()
		writeJSONLocked(w, http.StatusAccepted, j.snapshotView())
	default:
		httpError(w, http.StatusConflict, "job %d is %s", j.ID, j.State)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)

	s.mu.Lock()
	sub := s.hub.subscribe(j.ID)
	first := Event{Type: "state", JobID: j.ID, State: j.State, Error: j.Err, Kind: j.ErrKind}
	if j.Progress != (metrics.Progress{}) {
		p := j.Progress
		first.Progress = &p
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.hub.unsubscribe(sub)
		s.mu.Unlock()
	}()

	send := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		// The stream ends at a terminal state; a cancel's final
		// transition arrives through the hub like any other.
		return !(ev.Type == "state" && ev.State.Terminal())
	}
	if !send(first) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.ch:
			if !send(ev) {
				return
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		fmt.Fprintln(w, "draining")
	} else {
		fmt.Fprintln(w, "ok")
	}
	// One line per tracked backend so a probe (or a human) sees a brownout
	// without parsing /stats JSON.
	snap := s.res.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if st := snap[k]; st.BreakerState != "" {
			fmt.Fprintf(w, "breaker %s: %s\n", k, st.BreakerState)
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type stats struct {
		Jobs       map[State]int                  `json:"jobs"`
		QueueLen   int                            `json:"queue_len"`
		Running    int                            `json:"running"`
		MaxJobs    int                            `json:"max_jobs"`
		MaxQueue   int                            `json:"max_queue"`
		Draining   bool                           `json:"draining"`
		ShareRA    int                            `json:"job_share_readahead"`
		ShareWork  int                            `json:"job_share_workers"`
		Resilience map[string]resilience.SetStats `json:"resilience,omitempty"`
	}
	st := stats{Jobs: map[State]int{}, Resilience: s.res.Snapshot()}
	s.mu.Lock()
	for _, j := range s.jobs {
		st.Jobs[j.State]++
	}
	st.QueueLen = len(s.queue)
	st.Running = s.running
	st.MaxJobs = s.cfg.MaxJobs
	st.MaxQueue = s.cfg.MaxQueue
	st.Draining = s.draining
	s.mu.Unlock()
	st.ShareRA, st.ShareWork, _ = s.gov.shares()
	writeJSON(w, http.StatusOK, st)
}

// ---- resilience plumbing ----

// resilienceKey maps a dataset URL to its shared-state registry key: the
// backend origin for remote datasets, "" (no shared state) for local paths.
func resilienceKey(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return ""
	}
	return u.Scheme + "://" + u.Host
}

// resilienceFor returns the shared resilience set every job against this
// dataset's backend host uses, or nil when resilience is off or the dataset
// is local.
func (s *Server) resilienceFor(rawurl string) *resilience.Set {
	if s.res == nil {
		return nil
	}
	key := resilienceKey(rawurl)
	if key == "" {
		return nil
	}
	return s.res.For(key)
}

// breakerOpenFor reports whether the dataset's backend breaker is currently
// open, and if so how many whole seconds remain until its next probe (at
// least 1, for a Retry-After header).
func (s *Server) breakerOpenFor(rawurl string) (afterSec int, open bool) {
	set := s.resilienceFor(rawurl)
	if set == nil || set.Breaker == nil {
		return 0, false
	}
	bs := set.Breaker.Snapshot()
	if bs.State != resilience.StateOpen || bs.ProbeIn <= 0 {
		// Closed/half-open — or open with the probe due. An elapsed-open
		// breaker reports "open" until an Allow promotes it, and the only
		// Allow callers are admitted jobs' backend reads: once nothing is
		// running against this host, shedding here would leave the breaker
		// unprobed (and the host shed) forever. Admit the submission so its
		// first read performs the half-open probe.
		return 0, false
	}
	after := int(bs.ProbeIn / time.Second)
	if after < 1 {
		after = 1
	}
	return after, true
}

// ---- small helpers ----

// lookup resolves {id}; it writes the error response itself on failure.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid job id %q", r.PathValue("id"))
		return nil, false
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return nil, false
	}
	return j, true
}

// dequeueLocked removes a job id from the admission queue.
func (s *Server) dequeueLocked(id int64) {
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSONLocked is writeJSON for call sites holding the server mutex —
// the value is already a snapshot, the name just documents the invariant.
func writeJSONLocked(w http.ResponseWriter, code int, v any) { writeJSON(w, code, v) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

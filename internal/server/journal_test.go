package server

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"haralick4d/internal/checkpoint"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jour, jobs, next, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || next != 1 {
		t.Fatalf("fresh journal: %d jobs, next %d", len(jobs), next)
	}
	j1 := &Job{ID: 1, Spec: Spec{Dataset: "mem://a"}, State: StateQueued}
	j2 := &Job{ID: 2, Spec: Spec{Dataset: "mem://b", Output: "jpeg"}, State: StateQueued}
	for _, j := range []*Job{j1, j2} {
		if err := appendSubmit(jour, j); err != nil {
			t.Fatal(err)
		}
	}
	j1.State, j1.Err, j1.ErrKind = StateFailed, "boom", "stalled"
	j1.Resume = true
	if err := appendState(jour, j1); err != nil {
		t.Fatal(err)
	}
	j2.State = StateRunning
	if err := appendState(jour, j2); err != nil {
		t.Fatal(err)
	}
	if err := jour.Close(); err != nil {
		t.Fatal(err)
	}

	jour2, jobs, next, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jour2.Close()
	if next != 3 || len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, next %d", len(jobs), next)
	}
	if jobs[0].State != StateFailed || jobs[0].Err != "boom" || jobs[0].ErrKind != "stalled" || !jobs[0].Resume {
		t.Fatalf("job 1 replayed as %+v", jobs[0])
	}
	if jobs[1].State != StateRunning || jobs[1].Spec.Output != "jpeg" {
		t.Fatalf("job 2 replayed as %+v", jobs[1])
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jour, _, _, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{ID: 1, Spec: Spec{Dataset: "mem://a"}, State: StateQueued}
	if err := appendSubmit(jour, j); err != nil {
		t.Fatal(err)
	}
	if err := jour.Close(); err != nil {
		t.Fatal(err)
	}
	// A SIGKILL mid-append leaves a torn frame; recovery must drop it and
	// keep the journal appendable.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	jour2, jobs, next, err := openJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jour2.Close()
	if len(jobs) != 1 || next != 2 {
		t.Fatalf("after torn tail: %d jobs, next %d", len(jobs), next)
	}
	j.State = StateCompleted
	if err := appendState(jour2, j); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReplayRejectsGarbage(t *testing.T) {
	// Semantically invalid records behind valid CRCs are corruption, not a
	// torn tail: state for an unknown job, duplicate submit, unknown type.
	cases := [][]record{
		{{Type: "state", ID: 7, State: StateRunning}},
		{{Type: "submit", ID: 1, Spec: &Spec{Dataset: "x"}}, {Type: "submit", ID: 1, Spec: &Spec{Dataset: "x"}}},
		{{Type: "frobnicate", ID: 1}},
		{{Type: "submit", ID: 1, Spec: &Spec{Dataset: "x"}}, {Type: "state", ID: 1, State: State("levitating")}},
	}
	for i, recs := range cases {
		var payloads [][]byte
		for _, r := range recs {
			p, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, p)
		}
		if _, _, err := replay(payloads); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

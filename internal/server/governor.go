// The resource governor: one global read-ahead and compute budget,
// partitioned across running jobs by live-resizing each job's
// readahead.Gate and autotune.Tokens. Admitting or releasing a job
// rebalances every running job's share — an even split of the global
// budget, clamped into [1, per-job quota] — so a saturated daemon degrades
// fairly instead of letting the first job keep everything, and a job that
// finishes hands its credits back to the survivors immediately. The gates
// absorb shrinks below the in-flight count by draining (outstanding work
// completes, no new credit is issued), which is exactly the contract the
// resize-contention tests in readahead/autotune pin down.
package server

import (
	"sync"

	"haralick4d/internal/autotune"
	"haralick4d/internal/readahead"
)

// budgets is the governor's configuration: global pools and per-job caps.
type budgets struct {
	TotalReadAhead int // global read-ahead credit pool
	TotalWorkers   int // global compute-admission pool
	JobReadAhead   int // per-job read-ahead quota (gate hi bound)
	JobWorkers     int // per-job compute quota (tokens hi bound)
}

// grant is one job's slice of the budgets.
type grant struct {
	gate   *readahead.Gate
	tokens *autotune.Tokens
}

type governor struct {
	mu      sync.Mutex
	cfg     budgets
	running map[int64]*grant
}

func newGovernor(cfg budgets) *governor {
	return &governor{cfg: cfg, running: map[int64]*grant{}}
}

// admit creates a job's gate and tokens at the post-admission fair share
// and shrinks everyone else to match.
func (g *governor) admit(id int64) *grant {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.running) + 1
	ra, w := g.share(n)
	gr := &grant{
		gate:   readahead.NewGate(ra, 1, g.cfg.JobReadAhead),
		tokens: autotune.NewTokens(w, 1, g.cfg.JobWorkers),
	}
	g.running[id] = gr
	g.rebalanceLocked()
	return gr
}

// release returns a job's share to the pool and grows the survivors.
func (g *governor) release(id int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.running, id)
	g.rebalanceLocked()
}

// share computes the per-job allocation with n jobs running.
func (g *governor) share(n int) (readAhead, workers int) {
	if n < 1 {
		n = 1
	}
	clamp := func(total, quota int) int {
		s := total / n
		if s < 1 {
			s = 1
		}
		if s > quota {
			s = quota
		}
		return s
	}
	return clamp(g.cfg.TotalReadAhead, g.cfg.JobReadAhead), clamp(g.cfg.TotalWorkers, g.cfg.JobWorkers)
}

func (g *governor) rebalanceLocked() {
	ra, w := g.share(len(g.running))
	for _, gr := range g.running {
		gr.gate.Resize(ra)
		gr.tokens.Resize(w)
	}
}

// shares reports the current per-job allocation and running count (the
// /stats endpoint).
func (g *governor) shares() (readAhead, workers, jobs int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ra, w := g.share(len(g.running))
	return ra, w, len(g.running)
}

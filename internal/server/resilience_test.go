package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"haralick4d/internal/resilience"
)

// TestJobDeadlineExceeded: a job with a deadline far shorter than its
// runtime fails with error_kind "deadline_exceeded", not "canceled".
func TestJobDeadlineExceeded(t *testing.T) {
	url := writeTestDataset(t)
	outDir := filepath.Join(t.TempDir(), "out")
	_, ts := newTestServer(t, Config{MaxJobs: 1})

	sp := testSpec(url, outDir)
	sp.DeadlineMS = 1
	v := decodeView(t, postJSON(t, ts.URL+"/jobs", sp))
	v = pollTerminal(t, ts.URL, v.ID, State.Terminal)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want %s (error: %s)", v.State, StateFailed, v.Error)
	}
	if v.ErrKind != "deadline_exceeded" {
		t.Fatalf("error_kind = %q, want \"deadline_exceeded\" (error: %s)", v.ErrKind, v.Error)
	}
}

// TestSubmitShedsWhileBreakerOpen: a submit naming a backend host whose
// shared breaker is open is refused with 503 + Retry-After, and the
// brownout is visible on /stats and /healthz.
func TestSubmitShedsWhileBreakerOpen(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxJobs: 1,
		Resilience: &resilience.Policy{
			Breaker: &resilience.BreakerConfig{ConsecFails: 1, OpenFor: 30 * time.Second},
		},
	})

	// Trip the host's breaker the way a running job would: one failed call.
	const backend = "http://127.0.0.1:9"
	set := s.resilienceFor(backend + "/study")
	if set == nil || set.Breaker == nil {
		t.Fatal("expected a breaker for an http dataset URL")
	}
	tok, err := set.Breaker.Allow()
	if err != nil {
		t.Fatal(err)
	}
	set.Breaker.Record(tok, errors.New("connection refused"))
	if st := set.Breaker.State(); st != resilience.StateOpen {
		t.Fatalf("breaker state = %s, want open", st)
	}

	resp := postJSON(t, ts.URL+"/jobs", testSpec(backend+"/study", t.TempDir()))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}

	// A different (local) dataset is unaffected by that host's breaker.
	url := writeTestDataset(t)
	ok := decodeView(t, postJSON(t, ts.URL+"/jobs", testSpec(url, filepath.Join(t.TempDir(), "out"))))
	v := pollTerminal(t, ts.URL, ok.ID, State.Terminal)
	if v.State != StateCompleted {
		t.Fatalf("local job state = %s, want completed (error: %s)", v.State, v.Error)
	}

	// /stats carries the per-host resilience snapshot.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Resilience map[string]resilience.SetStats `json:"resilience"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := st.Resilience[backend]; got.BreakerState != resilience.StateOpen || got.BreakerTrips != 1 {
		t.Fatalf("stats resilience[%s] = %+v, want open with 1 trip", backend, got)
	}

	// /healthz names the browned-out backend.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, "ok") || !strings.Contains(body, fmt.Sprintf("breaker %s: open", backend)) {
		t.Fatalf("healthz = %q, want ok + breaker line", body)
	}
}

// TestSubmitAdmitsWhenProbeDue: once an open breaker's OpenFor has elapsed,
// submissions against that host are admitted again so the first job's reads
// perform the half-open probe. The only Allow callers are running jobs'
// backend reads, so shedding past that point would leave a host with no
// in-flight jobs unprobed — and shed — forever (regression test for
// permanent admission shedding after a brownout).
func TestSubmitAdmitsWhenProbeDue(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	s, _ := newTestServer(t, Config{
		MaxJobs: 1,
		Resilience: &resilience.Policy{
			Breaker: &resilience.BreakerConfig{ConsecFails: 1, OpenFor: 30 * time.Second, Clock: clock},
		},
	})

	const dsURL = "http://127.0.0.1:9/study"
	set := s.resilienceFor(dsURL)
	tok, err := set.Breaker.Allow()
	if err != nil {
		t.Fatal(err)
	}
	set.Breaker.Record(tok, errors.New("connection refused"))

	if after, open := s.breakerOpenFor(dsURL); !open || after < 1 {
		t.Fatalf("breakerOpenFor within OpenFor = (%d, %v), want shedding with positive Retry-After", after, open)
	}

	mu.Lock()
	now = now.Add(30 * time.Second)
	mu.Unlock()
	if after, open := s.breakerOpenFor(dsURL); open {
		t.Fatalf("breakerOpenFor after OpenFor elapsed = (%d, open), want admitted so the next job probes", after)
	}
}

// TestSpecResilienceValidation: deadline_ms and serve_stale are validated
// at submit time.
func TestSpecResilienceValidation(t *testing.T) {
	url := writeTestDataset(t)
	_, ts := newTestServer(t, Config{})

	bad := testSpec(url, t.TempDir())
	bad.DeadlineMS = -5
	resp := postJSON(t, ts.URL+"/jobs", bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms: status = %d, want 400", resp.StatusCode)
	}

	stale := testSpec(url, t.TempDir())
	stale.ServeStale = true // without fault_policy skip-degraded
	resp = postJSON(t, ts.URL+"/jobs", stale)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("serve_stale without skip-degraded: status = %d, want 400", resp.StatusCode)
	}

	good := testSpec(url, t.TempDir())
	good.ServeStale = true
	good.FaultPolicy = "skip-degraded"
	resp = postJSON(t, ts.URL+"/jobs", good)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("serve_stale with skip-degraded: status = %d, want 202", resp.StatusCode)
	}
}

package server

import (
	"sync"
	"testing"
)

func TestGovernorFairShares(t *testing.T) {
	g := newGovernor(budgets{TotalReadAhead: 12, TotalWorkers: 8, JobReadAhead: 8, JobWorkers: 6})

	g1 := g.admit(1)
	// Alone: the whole pool, clamped to the per-job quota.
	if d := g1.gate.Depth(); d != 8 {
		t.Fatalf("solo read-ahead share %d, want quota-capped 8", d)
	}
	if l := g1.tokens.Limit(); l != 6 {
		t.Fatalf("solo worker share %d, want quota-capped 6", l)
	}

	g2 := g.admit(2)
	// Two jobs: even split, and the first job was shrunk live.
	for i, gr := range []*grant{g1, g2} {
		if d := gr.gate.Depth(); d != 6 {
			t.Fatalf("job %d read-ahead share %d, want 12/2=6", i+1, d)
		}
		if l := gr.tokens.Limit(); l != 4 {
			t.Fatalf("job %d worker share %d, want 8/2=4", i+1, l)
		}
	}

	g3 := g.admit(3)
	if d := g3.gate.Depth(); d != 4 {
		t.Fatalf("three-way read-ahead share %d, want 4", d)
	}

	// Releases hand credits back to survivors immediately.
	g.release(2)
	g.release(3)
	if d := g1.gate.Depth(); d != 8 {
		t.Fatalf("after releases, read-ahead share %d, want 8", d)
	}
	if l := g1.tokens.Limit(); l != 6 {
		t.Fatalf("after releases, worker share %d, want 6", l)
	}
}

func TestGovernorShareNeverBelowOne(t *testing.T) {
	g := newGovernor(budgets{TotalReadAhead: 2, TotalWorkers: 1, JobReadAhead: 4, JobWorkers: 4})
	var grants []*grant
	for id := int64(1); id <= 5; id++ {
		grants = append(grants, g.admit(id))
	}
	// Five jobs over a budget of 1-2: everyone keeps the floor of one
	// credit (a zero share would wedge a pipeline forever).
	for i, gr := range grants {
		if d := gr.gate.Depth(); d < 1 {
			t.Fatalf("job %d read-ahead share %d", i+1, d)
		}
		if l := gr.tokens.Limit(); l < 1 {
			t.Fatalf("job %d worker share %d", i+1, l)
		}
	}
}

func TestGovernorConcurrentAdmitRelease(t *testing.T) {
	g := newGovernor(budgets{TotalReadAhead: 16, TotalWorkers: 8, JobReadAhead: 8, JobWorkers: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				id := base*1000 + i
				g.admit(id)
				g.release(id)
			}
		}(int64(w))
	}
	wg.Wait()
	ra, wk, n := g.shares()
	if n != 0 {
		t.Fatalf("%d grants leaked", n)
	}
	if ra != 8 || wk != 8 {
		t.Fatalf("post-churn shares %d/%d, want quota caps 8/8", ra, wk)
	}
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// testDims and testSpec pin the small-but-parallel configuration every
// daemon test runs: multiple storage nodes, multiple texture copies, a
// few dozen chunks.
var testDims = [4]int{24, 20, 4, 6}

func testVolume() *volume.Volume {
	return synthetic.Generate(synthetic.Config{Dims: testDims, Seed: 17, NumTumors: 2, NumVessels: 1, NoiseSigma: 0.01})
}

// writeTestDataset writes the fixture study to disk and returns its URL.
func writeTestDataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data")
	if _, err := dataset.Write(dir, testVolume(), 3); err != nil {
		t.Fatal(err)
	}
	return dir
}

func testSpec(url, outDir string) Spec {
	return Spec{
		Dataset:    url,
		Output:     "uso",
		OutDir:     outDir,
		ROI:        [4]int{5, 5, 2, 2},
		ChunkShape: [4]int{12, 12, 3, 4},
		GrayLevels: 16,
		Texture:    2,
	}
}

// oracleGrids runs the same analysis in-process (collect output) — the
// reference the daemon's USO files must match bit-for-bit.
func oracleGrids(t *testing.T, url string) (map[features.Feature]*volume.FloatGrid, [4]int) {
	t.Helper()
	st, err := dataset.OpenURL(context.Background(), url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sp := testSpec(url, "")
	cfg, layout, err := sp.pipelineConfig(st.Meta.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Output = pipeline.OutputCollect
	cfg.OutDir = ""
	g, sink, outDims, err := pipeline.Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(g, pipeline.EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	if err := sink.Complete(cfg.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	grids := map[features.Feature]*volume.FloatGrid{}
	for _, f := range cfg.Analysis.Features {
		grids[f] = sink.Grid(f)
	}
	return grids, outDims
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = filepath.Join(t.TempDir(), "state")
	}
	if cfg.ProgressInterval == 0 {
		cfg.ProgressInterval = 20 * time.Millisecond
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) view {
	t.Helper()
	defer resp.Body.Close()
	var v view
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollTerminal polls GET /jobs/{id} until the job reaches a terminal or
// otherwise-settled state.
func pollTerminal(t *testing.T, base string, id int64, settled func(State) bool) view {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, resp)
		if settled(v.State) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %d did not settle in time", id)
	return view{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	url := writeTestDataset(t)
	outDir := filepath.Join(t.TempDir(), "out")
	_, ts := newTestServer(t, Config{MaxJobs: 2})

	v := decodeView(t, postJSON(t, ts.URL+"/jobs", testSpec(url, outDir)))
	if v.ID != 1 || v.State == "" {
		t.Fatalf("submit returned %+v", v)
	}
	final := pollTerminal(t, ts.URL, v.ID, State.Terminal)
	if final.State != StateCompleted {
		t.Fatalf("job finished %s (%s: %s)", final.State, final.ErrKind, final.Error)
	}
	if final.Report == nil {
		t.Fatal("completed job carries no run report")
	}

	want, outDims := oracleGrids(t, url)
	got, err := filters.ReadUSODir(outDir, outDims)
	if err != nil {
		t.Fatal(err)
	}
	for f, wg := range want {
		gg := got[f]
		if gg == nil {
			t.Fatalf("feature %v missing from USO output", f)
		}
		if len(gg.Data) != len(wg.Data) {
			t.Fatalf("feature %v: %d values, want %d", f, len(gg.Data), len(wg.Data))
		}
		for i := range wg.Data {
			if gg.Data[i] != wg.Data[i] {
				t.Fatalf("feature %v voxel %d: %v != %v (daemon output not bit-identical)", f, i, gg.Data[i], wg.Data[i])
			}
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/jobs", Spec{}) // no dataset
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty spec: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs", Spec{Dataset: "x", Output: "tiff"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad output: status %d, want 400", resp.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", r2.StatusCode)
	}
}

// hangingDataset serves a dataset over HTTP but blocks every request until
// release is closed — a deterministic way to keep a job in-flight.
func hangingDataset(t *testing.T, release <-chan struct{}) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data")
	if _, err := dataset.Write(dir, testVolume(), 3); err != nil {
		t.Fatal(err)
	}
	fs := http.FileServer(http.Dir(dir))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
			fs.ServeHTTP(w, r)
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestSaturationSheds429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	url := hangingDataset(t, release)
	_, ts := newTestServer(t, Config{MaxJobs: 1, MaxQueue: 1})

	spec := testSpec(url, filepath.Join(t.TempDir(), "out"))
	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", spec)) // running (hung)
	v2 := decodeView(t, postJSON(t, ts.URL+"/jobs", spec)) // queued
	resp := postJSON(t, ts.URL+"/jobs", spec)              // shed
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Shedding must not disturb the admitted jobs.
	for _, id := range []int64{v1.ID, v2.ID} {
		r, err := http.Post(fmt.Sprintf("%s/jobs/%d/cancel", ts.URL, id), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	for _, id := range []int64{v1.ID, v2.ID} {
		final := pollTerminal(t, ts.URL, id, State.Terminal)
		if final.State != StateCanceled {
			t.Fatalf("job %d finished %s, want canceled", id, final.State)
		}
	}
}

func TestDrainParksRunningJobs(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	url := hangingDataset(t, release)
	s, ts := newTestServer(t, Config{MaxJobs: 1, DrainTimeout: 30 * time.Second})

	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", testSpec(url, filepath.Join(t.TempDir(), "out"))))
	// Wait until it is actually running before draining.
	pollTerminal(t, ts.URL, v1.ID, func(st State) bool { return st == StateRunning })
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	final := pollTerminal(t, ts.URL, v1.ID, func(st State) bool { return st == StateParked })
	if !final.Resume {
		t.Fatal("parked job not marked resumable")
	}
	// Drained daemon: liveness reports draining, admissions are refused.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzBody bytes.Buffer
	hzBody.ReadFrom(hz.Body)
	hz.Body.Close()
	if !strings.Contains(hzBody.String(), "draining") {
		t.Fatalf("healthz says %q, want draining", hzBody.String())
	}
	resp := postJSON(t, ts.URL+"/jobs", testSpec(url, ""))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestPauseResumeRoundTrip(t *testing.T) {
	release := make(chan struct{})
	url := hangingDataset(t, release)
	_, ts := newTestServer(t, Config{MaxJobs: 1})

	outDir := filepath.Join(t.TempDir(), "out")
	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", testSpec(url, outDir)))
	pollTerminal(t, ts.URL, v1.ID, func(st State) bool { return st == StateRunning })
	r, err := http.Post(fmt.Sprintf("%s/jobs/%d/pause", ts.URL, v1.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	paused := pollTerminal(t, ts.URL, v1.ID, func(st State) bool { return st == StatePaused })
	if !paused.Resume {
		t.Fatal("paused job not marked resumable")
	}

	close(release) // let the dataset answer this time
	r, err = http.Post(fmt.Sprintf("%s/jobs/%d/resume", ts.URL, v1.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	final := pollTerminal(t, ts.URL, v1.ID, State.Terminal)
	if final.State != StateCompleted {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
	}
}

func TestRecoveryRequeuesInFlightJobs(t *testing.T) {
	url := writeTestDataset(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	outDir := filepath.Join(t.TempDir(), "out")

	// Forge the journal a SIGKILLed daemon would leave behind: one job
	// submitted and last seen running, one parked by an earlier drain, one
	// paused by a client, one already completed.
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	jour, jobs, next, err := openJournal(filepath.Join(stateDir, "jobs.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || next != 1 {
		t.Fatalf("fresh journal replayed %d jobs, next %d", len(jobs), next)
	}
	mk := func(id int64, st State) {
		j := &Job{ID: id, Spec: testSpec(url, filepath.Join(outDir, fmt.Sprint(id))), State: st}
		if err := appendSubmit(jour, j); err != nil {
			t.Fatal(err)
		}
		if st != StateQueued {
			if err := appendState(jour, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk(1, StateRunning)
	mk(2, StateParked)
	mk(3, StatePaused)
	mk(4, StateCompleted)
	if err := jour.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{StateDir: stateDir, MaxJobs: 2})
	// 1 and 2 were in flight: re-admitted and run to completion.
	for _, id := range []int64{1, 2} {
		final := pollTerminal(t, ts.URL, id, State.Terminal)
		if final.State != StateCompleted {
			t.Fatalf("recovered job %d finished %s (%s)", id, final.State, final.Error)
		}
	}
	// 3 asked to be paused; 4 is history. Neither runs again.
	for id, want := range map[int64]State{3: StatePaused, 4: StateCompleted} {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		if v := decodeView(t, resp); v.State != want {
			t.Fatalf("recovered job %d is %s, want %s", id, v.State, want)
		}
	}
	// The recovered-and-rerun output still matches the oracle.
	want, outDims := oracleGrids(t, url)
	got, err := filters.ReadUSODir(filepath.Join(outDir, "1"), outDims)
	if err != nil {
		t.Fatal(err)
	}
	for f, wg := range want {
		gg := got[f]
		if gg == nil {
			t.Fatalf("feature %v missing after recovery", f)
		}
		for i := range wg.Data {
			if gg.Data[i] != wg.Data[i] {
				t.Fatalf("feature %v voxel %d differs after recovery", f, i)
			}
		}
	}
}

func TestEventsStream(t *testing.T) {
	url := writeTestDataset(t)
	_, ts := newTestServer(t, Config{MaxJobs: 1})

	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", testSpec(url, filepath.Join(t.TempDir(), "out"))))
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/events", ts.URL, v1.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var events []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateCompleted {
		t.Fatalf("stream ended with %+v, want completed state", last)
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 3, MaxQueue: 7})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		MaxJobs  int  `json:"max_jobs"`
		MaxQueue int  `json:"max_queue"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MaxJobs != 3 || st.MaxQueue != 7 || st.Draining {
		t.Fatalf("stats %+v", st)
	}
}

// TestSpecDefaults pins the spec→pipeline translation against the CLI's
// documented defaults.
func TestSpecDefaults(t *testing.T) {
	sp := Spec{Dataset: "x"}
	cfg, layout, err := sp.pipelineConfig(3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Analysis.ROI != ([4]int{16, 16, 3, 3}) || cfg.Analysis.GrayLevels != 32 {
		t.Fatalf("defaults: ROI %v G %d", cfg.Analysis.ROI, cfg.Analysis.GrayLevels)
	}
	if cfg.Output != pipeline.OutputUSO {
		t.Fatalf("default output %v, want USO", cfg.Output)
	}
	if cfg.Policy != filter.DemandDriven || cfg.Impl != pipeline.HMPImpl {
		t.Fatalf("defaults: policy %v impl %v", cfg.Policy, cfg.Impl)
	}
	if len(layout.HMPNodes) != 4 {
		t.Fatalf("default texture copies %d, want 4", len(layout.HMPNodes))
	}
	if _, _, err := (&Spec{Dataset: "x", Rep: "sparse"}).pipelineConfig(1); err != nil {
		t.Fatal(err)
	}
	if (&Spec{Dataset: "x"}).checkpointable() != true {
		t.Fatal("uso default must be checkpointable")
	}
	if (&Spec{Dataset: "x", Output: "jpeg"}).checkpointable() {
		t.Fatal("jpeg must not be checkpointable")
	}
	var rep core.Representation
	if rep != core.FullMatrix {
		t.Fatal("zero representation is not full matrix")
	}
}

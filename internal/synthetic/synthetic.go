// Package synthetic generates DCE-MRI phantom studies — the stand-in for
// the paper's clinical dynamic contrast-enhanced breast MRI dataset (32 time
// steps of 32-slice volumes, 2-byte pixels).
//
// During a DCE-MRI study a contrast agent is injected; tumors take up the
// agent quickly (they are highly vascularized) and wash it out as waste,
// while normal tissue enhances slowly and weakly. The phantom reproduces the
// parts of that physiology that texture analysis actually sees:
//
//   - a spatially smooth anatomical baseline (sum of random Gaussian blobs),
//     giving the near-diagonal co-occurrence structure of real MRI (~1%
//     non-zero GLCM entries at G=32);
//   - one or more tumor lesions with gamma-variate uptake/washout curves;
//   - vessels with fast, sharp enhancement;
//   - additive Gaussian acquisition noise (the high-SNR limit of Rician
//     noise).
//
// Generation is fully deterministic for a given Config.
package synthetic

import (
	"math"
	"math/rand"

	"haralick4d/internal/volume"
)

// Config parameterizes a phantom study.
type Config struct {
	Dims       [4]int  // X, Y, Z, T
	Seed       int64   // RNG seed; same seed → identical study
	NumBlobs   int     // anatomical structures (default 24)
	NumTumors  int     // enhancing lesions (default 2)
	NumVessels int     // fast-enhancing vessels (default 3)
	Baseline   float64 // mean tissue intensity (default 400)
	NoiseSigma float64 // acquisition noise std dev (default 8)
}

func (c *Config) defaults() {
	if c.NumBlobs == 0 {
		c.NumBlobs = 24
	}
	if c.NumTumors == 0 {
		c.NumTumors = 2
	}
	if c.NumVessels == 0 {
		c.NumVessels = 3
	}
	if c.Baseline == 0 {
		c.Baseline = 400
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 8
	}
}

// blob is an anisotropic 3D Gaussian intensity structure.
type blob struct {
	cx, cy, cz float64
	rx, ry, rz float64
	amp        float64
}

func (b blob) at(x, y, z float64) float64 {
	dx := (x - b.cx) / b.rx
	dy := (y - b.cy) / b.ry
	dz := (z - b.cz) / b.rz
	return b.amp * math.Exp(-(dx*dx+dy*dy+dz*dz)/2)
}

// gammaVariate is the standard contrast-bolus curve, normalized so the peak
// value is 1 at time tp after onset t0: g(t) = (τ/tp)^α · exp(α(1 − τ/tp)).
func gammaVariate(t, t0, tp, alpha float64) float64 {
	tau := t - t0
	if tau <= 0 {
		return 0
	}
	r := tau / tp
	return math.Pow(r, alpha) * math.Exp(alpha*(1-r))
}

// Truth is the phantom's ground truth: the 3D tumor enhancement field
// (X·Y·Z, x fastest), used to label texture features for classifier
// training and evaluation.
type Truth struct {
	Dims        [4]int
	TumorWeight []float64
}

// At returns the tumor enhancement amplitude at the 3D position.
func (t *Truth) At(x, y, z int) float64 {
	return t.TumorWeight[(z*t.Dims[1]+y)*t.Dims[0]+x]
}

// MeanIn returns the mean tumor weight over a 3D box (half-open bounds),
// the label statistic for an ROI.
func (t *Truth) MeanIn(lo, hi [3]int) float64 {
	sum, n := 0.0, 0
	for z := lo[2]; z < hi[2]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			for x := lo[0]; x < hi[0]; x++ {
				sum += t.At(x, y, z)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Generate builds the phantom study.
func Generate(cfg Config) *volume.Volume {
	v, _ := GenerateWithTruth(cfg)
	return v
}

// GenerateWithTruth builds the phantom study and returns the tumor ground
// truth alongside it.
func GenerateWithTruth(cfg Config) (*volume.Volume, *Truth) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	X, Y, Z, T := cfg.Dims[0], cfg.Dims[1], cfg.Dims[2], cfg.Dims[3]
	v := volume.NewVolume(cfg.Dims)

	fx, fy, fz := float64(X), float64(Y), float64(Z)
	randBlob := func(minR, maxR, minAmp, maxAmp float64) blob {
		return blob{
			cx:  rng.Float64() * fx,
			cy:  rng.Float64() * fy,
			cz:  rng.Float64() * fz,
			rx:  minR + rng.Float64()*(maxR-minR),
			ry:  minR + rng.Float64()*(maxR-minR),
			rz:  math.Max(1, (minR+rng.Float64()*(maxR-minR))*fz/fx),
			amp: minAmp + rng.Float64()*(maxAmp-minAmp),
		}
	}

	anatomy := make([]blob, cfg.NumBlobs)
	for i := range anatomy {
		anatomy[i] = randBlob(fx/16, fx/4, -0.35*cfg.Baseline, 0.6*cfg.Baseline)
	}
	tumors := make([]blob, cfg.NumTumors)
	tumorT0 := make([]float64, cfg.NumTumors)
	tumorTp := make([]float64, cfg.NumTumors)
	for i := range tumors {
		tumors[i] = randBlob(fx/24, fx/10, 0.9*cfg.Baseline, 1.6*cfg.Baseline)
		tumorT0[i] = 2 + rng.Float64()*2
		tumorTp[i] = 5 + rng.Float64()*4
	}
	vessels := make([]blob, cfg.NumVessels)
	for i := range vessels {
		vessels[i] = randBlob(fx/48, fx/20, 1.2*cfg.Baseline, 2.2*cfg.Baseline)
	}

	// Spatial fields are computed once per 3D position; the time dimension
	// only modulates the enhancing compartments.
	nxyz := X * Y * Z
	base := make([]float64, nxyz)
	tumorW := make([]float64, nxyz)
	vesselW := make([]float64, nxyz)
	tumorIdx := make([]int, nxyz) // dominant tumor per voxel, for its curve
	i := 0
	for z := 0; z < Z; z++ {
		for y := 0; y < Y; y++ {
			for x := 0; x < X; x++ {
				px, py, pz := float64(x), float64(y), float64(z)
				b := cfg.Baseline
				for _, bl := range anatomy {
					b += bl.at(px, py, pz)
				}
				base[i] = math.Max(40, b)
				best, bestW := 0, 0.0
				for k, bl := range tumors {
					w := bl.at(px, py, pz)
					tumorW[i] += w
					if w > bestW {
						best, bestW = k, w
					}
				}
				tumorIdx[i] = best
				for _, bl := range vessels {
					vesselW[i] += bl.at(px, py, pz)
				}
				i++
			}
		}
	}

	// Per-time-step compartment curves. Normal tissue enhances weakly and
	// slowly; vessels enhance immediately and wash out fast.
	for t := 0; t < T; t++ {
		ft := float64(t)
		tissue := 0.12 * gammaVariate(ft, 2, 14, 1.2)
		vessel := gammaVariate(ft, 1.0, 2.5, 2.5)
		tumorCurves := make([]float64, cfg.NumTumors)
		for k := range tumorCurves {
			tumorCurves[k] = gammaVariate(ft, tumorT0[k], tumorTp[k], 2.0)
		}
		out := v.Data[t*nxyz : (t+1)*nxyz]
		for j := 0; j < nxyz; j++ {
			val := base[j]*(1+tissue) + tumorW[j]*tumorCurves[tumorIdx[j]] + vesselW[j]*vessel
			val += rng.NormFloat64() * cfg.NoiseSigma
			if val < 0 {
				val = 0
			}
			if val > 65535 {
				val = 65535
			}
			out[j] = uint16(val)
		}
	}
	return v, &Truth{Dims: cfg.Dims, TumorWeight: tumorW}
}

// GenerateGrid is a convenience for tests and examples: generate a phantom
// and requantize it to g gray levels in one step.
func GenerateGrid(cfg Config, g int) *volume.Grid {
	return volume.Requantize(Generate(cfg), g)
}

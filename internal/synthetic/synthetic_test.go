package synthetic

import (
	"math"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/volume"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Dims: [4]int{16, 16, 4, 6}, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed produced different data at %d", i)
		}
	}
	c := Generate(Config{Dims: cfg.Dims, Seed: 8})
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateDims(t *testing.T) {
	dims := [4]int{20, 18, 5, 7}
	v := Generate(Config{Dims: dims, Seed: 1})
	if v.Dims != dims {
		t.Fatalf("dims = %v", v.Dims)
	}
	if len(v.Data) != volume.NumVoxels(dims) {
		t.Fatalf("data length %d", len(v.Data))
	}
}

// The contrast-enhancement physiology: the mean intensity of the brightest
// region (tumor core) must rise after injection and then decline (washout),
// and the study must not be temporally constant.
func TestEnhancementDynamics(t *testing.T) {
	dims := [4]int{32, 32, 6, 20}
	v := Generate(Config{Dims: dims, Seed: 3, NoiseSigma: 1})
	nxyz := dims[0] * dims[1] * dims[2]

	means := make([]float64, dims[3])
	for t0 := 0; t0 < dims[3]; t0++ {
		sum := 0.0
		for j := 0; j < nxyz; j++ {
			sum += float64(v.Data[t0*nxyz+j])
		}
		means[t0] = sum / float64(nxyz)
	}
	first, peak, last := means[0], 0.0, means[dims[3]-1]
	peakAt := 0
	for i, m := range means {
		if m > peak {
			peak, peakAt = m, i
		}
	}
	if peak <= first*1.005 {
		t.Errorf("no enhancement: first %.1f, peak %.1f", first, peak)
	}
	if peakAt == 0 || peakAt == dims[3]-1 {
		t.Errorf("peak at boundary time step %d", peakAt)
	}
	if last >= peak {
		t.Error("no washout after peak")
	}
}

// The requantized phantom must produce sparse, near-diagonal co-occurrence
// matrices like real MRI: the paper reports ~1% non-zero entries at G=32.
func TestPhantomGLCMSparsity(t *testing.T) {
	g := GenerateGrid(Config{Dims: [4]int{48, 48, 8, 8}, Seed: 5}, 32)
	cfg := &core.Config{ROI: [4]int{16, 16, 3, 3}, GrayLevels: 32, Representation: core.SparseMatrix}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sample a sub-box of ROI origins rather than the full raster scan: the
	// sparsity statistic stabilizes after a few hundred ROIs.
	region := &volume.Region{Box: volume.BoxAt([4]int{}, g.Dims), Data: g.Data}
	origins := volume.BoxAt([4]int{4, 4, 1, 1}, [4]int{8, 8, 3, 3})
	var st core.Stats
	if _, err := core.AnalyzeRegion(region, origins, cfg, &st); err != nil {
		t.Fatal(err)
	}
	mean := st.MeanEntries()
	density := mean / float64(32*32)
	if density > 0.08 {
		t.Errorf("phantom GLCMs too dense: %.1f entries (%.2f%%)", mean, 100*density)
	}
	if mean < 2 {
		t.Errorf("phantom GLCMs suspiciously empty: %.2f entries", mean)
	}
}

func TestValueRange(t *testing.T) {
	v := Generate(Config{Dims: [4]int{24, 24, 4, 8}, Seed: 9})
	lo, hi := v.MinMax()
	if hi == 0 {
		t.Fatal("all-zero study")
	}
	if lo == hi {
		t.Fatal("constant study")
	}
	mean := 0.0
	for _, x := range v.Data {
		mean += float64(x)
	}
	mean /= float64(len(v.Data))
	if mean < 100 || mean > 5000 {
		t.Errorf("implausible mean intensity %.1f", mean)
	}
}

func TestGammaVariate(t *testing.T) {
	// Zero before onset, peak of 1 at t0+tp, lower after.
	if gammaVariate(1.0, 2.0, 5.0, 2.0) != 0 {
		t.Error("non-zero before onset")
	}
	peak := gammaVariate(7.0, 2.0, 5.0, 2.0)
	if math.Abs(peak-1) > 1e-12 {
		t.Errorf("peak = %v, want 1", peak)
	}
	if gammaVariate(20.0, 2.0, 5.0, 2.0) >= peak {
		t.Error("no washout")
	}
	if gammaVariate(4.0, 2.0, 5.0, 2.0) >= peak {
		t.Error("rise exceeds peak")
	}
}

package netdesc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
)

const sampleXML = `
<pipeline>
  <analysis roi="16x16x3x3" gray="32" ndim="4" distance="1"
            rep="sparse" features="asm,correlation"/>
  <chunk shape="64x64x8x8" iochunk="256x256" packets="4"/>
  <impl>split</impl>
  <policy>demand-driven</policy>
  <output mode="jpeg" dir="maps"/>
  <layout>
    <source nodes="0 1 2 3"/>
    <iic    nodes="4"/>
    <hcc    nodes="5 6 7"/>
    <hpc    nodes="5 6 7"/>
    <out    nodes="8"/>
  </layout>
</pipeline>`

func TestParseAndBuild(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	cfg, layout, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Analysis.ROI != [4]int{16, 16, 3, 3} || cfg.Analysis.GrayLevels != 32 {
		t.Errorf("analysis = %+v", cfg.Analysis)
	}
	if cfg.Analysis.Representation != core.SparseMatrix {
		t.Error("representation not parsed")
	}
	if len(cfg.Analysis.Features) != 2 || cfg.Analysis.Features[0] != features.ASM {
		t.Errorf("features = %v", cfg.Analysis.Features)
	}
	if cfg.ChunkShape != [4]int{64, 64, 8, 8} || cfg.IOChunk != [2]int{256, 256} || cfg.PacketsPerChunk != 4 {
		t.Errorf("chunk = %v %v %d", cfg.ChunkShape, cfg.IOChunk, cfg.PacketsPerChunk)
	}
	if cfg.Impl != pipeline.SplitImpl || cfg.Policy != filter.DemandDriven {
		t.Error("impl/policy not parsed")
	}
	if cfg.Output != pipeline.OutputJPEG || cfg.OutDir != "maps" {
		t.Error("output not parsed")
	}
	if len(layout.SourceNodes) != 4 || layout.SourceNodes[3] != 3 {
		t.Errorf("source nodes = %v", layout.SourceNodes)
	}
	if len(layout.HCCNodes) != 3 || layout.HCCNodes[2] != 7 {
		t.Errorf("hcc nodes = %v", layout.HCCNodes)
	}
	if layout.HMPNodes != nil {
		t.Error("absent hmp placement should be nil")
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.xml")
	if err := os.WriteFile(path, []byte(sampleXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`<pipeline><analysis roi="bogus"/></pipeline>`,
		`<pipeline><analysis rep="nope"/></pipeline>`,
		`<pipeline><analysis features="nope"/></pipeline>`,
		`<pipeline><chunk iochunk="weird"/></pipeline>`,
		`<pipeline><impl>nope</impl></pipeline>`,
		`<pipeline><policy>nope</policy></pipeline>`,
		`<pipeline><output mode="nope"/></pipeline>`,
		`<pipeline><layout><iic nodes="x"/></layout></pipeline>`,
	}
	for i, src := range cases {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			continue // malformed XML also counts as rejection
		}
		if _, _, err := d.Build(); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
	if _, err := Parse(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage XML accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	cfg, layout, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Marshal(cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(string(out)))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	cfg2, layout2, err := d2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Analysis.ROI != cfg.Analysis.ROI || cfg2.Impl != cfg.Impl ||
		cfg2.Policy != cfg.Policy || cfg2.Output != cfg.Output ||
		cfg2.ChunkShape != cfg.ChunkShape || cfg2.IOChunk != cfg.IOChunk {
		t.Errorf("round trip changed config:\n%+v\n%+v", cfg, cfg2)
	}
	if len(layout2.HCCNodes) != len(layout.HCCNodes) {
		t.Error("round trip changed layout")
	}
}

func TestDefaultsAreZeroValues(t *testing.T) {
	d, err := Parse(strings.NewReader(`<pipeline/>`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, layout, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Impl != pipeline.HMPImpl || cfg.Policy != filter.RoundRobin || cfg.Output != pipeline.OutputCollect {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if layout.SourceNodes != nil {
		t.Error("empty layout should stay nil")
	}
}

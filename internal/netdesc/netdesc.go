// Package netdesc parses XML pipeline descriptions — the paper expresses
// its filter networks "as an XML document" (§4.3, after Hastings et al.).
// A document describes one end-to-end Haralick pipeline: the analysis
// parameters, the chunk geometry, the implementation and scheduling
// choices, the output stage and the placement of every filter's copies.
//
// Example:
//
//	<pipeline>
//	  <analysis roi="16x16x3x3" gray="32" ndim="4" distance="1"
//	            rep="sparse" features="asm,correlation,variance,idm"/>
//	  <chunk shape="64x64x8x8" iochunk="256x256" packets="4"/>
//	  <impl>split</impl>
//	  <policy>demand-driven</policy>
//	  <output mode="jpeg" dir="maps"/>
//	  <layout>
//	    <source nodes="0 1 2 3"/>
//	    <iic    nodes="4"/>
//	    <hcc    nodes="5 6 7"/>
//	    <hpc    nodes="5 6 7"/>
//	    <out    nodes="8"/>
//	  </layout>
//	</pipeline>
package netdesc

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
)

// Document is the XML representation of one pipeline.
type Document struct {
	XMLName  xml.Name    `xml:"pipeline"`
	Analysis AnalysisXML `xml:"analysis"`
	Chunk    ChunkXML    `xml:"chunk"`
	Impl     string      `xml:"impl"`
	Policy   string      `xml:"policy"`
	Output   OutputXML   `xml:"output"`
	Layout   LayoutXML   `xml:"layout"`
}

// AnalysisXML holds the texture-analysis parameters.
type AnalysisXML struct {
	ROI      string `xml:"roi,attr"`
	Gray     int    `xml:"gray,attr"`
	NDim     int    `xml:"ndim,attr"`
	Distance int    `xml:"distance,attr"`
	Rep      string `xml:"rep,attr"`
	Features string `xml:"features,attr"`
}

// ChunkXML holds the chunk geometry.
type ChunkXML struct {
	Shape   string `xml:"shape,attr"`
	IOChunk string `xml:"iochunk,attr"`
	Packets int    `xml:"packets,attr"`
}

// OutputXML holds the output stage selection.
type OutputXML struct {
	Mode string `xml:"mode,attr"`
	Dir  string `xml:"dir,attr"`
}

// LayoutXML assigns filter copies to nodes; each element's nodes attribute
// is a space-separated node-id list whose length is the copy count.
type LayoutXML struct {
	Source NodesXML `xml:"source"`
	IIC    NodesXML `xml:"iic"`
	HMP    NodesXML `xml:"hmp"`
	HCC    NodesXML `xml:"hcc"`
	HPC    NodesXML `xml:"hpc"`
	Out    NodesXML `xml:"out"`
	JIW    NodesXML `xml:"jiw"`
}

// NodesXML is one placement list.
type NodesXML struct {
	Nodes string `xml:"nodes,attr"`
}

// Parse reads a pipeline document.
func Parse(r io.Reader) (*Document, error) {
	var d Document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("netdesc: %w", err)
	}
	return &d, nil
}

// ParseFile reads a pipeline document from a file.
func ParseFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netdesc: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

func parseShape4(s string) ([4]int, error) {
	var d [4]int
	if s == "" {
		return d, nil
	}
	if _, err := fmt.Sscanf(s, "%dx%dx%dx%d", &d[0], &d[1], &d[2], &d[3]); err != nil {
		return d, fmt.Errorf("netdesc: invalid shape %q (want XxYxZxT)", s)
	}
	return d, nil
}

func parseNodes(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make([]int, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("netdesc: invalid node id %q", f)
		}
		out[i] = n
	}
	return out, nil
}

// Build converts the document into a pipeline configuration and layout.
func (d *Document) Build() (*pipeline.Config, *pipeline.Layout, error) {
	cfg := &pipeline.Config{}
	roi, err := parseShape4(d.Analysis.ROI)
	if err != nil {
		return nil, nil, err
	}
	cfg.Analysis = core.Config{
		ROI:        roi,
		GrayLevels: d.Analysis.Gray,
		NDim:       d.Analysis.NDim,
		Distance:   d.Analysis.Distance,
	}
	if d.Analysis.Rep != "" {
		rep, err := core.ParseRepresentation(d.Analysis.Rep)
		if err != nil {
			return nil, nil, fmt.Errorf("netdesc: %w", err)
		}
		cfg.Analysis.Representation = rep
	}
	if d.Analysis.Features != "" {
		for _, name := range strings.Split(d.Analysis.Features, ",") {
			f, err := features.Parse(name)
			if err != nil {
				return nil, nil, fmt.Errorf("netdesc: %w", err)
			}
			cfg.Analysis.Features = append(cfg.Analysis.Features, f)
		}
	}
	if cfg.ChunkShape, err = parseShape4(d.Chunk.Shape); err != nil {
		return nil, nil, err
	}
	if d.Chunk.IOChunk != "" {
		if _, err := fmt.Sscanf(d.Chunk.IOChunk, "%dx%d", &cfg.IOChunk[0], &cfg.IOChunk[1]); err != nil {
			return nil, nil, fmt.Errorf("netdesc: invalid iochunk %q (want XxY)", d.Chunk.IOChunk)
		}
	}
	cfg.PacketsPerChunk = d.Chunk.Packets
	if d.Impl != "" {
		if cfg.Impl, err = pipeline.ParseImpl(strings.TrimSpace(d.Impl)); err != nil {
			return nil, nil, fmt.Errorf("netdesc: %w", err)
		}
	}
	if d.Policy != "" {
		if cfg.Policy, err = filter.ParsePolicy(strings.TrimSpace(d.Policy)); err != nil {
			return nil, nil, fmt.Errorf("netdesc: %w", err)
		}
	}
	switch d.Output.Mode {
	case "", "collect":
		cfg.Output = pipeline.OutputCollect
	case "uso":
		cfg.Output = pipeline.OutputUSO
	case "jpeg":
		cfg.Output = pipeline.OutputJPEG
	default:
		return nil, nil, fmt.Errorf("netdesc: unknown output mode %q", d.Output.Mode)
	}
	cfg.OutDir = d.Output.Dir

	layout := &pipeline.Layout{}
	assign := []struct {
		dst *[]int
		src NodesXML
	}{
		{&layout.SourceNodes, d.Layout.Source},
		{&layout.IICNodes, d.Layout.IIC},
		{&layout.HMPNodes, d.Layout.HMP},
		{&layout.HCCNodes, d.Layout.HCC},
		{&layout.HPCNodes, d.Layout.HPC},
		{&layout.OutputNodes, d.Layout.Out},
		{&layout.JIWNodes, d.Layout.JIW},
	}
	for _, a := range assign {
		nodes, err := parseNodes(a.src.Nodes)
		if err != nil {
			return nil, nil, err
		}
		*a.dst = nodes
	}
	return cfg, layout, nil
}

// Marshal renders a configuration back to the XML form (layout lists are
// written only when non-nil), so a tuned setup can be saved and replayed.
func Marshal(cfg *pipeline.Config, layout *pipeline.Layout) ([]byte, error) {
	shape := func(d [4]int) string {
		if d == ([4]int{}) {
			return ""
		}
		return fmt.Sprintf("%dx%dx%dx%d", d[0], d[1], d[2], d[3])
	}
	nodes := func(ns []int) string {
		parts := make([]string, len(ns))
		for i, n := range ns {
			parts[i] = strconv.Itoa(n)
		}
		return strings.Join(parts, " ")
	}
	featNames := make([]string, len(cfg.Analysis.Features))
	for i, f := range cfg.Analysis.Features {
		featNames[i] = f.String()
	}
	mode := map[pipeline.OutputMode]string{
		pipeline.OutputCollect: "collect",
		pipeline.OutputUSO:     "uso",
		pipeline.OutputJPEG:    "jpeg",
	}[cfg.Output]
	d := Document{
		Analysis: AnalysisXML{
			ROI:      shape(cfg.Analysis.ROI),
			Gray:     cfg.Analysis.GrayLevels,
			NDim:     cfg.Analysis.NDim,
			Distance: cfg.Analysis.Distance,
			Rep:      cfg.Analysis.Representation.String(),
			Features: strings.Join(featNames, ","),
		},
		Chunk: ChunkXML{
			Shape:   shape(cfg.ChunkShape),
			Packets: cfg.PacketsPerChunk,
		},
		Impl:   cfg.Impl.String(),
		Policy: cfg.Policy.String(),
		Output: OutputXML{Mode: mode, Dir: cfg.OutDir},
	}
	if cfg.IOChunk != ([2]int{}) {
		d.Chunk.IOChunk = fmt.Sprintf("%dx%d", cfg.IOChunk[0], cfg.IOChunk[1])
	}
	if layout != nil {
		d.Layout = LayoutXML{
			Source: NodesXML{nodes(layout.SourceNodes)},
			IIC:    NodesXML{nodes(layout.IICNodes)},
			HMP:    NodesXML{nodes(layout.HMPNodes)},
			HCC:    NodesXML{nodes(layout.HCCNodes)},
			HPC:    NodesXML{nodes(layout.HPCNodes)},
			Out:    NodesXML{nodes(layout.OutputNodes)},
			JIW:    NodesXML{nodes(layout.JIWNodes)},
		}
	}
	out, err := xml.MarshalIndent(&d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("netdesc: %w", err)
	}
	return append(out, '\n'), nil
}

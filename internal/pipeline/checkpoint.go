package pipeline

import (
	"fmt"
	"time"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/volume"
)

// RestartSummary reports what a resumed run recovered from its journal and
// how much of the work it can therefore skip.
type RestartSummary struct {
	Portions       int   // verified portion records recovered
	Voxels         int   // output voxels those portions cover, summed over features
	SkippedChunks  int   // texture chunks whose outputs are fully durable
	TotalChunks    int   // chunks in the whole run
	TruncatedBytes int64 // torn-tail bytes discarded on journal reopen
}

// String renders the summary as the one-line restart report the CLIs print.
func (s *RestartSummary) String() string {
	return fmt.Sprintf("resumed: %d portions (%d voxels) recovered, %d/%d chunks skipped, %d torn bytes discarded",
		s.Portions, s.Voxels, s.SkippedChunks, s.TotalChunks, s.TruncatedBytes)
}

// PrepareCheckpoint opens (resume=false) or reopens (resume=true) the
// progress journal at path and attaches it to cfg: it validates cfg against
// datasetDims, derives the run fingerprint that guards the journal against
// configuration drift, and on resume loads and verifies the prior run's
// records, leaving cfg.Journal and cfg.Recovered set so the graph builders
// prune completed chunks and pre-seed the sink. The caller owns the returned
// journal and must Close it after the run.
func PrepareCheckpoint(datasetDims [4]int, cfg *Config, path string, resume bool, syncInterval time.Duration) (*checkpoint.Journal, *RestartSummary, error) {
	if cfg.Journal != nil || cfg.Recovered != nil {
		return nil, nil, fmt.Errorf("pipeline: config already carries a journal")
	}
	if cfg.Output == OutputJPEG {
		return nil, nil, fmt.Errorf("pipeline: checkpointing requires OutputCollect or OutputUSO (JPEG stitching holds no durable portions)")
	}
	if err := cfg.Validate(datasetDims); err != nil {
		return nil, nil, err
	}
	chunker, err := volume.NewChunker(datasetDims, cfg.ChunkShape, cfg.Analysis.ROI)
	if err != nil {
		return nil, nil, err
	}
	feats := make([]int, len(cfg.Analysis.Features))
	for i, f := range cfg.Analysis.Features {
		feats[i] = int(f)
	}
	hdr := checkpoint.Header{
		Dims:           datasetDims,
		ROI:            cfg.Analysis.ROI,
		ChunkShape:     cfg.ChunkShape,
		OutDims:        chunker.OutputDims(),
		GrayLevels:     cfg.Analysis.GrayLevels,
		NDim:           cfg.Analysis.NDim,
		Distance:       cfg.Analysis.Distance,
		Representation: int(cfg.Analysis.Representation),
		Features:       feats,
	}
	sum := &RestartSummary{TotalChunks: chunker.Count()}
	if !resume {
		j, err := checkpoint.Create(path, hdr, syncInterval)
		if err != nil {
			return nil, nil, err
		}
		cfg.Journal = j
		return j, sum, nil
	}
	j, st, err := checkpoint.Resume(path, hdr, syncInterval)
	if err != nil {
		return nil, nil, err
	}
	skip, err := checkpoint.CompleteChunks(st, chunker, feats)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	cfg.Journal = j
	cfg.Recovered = st
	sum.Portions = len(st.Portions)
	sum.Voxels = st.RecoveredVoxels()
	sum.SkippedChunks = len(skip)
	sum.TruncatedBytes = st.TruncatedBytes
	return j, sum, nil
}

// Package pipeline composes the paper's filters into its two end-to-end
// instantiations — the combined HMP implementation (Fig. 5) and the split
// HCC+HPC implementation (Fig. 4) — over disk-resident or in-memory
// datasets, with configurable placement, copy counts, buffer scheduling
// policy and output mode, and runs them on any of the three engines.
package pipeline

import (
	"context"
	"fmt"
	"net"
	"time"

	"haralick4d/internal/autotune"
	"haralick4d/internal/checkpoint"
	"haralick4d/internal/cluster"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/metrics"
	"haralick4d/internal/readahead"
	"haralick4d/internal/volume"
)

// Impl selects the texture-filter decomposition.
type Impl int

const (
	// HMPImpl performs co-occurrence matrix computation and parameter
	// calculation inside a single filter.
	HMPImpl Impl = iota
	// SplitImpl task-distributes the two operations among pipelined HCC and
	// HPC filters.
	SplitImpl
)

// String returns the implementation's flag name.
func (i Impl) String() string {
	switch i {
	case HMPImpl:
		return "hmp"
	case SplitImpl:
		return "split"
	}
	return fmt.Sprintf("impl(%d)", int(i))
}

// ParseImpl is the inverse of String.
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "hmp":
		return HMPImpl, nil
	case "split":
		return SplitImpl, nil
	}
	return 0, fmt.Errorf("pipeline: unknown implementation %q", s)
}

// OutputMode selects the output filter set.
type OutputMode int

const (
	// OutputCollect assembles results in memory (library use, tests).
	OutputCollect OutputMode = iota
	// OutputUSO streams unstitched parameter values to disk.
	OutputUSO
	// OutputJPEG stitches full 4D parameter datasets and writes JPEG slice
	// series (HIC + JIW).
	OutputJPEG
)

// Layout assigns filter copies to nodes. The length of each slice is the
// copy count of that filter. A nil slice defaults to one copy on node 0
// (RFR defaults to one copy per storage node, all on node 0).
type Layout struct {
	SourceNodes []int // RFR copies (must equal the dataset's storage nodes) or GridSource copies
	IICNodes    []int // explicit IIC copies
	HMPNodes    []int // texture copies for HMPImpl
	HCCNodes    []int // split implementation
	HPCNodes    []int
	OutputNodes []int // USO/Collector copies, or HIC copies for OutputJPEG
	JIWNodes    []int // JPEG writers; defaults to OutputNodes
}

// Config carries everything the graph builder needs besides placement.
type Config struct {
	Analysis        core.Config
	ChunkShape      [4]int // IIC-to-TEXTURE chunk voxel shape
	IOChunk         [2]int // RFR read window; zero reads whole slices
	ReadAhead       int    // reader I/O windows fetched ahead of the emit loop; 0 = synchronous
	PacketsPerChunk int    // HCC matrix packets per chunk (default 4)
	Impl            Impl
	Policy          filter.Policy // buffer scheduling into texture (and HPC) copies
	Output          OutputMode
	OutDir          string // for OutputUSO / OutputJPEG
	// FaultPolicy selects how the readers handle degraded slices (checksum
	// mismatch, truncation, missing file): fault.FailFast (zero value)
	// aborts the run, fault.SkipDegraded completes the healthy remainder and
	// reports what was skipped.
	FaultPolicy fault.Policy
	// Journal, when set, receives a durable record of every parameter
	// portion the sink persists, making the run resumable after a crash.
	// Usually opened by PrepareCheckpoint. OutputCollect and OutputUSO only.
	Journal *checkpoint.Journal
	// Recovered is the verified state loaded from an earlier run's journal;
	// chunks it proves complete are skipped from the readers onward, and the
	// sink is pre-seeded with the recovered portions.
	Recovered *checkpoint.State
	// AutoTune, when set, registers the graph's live knobs with this
	// controller as the graph is built: the readers share a resizable
	// prefetch gate (seeded from ReadAhead) and multi-copy texture filters
	// share a resizable admission semaphore. Pass the same controller in
	// RunOptions.AutoTune so the engines drive its feedback loop; tuning
	// changes scheduling only, so outputs match the untuned run
	// bit-for-bit.
	AutoTune *autotune.Controller
	// ReadAheadGate, when set, is the resizable prefetch bound the readers
	// share instead of a fixed ReadAhead depth — the injection point for an
	// external resource governor (the serve daemon partitions one global
	// read-ahead budget across jobs through these). Mutually exclusive with
	// AutoTune, which builds its own gate.
	ReadAheadGate *readahead.Gate
	// Admission, when set, is the resizable compute-admission semaphore the
	// texture filters share — the governor's counterpart to ReadAheadGate.
	// Mutually exclusive with AutoTune.
	Admission *autotune.Tokens
}

// Validate normalizes the config and reports the first problem.
func (c *Config) Validate(datasetDims [4]int) error {
	if err := c.Analysis.Validate(); err != nil {
		return err
	}
	if err := c.Analysis.CheckRegion(datasetDims); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if c.PacketsPerChunk < 0 {
		return fmt.Errorf("pipeline: PacketsPerChunk %d must be >= 0 (0 selects the default)", c.PacketsPerChunk)
	}
	if c.ChunkShape == ([4]int{}) {
		c.ChunkShape = defaultChunkShape(datasetDims, c.Analysis.ROI)
	}
	if c.Impl < HMPImpl || c.Impl > SplitImpl {
		return fmt.Errorf("pipeline: invalid implementation %d", int(c.Impl))
	}
	if c.Policy == filter.Explicit {
		return fmt.Errorf("pipeline: texture distribution policy must be round-robin or demand-driven")
	}
	if c.Output != OutputCollect && c.OutDir == "" {
		return fmt.Errorf("pipeline: disk output modes need OutDir")
	}
	if (c.Journal != nil || c.Recovered != nil) && c.Output == OutputJPEG {
		// HIC stitches whole feature volumes in memory before JIW writes a
		// pixel, so no durable portion record exists to journal against.
		return fmt.Errorf("pipeline: checkpointing requires OutputCollect or OutputUSO (JPEG stitching holds no durable portions)")
	}
	if c.Recovered != nil && c.Journal == nil {
		return fmt.Errorf("pipeline: Recovered state set without a Journal to continue")
	}
	if c.AutoTune != nil && (c.ReadAheadGate != nil || c.Admission != nil) {
		return fmt.Errorf("pipeline: AutoTune and an injected gate/admission would fight over the same knobs (set one)")
	}
	return nil
}

// resumeSkip converts the recovered journal state into the set of texture
// chunks whose outputs are already durable; readers prune them at the
// cheapest level they can (whole I/O windows, whole slices, per-chunk
// pieces).
func (c *Config) resumeSkip(chunker *volume.Chunker) (map[int]bool, error) {
	if c.Recovered == nil {
		return nil, nil
	}
	feats := make([]int, len(c.Analysis.Features))
	for i, f := range c.Analysis.Features {
		feats[i] = int(f)
	}
	return checkpoint.CompleteChunks(c.Recovered, chunker, feats)
}

// Autotune knob ranges: prefetch depth may climb to maxReadAheadDepth
// windows per reader set; admission never drops below one token (a
// zero-token limit would wedge the texture filters).
const maxReadAheadDepth = 32

// readAheadGate returns the resizable prefetch bound the readers share: the
// injected governor gate when one is set, otherwise a gate registered with
// the autotune controller, otherwise nil (fixed ReadAhead depth). An
// autotune gate starts at the configured static depth (at least 1 — a gated
// reader is always asynchronous) and may be resized across
// [1, maxReadAheadDepth] mid-run.
func (c *Config) readAheadGate() *readahead.Gate {
	if c.ReadAheadGate != nil {
		return c.ReadAheadGate
	}
	if c.AutoTune == nil {
		return nil
	}
	start := c.ReadAhead
	if start < 1 {
		start = 1
	}
	return c.AutoTune.EnableReadAhead(start, 1, maxReadAheadDepth)
}

// admission returns the compute-admission semaphore for copies compute
// slots: the injected governor semaphore when one is set, otherwise one
// registered with the autotune controller, otherwise nil (no admission
// throttle; with one slot there is nothing to shed).
func (c *Config) admission(copies int) *autotune.Tokens {
	if c.Admission != nil {
		return c.Admission
	}
	if c.AutoTune == nil || copies <= 1 {
		return nil
	}
	return c.AutoTune.EnableAdmission(copies, 1, copies)
}

// defaultChunkShape picks a chunk covering the full x–y extent and a
// moderate z–t block — a paper-like middle ground between overlap overhead
// and distribution balance.
func defaultChunkShape(dims, roi [4]int) [4]int {
	var cs [4]int
	cs[0], cs[1] = dims[0], dims[1]
	for k := 2; k < 4; k++ {
		cs[k] = roi[k] + 3
		if cs[k] > dims[k] {
			cs[k] = dims[k]
		}
	}
	return cs
}

func nodesOrDefault(nodes []int, copies int) []int {
	if nodes != nil {
		return nodes
	}
	return make([]int, copies)
}

// Build constructs the filter graph over a disk-resident dataset. It
// returns the graph, the in-memory results sink (nil unless OutputCollect)
// and the output dimensions.
func Build(store *dataset.Store, cfg *Config, layout *Layout) (*filter.Graph, *filters.Results, [4]int, error) {
	var outDims [4]int
	if layout == nil {
		layout = &Layout{}
	}
	if err := cfg.Validate(store.Meta.Dims); err != nil {
		return nil, nil, outDims, err
	}
	srcNodes := nodesOrDefault(layout.SourceNodes, store.Meta.Nodes)
	if len(srcNodes) != store.Meta.Nodes {
		return nil, nil, outDims, fmt.Errorf("pipeline: %d RFR copies for %d storage nodes", len(srcNodes), store.Meta.Nodes)
	}
	chunker, err := volume.NewChunker(store.Meta.Dims, cfg.ChunkShape, cfg.Analysis.ROI)
	if err != nil {
		return nil, nil, outDims, err
	}
	outDims = chunker.OutputDims()
	skip, err := cfg.resumeSkip(chunker)
	if err != nil {
		return nil, nil, outDims, err
	}

	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{
		Name:   "RFR",
		Copies: len(srcNodes),
		New: filters.NewRFR(filters.RFRConfig{
			Store:         store,
			Chunker:       chunker,
			GrayLevels:    cfg.Analysis.GrayLevels,
			IOChunk:       cfg.IOChunk,
			ReadAhead:     cfg.ReadAhead,
			ReadAheadGate: cfg.readAheadGate(),
			FaultPolicy:   cfg.FaultPolicy,
			Skip:          skip,
		}),
		Nodes: srcNodes,
	})
	iicNodes := nodesOrDefault(layout.IICNodes, 1)
	g.AddFilter(filter.FilterSpec{
		Name:   "IIC",
		Copies: len(iicNodes),
		New:    filters.NewIIC(filters.IICConfig{Chunker: chunker}),
		Nodes:  iicNodes,
	})
	g.Connect(filter.ConnSpec{From: "RFR", FromPort: filters.PortOut, To: "IIC", ToPort: filters.PortIn, Policy: filter.Explicit})

	res, err := addTextureAndOutput(g, "IIC", cfg, layout, outDims)
	if err != nil {
		return nil, nil, outDims, err
	}
	return g, res, outDims, nil
}

// BuildDICOM constructs the filter graph over a DICOM study directory (see
// internal/dicom): identical to Build except that the input stage is the
// DICOMFileReader filter, the paper's named RFR replacement. The study's
// window center/width supplies the requantization range.
func BuildDICOM(study *dicom.Study, cfg *Config, layout *Layout) (*filter.Graph, *filters.Results, [4]int, error) {
	var outDims [4]int
	if layout == nil {
		layout = &Layout{}
	}
	if err := cfg.Validate(study.Dims); err != nil {
		return nil, nil, outDims, err
	}
	srcNodes := nodesOrDefault(layout.SourceNodes, study.Nodes)
	if len(srcNodes) != study.Nodes {
		return nil, nil, outDims, fmt.Errorf("pipeline: %d DFR copies for %d storage nodes", len(srcNodes), study.Nodes)
	}
	chunker, err := volume.NewChunker(study.Dims, cfg.ChunkShape, cfg.Analysis.ROI)
	if err != nil {
		return nil, nil, outDims, err
	}
	outDims = chunker.OutputDims()
	skip, err := cfg.resumeSkip(chunker)
	if err != nil {
		return nil, nil, outDims, err
	}

	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{
		Name:   "DFR",
		Copies: len(srcNodes),
		New: filters.NewDFR(filters.DFRConfig{
			Study:         study,
			Chunker:       chunker,
			GrayLevels:    cfg.Analysis.GrayLevels,
			ReadAhead:     cfg.ReadAhead,
			ReadAheadGate: cfg.readAheadGate(),
			FaultPolicy:   cfg.FaultPolicy,
			Skip:          skip,
		}),
		Nodes: srcNodes,
	})
	iicNodes := nodesOrDefault(layout.IICNodes, 1)
	g.AddFilter(filter.FilterSpec{
		Name:   "IIC",
		Copies: len(iicNodes),
		New:    filters.NewIIC(filters.IICConfig{Chunker: chunker}),
		Nodes:  iicNodes,
	})
	g.Connect(filter.ConnSpec{From: "DFR", FromPort: filters.PortOut, To: "IIC", ToPort: filters.PortIn, Policy: filter.Explicit})

	res, err := addTextureAndOutput(g, "IIC", cfg, layout, outDims)
	if err != nil {
		return nil, nil, outDims, err
	}
	return g, res, outDims, nil
}

// BuildMem constructs the graph over an in-memory grid (no RFR/IIC stage;
// a GridSource emits complete chunks).
func BuildMem(grid *volume.Grid, cfg *Config, layout *Layout) (*filter.Graph, *filters.Results, [4]int, error) {
	var outDims [4]int
	if layout == nil {
		layout = &Layout{}
	}
	if err := cfg.Validate(grid.Dims); err != nil {
		return nil, nil, outDims, err
	}
	if grid.G != cfg.Analysis.GrayLevels {
		return nil, nil, outDims, fmt.Errorf("pipeline: grid has %d gray levels, config %d", grid.G, cfg.Analysis.GrayLevels)
	}
	chunker, err := volume.NewChunker(grid.Dims, cfg.ChunkShape, cfg.Analysis.ROI)
	if err != nil {
		return nil, nil, outDims, err
	}
	outDims = chunker.OutputDims()
	skip, err := cfg.resumeSkip(chunker)
	if err != nil {
		return nil, nil, outDims, err
	}

	srcNodes := nodesOrDefault(layout.SourceNodes, 1)
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{
		Name:   "SRC",
		Copies: len(srcNodes),
		New:    filters.NewGridSource(filters.GridSourceConfig{Grid: grid, Chunker: chunker, Skip: skip}),
		Nodes:  srcNodes,
	})
	res, err := addTextureAndOutput(g, "SRC", cfg, layout, outDims)
	if err != nil {
		return nil, nil, outDims, err
	}
	return g, res, outDims, nil
}

// addTextureAndOutput wires the texture-analysis and output filter sets
// behind the chunk producer named src.
func addTextureAndOutput(g *filter.Graph, src string, cfg *Config, layout *Layout, outDims [4]int) (*filters.Results, error) {
	tcfg := filters.TextureConfig{
		Analysis:        cfg.Analysis,
		PacketsPerChunk: cfg.PacketsPerChunk,
		RouteByFeature:  cfg.Output == OutputJPEG,
	}
	var paramProducer string
	switch cfg.Impl {
	case HMPImpl:
		nodes := nodesOrDefault(layout.HMPNodes, 1)
		tcfg.Admission = cfg.admission(len(nodes))
		g.AddFilter(filter.FilterSpec{Name: "HMP", Copies: len(nodes), New: filters.NewHMP(tcfg), Nodes: nodes})
		g.Connect(filter.ConnSpec{From: src, FromPort: filters.PortOut, To: "HMP", ToPort: filters.PortIn, Policy: cfg.Policy})
		paramProducer = "HMP"
	case SplitImpl:
		hccNodes := nodesOrDefault(layout.HCCNodes, 1)
		hpcNodes := nodesOrDefault(layout.HPCNodes, 1)
		// One admission pool across both halves: its limit is the total
		// compute concurrency of the split stage.
		tcfg.Admission = cfg.admission(len(hccNodes) + len(hpcNodes))
		g.AddFilter(filter.FilterSpec{Name: "HCC", Copies: len(hccNodes), New: filters.NewHCC(tcfg), Nodes: hccNodes})
		g.AddFilter(filter.FilterSpec{Name: "HPC", Copies: len(hpcNodes), New: filters.NewHPC(tcfg), Nodes: hpcNodes})
		g.Connect(filter.ConnSpec{From: src, FromPort: filters.PortOut, To: "HCC", ToPort: filters.PortIn, Policy: cfg.Policy})
		g.Connect(filter.ConnSpec{From: "HCC", FromPort: filters.PortOut, To: "HPC", ToPort: filters.PortIn, Policy: cfg.Policy})
		paramProducer = "HPC"
	}

	outNodes := nodesOrDefault(layout.OutputNodes, 1)
	switch cfg.Output {
	case OutputCollect:
		res := filters.NewResults(outDims)
		if cfg.Recovered != nil {
			if err := res.Restore(cfg.Recovered); err != nil {
				return nil, err
			}
		}
		if cfg.Journal != nil {
			// Attached after Restore so recovered portions are not
			// re-journaled.
			res.SetJournal(cfg.Journal)
		}
		g.AddFilter(filter.FilterSpec{Name: "OUT", Copies: len(outNodes), New: filters.NewCollector(res), Nodes: outNodes})
		g.Connect(filter.ConnSpec{From: paramProducer, FromPort: filters.PortOut, To: "OUT", ToPort: filters.PortIn, Policy: filter.RoundRobin})
		return res, nil
	case OutputUSO:
		ucfg := filters.USOConfig{Dir: cfg.OutDir, Journal: cfg.Journal}
		if cfg.Recovered != nil {
			ucfg.Recovered = cfg.Recovered.Portions
		}
		g.AddFilter(filter.FilterSpec{Name: "USO", Copies: len(outNodes), New: filters.NewUSO(ucfg), Nodes: outNodes})
		g.Connect(filter.ConnSpec{From: paramProducer, FromPort: filters.PortOut, To: "USO", ToPort: filters.PortIn, Policy: filter.RoundRobin})
		return nil, nil
	case OutputJPEG:
		g.AddFilter(filter.FilterSpec{Name: "HIC", Copies: len(outNodes), New: filters.NewHIC(filters.HICConfig{OutDims: outDims}), Nodes: outNodes})
		g.Connect(filter.ConnSpec{From: paramProducer, FromPort: filters.PortOut, To: "HIC", ToPort: filters.PortIn, Policy: filter.Explicit})
		jiwNodes := layout.JIWNodes
		if jiwNodes == nil {
			jiwNodes = outNodes
		}
		g.AddFilter(filter.FilterSpec{Name: "JIW", Copies: len(jiwNodes), New: filters.NewJIW(filters.JIWConfig{Dir: cfg.OutDir}), Nodes: jiwNodes})
		g.Connect(filter.ConnSpec{From: "HIC", FromPort: filters.PortOut, To: "JIW", ToPort: filters.PortIn, Policy: filter.RoundRobin})
		return nil, nil
	}
	return nil, fmt.Errorf("pipeline: invalid output mode %d", int(cfg.Output))
}

// Engine selects the execution engine.
type Engine int

const (
	// EngineLocal runs every copy as a goroutine with in-memory streams.
	EngineLocal Engine = iota
	// EngineTCP runs goroutines with real loopback TCP between nodes.
	EngineTCP
	// EngineSim runs on the simulated cluster in virtual time.
	EngineSim
)

// String returns the engine's flag name.
func (e Engine) String() string {
	switch e {
	case EngineLocal:
		return "local"
	case EngineTCP:
		return "tcp"
	case EngineSim:
		return "sim"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine is the inverse of String.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "local":
		return EngineLocal, nil
	case "tcp":
		return EngineTCP, nil
	case "sim":
		return EngineSim, nil
	}
	return 0, fmt.Errorf("pipeline: unknown engine %q", s)
}

// RunOptions tunes an engine run.
type RunOptions struct {
	QueueDepth   int
	Topology     *cluster.Topology // EngineSim only; defaults to a uniform cluster
	ComputeScale float64           // EngineSim only
	// DisableMetrics turns off the observability layer for the run;
	// RunStats.Report stays nil.
	DisableMetrics bool
	// WireCodec selects the serialization for buffers crossing nodes on the
	// TCP engine; the zero value keeps the original gob streams.
	WireCodec filter.Codec
	// Failover lets surviving copies of transparently-routed filters take
	// over the un-acked buffers of a crashed copy (local and TCP engines;
	// the simulated cluster models fault-free hardware and ignores it).
	Failover bool
	// Retry enables bounded reconnect-and-retransmit on the TCP engine's
	// node links; nil or MaxAttempts <= 1 keeps single-shot sends.
	Retry *filter.RetryPolicy
	// WrapConn, when non-nil, wraps every outbound TCP node link — the fault
	// injection hook (see internal/fault.FlakyConn). TCP engine only.
	WrapConn func(c net.Conn, fromNode, toNode int) net.Conn
	// StallTimeout arms the filter runtime's stall watchdog (local and TCP
	// engines): if no copy anywhere makes progress for this long the run
	// fails with a filter.StallError naming the wedged copies. 0 disables.
	// The simulated cluster runs in virtual time and ignores it.
	StallTimeout time.Duration
	// AutoTune drives this controller's feedback loop from the engine's
	// live snapshots (local and TCP engines; the simulated cluster runs in
	// virtual time and ignores it). Use the controller already registered
	// with Config.AutoTune at build time; a controller with no registered
	// knobs observes but never tunes. Requires metrics.
	AutoTune *autotune.Controller
	// Monitor, when non-nil, runs alongside the engine for the life of the
	// run with a live metrics probe — the export point for progress
	// reporting (the serve daemon streams job snapshots through it). It is
	// called on its own goroutine and must return when stop closes.
	// Requires metrics; composes with AutoTune.
	Monitor func(stop <-chan struct{}, p filter.Probe)
}

// monitor merges the caller's Monitor hook with the autotune feedback loop
// into the filter runtime's single Monitor slot.
func (o *RunOptions) monitor() func(stop <-chan struct{}, p filter.Probe) {
	ctrl, user := o.AutoTune, o.Monitor
	switch {
	case ctrl == nil && user == nil:
		return nil
	case ctrl == nil:
		return user
	case user == nil:
		return func(stop <-chan struct{}, p filter.Probe) { ctrl.Run(stop, p.Snapshot) }
	}
	return func(stop <-chan struct{}, p filter.Probe) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			user(stop, p)
		}()
		ctrl.Run(stop, p.Snapshot)
		<-done
	}
}

// Run executes a built graph on the selected engine.
func Run(g *filter.Graph, engine Engine, opts *RunOptions) (*filter.RunStats, error) {
	return RunContext(context.Background(), g, engine, opts)
}

// RunContext is Run under a context: cancellation aborts the run promptly on
// every engine and surfaces ctx's error.
func RunContext(ctx context.Context, g *filter.Graph, engine Engine, opts *RunOptions) (*filter.RunStats, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	switch engine {
	case EngineLocal:
		return filter.RunLocalContext(ctx, g, &filter.Options{
			QueueDepth: opts.QueueDepth, DisableMetrics: opts.DisableMetrics, Failover: opts.Failover,
			StallTimeout: opts.StallTimeout, Monitor: opts.monitor(),
		})
	case EngineTCP:
		return filter.RunTCPContext(ctx, g, &filter.Options{
			QueueDepth: opts.QueueDepth, DisableMetrics: opts.DisableMetrics, WireCodec: opts.WireCodec,
			Failover: opts.Failover, Retry: opts.Retry, WrapConn: opts.WrapConn,
			StallTimeout: opts.StallTimeout, Monitor: opts.monitor(),
		})
	case EngineSim:
		topo := opts.Topology
		if topo == nil {
			topo = cluster.Uniform(g.NumNodes(), 1, cluster.LANLatency, cluster.FastEthernetMBps)
		}
		return cluster.RunContext(ctx, g, topo, &cluster.Options{
			QueueDepth: opts.QueueDepth, ComputeScale: opts.ComputeScale, DisableMetrics: opts.DisableMetrics,
		})
	}
	return nil, fmt.Errorf("pipeline: invalid engine %d", int(engine))
}

// AttachBackendStats folds the store's backend I/O and cache counters into
// the run report's backends table. Call it after the run completes; a nil
// report (metrics disabled) or nil store is a no-op. Counters are cumulative
// over the store's lifetime, so use a fresh store per run for per-run
// numbers.
func AttachBackendStats(rep *metrics.RunReport, store *dataset.Store) {
	if rep == nil || store == nil {
		return
	}
	s := store.Stats()
	rep.Backends = append(rep.Backends, metrics.BackendReport{
		Scheme:            s.Scheme,
		URL:               s.URL,
		Opens:             s.Opens,
		Reads:             s.Reads,
		ReadBytes:         s.ReadBytes,
		CacheHits:         s.CacheHits,
		CacheMisses:       s.CacheMisses,
		CacheEvictions:    s.CacheEvictions,
		CacheFetchBytes:   s.CacheFetchBytes,
		BreakerState:      s.BreakerState,
		BreakerTrips:      s.BreakerTrips,
		BreakerProbes:     s.BreakerProbes,
		RetryBudgetSpent:  s.RetryBudgetSpent,
		RetryBudgetDenied: s.RetryBudgetDenied,
		HedgedReads:       s.HedgedReads,
		HedgeWins:         s.HedgeWins,
		StaleReads:        s.StaleReads,
	})
}

// Sequential is the single-workstation reference implementation: read the
// whole dataset, requantize it with the dataset-global range, and run the
// raster scan in one pass. Returns one grid per configured feature.
func Sequential(store *dataset.Store, cfg *Config) (map[features.Feature]*volume.FloatGrid, error) {
	if err := cfg.Validate(store.Meta.Dims); err != nil {
		return nil, err
	}
	v, err := store.ReadVolume()
	if err != nil {
		return nil, err
	}
	grid := volume.RequantizeRange(v, cfg.Analysis.GrayLevels, store.Meta.Min, store.Meta.Max)
	return SequentialGrid(grid, cfg)
}

// SequentialGrid is Sequential for an already-requantized in-memory grid.
func SequentialGrid(grid *volume.Grid, cfg *Config) (map[features.Feature]*volume.FloatGrid, error) {
	acfg := cfg.Analysis
	grids, err := core.AnalyzeGrid(grid, &acfg, nil)
	if err != nil {
		return nil, err
	}
	out := map[features.Feature]*volume.FloatGrid{}
	for i, f := range acfg.Features {
		out[f] = grids[i]
	}
	return out, nil
}

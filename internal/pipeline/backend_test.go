package pipeline

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// serveTestDataset writes the standard phantom study to disk, serves it
// over HTTP with Range support, and returns the server plus the local dir.
func serveTestDataset(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{24, 20, 4, 6}, Seed: 17})
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	t.Cleanup(srv.Close)
	return srv, dir
}

func runPipeline(t *testing.T, st *dataset.Store, engine Engine) (map[features.Feature]*volume.FloatGrid, *metrics.RunReport) {
	t.Helper()
	cfg := testConfig(HMPImpl, core.SparseMatrix, filter.DemandDriven)
	layout := &Layout{
		SourceNodes: []int{0, 1, 2},
		IICNodes:    []int{3},
		HMPNodes:    []int{4, 5, 4},
		HCCNodes:    []int{4, 5},
		HPCNodes:    []int{5},
		OutputNodes: []int{0},
	}
	g, res, _, err := Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(g, engine, &RunOptions{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	rep := rs.Report
	if rep == nil {
		t.Fatal("run produced no report")
	}
	AttachBackendStats(rep, st)
	grids := map[features.Feature]*volume.FloatGrid{}
	for _, f := range cfg.Analysis.Features {
		grids[f] = res.Grid(f)
	}
	return grids, rep
}

// TestHTTPPipelineMatchesLocal runs the full texture pipeline against an
// httptest-served dataset on both the in-process and TCP engines, and
// demands bit-identical feature maps against the local-FS oracle.
func TestHTTPPipelineMatchesLocal(t *testing.T) {
	srv, dir := serveTestDataset(t)

	local, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runPipeline(t, local, EngineLocal)

	for _, engine := range []Engine{EngineLocal, EngineTCP} {
		t.Run(engine.String(), func(t *testing.T) {
			st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{
				CacheBlocks: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			got, rep := runPipeline(t, st, engine)
			for f, w := range want {
				gridsEqual(t, f.String(), w, got[f])
			}
			if len(rep.Backends) != 1 {
				t.Fatalf("report has %d backend entries, want 1", len(rep.Backends))
			}
			be := rep.Backends[0]
			if be.Scheme != "http" {
				t.Errorf("backend scheme = %q, want http", be.Scheme)
			}
			if be.Reads == 0 || be.ReadBytes == 0 {
				t.Errorf("backend counters empty: %+v", be)
			}
			if be.CacheHits+be.CacheMisses == 0 {
				t.Errorf("block cache saw no traffic: %+v", be)
			}
		})
	}
}

// TestHTTPPipelineChaos injects a transport fault on every 5th HTTP request;
// the backend's retry budget must absorb every failure and the run must
// still be bit-identical to the local oracle.
func TestHTTPPipelineChaos(t *testing.T) {
	srv, dir := serveTestDataset(t)

	local, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runPipeline(t, local, EngineLocal)

	flaky := &fault.FlakyTransport{FailEvery: 5}
	st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{
		HTTPClient: &http.Client{Transport: flaky},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	got, _ := runPipeline(t, st, EngineTCP)
	for f, w := range want {
		gridsEqual(t, f.String(), w, got[f])
	}
	if flaky.Calls() < 5 {
		t.Errorf("injector saw only %d requests; FailEvery never fired", flaky.Calls())
	}
}

// TestMemBackendPipeline runs the pipeline against a registered mem://
// dataset — the whole-study-in-RAM path — and checks it against the
// local-FS oracle.
func TestMemBackendPipeline(t *testing.T) {
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{24, 20, 4, 6}, Seed: 17})
	dir := t.TempDir()
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	local, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runPipeline(t, local, EngineLocal)

	mb, _, err := dataset.WriteMemDataset(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	dataset.RegisterMem("pipeline-backend-test", mb)
	defer dataset.UnregisterMem("pipeline-backend-test")
	st, err := dataset.OpenURL(context.Background(), "mem://pipeline-backend-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	got, rep := runPipeline(t, st, EngineLocal)
	for f, w := range want {
		gridsEqual(t, f.String(), w, got[f])
	}
	if len(rep.Backends) != 1 || rep.Backends[0].Scheme != "mem" {
		t.Fatalf("backends = %+v, want one mem entry", rep.Backends)
	}
}

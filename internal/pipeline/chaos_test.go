package pipeline

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/synthetic"
)

// TestChaosCombinedTCP is the issue's acceptance chaos run: corrupt slices,
// a texture copy that crashes mid-stream, and TCP links that break
// repeatedly — under SkipDegraded + failover + retry the pipeline must
// still complete, with every surviving output voxel bit-identical to the
// clean oracle and the damage fully accounted for.
func TestChaosCombinedTCP(t *testing.T) {
	cleanDir := t.TempDir()
	if _, err := dataset.Write(cleanDir, synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17}), 3); err != nil {
		t.Fatal(err)
	}
	clean, err := dataset.Open(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Sequential(clean, testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin))
	if err != nil {
		t.Fatal(err)
	}

	st, wantSlices := corruptStore(t)
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ReadAhead = 2
	cfg.FaultPolicy = fault.SkipDegraded
	g, res, _, err := Build(st, cfg, &Layout{HMPNodes: []int{4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	// HMP copy 1 panics while holding its 4th buffer; failover must requeue
	// it onto the survivors.
	hmp, ok := g.Filter("HMP")
	if !ok {
		t.Fatal("HMP filter missing")
	}
	hmp.New = fault.CrashAfter(hmp.New, 1, 4)
	// Every TCP link breaks after 25 writes — and each reconnect gets a
	// fresh flaky conn that breaks again.
	wrap := func(c net.Conn, from, to int) net.Conn {
		return &fault.FlakyConn{Conn: c, FailAt: 25}
	}
	retry := &filter.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		SendTimeout: 10 * time.Second,
		RecvTimeout: 10 * time.Second,
		Seed:        7,
	}
	rs, err := Run(g, EngineTCP, &RunOptions{QueueDepth: 8, Failover: true, Retry: retry, WrapConn: wrap})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatalf("degraded accounting: %v", err)
	}
	slices, rois, voxels := res.Degraded()
	if len(slices) != len(wantSlices) || voxels == 0 {
		t.Fatalf("degraded slices = %v (voxels %d), want %v", slices, voxels, wantSlices)
	}
	for i, s := range wantSlices {
		if slices[i] != s {
			t.Fatalf("degraded slices = %v, want %v", slices, wantSlices)
		}
	}
	inROI := func(p [4]int) bool {
		for _, b := range rois {
			if b.Contains(p) {
				return true
			}
		}
		return false
	}
	outDims := ref[cfg.Analysis.Features[0]].Dims
	for _, f := range cfg.Analysis.Features {
		got, want := res.Grid(f), ref[f]
		if got == nil {
			t.Fatalf("%v: grid missing", f)
		}
		for tt := 0; tt < outDims[3]; tt++ {
			for z := 0; z < outDims[2]; z++ {
				for y := 0; y < outDims[1]; y++ {
					for x := 0; x < outDims[0]; x++ {
						if inROI([4]int{x, y, z, tt}) {
							continue
						}
						if g, w := got.At(x, y, z, tt), want.At(x, y, z, tt); g != w {
							t.Fatalf("%v: clean voxel (%d,%d,%d,%d) = %v, want %v", f, x, y, z, tt, g, w)
						}
					}
				}
			}
		}
	}
	// The report must show all three faults being survived: the copy crash
	// with redelivery, and the link breaks with retries and redials.
	if rs.Report == nil {
		t.Fatal("run report missing")
	}
	for _, fr := range rs.Report.Filters {
		if fr.Name != "HMP" {
			continue
		}
		if fr.CopyFailures != 1 || fr.Redelivered < 1 {
			t.Errorf("HMP CopyFailures = %d, Redelivered = %d, want 1 and >= 1", fr.CopyFailures, fr.Redelivered)
		}
	}
	var retries, redials int64
	for _, c := range rs.Report.Network {
		retries += c.Retries
		redials += c.Redials
	}
	if retries == 0 || redials == 0 {
		t.Errorf("retries=%d redials=%d, want both > 0", retries, redials)
	}
}

// TestChaosHTTPCachedFailover combines the remote-read fault surface with
// the compute fault surface in one run: a corrupt dataset (flip, truncation,
// deletion) is read through the block cache over an HTTP backend whose
// transport kills the first request for every URL, while an HMP copy
// crashes mid-stream. Retries must absorb the transport faults, SkipDegraded
// must fence exactly the damaged ROIs, failover must redeliver the crashed
// copy's buffers — and every voxel outside the degraded ROIs must stay
// bit-identical to the clean local oracle. Runs clean under -race with a
// fixed seed (FirstPerURL keeps the fault schedule independent of goroutine
// interleaving, so the retry budget can never be exhausted by alignment).
func TestChaosHTTPCachedFailover(t *testing.T) {
	cleanDir := t.TempDir()
	if _, err := dataset.Write(cleanDir, synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17}), 3); err != nil {
		t.Fatal(err)
	}
	clean, err := dataset.Open(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Sequential(clean, testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin))
	if err != nil {
		t.Fatal(err)
	}

	dir, damaged := corruptDataset(t)
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()
	flaky := &fault.FlakyTransport{FirstPerURL: true}
	st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{
		HTTPClient:  &http.Client{Transport: flaky},
		CacheBlocks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wantSlices := damagedIDs(t, st, damaged)

	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ReadAhead = 2
	cfg.FaultPolicy = fault.SkipDegraded
	g, res, _, err := Build(st, cfg, &Layout{HMPNodes: []int{4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	// HMP copy 1 panics while holding its 4th buffer; failover must requeue
	// it onto the survivors.
	hmp, ok := g.Filter("HMP")
	if !ok {
		t.Fatal("HMP filter missing")
	}
	hmp.New = fault.CrashAfter(hmp.New, 1, 4)

	rs, err := Run(g, EngineLocal, &RunOptions{QueueDepth: 8, Failover: true})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatalf("degraded accounting: %v", err)
	}
	slices, rois, voxels := res.Degraded()
	if len(slices) != len(wantSlices) || voxels == 0 {
		t.Fatalf("degraded slices = %v (voxels %d), want %v", slices, voxels, wantSlices)
	}
	for i, s := range wantSlices {
		if slices[i] != s {
			t.Fatalf("degraded slices = %v, want %v", slices, wantSlices)
		}
	}
	inROI := func(p [4]int) bool {
		for _, b := range rois {
			if b.Contains(p) {
				return true
			}
		}
		return false
	}
	outDims := ref[cfg.Analysis.Features[0]].Dims
	for _, f := range cfg.Analysis.Features {
		got, want := res.Grid(f), ref[f]
		if got == nil {
			t.Fatalf("%v: grid missing", f)
		}
		for tt := 0; tt < outDims[3]; tt++ {
			for z := 0; z < outDims[2]; z++ {
				for y := 0; y < outDims[1]; y++ {
					for x := 0; x < outDims[0]; x++ {
						if inROI([4]int{x, y, z, tt}) {
							continue
						}
						if g, w := got.At(x, y, z, tt), want.At(x, y, z, tt); g != w {
							t.Fatalf("%v: clean voxel (%d,%d,%d,%d) = %v, want %v", f, x, y, z, tt, g, w)
						}
					}
				}
			}
		}
	}
	// All three fault surfaces must actually have fired.
	if flaky.Failures() == 0 {
		t.Errorf("injector killed no requests over %d calls", flaky.Calls())
	}
	if rs.Report == nil {
		t.Fatal("run report missing")
	}
	for _, fr := range rs.Report.Filters {
		if fr.Name != "HMP" {
			continue
		}
		if fr.CopyFailures != 1 || fr.Redelivered < 1 {
			t.Errorf("HMP CopyFailures = %d, Redelivered = %d, want 1 and >= 1", fr.CopyFailures, fr.Redelivered)
		}
	}
	AttachBackendStats(rs.Report, st)
	if len(rs.Report.Backends) != 1 {
		t.Fatalf("report has %d backend entries, want 1", len(rs.Report.Backends))
	}
	be := rs.Report.Backends[0]
	if be.Scheme != "http" {
		t.Errorf("backend scheme = %q, want http", be.Scheme)
	}
	if be.CacheHits+be.CacheMisses == 0 {
		t.Errorf("block cache saw no traffic: %+v", be)
	}
}

package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/core"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/volume"
)

func restartConfig() *Config {
	return testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
}

// TestResumeCleanJournalSkipsEverything runs a full checkpointed run, then
// resumes against the complete journal: every chunk must be skipped, the
// readers must emit nothing, and the restored output must still be exact.
func TestResumeCleanJournalSkipsEverything(t *testing.T) {
	st := testStore(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	ref, err := Sequential(st, restartConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := restartConfig()
	j, sum, err := PrepareCheckpoint(st.Meta.Dims, cfg, path, false, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalChunks == 0 || sum.Portions != 0 || sum.SkippedChunks != 0 {
		t.Fatalf("fresh checkpoint summary %+v", sum)
	}
	g, res, _, err := Build(st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, &RunOptions{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := restartConfig()
	j2, sum2, err := PrepareCheckpoint(st.Meta.Dims, cfg2, path, true, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if sum2.SkippedChunks != sum2.TotalChunks {
		t.Fatalf("clean journal skipped %d of %d chunks", sum2.SkippedChunks, sum2.TotalChunks)
	}
	if sum2.Portions == 0 || sum2.Voxels == 0 {
		t.Fatalf("clean journal recovered nothing: %+v", sum2)
	}
	if sum2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", sum2.TruncatedBytes)
	}
	g2, res2, _, err := Build(st, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(g2, EngineLocal, &RunOptions{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range stats.Copies["RFR"] {
		if cs.MsgsOut != 0 {
			t.Fatalf("resumed run re-read data: RFR sent %d msgs", cs.MsgsOut)
		}
	}
	if err := res2.Complete(cfg2.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg2.Analysis.Features {
		gridsEqual(t, "resume-"+f.String(), ref[f], res2.Grid(f))
	}
}

// TestCrashThenResumeMatchesOracle kills the texture filter mid-run on both
// real engines, then resumes from the journal: the combined output of the
// two lives must be bit-identical to the sequential reference.
func TestCrashThenResumeMatchesOracle(t *testing.T) {
	engines := map[string]Engine{"local": EngineLocal, "tcp": EngineTCP}
	for name, engine := range engines {
		t.Run(name, func(t *testing.T) {
			st := testStore(t)
			path := filepath.Join(t.TempDir(), "run.ckpt")
			ref, err := Sequential(st, restartConfig())
			if err != nil {
				t.Fatal(err)
			}

			cfg := restartConfig()
			j, _, err := PrepareCheckpoint(st.Meta.Dims, cfg, path, false, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			g, _, _, err := Build(st, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			spec, ok := g.Filter("HMP")
			if !ok {
				t.Fatal("no HMP filter in graph")
			}
			spec.New = fault.CrashAfter(spec.New, 0, 3)
			if _, err := Run(g, engine, &RunOptions{QueueDepth: 4}); err == nil {
				t.Fatal("crashed run reported success")
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			cfg2 := restartConfig()
			j2, sum, err := PrepareCheckpoint(st.Meta.Dims, cfg2, path, true, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			t.Logf("recovered %d portions, skipped %d/%d chunks, %d torn bytes",
				sum.Portions, sum.SkippedChunks, sum.TotalChunks, sum.TruncatedBytes)
			g2, res, _, err := Build(st, cfg2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(g2, engine, &RunOptions{QueueDepth: 4}); err != nil {
				t.Fatal(err)
			}
			if err := res.Complete(cfg2.Analysis.Features); err != nil {
				t.Fatal(err)
			}
			for _, f := range cfg2.Analysis.Features {
				gridsEqual(t, "crash-resume-"+f.String(), ref[f], res.Grid(f))
			}
		})
	}
}

// TestCrashThenResumeUSO crashes a disk-output run: the crash must leave no
// finished record file behind (only ignored temporaries), and the resumed
// run's stitched directory must match the sequential reference exactly.
func TestCrashThenResumeUSO(t *testing.T) {
	st := testStore(t)
	dir := t.TempDir()
	outDir := filepath.Join(dir, "uso")
	if err := os.Mkdir(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	ref, err := Sequential(st, restartConfig())
	if err != nil {
		t.Fatal(err)
	}

	usoConfig := func() *Config {
		cfg := restartConfig()
		cfg.Output = OutputUSO
		cfg.OutDir = outDir
		return cfg
	}

	cfg := usoConfig()
	j, _, err := PrepareCheckpoint(st.Meta.Dims, cfg, path, false, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g, _, outDims, err := Build(st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := g.Filter("HMP")
	if !ok {
		t.Fatal("no HMP filter in graph")
	}
	spec.New = fault.CrashAfter(spec.New, 0, 2)
	if _, err := Run(g, EngineLocal, &RunOptions{QueueDepth: 4}); err == nil {
		t.Fatal("crashed run reported success")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bin") {
			t.Fatalf("crashed run left finished record file %s", e.Name())
		}
	}

	cfg2 := usoConfig()
	j2, _, err := PrepareCheckpoint(st.Meta.Dims, cfg2, path, true, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	g2, _, _, err := Build(st, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g2, EngineLocal, &RunOptions{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := filters.ReadUSODir(outDir, outDims)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg2.Analysis.Features {
		gridsEqual(t, "uso-resume-"+f.String(), ref[f], got[f])
	}
}

// TestPartialJournalSkipsRecoveredChunk hand-builds a journal covering
// exactly one chunk's outputs: the resume must prune that chunk and the
// merged run must still be exact. Unlike the crash tests this path is fully
// deterministic — the skip-set is known in advance.
func TestPartialJournalSkipsRecoveredChunk(t *testing.T) {
	st := testStore(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ref, err := Sequential(st, restartConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := restartConfig()
	j, _, err := PrepareCheckpoint(st.Meta.Dims, cfg, path, false, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	chunker, err := volume.NewChunker(st.Meta.Dims, cfg.ChunkShape, cfg.Analysis.ROI)
	if err != nil {
		t.Fatal(err)
	}
	ch := chunker.Chunk(0)
	for _, f := range cfg.Analysis.Features {
		vals := extractBox(ref[f], ch.Origins)
		if err := j.AppendPortion(int(f), ch.Origins, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := restartConfig()
	j2, sum, err := PrepareCheckpoint(st.Meta.Dims, cfg2, path, true, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if sum.SkippedChunks != 1 {
		t.Fatalf("skipped %d chunks, want 1", sum.SkippedChunks)
	}
	if sum.Portions != len(cfg2.Analysis.Features) {
		t.Fatalf("recovered %d portions, want %d", sum.Portions, len(cfg2.Analysis.Features))
	}
	g, res, _, err := Build(st, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, &RunOptions{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	if err := res.Complete(cfg2.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg2.Analysis.Features {
		gridsEqual(t, "partial-resume-"+f.String(), ref[f], res.Grid(f))
	}
}

// extractBox copies a box of a FloatGrid in raster (x-fastest) order — the
// wire order of ParamMsg values.
func extractBox(g *volume.FloatGrid, b volume.Box) []float64 {
	out := make([]float64, 0, b.NumVoxels())
	for t := b.Lo[3]; t < b.Hi[3]; t++ {
		for z := b.Lo[2]; z < b.Hi[2]; z++ {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for x := b.Lo[0]; x < b.Hi[0]; x++ {
					out = append(out, g.At(x, y, z, t))
				}
			}
		}
	}
	return out
}

// TestCheckpointRejectsJPEGOutput: the JPEG path stitches whole volumes in
// memory, so there is nothing durable to journal — both the preparer and
// the config validator must refuse it.
func TestCheckpointRejectsJPEGOutput(t *testing.T) {
	st := testStore(t)
	cfg := restartConfig()
	cfg.Output = OutputJPEG
	cfg.OutDir = t.TempDir()
	if _, _, err := PrepareCheckpoint(st.Meta.Dims, cfg, filepath.Join(cfg.OutDir, "j"), false, 0); err == nil {
		t.Fatal("PrepareCheckpoint accepted JPEG output")
	}
	cfg2 := restartConfig()
	cfg2.Output = OutputJPEG
	cfg2.OutDir = t.TempDir()
	cfg2.Journal = &checkpoint.Journal{}
	if err := cfg2.Validate(st.Meta.Dims); err == nil {
		t.Fatal("Validate accepted JPEG output with a journal")
	}
}

// TestResumeConfigMismatch: resuming with a different analysis
// configuration must fail with ErrMismatch, not silently mix outputs.
func TestResumeConfigMismatch(t *testing.T) {
	st := testStore(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := restartConfig()
	j, _, err := PrepareCheckpoint(st.Meta.Dims, cfg, path, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := restartConfig()
	cfg2.Analysis.GrayLevels = 8
	if _, _, err := PrepareCheckpoint(st.Meta.Dims, cfg2, path, true, 0); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("resume with changed config: err = %v, want ErrMismatch", err)
	}
}

package pipeline

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// degradedDims has enough z/t extent that a few lost slices poison some
// chunks without touching every chunk's halo.
var degradedDims = [4]int{24, 20, 6, 8}

// corruptDataset writes a phantom study and then damages a few slice files,
// returning the dataset directory and the damaged files. 48 slices * 0.07 =
// 3 victims: one byte flip (checksum-detected), one truncation, one
// deletion.
func corruptDataset(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	v := synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17})
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	damaged, err := dataset.CorruptSlices(dir, 0.07, 5)
	if err != nil {
		t.Fatal(err)
	}
	return dir, damaged
}

// damagedIDs maps the damaged slice files to their slice ids, sorted.
func damagedIDs(t *testing.T, st *dataset.Store, damaged []string) []int {
	t.Helper()
	var ids []int
	for _, f := range damaged {
		var tt, z int
		if _, err := fmt.Sscanf(filepath.Base(f), "slice_t%04d_z%04d.raw", &tt, &z); err != nil {
			t.Fatalf("damaged file %q: %v", f, err)
		}
		ids = append(ids, dataset.SliceID(&st.Meta, z, tt))
	}
	sort.Ints(ids)
	return ids
}

// corruptStore writes a phantom study and then damages a few slice files,
// returning the store and the damaged slice ids.
func corruptStore(t *testing.T) (*dataset.Store, []int) {
	t.Helper()
	dir, damaged := corruptDataset(t)
	st, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, damagedIDs(t, st, damaged)
}

func TestFailFastOnCorruptData(t *testing.T) {
	st, _ := corruptStore(t)
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin) // FailFast default
	g, _, _, err := Build(st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, EngineLocal, nil)
	if !errors.Is(err, dataset.ErrDegradedData) {
		t.Fatalf("fail-fast run err = %v, want ErrDegradedData", err)
	}
	if !errors.Is(err, filter.ErrCopyFailed) {
		t.Fatalf("fail-fast run err = %v, want ErrCopyFailed in chain", err)
	}
}

// TestSkipDegradedMatchesCleanOracle is the degraded-mode acceptance check:
// with corrupt slices and FaultPolicy SkipDegraded the run completes, every
// output voxel outside the reported degraded ROIs is bit-identical to the
// clean run, and the report accounts exactly for the poisoned chunks.
func TestSkipDegradedMatchesCleanOracle(t *testing.T) {
	cleanDir := t.TempDir()
	if _, err := dataset.Write(cleanDir, synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17}), 3); err != nil {
		t.Fatal(err)
	}
	clean, err := dataset.Open(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	ref, err := Sequential(clean, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, readAhead := range []int{0, 3} {
		t.Run(fmt.Sprintf("readahead=%d", readAhead), func(t *testing.T) {
			st, wantSlices := corruptStore(t)
			cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
			cfg.ReadAhead = readAhead
			cfg.FaultPolicy = fault.SkipDegraded
			g, res, outDims, err := Build(st, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(g, EngineLocal, nil); err != nil {
				t.Fatalf("skip-degraded run: %v", err)
			}
			if err := res.Complete(cfg.Analysis.Features); err != nil {
				t.Fatalf("degraded accounting: %v", err)
			}
			slices, rois, voxels := res.Degraded()
			if !reflect.DeepEqual(slices, wantSlices) {
				t.Errorf("degraded slices = %v, want %v", slices, wantSlices)
			}
			if len(rois) == 0 || voxels == 0 {
				t.Fatalf("no degraded ROIs reported (rois %v, voxels %d)", rois, voxels)
			}
			sum := 0
			for _, b := range rois {
				sum += b.NumVoxels()
			}
			if sum != voxels {
				t.Errorf("voxel accounting: rois sum to %d, reported %d", sum, voxels)
			}
			// Every ROI must correspond to a chunk that intersects a damaged
			// slice; every output voxel outside the ROIs must match the clean
			// oracle bit-for-bit, and inside them stay unwritten.
			damaged := map[int]bool{}
			for _, id := range wantSlices {
				damaged[id] = true
			}
			chunker, err := volume.NewChunker(st.Meta.Dims, cfg.ChunkShape, cfg.Analysis.ROI)
			if err != nil {
				t.Fatal(err)
			}
			for _, roi := range rois {
				hit := false
				for _, ch := range chunker.Chunks() {
					if ch.Origins != roi {
						continue
					}
					for tt := ch.Voxels.Lo[3]; tt < ch.Voxels.Hi[3]; tt++ {
						for z := ch.Voxels.Lo[2]; z < ch.Voxels.Hi[2]; z++ {
							if damaged[dataset.SliceID(&st.Meta, z, tt)] {
								hit = true
							}
						}
					}
				}
				if !hit {
					t.Errorf("degraded ROI %v intersects no damaged slice", roi)
				}
			}
			inROI := func(p [4]int) bool {
				for _, b := range rois {
					if b.Contains(p) {
						return true
					}
				}
				return false
			}
			for _, f := range cfg.Analysis.Features {
				got := res.Grid(f)
				want := ref[f]
				if got == nil || got.Dims != outDims {
					t.Fatalf("%v: grid missing or wrong dims", f)
				}
				for tt := 0; tt < outDims[3]; tt++ {
					for z := 0; z < outDims[2]; z++ {
						for y := 0; y < outDims[1]; y++ {
							for x := 0; x < outDims[0]; x++ {
								if inROI([4]int{x, y, z, tt}) {
									if v := got.At(x, y, z, tt); v != 0 {
										t.Fatalf("%v: degraded voxel (%d,%d,%d,%d) written: %v", f, x, y, z, tt, v)
									}
									continue
								}
								if g, w := got.At(x, y, z, tt), want.At(x, y, z, tt); g != w {
									t.Fatalf("%v: clean voxel (%d,%d,%d,%d) = %v, want %v", f, x, y, z, tt, g, w)
								}
							}
						}
					}
				}
			}
		})
	}
}

package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// TestTCPCancelMidRun cancels a real texture pipeline on the TCP engine
// while its pooled buffers (ParamMsg for HMP, MatrixBatchMsg for split) are
// in flight across sockets. The run must return ctx's error promptly — no
// deadlocked sender, no leaked receive loop — for both implementations.
// Run with -race to also check the pools under cancellation.
func TestTCPCancelMidRun(t *testing.T) {
	grid := synthetic.GenerateGrid(synthetic.Config{Dims: [4]int{32, 32, 6, 6}, Seed: 5}, 16)
	for _, impl := range []Impl{HMPImpl, SplitImpl} {
		t.Run(impl.String(), func(t *testing.T) {
			cfg := testConfig(impl, core.SparseMatrix, filter.DemandDriven)
			cfg.Analysis.ROI = [4]int{6, 6, 2, 2}
			cfg.ChunkShape = [4]int{12, 12, 4, 4}
			layout := &Layout{
				SourceNodes: []int{0},
				HMPNodes:    []int{1, 2},
				HCCNodes:    []int{1, 2},
				HPCNodes:    []int{2},
				OutputNodes: []int{0},
			}
			g, _, _, err := BuildMem(grid, cfg, layout)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			done := make(chan struct{})
			var runErr error
			go func() {
				_, runErr = RunContext(ctx, g, EngineTCP, &RunOptions{QueueDepth: 2})
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("pipeline did not stop after cancellation")
			}
			if !errors.Is(runErr, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", runErr)
			}
		})
	}
}

// TestTCPCancelMidReadAhead aborts a disk-backed TCP run whose RFR copies
// have an active read-ahead stage (workers blocked in positioned reads or in
// hand-off to the emit loop). The run must return promptly and the
// read-ahead workers must exit with it — checked by watching the process
// goroutine count return to its pre-run level. Run with -race to check the
// window/piece pools under cancellation.
func TestTCPCancelMidReadAhead(t *testing.T) {
	st := testStore(t)
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		cfg := testConfig(HMPImpl, core.SparseMatrix, filter.DemandDriven)
		cfg.ReadAhead = 8
		cfg.IOChunk = [2]int{8, 8} // many small reads: cancellation lands mid-stream
		g, _, _, err := Build(st, cfg, &Layout{
			SourceNodes: []int{0, 1, 2},
			HMPNodes:    []int{1, 2},
			OutputNodes: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func(delay time.Duration) {
			time.Sleep(delay)
			cancel()
		}(time.Duration(trial) * time.Millisecond)
		done := make(chan struct{})
		var runErr error
		go func() {
			_, runErr = RunContext(ctx, g, EngineTCP, &RunOptions{QueueDepth: 2, WireCodec: filter.CodecBinary})
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("pipeline did not stop after cancellation")
		}
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want nil or context.Canceled", trial, runErr)
		}
	}
	// All read-ahead workers, filter copies and receive loops must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before the runs", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPWireCodecEquivalence runs the same disk-backed pipeline on the TCP
// engine under both wire codecs — with the binary run also using read-ahead
// — and requires results identical to the local engine's synchronous
// baseline. This is the tentpole's off-switch contract: codec and read-ahead
// change only how bytes move, never what arrives.
func TestTCPWireCodecEquivalence(t *testing.T) {
	st := testStore(t)
	run := func(engine Engine, codec filter.Codec, readAhead int) map[features.Feature]*volume.FloatGrid {
		t.Helper()
		cfg := testConfig(HMPImpl, core.SparseMatrix, filter.DemandDriven)
		cfg.ReadAhead = readAhead
		g, res, _, err := Build(st, cfg, &Layout{
			SourceNodes: []int{0, 1, 2},
			HMPNodes:    []int{1, 2},
			OutputNodes: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunContext(context.Background(), g, engine, &RunOptions{WireCodec: codec}); err != nil {
			t.Fatal(err)
		}
		if err := res.Complete(cfg.Analysis.Features); err != nil {
			t.Fatal(err)
		}
		out := map[features.Feature]*volume.FloatGrid{}
		for _, f := range cfg.Analysis.Features {
			out[f] = res.Grid(f)
		}
		return out
	}
	want := run(EngineLocal, filter.CodecGob, 0)
	gob := run(EngineTCP, filter.CodecGob, 0)
	bin := run(EngineTCP, filter.CodecBinary, 4)
	for f := range want {
		gridsEqual(t, "tcp-gob/"+f.String(), want[f], gob[f])
		gridsEqual(t, "tcp-binary/"+f.String(), want[f], bin[f])
	}
}

// TestTCPBinaryCodecGobFallback drives an AssembledMsg — deliberately left
// without a binary encoding — across a real socket under CodecBinary via the
// JPEG output stage (HIC on one node, JIW on another), exercising the
// codec's per-message gob fallback end to end.
func TestTCPBinaryCodecGobFallback(t *testing.T) {
	st := testStore(t)
	outDir := t.TempDir()
	cfg := testConfig(HMPImpl, core.SparseMatrix, filter.DemandDriven)
	cfg.Output = OutputJPEG
	cfg.OutDir = outDir
	g, _, _, err := Build(st, cfg, &Layout{
		SourceNodes: []int{0, 1, 2},
		HMPNodes:    []int{1, 2},
		OutputNodes: []int{0}, // HIC
		JIWNodes:    []int{2}, // off-node writer: AssembledMsg crosses TCP
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(context.Background(), g, EngineTCP, &RunOptions{WireCodec: filter.CodecBinary}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(outDir, "*.jpg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no JPEG output written through the gob-fallback path")
	}
}

// TestPipelineRunReport checks the report a real pipeline run produces: the
// paper's filters appear with their span decompositions, the texture stage's
// buffer pools record activity, and the per-filter time accounting covers
// the run.
func TestPipelineRunReport(t *testing.T) {
	st := testStore(t)
	cfg := testConfig(HMPImpl, core.SparseMatrix, filter.DemandDriven)
	g, res, _, err := Build(st, cfg, &Layout{HMPNodes: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunContext(context.Background(), g, EngineLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatal(err)
	}
	rep := rs.Report
	if rep == nil {
		t.Fatal("no report")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct{ filter, span string }{
		{"RFR", metrics.SpanRead},
		{"RFR", metrics.SpanEmit},
		{"IIC", metrics.SpanAssemble},
		{"HMP", metrics.SpanCompute},
		{"HMP", metrics.SpanEmit},
		{"OUT", metrics.SpanWrite},
	} {
		if sp := rep.Span(want.filter, want.span); sp.Count == 0 || sp.TotalNS <= 0 {
			t.Errorf("span %s/%s missing from report: %+v", want.filter, want.span, sp)
		}
	}
	hmp := rep.Filter("HMP")
	if hmp == nil {
		t.Fatal("no HMP filter in report")
	}
	if hmp.PoolHits+hmp.PoolMisses == 0 {
		t.Error("HMP recorded no buffer-pool activity")
	}
	if len(rep.Streams) == 0 {
		t.Error("no stream table")
	}
	if rep.Summary.Bottleneck == "" {
		t.Error("no bottleneck identified")
	}
	// Engine-side accounting: each copy's busy+blocked+stalled is bounded by
	// the elapsed wall time (the strict 10% two-sided check lives in
	// internal/filter where the workload is controlled).
	for _, f := range rep.Filters {
		for _, c := range f.Copies {
			if total := c.BusyNS + c.BlockedRecvNS + c.StalledSendNS; total > rep.ElapsedNS*11/10 {
				t.Errorf("%s[%d]: accounted %dns exceeds elapsed %dns", f.Name, c.Copy, total, rep.ElapsedNS)
			}
		}
	}
}

package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"haralick4d/internal/cluster"
	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// testStore writes a small phantom study to disk across 3 storage nodes.
func testStore(t testing.TB) *dataset.Store {
	t.Helper()
	dir := t.TempDir()
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{24, 20, 4, 6}, Seed: 17})
	if _, err := dataset.Write(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testConfig(impl Impl, rep core.Representation, policy filter.Policy) *Config {
	return &Config{
		Analysis: core.Config{
			ROI:            [4]int{5, 5, 2, 2},
			GrayLevels:     16,
			NDim:           4,
			Distance:       1,
			Features:       features.PaperSet(),
			Representation: rep,
		},
		ChunkShape: [4]int{12, 12, 3, 4},
		Impl:       impl,
		Policy:     policy,
		Output:     OutputCollect,
	}
}

func gridsEqual(t *testing.T, label string, want, got *volume.FloatGrid) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: missing grid", label)
	}
	if want.Dims != got.Dims {
		t.Fatalf("%s: dims %v vs %v", label, want.Dims, got.Dims)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: voxel %d: %v != %v", label, i, want.Data[i], got.Data[i])
		}
	}
}

// TestParallelMatchesSequential is the central correctness matrix: every
// engine × implementation × policy × representation combination must
// reproduce the sequential reference exactly.
func TestParallelMatchesSequential(t *testing.T) {
	st := testStore(t)
	// One reference per representation: the sparse path sums cells in a
	// different order than the dense path, so cross-representation equality
	// is only up to 1 ulp (covered by core's property tests); within a
	// representation the parallel pipelines must be bit-exact.
	refs := map[core.Representation]map[features.Feature]*volume.FloatGrid{}
	for _, rep := range []core.Representation{core.FullMatrix, core.FullMatrixNoSkip, core.SparseMatrix} {
		r, err := Sequential(st, testConfig(HMPImpl, rep, filter.RoundRobin))
		if err != nil {
			t.Fatal(err)
		}
		refs[rep] = r
	}
	engines := []Engine{EngineLocal, EngineTCP, EngineSim}
	reps := []core.Representation{core.FullMatrix, core.FullMatrixNoSkip, core.SparseMatrix}
	for _, engine := range engines {
		for _, impl := range []Impl{HMPImpl, SplitImpl} {
			for _, policy := range []filter.Policy{filter.RoundRobin, filter.DemandDriven} {
				rep := reps[(int(engine)+int(impl))%len(reps)] // rotate representations across cases
				name := fmt.Sprintf("%v-%v-%v-%v", engine, impl, policy, rep)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig(impl, rep, policy)
					layout := &Layout{
						SourceNodes: []int{0, 1, 2},
						IICNodes:    []int{3},
						HMPNodes:    []int{4, 5, 4},
						HCCNodes:    []int{4, 5},
						HPCNodes:    []int{5},
						OutputNodes: []int{0},
					}
					g, res, _, err := Build(st, cfg, layout)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := Run(g, engine, &RunOptions{QueueDepth: 8}); err != nil {
						t.Fatal(err)
					}
					if err := res.Complete(cfg.Analysis.Features); err != nil {
						t.Fatal(err)
					}
					for _, f := range cfg.Analysis.Features {
						gridsEqual(t, f.String(), refs[rep][f], res.Grid(f))
					}
				})
			}
		}
	}
}

func TestMemPipelineMatchesSequential(t *testing.T) {
	grid := synthetic.GenerateGrid(synthetic.Config{Dims: [4]int{20, 20, 4, 5}, Seed: 4}, 16)
	cfg := testConfig(SplitImpl, core.SparseMatrix, filter.DemandDriven)
	cfg.ChunkShape = [4]int{10, 10, 4, 4}
	ref, err := SequentialGrid(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := &Layout{SourceNodes: []int{0, 0}, HCCNodes: []int{1, 2}, HPCNodes: []int{2}}
	g, res, _, err := BuildMem(grid, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg.Analysis.Features {
		gridsEqual(t, f.String(), ref[f], res.Grid(f))
	}
}

func TestMultipleIICCopies(t *testing.T) {
	st := testStore(t)
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	ref, err := Sequential(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := &Layout{IICNodes: []int{0, 1, 2}, HMPNodes: []int{3, 4}}
	g, res, _, err := Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg.Analysis.Features {
		gridsEqual(t, f.String(), ref[f], res.Grid(f))
	}
}

func TestUSOOutputMatches(t *testing.T) {
	st := testStore(t)
	cfg := testConfig(SplitImpl, core.SparseMatrix, filter.RoundRobin)
	cfg.Output = OutputUSO
	cfg.OutDir = t.TempDir()
	ref, err := Sequential(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := &Layout{OutputNodes: []int{0, 1}} // two USO copies
	g, _, outDims, err := Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	grids, err := filters.ReadUSODir(cfg.OutDir, outDims)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg.Analysis.Features {
		gridsEqual(t, f.String(), ref[f], grids[f])
	}
}

func TestJPEGOutput(t *testing.T) {
	st := testStore(t)
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.Output = OutputJPEG
	cfg.OutDir = t.TempDir()
	g, _, outDims, err := Build(st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	jpgs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".jpg") {
			jpgs++
		}
	}
	want := len(cfg.Analysis.Features) * outDims[2] * outDims[3]
	if jpgs != want {
		t.Fatalf("wrote %d JPEGs, want %d", jpgs, want)
	}
	// File names should carry the feature names.
	if _, err := os.Stat(filepath.Join(cfg.OutDir, fmt.Sprintf("%s_t0000_z0000.jpg", features.ASM))); err != nil {
		t.Error(err)
	}
}

func TestBuildValidation(t *testing.T) {
	st := testStore(t)
	// Wrong RFR copy count.
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	if _, _, _, err := Build(st, cfg, &Layout{SourceNodes: []int{0}}); err == nil {
		t.Error("wrong RFR copy count accepted")
	}
	// Explicit texture policy is rejected.
	cfg = testConfig(HMPImpl, core.FullMatrix, filter.Explicit)
	if _, _, _, err := Build(st, cfg, nil); err == nil {
		t.Error("explicit texture policy accepted")
	}
	// Disk output without OutDir.
	cfg = testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.Output = OutputUSO
	if _, _, _, err := Build(st, cfg, nil); err == nil {
		t.Error("missing OutDir accepted")
	}
	// Chunk smaller than ROI.
	cfg = testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ChunkShape = [4]int{2, 2, 1, 1}
	if _, _, _, err := Build(st, cfg, nil); err == nil {
		t.Error("tiny chunk accepted")
	}
	// Gray-level mismatch in BuildMem.
	grid := volume.NewGrid([4]int{8, 8, 2, 2}, 32)
	cfg = testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ChunkShape = [4]int{8, 8, 2, 2}
	if _, _, _, err := BuildMem(grid, cfg, nil); err == nil {
		t.Error("gray-level mismatch accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	for _, i := range []Impl{HMPImpl, SplitImpl} {
		got, err := ParseImpl(i.String())
		if err != nil || got != i {
			t.Errorf("impl round trip %v", i)
		}
	}
	if _, err := ParseImpl("x"); err == nil {
		t.Error("bad impl accepted")
	}
	for _, e := range []Engine{EngineLocal, EngineTCP, EngineSim} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("engine round trip %v", e)
		}
	}
	if _, err := ParseEngine("x"); err == nil {
		t.Error("bad engine accepted")
	}
	if Impl(9).String() == "" || Engine(9).String() == "" {
		t.Error("empty strings for unknown enums")
	}
}

func TestRunInvalidEngine(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "x", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error { return nil })
	}})
	if _, err := Run(g, Engine(42), nil); err == nil {
		t.Error("invalid engine accepted")
	}
}

func TestSimOnPaperTopology(t *testing.T) {
	// The full disk pipeline on a simulated heterogeneous environment must
	// still be bit-exact, and the virtual elapsed time positive.
	st := testStore(t)
	cfg := testConfig(SplitImpl, core.SparseMatrix, filter.DemandDriven)
	ref, err := Sequential(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHeterogeneous([]cluster.ClusterSpec{
		{Name: "piii", Nodes: 4, Speed: 1, Latency: cluster.LANLatency, MBps: cluster.FastEthernetMBps},
		{Name: "xeon", Nodes: 2, Speed: cluster.SpeedXeon, Latency: cluster.LANLatency, MBps: cluster.GigabitMBps},
	}, cluster.Link{Latency: cluster.LANLatency, MBPerSecond: cluster.FastEthernetMBps})
	layout := &Layout{
		SourceNodes: []int{0, 1, 2},
		IICNodes:    []int{3},
		HCCNodes:    []int{4, 5},
		HPCNodes:    []int{4, 5},
		OutputNodes: []int{0},
	}
	g, res, _, err := Build(st, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(g, EngineSim, &RunOptions{Topology: &h.Topology, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 {
		t.Error("no virtual time elapsed")
	}
	if stats.Elapsed > time.Hour {
		t.Errorf("implausible virtual elapsed %v", stats.Elapsed)
	}
	for _, f := range cfg.Analysis.Features {
		gridsEqual(t, f.String(), ref[f], res.Grid(f))
	}
}

// TestDICOMPipelineMatchesRaw verifies the paper's named extension: the
// DICOMFileReader front end produces bit-identical results to the raw RFR
// front end over the same study.
func TestDICOMPipelineMatchesRaw(t *testing.T) {
	rawDir, dcmDir := t.TempDir(), t.TempDir()
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{24, 20, 4, 6}, Seed: 17})
	if _, err := dataset.Write(rawDir, v, 3); err != nil {
		t.Fatal(err)
	}
	if err := dicom.WriteStudy(dcmDir, v, 3); err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Open(rawDir)
	if err != nil {
		t.Fatal(err)
	}
	study, err := dicom.OpenStudy(dcmDir)
	if err != nil {
		t.Fatal(err)
	}
	if study.Dims != st.Meta.Dims {
		t.Fatalf("geometry mismatch: %v vs %v", study.Dims, st.Meta.Dims)
	}

	cfg := testConfig(SplitImpl, core.SparseMatrix, filter.DemandDriven)
	gRaw, resRaw, _, err := Build(st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(gRaw, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(SplitImpl, core.SparseMatrix, filter.DemandDriven)
	gDcm, resDcm, _, err := BuildDICOM(study, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(gDcm, EngineLocal, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range cfg.Analysis.Features {
		gridsEqual(t, f.String(), resRaw.Grid(f), resDcm.Grid(f))
	}
}

func TestBuildDICOMValidation(t *testing.T) {
	dcmDir := t.TempDir()
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{16, 16, 2, 2}, Seed: 1})
	if err := dicom.WriteStudy(dcmDir, v, 2); err != nil {
		t.Fatal(err)
	}
	study, err := dicom.OpenStudy(dcmDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ChunkShape = [4]int{12, 12, 2, 2}
	if _, _, _, err := BuildDICOM(study, cfg, &Layout{SourceNodes: []int{0}}); err == nil {
		t.Error("wrong DFR copy count accepted")
	}
}

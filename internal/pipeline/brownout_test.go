package pipeline

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/filters"
	"haralick4d/internal/resilience"
	"haralick4d/internal/synthetic"
	"haralick4d/internal/volume"
)

// brownoutOracle computes the clean sequential reference for the brownout
// runs.
func brownoutOracle(t *testing.T, dir string) map[features.Feature]*volume.FloatGrid {
	t.Helper()
	clean, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Sequential(clean, testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// assertCleanVoxels checks every output voxel outside the reported degraded
// ROIs against the oracle, bit for bit.
func assertCleanVoxels(t *testing.T, res *filters.Results, ref map[features.Feature]*volume.FloatGrid, feats []features.Feature) {
	t.Helper()
	_, rois, _ := res.Degraded()
	inROI := func(p [4]int) bool {
		for _, b := range rois {
			if b.Contains(p) {
				return true
			}
		}
		return false
	}
	outDims := ref[feats[0]].Dims
	for _, f := range feats {
		got, want := res.Grid(f), ref[f]
		if got == nil {
			t.Fatalf("%v: grid missing", f)
		}
		for tt := 0; tt < outDims[3]; tt++ {
			for z := 0; z < outDims[2]; z++ {
				for y := 0; y < outDims[1]; y++ {
					for x := 0; x < outDims[0]; x++ {
						if inROI([4]int{x, y, z, tt}) {
							continue
						}
						if g, w := got.At(x, y, z, tt), want.At(x, y, z, tt); g != w {
							t.Fatalf("%v: clean voxel (%d,%d,%d,%d) = %v, want %v", f, x, y, z, tt, g, w)
						}
					}
				}
			}
		}
	}
}

// runBrownout executes one serve-stale pipeline run against a blacked-out
// HTTP backend and returns the collected results and final backend stats.
// readAhead 0 serializes each reader's fetches (outputs are identical either
// way); texNodes places the texture copies.
func runBrownout(t *testing.T, dir string, bo *fault.BlackoutTransport, pol *resilience.Policy, readAhead int, texNodes []int) (*filters.Results, dataset.Stats) {
	t.Helper()
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()
	st, err := dataset.OpenURL(context.Background(), srv.URL, &dataset.URLOptions{
		HTTPClient:       &http.Client{Transport: bo},
		ResiliencePolicy: pol,
		ServeStale:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin)
	cfg.ReadAhead = readAhead
	cfg.FaultPolicy = fault.SkipDegraded
	g, res, _, err := Build(st, cfg, &Layout{HMPNodes: texNodes})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(g, EngineLocal, &RunOptions{QueueDepth: 8, Failover: true})
	if err != nil {
		t.Fatalf("brownout run: %v", err)
	}
	if err := res.Complete(cfg.Analysis.Features); err != nil {
		t.Fatalf("degraded accounting: %v", err)
	}
	// The resilience counters must flow into the run report's backend row.
	AttachBackendStats(rs.Report, st)
	if len(rs.Report.Backends) != 1 {
		t.Fatalf("report has %d backend entries, want 1", len(rs.Report.Backends))
	}
	be := rs.Report.Backends[0]
	if be.BreakerTrips < 1 || be.BreakerState == "" {
		t.Errorf("report backend breaker state %q trips %d, want a tripped breaker", be.BreakerState, be.BreakerTrips)
	}
	if be.StaleReads < 1 {
		t.Errorf("report backend stale reads = %d, want >= 1", be.StaleReads)
	}
	return res, st.Stats()
}

// TestBrownoutHTTPBackend is the chaos acceptance run for the resilience
// layer. Two phases of the same brownout:
//
// "bounded": the backend goes dark mid-run and never recovers. The breaker
// must open, the shared retry budget must cap the total traffic sent into
// the dead backend, serve-stale must convert the unavailable reads into
// degraded slices, and every voxel outside the reported ROIs must stay
// bit-identical to the clean oracle.
//
// "recovers": the blackout lifts after a fixed number of failed requests.
// Deterministic half-open probes must discover the recovery and close the
// breaker, and requests must flow again after the window.
//
// All fault scheduling is request-count based (fixed seeds, no wall-clock
// windows), so the run is reproducible under -race.
func TestBrownoutHTTPBackend(t *testing.T) {
	feats := testConfig(HMPImpl, core.FullMatrix, filter.RoundRobin).Analysis.Features

	t.Run("bounded", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := dataset.Write(dir, synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17}), 3); err != nil {
			t.Fatal(err)
		}
		ref := brownoutOracle(t, dir)
		// tokens below the per-read retry allowance (attempts-1 = 2): the
		// first failing read's second retry is denied no matter how the
		// readers interleave, so the denied counter is deterministic.
		const (
			consec = 3
			tokens = 1
		)
		// A clean run of this configuration makes ~100 requests; going dark
		// after 60 leaves the first ~60% of the data healthy so the
		// bit-identical check has clean voxels to verify.
		bo := &fault.BlackoutTransport{StartAfter: 60, FailN: 1 << 30} // permanent
		pol := &resilience.Policy{
			// OpenFor far beyond the run: once open, the breaker stays open,
			// so every failure the backend sees is pre-trip traffic.
			Breaker: &resilience.BreakerConfig{ConsecFails: consec, OpenFor: time.Hour},
			Budget:  &resilience.BudgetConfig{Tokens: tokens, Ratio: 0},
		}
		res, stats := runBrownout(t, dir, bo, pol, 2, []int{4, 5, 6})

		_, _, voxels := res.Degraded()
		if voxels == 0 {
			t.Fatal("blackout degraded no voxels — the fault window never opened")
		}
		assertCleanVoxels(t, res, ref, feats)
		if stats.BreakerTrips < 1 {
			t.Errorf("breaker trips = %d, want >= 1", stats.BreakerTrips)
		}
		if stats.RetryBudgetDenied < 1 {
			t.Errorf("budget denied = %d, want >= 1 (some retry must have been refused)", stats.RetryBudgetDenied)
		}
		// The storm-proofing bound: traffic into the dead backend is at most
		// the consecutive-failure trip threshold, plus the whole retry
		// budget, plus one in-flight first attempt per reader that raced the
		// trip. Without breaker + budget this would be hundreds of requests
		// (every slice read times every retry attempt).
		const readers = 3
		limit := int64(consec + tokens + 2*readers)
		if got := bo.Failures(); got > limit {
			t.Errorf("blacked-out backend saw %d requests, want <= %d (budget-bounded)", got, limit)
		}
	})

	t.Run("recovers", func(t *testing.T) {
		// A single storage node + synchronous reads make the request stream
		// strictly sequential, and an injected counting clock (one tick per
		// open-state Allow) makes the probe schedule call-count-based, so the
		// whole failure schedule is deterministic: the blacked-out read fails
		// its 3 attempts (= FailN, consuming the blackout; = ConsecFails,
		// tripping the breaker), a fixed handful of reads fast-fail while the
		// clock ticks off OpenFor, then the half-open probe finds the
		// recovered backend and closes the circuit.
		dir := t.TempDir()
		if _, err := dataset.Write(dir, synthetic.Generate(synthetic.Config{Dims: degradedDims, Seed: 17}), 1); err != nil {
			t.Fatal(err)
		}
		ref := brownoutOracle(t, dir)
		const failN = 3
		bo := &fault.BlackoutTransport{StartAfter: 30, FailN: failN}
		var ticks atomic.Int64
		clock := func() time.Time {
			return time.Unix(0, 0).Add(time.Duration(ticks.Add(1)) * 100 * time.Microsecond)
		}
		pol := &resilience.Policy{
			Breaker: &resilience.BreakerConfig{ConsecFails: 3, OpenFor: time.Millisecond, Clock: clock},
			Budget:  &resilience.BudgetConfig{Tokens: 2, Ratio: 0.1},
		}
		res, stats := runBrownout(t, dir, bo, pol, 0, []int{2, 3, 4})

		_, _, voxels := res.Degraded()
		if voxels == 0 {
			t.Fatal("blackout degraded no voxels — the fault window never opened")
		}
		assertCleanVoxels(t, res, ref, feats)
		if stats.BreakerProbes < 1 {
			t.Errorf("breaker probes = %d, want >= 1 (half-open must have probed)", stats.BreakerProbes)
		}
		if got := bo.Failures(); got < failN {
			t.Errorf("blackout consumed %d/%d failures — the backend never recovered in-run", got, failN)
		}
		if got := bo.OKs(); got <= bo.StartAfter {
			t.Errorf("backend answered %d requests, want > %d (traffic must resume after recovery)", got, bo.StartAfter)
		}
	})
}

package filters

import (
	"encoding/gob"
	"fmt"
	"sort"

	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// DegradedPieceMsg replaces the PieceMsgs a reader cannot produce when a
// slice fails its read (checksum mismatch, truncation, missing file) and the
// pipeline runs under fault.SkipDegraded: one notice per (failed window ×
// intersecting chunk), routed to the same IIC copy the data would have gone
// to, so chunk assembly accounting stays exact without the voxels.
type DegradedPieceMsg struct {
	Chunk int        // texture-chunk index the lost piece belonged to
	Slice int        // global slice id (dataset.SliceID) that failed
	Box   volume.Box // the lost window ∩ chunk voxels
}

// SizeBytes implements filter.Payload.
func (m *DegradedPieceMsg) SizeBytes() int { return 80 }

// DegradedChunkMsg is emitted by IIC in place of a ChunkMsg when any of a
// chunk's input came from degraded slices: the chunk's ROI-origin box plus
// the sorted slice ids lost. Texture filters forward it untouched; sinks use
// it to shrink their completion targets and report what was skipped.
type DegradedChunkMsg struct {
	Chunk   int
	Origins volume.Box
	Slices  []int
}

// SizeBytes implements filter.Payload.
func (m *DegradedChunkMsg) SizeBytes() int { return 80 + 8*len(m.Slices) }

func init() {
	gob.Register(&DegradedPieceMsg{})
	gob.Register(&DegradedChunkMsg{})
}

// emitDegraded is the SkipDegraded counterpart of emitPieces: it announces a
// failed read window to every IIC copy owning a chunk the window would have
// fed, dropping chunks in the resume skip-set (their fate — assembled or
// degraded — is already journaled). Shared by RFR and DFR.
func emitDegraded(ctx filter.Context, chunker *volume.Chunker, z, t, slice int, window volume.Box, iicCopies int, skip map[int]bool) error {
	met := ctx.Metrics()
	for _, ch := range chunker.SliceChunks(z, t) {
		if skip[ch.Index] {
			continue
		}
		inter, ok := ch.Voxels.Intersect(window)
		if !ok {
			continue
		}
		msg := &DegradedPieceMsg{Chunk: ch.Index, Slice: slice, Box: inter}
		emit := met.StartEmit()
		err := ctx.SendTo(PortOut, chunkOwnerIIC(ch.Index, iicCopies), msg)
		emit.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// forwardDegraded relays a degraded-chunk notice from a texture filter to
// its consumers. With RouteByFeature the notice goes to every consumer copy:
// each HIC copy stitches its own feature subset against the full output
// volume, so every copy must shrink its completion target. Otherwise one
// policy-routed send reaches the shared-state sink (Collector) or USO.
func forwardDegraded(ctx filter.Context, cfg *TextureConfig, dm *DegradedChunkMsg) error {
	if cfg.RouteByFeature {
		copies := ctx.ConsumerCopies(PortOut)
		if copies == 0 {
			return fmt.Errorf("filters: %s output not connected", ctx.FilterName())
		}
		for i := 0; i < copies; i++ {
			if err := ctx.SendTo(PortOut, i, dm); err != nil {
				return err
			}
		}
		return nil
	}
	return ctx.Send(PortOut, dm)
}

// dedupSlices sorts and deduplicates the slice ids a chunk lost (a slice can
// feed a chunk through several reader windows).
func dedupSlices(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

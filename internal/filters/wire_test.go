package filters

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"haralick4d/internal/filter"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// gobTrip pushes a payload through the gob path (what CodecGob and the
// binary codec's fallback do) and returns the materialized copy.
func gobTrip(t testing.TB, p filter.Payload) filter.Payload {
	t.Helper()
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&p); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out filter.Payload
	if err := gob.NewDecoder(&blob).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// binaryTrip pushes a payload through its registered binary encoding.
func binaryTrip(t testing.TB, p filter.WirePayload, dec filter.WireDecoder) filter.Payload {
	t.Helper()
	out, err := dec(p.AppendWire(nil))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	return out
}

// wireBytes re-encodes a payload; two payloads with identical wire bytes
// carry identical exported data.
func wireBytes(p filter.Payload) []byte {
	return p.(filter.WirePayload).AppendWire(nil)
}

// checkTrip asserts the binary round trip of p matches the gob round trip
// byte-for-byte (after re-encoding both through the same binary encoder) and
// structurally via eq.
func checkTrip(t *testing.T, name string, p filter.WirePayload, dec filter.WireDecoder, eq func(a, b filter.Payload) bool) {
	t.Helper()
	bin := binaryTrip(t, p, dec)
	viaGob := gobTrip(t, p)
	if !bytes.Equal(wireBytes(bin), wireBytes(p)) {
		t.Fatalf("%s: binary round trip altered the wire bytes", name)
	}
	if !bytes.Equal(wireBytes(viaGob), wireBytes(p)) {
		t.Fatalf("%s: gob round trip and binary encoding disagree", name)
	}
	if !eq(bin, viaGob) {
		t.Fatalf("%s: binary-decoded %+v != gob-decoded %+v", name, bin, viaGob)
	}
}

func eqRegion(a, b *volume.Region) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Box == b.Box && bytes.Equal(a.Data, b.Data)
}

func randRegion(rng *rand.Rand, b volume.Box) *volume.Region {
	r := volume.NewRegion(b)
	for i := range r.Data {
		r.Data[i] = uint8(rng.Intn(256))
	}
	return r
}

func TestWirePieceMsgRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eq := func(a, b filter.Payload) bool {
		x, y := a.(*PieceMsg), b.(*PieceMsg)
		return x.Chunk == y.Chunk && eqRegion(x.Region, y.Region)
	}
	cases := map[string]*PieceMsg{
		"typical": {Chunk: 12, Region: randRegion(rng, volume.Box{Lo: [4]int{2, 3, 4, 5}, Hi: [4]int{9, 8, 6, 7}})},
		// A zero-voxel region: Lo == Hi on one axis, empty data.
		"empty": {Chunk: 0, Region: volume.NewRegion(volume.Box{Lo: [4]int{0, 0, 3, 1}, Hi: [4]int{16, 16, 3, 2}})},
		// A full 256×256 slice window — the largest piece the readers emit.
		"max-size": {Chunk: 999, Region: randRegion(rng, volume.Box{Lo: [4]int{0, 0, 7, 3}, Hi: [4]int{256, 256, 8, 4}})},
	}
	for name, m := range cases {
		checkTrip(t, "PieceMsg/"+name, m, decodePieceMsg, eq)
	}
}

func TestWireChunkMsgRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eq := func(a, b filter.Payload) bool {
		x, y := a.(*ChunkMsg), b.(*ChunkMsg)
		return x.Chunk == y.Chunk && x.Origins == y.Origins && eqRegion(x.Region, y.Region)
	}
	m := &ChunkMsg{
		Chunk:   4,
		Origins: volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{10, 10, 2, 2}},
		Region:  randRegion(rng, volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{12, 12, 3, 3}}),
	}
	checkTrip(t, "ChunkMsg", m, decodeChunkMsg, eq)
}

func eqSparse(a, b []*glcm.Sparse) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].G != b[i].G || a[i].Total != b[i].Total || len(a[i].Entries) != len(b[i].Entries) {
			return false
		}
		for j := range a[i].Entries {
			if a[i].Entries[j] != b[i].Entries[j] {
				return false
			}
		}
	}
	return true
}

func eqFull(a, b []*glcm.Full) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].G != b[i].G || a[i].Total != b[i].Total || len(a[i].Counts) != len(b[i].Counts) {
			return false
		}
		for j := range a[i].Counts {
			if a[i].Counts[j] != b[i].Counts[j] {
				return false
			}
		}
	}
	return true
}

func TestWireMatrixBatchMsgRoundTrip(t *testing.T) {
	eq := func(a, b filter.Payload) bool {
		x, y := a.(*MatrixBatchMsg), b.(*MatrixBatchMsg)
		return x.Chunk == y.Chunk && x.Origins == y.Origins && x.G == y.G &&
			x.NoSkip == y.NoSkip && eqSparse(x.Sparse, y.Sparse) && eqFull(x.Full, y.Full)
	}
	origins := volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{2, 1, 1, 1}}
	cases := map[string]*MatrixBatchMsg{
		"sparse": {Chunk: 3, Origins: origins, G: 16, Sparse: []*glcm.Sparse{
			{G: 16, Total: 40, Entries: []glcm.Entry{{I: 0, J: 1, Count: 10}, {I: 3, J: 3, Count: 30}}},
			{G: 16, Total: 7, Entries: []glcm.Entry{{I: 15, J: 15, Count: 7}}},
		}},
		"sparse-empty-entries": {Chunk: 1, Origins: origins, G: 8, Sparse: []*glcm.Sparse{
			{G: 8, Total: 0, Entries: nil},
			{G: 8, Total: 3, Entries: []glcm.Entry{{I: 1, J: 2, Count: 3}}},
		}},
		"full-noskip": {Chunk: 9, Origins: origins, G: 4, NoSkip: true, Full: []*glcm.Full{
			{G: 4, Total: 12, Counts: []uint32{0, 1, 2, 3, 0, 0, 1, 1, 0, 0, 0, 4, 0, 0, 0, 0}},
			{G: 4, Total: 1 << 30, Counts: make([]uint32, 16)},
		}},
	}
	for name, m := range cases {
		checkTrip(t, "MatrixBatchMsg/"+name, m, decodeMatrixBatchMsg, eq)
	}
}

func TestWireParamMsgRoundTrip(t *testing.T) {
	eq := func(a, b filter.Payload) bool {
		x, y := a.(*ParamMsg), b.(*ParamMsg)
		if x.Feature != y.Feature || x.Box != y.Box || len(x.Values) != len(y.Values) {
			return false
		}
		for i := range x.Values {
			// Bit-level comparison so NaN and -0 round trips are checked too.
			if math.Float64bits(x.Values[i]) != math.Float64bits(y.Values[i]) {
				return false
			}
		}
		return true
	}
	box := volume.Box{Lo: [4]int{1, 1, 0, 0}, Hi: [4]int{3, 3, 1, 1}}
	cases := map[string]*ParamMsg{
		"typical": {Feature: 5, Box: box, Values: []float64{0.25, -3.5, 1e-300, 7}},
		"specials": {Feature: 13, Box: box,
			Values: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}},
		"empty": {Feature: 1, Box: volume.Box{Lo: [4]int{2, 2, 2, 2}, Hi: [4]int{2, 2, 2, 2}}, Values: nil},
	}
	for name, m := range cases {
		checkTrip(t, "ParamMsg/"+name, m, decodeParamMsg, eq)
	}
}

// benchPiece is a realistic hot-path message: a 64×64 single-slice window
// piece.
func benchPiece() *PieceMsg {
	rng := rand.New(rand.NewSource(3))
	return &PieceMsg{Chunk: 17, Region: randRegion(rng, volume.Box{Lo: [4]int{0, 0, 2, 1}, Hi: [4]int{64, 64, 3, 2}})}
}

func benchBatch() *MatrixBatchMsg {
	rng := rand.New(rand.NewSource(4))
	m := &MatrixBatchMsg{Chunk: 5, Origins: volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{8, 8, 1, 1}}, G: 16}
	for i := 0; i < 64; i++ {
		s := &glcm.Sparse{G: 16, Total: 200}
		for e := 0; e < 40; e++ {
			s.Entries = append(s.Entries, glcm.Entry{I: uint8(rng.Intn(16)), J: uint8(rng.Intn(16)), Count: uint32(rng.Intn(50) + 1)})
		}
		m.Sparse = append(m.Sparse, s)
	}
	return m
}

// BenchmarkWireEncodePiece and friends measure the binary codec against the
// per-connection gob stream it replaces; the CI io-bench step runs each once
// as a smoke check.
func BenchmarkWireEncodePiece(b *testing.B) {
	m := benchPiece()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendWire(buf[:0])
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkGobEncodePiece(b *testing.B) {
	var p filter.Payload = benchPiece()
	var blob bytes.Buffer
	enc := gob.NewEncoder(&blob)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&p); err != nil {
			b.Fatal(err)
		}
		blob.Reset()
	}
}

func BenchmarkWireDecodePiece(b *testing.B) {
	buf := benchPiece().AppendWire(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodePieceMsg(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeMatrixBatch(b *testing.B) {
	m := benchBatch()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendWire(buf[:0])
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkGobEncodeMatrixBatch(b *testing.B) {
	var p filter.Payload = benchBatch()
	var blob bytes.Buffer
	enc := gob.NewEncoder(&blob)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&p); err != nil {
			b.Fatal(err)
		}
		blob.Reset()
	}
}

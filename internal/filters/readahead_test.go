package filters

import (
	"math/rand"
	"sync"
	"testing"

	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// collectChunks runs reader → IIC → sink over the given source filter and
// returns the assembled chunks.
func collectChunks(t *testing.T, name string, copies int, mk func(int) filter.Filter, ck *volume.Chunker) map[int]*volume.Region {
	t.Helper()
	var mu sync.Mutex
	out := map[int]*volume.Region{}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: name, Copies: copies, New: mk})
	g.AddFilter(filter.FilterSpec{Name: "IIC", Copies: 2, New: NewIIC(IICConfig{Chunker: ck})})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				cm := m.Payload.(*ChunkMsg)
				mu.Lock()
				out[cm.Chunk] = cm.Region
				mu.Unlock()
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: name, FromPort: PortOut, To: "IIC", ToPort: PortIn, Policy: filter.Explicit})
	g.Connect(filter.ConnSpec{From: "IIC", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

func compareChunkSets(t *testing.T, ck *volume.Chunker, base map[int]*volume.Region, others ...map[int]*volume.Region) {
	t.Helper()
	if len(base) != ck.Count() {
		t.Fatalf("assembled %d chunks, want %d", len(base), ck.Count())
	}
	for id, w := range base {
		for oi, other := range others {
			o := other[id]
			if o == nil {
				t.Fatalf("variant %d: chunk %d missing", oi, id)
			}
			for i := range w.Data {
				if w.Data[i] != o.Data[i] {
					t.Fatalf("variant %d: chunk %d differs", oi, id)
				}
			}
		}
	}
}

// TestRFRReadAheadInvariance checks the tentpole contract: any read-ahead
// depth produces chunk data identical to the synchronous reader, for both
// whole-slice and positioned sub-window reads.
func TestRFRReadAheadInvariance(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	v := volume.NewVolume([4]int{16, 12, 3, 3})
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(2000))
	}
	if _, err := dataset.Write(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := volume.NewChunker(v.Dims, [4]int{10, 10, 2, 2}, [4]int{3, 3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ioChunk := range [][2]int{{0, 0}, {5, 4}} {
		run := func(depth int) map[int]*volume.Region {
			return collectChunks(t, "RFR", 2, NewRFR(RFRConfig{
				Store: st, Chunker: ck, GrayLevels: 16, IOChunk: ioChunk, ReadAhead: depth,
			}), ck)
		}
		sync0 := run(0)
		compareChunkSets(t, ck, sync0, run(1), run(4), run(64))
	}
}

// TestDFRReadAheadInvariance is the DICOM-layout counterpart.
func TestDFRReadAheadInvariance(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	v := volume.NewVolume([4]int{12, 10, 3, 3})
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(2000))
	}
	if err := dicom.WriteStudy(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	study, err := dicom.OpenStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := volume.NewChunker(v.Dims, [4]int{8, 8, 2, 2}, [4]int{3, 3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(depth int) map[int]*volume.Region {
		return collectChunks(t, "DFR", 2, NewDFR(DFRConfig{
			Study: study, Chunker: ck, GrayLevels: 16, ReadAhead: depth,
		}), ck)
	}
	sync0 := run(0)
	compareChunkSets(t, ck, sync0, run(1), run(4), run(64))
}

package filters

import (
	"errors"
	"fmt"

	"haralick4d/internal/dataset"
	"haralick4d/internal/dicom"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/readahead"
	"haralick4d/internal/volume"
)

// DFRConfig configures the DICOMFileReader filter — the drop-in replacement
// for RFR that the paper names as the natural extension ("the filter
// developed to read in raw DCE-MRI data may be easily replaced by a filter
// which reads DICOM format images", §4.3). One copy runs per storage node.
type DFRConfig struct {
	Study      *dicom.Study
	Chunker    *volume.Chunker
	GrayLevels int
	// ReadAhead is the number of slices a small worker pool decodes ahead
	// of the emit loop; 0 reads synchronously, reproducing the un-staged
	// reader exactly.
	ReadAhead int
	// ReadAheadGate, when set, overrides ReadAhead with a live-resizable
	// prefetch budget shared by every DFR copy (autotune actuation point).
	ReadAheadGate *readahead.Gate
	// FaultPolicy selects what a failed slice decode does: fault.FailFast
	// (zero value) aborts the run; fault.SkipDegraded replaces the lost
	// slice with DegradedPieceMsg notices. The DICOM store carries no
	// per-slice checksums, so every decode failure counts as degraded data.
	FaultPolicy fault.Policy
	// Skip lists texture chunks whose outputs a resumed run already holds;
	// slices feeding only skipped chunks are never decoded.
	Skip map[int]bool
}

// NewDFR returns the DICOMFileReader factory. Each copy decodes the DICOM
// slices owned by its storage node through the read-ahead stage, requantizes
// them with the study-global window off the emit path, cuts each slice into
// the pieces needed by each intersecting texture chunk, and routes every
// piece explicitly to the IIC copy that assembles that chunk — the same
// stream contract as RFR, so the rest of the pipeline is unchanged.
func NewDFR(cfg DFRConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			st := cfg.Study
			iicCopies := ctx.ConsumerCopies(PortOut)
			if iicCopies == 0 {
				return fmt.Errorf("filters: DFR output not connected")
			}
			slices, err := st.NodeSlices(ctx.CopyIndex())
			if err != nil {
				return err
			}
			met := ctx.Metrics()
			X, Y := st.Dims[0], st.Dims[1]
			if len(cfg.Skip) > 0 {
				// Drop slices that feed only chunks the resume skip-set
				// covers before they reach the decode stage.
				kept := slices[:0:0] // fresh backing; NodeSlices may share its own
				for _, sf := range slices {
					for _, ch := range cfg.Chunker.SliceChunks(sf.Z, sf.T) {
						if !cfg.Skip[ch.Index] {
							kept = append(kept, sf)
							break
						}
					}
				}
				slices = kept
			}
			fetch := func(i int) (*volume.Region, error) {
				sf := slices[i]
				sp := met.StartRead()
				defer sp.End()
				pix := getU16(X * Y)
				defer putU16(pix)
				if err := st.ReadSliceInto(sf, pix); err != nil {
					return nil, fmt.Errorf("%w: dicom slice (z=%d, t=%d): %w", dataset.ErrDegradedData, sf.Z, sf.T, err)
				}
				window := getRegion(volume.Box{
					Lo: [4]int{0, 0, sf.Z, sf.T},
					Hi: [4]int{X, Y, sf.Z + 1, sf.T + 1},
				}, met)
				for i, v := range pix {
					window.Data[i] = volume.QuantizeValue(v, cfg.GrayLevels, st.Min, st.Max)
				}
				return window, nil
			}
			var ra *readahead.Reader[*volume.Region]
			if cfg.ReadAheadGate != nil {
				ra = readahead.NewGated(fetch, len(slices), cfg.ReadAheadGate)
			} else {
				ra = readahead.New(fetch, len(slices), cfg.ReadAhead)
			}
			defer ra.Close()
			async := cfg.ReadAheadGate != nil || cfg.ReadAhead > 0
			for i := range slices {
				var wait metrics.Span
				if async {
					wait = met.StartReadWait()
				}
				window, err, ok := ra.Next()
				wait.End()
				if !ok {
					break // closed mid-stream; the engine is aborting
				}
				if err != nil {
					sf := slices[i]
					if cfg.FaultPolicy != fault.SkipDegraded || !errors.Is(err, dataset.ErrDegradedData) {
						return err
					}
					box := volume.Box{
						Lo: [4]int{0, 0, sf.Z, sf.T},
						Hi: [4]int{X, Y, sf.Z + 1, sf.T + 1},
					}
					if err := emitDegraded(ctx, cfg.Chunker, sf.Z, sf.T,
						sf.T*st.Dims[2]+sf.Z, box, iicCopies, cfg.Skip); err != nil {
						return err
					}
					continue
				}
				if err := emitPieces(ctx, cfg.Chunker, slices[i].Z, slices[i].T, window, iicCopies, cfg.Skip); err != nil {
					return err
				}
				putRegion(window)
			}
			return nil
		})
	}
}

package filters

import (
	"fmt"

	"haralick4d/internal/dicom"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// DFRConfig configures the DICOMFileReader filter — the drop-in replacement
// for RFR that the paper names as the natural extension ("the filter
// developed to read in raw DCE-MRI data may be easily replaced by a filter
// which reads DICOM format images", §4.3). One copy runs per storage node.
type DFRConfig struct {
	Study      *dicom.Study
	Chunker    *volume.Chunker
	GrayLevels int
}

// NewDFR returns the DICOMFileReader factory. Each copy decodes the DICOM
// slices owned by its storage node, requantizes them with the study-global
// window, cuts each slice into the pieces needed by each intersecting
// texture chunk, and routes every piece explicitly to the IIC copy that
// assembles that chunk — the same stream contract as RFR, so the rest of
// the pipeline is unchanged.
func NewDFR(cfg DFRConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			st := cfg.Study
			iicCopies := ctx.ConsumerCopies(PortOut)
			if iicCopies == 0 {
				return fmt.Errorf("filters: DFR output not connected")
			}
			slices, err := st.NodeSlices(ctx.CopyIndex())
			if err != nil {
				return err
			}
			met := ctx.Metrics()
			chunks := cfg.Chunker.Chunks()
			X, Y := st.Dims[0], st.Dims[1]
			for _, sf := range slices {
				sp := met.StartRead()
				pix, err := st.ReadSlice(sf)
				if err != nil {
					return err
				}
				window := volume.NewRegion(volume.Box{
					Lo: [4]int{0, 0, sf.Z, sf.T},
					Hi: [4]int{X, Y, sf.Z + 1, sf.T + 1},
				})
				for i, v := range pix {
					window.Data[i] = volume.QuantizeValue(v, cfg.GrayLevels, st.Min, st.Max)
				}
				sp.End()
				for _, ch := range chunks {
					inter, ok := ch.Voxels.Intersect(window.Box)
					if !ok {
						continue
					}
					piece := volume.NewRegion(inter)
					piece.CopyFrom(window)
					msg := &PieceMsg{Chunk: ch.Index, Region: piece}
					emit := met.StartEmit()
					err := ctx.SendTo(PortOut, chunkOwnerIIC(ch.Index, iicCopies), msg)
					emit.End()
					if err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
}

package filters

import (
	"image/jpeg"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

func TestSplitBoxCoversExactly(t *testing.T) {
	b := volume.BoxAt([4]int{2, 3, 0, 0}, [4]int{10, 4, 2, 2})
	parts := SplitBox(b, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	seen := map[[4]int]bool{}
	for _, p := range parts {
		if !b.ContainsBox(p) {
			t.Fatalf("part %v outside box", p)
		}
		total += p.NumVoxels()
		var q [4]int
		for q[3] = p.Lo[3]; q[3] < p.Hi[3]; q[3]++ {
			for q[2] = p.Lo[2]; q[2] < p.Hi[2]; q[2]++ {
				for q[1] = p.Lo[1]; q[1] < p.Hi[1]; q[1]++ {
					for q[0] = p.Lo[0]; q[0] < p.Hi[0]; q[0]++ {
						if seen[q] {
							t.Fatalf("voxel %v covered twice", q)
						}
						seen[q] = true
					}
				}
			}
		}
	}
	if total != b.NumVoxels() {
		t.Fatalf("parts cover %d voxels, box has %d", total, b.NumVoxels())
	}
}

// Property: SplitBox partitions any box for any n.
func TestSplitBoxProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var shape [4]int
		for k := range shape {
			shape[k] = 1 + rng.Intn(6)
		}
		b := volume.BoxAt([4]int{rng.Intn(3), rng.Intn(3), 0, 0}, shape)
		n := int(nRaw%8) + 1
		parts := SplitBox(b, n)
		total := 0
		for _, p := range parts {
			if p.Empty() || !b.ContainsBox(p) {
				return false
			}
			total += p.NumVoxels()
		}
		return total == b.NumVoxels() && len(parts) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitBoxDegenerate(t *testing.T) {
	if parts := SplitBox(volume.Box{}, 4); parts != nil {
		t.Errorf("empty box split into %v", parts)
	}
	b := volume.BoxAt([4]int{0, 0, 0, 0}, [4]int{1, 1, 1, 1})
	parts := SplitBox(b, 10)
	if len(parts) != 1 || parts[0] != b {
		t.Errorf("single-voxel split = %v", parts)
	}
	if len(SplitBox(b, 0)) != 1 {
		t.Error("n=0 should clamp to 1")
	}
}

func TestPayloadSizes(t *testing.T) {
	r := volume.NewRegion(volume.BoxAt([4]int{}, [4]int{4, 4, 1, 1}))
	if (&PieceMsg{Region: r}).SizeBytes() <= 16 {
		t.Error("PieceMsg size")
	}
	if (&ChunkMsg{Region: r}).SizeBytes() <= 80 {
		t.Error("ChunkMsg size")
	}
	pm := &ParamMsg{Box: r.Box, Values: make([]float64, 16)}
	if pm.SizeBytes() != 72+128 {
		t.Errorf("ParamMsg size = %d", pm.SizeBytes())
	}
	if pm.Validate() != nil {
		t.Error("valid ParamMsg rejected")
	}
	pm.Values = pm.Values[:3]
	if pm.Validate() == nil {
		t.Error("mismatched ParamMsg accepted")
	}
}

// runGraph executes a tiny one-producer graph feeding the filter under
// test, with an optional downstream collector.
func runSink(t *testing.T, produce func(ctx filter.Context) error, sinkFactory func(int) filter.Filter) error {
	t.Helper()
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter { return filter.Func(produce) }})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFactory})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	_, err := filter.RunLocal(g, nil)
	return err
}

func TestUSORoundTrip(t *testing.T) {
	dir := t.TempDir()
	outDims := [4]int{4, 4, 2, 2}
	want := volume.NewFloatGrid(outDims)
	rng := rand.New(rand.NewSource(8))
	for i := range want.Data {
		want.Data[i] = rng.NormFloat64()
	}
	err := runSink(t, func(ctx filter.Context) error {
		// Emit the grid as two box portions for two features.
		for _, ft := range []features.Feature{features.ASM, features.Entropy} {
			for _, box := range SplitBox(volume.BoxAt([4]int{}, outDims), 2) {
				vals := make([]float64, 0, box.NumVoxels())
				var p [4]int
				for p[3] = box.Lo[3]; p[3] < box.Hi[3]; p[3]++ {
					for p[2] = box.Lo[2]; p[2] < box.Hi[2]; p[2]++ {
						for p[1] = box.Lo[1]; p[1] < box.Hi[1]; p[1]++ {
							for p[0] = box.Lo[0]; p[0] < box.Hi[0]; p[0]++ {
								vals = append(vals, want.At(p[0], p[1], p[2], p[3]))
							}
						}
					}
				}
				if err := ctx.Send(PortOut, &ParamMsg{Feature: ft, Box: box, Values: vals}); err != nil {
					return err
				}
			}
		}
		return nil
	}, NewUSO(USOConfig{Dir: dir}))
	if err != nil {
		t.Fatal(err)
	}
	grids, err := ReadUSODir(dir, outDims)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 {
		t.Fatalf("read %d features", len(grids))
	}
	for _, ft := range []features.Feature{features.ASM, features.Entropy} {
		g := grids[ft]
		if g == nil {
			t.Fatalf("feature %v missing", ft)
		}
		for i := range want.Data {
			if g.Data[i] != want.Data[i] {
				t.Fatalf("feature %v voxel %d: %v != %v", ft, i, g.Data[i], want.Data[i])
			}
		}
	}
}

func TestReadUSODirErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadUSODir(filepath.Join(dir, "missing"), [4]int{1, 1, 1, 1}); err == nil {
		t.Error("missing dir accepted")
	}
	os.WriteFile(filepath.Join(dir, "uso_bad.bin"), []byte{1, 2, 3, 4, 5}, 0o644)
	if _, err := ReadUSODir(dir, [4]int{1, 1, 1, 1}); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestHICAndJIW(t *testing.T) {
	dir := t.TempDir()
	outDims := [4]int{6, 5, 2, 2}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for _, box := range SplitBox(volume.BoxAt([4]int{}, outDims), 3) {
				vals := make([]float64, box.NumVoxels())
				for i := range vals {
					vals[i] = float64(i)
				}
				if err := ctx.SendTo(PortOut, 0, &ParamMsg{Feature: features.IDM, Box: box, Values: vals}); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "HIC", Copies: 1, New: NewHIC(HICConfig{OutDims: outDims})})
	g.AddFilter(filter.FilterSpec{Name: "JIW", Copies: 1, New: NewJIW(JIWConfig{Dir: dir})})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "HIC", ToPort: PortIn, Policy: filter.Explicit})
	g.Connect(filter.ConnSpec{From: "HIC", FromPort: PortOut, To: "JIW", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	// One JPEG per (z, t), decodable, right size.
	count := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		img, err := jpeg.Decode(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if img.Bounds().Dx() != 6 || img.Bounds().Dy() != 5 {
			t.Fatalf("%s: bounds %v", e.Name(), img.Bounds())
		}
		count++
	}
	if count != 4 {
		t.Fatalf("wrote %d JPEGs, want 4", count)
	}
}

func TestHICIncompleteErrors(t *testing.T) {
	outDims := [4]int{4, 4, 1, 1}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			vals := make([]float64, 4)
			return ctx.SendTo(PortOut, 0, &ParamMsg{Feature: features.ASM,
				Box: volume.BoxAt([4]int{}, [4]int{4, 1, 1, 1}), Values: vals})
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "HIC", Copies: 1, New: NewHIC(HICConfig{OutDims: outDims})})
	g.AddFilter(filter.FilterSpec{Name: "null", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "HIC", ToPort: PortIn, Policy: filter.Explicit})
	g.Connect(filter.ConnSpec{From: "HIC", FromPort: PortOut, To: "null", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err == nil {
		t.Error("incomplete HIC assembly not reported")
	}
}

func TestCollectorResults(t *testing.T) {
	outDims := [4]int{3, 3, 1, 1}
	res := NewResults(outDims)
	err := runSink(t, func(ctx filter.Context) error {
		vals := make([]float64, 9)
		for i := range vals {
			vals[i] = float64(i) * 0.5
		}
		return ctx.Send(PortOut, &ParamMsg{Feature: features.Contrast, Box: volume.BoxAt([4]int{}, outDims), Values: vals})
	}, NewCollector(res))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Complete([]features.Feature{features.Contrast}); err != nil {
		t.Fatal(err)
	}
	if err := res.Complete([]features.Feature{features.ASM}); err == nil {
		t.Error("missing feature reported complete")
	}
	g := res.Grid(features.Contrast)
	if g == nil || g.At(2, 2, 0, 0) != 4.0 {
		t.Error("collector grid wrong")
	}
	if res.Grid(features.ASM) != nil {
		t.Error("absent grid not nil")
	}
}

func TestWrongPayloadTypes(t *testing.T) {
	bad := func(ctx filter.Context) error {
		return ctx.Send(PortOut, &ParamMsg{Feature: features.ASM, Box: volume.BoxAt([4]int{}, [4]int{1, 1, 1, 1}), Values: []float64{0}})
	}
	chunker, err := volume.NewChunker([4]int{4, 4, 1, 1}, [4]int{4, 4, 1, 1}, [4]int{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, sink := range map[string]func(int) filter.Filter{
		"IIC": NewIIC(IICConfig{Chunker: chunker}),
		"HMP": NewHMP(TextureConfig{}),
		"HCC": NewHCC(TextureConfig{}),
		"HPC": NewHPC(TextureConfig{}),
		"JIW": NewJIW(JIWConfig{Dir: t.TempDir()}),
	} {
		if err := runSink(t, bad, sink); err == nil {
			t.Errorf("%s accepted wrong payload type", name)
		}
	}
}

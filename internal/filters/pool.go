package filters

import (
	"sync"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/metrics"
	"haralick4d/internal/volume"
)

// This file implements recycling of the hot-path message buffers with
// sync.Pool, so the texture filters reach a steady state with no per-chunk
// allocation. Ownership discipline: a message's buffers belong to the
// producer until Send succeeds, then to the single consumer the runtime
// delivers the payload pointer to, which calls Recycle once the values have
// been copied or persisted. Over the TCP transport gob materializes fresh
// objects on the receiving side (the unexported scratch field stays nil),
// so Recycle degrades gracefully to pooling those.

var (
	paramPool   = sync.Pool{New: func() any { return new(ParamMsg) }}
	floatPool   sync.Pool // holds *[]float64
	batchPool   = sync.Pool{New: func() any { return new(MatrixBatchMsg) }}
	scratchPool = sync.Pool{New: func() any { return new(core.MatrixBatch) }}
	piecePool   = sync.Pool{New: func() any { return new(PieceMsg) }}
	regionPool  sync.Pool // holds *volume.Region
	u16Pool     sync.Pool // holds *[]uint16 (reader decode scratch)
)

// getRegion leases a region covering box b, reusing pooled backing when its
// capacity suffices. The region's data is NOT zeroed: callers overwrite
// every voxel (window fills and piece CopyFrom both cover the full box).
func getRegion(b volume.Box, met *metrics.Copy) *volume.Region {
	n := b.NumVoxels()
	if p, ok := regionPool.Get().(*volume.Region); ok && cap(p.Data) >= n {
		p.Box = b
		p.Data = p.Data[:n]
		met.Pool(true)
		return p
	}
	met.Pool(false)
	return volume.NewRegion(b)
}

func putRegion(r *volume.Region) {
	if r == nil || cap(r.Data) == 0 {
		return
	}
	regionPool.Put(r)
}

// getU16 leases a decode scratch buffer of length n.
func getU16(n int) []uint16 {
	if p, ok := u16Pool.Get().(*[]uint16); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint16, n)
}

func putU16(s []uint16) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	u16Pool.Put(&s)
}

// newPieceMsg assembles a pooled PieceMsg taking ownership of region.
func newPieceMsg(chunk int, region *volume.Region) *PieceMsg {
	m := piecePool.Get().(*PieceMsg)
	m.Chunk, m.Region = chunk, region
	return m
}

// Recycle returns the message and its region backing to the pools. Only the
// message's single consumer (the IIC copy that assembled the piece) may call
// it, after CopyFrom; the piece must not be touched afterwards.
func (m *PieceMsg) Recycle() {
	putRegion(m.Region)
	m.Region = nil
	piecePool.Put(m)
}

// getFloats returns a zeroed []float64 of length n, reusing pooled backing
// when its capacity suffices. The lease outcome (reuse vs. fresh allocation)
// is recorded on met, which may be nil.
func getFloats(n int, met *metrics.Copy) []float64 {
	if p, ok := floatPool.Get().(*[]float64); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		met.Pool(true)
		return s
	}
	met.Pool(false)
	return make([]float64, n)
}

func putFloats(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatPool.Put(&s)
}

// newParamMsg assembles a pooled ParamMsg, taking ownership of vals.
func newParamMsg(f features.Feature, box volume.Box, vals []float64) *ParamMsg {
	m := paramPool.Get().(*ParamMsg)
	m.Feature, m.Box, m.Values = f, box, vals
	return m
}

// Recycle returns the message and its Values backing to the pools. Only the
// message's final consumer may call it, after the values have been copied
// or persisted; the message must not be touched afterwards.
func (m *ParamMsg) Recycle() {
	putFloats(m.Values)
	m.Values = nil
	paramPool.Put(m)
}

// getBatchScratch leases a reusable matrix-batch container for the HCC
// filter; it rides inside the MatrixBatchMsg and returns to the pool when
// the consumer recycles the message. A container with grown arenas counts
// as a pool hit.
func getBatchScratch(met *metrics.Copy) *core.MatrixBatch {
	b := scratchPool.Get().(*core.MatrixBatch)
	met.Pool(len(b.Sparse) > 0 || len(b.Full) > 0)
	return b
}

// newMatrixBatchMsg assembles a pooled MatrixBatchMsg publishing whichever
// representation the scratch holds.
func newMatrixBatchMsg(chunk int, origins volume.Box, g int, noSkip bool, scratch *core.MatrixBatch) *MatrixBatchMsg {
	m := batchPool.Get().(*MatrixBatchMsg)
	m.Chunk, m.Origins, m.G, m.NoSkip = chunk, origins, g, noSkip
	m.Sparse, m.Full = nil, nil
	if len(scratch.Sparse) > 0 {
		m.Sparse = scratch.Sparse
	} else {
		m.Full = scratch.Full
	}
	m.scratch = scratch
	return m
}

// Recycle returns the message — and, on the producing node, the batch
// container whose arenas the matrices alias — to the pools. Only the final
// consumer may call it; the matrices become invalid immediately.
func (m *MatrixBatchMsg) Recycle() {
	m.Sparse, m.Full = nil, nil
	if m.scratch != nil {
		scratchPool.Put(m.scratch)
		m.scratch = nil
	}
	batchPool.Put(m)
}

package filters

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/dataset"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

func testChunker(t *testing.T, dims, chunk, roi [4]int) *volume.Chunker {
	t.Helper()
	ck, err := volume.NewChunker(dims, chunk, roi)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestGridSourcePartitionsChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid := volume.NewGrid([4]int{16, 16, 4, 4}, 8)
	for i := range grid.Data {
		grid.Data[i] = uint8(rng.Intn(8))
	}
	ck := testChunker(t, grid.Dims, [4]int{8, 8, 3, 3}, [4]int{3, 3, 2, 2})

	var mu sync.Mutex
	seen := map[int]int{}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 3,
		New: NewGridSource(GridSourceConfig{Grid: grid, Chunker: ck})})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				cm := m.Payload.(*ChunkMsg)
				mu.Lock()
				seen[cm.Chunk]++
				mu.Unlock()
				if cm.Region.Box != ck.Chunk(cm.Chunk).Voxels {
					t.Errorf("chunk %d region box %v", cm.Chunk, cm.Region.Box)
				}
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	if len(seen) != ck.Count() {
		t.Fatalf("saw %d distinct chunks, want %d", len(seen), ck.Count())
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("chunk %d emitted %d times", id, n)
		}
	}
}

func TestIICRejectsMisroutedPiece(t *testing.T) {
	ck := testChunker(t, [4]int{8, 8, 2, 2}, [4]int{8, 8, 2, 2}, [4]int{3, 3, 1, 1})
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			// Chunk 0 belongs to IIC copy 0 of 2; deliver it to copy 1.
			piece := &PieceMsg{Chunk: 0, Region: volume.NewRegion(ck.Chunk(0).Voxels)}
			return ctx.SendTo(PortOut, 1, piece)
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "IIC", Copies: 2, New: NewIIC(IICConfig{Chunker: ck})})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: drain()})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "IIC", ToPort: PortIn, Policy: filter.Explicit})
	g.Connect(filter.ConnSpec{From: "IIC", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err == nil || !strings.Contains(err.Error(), "routed") {
		t.Errorf("misrouted piece not rejected: %v", err)
	}
}

func TestIICRejectsOverlappingPieces(t *testing.T) {
	ck := testChunker(t, [4]int{8, 8, 2, 2}, [4]int{8, 8, 2, 2}, [4]int{3, 3, 1, 1})
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			piece := &PieceMsg{Chunk: 0, Region: volume.NewRegion(ck.Chunk(0).Voxels)}
			if err := ctx.SendTo(PortOut, 0, piece); err != nil {
				return err
			}
			// The same region again: duplicate voxels.
			dup := &PieceMsg{Chunk: 0, Region: volume.NewRegion(ck.Chunk(0).Voxels)}
			return ctx.SendTo(PortOut, 0, dup)
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "IIC", Copies: 1, New: NewIIC(IICConfig{Chunker: ck})})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: drain()})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "IIC", ToPort: PortIn, Policy: filter.Explicit})
	g.Connect(filter.ConnSpec{From: "IIC", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err == nil {
		t.Error("overlapping pieces not rejected")
	}
}

func drain() func(int) filter.Filter {
	return func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
			}
		})
	}
}

func TestHPCRejectsShortBatch(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			batch := &MatrixBatchMsg{
				Origins: volume.BoxAt([4]int{}, [4]int{2, 1, 1, 1}),
				G:       8,
				Sparse:  []*glcm.Sparse{glcm.NewSparse(8)}, // 1 matrix for 2 origins
			}
			return ctx.Send(PortOut, batch)
		})
	}})
	cfg := TextureConfig{Analysis: core.Config{GrayLevels: 8, Representation: core.SparseMatrix}}
	g.AddFilter(filter.FilterSpec{Name: "HPC", Copies: 1, New: NewHPC(cfg)})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: drain()})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "HPC", ToPort: PortIn, Policy: filter.RoundRobin})
	g.Connect(filter.ConnSpec{From: "HPC", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
	if _, err := filter.RunLocal(g, nil); err == nil {
		t.Error("short batch not rejected")
	}
}

// The RFR I/O chunk sweep: any read-window size must produce identical
// streams (the IIC assembles the same chunks regardless of I/O granularity).
func TestRFRIOChunkInvariance(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	v := volume.NewVolume([4]int{16, 12, 2, 3})
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(2000))
	}
	if _, err := dataset.Write(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := testChunker(t, v.Dims, [4]int{10, 10, 2, 2}, [4]int{3, 3, 1, 1})

	assemble := func(ioChunk [2]int) map[int]*volume.Region {
		var mu sync.Mutex
		out := map[int]*volume.Region{}
		g := filter.NewGraph()
		g.AddFilter(filter.FilterSpec{Name: "RFR", Copies: 2, New: NewRFR(RFRConfig{
			Store: st, Chunker: ck, GrayLevels: 16, IOChunk: ioChunk,
		})})
		g.AddFilter(filter.FilterSpec{Name: "IIC", Copies: 1, New: NewIIC(IICConfig{Chunker: ck})})
		g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: func(int) filter.Filter {
			return filter.Func(func(ctx filter.Context) error {
				for {
					m, ok := ctx.Recv()
					if !ok {
						return nil
					}
					cm := m.Payload.(*ChunkMsg)
					mu.Lock()
					out[cm.Chunk] = cm.Region
					mu.Unlock()
				}
			})
		}})
		g.Connect(filter.ConnSpec{From: "RFR", FromPort: PortOut, To: "IIC", ToPort: PortIn, Policy: filter.Explicit})
		g.Connect(filter.ConnSpec{From: "IIC", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.RoundRobin})
		if _, err := filter.RunLocal(g, nil); err != nil {
			t.Fatal(err)
		}
		return out
	}

	whole := assemble([2]int{0, 0}) // whole-slice reads
	small := assemble([2]int{5, 4}) // positioned sub-window reads
	odd := assemble([2]int{16, 1})  // row-at-a-time reads
	if len(whole) != ck.Count() {
		t.Fatalf("assembled %d chunks, want %d", len(whole), ck.Count())
	}
	for id, w := range whole {
		for _, other := range []map[int]*volume.Region{small, odd} {
			o := other[id]
			if o == nil {
				t.Fatalf("chunk %d missing", id)
			}
			for i := range w.Data {
				if w.Data[i] != o.Data[i] {
					t.Fatalf("chunk %d differs between I/O chunk sizes", id)
				}
			}
		}
	}
}

func TestSendParamRouteByFeature(t *testing.T) {
	// RouteByFeature must land each feature on copy (feature mod copies).
	var mu sync.Mutex
	got := map[int][]features.Feature{}
	g := filter.NewGraph()
	cfg := &TextureConfig{RouteByFeature: true}
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for _, f := range features.All() {
				pm := &ParamMsg{Feature: f, Box: volume.BoxAt([4]int{}, [4]int{1, 1, 1, 1}), Values: []float64{1}}
				if err := sendParam(ctx, cfg, pm); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 3, New: func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				mu.Lock()
				got[copy] = append(got[copy], m.Payload.(*ParamMsg).Feature)
				mu.Unlock()
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: PortOut, To: "sink", ToPort: PortIn, Policy: filter.Explicit})
	if _, err := filter.RunLocal(g, nil); err != nil {
		t.Fatal(err)
	}
	for copy, fs := range got {
		for _, f := range fs {
			if int(f)%3 != copy {
				t.Errorf("feature %v landed on copy %d", f, copy)
			}
		}
	}
}

package filters

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// USOConfig configures the UnstitchedOutput filter.
type USOConfig struct {
	Dir string
}

// usoMagic guards the record files against format confusion.
const usoMagic = uint32(0x55534f31) // "USO1"

// NewUSO returns the UnstitchedOutput factory: it streams parameter values
// with their positional information straight to disk, one file per Haralick
// parameter per copy, for later postprocessing.
func NewUSO(cfg USOConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			writers := map[features.Feature]*bufio.Writer{}
			files := map[features.Feature]*os.File{}
			defer func() {
				for _, f := range files {
					f.Close()
				}
			}()
			for {
				m, ok := ctx.Recv()
				if !ok {
					break
				}
				if _, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					// Nothing to persist for a degraded chunk: the record
					// files simply never cover its boxes. Duplicate records
					// from failover redelivery are harmless too — ReadUSODir
					// applies them with idempotent StoreInto overwrites.
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: USO received %T", m.Payload)
				}
				if err := pm.Validate(); err != nil {
					return err
				}
				sp := ctx.Metrics().StartWrite()
				w := writers[pm.Feature]
				if w == nil {
					name := fmt.Sprintf("uso_c%03d_%s.bin", ctx.CopyIndex(), pm.Feature)
					f, err := os.Create(filepath.Join(cfg.Dir, name))
					if err != nil {
						return fmt.Errorf("filters: %w", err)
					}
					files[pm.Feature] = f
					w = bufio.NewWriter(f)
					writers[pm.Feature] = w
					if err := binary.Write(w, binary.LittleEndian, usoMagic); err != nil {
						return fmt.Errorf("filters: %w", err)
					}
				}
				if err := writeUSORecord(w, pm); err != nil {
					return err
				}
				sp.End()
				pm.Recycle()
			}
			for ft, w := range writers {
				if err := w.Flush(); err != nil {
					return fmt.Errorf("filters: %w", err)
				}
				if err := files[ft].Close(); err != nil {
					return fmt.Errorf("filters: %w", err)
				}
				delete(files, ft)
			}
			return nil
		})
	}
}

func writeUSORecord(w io.Writer, pm *ParamMsg) error {
	hdr := make([]int32, 9)
	hdr[0] = int32(pm.Feature)
	for k := 0; k < 4; k++ {
		hdr[1+k] = int32(pm.Box.Lo[k])
		hdr[5+k] = int32(pm.Box.Hi[k])
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, pm.Values); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	return nil
}

// ReadUSODir loads every USO record file in dir and assembles the values
// into one FloatGrid per feature with the given output dimensions — the
// "postprocessing applications can then use the data stored in these files"
// path, and the test oracle for disk output.
func ReadUSODir(dir string, outDims [4]int) (map[features.Feature]*volume.FloatGrid, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("filters: %w", err)
	}
	grids := map[features.Feature]*volume.FloatGrid{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "uso_") || !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		if err := readUSOFile(filepath.Join(dir, e.Name()), outDims, grids); err != nil {
			return nil, err
		}
	}
	return grids, nil
}

func readUSOFile(path string, outDims [4]int, grids map[features.Feature]*volume.FloatGrid) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("filters: %s: %w", path, err)
	}
	if magic != usoMagic {
		return fmt.Errorf("filters: %s: bad magic %#x", path, magic)
	}
	for {
		hdr := make([]int32, 9)
		if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("filters: %s: %w", path, err)
		}
		ft := features.Feature(hdr[0])
		if ft < 0 || int(ft) >= features.NumFeatures {
			return fmt.Errorf("filters: %s: invalid feature %d", path, hdr[0])
		}
		var box volume.Box
		for k := 0; k < 4; k++ {
			box.Lo[k] = int(hdr[1+k])
			box.Hi[k] = int(hdr[5+k])
		}
		vals := make([]float64, box.NumVoxels())
		if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
			return fmt.Errorf("filters: %s: truncated record: %w", path, err)
		}
		g := grids[ft]
		if g == nil {
			g = volume.NewFloatGrid(outDims)
			grids[ft] = g
		}
		fr := &volume.FloatRegion{Box: box, Data: vals}
		fr.StoreInto(g)
	}
}

// HICConfig configures the HaralickImageConstructor filter.
type HICConfig struct {
	OutDims [4]int
}

// NewHIC returns the HaralickImageConstructor factory: the output stitch
// that places parameter output portions into their positions until a
// complete 4D dataset per Haralick parameter is built, then passes each
// assembled dataset (with its value range) downstream.
func NewHIC(cfg HICConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			type assembly struct {
				grid      *volume.FloatGrid
				remaining int
				seen      map[volume.Box]bool // failover redelivery dedupe
			}
			total := volume.NumVoxels(cfg.OutDims)
			pending := map[features.Feature]*assembly{}
			done := map[features.Feature]bool{}
			// Degraded chunks shrink every feature's completion target; the
			// grid simply keeps zeros over their boxes. Notices are deduped
			// by chunk id (explicit fan-out plus redelivery can repeat them).
			degChunks := map[int]bool{}
			degTotal := 0
			finish := func(ft features.Feature, a *assembly) error {
				lo, hi := a.grid.MinMax()
				out := &AssembledMsg{Feature: ft, Grid: a.grid, Min: lo, Max: hi}
				emit := ctx.Metrics().StartEmit()
				err := ctx.Send(PortOut, out)
				emit.End()
				if err != nil {
					return err
				}
				delete(pending, ft)
				done[ft] = true
				return nil
			}
			for {
				m, ok := ctx.Recv()
				if !ok {
					break
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					if degChunks[dm.Chunk] {
						continue
					}
					degChunks[dm.Chunk] = true
					v := dm.Origins.NumVoxels()
					degTotal += v
					// Shrink in-flight assemblies too; one may complete now.
					for ft, a := range pending {
						a.remaining -= v
						if a.remaining == 0 {
							if err := finish(ft, a); err != nil {
								return err
							}
						}
					}
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: HIC received %T", m.Payload)
				}
				if err := pm.Validate(); err != nil {
					return err
				}
				if done[pm.Feature] {
					pm.Recycle() // redelivered duplicate of a finished feature
					continue
				}
				met := ctx.Metrics()
				sp := met.StartAssemble()
				a := pending[pm.Feature]
				if a == nil {
					a = &assembly{grid: volume.NewFloatGrid(cfg.OutDims), remaining: total - degTotal, seen: map[volume.Box]bool{}}
					pending[pm.Feature] = a
				}
				if a.seen[pm.Box] {
					sp.End()
					pm.Recycle()
					continue
				}
				a.seen[pm.Box] = true
				fr := &volume.FloatRegion{Box: pm.Box, Data: pm.Values}
				fr.StoreInto(a.grid)
				a.remaining -= pm.Box.NumVoxels()
				sp.End()
				if a.remaining < 0 {
					return fmt.Errorf("filters: HIC received overlapping portions for %v", pm.Feature)
				}
				ft := pm.Feature
				pm.Recycle() // values copied into the grid above
				if a.remaining == 0 {
					if err := finish(ft, a); err != nil {
						return err
					}
				}
			}
			if len(pending) != 0 {
				return fmt.Errorf("filters: HIC copy %d ended with %d incomplete parameters", ctx.CopyIndex(), len(pending))
			}
			return nil
		})
	}
}

// JIWConfig configures the JPGImageWriter filter.
type JIWConfig struct {
	Dir     string
	Quality int // JPEG quality, default 90
}

// NewJIW returns the JPGImageWriter factory: each assembled 4D parameter
// dataset is normalized to [0, 1] using its min/max (zero → black, one →
// white) and written as a series of 2D JPEG images, one per (z, t).
func NewJIW(cfg JIWConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			quality := cfg.Quality
			if quality <= 0 {
				quality = 90
			}
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				am, okType := m.Payload.(*AssembledMsg)
				if !okType {
					return fmt.Errorf("filters: JIW received %T", m.Payload)
				}
				sp := ctx.Metrics().StartWrite()
				dims := am.Grid.Dims
				scale := 0.0
				if am.Max > am.Min {
					scale = 255 / (am.Max - am.Min)
				}
				for t := 0; t < dims[3]; t++ {
					for z := 0; z < dims[2]; z++ {
						img := image.NewGray(image.Rect(0, 0, dims[0], dims[1]))
						for y := 0; y < dims[1]; y++ {
							for x := 0; x < dims[0]; x++ {
								v := (am.Grid.At(x, y, z, t) - am.Min) * scale
								img.SetGray(x, y, color8(v))
							}
						}
						name := fmt.Sprintf("%s_t%04d_z%04d.jpg", am.Feature, t, z)
						if err := writeJPEG(filepath.Join(cfg.Dir, name), img, quality); err != nil {
							return err
						}
					}
				}
				sp.End()
			}
		})
	}
}

func color8(v float64) color.Gray {
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return color.Gray{Y: uint8(math.Round(v))}
}

func writeJPEG(path string, img image.Image, quality int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	if err := jpeg.Encode(f, img, &jpeg.Options{Quality: quality}); err != nil {
		f.Close()
		return fmt.Errorf("filters: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	return nil
}

// Results accumulates assembled feature grids in memory; it is the shared
// sink behind the Collector filter and the library's return value.
type Results struct {
	mu     sync.Mutex
	dims   [4]int
	grids  map[features.Feature]*volume.FloatGrid
	filled map[features.Feature]int
	// seen dedupes exact portion boxes per feature: under copy failover the
	// runtime redelivers in-flight buffers of crashed copies, so a sink may
	// legitimately see the same portion twice. A *different* overlapping box
	// still overfills — that remains a routing bug worth failing on.
	seen map[features.Feature]map[volume.Box]bool
	// Degraded-chunk bookkeeping (SkipDegraded runs): chunk id → its ROI
	// origin box, plus the union of lost slice ids. Origins partition the
	// output space, so their voxel counts sum exactly.
	degChunks map[int]volume.Box
	degSlices map[int]bool
	degVoxels int
}

// NewResults returns an empty result sink for the given output dimensions.
func NewResults(outDims [4]int) *Results {
	return &Results{
		dims:      outDims,
		grids:     map[features.Feature]*volume.FloatGrid{},
		filled:    map[features.Feature]int{},
		seen:      map[features.Feature]map[volume.Box]bool{},
		degChunks: map[int]volume.Box{},
		degSlices: map[int]bool{},
	}
}

// add applies one parameter portion. Exact duplicates (failover redelivery)
// are skipped silently.
func (r *Results) add(pm *ParamMsg) error {
	if err := pm.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	boxes := r.seen[pm.Feature]
	if boxes == nil {
		boxes = map[volume.Box]bool{}
		r.seen[pm.Feature] = boxes
	}
	if boxes[pm.Box] {
		return nil
	}
	boxes[pm.Box] = true
	g := r.grids[pm.Feature]
	if g == nil {
		g = volume.NewFloatGrid(r.dims)
		r.grids[pm.Feature] = g
	}
	fr := &volume.FloatRegion{Box: pm.Box, Data: pm.Values}
	fr.StoreInto(g)
	r.filled[pm.Feature] += pm.Box.NumVoxels()
	if r.filled[pm.Feature] > volume.NumVoxels(r.dims) {
		return fmt.Errorf("filters: feature %v overfilled", pm.Feature)
	}
	return nil
}

// markDegraded records one degraded-chunk notice, deduplicating by chunk id
// (redelivery can repeat notices too).
func (r *Results) markDegraded(dm *DegradedChunkMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.degChunks[dm.Chunk]; dup {
		return
	}
	r.degChunks[dm.Chunk] = dm.Origins
	r.degVoxels += dm.Origins.NumVoxels()
	for _, s := range dm.Slices {
		r.degSlices[s] = true
	}
}

// Grid returns the assembled grid for one feature (nil if absent).
func (r *Results) Grid(f features.Feature) *volume.FloatGrid {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.grids[f]
}

// Degraded reports what SkipDegraded dropped: the sorted lost slice ids, the
// affected chunks' ROI-origin boxes (in chunk-id order) and the total output
// voxels left unfilled per feature. All zero/empty on a clean run.
func (r *Results) Degraded() (slices []int, rois []volume.Box, voxels int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.degChunks) == 0 {
		return nil, nil, 0
	}
	chunkIDs := make([]int, 0, len(r.degChunks))
	for id := range r.degChunks {
		chunkIDs = append(chunkIDs, id)
	}
	sort.Ints(chunkIDs)
	rois = make([]volume.Box, len(chunkIDs))
	for i, id := range chunkIDs {
		rois[i] = r.degChunks[id]
	}
	slices = make([]int, 0, len(r.degSlices))
	for s := range r.degSlices {
		slices = append(slices, s)
	}
	sort.Ints(slices)
	return slices, rois, r.degVoxels
}

// Complete checks that every feature in want is fully assembled, allowing
// for output voxels explicitly surrendered to degraded chunks.
func (r *Results) Complete(want []features.Feature) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := volume.NumVoxels(r.dims)
	for _, f := range want {
		if r.filled[f]+r.degVoxels != total {
			return fmt.Errorf("filters: feature %v has %d/%d values", f, r.filled[f], total-r.degVoxels)
		}
	}
	return nil
}

// NewCollector returns the in-memory output sink factory. All copies write
// into the same Results (synchronized).
func NewCollector(res *Results) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					res.markDegraded(dm)
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: Collector received %T", m.Payload)
				}
				sp := ctx.Metrics().StartWrite()
				err := res.add(pm)
				sp.End()
				if err != nil {
					return err
				}
				pm.Recycle() // values copied into the shared results above
			}
		})
	}
}

package filters

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"haralick4d/internal/checkpoint"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// USOConfig configures the UnstitchedOutput filter.
type USOConfig struct {
	Dir string
	// Journal, when set, receives a portion record for every parameter
	// portion persisted to the record files, making the run resumable.
	Journal *checkpoint.Journal
	// Recovered are the portions a resumed run trusts from its journal.
	// Copy 0 replays them into its record files before streaming begins, so
	// the stitched output of the resumed run covers the work of both lives.
	Recovered []checkpoint.Portion
}

// usoMagic guards the record files against format confusion.
const usoMagic = uint32(0x55534f31) // "USO1"

// NewUSO returns the UnstitchedOutput factory: it streams parameter values
// with their positional information straight to disk, one file per Haralick
// parameter per copy, for later postprocessing.
//
// Record files are written as "<name>.tmp" and renamed into place only
// after a final flush+fsync, so a crashed run never leaves a half-written
// record file that ReadUSODir would trust (the ".bin" suffix filter skips
// orphaned temporaries). With a Journal configured, every persisted portion
// is journaled; on resume, copy 0 first replays the journal's recovered
// portions so the resumed run's files cover the crashed run's work too.
func NewUSO(cfg USOConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			writers := map[features.Feature]*bufio.Writer{}
			files := map[features.Feature]*os.File{}
			tmps := map[features.Feature]string{}
			defer func() {
				// Error path: close what is open and leave the .tmp files
				// behind — never renamed, so never trusted.
				for _, f := range files {
					f.Close()
				}
			}()
			get := func(ft features.Feature) (*bufio.Writer, error) {
				if w := writers[ft]; w != nil {
					return w, nil
				}
				name := fmt.Sprintf("uso_c%03d_%s.bin", ctx.CopyIndex(), ft)
				tmp := filepath.Join(cfg.Dir, name+".tmp")
				f, err := os.Create(tmp)
				if err != nil {
					return nil, fmt.Errorf("filters: %w", err)
				}
				files[ft] = f
				tmps[ft] = tmp
				w := bufio.NewWriter(f)
				writers[ft] = w
				if err := binary.Write(w, binary.LittleEndian, usoMagic); err != nil {
					return nil, fmt.Errorf("filters: %w", err)
				}
				return w, nil
			}
			if ctx.CopyIndex() == 0 {
				for _, p := range cfg.Recovered {
					w, err := get(features.Feature(p.Feature))
					if err != nil {
						return err
					}
					if err := writeUSORecord(w, features.Feature(p.Feature), p.Box, p.Values); err != nil {
						return err
					}
				}
			}
			aborted := false
			for {
				m, ok := ctx.Recv()
				if !ok {
					// End of all streams — or the engine tearing the run down
					// after a failure elsewhere, which closes streams the same
					// way. Only a genuinely clean end may finalize the record
					// files; an aborted run leaves its temporaries untrusted.
					if ab, hasAb := ctx.(interface{ Aborting() bool }); hasAb && ab.Aborting() {
						aborted = true
					}
					break
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					// Nothing to persist for a degraded chunk: the record
					// files simply never cover its boxes. Duplicate records
					// from failover redelivery are harmless too — ReadUSODir
					// applies them with idempotent StoreInto overwrites.
					if cfg.Journal != nil {
						if err := cfg.Journal.AppendDegraded(dm.Chunk, dm.Origins, dm.Slices); err != nil {
							return err
						}
					}
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: USO received %T", m.Payload)
				}
				if err := pm.Validate(); err != nil {
					return err
				}
				sp := ctx.Metrics().StartWrite()
				w, err := get(pm.Feature)
				if err != nil {
					return err
				}
				if err := writeUSORecord(w, pm.Feature, pm.Box, pm.Values); err != nil {
					return err
				}
				if cfg.Journal != nil {
					// Journaled after the record write: a portion the journal
					// vouches for is always present in some record file —
					// final on a clean exit, or replayed from this very
					// journal entry on resume.
					if err := cfg.Journal.AppendPortion(int(pm.Feature), pm.Box, pm.Values); err != nil {
						return err
					}
				}
				sp.End()
				pm.Recycle()
			}
			if aborted {
				return nil // deferred close leaves only .tmp files behind
			}
			for ft, w := range writers {
				if err := w.Flush(); err != nil {
					return fmt.Errorf("filters: %w", err)
				}
				f := files[ft]
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("filters: %w", err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("filters: %w", err)
				}
				delete(files, ft)
				if err := os.Rename(tmps[ft], strings.TrimSuffix(tmps[ft], ".tmp")); err != nil {
					return fmt.Errorf("filters: %w", err)
				}
			}
			return nil
		})
	}
}

func writeUSORecord(w io.Writer, ft features.Feature, box volume.Box, values []float64) error {
	hdr := make([]int32, 9)
	hdr[0] = int32(ft)
	for k := 0; k < 4; k++ {
		hdr[1+k] = int32(box.Lo[k])
		hdr[5+k] = int32(box.Hi[k])
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, values); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	return nil
}

// ReadUSODir loads every USO record file in dir and assembles the values
// into one FloatGrid per feature with the given output dimensions — the
// "postprocessing applications can then use the data stored in these files"
// path, and the test oracle for disk output.
func ReadUSODir(dir string, outDims [4]int) (map[features.Feature]*volume.FloatGrid, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("filters: %w", err)
	}
	grids := map[features.Feature]*volume.FloatGrid{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "uso_") || !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		if err := readUSOFile(filepath.Join(dir, e.Name()), outDims, grids); err != nil {
			return nil, err
		}
	}
	return grids, nil
}

func readUSOFile(path string, outDims [4]int, grids map[features.Feature]*volume.FloatGrid) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("filters: %s: %w", path, err)
	}
	if magic != usoMagic {
		return fmt.Errorf("filters: %s: bad magic %#x", path, magic)
	}
	for {
		hdr := make([]int32, 9)
		if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("filters: %s: %w", path, err)
		}
		ft := features.Feature(hdr[0])
		if ft < 0 || int(ft) >= features.NumFeatures {
			return fmt.Errorf("filters: %s: invalid feature %d", path, hdr[0])
		}
		var box volume.Box
		for k := 0; k < 4; k++ {
			box.Lo[k] = int(hdr[1+k])
			box.Hi[k] = int(hdr[5+k])
		}
		vals := make([]float64, box.NumVoxels())
		if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
			return fmt.Errorf("filters: %s: truncated record: %w", path, err)
		}
		g := grids[ft]
		if g == nil {
			g = volume.NewFloatGrid(outDims)
			grids[ft] = g
		}
		fr := &volume.FloatRegion{Box: box, Data: vals}
		fr.StoreInto(g)
	}
}

// HICConfig configures the HaralickImageConstructor filter.
type HICConfig struct {
	OutDims [4]int
}

// NewHIC returns the HaralickImageConstructor factory: the output stitch
// that places parameter output portions into their positions until a
// complete 4D dataset per Haralick parameter is built, then passes each
// assembled dataset (with its value range) downstream.
func NewHIC(cfg HICConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			type assembly struct {
				grid      *volume.FloatGrid
				remaining int
				seen      map[volume.Box]bool // failover redelivery dedupe
			}
			total := volume.NumVoxels(cfg.OutDims)
			pending := map[features.Feature]*assembly{}
			done := map[features.Feature]bool{}
			// Degraded chunks shrink every feature's completion target; the
			// grid simply keeps zeros over their boxes. Notices are deduped
			// by chunk id (explicit fan-out plus redelivery can repeat them).
			degChunks := map[int]bool{}
			degTotal := 0
			finish := func(ft features.Feature, a *assembly) error {
				lo, hi := a.grid.MinMax()
				out := &AssembledMsg{Feature: ft, Grid: a.grid, Min: lo, Max: hi}
				emit := ctx.Metrics().StartEmit()
				err := ctx.Send(PortOut, out)
				emit.End()
				if err != nil {
					return err
				}
				delete(pending, ft)
				done[ft] = true
				return nil
			}
			for {
				m, ok := ctx.Recv()
				if !ok {
					break
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					if degChunks[dm.Chunk] {
						continue
					}
					degChunks[dm.Chunk] = true
					v := dm.Origins.NumVoxels()
					degTotal += v
					// Shrink in-flight assemblies too; one may complete now.
					for ft, a := range pending {
						a.remaining -= v
						if a.remaining == 0 {
							if err := finish(ft, a); err != nil {
								return err
							}
						}
					}
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: HIC received %T", m.Payload)
				}
				if err := pm.Validate(); err != nil {
					return err
				}
				if done[pm.Feature] {
					pm.Recycle() // redelivered duplicate of a finished feature
					continue
				}
				met := ctx.Metrics()
				sp := met.StartAssemble()
				a := pending[pm.Feature]
				if a == nil {
					a = &assembly{grid: volume.NewFloatGrid(cfg.OutDims), remaining: total - degTotal, seen: map[volume.Box]bool{}}
					pending[pm.Feature] = a
				}
				if a.seen[pm.Box] {
					sp.End()
					pm.Recycle()
					continue
				}
				a.seen[pm.Box] = true
				fr := &volume.FloatRegion{Box: pm.Box, Data: pm.Values}
				fr.StoreInto(a.grid)
				a.remaining -= pm.Box.NumVoxels()
				sp.End()
				if a.remaining < 0 {
					return fmt.Errorf("filters: HIC received overlapping portions for %v", pm.Feature)
				}
				ft := pm.Feature
				pm.Recycle() // values copied into the grid above
				if a.remaining == 0 {
					if err := finish(ft, a); err != nil {
						return err
					}
				}
			}
			if len(pending) != 0 {
				return fmt.Errorf("filters: HIC copy %d ended with %d incomplete parameters", ctx.CopyIndex(), len(pending))
			}
			return nil
		})
	}
}

// JIWConfig configures the JPGImageWriter filter.
type JIWConfig struct {
	Dir     string
	Quality int // JPEG quality, default 90
}

// NewJIW returns the JPGImageWriter factory: each assembled 4D parameter
// dataset is normalized to [0, 1] using its min/max (zero → black, one →
// white) and written as a series of 2D JPEG images, one per (z, t).
func NewJIW(cfg JIWConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			quality := cfg.Quality
			if quality <= 0 {
				quality = 90
			}
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				am, okType := m.Payload.(*AssembledMsg)
				if !okType {
					return fmt.Errorf("filters: JIW received %T", m.Payload)
				}
				sp := ctx.Metrics().StartWrite()
				dims := am.Grid.Dims
				scale := 0.0
				if am.Max > am.Min {
					scale = 255 / (am.Max - am.Min)
				}
				for t := 0; t < dims[3]; t++ {
					for z := 0; z < dims[2]; z++ {
						img := image.NewGray(image.Rect(0, 0, dims[0], dims[1]))
						for y := 0; y < dims[1]; y++ {
							for x := 0; x < dims[0]; x++ {
								v := (am.Grid.At(x, y, z, t) - am.Min) * scale
								img.SetGray(x, y, color8(v))
							}
						}
						name := fmt.Sprintf("%s_t%04d_z%04d.jpg", am.Feature, t, z)
						if err := writeJPEG(filepath.Join(cfg.Dir, name), img, quality); err != nil {
							return err
						}
					}
				}
				sp.End()
			}
		})
	}
}

func color8(v float64) color.Gray {
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return color.Gray{Y: uint8(math.Round(v))}
}

// writeJPEG persists one image atomically: encode into a temporary, fsync,
// then rename into place, so a crash mid-encode never leaves a truncated
// JPEG under the final name.
func writeJPEG(path string, img image.Image, quality int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	if err := jpeg.Encode(f, img, &jpeg.Options{Quality: quality}); err != nil {
		f.Close()
		return fmt.Errorf("filters: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("filters: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("filters: %w", err)
	}
	return nil
}

// Results accumulates assembled feature grids in memory; it is the shared
// sink behind the Collector filter and the library's return value.
type Results struct {
	mu     sync.Mutex
	dims   [4]int
	grids  map[features.Feature]*volume.FloatGrid
	filled map[features.Feature]int
	// seen dedupes exact portion boxes per feature: under copy failover the
	// runtime redelivers in-flight buffers of crashed copies, so a sink may
	// legitimately see the same portion twice. A *different* overlapping box
	// still overfills — that remains a routing bug worth failing on. A
	// feature's map is dropped once the feature completes (completed takes
	// over late-duplicate suppression), so long runs don't retain a box
	// entry for every portion ever assembled.
	seen      map[features.Feature]map[volume.Box]bool
	completed map[features.Feature]bool
	// jour, when set, receives a record for every applied portion and
	// degraded notice, making the collected results resumable.
	jour *checkpoint.Journal
	// Degraded-chunk bookkeeping (SkipDegraded runs): chunk id → its ROI
	// origin box, plus the union of lost slice ids. Origins partition the
	// output space, so their voxel counts sum exactly.
	degChunks map[int]volume.Box
	degSlices map[int]bool
	degVoxels int
}

// NewResults returns an empty result sink for the given output dimensions.
func NewResults(outDims [4]int) *Results {
	return &Results{
		dims:      outDims,
		grids:     map[features.Feature]*volume.FloatGrid{},
		filled:    map[features.Feature]int{},
		seen:      map[features.Feature]map[volume.Box]bool{},
		completed: map[features.Feature]bool{},
		degChunks: map[int]volume.Box{},
		degSlices: map[int]bool{},
	}
}

// SetJournal attaches a progress journal: from now on every applied portion
// and degraded notice is journaled before it counts as collected.
func (r *Results) SetJournal(j *checkpoint.Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jour = j
}

// Restore seeds the sink with the portions and degraded notices recovered
// from a journal, exactly as if the original run had delivered them —
// without re-journaling. Called before the resumed pipeline starts.
func (r *Results) Restore(st *checkpoint.State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range st.Degraded {
		if _, dup := r.degChunks[d.Chunk]; dup {
			continue
		}
		r.degChunks[d.Chunk] = d.Origins
		r.degVoxels += d.Origins.NumVoxels()
		for _, s := range d.Slices {
			r.degSlices[s] = true
		}
	}
	for _, p := range st.Portions {
		ft := features.Feature(p.Feature)
		if ft < 0 || int(ft) >= features.NumFeatures {
			return fmt.Errorf("filters: restored portion has invalid feature %d", p.Feature)
		}
		if err := r.applyLocked(ft, p.Box, p.Values); err != nil {
			return err
		}
	}
	return nil
}

// applyLocked stores one portion (deduplicated) and retires the feature's
// dedupe map when it completes. Caller holds r.mu.
func (r *Results) applyLocked(ft features.Feature, box volume.Box, values []float64) error {
	if r.completed[ft] {
		return nil // late duplicate of a finished feature
	}
	boxes := r.seen[ft]
	if boxes == nil {
		boxes = map[volume.Box]bool{}
		r.seen[ft] = boxes
	}
	if boxes[box] {
		return nil
	}
	boxes[box] = true
	g := r.grids[ft]
	if g == nil {
		g = volume.NewFloatGrid(r.dims)
		r.grids[ft] = g
	}
	fr := &volume.FloatRegion{Box: box, Data: values}
	fr.StoreInto(g)
	r.filled[ft] += box.NumVoxels()
	if r.filled[ft] > volume.NumVoxels(r.dims) {
		return fmt.Errorf("filters: feature %v overfilled", ft)
	}
	r.sweepCompleteLocked(ft)
	return nil
}

// sweepCompleteLocked retires a feature's per-box dedupe map once the
// feature is fully accounted for (assembled plus degraded voxels cover the
// output): any portion arriving later is by construction a duplicate, so
// the completed flag alone suppresses it and the map's memory is released.
func (r *Results) sweepCompleteLocked(ft features.Feature) {
	if r.completed[ft] {
		return
	}
	if r.filled[ft]+r.degVoxels == volume.NumVoxels(r.dims) {
		r.completed[ft] = true
		delete(r.seen, ft)
	}
}

// add applies one parameter portion. Exact duplicates (failover redelivery)
// are skipped silently.
func (r *Results) add(pm *ParamMsg) error {
	if err := pm.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jour != nil && !r.completed[pm.Feature] {
		if err := r.jour.AppendPortion(int(pm.Feature), pm.Box, pm.Values); err != nil {
			return err
		}
	}
	return r.applyLocked(pm.Feature, pm.Box, pm.Values)
}

// markDegraded records one degraded-chunk notice, deduplicating by chunk id
// (redelivery can repeat notices too).
func (r *Results) markDegraded(dm *DegradedChunkMsg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.degChunks[dm.Chunk]; dup {
		return nil
	}
	if r.jour != nil {
		if err := r.jour.AppendDegraded(dm.Chunk, dm.Origins, dm.Slices); err != nil {
			return err
		}
	}
	r.degChunks[dm.Chunk] = dm.Origins
	r.degVoxels += dm.Origins.NumVoxels()
	for _, s := range dm.Slices {
		r.degSlices[s] = true
	}
	// The surrendered voxels may be the last thing a feature was waiting
	// for; re-check every in-flight feature against the new target.
	for ft := range r.filled {
		r.sweepCompleteLocked(ft)
	}
	return nil
}

// Grid returns the assembled grid for one feature (nil if absent).
func (r *Results) Grid(f features.Feature) *volume.FloatGrid {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.grids[f]
}

// Degraded reports what SkipDegraded dropped: the sorted lost slice ids, the
// affected chunks' ROI-origin boxes (in chunk-id order) and the total output
// voxels left unfilled per feature. All zero/empty on a clean run.
func (r *Results) Degraded() (slices []int, rois []volume.Box, voxels int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.degChunks) == 0 {
		return nil, nil, 0
	}
	chunkIDs := make([]int, 0, len(r.degChunks))
	for id := range r.degChunks {
		chunkIDs = append(chunkIDs, id)
	}
	sort.Ints(chunkIDs)
	rois = make([]volume.Box, len(chunkIDs))
	for i, id := range chunkIDs {
		rois[i] = r.degChunks[id]
	}
	slices = make([]int, 0, len(r.degSlices))
	for s := range r.degSlices {
		slices = append(slices, s)
	}
	sort.Ints(slices)
	return slices, rois, r.degVoxels
}

// Complete checks that every feature in want is fully assembled, allowing
// for output voxels explicitly surrendered to degraded chunks.
func (r *Results) Complete(want []features.Feature) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := volume.NumVoxels(r.dims)
	for _, f := range want {
		if r.filled[f]+r.degVoxels != total {
			return fmt.Errorf("filters: feature %v has %d/%d values", f, r.filled[f], total-r.degVoxels)
		}
	}
	return nil
}

// NewCollector returns the in-memory output sink factory. All copies write
// into the same Results (synchronized).
func NewCollector(res *Results) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					if err := res.markDegraded(dm); err != nil {
						return err
					}
					continue
				}
				pm, okType := m.Payload.(*ParamMsg)
				if !okType {
					return fmt.Errorf("filters: Collector received %T", m.Payload)
				}
				sp := ctx.Metrics().StartWrite()
				err := res.add(pm)
				sp.End()
				if err != nil {
					return err
				}
				pm.Recycle() // values copied into the shared results above
			}
		})
	}
}

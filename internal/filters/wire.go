package filters

import (
	"encoding/binary"
	"fmt"
	"math"

	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// This file gives the four hot stream message types a hand-rolled binary
// wire encoding for filter.CodecBinary. Integers travel as uvarints, boxes
// as eight uvarints, and the backing arrays (region voxels, matrix entries
// and counts, parameter values) are written with bulk appends — no
// per-element reflection, no per-message type description. AssembledMsg is
// deliberately left unregistered: it crosses the wire once per feature, so
// it exercises the codec's transparent gob fallback instead.
const (
	wirePiece = 1 + iota
	wireChunk
	wireMatrixBatch
	wireParam
)

func init() {
	filter.RegisterWireDecoder(wirePiece, decodePieceMsg)
	filter.RegisterWireDecoder(wireChunk, decodeChunkMsg)
	filter.RegisterWireDecoder(wireMatrixBatch, decodeMatrixBatchMsg)
	filter.RegisterWireDecoder(wireParam, decodeParamMsg)
}

func appendBox(buf []byte, b volume.Box) []byte {
	for _, v := range b.Lo {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, v := range b.Hi {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func appendRegion(buf []byte, r *volume.Region) []byte {
	buf = appendBox(buf, r.Box)
	buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
	return append(buf, r.Data...)
}

// wireReader is a cursor over one decoded frame; the first failure sticks.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) fail(field string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at %s", field)
	}
}

func (r *wireReader) uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail(field)
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *wireReader) count(field string) int {
	n := r.uvarint(field)
	if r.err == nil && n > uint64(len(r.data)) {
		// Every counted element occupies at least one byte, so a count
		// exceeding the remaining frame is corrupt; checking here keeps a bad
		// length from driving a huge allocation.
		r.fail(field)
	}
	return int(n)
}

func (r *wireReader) bytes(n int, field string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data) {
		r.fail(field)
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *wireReader) byte(field string) byte {
	b := r.bytes(1, field)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) box(field string) volume.Box {
	var b volume.Box
	for i := range b.Lo {
		b.Lo[i] = int(r.uvarint(field))
	}
	for i := range b.Hi {
		b.Hi[i] = int(r.uvarint(field))
	}
	return b
}

func (r *wireReader) region(field string) *volume.Region {
	b := r.box(field)
	n := r.count(field)
	data := r.bytes(n, field)
	if r.err != nil {
		return nil
	}
	if n != b.NumVoxels() {
		r.err = fmt.Errorf("%s: %d data bytes for a %d-voxel box", field, n, b.NumVoxels())
		return nil
	}
	// The frame buffer is recycled by the receive loop; copy out.
	return &volume.Region{Box: b, Data: append([]uint8(nil), data...)}
}

// WireID implements filter.WirePayload.
func (m *PieceMsg) WireID() byte { return wirePiece }

// AppendWire implements filter.WirePayload.
func (m *PieceMsg) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Chunk))
	return appendRegion(buf, m.Region)
}

func decodePieceMsg(data []byte) (filter.Payload, error) {
	r := wireReader{data: data}
	m := &PieceMsg{Chunk: int(r.uvarint("Chunk"))}
	m.Region = r.region("Region")
	if r.err != nil {
		return nil, fmt.Errorf("PieceMsg: %w", r.err)
	}
	return m, nil
}

// WireID implements filter.WirePayload.
func (m *ChunkMsg) WireID() byte { return wireChunk }

// AppendWire implements filter.WirePayload.
func (m *ChunkMsg) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Chunk))
	buf = appendBox(buf, m.Origins)
	return appendRegion(buf, m.Region)
}

func decodeChunkMsg(data []byte) (filter.Payload, error) {
	r := wireReader{data: data}
	m := &ChunkMsg{Chunk: int(r.uvarint("Chunk"))}
	m.Origins = r.box("Origins")
	m.Region = r.region("Region")
	if r.err != nil {
		return nil, fmt.Errorf("ChunkMsg: %w", r.err)
	}
	return m, nil
}

// MatrixBatchMsg flag bits.
const (
	wireBatchNoSkip = 1 << 0
	wireBatchSparse = 1 << 1
)

// WireID implements filter.WirePayload.
func (m *MatrixBatchMsg) WireID() byte { return wireMatrixBatch }

// AppendWire implements filter.WirePayload. Sparse matrices travel as their
// sorted (i, j, count) entry triples — 6 bytes each, the paper's case for
// the sparse representation on the wire; full matrices as little-endian u32
// count arrays. The pooled scratch container never crosses the wire.
func (m *MatrixBatchMsg) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Chunk))
	buf = appendBox(buf, m.Origins)
	buf = binary.AppendUvarint(buf, uint64(m.G))
	flags := byte(0)
	if m.NoSkip {
		flags |= wireBatchNoSkip
	}
	if m.Sparse != nil {
		flags |= wireBatchSparse
	}
	buf = append(buf, flags)
	if m.Sparse != nil {
		buf = binary.AppendUvarint(buf, uint64(len(m.Sparse)))
		for _, s := range m.Sparse {
			buf = binary.AppendUvarint(buf, uint64(s.G))
			buf = binary.AppendUvarint(buf, s.Total)
			buf = binary.AppendUvarint(buf, uint64(len(s.Entries)))
			for _, e := range s.Entries {
				buf = append(buf, e.I, e.J,
					byte(e.Count), byte(e.Count>>8), byte(e.Count>>16), byte(e.Count>>24))
			}
		}
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Full)))
	for _, f := range m.Full {
		buf = binary.AppendUvarint(buf, uint64(f.G))
		buf = binary.AppendUvarint(buf, f.Total)
		buf = binary.AppendUvarint(buf, uint64(len(f.Counts)))
		for _, c := range f.Counts {
			buf = binary.LittleEndian.AppendUint32(buf, c)
		}
	}
	return buf
}

func decodeMatrixBatchMsg(data []byte) (filter.Payload, error) {
	r := wireReader{data: data}
	m := &MatrixBatchMsg{Chunk: int(r.uvarint("Chunk"))}
	m.Origins = r.box("Origins")
	m.G = int(r.uvarint("G"))
	flags := r.byte("flags")
	m.NoSkip = flags&wireBatchNoSkip != 0
	n := r.count("matrices")
	if r.err == nil && flags&wireBatchSparse != 0 {
		m.Sparse = make([]*glcm.Sparse, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			s := &glcm.Sparse{G: int(r.uvarint("Sparse.G")), Total: r.uvarint("Sparse.Total")}
			ne := r.count("Sparse.Entries")
			raw := r.bytes(6*ne, "Sparse.Entries")
			if r.err != nil {
				break
			}
			s.Entries = make([]glcm.Entry, ne)
			for j := range s.Entries {
				b := raw[6*j:]
				s.Entries[j] = glcm.Entry{I: b[0], J: b[1], Count: binary.LittleEndian.Uint32(b[2:6])}
			}
			m.Sparse = append(m.Sparse, s)
		}
	} else if r.err == nil {
		m.Full = make([]*glcm.Full, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			f := &glcm.Full{G: int(r.uvarint("Full.G")), Total: r.uvarint("Full.Total")}
			nc := r.count("Full.Counts")
			raw := r.bytes(4*nc, "Full.Counts")
			if r.err != nil {
				break
			}
			f.Counts = make([]uint32, nc)
			for j := range f.Counts {
				f.Counts[j] = binary.LittleEndian.Uint32(raw[4*j:])
			}
			m.Full = append(m.Full, f)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("MatrixBatchMsg: %w", r.err)
	}
	return m, nil
}

// WireID implements filter.WirePayload.
func (m *ParamMsg) WireID() byte { return wireParam }

// AppendWire implements filter.WirePayload.
func (m *ParamMsg) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Feature))
	buf = appendBox(buf, m.Box)
	buf = binary.AppendUvarint(buf, uint64(len(m.Values)))
	for _, v := range m.Values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeParamMsg(data []byte) (filter.Payload, error) {
	r := wireReader{data: data}
	m := &ParamMsg{Feature: features.Feature(r.uvarint("Feature"))}
	m.Box = r.box("Box")
	n := r.count("Values")
	raw := r.bytes(8*n, "Values")
	if r.err != nil {
		return nil, fmt.Errorf("ParamMsg: %w", r.err)
	}
	m.Values = make([]float64, n)
	for i := range m.Values {
		m.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return m, nil
}

package filters

import (
	"fmt"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// TextureConfig is shared by the texture analysis filters.
type TextureConfig struct {
	Analysis core.Config
	// RouteByFeature routes every ParamMsg explicitly to output copy
	// (feature index mod copies) — required when the consumer is HIC, whose
	// copies each stitch complete parameters. Leave false for transparent
	// USO/Collector copies.
	RouteByFeature bool
	// PacketsPerChunk is how many co-occurrence matrix packets HCC emits
	// per chunk (paper: a packet whenever a quarter of a chunk had been
	// processed). Default 4. Ignored by HMP/HPC.
	PacketsPerChunk int
}

func (c *TextureConfig) packets() int {
	if c.PacketsPerChunk <= 0 {
		return 4
	}
	return c.PacketsPerChunk
}

// sendParam emits a ParamMsg under the configured routing discipline.
func sendParam(ctx filter.Context, cfg *TextureConfig, m *ParamMsg) error {
	if cfg.RouteByFeature {
		copies := ctx.ConsumerCopies(PortOut)
		if copies == 0 {
			return fmt.Errorf("filters: %s output not connected", ctx.FilterName())
		}
		return ctx.SendTo(PortOut, int(m.Feature)%copies, m)
	}
	return ctx.Send(PortOut, m)
}

// NewHMP returns the HaralickMatrixProducer factory: the combined texture
// filter that computes the co-occurrence matrix and all selected Haralick
// parameters for every ROI of each incoming chunk, emitting one ParamMsg
// per parameter per chunk.
func NewHMP(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				chunk, okType := m.Payload.(*ChunkMsg)
				if !okType {
					return fmt.Errorf("filters: HMP received %T", m.Payload)
				}
				regions, err := core.AnalyzeRegion(chunk.Region, chunk.Origins, &acfg, nil)
				if err != nil {
					return err
				}
				for i, fr := range regions {
					out := &ParamMsg{Feature: acfg.Features[i], Box: fr.Box, Values: fr.Data}
					if err := sendParam(ctx, &cfg, out); err != nil {
						return err
					}
				}
			}
		})
	}
}

// NewHCC returns the HaralickCoMatrixCalculator factory: the first half of
// the split implementation. For each chunk it rasters the ROI origins,
// computes one co-occurrence matrix per ROI in the configured
// representation, and ships them to the HPC filters in packets covering a
// fraction of the chunk.
func NewHCC(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			sparse := acfg.Representation == core.SparseMatrix
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				chunk, okType := m.Payload.(*ChunkMsg)
				if !okType {
					return fmt.Errorf("filters: HCC received %T", m.Payload)
				}
				for _, sub := range SplitBox(chunk.Origins, cfg.packets()) {
					batch := &MatrixBatchMsg{
						Chunk:   chunk.Chunk,
						Origins: sub,
						G:       acfg.GrayLevels,
						NoSkip:  acfg.Representation == core.FullMatrixNoSkip,
					}
					var err error
					if sparse {
						batch.Sparse, err = core.SparseBatch(chunk.Region, sub, &acfg, nil)
					} else {
						batch.Full, err = core.FullBatch(chunk.Region, sub, &acfg, nil)
					}
					if err != nil {
						return err
					}
					if err := ctx.Send(PortOut, batch); err != nil {
						return err
					}
				}
			}
		})
	}
}

// NewHPC returns the HaralickParameterCalculator factory: the second half
// of the split implementation. It computes every selected Haralick
// parameter from each matrix of each incoming packet — directly from the
// sparse form when the matrices arrive sparse — and emits one ParamMsg per
// parameter per packet.
func NewHPC(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			calc := features.NewCalculator(acfg.GrayLevels, acfg.Features)
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				batch, okType := m.Payload.(*MatrixBatchMsg)
				if !okType {
					return fmt.Errorf("filters: HPC received %T", m.Payload)
				}
				n := batch.Origins.NumVoxels()
				if len(batch.Sparse) != n && len(batch.Full) != n {
					return fmt.Errorf("filters: packet for %v has %d+%d matrices, want %d",
						batch.Origins, len(batch.Sparse), len(batch.Full), n)
				}
				outs := make([]*volume.FloatRegion, len(acfg.Features))
				for i := range outs {
					outs[i] = volume.NewFloatRegion(batch.Origins)
				}
				for k := 0; k < n; k++ {
					var vals []float64
					var err error
					if batch.Sparse != nil {
						vals, err = calc.FromSparse(batch.Sparse[k])
					} else {
						vals, err = calc.FromFull(batch.Full[k], !batch.NoSkip)
					}
					if err != nil {
						return err
					}
					for i, v := range vals {
						outs[i].Data[k] = v
					}
				}
				for i, fr := range outs {
					out := &ParamMsg{Feature: acfg.Features[i], Box: fr.Box, Values: fr.Data}
					if err := sendParam(ctx, &cfg, out); err != nil {
						return err
					}
				}
			}
		})
	}
}

package filters

import (
	"fmt"

	"haralick4d/internal/autotune"
	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/volume"
)

// defaultPacketsPerChunk is the paper's packetization: a packet whenever a
// quarter of a chunk has been processed.
const defaultPacketsPerChunk = 4

// TextureConfig is shared by the texture analysis filters.
type TextureConfig struct {
	Analysis core.Config
	// RouteByFeature routes every ParamMsg explicitly to output copy
	// (feature index mod copies) — required when the consumer is HIC, whose
	// copies each stitch complete parameters. Leave false for transparent
	// USO/Collector copies.
	RouteByFeature bool
	// PacketsPerChunk is how many co-occurrence matrix packets HCC emits
	// per chunk. Zero selects the default (4); negative values are rejected
	// by Validate. Ignored by HMP/HPC.
	PacketsPerChunk int
	// Admission, when set, gates each chunk's compute behind a token from
	// this live-resizable semaphore shared across the filter's copies —
	// the autotune controller's concurrency-shedding knob. Admission only
	// reorders when copies compute, never what they compute, so outputs
	// are unchanged. Nil admits everything at no cost.
	Admission *autotune.Tokens
}

// Validate checks the filter-level knobs. The embedded Analysis config is
// validated separately by each filter on its private copy (core.Config
// validation fills defaults in place).
func (c *TextureConfig) Validate() error {
	if c.PacketsPerChunk < 0 {
		return fmt.Errorf("filters: PacketsPerChunk %d must be >= 0 (0 selects the default %d)",
			c.PacketsPerChunk, defaultPacketsPerChunk)
	}
	return nil
}

func (c *TextureConfig) packets() int {
	if c.PacketsPerChunk == 0 {
		return defaultPacketsPerChunk
	}
	return c.PacketsPerChunk
}

// sendParam emits a ParamMsg under the configured routing discipline.
//
// Routing invariant: with RouteByFeature set, every message for a given
// feature — from every producer copy — lands on the same consumer copy
// (feature index mod copies). HIC depends on this: each of its copies
// counts the voxels it has stitched per feature and emits the assembled
// dataset when the count completes, so splitting one feature's portions
// across copies would deadlock the assembly. Without RouteByFeature the
// engine picks any consumer copy, which is only correct for sinks whose
// copies share state (Collector) or keep per-feature files apart (USO).
func sendParam(ctx filter.Context, cfg *TextureConfig, m *ParamMsg) error {
	if cfg.RouteByFeature {
		copies := ctx.ConsumerCopies(PortOut)
		if copies == 0 {
			return fmt.Errorf("filters: %s output not connected", ctx.FilterName())
		}
		return ctx.SendTo(PortOut, int(m.Feature)%copies, m)
	}
	return ctx.Send(PortOut, m)
}

// NewHMP returns the HaralickMatrixProducer factory: the combined texture
// filter that computes the co-occurrence matrix and all selected Haralick
// parameters for every ROI of each incoming chunk, emitting one ParamMsg
// per parameter per chunk. With Analysis.Workers resolving above one, each
// chunk's ROI rows are striped across an intra-filter worker pool
// (core.AnalyzeRegionInto); output values are bit-identical either way.
func NewHMP(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			if err := cfg.Validate(); err != nil {
				return err
			}
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			// Persistent output-region headers; the float backing is leased
			// from the pool per chunk and rides out inside the ParamMsgs.
			outs := make([]*volume.FloatRegion, len(acfg.Features))
			for i := range outs {
				outs[i] = &volume.FloatRegion{}
			}
			stop := runContext(ctx).Done()
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					if err := forwardDegraded(ctx, &cfg, dm); err != nil {
						return err
					}
					continue
				}
				chunk, okType := m.Payload.(*ChunkMsg)
				if !okType {
					return fmt.Errorf("filters: HMP received %T", m.Payload)
				}
				met := ctx.Metrics()
				n := chunk.Origins.NumVoxels()
				for i := range outs {
					outs[i].Box = chunk.Origins
					outs[i].Data = getFloats(n, met)
				}
				if !cfg.Admission.Acquire(stop) {
					return nil // the run is aborting
				}
				sp := met.StartCompute()
				err := core.AnalyzeRegionInto(chunk.Region, chunk.Origins, &acfg, nil, outs)
				sp.End()
				cfg.Admission.Release()
				if err != nil {
					return err
				}
				emit := met.StartEmit()
				for i, fr := range outs {
					out := newParamMsg(acfg.Features[i], fr.Box, fr.Data)
					fr.Data = nil // ownership moves to the message
					if err := sendParam(ctx, &cfg, out); err != nil {
						return err
					}
				}
				emit.End()
			}
		})
	}
}

// NewHCC returns the HaralickCoMatrixCalculator factory: the first half of
// the split implementation. For each chunk it rasters the ROI origins,
// computes one co-occurrence matrix per ROI in the configured
// representation, and ships them to the HPC filters in packets covering a
// fraction of the chunk. Packet containers are pooled: the consumer's
// Recycle returns each batch's arenas for the next chunk.
func NewHCC(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			if err := cfg.Validate(); err != nil {
				return err
			}
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			sparse := acfg.Representation == core.SparseMatrix
			stop := runContext(ctx).Done()
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					// One notice per degraded chunk — no packet split; the
					// HPC side forwards it on unchanged.
					if err := ctx.Send(PortOut, dm); err != nil {
						return err
					}
					continue
				}
				chunk, okType := m.Payload.(*ChunkMsg)
				if !okType {
					return fmt.Errorf("filters: HCC received %T", m.Payload)
				}
				met := ctx.Metrics()
				for _, sub := range SplitBox(chunk.Origins, cfg.packets()) {
					scratch := getBatchScratch(met)
					if !cfg.Admission.Acquire(stop) {
						return nil // the run is aborting
					}
					sp := met.StartCompute()
					var err error
					if sparse {
						err = core.SparseBatchInto(chunk.Region, sub, &acfg, nil, scratch)
					} else {
						err = core.FullBatchInto(chunk.Region, sub, &acfg, nil, scratch)
					}
					sp.End()
					cfg.Admission.Release()
					if err != nil {
						return err
					}
					batch := newMatrixBatchMsg(chunk.Chunk, sub, acfg.GrayLevels,
						acfg.Representation == core.FullMatrixNoSkip, scratch)
					emit := met.StartEmit()
					err = ctx.Send(PortOut, batch)
					emit.End()
					if err != nil {
						return err
					}
				}
			}
		})
	}
}

// NewHPC returns the HaralickParameterCalculator factory: the second half
// of the split implementation. It computes every selected Haralick
// parameter from each matrix of each incoming packet — directly from the
// sparse form when the matrices arrive sparse — and emits one ParamMsg per
// parameter per packet, recycling the packet afterwards.
func NewHPC(cfg TextureConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			if err := cfg.Validate(); err != nil {
				return err
			}
			acfg := cfg.Analysis
			if err := acfg.Validate(); err != nil {
				return err
			}
			calc := features.NewCalculator(acfg.GrayLevels, acfg.Features)
			outs := make([]*volume.FloatRegion, len(acfg.Features))
			for i := range outs {
				outs[i] = &volume.FloatRegion{}
			}
			stop := runContext(ctx).Done()
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				if dm, isDegraded := m.Payload.(*DegradedChunkMsg); isDegraded {
					if err := forwardDegraded(ctx, &cfg, dm); err != nil {
						return err
					}
					continue
				}
				batch, okType := m.Payload.(*MatrixBatchMsg)
				if !okType {
					return fmt.Errorf("filters: HPC received %T", m.Payload)
				}
				met := ctx.Metrics()
				n := batch.Origins.NumVoxels()
				if len(batch.Sparse) != n && len(batch.Full) != n {
					return fmt.Errorf("filters: packet for %v has %d+%d matrices, want %d",
						batch.Origins, len(batch.Sparse), len(batch.Full), n)
				}
				for i := range outs {
					outs[i].Box = batch.Origins
					outs[i].Data = getFloats(n, met)
				}
				if !cfg.Admission.Acquire(stop) {
					return nil // the run is aborting
				}
				sp := met.StartCompute()
				for k := 0; k < n; k++ {
					var vals []float64
					var err error
					if batch.Sparse != nil {
						vals, err = calc.FromSparse(batch.Sparse[k])
					} else {
						vals, err = calc.FromFull(batch.Full[k], !batch.NoSkip)
					}
					if err != nil {
						cfg.Admission.Release()
						return err
					}
					for i, v := range vals {
						outs[i].Data[k] = v
					}
				}
				sp.End()
				cfg.Admission.Release()
				emit := met.StartEmit()
				for i, fr := range outs {
					out := newParamMsg(acfg.Features[i], fr.Box, fr.Data)
					fr.Data = nil
					if err := sendParam(ctx, &cfg, out); err != nil {
						return err
					}
				}
				emit.End()
				batch.Recycle()
			}
		})
	}
}

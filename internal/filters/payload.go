// Package filters implements the paper's eight concrete filters (§4.3):
//
//	input:    RFR (RAWFileReader), IIC (InputImageConstructor)
//	texture:  HMP (HaralickMatrixProducer),
//	          HCC (HaralickCoMatrixCalculator), HPC (HaralickParameterCalculator)
//	output:   USO (UnstitchedOutput), HIC (HaralickImageConstructor),
//	          JIW (JPGImageWriter)
//
// plus two auxiliaries that the paper's toolkit would provide out of band: a
// GridSource for in-memory datasets and a Collector that assembles results
// in memory for verification and library use.
//
// All filters are engine-agnostic: the same code runs under the local
// goroutine engine, the loopback-TCP engine and the simulated-cluster
// engine.
package filters

import (
	"encoding/gob"
	"fmt"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/glcm"
	"haralick4d/internal/volume"
)

// Standard port names used by every pipeline composition.
const (
	PortOut = "out"
	PortIn  = "in"
)

// PieceMsg carries a rectangular fragment of requantized image data from an
// RFR copy to the IIC copy assembling the texture chunk it belongs to.
type PieceMsg struct {
	Chunk  int // texture-chunk index this piece contributes to
	Region *volume.Region
}

// SizeBytes implements filter.Payload.
func (m *PieceMsg) SizeBytes() int { return 16 + m.Region.SizeBytes() }

// ChunkMsg is one complete IIC-to-TEXTURE chunk: the voxel region (with ROI
// halo) plus the box of ROI origins the receiving texture filter must
// process.
type ChunkMsg struct {
	Chunk   int
	Origins volume.Box
	Region  *volume.Region
}

// SizeBytes implements filter.Payload.
func (m *ChunkMsg) SizeBytes() int { return 80 + m.Region.SizeBytes() }

// MatrixBatchMsg is a packet of co-occurrence matrices from an HCC copy to
// the HPC filters, one matrix per ROI origin of Origins in raster order.
// Exactly one of Sparse/Full is populated, matching the configured
// representation; the sparse form is dramatically smaller on the wire,
// which is the paper's case for it in the split implementation.
type MatrixBatchMsg struct {
	Chunk   int
	Origins volume.Box
	G       int
	Sparse  []*glcm.Sparse
	Full    []*glcm.Full
	NoSkip  bool // full-matrix parameter calculation without the zero test

	// scratch is the pooled container whose arenas the matrices alias.
	// Local-engine only (gob skips it); returned to the pool by Recycle.
	scratch *core.MatrixBatch
}

// SizeBytes implements filter.Payload.
func (m *MatrixBatchMsg) SizeBytes() int {
	n := 96
	for _, s := range m.Sparse {
		n += s.SizeBytes()
	}
	for _, f := range m.Full {
		n += 16 + 4*len(f.Counts)
	}
	return n
}

// ParamMsg carries computed values of one Haralick parameter for the ROI
// origins of Box (raster order) from a texture filter to an output filter.
type ParamMsg struct {
	Feature features.Feature
	Box     volume.Box
	Values  []float64
}

// SizeBytes implements filter.Payload.
func (m *ParamMsg) SizeBytes() int { return 72 + 8*len(m.Values) }

// Validate checks the value count matches the box.
func (m *ParamMsg) Validate() error {
	if want := m.Box.NumVoxels(); len(m.Values) != want {
		return fmt.Errorf("filters: ParamMsg for %v has %d values, box holds %d", m.Feature, len(m.Values), want)
	}
	return nil
}

// AssembledMsg is one fully stitched 4D output dataset for a single
// Haralick parameter, sent from HIC to JIW together with the value range
// needed for normalization.
type AssembledMsg struct {
	Feature  features.Feature
	Grid     *volume.FloatGrid
	Min, Max float64
}

// SizeBytes implements filter.Payload.
func (m *AssembledMsg) SizeBytes() int { return 96 + 8*len(m.Grid.Data) }

func init() {
	gob.Register(&PieceMsg{})
	gob.Register(&ChunkMsg{})
	gob.Register(&MatrixBatchMsg{})
	gob.Register(&ParamMsg{})
	gob.Register(&AssembledMsg{})
}

// SplitBox partitions a box into at most n sub-boxes along its longest
// dimension, preserving raster completeness (used by HCC to emit a packet
// of co-occurrence matrices "whenever [a fraction] of a chunk had been
// processed"). It returns at least one box; fewer than n when the longest
// dimension is shorter than n.
func SplitBox(b volume.Box, n int) []volume.Box {
	if n < 1 {
		n = 1
	}
	shape := b.Shape()
	dim, best := 0, 0
	for k := 0; k < 4; k++ {
		if shape[k] > best {
			dim, best = k, shape[k]
		}
	}
	if best == 0 {
		return nil
	}
	if n > best {
		n = best
	}
	out := make([]volume.Box, 0, n)
	for i := 0; i < n; i++ {
		lo := b.Lo[dim] + i*best/n
		hi := b.Lo[dim] + (i+1)*best/n
		sub := b
		sub.Lo[dim] = lo
		sub.Hi[dim] = hi
		out = append(out, sub)
	}
	return out
}

package filters

import (
	"context"
	"errors"
	"fmt"

	"haralick4d/internal/dataset"
	"haralick4d/internal/fault"
	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
	"haralick4d/internal/readahead"
	"haralick4d/internal/volume"
)

// runContext returns the engine run's context when the engine exposes one
// (the in-process engines cancel it on abort, so backend reads — local,
// in-memory or HTTP — unblock promptly), falling back to the background
// context on engines that don't (the simulation). Discovered by type
// assertion, the same optional-capability idiom as Aborting.
func runContext(ctx filter.Context) context.Context {
	if rc, ok := ctx.(interface{ RunContext() context.Context }); ok {
		return rc.RunContext()
	}
	return context.Background()
}

// chunkOwnerIIC returns the IIC copy responsible for assembling the given
// texture chunk: chunks are dealt round-robin across the explicit IIC
// copies (paper §5.2, "round robin distribution of RFR-to-IIC chunks across
// multiple copies of the IIC filter").
func chunkOwnerIIC(chunk, iicCopies int) int { return chunk % iicCopies }

// RFRConfig configures the RAWFileReader filter. One RFR copy runs per
// storage node; copy index i serves storage node i.
type RFRConfig struct {
	Store   *dataset.Store
	Chunker *volume.Chunker
	// GrayLevels requantizes pixels during the read using the dataset's
	// global min/max, so only 1-byte gray levels travel the streams.
	GrayLevels int
	// IOChunk is the (x, y) window read per positioned I/O; {0, 0} reads
	// whole slices ("a RFR filter can read one image slice without any disk
	// seek operations").
	IOChunk [2]int
	// ReadAhead is the number of I/O windows a small worker pool fetches
	// (positioned reads + requantization) ahead of the emit loop. 0 reads
	// synchronously, reproducing the un-staged reader exactly.
	ReadAhead int
	// ReadAheadGate, when set, overrides ReadAhead with a live-resizable
	// prefetch budget shared by every RFR copy — the autotune controller's
	// actuation point. The gate only changes how far reads run ahead;
	// emission order and content are untouched.
	ReadAheadGate *readahead.Gate
	// FaultPolicy selects what a failed slice read does: fault.FailFast
	// (zero value) aborts the run with the read error; fault.SkipDegraded
	// replaces the lost window with DegradedPieceMsg notices so the rest of
	// the dataset still completes. Only dataset.ErrDegradedData failures are
	// skippable — programming errors always abort.
	FaultPolicy fault.Policy
	// Skip lists texture chunks whose outputs a resumed run already holds
	// (recovered from the checkpoint journal): pieces feeding only skipped
	// chunks are never read, and no piece of a skipped chunk is emitted, so
	// downstream assembly sees exactly the unfinished remainder.
	Skip map[int]bool
}

// ioWindow is one read unit of the reader filters: a 2D sub-window of one
// slice.
type ioWindow struct {
	ref            dataset.SliceRef
	x0, x1, y0, y1 int
}

// NewRFR returns the RFR factory. The filter reads the 2D slices owned by
// its storage node through the read-ahead stage, requantizes them off the
// emit path, cuts each I/O window into the pieces needed by each
// intersecting texture chunk (found via the chunker's precomputed per-slice
// lists), and routes every piece explicitly to the IIC copy that assembles
// that chunk.
func NewRFR(cfg RFRConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			st := cfg.Store
			meta := &st.Meta
			rctx := runContext(ctx)
			iicCopies := ctx.ConsumerCopies(PortOut)
			if iicCopies == 0 {
				return fmt.Errorf("filters: RFR output not connected")
			}
			refs, err := st.NodeIndexContext(rctx, ctx.CopyIndex())
			if err != nil {
				return err
			}
			X, Y := meta.Dims[0], meta.Dims[1]
			iox, ioy := cfg.IOChunk[0], cfg.IOChunk[1]
			if iox <= 0 || iox > X {
				iox = X
			}
			if ioy <= 0 || ioy > Y {
				ioy = Y
			}
			met := ctx.Metrics()
			// A window feeding only chunks the resume skip-set covers is
			// dropped before it reaches the read stage: resuming near the end
			// of a dataset re-reads almost nothing.
			needed := func(w ioWindow) bool {
				if len(cfg.Skip) == 0 {
					return true
				}
				box := volume.Box{
					Lo: [4]int{w.x0, w.y0, w.ref.Z, w.ref.T},
					Hi: [4]int{w.x1, w.y1, w.ref.Z + 1, w.ref.T + 1},
				}
				for _, ch := range cfg.Chunker.SliceChunks(w.ref.Z, w.ref.T) {
					if cfg.Skip[ch.Index] {
						continue
					}
					if _, ok := ch.Voxels.Intersect(box); ok {
						return true
					}
				}
				return false
			}
			var windows []ioWindow
			for _, ref := range refs {
				for y0 := 0; y0 < Y; y0 += ioy {
					for x0 := 0; x0 < X; x0 += iox {
						w := ioWindow{ref: ref, x0: x0, x1: min(x0+iox, X), y0: y0, y1: min(y0+ioy, Y)}
						if needed(w) {
							windows = append(windows, w)
						}
					}
				}
			}
			// fetch runs on the read-ahead workers (or inline when
			// ReadAhead is 0): one positioned read plus the uint16→gray
			// decode, into a pooled window region the emit loop recycles.
			// Whole-slice windows go through ReadSliceInto, which verifies
			// the per-slice checksum when the index carries one; sub-slice
			// windows read rows positionally and catch truncation but not
			// bit flips.
			fetch := func(i int) (*volume.Region, error) {
				w := windows[i]
				sp := met.StartRead()
				defer sp.End()
				raw := getU16((w.x1 - w.x0) * (w.y1 - w.y0))
				defer putU16(raw)
				var err error
				if w.x0 == 0 && w.x1 == X && w.y0 == 0 && w.y1 == Y {
					err = st.ReadSliceIntoContext(rctx, ctx.CopyIndex(), w.ref, raw)
				} else {
					err = st.ReadSliceRegionIntoContext(rctx, ctx.CopyIndex(), w.ref, w.x0, w.x1, w.y0, w.y1, raw)
				}
				if err != nil {
					return nil, err
				}
				window := getRegion(volume.Box{
					Lo: [4]int{w.x0, w.y0, w.ref.Z, w.ref.T},
					Hi: [4]int{w.x1, w.y1, w.ref.Z + 1, w.ref.T + 1},
				}, met)
				for i, v := range raw {
					window.Data[i] = volume.QuantizeValue(v, cfg.GrayLevels, meta.Min, meta.Max)
				}
				return window, nil
			}
			var ra *readahead.Reader[*volume.Region]
			if cfg.ReadAheadGate != nil {
				ra = readahead.NewGated(fetch, len(windows), cfg.ReadAheadGate)
			} else {
				ra = readahead.New(fetch, len(windows), cfg.ReadAhead)
			}
			defer ra.Close()
			async := cfg.ReadAheadGate != nil || cfg.ReadAhead > 0
			for i := range windows {
				var wait metrics.Span
				if async {
					wait = met.StartReadWait()
				}
				window, err, ok := ra.Next()
				wait.End()
				if !ok {
					break // closed mid-stream; the engine is aborting
				}
				if err != nil {
					w := windows[i]
					if cfg.FaultPolicy != fault.SkipDegraded || !errors.Is(err, dataset.ErrDegradedData) {
						return err
					}
					box := volume.Box{
						Lo: [4]int{w.x0, w.y0, w.ref.Z, w.ref.T},
						Hi: [4]int{w.x1, w.y1, w.ref.Z + 1, w.ref.T + 1},
					}
					if err := emitDegraded(ctx, cfg.Chunker, w.ref.Z, w.ref.T,
						dataset.SliceID(meta, w.ref.Z, w.ref.T), box, iicCopies, cfg.Skip); err != nil {
						return err
					}
					continue
				}
				if err := emitPieces(ctx, cfg.Chunker, windows[i].ref.Z, windows[i].ref.T, window, iicCopies, cfg.Skip); err != nil {
					return err
				}
				putRegion(window)
			}
			return nil
		})
	}
}

// emitPieces cuts a filled window into the pieces needed by each texture
// chunk intersecting its slice plane and routes each to the IIC copy owning
// that chunk, dropping chunks in the resume skip-set. Shared by RFR and
// DFR.
func emitPieces(ctx filter.Context, chunker *volume.Chunker, z, t int, window *volume.Region, iicCopies int, skip map[int]bool) error {
	met := ctx.Metrics()
	for _, ch := range chunker.SliceChunks(z, t) {
		if skip[ch.Index] {
			continue
		}
		inter, ok := ch.Voxels.Intersect(window.Box)
		if !ok {
			continue
		}
		piece := getRegion(inter, met)
		piece.CopyFrom(window)
		msg := newPieceMsg(ch.Index, piece)
		emit := met.StartEmit()
		err := ctx.SendTo(PortOut, chunkOwnerIIC(ch.Index, iicCopies), msg)
		emit.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// IICConfig configures the InputImageConstructor filter.
type IICConfig struct {
	Chunker *volume.Chunker
}

// NewIIC returns the IIC factory. Each copy places incoming image pieces
// into temporary chunk buffers; once all data elements of a chunk have been
// received, the complete IIC-to-TEXTURE chunk is sent to the texture
// analysis filters.
func NewIIC(cfg IICConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			type assembly struct {
				region    *volume.Region // nil until the first real piece arrives
				remaining int
				degraded  []int // slice ids lost to degraded reads (may repeat)
			}
			pending := map[int]*assembly{}
			done := map[int]bool{}
			for {
				m, ok := ctx.Recv()
				if !ok {
					break
				}
				var chunkIdx int
				switch p := m.Payload.(type) {
				case *PieceMsg:
					chunkIdx = p.Chunk
				case *DegradedPieceMsg:
					chunkIdx = p.Chunk
				default:
					return fmt.Errorf("filters: IIC received %T", m.Payload)
				}
				if owner := chunkOwnerIIC(chunkIdx, ctx.NumCopies()); owner != ctx.CopyIndex() {
					return fmt.Errorf("filters: chunk %d piece routed to IIC copy %d, owner is %d",
						chunkIdx, ctx.CopyIndex(), owner)
				}
				if done[chunkIdx] {
					return fmt.Errorf("filters: chunk %d received data after completion", chunkIdx)
				}
				met := ctx.Metrics()
				sp := met.StartAssemble()
				ch := cfg.Chunker.Chunk(chunkIdx)
				a := pending[chunkIdx]
				if a == nil {
					a = &assembly{remaining: ch.Voxels.NumVoxels()}
					pending[chunkIdx] = a
				}
				switch p := m.Payload.(type) {
				case *PieceMsg:
					if a.region == nil {
						a.region = volume.NewRegion(ch.Voxels)
					}
					a.remaining -= a.region.CopyFrom(p.Region)
					p.Recycle()
				case *DegradedPieceMsg:
					// The reader windows are disjoint, so a lost window's
					// voxels were counted exactly once and never also arrive
					// as data; the accounting stays exact without them.
					a.remaining -= p.Box.NumVoxels()
					a.degraded = append(a.degraded, p.Slice)
				}
				sp.End()
				if a.remaining < 0 {
					return fmt.Errorf("filters: chunk %d received overlapping pieces", chunkIdx)
				}
				if a.remaining == 0 {
					var out filter.Payload
					if len(a.degraded) > 0 {
						// Any lost input poisons the whole chunk: texture
						// windows cross piece boundaries, so partial data
						// cannot produce trustworthy parameters.
						out = &DegradedChunkMsg{Chunk: chunkIdx, Origins: ch.Origins, Slices: dedupSlices(a.degraded)}
					} else {
						out = &ChunkMsg{Chunk: chunkIdx, Origins: ch.Origins, Region: a.region}
					}
					emit := met.StartEmit()
					err := ctx.Send(PortOut, out)
					emit.End()
					if err != nil {
						return err
					}
					delete(pending, chunkIdx)
					done[chunkIdx] = true
				}
			}
			if len(pending) != 0 {
				return fmt.Errorf("filters: IIC copy %d ended with %d incomplete chunks", ctx.CopyIndex(), len(pending))
			}
			return nil
		})
	}
}

// GridSourceConfig configures the in-memory dataset source used when the
// data already resides in memory (the paper's footnote-1 optimization) or
// in library/API use.
type GridSourceConfig struct {
	Grid    *volume.Grid
	Chunker *volume.Chunker
	// Skip lists chunks whose outputs a resumed run already holds; they are
	// not emitted.
	Skip map[int]bool
}

// NewGridSource returns a source that emits complete IIC-to-TEXTURE chunks
// straight from an in-memory grid, bypassing RFR and IIC. Chunks are dealt
// across source copies so multiple copies partition the work.
func NewGridSource(cfg GridSourceConfig) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			met := ctx.Metrics()
			n := cfg.Chunker.Count()
			for i := ctx.CopyIndex(); i < n; i += ctx.NumCopies() {
				if cfg.Skip[i] {
					continue
				}
				ch := cfg.Chunker.Chunk(i)
				sp := met.StartRead()
				region := volume.ExtractRegion(cfg.Grid, ch.Voxels)
				sp.End()
				msg := &ChunkMsg{Chunk: ch.Index, Origins: ch.Origins, Region: region}
				emit := met.StartEmit()
				err := ctx.Send(PortOut, msg)
				emit.End()
				if err != nil {
					return err
				}
			}
			return nil
		})
	}
}

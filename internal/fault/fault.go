// Package fault provides deterministic, seedable fault injection for the
// filter-stream runtime's chaos tests: flaky/partial net.Conn wrappers for
// the TCP transport, corrupt/truncated/slow io.ReaderAt wrappers for the I/O
// layer, a flaky http.RoundTripper for the remote dataset backend,
// crash-at-Nth-buffer filter copies for the failover scheduler, and the
// degraded-read Policy shared by the reader filters and the façade.
//
// Every injector is deterministic given its construction parameters, so a
// chaos run with a fixed seed reproduces bit-identically under -race and in
// CI.
package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"haralick4d/internal/filter"
)

// Policy selects how the pipeline reacts to degraded data — corrupt,
// truncated or missing slices detected by the dataset store's checksums and
// size checks.
type Policy int

const (
	// FailFast aborts the run on the first degraded slice (the default; the
	// original behaviour).
	FailFast Policy = iota
	// SkipDegraded drops the affected chunks, completes the run over the
	// readable remainder, and reports the skipped slices and output regions
	// in the result's degraded summary.
	SkipDegraded
)

// String returns the policy's flag name.
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case SkipDegraded:
		return "skip-degraded"
	}
	return fmt.Sprintf("fault-policy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail-fast":
		return FailFast, nil
	case "skip-degraded", "skip":
		return SkipDegraded, nil
	}
	return 0, fmt.Errorf("fault: unknown fault policy %q", s)
}

// ErrInjected marks every failure produced by this package's injectors, so
// tests can tell an injected fault from a genuine one.
var ErrInjected = errors.New("fault: injected failure")

// FlakyConn wraps a net.Conn so its FailAt-th write fails after Partial
// bytes, and every later write fails immediately — a socket that broke and
// stays broken, forcing the sender to redial. Reads pass through until the
// connection breaks, after which they fail too (the peer would see a reset).
type FlakyConn struct {
	net.Conn
	// FailAt is the 1-based write call that fails; 0 never fails.
	FailAt int
	// Partial is how many bytes of the failing write reach the wire before
	// the error — exercising torn-frame recovery on the receiver.
	Partial int

	mu     sync.Mutex
	writes int
	broken bool
}

// Write implements net.Conn.
func (f *FlakyConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.broken {
		f.mu.Unlock()
		return 0, fmt.Errorf("write on broken conn: %w", ErrInjected)
	}
	f.writes++
	inject := f.FailAt > 0 && f.writes == f.FailAt
	if inject {
		f.broken = true
	}
	f.mu.Unlock()
	if !inject {
		return f.Conn.Write(p)
	}
	n := 0
	if f.Partial > 0 {
		cut := f.Partial
		if cut > len(p) {
			cut = len(p)
		}
		n, _ = f.Conn.Write(p[:cut])
	}
	f.Conn.Close() // the peer observes the break too
	return n, fmt.Errorf("write %d: %w", f.writes, ErrInjected)
}

// Broken reports whether the injected failure has fired.
func (f *FlakyConn) Broken() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broken
}

// CorruptReaderAt flips the byte at offset Off (XORed with Mask) in
// everything read through it — a silent single-byte disk corruption that
// only a checksum catches.
type CorruptReaderAt struct {
	R    io.ReaderAt
	Off  int64
	Mask byte // 0 selects 0xFF (full inversion)
}

// ReadAt implements io.ReaderAt.
func (c *CorruptReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.R.ReadAt(p, off)
	if i := c.Off - off; i >= 0 && i < int64(n) {
		mask := c.Mask
		if mask == 0 {
			mask = 0xFF
		}
		p[i] ^= mask
	}
	return n, err
}

// TruncatedReaderAt behaves as if the underlying data ends at N bytes: reads
// past the cut return io.EOF with a partial (or empty) result.
type TruncatedReaderAt struct {
	R io.ReaderAt
	N int64
}

// ReadAt implements io.ReaderAt.
func (t *TruncatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.N {
		return 0, io.EOF
	}
	if max := t.N - off; int64(len(p)) > max {
		n, err := t.R.ReadAt(p[:max], off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return t.R.ReadAt(p, off)
}

// SlowReaderAt delays every read by Delay — a straggling disk for
// read-ahead and timeout tests. It injects latency, never errors.
type SlowReaderAt struct {
	R     io.ReaderAt
	Delay time.Duration
}

// ReadAt implements io.ReaderAt.
func (s *SlowReaderAt) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(s.Delay)
	return s.R.ReadAt(p, off)
}

// FlakyTransport wraps an http.RoundTripper so a deterministic subset of
// requests fail with a transport error before reaching the server: every
// FailEvery-th request (counting from 1) dies. It exercises the HTTP dataset
// backend's retry budget — with FailEvery above 1 the backend's retries
// absorb every injected failure and the run completes bit-identically; with
// FailEvery 1 every attempt dies and reads surface
// dataset.ErrBackendUnavailable.
//
// The modulus schedule counts requests globally, so under concurrent reads
// the retries of one read can land on consecutive multiples of FailEvery and
// exhaust the attempt budget — a scheduling-dependent outcome. Chaos runs
// that must complete regardless of interleaving use FirstPerURL instead: the
// first request for each distinct URL fails and its retry always passes, so
// every object read exercises the retry path and none can run out of budget.
type FlakyTransport struct {
	// Inner handles the surviving requests; nil selects
	// http.DefaultTransport.
	Inner http.RoundTripper
	// FailEvery fails every n-th request; 0 never fails.
	FailEvery int
	// FirstPerURL fails the first request for each distinct URL (then lets
	// every later request for it through) instead of the FailEvery schedule.
	FirstPerURL bool

	calls atomic.Int64
	fails atomic.Int64
	seen  sync.Map // url -> struct{}{}
}

// RoundTrip implements http.RoundTripper.
func (f *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.calls.Add(1)
	if f.FirstPerURL {
		if _, loaded := f.seen.LoadOrStore(req.URL.String(), struct{}{}); !loaded {
			f.fails.Add(1)
			return nil, fmt.Errorf("request %d (first for %s): %w", n, req.URL, ErrInjected)
		}
	} else if f.FailEvery > 0 && n%int64(f.FailEvery) == 0 {
		f.fails.Add(1)
		return nil, fmt.Errorf("request %d: %w", n, ErrInjected)
	}
	inner := f.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// Calls reports how many requests have passed through the injector.
func (f *FlakyTransport) Calls() int64 { return f.calls.Load() }

// Failures reports how many requests the injector killed.
func (f *FlakyTransport) Failures() int64 { return f.fails.Load() }

// CrashAfter wraps a filter factory so that copy crashCopy panics
// immediately after receiving its n-th buffer — while the buffer is still
// un-acked and in flight, which is exactly what the failover scheduler must
// redeliver to a surviving copy. Other copies are returned unwrapped.
func CrashAfter(factory func(int) filter.Filter, crashCopy, n int) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		f := factory(copy)
		if copy != crashCopy {
			return f
		}
		return filter.Func(func(ctx filter.Context) error {
			return f.Run(&crashCtx{Context: ctx, at: n})
		})
	}
}

// crashCtx counts received buffers and panics on the at-th one.
type crashCtx struct {
	filter.Context
	at   int
	seen int
}

// Recv implements filter.Context.
func (c *crashCtx) Recv() (filter.Msg, bool) {
	m, ok := c.Context.Recv()
	if ok {
		c.seen++
		if c.seen >= c.at {
			panic(fmt.Sprintf("fault: injected crash of %s[%d] holding buffer %d",
				c.FilterName(), c.CopyIndex(), c.seen))
		}
	}
	return m, ok
}

// BlackoutTransport simulates a backend brownout on a request-count
// schedule: after StartAfter requests have been answered, every request
// fails with a transport error until FailN of them have died, then the
// backend recovers and serves normally again. Counting requests instead of
// wall-clock time keeps the fault window reproducible across machine speeds;
// with FailN set effectively infinite the blackout is permanent, which is
// how tests assert that a breaker + retry budget bound the total traffic
// sent into a dead backend.
type BlackoutTransport struct {
	// Inner handles surviving requests; nil selects http.DefaultTransport.
	Inner http.RoundTripper
	// StartAfter is how many requests are answered before the blackout
	// opens.
	StartAfter int64
	// FailN is how many requests die before the backend recovers.
	FailN int64

	oks   atomic.Int64
	fails atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (b *BlackoutTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if b.oks.Load() >= b.StartAfter && b.fails.Load() < b.FailN {
		n := b.fails.Add(1)
		if n <= b.FailN {
			return nil, fmt.Errorf("request during blackout (%d/%d): %w", n, b.FailN, ErrInjected)
		}
	}
	inner := b.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err == nil {
		b.oks.Add(1)
	}
	return resp, err
}

// OKs reports how many requests the backend answered. A final value above
// StartAfter proves requests succeeded after the blackout lifted.
func (b *BlackoutTransport) OKs() int64 { return b.oks.Load() }

// Failures reports how many requests the blackout killed.
func (b *BlackoutTransport) Failures() int64 { return b.fails.Load() }

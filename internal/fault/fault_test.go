package fault

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"haralick4d/internal/filter"
)

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{FailFast, SkipDegraded} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if p, err := ParsePolicy("skip"); err != nil || p != SkipDegraded {
		t.Error("skip alias broken")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// drained returns a net.Pipe endpoint whose peer discards everything, so
// writes never block.
func drained(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go io.Copy(io.Discard, b)
	return a
}

func TestFlakyConn(t *testing.T) {
	fc := &FlakyConn{Conn: drained(t), FailAt: 2, Partial: 3}
	if n, err := fc.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("first write: %d, %v", n, err)
	}
	if fc.Broken() {
		t.Fatal("broken before FailAt")
	}
	n, err := fc.Write([]byte("world!"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("partial write delivered %d bytes, want 3", n)
	}
	if !fc.Broken() {
		t.Fatal("not broken after FailAt")
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on broken conn err = %v, want ErrInjected", err)
	}
}

func TestFlakyConnNeverFails(t *testing.T) {
	fc := &FlakyConn{Conn: drained(t)}
	for i := 0; i < 10; i++ {
		if _, err := fc.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fc.Broken() {
		t.Fatal("FailAt 0 broke")
	}
}

func TestCorruptReaderAt(t *testing.T) {
	r := &CorruptReaderAt{R: strings.NewReader("abcdef"), Off: 2}
	buf := make([]byte, 6)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[2] != 'c'^0xFF || buf[0] != 'a' || buf[3] != 'd' {
		t.Fatalf("corrupted read = %q", buf)
	}
	// A read window not covering Off is untouched.
	if _, err := r.ReadAt(buf[:2], 3); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "de" {
		t.Fatalf("clean window = %q", buf[:2])
	}
}

func TestTruncatedReaderAt(t *testing.T) {
	r := &TruncatedReaderAt{R: strings.NewReader("abcdef"), N: 4}
	buf := make([]byte, 6)
	n, err := r.ReadAt(buf, 0)
	if n != 4 || err != io.EOF {
		t.Fatalf("read across cut: %d, %v", n, err)
	}
	if n, err := r.ReadAt(buf, 5); n != 0 || err != io.EOF {
		t.Fatalf("read past cut: %d, %v", n, err)
	}
	if n, err := r.ReadAt(buf[:2], 1); n != 2 || err != nil {
		t.Fatalf("read inside cut: %d, %v", n, err)
	}
}

// intMsg is a trivial payload for runtime chaos tests.
type intMsg int

func (intMsg) SizeBytes() int { return 8 }

func init() { gob.Register(intMsg(0)) }

// chaosGraph wires source(n) → work (3 copies, factory wrapped by the
// caller) → a shared-slice sink.
func chaosGraph(n int, workFactory func(int) filter.Filter, workNodes []int) (*filter.Graph, func() []int) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for i := 0; i < n; i++ {
				if err := ctx.Send("out", intMsg(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "work", Copies: 3, New: workFactory, Nodes: workNodes})
	var mu sync.Mutex
	var got []int
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				m, ok := ctx.Recv()
				if !ok {
					return nil
				}
				mu.Lock()
				got = append(got, int(m.Payload.(intMsg)))
				mu.Unlock()
			}
		})
	}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "work", ToPort: "in", Policy: filter.DemandDriven})
	g.Connect(filter.ConnSpec{From: "work", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
	return g, func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), got...)
	}
}

// forward relays every buffer unchanged.
func forward(int) filter.Filter {
	return filter.Func(func(ctx filter.Context) error {
		for {
			m, ok := ctx.Recv()
			if !ok {
				return nil
			}
			if err := ctx.Send("out", m.Payload); err != nil {
				return err
			}
		}
	})
}

func TestCrashAfterFailover(t *testing.T) {
	const n = 80
	g, got := chaosGraph(n, CrashAfter(forward, 1, 4), nil)
	if _, err := filter.RunLocal(g, &filter.Options{Failover: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	msgs := got()
	if len(msgs) != n {
		t.Fatalf("sink received %d buffers, want %d", len(msgs), n)
	}
	sort.Ints(msgs)
	for i, v := range msgs {
		if v != i {
			t.Fatalf("message %d delivered as %d: duplicates or loss", i, v)
		}
	}
}

func TestCrashAfterWithoutFailoverFails(t *testing.T) {
	g, _ := chaosGraph(80, CrashAfter(forward, 1, 4), nil)
	if _, err := filter.RunLocal(g, nil); err == nil {
		t.Fatal("injected crash absorbed without failover")
	}
}

func retryPolicy() *filter.RetryPolicy {
	return &filter.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		SendTimeout: 2 * time.Second,
		RecvTimeout: 2 * time.Second,
		Seed:        42,
	}
}

func TestFlakyTCPLinkWithRetry(t *testing.T) {
	const n = 40
	// Break the 7th write on every outbound node link; each redial gets a
	// fresh FlakyConn that breaks again, so the run only completes if the
	// sender keeps reconnecting and retransmitting.
	wrap := func(c net.Conn, from, to int) net.Conn {
		return &FlakyConn{Conn: c, FailAt: 7}
	}
	g, got := chaosGraph(n, forward, []int{0, 1, 2})
	rs, err := filter.RunTCP(g, &filter.Options{
		WireCodec: filter.CodecBinary,
		Failover:  true,
		Retry:     retryPolicy(),
		WrapConn:  wrap,
	})
	if err != nil {
		t.Fatalf("run with retry: %v", err)
	}
	msgs := got()
	if len(msgs) != n {
		t.Fatalf("sink received %d buffers, want %d", len(msgs), n)
	}
	sort.Ints(msgs)
	for i, v := range msgs {
		if v != i {
			t.Fatalf("message %d delivered as %d: duplicates or loss", i, v)
		}
	}
	if rs.Report == nil {
		t.Fatal("run report missing")
	}
	var retries, redials int64
	for _, c := range rs.Report.Network {
		retries += c.Retries
		redials += c.Redials
	}
	if retries == 0 || redials == 0 {
		t.Errorf("retries=%d redials=%d, want both > 0", retries, redials)
	}
}

func TestFlakyTCPLinkWithoutRetryFails(t *testing.T) {
	wrap := func(c net.Conn, from, to int) net.Conn {
		return &FlakyConn{Conn: c, FailAt: 7}
	}
	g, _ := chaosGraph(40, forward, []int{0, 1, 2})
	if _, err := filter.RunTCP(g, &filter.Options{WireCodec: filter.CodecBinary, WrapConn: wrap}); err == nil {
		t.Fatal("flaky link survived without a retry policy")
	}
}

package cluster

import (
	"testing"
	"time"

	"haralick4d/internal/filter"
)

// workerPair builds two independent source→sink pairs whose sinks burn CPU,
// with the two sinks placed on the given nodes.
func workerPair(sinkA, sinkB int, counts []int) *filter.Graph {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "srcA", Copies: 1, New: srcFilter(8, 1, 0), Nodes: []int{0}})
	g.AddFilter(filter.FilterSpec{Name: "srcB", Copies: 1, New: srcFilter(8, 1, 0), Nodes: []int{0}})
	g.AddFilter(filter.FilterSpec{Name: "sinkA", Copies: 1, New: sinkFilter(counts[:1], 2*time.Millisecond, nil), Nodes: []int{sinkA}})
	g.AddFilter(filter.FilterSpec{Name: "sinkB", Copies: 1, New: sinkFilter(counts[1:], 2*time.Millisecond, nil), Nodes: []int{sinkB}})
	g.Connect(filter.ConnSpec{From: "srcA", FromPort: "out", To: "sinkA", ToPort: "in", Policy: filter.RoundRobin})
	g.Connect(filter.ConnSpec{From: "srcB", FromPort: "out", To: "sinkB", ToPort: "in", Policy: filter.RoundRobin})
	return g
}

// Co-locating two busy filters on one single-CPU node must roughly double
// the elapsed time versus placing them on two nodes (CPU multiplexing,
// paper §5.2).
func TestCPUContentionOnSharedNode(t *testing.T) {
	topo := &Topology{
		Speeds: []float64{1, 1, 1},
		LinkOf: func(a, b int) Link { return Link{ID: b, MBPerSecond: 1000} },
	}
	shared, err := Run(workerPair(1, 1, make([]int, 2)), topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	separate, err := Run(workerPair(1, 2, make([]int, 2)), topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(shared.Elapsed) / float64(separate.Elapsed)
	if ratio < 1.5 {
		t.Errorf("co-located busy filters only %.2fx slower (%v vs %v)", ratio, shared.Elapsed, separate.Elapsed)
	}
}

// Two processors of a dual-CPU box must run concurrently (no CPU sharing)
// and exchange buffers for free.
func TestDualCPUBox(t *testing.T) {
	h := NewHeterogeneous([]ClusterSpec{
		{Name: "src", Nodes: 1, Speed: 1, Latency: time.Microsecond, MBps: 119},
		{Name: "duals", Nodes: 1, CPUs: 2, Speed: 1, Latency: time.Microsecond, MBps: 119},
	}, Link{Latency: time.Microsecond, MBPerSecond: 119})
	if h.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", h.NumNodes())
	}
	if h.BoxOf(1) != h.BoxOf(2) || h.BoxOf(0) == h.BoxOf(1) {
		t.Fatal("box assignment wrong")
	}
	intra := h.LinkOf(1, 2)
	if intra.Latency != 0 || intra.MBPerSecond != 0 {
		t.Errorf("intra-box link not free: %+v", intra)
	}
	// Same-box processors do not contend for CPU.
	counts := make([]int, 2)
	stats, err := Run(workerPair(1, 2, counts), &h.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameNode, err := Run(workerPair(1, 1, make([]int, 2)), &h.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sameNode.Elapsed)/float64(stats.Elapsed) < 1.5 {
		t.Errorf("dual-CPU box did not parallelize: box %v vs single cpu %v", stats.Elapsed, sameNode.Elapsed)
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Errorf("lost buffers: %v", counts)
	}
}

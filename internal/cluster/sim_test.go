package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"haralick4d/internal/filter"
)

type bytesPayload int

func (p bytesPayload) SizeBytes() int { return int(p) }

// burn spins the CPU for roughly d of host wall time, so compute charges are
// controllable in tests.
func burn(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// srcFilter emits n payloads of size bytes each.
func srcFilter(n, size int, work time.Duration) func(int) filter.Filter {
	return func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for i := 0; i < n; i++ {
				burn(work)
				if err := ctx.Send("out", bytesPayload(size)); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// sinkFilter consumes everything, burning work per buffer, and counts into
// the shared slice indexed by copy.
func sinkFilter(counts []int, work time.Duration, mu *sync.Mutex) func(int) filter.Filter {
	return func(copy int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			for {
				if _, ok := ctx.Recv(); !ok {
					return nil
				}
				burn(work)
				if mu != nil {
					mu.Lock()
				}
				counts[copy]++
				if mu != nil {
					mu.Unlock()
				}
			}
		})
	}
}

func pipelineGraph(n, size, consumers int, policy filter.Policy, srcNode int, sinkNodes []int, counts []int) *filter.Graph {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(n, size, 0), Nodes: []int{srcNode}})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: consumers, New: sinkFilter(counts, 0, nil), Nodes: sinkNodes})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: policy})
	return g
}

func TestSimDeliversEverything(t *testing.T) {
	counts := make([]int, 3)
	g := pipelineGraph(90, 100, 3, filter.RoundRobin, 0, []int{1, 2, 3}, counts)
	stats, err := Run(g, Uniform(4, 1, time.Millisecond, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range counts {
		total += c
		if c != 30 {
			t.Errorf("copy %d received %d, want 30 (round robin exact)", i, c)
		}
	}
	if total != 90 {
		t.Fatalf("total %d", total)
	}
	if stats.Elapsed <= 0 {
		t.Error("non-positive virtual elapsed time")
	}
	var in int64
	for _, c := range stats.Copies["sink"] {
		in += c.MsgsIn
	}
	if in != 90 {
		t.Errorf("stats MsgsIn = %d", in)
	}
}

func TestSimNetworkCostDominates(t *testing.T) {
	// 50 buffers × 1 MB over a 10 MB/s link must take ≥ 5 s of virtual
	// time; the same transfer co-located must be orders of magnitude less.
	counts := make([]int, 1)
	remote := pipelineGraph(50, 1<<20, 1, filter.RoundRobin, 0, []int{1}, counts)
	rs, err := Run(remote, Uniform(2, 1, 0, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Elapsed < 5*time.Second {
		t.Errorf("remote elapsed %v, want >= 5s", rs.Elapsed)
	}
	counts[0] = 0
	local := pipelineGraph(50, 1<<20, 1, filter.RoundRobin, 0, []int{0}, counts)
	ls, err := Run(local, Uniform(2, 1, 0, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Elapsed > rs.Elapsed/10 {
		t.Errorf("co-located elapsed %v not far below remote %v", ls.Elapsed, rs.Elapsed)
	}
}

func TestSimLatencyCharged(t *testing.T) {
	// One tiny buffer over a high-latency link: elapsed ≈ latency.
	counts := make([]int, 1)
	g := pipelineGraph(1, 1, 1, filter.RoundRobin, 0, []int{1}, counts)
	stats, err := Run(g, Uniform(2, 1, 500*time.Millisecond, 1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed < 500*time.Millisecond {
		t.Errorf("elapsed %v, want >= 500ms latency", stats.Elapsed)
	}
}

func TestSimSpeedScaling(t *testing.T) {
	// The same compute on a 8x-faster node should be several times cheaper
	// in virtual time.
	mkGraph := func(counts []int) *filter.Graph {
		g := filter.NewGraph()
		g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(5, 1, 0), Nodes: []int{0}})
		g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFilter(counts, 4*time.Millisecond, nil), Nodes: []int{1}})
		g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
		return g
	}
	slow, err := Run(mkGraph(make([]int, 1)), &Topology{
		Speeds: []float64{1, 1},
		LinkOf: func(a, b int) Link { return Link{ID: b, MBPerSecond: 1000} },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(mkGraph(make([]int, 1)), &Topology{
		Speeds: []float64{1, 8},
		LinkOf: func(a, b int) Link { return Link{ID: b, MBPerSecond: 1000} },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	slowT := slow.FilterCompute("sink")
	fastT := fast.FilterCompute("sink")
	if fastT <= 0 || slowT <= 0 {
		t.Fatalf("non-positive compute times %v, %v", slowT, fastT)
	}
	ratio := float64(slowT) / float64(fastT)
	if ratio < 3 {
		t.Errorf("speed-8 node only %.1fx faster in virtual time", ratio)
	}
}

func TestSimComputeScale(t *testing.T) {
	counts := make([]int, 1)
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(3, 1, 0)})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFilter(counts, 2*time.Millisecond, nil)})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
	base, err := Run(g, Uniform(1, 1, 0, 1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts[0] = 0
	g2 := filter.NewGraph()
	g2.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(3, 1, 0)})
	g2.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFilter(counts, 2*time.Millisecond, nil)})
	g2.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
	scaled, err := Run(g2, Uniform(1, 1, 0, 1000), &Options{ComputeScale: 10})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(scaled.FilterCompute("sink")) / float64(base.FilterCompute("sink"))
	if ratio < 4 {
		t.Errorf("ComputeScale=10 only scaled compute by %.1fx", ratio)
	}
}

func TestSimDemandDrivenBeatsRoundRobinHeterogeneous(t *testing.T) {
	// Two consumers, one on a 4x faster node. Demand-driven should finish
	// sooner than round-robin, which forces half the buffers to the slow
	// copy (paper Fig. 11).
	run := func(policy filter.Policy) time.Duration {
		counts := make([]int, 2)
		g := filter.NewGraph()
		g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(40, 1, 0), Nodes: []int{0}})
		g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 2, New: sinkFilter(counts, time.Millisecond, nil), Nodes: []int{1, 2}})
		g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: policy})
		topo := &Topology{
			Speeds: []float64{1, 1, 4},
			LinkOf: func(a, b int) Link { return Link{ID: b, MBPerSecond: 1000} },
		}
		stats, err := Run(g, topo, &Options{QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if counts[0]+counts[1] != 40 {
			t.Fatalf("lost buffers: %v", counts)
		}
		if policy == filter.DemandDriven && counts[1] <= counts[0] {
			t.Errorf("demand-driven did not favor the fast node: %v", counts)
		}
		return stats.Elapsed
	}
	rr := run(filter.RoundRobin)
	dd := run(filter.DemandDriven)
	if dd >= rr {
		t.Errorf("demand-driven (%v) not faster than round-robin (%v)", dd, rr)
	}
}

func TestSimSharedTrunkSerializes(t *testing.T) {
	// Two flows crossing the same trunk take ~2x the time of flows on
	// independent links.
	mk := func() (*filter.Graph, []int) {
		counts := make([]int, 2)
		g := filter.NewGraph()
		g.AddFilter(filter.FilterSpec{Name: "src", Copies: 2, New: srcFilter(20, 1<<20, 0), Nodes: []int{0, 1}})
		g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 2, New: sinkFilter(counts, 0, nil), Nodes: []int{2, 3}})
		g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
		return g, counts
	}
	shared := &Topology{
		Speeds: []float64{1, 1, 1, 1},
		LinkOf: func(a, b int) Link { return Link{ID: 99, MBPerSecond: 20} },
	}
	separate := &Topology{
		Speeds: []float64{1, 1, 1, 1},
		LinkOf: func(a, b int) Link { return Link{ID: a*4 + b, MBPerSecond: 20} },
	}
	g1, _ := mk()
	s1, err := Run(g1, shared, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := mk()
	s2, err := Run(g2, separate, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s1.Elapsed) / float64(s2.Elapsed)
	if ratio < 1.5 {
		t.Errorf("shared trunk only %.2fx slower (%v vs %v)", ratio, s1.Elapsed, s2.Elapsed)
	}
}

func TestSimDeadlockDetected(t *testing.T) {
	// Classic cyclic buffer exhaustion: both filters send more than the
	// queue depth before receiving.
	mk := func(name, peerPort string) func(int) filter.Filter {
		return func(int) filter.Filter {
			return filter.Func(func(ctx filter.Context) error {
				for i := 0; i < 5; i++ {
					if err := ctx.Send("out", bytesPayload(1)); err != nil {
						return err
					}
				}
				for {
					if _, ok := ctx.Recv(); !ok {
						return nil
					}
				}
			})
		}
	}
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "a", Copies: 1, New: mk("a", "in")})
	g.AddFilter(filter.FilterSpec{Name: "b", Copies: 1, New: mk("b", "in")})
	g.Connect(filter.ConnSpec{From: "a", FromPort: "out", To: "b", ToPort: "in", Policy: filter.RoundRobin})
	g.Connect(filter.ConnSpec{From: "b", FromPort: "out", To: "a", ToPort: "in", Policy: filter.RoundRobin})
	_, err := Run(g, Uniform(1, 1, 0, 1000), &Options{QueueDepth: 1})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("deadlock not detected: %v", err)
	}
}

func TestSimErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: srcFilter(1000, 10, 0), Nodes: []int{0}})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			ctx.Recv()
			return boom
		})
	}, Nodes: []int{1}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
	_, err := Run(g, Uniform(2, 1, 0, 1000), &Options{QueueDepth: 2})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want boom", err)
	}
}

func TestSimPanicSurfaces(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "p", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error { panic("kaboom") })
	}})
	_, err := Run(g, Uniform(1, 1, 0, 1000), nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not surfaced: %v", err)
	}
}

func TestSimExplicitRouting(t *testing.T) {
	counts := make([]int, 3)
	var mu sync.Mutex
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			if err := ctx.Send("out", bytesPayload(1)); err == nil {
				return errors.New("Send on explicit port succeeded")
			}
			for i := 0; i < 30; i++ {
				if err := ctx.SendTo("out", i%3, bytesPayload(1)); err != nil {
					return err
				}
			}
			return nil
		})
	}})
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 3, New: sinkFilter(counts, 0, &mu), Nodes: []int{0, 0, 0}})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.Explicit})
	if _, err := Run(g, Uniform(1, 1, 0, 1000), nil); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 10 {
			t.Errorf("copy %d got %d, want 10", i, c)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	topo := Uniform(2, 1, 0, 10)
	if err := topo.Validate(2); err != nil {
		t.Error(err)
	}
	if err := topo.Validate(3); err == nil {
		t.Error("too-small topology accepted")
	}
	bad := &Topology{Speeds: []float64{0}, LinkOf: topo.LinkOf}
	if err := bad.Validate(1); err == nil {
		t.Error("zero speed accepted")
	}
	noLink := &Topology{Speeds: []float64{1}}
	if err := noLink.Validate(1); err == nil {
		t.Error("missing link function accepted")
	}
}

func TestHeterogeneousTopology(t *testing.T) {
	h := NewHeterogeneous([]ClusterSpec{
		{Name: "piii", Nodes: 3, Speed: 1, Latency: time.Millisecond, MBps: 12},
		{Name: "xeon", Nodes: 2, Speed: 2.7, Latency: time.Microsecond, MBps: 119},
	}, Link{Latency: time.Millisecond, MBPerSecond: 12})
	if h.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", h.NumNodes())
	}
	if h.ClusterOf(0) != 0 || h.ClusterOf(4) != 1 {
		t.Error("ClusterOf wrong")
	}
	if nodes := h.NodesOf(1); len(nodes) != 2 || nodes[0] != 3 {
		t.Errorf("NodesOf = %v", nodes)
	}
	if h.Speeds[3] != 2.7 {
		t.Error("speed assignment wrong")
	}
	intra := h.LinkOf(0, 1)
	if intra.MBPerSecond != 12 || intra.ID != 1 {
		t.Errorf("intra link = %+v", intra)
	}
	inter1 := h.LinkOf(0, 3)
	inter2 := h.LinkOf(4, 2)
	if inter1.ID != inter2.ID {
		t.Error("cross-cluster links should share one trunk")
	}
	h.SetTrunk(0, 1, 0, 119)
	if h.LinkOf(0, 3).MBPerSecond != 119 {
		t.Error("SetTrunk did not apply")
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{MBPerSecond: 10}
	if got := l.transferTime(10 * 1e6); got != time.Second {
		t.Errorf("transferTime = %v, want 1s", got)
	}
	if (Link{}).transferTime(100) != 0 {
		t.Error("zero-bandwidth link should be free")
	}
}

func TestSimSendErrors(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			if err := ctx.Send("nowhere", bytesPayload(1)); err == nil {
				return errors.New("unconnected port accepted")
			}
			if err := ctx.SendTo("nowhere", 0, bytesPayload(1)); err == nil {
				return errors.New("unconnected SendTo accepted")
			}
			if err := ctx.Send("out", nil); err == nil {
				return errors.New("nil payload accepted")
			}
			if err := ctx.SendTo("out", -1, bytesPayload(1)); err == nil {
				return errors.New("negative copy accepted")
			}
			if ctx.ConsumerCopies("nowhere") != 0 {
				return errors.New("phantom consumers")
			}
			if ctx.FilterName() != "src" || ctx.CopyIndex() != 0 || ctx.NumCopies() != 1 || ctx.Node() != 0 {
				return errors.New("identity accessors wrong")
			}
			return ctx.Send("out", bytesPayload(1))
		})
	}})
	counts := make([]int, 1)
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFilter(counts, 0, nil)})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.RoundRobin})
	if _, err := Run(g, Uniform(1, 1, 0, 1000), nil); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Errorf("sink received %d", counts[0])
	}
}

func TestSimSendToOutOfRangeAborts(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "src", Copies: 1, New: func(int) filter.Filter {
		return filter.Func(func(ctx filter.Context) error {
			return ctx.SendTo("out", 5, bytesPayload(1)) // only 1 consumer copy
		})
	}})
	counts := make([]int, 1)
	g.AddFilter(filter.FilterSpec{Name: "sink", Copies: 1, New: sinkFilter(counts, 0, nil)})
	g.Connect(filter.ConnSpec{From: "src", FromPort: "out", To: "sink", ToPort: "in", Policy: filter.Explicit})
	if _, err := Run(g, Uniform(1, 1, 0, 1000), nil); err == nil {
		t.Error("out-of-range SendTo did not fail the run")
	}
}

func TestSimTopologyTooSmall(t *testing.T) {
	g := filter.NewGraph()
	g.AddFilter(filter.FilterSpec{Name: "a", Copies: 1, New: srcFilter(1, 1, 0), Nodes: []int{3}})
	if _, err := Run(g, Uniform(2, 1, 0, 10), nil); err == nil {
		t.Error("undersized topology accepted")
	}
}

func TestSimMsgOverhead(t *testing.T) {
	// A zero-byte payload still pays the per-message overhead on the wire.
	counts := make([]int, 1)
	g := pipelineGraph(10, 0, 1, filter.RoundRobin, 0, []int{1}, counts)
	stats, err := Run(g, Uniform(2, 1, 0, 0.001), &Options{MsgOverheadBytes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// 10 messages × 100 KB over a 1 KB/s link ≈ 1000 s of occupancy.
	if stats.Elapsed < 100*time.Second {
		t.Errorf("overhead bytes not charged: %v", stats.Elapsed)
	}
}

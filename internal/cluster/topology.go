// Package cluster provides a simulated-cluster execution engine for the
// filter-stream middleware: filter copies run their real computation on one
// host while the engine maps them onto virtual nodes with relative CPU
// speeds and virtual network links with latency and bandwidth, advancing a
// discrete-event virtual clock.
//
// This is the substitution for the paper's physical testbeds (a 24-node
// Pentium III cluster on switched FastEthernet, plus dual-Xeon and
// dual-Opteron clusters on Gigabit, interconnected through a shared
// 100 Mbit/s uplink). The engine preserves what the paper's experiments
// measure — the ratio of computation to communication on every stream and
// the relative speed of heterogeneous nodes — while running as a single
// deterministic-ordering process.
package cluster

import (
	"fmt"
	"time"
)

// Link describes the virtual path between two nodes. Transfers on links
// sharing the same ID are serialized against each other (the link is a
// capacity resource); distinct IDs are independent.
type Link struct {
	ID          int
	Latency     time.Duration
	MBPerSecond float64 // payload bandwidth in megabytes per second
}

// transferTime returns how long the link is occupied moving n bytes.
func (l Link) transferTime(n int) time.Duration {
	if l.MBPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (l.MBPerSecond * 1e6) * float64(time.Second))
}

// Topology is the virtual machine room: per-node relative speeds and a link
// function. Speed 1.0 is the reference processor (the paper's PIII-900);
// speed 2.4 means compute charges shrink by 2.4×.
type Topology struct {
	Speeds []float64
	// LinkOf returns the link used by a transfer from node a to node b
	// (a ≠ b; co-located transfers never touch the network).
	LinkOf func(a, b int) Link
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.Speeds) }

// Validate checks the topology is usable for a graph with n nodes.
func (t *Topology) Validate(n int) error {
	if len(t.Speeds) < n {
		return fmt.Errorf("cluster: topology has %d nodes, graph needs %d", len(t.Speeds), n)
	}
	for i, s := range t.Speeds {
		if s <= 0 {
			return fmt.Errorf("cluster: node %d has non-positive speed %v", i, s)
		}
	}
	if t.LinkOf == nil {
		return fmt.Errorf("cluster: topology has no link function")
	}
	return nil
}

// Uniform builds a homogeneous cluster of n nodes on one switched network:
// every transfer is serialized on the receiving node's interface (distinct
// receivers are independent, as on a non-blocking switch).
func Uniform(n int, speed float64, latency time.Duration, mbps float64) *Topology {
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = speed
	}
	return &Topology{
		Speeds: speeds,
		LinkOf: func(a, b int) Link {
			return Link{ID: b, Latency: latency, MBPerSecond: mbps}
		},
	}
}

// ClusterSpec describes one homogeneous sub-cluster of a heterogeneous
// environment. A physical machine ("box") with CPUs > 1 (e.g. the paper's
// dual-Xeon and dual-Opteron nodes) contributes one simulation node per
// processor; processors of the same box exchange buffers for free (pointer
// copy between co-located filters) and share the box's network interface.
type ClusterSpec struct {
	Name    string
	Nodes   int           // physical machines
	CPUs    int           // processors per machine (default 1)
	Speed   float64       // per-processor relative CPU speed
	Latency time.Duration // intra-cluster message latency
	MBps    float64       // intra-cluster per-receiver bandwidth
}

func (s ClusterSpec) cpus() int {
	if s.CPUs < 1 {
		return 1
	}
	return s.CPUs
}

// Heterogeneous composes sub-clusters into one topology. Simulation node
// ids are assigned in spec order, box by box, processor by processor.
// Intra-cluster transfers are serialized per receiving box (its NIC);
// transfers between two different clusters share a single trunk link per
// unordered cluster pair.
type Heterogeneous struct {
	Topology
	clusterOf []int
	boxOf     []int
	specs     []ClusterSpec
	trunks    map[[2]int]Link
	nextTrunk int
}

// NewHeterogeneous builds the composite topology. defaultInter's ID field is
// ignored; each cluster pair gets its own trunk resource.
func NewHeterogeneous(specs []ClusterSpec, defaultInter Link) *Heterogeneous {
	h := &Heterogeneous{trunks: map[[2]int]Link{}, specs: specs}
	box := 0
	for ci, spec := range specs {
		for i := 0; i < spec.Nodes; i++ {
			for c := 0; c < spec.cpus(); c++ {
				h.Speeds = append(h.Speeds, spec.Speed)
				h.clusterOf = append(h.clusterOf, ci)
				h.boxOf = append(h.boxOf, box)
			}
			box++
		}
	}
	// Trunk IDs live above the per-box receiver NIC IDs.
	h.nextTrunk = box
	for a := range specs {
		for b := a + 1; b < len(specs); b++ {
			h.trunks[[2]int{a, b}] = Link{ID: h.nextTrunk, Latency: defaultInter.Latency, MBPerSecond: defaultInter.MBPerSecond}
			h.nextTrunk++
		}
	}
	h.LinkOf = func(x, y int) Link {
		if h.boxOf[x] == h.boxOf[y] {
			// Processors of the same box: memory hand-off, free.
			return Link{ID: h.boxOf[y]}
		}
		ca, cb := h.clusterOf[x], h.clusterOf[y]
		if ca == cb {
			spec := specs[ca]
			return Link{ID: h.boxOf[y], Latency: spec.Latency, MBPerSecond: spec.MBps}
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		return h.trunks[[2]int{ca, cb}]
	}
	return h
}

// BoxOf returns the physical machine index of a simulation node.
func (h *Heterogeneous) BoxOf(node int) int { return h.boxOf[node] }

// SetTrunk overrides the link between two clusters (by spec index), e.g. to
// model the Gigabit XEON–OPTERON path next to the shared 100 Mbit uplink to
// the PIII cluster.
func (h *Heterogeneous) SetTrunk(clusterA, clusterB int, latency time.Duration, mbps float64) {
	if clusterA > clusterB {
		clusterA, clusterB = clusterB, clusterA
	}
	key := [2]int{clusterA, clusterB}
	trunk, ok := h.trunks[key]
	if !ok {
		trunk = Link{ID: h.nextTrunk}
		h.nextTrunk++
	}
	trunk.Latency = latency
	trunk.MBPerSecond = mbps
	h.trunks[key] = trunk
}

// ClusterOf returns the spec index of the cluster containing the node.
func (h *Heterogeneous) ClusterOf(node int) int { return h.clusterOf[node] }

// NodesOf returns the node ids of the given cluster.
func (h *Heterogeneous) NodesOf(cluster int) []int {
	var out []int
	for n, c := range h.clusterOf {
		if c == cluster {
			out = append(out, n)
		}
	}
	return out
}

// Paper-testbed constants (§5.2–5.3): relative speeds are clock-ratio
// estimates against the PIII-900 reference; networks are 100 Mbit
// FastEthernet (~11.9 MB/s payload) and Gigabit (~119 MB/s payload).
const (
	SpeedPIII = 1.0
	// The 2.4 GHz Xeon of the paper's era is a Netburst (P4) core whose
	// per-clock throughput on integer, branchy kernels is roughly 0.6 of
	// the P6-class PIII: 2.4/0.9 × 0.6 ≈ 1.6.
	SpeedXeon = 1.6
	// The Opteron 1.4 GHz sustains ≈1.4× P6 per clock on these kernels:
	// 1.4/0.9 × 1.4 ≈ 2.2.
	SpeedOpteron = 2.2

	FastEthernetMBps = 11.9
	GigabitMBps      = 119.0
	LANLatency       = 100 * time.Microsecond
)

// PIIICluster returns the paper's homogeneous 24-node PIII testbed.
func PIIICluster(nodes int) *Topology {
	return Uniform(nodes, SpeedPIII, LANLatency, FastEthernetMBps)
}

package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"haralick4d/internal/filter"
	"haralick4d/internal/metrics"
)

// Options configures a simulated run.
type Options struct {
	// QueueDepth bounds each filter copy's input queue, counting buffers in
	// flight on the network — the credit-based flow control that makes
	// demand-driven scheduling meaningful. Default 32.
	QueueDepth int
	// ComputeScale converts measured host wall time into virtual compute
	// time on a speed-1.0 node: virtual = wall · ComputeScale / speed.
	// Calibrate it to the ratio host-core-speed : reference-node-speed
	// (e.g. ~40 for a modern core vs the paper's PIII-900). Default 1.
	ComputeScale float64
	// MsgOverheadBytes is the per-message wire overhead added to every
	// payload (headers, serialization framing). Default 64.
	MsgOverheadBytes int
	// DisableMetrics turns off the observability layer: filters see a nil
	// metric set and RunStats.Report stays nil.
	DisableMetrics bool
}

func (o *Options) depth() int {
	if o == nil || o.QueueDepth <= 0 {
		return 32
	}
	return o.QueueDepth
}

func (o *Options) scale() float64 {
	if o == nil || o.ComputeScale <= 0 {
		return 1
	}
	return o.ComputeScale
}

func (o *Options) overhead() int {
	if o == nil || o.MsgOverheadBytes <= 0 {
		return 64
	}
	return o.MsgOverheadBytes
}

// Run executes the graph on the virtual cluster and returns statistics in
// virtual time. Filter code executes for real (outputs are real), one copy
// at a time; the wall time of each compute segment is scaled by the node's
// speed, and every cross-node buffer pays latency plus bytes/bandwidth on
// its link, with transfers on the same link serialized.
func Run(g *filter.Graph, topo *Topology, opts *Options) (*filter.RunStats, error) {
	return RunContext(context.Background(), g, topo, opts)
}

// RunContext is Run under a context. The simulation checks for cancellation
// between scheduler events: a running compute segment finishes (filter code
// executes for real and cannot be interrupted), then the run aborts and
// returns ctx's error with the statistics gathered so far.
func RunContext(ctx context.Context, g *filter.Graph, topo *Topology, opts *Options) (*filter.RunStats, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	e := &engine{
		graph:     g,
		topo:      topo,
		ctx:       ctx,
		depth:     opts.depth(),
		scale:     opts.scale(),
		overhead:  opts.overhead(),
		metricsOn: opts == nil || !opts.DisableMetrics,
		ops:       make(chan op),
		byName:    map[string][]*proc{},
		conns:     map[string]*simConn{},
		linkBusy:  map[int]time.Duration{},
		cpuBusy:   map[int]time.Duration{},
	}
	for _, fs := range g.Filters {
		procs := make([]*proc, fs.Copies)
		for i := range procs {
			p := &proc{
				name:      fs.Name,
				copyIdx:   i,
				node:      fs.Nodes[i],
				speed:     topo.Speeds[fs.Nodes[i]],
				resume:    make(chan grant),
				eosExpect: map[string]int{},
			}
			p.stats.Node = p.node
			if e.metricsOn {
				p.met = &metrics.Copy{}
			}
			procs[i] = p
			e.procs = append(e.procs, p)
		}
		e.byName[fs.Name] = procs
	}
	for _, c := range g.Conns {
		producer, _ := g.Filter(c.From)
		sc := &simConn{spec: c, consumers: e.byName[c.To]}
		if e.metricsOn {
			sc.met = &metrics.Stream{}
		}
		e.conns[c.From+"."+c.FromPort] = sc
		for _, consumer := range e.byName[c.To] {
			consumer.eosExpect[c.ToPort] += producer.Copies
		}
	}
	for _, fs := range g.Filters {
		fs := fs
		for _, p := range e.byName[fs.Name] {
			p := p
			go e.procMain(p, fs)
		}
	}
	e.runLoop()
	stats := &filter.RunStats{Elapsed: e.clock, Copies: map[string][]filter.CopyStats{}}
	for name, procs := range e.byName {
		out := make([]filter.CopyStats, len(procs))
		for i, p := range procs {
			out[i] = p.stats
		}
		stats.Copies[name] = out
	}
	if e.metricsOn {
		stats.Report = e.buildReport()
	}
	return stats, e.failErr
}

// buildReport assembles the structured run report. Engine-measured times
// (busy, blocked, stalled, stream send waits) are virtual; filter-recorded
// spans and pool counters are host wall time — see the metrics package docs.
func (e *engine) buildReport() *metrics.RunReport {
	rep := &metrics.RunReport{Engine: "sim", ElapsedNS: int64(e.clock)}
	for _, fs := range e.graph.Filters {
		fr := metrics.FilterReport{Name: fs.Name}
		for _, p := range e.byName[fs.Name] {
			cr := metrics.CopyReport{
				Copy:          p.copyIdx,
				Node:          p.node,
				BusyNS:        int64(p.stats.Compute),
				BlockedRecvNS: int64(p.stats.BlockRecv),
				StalledSendNS: int64(p.stats.BlockSend),
				MsgsIn:        p.stats.MsgsIn,
				MsgsOut:       p.stats.MsgsOut,
				BytesIn:       p.stats.BytesIn,
				BytesOut:      p.stats.BytesOut,
				Spans:         p.met.Spans(),
			}
			if p.met != nil {
				cr.PoolHits = p.met.PoolHit.Load()
				cr.PoolMisses = p.met.PoolMiss.Load()
			}
			fr.Copies = append(fr.Copies, cr)
		}
		rep.Filters = append(rep.Filters, fr)
	}
	for _, c := range e.graph.Conns {
		sc := e.conns[c.From+"."+c.FromPort]
		if sc == nil || sc.met == nil {
			continue
		}
		sw := sc.met.SendWait.Stat()
		rep.Streams = append(rep.Streams, metrics.StreamReport{
			From: c.From, FromPort: c.FromPort, To: c.To, ToPort: c.ToPort,
			Policy:     c.Policy.String(),
			Buffers:    sc.met.Buffers.Load(),
			Bytes:      sc.met.Bytes.Load(),
			QueueMax:   sc.met.QueueMax.Load(),
			SendWaits:  sw.Count,
			SendWaitNS: sw.TotalNS,
		})
	}
	rep.Finalize()
	return rep
}

// simMsg is one buffer (or EOS marker) in the virtual system.
type simMsg struct {
	port    string
	payload filter.Payload
	eos     bool
	bytes   int
}

// sendWait records a producer blocked on a full consumer queue.
type sendWait struct {
	from  *proc
	conn  *simConn
	msg   simMsg
	start time.Duration
}

// proc is one filter copy in the simulation.
type proc struct {
	name    string
	copyIdx int
	node    int
	speed   float64
	resume  chan grant
	done    bool
	stats   filter.CopyStats
	met     *metrics.Copy // nil when metrics are disabled

	// consumer-side state, touched only by the scheduler
	queue       []simMsg
	pending     int // queued + in-flight buffers (credit accounting)
	sendWaiters []sendWait
	recvWaiting bool
	recvStart   time.Duration
	eosExpect   map[string]int

	wallStart time.Time // host time at last resume, for compute charging
}

// grant is what the scheduler hands back to a proc to resume it.
type grant struct {
	msg     simMsg
	ok      bool
	aborted bool
}

type opKind int

const (
	opRecv opKind = iota
	opSend
	opDone
)

// op is a request from a proc to the scheduler.
type op struct {
	p      *proc
	kind   opKind
	conn   *simConn
	toCopy int // explicit target copy, or -1 for policy
	msg    simMsg
	err    error // opDone
}

type simConn struct {
	spec      filter.ConnSpec
	consumers []*proc
	rr        uint64
	met       *metrics.Stream // nil when metrics are disabled
}

type event struct {
	at  time.Duration
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type readyEntry struct {
	p *proc
	g grant
}

// engine is the discrete-event scheduler. Exactly one proc goroutine runs
// at any instant; the scheduler blocks while it computes, so proc state
// needs no locking.
type engine struct {
	graph     *filter.Graph
	topo      *Topology
	ctx       context.Context
	depth     int
	scale     float64
	overhead  int
	metricsOn bool

	procs  []*proc
	byName map[string][]*proc
	conns  map[string]*simConn

	ops      chan op
	events   eventHeap
	seq      int
	clock    time.Duration
	linkBusy map[int]time.Duration
	cpuBusy  map[int]time.Duration
	ready    []readyEntry
	nDone    int
	failErr  error
}

func (e *engine) schedule(at time.Duration, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

func (e *engine) readyPush(p *proc, g grant) {
	e.ready = append(e.ready, readyEntry{p: p, g: g})
}

// runLoop drives the simulation to completion.
func (e *engine) runLoop() {
	for _, p := range e.procs {
		e.readyPush(p, grant{ok: true})
	}
	for e.nDone < len(e.procs) && e.failErr == nil {
		if err := e.ctx.Err(); err != nil {
			e.failErr = err
			break
		}
		if len(e.ready) > 0 {
			re := e.ready[0]
			e.ready = e.ready[1:]
			e.resumeProc(re)
			continue
		}
		if e.events.Len() == 0 {
			e.failErr = e.deadlockError()
			break
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at > e.clock {
			e.clock = ev.at
		}
		ev.fn()
	}
	if e.failErr != nil {
		e.abort()
	}
}

func (e *engine) deadlockError() error {
	blocked := ""
	for _, p := range e.procs {
		if p.done {
			continue
		}
		state := "suspended"
		if p.recvWaiting {
			state = "recv"
		}
		blocked += fmt.Sprintf(" %s[%d]:%s", p.name, p.copyIdx, state)
	}
	return fmt.Errorf("cluster: simulation deadlock; blocked:%s", blocked)
}

// resumeProc hands control to a proc and processes its next request.
func (e *engine) resumeProc(re readyEntry) {
	re.p.wallStart = time.Now()
	re.p.resume <- re.g
	o := <-e.ops
	// Charge the compute segment the proc just executed. A node's CPU is a
	// shared resource: compute segments of copies co-located on the same
	// (single-processor) node are serialized against each other, exactly as
	// the paper notes for its PIII nodes ("the CPU has to multiplex between
	// the two filters and its power has to be shared").
	wall := time.Since(o.p.wallStart)
	charge := time.Duration(float64(wall) * e.scale / o.p.speed)
	o.p.stats.Compute += charge
	if charge > 0 {
		start := e.clock
		if busy := e.cpuBusy[o.p.node]; busy > start {
			start = busy
		}
		at := start + charge
		e.cpuBusy[o.p.node] = at
		e.schedule(at, func() { e.applyOp(o, at) })
	} else {
		e.applyOp(o, e.clock)
	}
}

// applyOp performs the effect of an op at virtual time t (== e.clock).
func (e *engine) applyOp(o op, t time.Duration) {
	switch o.kind {
	case opDone:
		o.p.done = true
		e.nDone++
		if o.err != nil && e.failErr == nil {
			e.failErr = o.err
		}
	case opRecv:
		p := o.p
		if len(p.queue) > 0 {
			m := p.queue[0]
			p.queue = p.queue[1:]
			p.pending--
			e.processWaiters(p, t)
			e.readyPush(p, grant{msg: m, ok: true})
			return
		}
		p.recvWaiting = true
		p.recvStart = t
	case opSend:
		target, err := e.resolveTarget(o)
		if err != nil {
			// Surface as run failure; the sender is resumed aborted.
			if e.failErr == nil {
				e.failErr = err
			}
			e.readyPush(o.p, grant{aborted: true})
			return
		}
		if target.pending < e.depth {
			e.accept(o.p, target, o.msg, t)
			if !o.msg.eos {
				o.conn.met.ObserveSend(int64(o.msg.bytes), 0, int64(target.pending))
			}
			e.readyPush(o.p, grant{ok: true})
			return
		}
		target.sendWaiters = append(target.sendWaiters, sendWait{from: o.p, conn: o.conn, msg: o.msg, start: t})
	}
}

// resolveTarget picks the consumer copy per the connection policy.
func (e *engine) resolveTarget(o op) (*proc, error) {
	cs := o.conn
	if o.toCopy >= 0 {
		if o.toCopy >= len(cs.consumers) {
			return nil, fmt.Errorf("cluster: %s.%s copy %d out of range", cs.spec.From, cs.spec.FromPort, o.toCopy)
		}
		return cs.consumers[o.toCopy], nil
	}
	switch cs.spec.Policy {
	case filter.RoundRobin:
		t := cs.consumers[int(cs.rr)%len(cs.consumers)]
		cs.rr++
		return t, nil
	case filter.DemandDriven:
		// DataCutter's demand-driven scheduler assigns each buffer "based on
		// the buffer consumption rate of the transparent filter copies" — to
		// the copy likely to process it soonest. We estimate each copy's
		// completion time for this buffer as (queue+1) × its observed mean
		// service time, plus the nominal transfer cost of reaching it (zero
		// when co-located, latency + bytes/bandwidth otherwise). Live link
		// backlog is deliberately not consulted: a consumption-rate
		// scheduler has no view of the network's instantaneous state.
		score := func(p *proc) time.Duration {
			var svc time.Duration
			if p.stats.MsgsIn > 0 {
				svc = p.stats.Compute / time.Duration(p.stats.MsgsIn)
			}
			if svc <= 0 {
				svc = 1 // unmeasured: order by queue length and transfer
			}
			total := time.Duration(p.pending+1) * svc
			if p.node != o.p.node {
				l := e.topo.LinkOf(o.p.node, p.node)
				total += l.Latency + l.transferTime(o.msg.bytes)
			}
			return total
		}
		best := cs.consumers[0]
		bestScore := score(best)
		for _, cand := range cs.consumers[1:] {
			if s := score(cand); s < bestScore {
				best, bestScore = cand, s
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("cluster: port %s.%s is explicit; use SendTo", cs.spec.From, cs.spec.FromPort)
}

// accept takes the credit (pending slot) and starts the transfer.
func (e *engine) accept(from, to *proc, m simMsg, t time.Duration) {
	to.pending++
	if from.node == to.node {
		// Co-located: pointer hand-off, no network cost.
		e.deliver(to, m, t)
		return
	}
	link := e.topo.LinkOf(from.node, to.node)
	occupancy := link.transferTime(m.bytes)
	if link.Latency == 0 && occupancy == 0 {
		// Zero-cost path (e.g. two processors of the same physical box):
		// memory hand-off, never queued behind the box's network interface.
		e.deliver(to, m, t)
		return
	}
	start := t
	if busy := e.linkBusy[link.ID]; busy > start {
		start = busy
	}
	e.linkBusy[link.ID] = start + occupancy
	arrival := start + link.Latency + occupancy
	e.schedule(arrival, func() { e.deliver(to, m, arrival) })
}

// deliver places an arrived buffer in the consumer's queue, or hands it
// straight to a blocked receiver.
func (e *engine) deliver(to *proc, m simMsg, t time.Duration) {
	if to.recvWaiting {
		to.recvWaiting = false
		to.pending--
		to.stats.BlockRecv += t - to.recvStart
		e.processWaiters(to, t)
		e.readyPush(to, grant{msg: m, ok: true})
		return
	}
	to.queue = append(to.queue, m)
}

// processWaiters admits blocked senders while credit is available.
func (e *engine) processWaiters(to *proc, t time.Duration) {
	for to.pending < e.depth && len(to.sendWaiters) > 0 {
		w := to.sendWaiters[0]
		to.sendWaiters = to.sendWaiters[1:]
		w.from.stats.BlockSend += t - w.start
		e.accept(w.from, to, w.msg, t)
		if !w.msg.eos {
			// The credit wait is virtual time, like every engine-measured
			// duration under simulation.
			w.conn.met.ObserveSend(int64(w.msg.bytes), t-w.start, int64(to.pending))
		}
		e.readyPush(w.from, grant{ok: true})
	}
}

// abort releases every live proc with an aborted grant and waits for all of
// them to finish.
func (e *engine) abort() {
	for _, p := range e.procs {
		if !p.done {
			p.resume <- grant{aborted: true}
		}
	}
	for e.nDone < len(e.procs) {
		o := <-e.ops
		if o.kind == opDone {
			o.p.done = true
			e.nDone++
			continue
		}
		o.p.resume <- grant{aborted: true}
	}
}

// procMain is the goroutine wrapper around one filter copy.
func (e *engine) procMain(p *proc, fs filter.FilterSpec) {
	g := <-p.resume // initial grant
	if g.aborted {
		e.ops <- op{p: p, kind: opDone}
		return
	}
	ctx := &simCtx{e: e, p: p}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cluster: %s[%d] panicked: %v", p.name, p.copyIdx, r)
			}
		}()
		return fs.New(p.copyIdx).Run(ctx)
	}()
	if err == nil && !ctx.aborted {
		// End-of-stream to every consumer copy of every outgoing port.
		for _, c := range e.graph.ConnsFrom(p.name) {
			cs := e.conns[c.From+"."+c.FromPort]
			for i := range cs.consumers {
				if !ctx.sendRaw(cs, i, simMsg{port: c.ToPort, eos: true, bytes: e.overhead}) {
					break
				}
			}
		}
		// Drain unconsumed input so blocked upstream senders progress.
		for {
			if _, ok := ctx.Recv(); !ok {
				break
			}
		}
	}
	if err != nil && ctx.aborted {
		err = nil // the abort caused the failure; don't mask the original
	}
	e.ops <- op{p: p, kind: opDone, err: err}
}

// simCtx implements filter.Context on the virtual cluster.
type simCtx struct {
	e       *engine
	p       *proc
	aborted bool
	eosSeen map[string]int
	openIn  int
	started bool
}

func (c *simCtx) FilterName() string     { return c.p.name }
func (c *simCtx) CopyIndex() int         { return c.p.copyIdx }
func (c *simCtx) NumCopies() int         { return len(c.e.byName[c.p.name]) }
func (c *simCtx) Node() int              { return c.p.node }
func (c *simCtx) Metrics() *metrics.Copy { return c.p.met }

func (c *simCtx) ConsumerCopies(port string) int {
	cs, ok := c.e.conns[c.p.name+"."+port]
	if !ok {
		return 0
	}
	return len(cs.consumers)
}

// call issues an op and waits for the grant. Safe because the scheduler and
// this proc strictly alternate.
func (c *simCtx) call(o op) grant {
	c.e.ops <- o
	return <-c.p.resume
}

func (c *simCtx) Recv() (filter.Msg, bool) {
	if c.aborted {
		return filter.Msg{}, false
	}
	if !c.started {
		c.started = true
		c.eosSeen = map[string]int{}
		for _, n := range c.p.eosExpect {
			if n > 0 {
				c.openIn++
			}
		}
	}
	for c.openIn > 0 {
		g := c.call(op{p: c.p, kind: opRecv})
		if g.aborted {
			c.aborted = true
			return filter.Msg{}, false
		}
		m := g.msg
		if m.eos {
			c.eosSeen[m.port]++
			if c.eosSeen[m.port] == c.p.eosExpect[m.port] {
				c.openIn--
			}
			continue
		}
		c.p.stats.MsgsIn++
		c.p.stats.BytesIn += int64(m.bytes)
		return filter.Msg{Port: m.port, Payload: m.payload}, true
	}
	return filter.Msg{}, false
}

func (c *simCtx) Send(port string, p filter.Payload) error {
	return c.sendCommon(port, -1, p)
}

func (c *simCtx) SendTo(port string, copy int, p filter.Payload) error {
	if copy < 0 {
		return fmt.Errorf("cluster: negative copy index %d", copy)
	}
	return c.sendCommon(port, copy, p)
}

func (c *simCtx) sendCommon(port string, copy int, p filter.Payload) error {
	if c.aborted {
		return fmt.Errorf("cluster: run aborted")
	}
	if p == nil {
		return fmt.Errorf("cluster: %s sent nil payload on %q", c.p.name, port)
	}
	cs, ok := c.e.conns[c.p.name+"."+port]
	if !ok {
		return fmt.Errorf("cluster: %s has no connection on port %q", c.p.name, port)
	}
	if copy < 0 && cs.spec.Policy == filter.Explicit {
		return fmt.Errorf("cluster: port %s.%s is explicit; use SendTo", c.p.name, port)
	}
	// Size the payload before the send: once delivered the consumer owns it
	// and may recycle its buffers (see filters.ParamMsg.Recycle).
	size := p.SizeBytes()
	m := simMsg{port: cs.spec.ToPort, payload: p, bytes: size + c.e.overhead}
	if !c.sendRaw(cs, copy, m) {
		return fmt.Errorf("cluster: run aborted")
	}
	c.p.stats.MsgsOut++
	c.p.stats.BytesOut += int64(size)
	return nil
}

// sendRaw issues the send op; it reports false when the run was aborted.
func (c *simCtx) sendRaw(cs *simConn, copy int, m simMsg) bool {
	g := c.call(op{p: c.p, kind: opSend, conn: cs, toCopy: copy, msg: m})
	if g.aborted {
		c.aborted = true
		return false
	}
	return true
}

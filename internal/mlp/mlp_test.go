package mlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLearnsXOR(t *testing.T) {
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := [][]float64{{0}, {1}, {1}, {0}}
	n := New([]int{2, 6, 1}, 1)
	losses, err := n.Train(inputs, labels, TrainConfig{Epochs: 4000, LearningRate: 0.8, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	for i, x := range inputs {
		got := n.Forward(x)[0]
		want := labels[i][0]
		if math.Abs(got-want) > 0.2 {
			t.Errorf("XOR(%v) = %.3f, want %v", x, got, want)
		}
	}
}

func TestLearnsLinearSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var inputs, labels [][]float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		inputs = append(inputs, x)
		labels = append(labels, []float64{y})
	}
	n := New([]int{2, 4, 1}, 3)
	if _, err := n.Train(inputs, labels, TrainConfig{Epochs: 200, LearningRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range inputs {
		pred := 0.0
		if n.Forward(x)[0] > 0.5 {
			pred = 1
		}
		if pred == labels[i][0] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(inputs)); acc < 0.95 {
		t.Errorf("accuracy %.2f < 0.95", acc)
	}
}

// Gradient check: backprop's update direction must match the numerical
// gradient of the loss, weight by weight.
func TestGradientCheck(t *testing.T) {
	n := New([]int{3, 4, 2}, 5)
	x := []float64{0.3, -0.7, 0.9}
	y := []float64{1, 0}

	// The network's deltas implement the gradient of L = ½·Σ(a−y)².
	loss := func() float64 {
		out := n.Forward(x)
		sum := 0.0
		for j, a := range out {
			e := a - y[j]
			sum += e * e
		}
		return sum / 2
	}
	// Numerical gradients for a few sampled weights in each layer.
	const eps = 1e-6
	rng := rand.New(rand.NewSource(6))
	for l := range n.weights {
		for trial := 0; trial < 5; trial++ {
			k := rng.Intn(len(n.weights[l]))
			orig := n.weights[l][k]
			n.weights[l][k] = orig + eps
			lp := loss()
			n.weights[l][k] = orig - eps
			lm := loss()
			n.weights[l][k] = orig
			numGrad := (lp - lm) / (2 * eps)

			// One zero-momentum step with tiny lr moves the weight by
			// -lr · analyticalGrad.
			clone := New(n.sizes, 0)
			for i := range n.weights {
				copy(clone.weights[i], n.weights[i])
				copy(clone.biases[i], n.biases[i])
			}
			const lr = 1e-4
			clone.step(x, y, lr, 0)
			anaGrad := (n.weights[l][k] - clone.weights[l][k]) / lr
			if math.Abs(numGrad-anaGrad) > 1e-3*math.Max(1, math.Abs(numGrad)) {
				t.Errorf("layer %d weight %d: numerical %v vs backprop %v", l, k, numGrad, anaGrad)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() []float64 {
		n := New([]int{2, 3, 1}, 7)
		inputs := [][]float64{{0, 1}, {1, 0}}
		labels := [][]float64{{1}, {0}}
		if _, err := n.Train(inputs, labels, TrainConfig{Epochs: 50, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		return n.Forward([]float64{0.5, 0.5})
	}
	a, b := mk(), mk()
	if a[0] != b[0] {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestTrainValidation(t *testing.T) {
	n := New([]int{2, 2, 1}, 1)
	if _, err := n.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1}, {0}}, TrainConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := n.Train([][]float64{{1}}, [][]float64{{1}}, TrainConfig{}); err == nil {
		t.Error("wrong input width accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1, 0}}, TrainConfig{}); err == nil {
		t.Error("wrong label width accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, sizes := range [][]int{{3}, {2, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sizes %v accepted", sizes)
				}
			}()
			New(sizes, 1)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong input size accepted")
		}
	}()
	New([]int{2, 1}, 1).Forward([]float64{1, 2, 3})
}

// Property: standardized features have near-zero mean and near-unit std.
func TestStandardizerProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 10
		rng := rand.New(rand.NewSource(seed))
		samples := make([][]float64, n)
		for i := range samples {
			samples[i] = []float64{rng.NormFloat64()*10 + 5, rng.Float64() * 1000}
		}
		s, err := FitStandardizer(samples)
		if err != nil {
			return false
		}
		var mean, m2 [2]float64
		for _, x := range samples {
			z := s.Apply(x)
			for d := 0; d < 2; d++ {
				mean[d] += z[d]
				m2[d] += z[d] * z[d]
			}
		}
		for d := 0; d < 2; d++ {
			mean[d] /= float64(n)
			m2[d] /= float64(n)
			if math.Abs(mean[d]) > 1e-9 || math.Abs(m2[d]-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStandardizerDegenerate(t *testing.T) {
	// A constant feature must not divide by zero.
	s, err := FitStandardizer([][]float64{{5, 1}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	z := s.Apply([]float64{5, 1.5})
	if math.IsNaN(z[0]) || math.IsInf(z[0], 0) {
		t.Error("constant feature produced NaN/Inf")
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged samples accepted")
	}
}

func TestSizes(t *testing.T) {
	n := New([]int{4, 3, 2}, 1)
	s := n.Sizes()
	s[0] = 99 // must not alias internal state
	if n.Sizes()[0] != 4 {
		t.Error("Sizes aliases internal slice")
	}
}

// Package mlp implements a small feed-forward neural network trained by
// stochastic gradient descent with momentum — enough to reproduce the
// paper's motivating application: "Images that have been analyzed by
// radiologists can be used along with the results of texture analysis to
// train a neural network. Once trained, the neural network becomes a
// convenient tool for discovering cancerous tissue given the texture
// analysis results" (§1).
//
// The implementation is deterministic for a given seed and uses no
// dependencies beyond the standard library.
package mlp

import (
	"fmt"
	"math"
	"math/rand"
)

// Net is a fully connected feed-forward network with sigmoid activations.
type Net struct {
	sizes   []int
	weights [][]float64 // weights[l][j*in+i]: layer l, input i → neuron j
	biases  [][]float64
	// momentum buffers
	vw [][]float64
	vb [][]float64
}

// New builds a network with the given layer sizes (inputs first, outputs
// last) and Xavier-style random initialization from seed.
func New(sizes []int, seed int64) *Net {
	if len(sizes) < 2 {
		panic("mlp: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			panic("mlp: layer sizes must be positive")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Net{sizes: append([]int(nil), sizes...)}
	for l := 1; l < len(sizes); l++ {
		in, out := sizes[l-1], sizes[l]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in+out))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
		n.vw = append(n.vw, make([]float64, in*out))
		n.vb = append(n.vb, make([]float64, out))
	}
	return n
}

// Sizes returns the layer sizes.
func (n *Net) Sizes() []int { return append([]int(nil), n.sizes...) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs inference and returns the output activations.
func (n *Net) Forward(x []float64) []float64 {
	a, _ := n.forwardAll(x)
	return a[len(a)-1]
}

// forwardAll returns the activations of every layer (including the input)
// and the pre-activation sums of every non-input layer.
func (n *Net) forwardAll(x []float64) ([][]float64, [][]float64) {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("mlp: input size %d, network expects %d", len(x), n.sizes[0]))
	}
	acts := [][]float64{append([]float64(nil), x...)}
	var sums [][]float64
	for l := 0; l < len(n.weights); l++ {
		in := n.sizes[l]
		out := n.sizes[l+1]
		prev := acts[l]
		z := make([]float64, out)
		a := make([]float64, out)
		w := n.weights[l]
		for j := 0; j < out; j++ {
			sum := n.biases[l][j]
			row := w[j*in : (j+1)*in]
			for i, v := range row {
				sum += v * prev[i]
			}
			z[j] = sum
			a[j] = sigmoid(sum)
		}
		sums = append(sums, z)
		acts = append(acts, a)
	}
	return acts, sums
}

// TrainConfig tunes SGD.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	Momentum     float64
	Seed         int64 // shuffling seed
}

func (c *TrainConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
}

// Train fits the network to the samples with per-sample SGD and returns the
// mean squared error after each epoch. Inputs must match the input layer,
// labels the output layer.
func (n *Net) Train(inputs, labels [][]float64, cfg TrainConfig) ([]float64, error) {
	cfg.defaults()
	if len(inputs) != len(labels) {
		return nil, fmt.Errorf("mlp: %d inputs vs %d labels", len(inputs), len(labels))
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("mlp: no training data")
	}
	for i := range inputs {
		if len(inputs[i]) != n.sizes[0] {
			return nil, fmt.Errorf("mlp: sample %d has %d features, network expects %d", i, len(inputs[i]), n.sizes[0])
		}
		if len(labels[i]) != n.sizes[len(n.sizes)-1] {
			return nil, fmt.Errorf("mlp: label %d has %d outputs, network expects %d", i, len(labels[i]), n.sizes[len(n.sizes)-1])
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum := 0.0
		for _, idx := range order {
			sum += n.step(inputs[idx], labels[idx], cfg.LearningRate, cfg.Momentum)
		}
		losses = append(losses, sum/float64(len(inputs)))
	}
	return losses, nil
}

// step runs one backpropagation update and returns the sample's squared
// error.
func (n *Net) step(x, y []float64, lr, momentum float64) float64 {
	acts, _ := n.forwardAll(x)
	L := len(n.weights)
	out := acts[L]

	// Output delta for MSE with sigmoid: (a − y) · a(1−a).
	deltas := make([][]float64, L)
	loss := 0.0
	dl := make([]float64, len(out))
	for j, a := range out {
		e := a - y[j]
		loss += e * e
		dl[j] = e * a * (1 - a)
	}
	deltas[L-1] = dl

	for l := L - 2; l >= 0; l-- {
		sz := n.sizes[l+1]
		next := n.sizes[l+2]
		d := make([]float64, sz)
		wNext := n.weights[l+1]
		for i := 0; i < sz; i++ {
			sum := 0.0
			for j := 0; j < next; j++ {
				sum += wNext[j*sz+i] * deltas[l+1][j]
			}
			a := acts[l+1][i]
			d[i] = sum * a * (1 - a)
		}
		deltas[l] = d
	}

	for l := 0; l < L; l++ {
		in := n.sizes[l]
		prev := acts[l]
		w := n.weights[l]
		vw := n.vw[l]
		for j, d := range deltas[l] {
			base := j * in
			for i := 0; i < in; i++ {
				g := d * prev[i]
				vw[base+i] = momentum*vw[base+i] - lr*g
				w[base+i] += vw[base+i]
			}
			n.vb[l][j] = momentum*n.vb[l][j] - lr*d
			n.biases[l][j] += n.vb[l][j]
		}
	}
	return loss
}

// Standardizer scales features to zero mean and unit variance — texture
// parameters span wildly different ranges (ASM in (0,1], variance in the
// hundreds), so scaling is essential for SGD.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer estimates per-feature statistics from the samples.
func FitStandardizer(samples [][]float64) (*Standardizer, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("mlp: no samples to fit")
	}
	d := len(samples[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, x := range samples {
		if len(x) != d {
			return nil, fmt.Errorf("mlp: inconsistent sample widths")
		}
		for i, v := range x {
			s.Mean[i] += v
		}
	}
	for i := range s.Mean {
		s.Mean[i] /= float64(len(samples))
	}
	for _, x := range samples {
		for i, v := range x {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / float64(len(samples)))
		if s.Std[i] < 1e-12 {
			s.Std[i] = 1
		}
	}
	return s, nil
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return out
}

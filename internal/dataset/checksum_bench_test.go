package dataset

import "testing"

func benchStore(b *testing.B) *Store {
	b.Helper()
	v := randomVolume(21, [4]int{256, 256, 4, 2})
	dir := b.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// Benchmarks verified vs unverified whole-slice reads to bound the CRC cost.
func BenchmarkReadSliceVerified(b *testing.B) {
	st := benchStore(b)
	refs, err := st.NodeIndex(0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint16, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ReadSliceInto(0, refs[i%len(refs)], out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSliceUnverified(b *testing.B) {
	st := benchStore(b)
	refs, err := st.NodeIndex(0)
	if err != nil {
		b.Fatal(err)
	}
	for i := range refs {
		refs[i].HasCRC = false
	}
	out := make([]uint16, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ReadSliceInto(0, refs[i%len(refs)], out); err != nil {
			b.Fatal(err)
		}
	}
}

package dataset

import (
	"context"
	"testing"
)

func benchDir(b *testing.B) string {
	b.Helper()
	v := randomVolume(21, [4]int{256, 256, 4, 2})
	dir := b.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		b.Fatal(err)
	}
	return dir
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	st, err := Open(benchDir(b))
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// Benchmarks verified vs unverified whole-slice reads to bound the CRC cost.
func BenchmarkReadSliceVerified(b *testing.B) {
	st := benchStore(b)
	refs, err := st.NodeIndex(0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint16, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ReadSliceInto(0, refs[i%len(refs)], out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSliceUnverified(b *testing.B) {
	st := benchStore(b)
	refs, err := st.NodeIndex(0)
	if err != nil {
		b.Fatal(err)
	}
	for i := range refs {
		refs[i].HasCRC = false
	}
	out := make([]uint16, 256*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ReadSliceInto(0, refs[i%len(refs)], out); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmarks the local backend's bounded FD cache against open-per-read:
// the cached variant pays os.Open once per file, the uncached variant on
// every ReadSlice — the per-node handle-reuse claim from the redesign.
func BenchmarkReadSliceFDCache(b *testing.B) {
	for _, tc := range []struct {
		name    string
		maxOpen int
	}{
		{"handle-reuse", 0},   // default bounded cache (128 handles)
		{"open-per-read", -1}, // historical behaviour: open, read, close
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := benchDir(b)
			st, err := OpenBackend(context.Background(), NewLocalBackend(dir, tc.maxOpen))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			refs, err := st.NodeIndex(0)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]uint16, 256*256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.ReadSliceInto(0, refs[i%len(refs)], out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Stats().Opens)/float64(b.N), "opens/op")
		})
	}
}

package dataset

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
)

// CorruptSlices damages a seeded fraction of a written dataset's slice
// files for chaos tests and `gendata -corrupt-frac`: the victims cycle
// through a byte flip, a truncation, and a deletion, while the index
// checksums are left stale so every kind of damage is detectable on read
// (flips by checksum mismatch, truncations by the size check, deletions by
// the missing file). It returns the damaged files as node-relative paths
// like "node000/slice_t0000_z0003.raw", sorted.
//
// frac is clamped per dataset to at least one slice when positive; the same
// (dir, frac, seed) triple always damages the same slices the same way.
func CorruptSlices(dir string, frac float64, seed int64) ([]string, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("dataset: corrupt fraction %v outside [0, 1]", frac)
	}
	if frac == 0 {
		return nil, nil
	}
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	// Collect every slice in a deterministic global order.
	type victim struct {
		node int
		ref  SliceRef
	}
	var all []victim
	for node := 0; node < s.Meta.Nodes; node++ {
		refs, err := s.NodeIndex(node)
		if err != nil {
			return nil, err
		}
		for _, ref := range refs {
			all = append(all, victim{node: node, ref: ref})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return SliceID(&s.Meta, all[i].ref.Z, all[i].ref.T) < SliceID(&s.Meta, all[j].ref.Z, all[j].ref.T)
	})
	n := int(frac * float64(len(all)))
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	var out []string
	for i, v := range all[:n] {
		path := filepath.Join(s.NodeDir(v.node), v.ref.File)
		switch i % 3 {
		case 0: // flip one byte mid-file: only a checksum catches this
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("dataset: corrupting %s: %w", v.ref.File, err)
			}
			raw[rng.Intn(len(raw))] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				return nil, fmt.Errorf("dataset: corrupting %s: %w", v.ref.File, err)
			}
		case 1: // truncate to a partial row
			st, err := os.Stat(path)
			if err != nil {
				return nil, fmt.Errorf("dataset: corrupting %s: %w", v.ref.File, err)
			}
			if err := os.Truncate(path, st.Size()/2+1); err != nil {
				return nil, fmt.Errorf("dataset: corrupting %s: %w", v.ref.File, err)
			}
		case 2: // delete outright
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("dataset: corrupting %s: %w", v.ref.File, err)
			}
		}
		out = append(out, filepath.Join(nodeDirName(v.node), v.ref.File))
	}
	sort.Strings(out)
	return out, nil
}

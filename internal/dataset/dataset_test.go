package dataset

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"haralick4d/internal/volume"
)

func randomVolume(seed int64, dims [4]int) *volume.Volume {
	rng := rand.New(rand.NewSource(seed))
	v := volume.NewVolume(dims)
	for i := range v.Data {
		v.Data[i] = uint16(rng.Intn(4000) + 100)
	}
	return v
}

func writeTemp(t *testing.T, v *volume.Volume, nodes int) (*Store, *Meta) {
	t.Helper()
	dir := t.TempDir()
	meta, err := Write(dir, v, nodes)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, meta
}

func TestWriteReadRoundTrip(t *testing.T) {
	v := randomVolume(1, [4]int{8, 6, 4, 5})
	st, meta := writeTemp(t, v, 3)
	if meta.Dims != v.Dims || meta.Nodes != 3 {
		t.Fatalf("meta = %+v", meta)
	}
	lo, hi := v.MinMax()
	if meta.Min != lo || meta.Max != hi {
		t.Errorf("meta range = [%d, %d], want [%d, %d]", meta.Min, meta.Max, lo, hi)
	}
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
	if err := st.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: round-robin declustering balances slices within one slice per
// node and every slice lands on OwnerNode, for any node count.
func TestDistributionBalanceProperty(t *testing.T) {
	v := randomVolume(2, [4]int{4, 4, 3, 4}) // 12 slices
	f := func(nodesRaw uint8) bool {
		nodes := int(nodesRaw%6) + 1
		dir, err := os.MkdirTemp("", "ds")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		if _, err := Write(dir, v, nodes); err != nil {
			return false
		}
		st, err := Open(dir)
		if err != nil {
			return false
		}
		if st.Validate() != nil {
			return false
		}
		counts := make([]int, nodes)
		for n := 0; n < nodes; n++ {
			refs, err := st.NodeIndex(n)
			if err != nil {
				return false
			}
			counts[n] = len(refs)
		}
		lo, hi := counts[0], counts[0]
		total := 0
		for _, c := range counts {
			total += c
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return total == 12 && hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestReadSliceRegion(t *testing.T) {
	v := randomVolume(3, [4]int{10, 8, 2, 2})
	st, meta := writeTemp(t, v, 2)
	z, tt := 1, 1
	node := OwnerNode(meta, z, tt)
	ref := SliceRef{File: SliceFileName(z, tt), Z: z, T: tt}
	got, err := st.ReadSliceRegion(node, ref, 2, 7, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := 5
	for y := 3; y < 6; y++ {
		for x := 2; x < 7; x++ {
			want := v.At(x, y, z, tt)
			if got[(y-3)*w+(x-2)] != want {
				t.Fatalf("region voxel (%d,%d) = %d, want %d", x, y, got[(y-3)*w+(x-2)], want)
			}
		}
	}
	// Bad regions.
	for _, r := range [][4]int{{-1, 5, 0, 2}, {0, 11, 0, 2}, {3, 3, 0, 2}, {0, 2, 5, 3}} {
		if _, err := st.ReadSliceRegion(node, ref, r[0], r[1], r[2], r[3]); err == nil {
			t.Errorf("bad region %v accepted", r)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("missing header accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "dataset.json"), []byte("{garbage"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt header accepted")
	}
	os.WriteFile(filepath.Join(dir, "dataset.json"), []byte(`{"version":99,"dims":[1,1,1,1],"nodes":1}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("wrong version accepted")
	}
	os.WriteFile(filepath.Join(dir, "dataset.json"), []byte(`{"version":1,"dims":[0,1,1,1],"nodes":1}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("zero dims accepted")
	}
}

func TestWriteErrors(t *testing.T) {
	v := randomVolume(4, [4]int{2, 2, 1, 1})
	if _, err := Write(t.TempDir(), v, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestNodeIndexErrors(t *testing.T) {
	v := randomVolume(5, [4]int{4, 4, 2, 2})
	st, _ := writeTemp(t, v, 2)
	if _, err := st.NodeIndex(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := st.NodeIndex(2); err == nil {
		t.Error("out-of-range node accepted")
	}
	// Corrupt an index line.
	path := filepath.Join(st.NodeDir(0), "index.txt")
	os.WriteFile(path, []byte("bad line without numbers\n"), 0o644)
	if _, err := st.NodeIndex(0); err == nil {
		t.Error("corrupt index accepted")
	}
	os.WriteFile(path, []byte("f.raw 99 0\n"), 0o644)
	if _, err := st.NodeIndex(0); err == nil {
		t.Error("out-of-range slice ref accepted")
	}
}

func TestValidateDetectsMisplacedSlice(t *testing.T) {
	v := randomVolume(6, [4]int{4, 4, 2, 2})
	st, _ := writeTemp(t, v, 2)
	// Claim a slice on the wrong node.
	idx0 := filepath.Join(st.NodeDir(0), "index.txt")
	raw, err := os.ReadFile(filepath.Join(st.NodeDir(1), "index.txt"))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(idx0)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(idx0, append(orig, raw...), 0o644)
	if err := st.Validate(); err == nil {
		t.Error("misplaced/duplicate slices not detected")
	}
}

func TestReadSliceSizeCheck(t *testing.T) {
	v := randomVolume(7, [4]int{4, 4, 1, 1})
	st, meta := writeTemp(t, v, 1)
	ref := SliceRef{File: SliceFileName(0, 0), Z: 0, T: 0}
	// Truncate the slice file.
	path := filepath.Join(st.NodeDir(0), ref.File)
	os.WriteFile(path, []byte{1, 2, 3}, 0o644)
	if _, err := st.ReadSlice(0, ref); err == nil {
		t.Error("truncated slice accepted")
	}
	_ = meta
}

func TestSliceIDAndOwner(t *testing.T) {
	meta := &Meta{Dims: [4]int{4, 4, 8, 3}, Nodes: 3}
	if SliceID(meta, 2, 1) != 10 {
		t.Errorf("SliceID = %d, want 10", SliceID(meta, 2, 1))
	}
	if OwnerNode(meta, 2, 1) != 10%3 {
		t.Error("OwnerNode mismatch")
	}
}

func TestDistributions(t *testing.T) {
	v := randomVolume(11, [4]int{4, 4, 3, 4}) // 12 slices
	for _, dist := range []Distribution{RoundRobinDist, BlockDist, SliceModDist} {
		dir := t.TempDir()
		meta, err := WriteDistributed(dir, v, 3, dist)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Dist != dist {
			t.Errorf("%v: meta.Dist = %v", dist, meta.Dist)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("%v: %v", dist, err)
		}
		back, err := st.ReadVolume()
		if err != nil {
			t.Fatal(err)
		}
		for i := range v.Data {
			if back.Data[i] != v.Data[i] {
				t.Fatalf("%v: voxel %d differs", dist, i)
			}
		}
	}
	if _, err := WriteDistributed(t.TempDir(), v, 2, Distribution(9)); err == nil {
		t.Error("invalid distribution accepted")
	}
}

func TestDistributionStringParse(t *testing.T) {
	for _, d := range []Distribution{RoundRobinDist, BlockDist, SliceModDist} {
		got, err := ParseDistribution(d.String())
		if err != nil || got != d {
			t.Errorf("round trip %v", d)
		}
	}
	if _, err := ParseDistribution("nope"); err == nil {
		t.Error("bogus distribution accepted")
	}
	if Distribution(9).String() != "distribution(9)" {
		t.Error("unknown distribution String")
	}
}

func TestBlockDistOwnersContiguous(t *testing.T) {
	meta := &Meta{Dims: [4]int{2, 2, 4, 4}, Nodes: 4, Dist: BlockDist}
	prev := -1
	for t0 := 0; t0 < 4; t0++ {
		for z := 0; z < 4; z++ {
			n := OwnerNode(meta, z, t0)
			if n < prev {
				t.Fatalf("block owners not monotone: slice (z=%d,t=%d) on %d after %d", z, t0, n, prev)
			}
			prev = n
		}
	}
	if prev != 3 {
		t.Errorf("last node %d, want 3", prev)
	}
}

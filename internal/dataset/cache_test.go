package dataset

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestCachedReadsMatchDirect(t *testing.T) {
	v := randomVolume(31, [4]int{16, 12, 5, 3})
	direct, _ := writeTemp(t, v, 2)
	// 15 slice files, one default-size block each: 32 blocks hold them all.
	cached, err := direct.WithCache(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	indexes := make([][]SliceRef, 2)
	for node := 0; node < 2; node++ {
		refs, err := cached.NodeIndex(node)
		if err != nil {
			t.Fatal(err)
		}
		indexes[node] = refs
		for _, ref := range refs {
			got, err := cached.ReadSlice(node, ref)
			if err != nil {
				t.Fatal(err)
			}
			want := v.Slice(ref.Z, ref.T)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %d slice t%d z%d voxel %d: %d != %d",
						node, ref.T, ref.Z, i, got[i], want[i])
				}
			}
		}
	}
	s := cached.Stats()
	if s.CacheMisses == 0 {
		t.Error("cold pass recorded no cache misses")
	}
	if s.CacheHits != 0 {
		t.Errorf("cold pass recorded %d cache hits", s.CacheHits)
	}
	if s.CacheFetchBytes == 0 {
		t.Error("cold pass fetched no bytes")
	}

	// Second pass: the whole dataset is resident, so all reads hit and the
	// backing store sees no new slice reads.
	readsBefore := s.Reads
	for node := 0; node < 2; node++ {
		for _, ref := range indexes[node] {
			got, err := cached.ReadSlice(node, ref)
			if err != nil {
				t.Fatal(err)
			}
			want := v.Slice(ref.Z, ref.T)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("warm read mismatch at voxel %d", i)
				}
			}
		}
	}
	s = cached.Stats()
	if s.CacheHits == 0 {
		t.Error("warm pass recorded no cache hits")
	}
	if s.Reads != readsBefore {
		t.Errorf("warm pass issued %d backing reads, want 0", s.Reads-readsBefore)
	}
	if s.CacheEvictions != 0 {
		t.Errorf("evictions = %d with ample capacity", s.CacheEvictions)
	}
}

func TestCachedRegionReads(t *testing.T) {
	v := randomVolume(32, [4]int{20, 15, 4, 2})
	direct, _ := writeTemp(t, v, 1)
	cached, err := direct.WithCache(64, 16) // tiny blocks force multi-block rows
	if err != nil {
		t.Fatal(err)
	}
	refs, err := cached.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		got, err := cached.ReadSliceRegion(0, ref, 3, 17, 2, 13)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.ReadSliceRegion(0, ref, 3, 17, 2, 13)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("region voxel %d: %d != %d", i, got[i], want[i])
			}
		}
	}
	if s := cached.Stats(); s.CacheHits == 0 {
		t.Error("overlapping region rows produced no cache hits")
	}
}

func TestCacheEviction(t *testing.T) {
	v := randomVolume(33, [4]int{16, 16, 6, 2})
	direct, _ := writeTemp(t, v, 1)
	// Each slice is 16*16*2 = 512 bytes = 4 blocks of 128; cap the cache at
	// 2 blocks so every slice read cycles the whole cache.
	cached, err := direct.WithCache(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := cached.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for _, ref := range refs {
			got, err := cached.ReadSlice(0, ref)
			if err != nil {
				t.Fatal(err)
			}
			want := v.Slice(ref.Z, ref.T)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pass %d slice t%d z%d voxel %d: %d != %d",
						pass, ref.T, ref.Z, i, got[i], want[i])
				}
			}
		}
	}
	s := cached.Stats()
	if s.CacheEvictions == 0 {
		t.Error("2-block cache over a 48-block working set recorded no evictions")
	}
	if s.CacheMisses <= s.CacheHits {
		// With a cache far smaller than the working set and sequential
		// sweeps, nearly every block lookup misses.
		t.Logf("misses %d, hits %d (informational)", s.CacheMisses, s.CacheHits)
	}
}

// TestCacheConcurrency hammers one shared block cache from many goroutines
// with a fixed seed; run under -race it checks the LRU's locking, and every
// read is verified against the source volume.
func TestCacheConcurrency(t *testing.T) {
	v := randomVolume(34, [4]int{24, 18, 4, 3})
	direct, _ := writeTemp(t, v, 3)
	cached, err := direct.WithCache(256, 4) // small enough to evict constantly
	if err != nil {
		t.Fatal(err)
	}
	type task struct {
		node int
		ref  SliceRef
	}
	var tasks []task
	for node := 0; node < 3; node++ {
		refs, err := cached.NodeIndex(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			tasks = append(tasks, task{node, ref})
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				tk := tasks[rng.Intn(len(tasks))]
				got, err := cached.ReadSlice(tk.node, tk.ref)
				if err != nil {
					errs <- err
					return
				}
				want := v.Slice(tk.ref.Z, tk.ref.T)
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("worker %d slice t%d z%d voxel %d: %d != %d",
							seed, tk.ref.T, tk.ref.Z, j, got[j], want[j])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := cached.Stats()
	if s.CacheHits+s.CacheMisses == 0 {
		t.Error("no cache traffic recorded")
	}
	t.Logf("concurrent stats: hits=%d misses=%d evictions=%d fetch=%dB",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheFetchBytes)
}

func TestNewCachedBackendValidation(t *testing.T) {
	be := NewMemBackend()
	if _, err := NewCachedBackend(be, 0, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewCachedBackend(be, 0, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewCachedBackend(be, -5, 4); err == nil {
		t.Error("negative block size accepted")
	}
	cb, err := NewCachedBackend(be, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cb.blockSize != DefaultCacheBlockSize {
		t.Errorf("default block size = %d, want %d", cb.blockSize, DefaultCacheBlockSize)
	}
}

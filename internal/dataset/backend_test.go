package dataset

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"haralick4d/internal/fault"
)

func TestParseURL(t *testing.T) {
	cases := []struct {
		raw, scheme, rest string
		wantErr           bool
	}{
		{raw: "/data/study1", scheme: "file", rest: "/data/study1"},
		{raw: "relative/dir", scheme: "file", rest: "relative/dir"},
		{raw: "file:///data/study1", scheme: "file", rest: "/data/study1"},
		{raw: "mem://fixture", scheme: "mem", rest: "fixture"},
		{raw: "http://host:81/ds", scheme: "http", rest: "http://host:81/ds"},
		{raw: "https://host/ds", scheme: "https", rest: "https://host/ds"},
		{raw: "", wantErr: true},
		{raw: "file://", wantErr: true},
		{raw: "mem://", wantErr: true},
		{raw: "mem://a/b", wantErr: true},
		{raw: "http://", wantErr: true},
		{raw: "ftp://host/ds", wantErr: true},
		{raw: "s3://bucket/ds", wantErr: true},
	}
	for _, c := range cases {
		scheme, rest, err := ParseURL(c.raw)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseURL(%q) = (%q, %q), want error", c.raw, scheme, rest)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseURL(%q): %v", c.raw, err)
			continue
		}
		if scheme != c.scheme || rest != c.rest {
			t.Errorf("ParseURL(%q) = (%q, %q), want (%q, %q)", c.raw, scheme, rest, c.scheme, c.rest)
		}
	}
}

func TestNewBackendCacheValidation(t *testing.T) {
	if _, err := NewBackend(t.TempDir(), &URLOptions{CacheBlocks: -1}); err == nil {
		t.Error("negative CacheBlocks accepted")
	}
	if _, err := NewBackend(t.TempDir(), &URLOptions{CacheBlockSize: 4096}); err == nil {
		t.Error("CacheBlockSize without CacheBlocks accepted")
	}
	if _, err := NewBackend(t.TempDir(), &URLOptions{CacheBlocks: 2, CacheBlockSize: -1}); err == nil {
		t.Error("negative CacheBlockSize accepted")
	}
}

// TestOpenURLFileMatchesOpen verifies the shim contract: Open(dir) and
// OpenURL("file://dir") read back the identical volume.
func TestOpenURLFileMatchesOpen(t *testing.T) {
	v := randomVolume(11, [4]int{8, 6, 4, 3})
	dir := t.TempDir()
	if _, err := Write(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	st, err := OpenURL(context.Background(), "file://"+dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
	if got := st.Stats().Scheme; got != "file" {
		t.Errorf("scheme = %q, want file", got)
	}
	if st.Dir != dir {
		t.Errorf("Dir = %q, want %q", st.Dir, dir)
	}
}

// TestLocalBackendHandleReuse verifies the FD cache: reading the same slice
// repeatedly opens the file once, while a disabled cache (maxOpen < 0) opens
// per read.
func TestLocalBackendHandleReuse(t *testing.T) {
	v := randomVolume(12, [4]int{8, 6, 2, 2})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	const reads = 5
	for _, tc := range []struct {
		maxOpen   int
		wantOpens int64
	}{
		{maxOpen: 0, wantOpens: 1},      // default cache: one open, reused
		{maxOpen: -1, wantOpens: reads}, // open-per-read baseline
	} {
		be := NewLocalBackend(dir, tc.maxOpen)
		st, err := OpenBackend(context.Background(), be)
		if err != nil {
			t.Fatal(err)
		}
		refs, err := st.NodeIndex(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reads; i++ {
			if _, err := st.ReadSlice(0, refs[0]); err != nil {
				t.Fatal(err)
			}
		}
		if got := st.Stats().Opens; got != tc.wantOpens {
			t.Errorf("maxOpen=%d: opens = %d, want %d", tc.maxOpen, got, tc.wantOpens)
		}
		st.Close()
	}
}

// TestLocalBackendEviction verifies the FD budget holds: with maxOpen 2 and
// 4 distinct files read round-robin twice, every open file stays within
// budget and reads still succeed.
func TestLocalBackendEviction(t *testing.T) {
	v := randomVolume(13, [4]int{8, 6, 2, 2}) // 4 slices on 1 node
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	be := NewLocalBackend(dir, 2)
	st, err := OpenBackend(context.Background(), be)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	refs, err := st.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Fatalf("refs = %d, want 4", len(refs))
	}
	for pass := 0; pass < 2; pass++ {
		for _, ref := range refs {
			if _, err := st.ReadSlice(0, ref); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 8 reads over 4 files with a 2-handle budget: every read of a file not
	// among the 2 most recent must reopen.
	if got := st.Stats().Opens; got < 4 {
		t.Errorf("opens = %d, want >= 4 (eviction must have reopened)", got)
	}
}

// TestWrapObjectsFaultInjection wires the io.ReaderAt fault injectors into
// the backend seam and verifies the PR-4 degraded-read semantics apply:
// corruption is caught by the checksum, truncation by the read, and both
// classify as ErrDegradedData.
func TestWrapObjectsFaultInjection(t *testing.T) {
	v := randomVolume(14, [4]int{8, 6, 2, 1})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt", func(t *testing.T) {
		be := WrapObjects(NewLocalBackend(dir, 0), func(name string, r io.ReaderAt) io.ReaderAt {
			return &corruptAt{r: r, off: 3}
		})
		st, err := OpenBackend(context.Background(), be)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		refs, _ := st.NodeIndex(0)
		_, err = st.ReadSlice(0, refs[0])
		if !errors.Is(err, ErrDegradedData) {
			t.Errorf("corrupt read error = %v, want ErrDegradedData", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		be := WrapObjects(NewLocalBackend(dir, 0), func(name string, r io.ReaderAt) io.ReaderAt {
			return &truncAt{r: r, n: 10}
		})
		st, err := OpenBackend(context.Background(), be)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		refs, _ := st.NodeIndex(0)
		_, err = st.ReadSlice(0, refs[0])
		if !errors.Is(err, ErrDegradedData) {
			t.Errorf("truncated read error = %v, want ErrDegradedData", err)
		}
	})
}

// corruptAt and truncAt mirror fault.CorruptReaderAt / fault.TruncatedReaderAt
// locally (the fault package sits above dataset in the dependency order).
type corruptAt struct {
	r   io.ReaderAt
	off int64
}

func (c *corruptAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	if i := c.off - off; i >= 0 && i < int64(n) {
		p[i] ^= 0xFF
	}
	return n, err
}

type truncAt struct {
	r io.ReaderAt
	n int64
}

func (t *truncAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.n {
		return 0, io.EOF
	}
	if max := t.n - off; int64(len(p)) > max {
		n, err := t.r.ReadAt(p[:max], off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return t.r.ReadAt(p, off)
}

func TestMemBackendRoundTrip(t *testing.T) {
	v := randomVolume(15, [4]int{8, 6, 3, 2})
	b, meta, err := WriteMemDataset(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Nodes != 3 || !meta.Checksums {
		t.Fatalf("meta = %+v", meta)
	}
	st, err := OpenBackend(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Validate(); err != nil {
		t.Error(err)
	}
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
	if st.Dir != "" {
		t.Errorf("mem store Dir = %q, want empty", st.Dir)
	}
}

func TestMemRegistry(t *testing.T) {
	v := randomVolume(16, [4]int{8, 6, 2, 1})
	b, _, err := WriteMemDataset(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	RegisterMem("backend-test-fixture", b)
	defer UnregisterMem("backend-test-fixture")
	st, err := OpenURL(context.Background(), "mem://backend-test-fixture", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats().URL; got != "mem://backend-test-fixture" {
		t.Errorf("URL = %q", got)
	}
	if _, err := OpenURL(context.Background(), "mem://no-such-registration", nil); err == nil {
		t.Error("unregistered mem URL accepted")
	}
}

// serveDataset serves a dataset directory the way cmd/dataserve does.
func serveDataset(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	t.Cleanup(srv.Close)
	return srv
}

func TestHTTPBackendRoundTrip(t *testing.T) {
	v := randomVolume(17, [4]int{8, 6, 3, 2})
	dir := t.TempDir()
	if _, err := Write(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	srv := serveDataset(t, dir)
	st, err := OpenURL(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Validate(); err != nil {
		t.Error(err)
	}
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
	// Region reads exercise the ranged-GET path with sub-file offsets.
	refs, err := st.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadSliceRegion(0, refs[0], 2, 6, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := v.Slice(refs[0].Z, refs[0].T)
	for y := 1; y < 5; y++ {
		for x := 2; x < 6; x++ {
			if got[(y-1)*4+(x-2)] != want[y*8+x] {
				t.Fatalf("region mismatch at (%d,%d)", x, y)
			}
		}
	}
	s := st.Stats()
	if s.Scheme != "http" || s.Reads == 0 || s.ReadBytes == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHTTPBackendMissingSliceIsDegraded(t *testing.T) {
	v := randomVolume(18, [4]int{8, 6, 2, 1})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	st0, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := st0.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	st0.Close()
	if err := os.Remove(st0.NodeDir(0) + "/" + refs[0].File); err != nil {
		t.Fatal(err)
	}
	srv := serveDataset(t, dir)
	st, err := OpenURL(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ReadSlice(0, refs[0])
	if !errors.Is(err, ErrDegradedData) {
		t.Errorf("missing remote slice error = %v, want ErrDegradedData", err)
	}
}

func TestHTTPBackendUnavailable(t *testing.T) {
	v := randomVolume(19, [4]int{8, 6, 2, 1})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	srv := serveDataset(t, dir)
	st, err := OpenURL(context.Background(), srv.URL, &URLOptions{HTTPAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	refs, err := st.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // the remote store goes away mid-run
	_, err = st.ReadSlice(0, refs[0])
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Errorf("dead server error = %v, want ErrBackendUnavailable", err)
	}
	if errors.Is(err, ErrDegradedData) {
		t.Error("dead server classified as degraded data (skippable)")
	}
}

// TestHTTPBackendRetries verifies the retry budget absorbs transient 5xx
// responses: with two injected failures and a 3-attempt budget the read
// succeeds.
func TestHTTPBackendRetries(t *testing.T) {
	v := randomVolume(20, [4]int{8, 6, 2, 1})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	fails := 2
	inner := http.FileServer(http.Dir(dir))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 && r.Method == http.MethodGet {
			fails--
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	st, err := OpenURL(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	back, err := st.ReadVolume()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d: %d != %d", i, back.Data[i], v.Data[i])
		}
	}
	if fails != 0 {
		t.Errorf("injected failures remaining: %d", fails)
	}
}

// roundTripperFunc adapts a function to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// assertCanceled checks an HTTP-backend error surfaces the caller's
// cancellation unmarked: cancellation is not a backend failure, and marking
// it ErrBackendUnavailable would send the failover scheduler declaring dead
// a copy that was never unhealthy.
func assertCanceled(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrBackendUnavailable) {
		t.Error("cancellation misclassified as ErrBackendUnavailable")
	}
}

// TestHTTPBackendCancellation pins the retry loop's contract with
// cancellation: a canceled context aborts the attempt budget immediately —
// before the first request, between retries, or mid-body — and the error is
// ctx.Err(), never dressed up as a backend failure.
func TestHTTPBackendCancellation(t *testing.T) {
	v := randomVolume(21, [4]int{8, 6, 2, 1})
	dir := t.TempDir()
	if _, err := Write(dir, v, 1); err != nil {
		t.Fatal(err)
	}
	srv := serveDataset(t, dir)

	t.Run("pre-canceled", func(t *testing.T) {
		flaky := &fault.FlakyTransport{}
		be, err := NewHTTPBackend(srv.URL, &http.Client{Transport: flaky}, 3)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = be.ReadFile(ctx, "dataset.json")
		assertCanceled(t, err)
		if n := flaky.Calls(); n != 0 {
			t.Errorf("pre-canceled read issued %d requests, want 0", n)
		}
	})

	t.Run("canceled-between-attempts", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		flaky := &fault.FlakyTransport{FailEvery: 1} // every attempt dies
		// The caller gives up as soon as the first attempt fails; the rest
		// of the 3-attempt budget must not be spent.
		tr := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
			resp, rerr := flaky.RoundTrip(r)
			cancel()
			return resp, rerr
		})
		be, err := NewHTTPBackend(srv.URL, &http.Client{Transport: tr}, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, err = be.ReadFile(ctx, "dataset.json")
		assertCanceled(t, err)
		if n := flaky.Calls(); n != 1 {
			t.Errorf("canceled retry loop issued %d requests, want 1", n)
		}
	})

	t.Run("canceled-mid-body", func(t *testing.T) {
		released := make(chan struct{})
		slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusOK)
			w.Write(make([]byte, 16))
			w.(http.Flusher).Flush()
			close(released) // body stays short until the client goes away
			<-r.Context().Done()
		}))
		defer slow.Close()
		be, err := NewHTTPBackend(slow.URL, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-released
			cancel()
		}()
		_, err = be.ReadFile(ctx, "any")
		assertCanceled(t, err)
	})

	t.Run("canceled-mid-range-read", func(t *testing.T) {
		released := make(chan struct{})
		slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Length", "4096")
			if r.Method == http.MethodHead {
				return
			}
			w.WriteHeader(http.StatusPartialContent)
			w.Write(make([]byte, 16))
			w.(http.Flusher).Flush()
			close(released)
			<-r.Context().Done()
		}))
		defer slow.Close()
		be, err := NewHTTPBackend(slow.URL, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := be.Open(context.Background(), "any")
		if err != nil {
			t.Fatal(err)
		}
		defer obj.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-released
			cancel()
		}()
		_, err = obj.ReadAt(ctx, make([]byte, 4096), 0)
		assertCanceled(t, err)
	})
}

package dataset

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"haralick4d/internal/resilience"
)

// DefaultHTTPAttempts is the per-request try budget of the HTTP backend:
// transient transport failures and server errors are retried with a short
// linear backoff before the read is reported ErrBackendUnavailable.
const DefaultHTTPAttempts = 3

// maxServerBackoff bounds a server-directed Retry-After wait when the
// context carries no deadline: a confused (or hostile) server must not be
// able to park one attempt for minutes. With a deadline, the tighter of the
// two bounds applies.
const maxServerBackoff = 2 * time.Second

// HTTPBackend serves a dataset from a remote HTTP(S) server using range
// reads — an object-store-style remote: the server only needs to answer
// GET/HEAD with Range support (http.FileServer, nginx, S3-compatible
// gateways all do). Slice checksums travel in the index files unchanged, so
// CRC verification catches remote bit rot exactly as it does local.
type HTTPBackend struct {
	base     *url.URL
	client   *http.Client
	attempts int
	// sizes memoizes object sizes by URL: dataset objects are immutable
	// once the header is published, so repeat Opens of a hot slice skip
	// the HEAD round trip — the remote analog of the local backend's
	// handle reuse.
	sizes sync.Map // url -> int64
	c     counters
	// res is the backend's resilience set: breaker gating every request,
	// shared budget funding retries, hedger racing slow range reads. Nil
	// leaves the plain retry loop untouched.
	res *resilience.Set
}

// SetResilience attaches a resilience set to the backend. Call before
// serving reads. The set may be shared across backends hitting the same
// host — the daemon's per-host registry does exactly that, so one sick host
// is capped by one breaker and one retry budget no matter how many jobs
// read from it.
func (b *HTTPBackend) SetResilience(s *resilience.Set) { b.res = s }

func (b *HTTPBackend) breaker() *resilience.Breaker {
	if b.res == nil {
		return nil
	}
	return b.res.Breaker
}

func (b *HTTPBackend) budget() *resilience.RetryBudget {
	if b.res == nil {
		return nil
	}
	return b.res.Budget
}

func (b *HTTPBackend) hedger() *resilience.Hedger {
	if b.res == nil {
		return nil
	}
	return b.res.Hedger
}

// record reports one answered-or-failed request to the breaker — under the
// token its Allow granted — and, on success, credits the retry budget.
func (b *HTTPBackend) record(tok resilience.Token, err error) {
	if b.res == nil {
		return
	}
	if b.res.Breaker != nil {
		b.res.Breaker.Record(tok, err)
	}
	if err == nil {
		b.res.Budget.Deposit()
	}
}

// NewHTTPBackend returns a Backend rooted at baseURL (the directory that
// holds dataset.json). client nil selects http.DefaultClient; attempts <= 0
// selects DefaultHTTPAttempts.
func NewHTTPBackend(baseURL string, client *http.Client, attempts int) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("dataset: invalid backend URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("dataset: backend URL %q: scheme %q is not http(s)", baseURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("dataset: backend URL %q has no host", baseURL)
	}
	if !strings.HasSuffix(u.Path, "/") {
		u.Path += "/"
	}
	if client == nil {
		client = http.DefaultClient
	}
	if attempts <= 0 {
		attempts = DefaultHTTPAttempts
	}
	return &HTTPBackend{base: u, client: client, attempts: attempts}, nil
}

// Scheme implements Backend.
func (b *HTTPBackend) Scheme() string { return b.base.Scheme }

// URL implements Backend.
func (b *HTTPBackend) URL() string { return strings.TrimSuffix(b.base.String(), "/") }

func (b *HTTPBackend) objectURL(name string) string {
	u := *b.base
	u.Path += name
	return u.String()
}

// retryable reports whether a failed attempt is worth repeating: transport
// errors, server-side 5xx, and 429 shedding are transient; other 4xx are
// definitive.
func retryable(status int, err error) bool {
	if err != nil {
		return true
	}
	return status >= 500 || status == http.StatusTooManyRequests
}

// retryAfterWait parses a Retry-After header as delta-seconds or an
// HTTP-date; 0 when absent or unparseable.
func retryAfterWait(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// do issues one request with the retry budget. On success the caller owns
// the response body. want lists the statuses that count as success; any
// other non-retryable status is returned as a *httpStatusError.
//
// With a resilience set attached, every request first asks the breaker
// (open ⇒ immediate ErrBackendUnavailable wrapping resilience.ErrOpen),
// every retry is funded by the shared budget (empty ⇒ the attempt loop is
// abandoned as budget-exhausted), and a 429/503 Retry-After header replaces
// the linear backoff, capped at maxServerBackoff and the context deadline.
func (b *HTTPBackend) do(ctx context.Context, method, u string, rangeHdr string, want ...int) (*http.Response, error) {
	var lastErr error
	var wait time.Duration // server-directed backoff from Retry-After
	for attempt := 0; attempt < b.attempts; attempt++ {
		// A canceled context aborts the budget immediately and surfaces
		// ctx.Err() unmarked: cancellation is the caller's decision, not a
		// backend failure, and must not trip the failover taxonomy.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			// An open breaker rejects the request at Allow anyway; fail fast
			// before spending a shared budget token and sleeping the backoff,
			// so a brownout doesn't drain the budget on doomed attempts. A
			// probe-due breaker (ProbeIn elapsed) falls through so this retry
			// can perform the half-open probe.
			if br := b.breaker(); br != nil {
				if bs := br.Snapshot(); bs.State == resilience.StateOpen && bs.ProbeIn > 0 {
					return nil, backendErrf("%s %s: %w after %d attempts, last: %v",
						method, u, resilience.ErrOpen, attempt, lastErr)
				}
			}
			if !b.budget().Withdraw() {
				return nil, backendErrf("%s %s: %w after %d attempts, last: %v",
					method, u, resilience.ErrBudgetExhausted, attempt, lastErr)
			}
			// Server-directed wait when the last response carried
			// Retry-After, otherwise a deterministic linear backoff: long
			// enough to skate over a broken keep-alive connection, short
			// enough for tests.
			d := wait
			if d <= 0 {
				d = time.Duration(attempt) * 10 * time.Millisecond
			} else if d > maxServerBackoff {
				d = maxServerBackoff
			}
			if dl, ok := ctx.Deadline(); ok {
				if rem := time.Until(dl); d > rem {
					d = rem // never sleep past the attempt deadline
				}
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		wait = 0
		req, err := http.NewRequestWithContext(ctx, method, u, nil)
		if err != nil {
			return nil, backendErrf("%s %s: %w", method, u, err)
		}
		if rangeHdr != "" {
			req.Header.Set("Range", rangeHdr)
		}
		var tok resilience.Token
		if br := b.breaker(); br != nil {
			var aerr error
			if tok, aerr = br.Allow(); aerr != nil {
				return nil, backendErrf("%s %s: %w", method, u, aerr)
			}
		}
		resp, err := b.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// Release a granted probe without a verdict: caller-side
				// cancellation says nothing about the dependency.
				if br := b.breaker(); br != nil {
					br.Cancel(tok)
				}
				return nil, ctx.Err()
			}
			b.record(tok, err)
			lastErr = err
			continue
		}
		// The server answered: 5xx and 429 count against the breaker,
		// anything else (including 404) is evidence of health.
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			b.record(tok, fmt.Errorf("%s", resp.Status))
		} else {
			b.record(tok, nil)
		}
		for _, w := range want {
			if resp.StatusCode == w {
				return resp, nil
			}
		}
		wait = retryAfterWait(resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone:
			return nil, notExistf("dataset: %s %s: %s", method, u, resp.Status)
		case retryable(resp.StatusCode, nil):
			lastErr = fmt.Errorf("%s", resp.Status)
			continue
		default:
			return nil, backendErrf("%s %s: unexpected status %s", method, u, resp.Status)
		}
	}
	return nil, backendErrf("%s %s: %d attempts failed, last: %w", method, u, b.attempts, lastErr)
}

// Open implements Backend: a HEAD learns the object's size (memoized per
// URL); reads then go through ranged GETs.
func (b *HTTPBackend) Open(ctx context.Context, name string) (Object, error) {
	u := b.objectURL(name)
	if size, ok := b.sizes.Load(u); ok {
		return &httpObject{be: b, url: u, size: size.(int64)}, nil
	}
	resp, err := b.do(ctx, http.MethodHead, u, "", http.StatusOK)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.ContentLength < 0 {
		return nil, backendErrf("HEAD %s: server reports no content length", u)
	}
	b.c.opens.Add(1)
	b.sizes.Store(u, resp.ContentLength)
	return &httpObject{be: b, url: u, size: resp.ContentLength}, nil
}

// ReadFile implements Backend.
func (b *HTTPBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	u := b.objectURL(name)
	resp, err := b.do(ctx, http.MethodGet, u, "", http.StatusOK)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// Cancellation mid-body is the caller aborting, not the backend
		// failing; keep it out of the ErrBackendUnavailable taxonomy.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, backendErrf("GET %s: reading body: %w", u, err)
	}
	b.c.reads.Add(1)
	b.c.readBytes.Add(int64(len(data)))
	return data, nil
}

// List implements Backend. Plain HTTP servers expose no portable listing
// protocol, and the dataset layout never needs one: every slice is found
// through the index files. Kept unimplemented rather than scraping HTML
// directory pages.
func (b *HTTPBackend) List(ctx context.Context, dir string) ([]string, error) {
	return nil, backendErrf("http backend does not support listing (reads are index-driven)")
}

// Stats implements Backend.
func (b *HTTPBackend) Stats() Stats {
	s := b.c.stats(b.Scheme(), b.URL())
	if b.res != nil {
		rs := b.res.Snapshot()
		s.BreakerState = rs.BreakerState
		s.BreakerTrips = rs.BreakerTrips
		s.BreakerProbes = rs.BreakerProbes
		s.RetryBudgetSpent = rs.BudgetSpent
		s.RetryBudgetDenied = rs.BudgetDenied
		s.HedgedReads = rs.Hedges
		s.HedgeWins = rs.HedgeWins
	}
	return s
}

// Close implements Backend.
func (b *HTTPBackend) Close() error {
	b.client.CloseIdleConnections()
	return nil
}

// httpObject is an Object over one remote file.
type httpObject struct {
	be   *HTTPBackend
	url  string
	size int64
}

// ReadAt implements Object with a ranged GET per call. The reader filters
// issue row- or slice-sized reads, so per-call overhead is amortized over
// kilobytes — and the block cache turns repeat visits into memory copies.
// With a hedger attached, a read that outlives the latency threshold races
// a second identical GET; the attempts write private buffers so the loser
// can finish (or be canceled) without touching the winner's result.
func (o *httpObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	h := o.be.hedger()
	if h == nil {
		return o.readAt(ctx, p, off, &o.be.c)
	}
	type ranged struct {
		buf []byte
		n   int
		err error     // io.EOF rides along with valid short reads
		io  *counters // the attempt's private I/O tally
	}
	r, err := resilience.Hedge(ctx, h, func(ctx context.Context) (ranged, error) {
		buf := make([]byte, len(p))
		var c counters
		n, err := o.readAt(ctx, buf, off, &c)
		if err != nil && err != io.EOF {
			return ranged{}, err
		}
		return ranged{buf, n, err, &c}, nil
	})
	if err != nil {
		return 0, err
	}
	// Only the winning attempt's I/O counts in the backend report: the
	// loser's transfer never reaches a caller, and counting both would make
	// reads/bytes stop reconciling with data returned (HedgeWins already
	// tallies the race itself).
	o.be.c.reads.Add(r.io.reads.Load())
	o.be.c.readBytes.Add(r.io.readBytes.Load())
	copy(p, r.buf[:r.n])
	return r.n, r.err
}

func (o *httpObject) readAt(ctx context.Context, p []byte, off int64, c *counters) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off >= o.size {
		return 0, io.EOF
	}
	rangeHdr := fmt.Sprintf("bytes=%d-%d", off, off+int64(len(p))-1)
	resp, err := o.be.do(ctx, http.MethodGet, o.url, rangeHdr,
		http.StatusPartialContent, http.StatusOK, http.StatusRequestedRangeNotSatisfiable)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusRequestedRangeNotSatisfiable:
		// The object shrank since Open — a remote truncation.
		return 0, io.EOF
	case http.StatusOK:
		// The server ignored the Range header; accept only a whole-object
		// read, otherwise every row read would transfer the full file.
		if off != 0 || int64(len(p)) < o.size {
			return 0, backendErrf("GET %s: server does not support range requests", o.url)
		}
	}
	n, err := io.ReadFull(resp.Body, p)
	c.reads.Add(1)
	c.readBytes.Add(int64(n))
	if err == io.ErrUnexpectedEOF {
		err = io.EOF // short object: io.ReaderAt reports EOF with the partial read
	} else if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return n, cerr // caller aborted mid-body; not a backend failure
		}
		return n, backendErrf("GET %s: reading range %s: %w", o.url, rangeHdr, err)
	}
	return n, err
}

// Size implements Object.
func (o *httpObject) Size() int64 { return o.size }

// Close implements Object.
func (o *httpObject) Close() error { return nil }

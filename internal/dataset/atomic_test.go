package dataset

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haralick4d/internal/synthetic"
)

func writeTestDataset(t *testing.T, dir string) {
	t.Helper()
	v := synthetic.Generate(synthetic.Config{Dims: [4]int{8, 8, 3, 2}, Seed: 5})
	if _, err := Write(dir, v, 2); err != nil {
		t.Fatal(err)
	}
}

// TestWriteLeavesNoTemporaries: every artifact goes through write-temp →
// fsync → rename, and a completed generation must leave none of the
// temporaries behind.
func TestWriteLeavesNoTemporaries(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			t.Errorf("leftover temporary %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPartialGenerationRejected simulates a generator crash by copying a
// strict prefix of a finished dataset — everything written before the
// header. Because dataset.json is published last (and atomically), the
// truncated copy must be rejected by Open rather than served as a smaller
// dataset.
func TestPartialGenerationRejected(t *testing.T) {
	src := t.TempDir()
	writeTestDataset(t, src)
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if rel == "dataset.json" {
			return nil // the crash happened before the header write
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dst); err == nil {
		t.Fatal("Open accepted a dataset whose generation crashed before the header write")
	}
}

// TestStrayTemporaryIgnored: an orphaned .tmp from a crashed earlier
// generation must not disturb a later complete one.
func TestStrayTemporaryIgnored(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir)
	stray := filepath.Join(dir, "node000", SliceFileName(0, 0)+".tmp")
	if err := os.WriteFile(stray, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadVolume(); err != nil {
		t.Fatal(err)
	}
}

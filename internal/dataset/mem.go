package dataset

import (
	"context"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"haralick4d/internal/volume"
)

// MemBackend serves a dataset from memory — the footnote-1 optimization for
// datasets that fit in RAM, the simulation engine's data source, and the
// test substrate that needs no disk or network. It is also a blob writer,
// so WriteMemDataset can lay out the exact on-disk format in memory.
type MemBackend struct {
	name string // registry name; "" until registered

	mu    sync.RWMutex
	files map[string][]byte
	c     counters
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string][]byte)}
}

// WriteFile stores data under the slash-separated name, replacing any
// previous content. The byte slice is retained, not copied.
func (b *MemBackend) WriteFile(name string, data []byte) error {
	b.mu.Lock()
	b.files[path.Clean(name)] = data
	b.mu.Unlock()
	return nil
}

// Scheme implements Backend.
func (b *MemBackend) Scheme() string { return "mem" }

// URL implements Backend.
func (b *MemBackend) URL() string { return "mem://" + b.name }

// Open implements Backend.
func (b *MemBackend) Open(ctx context.Context, name string) (Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	data, ok := b.files[path.Clean(name)]
	b.mu.RUnlock()
	if !ok {
		return nil, notExistf("dataset: mem object %q", name)
	}
	b.c.opens.Add(1)
	return &memObject{be: b, data: data}, nil
}

// ReadFile implements Backend.
func (b *MemBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	data, ok := b.files[path.Clean(name)]
	b.mu.RUnlock()
	if !ok {
		return nil, notExistf("dataset: mem object %q", name)
	}
	b.c.reads.Add(1)
	b.c.readBytes.Add(int64(len(data)))
	// Callers may retain the result; hand out a copy so a later WriteFile
	// cannot mutate it under them.
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// List implements Backend.
func (b *MemBackend) List(ctx context.Context, dir string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prefix := ""
	if dir != "" && dir != "." {
		prefix = path.Clean(dir) + "/"
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := map[string]bool{}
	for name := range b.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements Backend.
func (b *MemBackend) Stats() Stats { return b.c.stats(b.Scheme(), b.URL()) }

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }

// memObject is an Object over an immutable byte slice.
type memObject struct {
	be   *MemBackend
	data []byte
}

// ReadAt implements Object.
func (o *memObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("dataset: mem read at negative offset %d", off)
	}
	if off >= int64(len(o.data)) {
		return 0, io.EOF
	}
	n := copy(p, o.data[off:])
	o.be.c.reads.Add(1)
	o.be.c.readBytes.Add(int64(n))
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Object.
func (o *memObject) Size() int64 { return int64(len(o.data)) }

// Close implements Object.
func (o *memObject) Close() error { return nil }

// memRegistry resolves "mem://name" URLs, so the in-memory backend plugs
// into every URL-driven surface (the façade, the CLIs, the sim engine's
// test harnesses) without new API.
var memRegistry sync.Map // name -> *MemBackend

// RegisterMem publishes the backend under "mem://name", replacing any
// previous registration of that name.
func RegisterMem(name string, b *MemBackend) {
	b.name = name
	memRegistry.Store(name, b)
}

// UnregisterMem removes a published in-memory backend.
func UnregisterMem(name string) { memRegistry.Delete(name) }

// LookupMem returns the backend registered under name.
func LookupMem(name string) (*MemBackend, bool) {
	v, ok := memRegistry.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*MemBackend), true
}

// WriteMemDataset declusters the volume into a fresh in-memory backend with
// the same layout, index format and checksum columns Write produces on
// disk. Open the result with OpenBackend, or RegisterMem it and open
// "mem://name".
func WriteMemDataset(v *volume.Volume, nodes int) (*MemBackend, *Meta, error) {
	return WriteMemDatasetDistributed(v, nodes, RoundRobinDist)
}

// WriteMemDatasetDistributed is WriteMemDataset with an explicit
// declustering policy.
func WriteMemDatasetDistributed(v *volume.Volume, nodes int, dist Distribution) (*MemBackend, *Meta, error) {
	b := NewMemBackend()
	meta, err := writeDataset(b, v, nodes, dist)
	if err != nil {
		return nil, nil, err
	}
	return b, meta, nil
}

// Serve-stale degradation: the opt-in layer that lets a run ride out a
// backend brownout on whatever the block cache already holds.

package dataset

import (
	"context"
	"errors"
	"sync/atomic"
)

// staleBackend converts transport-level unavailability on positioned reads
// into ErrDegradedData, the per-slice failure class a run with
// fault.SkipDegraded knows how to skip and account. Layered outermost —
// above the block cache — so cached blocks keep serving normally during a
// brownout and only the reads that genuinely need the sick backend degrade.
//
// Metadata reads (ReadFile: header, index files) pass through unconverted:
// without them there is no dataset to degrade, so unavailability there must
// stay fatal. Caller-side cancellation also passes through — it is not
// evidence about the data.
type staleBackend struct {
	inner Backend
	stale atomic.Int64
}

func newStaleBackend(inner Backend) *staleBackend { return &staleBackend{inner: inner} }

// staleErrf rewrites an unavailable error as degraded. The cause is folded
// in with %v on purpose: keeping ErrBackendUnavailable in the chain would
// defeat the conversion, because the slice-read classifier checks
// unavailability before degradation.
func (b *staleBackend) staleErrf(err error) error {
	b.stale.Add(1)
	return degradedf("backend unavailable, serving degraded (%v)", err)
}

func (b *staleBackend) Scheme() string { return b.inner.Scheme() }
func (b *staleBackend) URL() string    { return b.inner.URL() }

func (b *staleBackend) Open(ctx context.Context, name string) (Object, error) {
	obj, err := b.inner.Open(ctx, name)
	if err != nil {
		if errors.Is(err, ErrBackendUnavailable) {
			return nil, b.staleErrf(err)
		}
		return nil, err
	}
	return &staleObject{be: b, inner: obj}, nil
}

func (b *staleBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	return b.inner.ReadFile(ctx, name)
}

func (b *staleBackend) List(ctx context.Context, dir string) ([]string, error) {
	return b.inner.List(ctx, dir)
}

func (b *staleBackend) Stats() Stats {
	s := b.inner.Stats()
	s.StaleReads = b.stale.Load()
	return s
}

func (b *staleBackend) Close() error { return b.inner.Close() }

type staleObject struct {
	be    *staleBackend
	inner Object
}

func (o *staleObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	n, err := o.inner.ReadAt(ctx, p, off)
	if err != nil && errors.Is(err, ErrBackendUnavailable) {
		return n, o.be.staleErrf(err)
	}
	return n, err
}

func (o *staleObject) Size() int64  { return o.inner.Size() }
func (o *staleObject) Close() error { return o.inner.Close() }

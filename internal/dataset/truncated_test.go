package dataset

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadSliceRegionTruncatedFile is the regression test for the
// short-read bug: ReadAt on a truncated slice file returns io.EOF with a
// partial row, which an earlier version ignored — the affected rows came
// back silently zeroed. Every row touching the truncation point must now
// fail with an error naming the file and row.
func TestReadSliceRegionTruncatedFile(t *testing.T) {
	v := randomVolume(11, [4]int{10, 8, 2, 2})
	st, meta := writeTemp(t, v, 1)
	z, tt := 0, 1
	node := OwnerNode(meta, z, tt)
	ref := SliceRef{File: SliceFileName(z, tt), Z: z, T: tt}

	// Cut the file mid-way through row 5 (rows are 2·X = 20 bytes).
	path := filepath.Join(st.NodeDir(node), ref.File)
	if err := os.Truncate(path, 5*20+7); err != nil {
		t.Fatal(err)
	}

	// Rows entirely before the cut still read fine.
	if _, err := st.ReadSliceRegion(node, ref, 0, 10, 0, 5); err != nil {
		t.Fatalf("rows before the truncation failed: %v", err)
	}
	// Any region touching the cut fails loudly, naming file and row.
	for _, r := range [][4]int{{0, 10, 5, 6}, {0, 10, 0, 8}, {4, 9, 5, 7}, {0, 10, 7, 8}} {
		_, err := st.ReadSliceRegion(node, ref, r[0], r[1], r[2], r[3])
		if err == nil {
			t.Fatalf("region %v of a truncated file read without error", r)
		}
		if !strings.Contains(err.Error(), ref.File) {
			t.Errorf("error does not name the file: %v", err)
		}
		if !strings.Contains(err.Error(), "row") {
			t.Errorf("error does not name the row: %v", err)
		}
	}

	// Whole-slice reads of the truncated file fail on the size check.
	if _, err := st.ReadSlice(node, ref); err == nil {
		t.Error("ReadSlice of a truncated file succeeded")
	}
}

// TestReadSliceIntoMatchesReadSlice checks the buffer-reusing variants
// produce the same values as the allocating ones.
func TestReadSliceIntoMatchesReadSlice(t *testing.T) {
	v := randomVolume(12, [4]int{9, 7, 2, 2})
	st, meta := writeTemp(t, v, 2)
	buf := make([]uint16, 9*7)
	regionBuf := make([]uint16, 4*3)
	for tt := 0; tt < 2; tt++ {
		for z := 0; z < 2; z++ {
			node := OwnerNode(meta, z, tt)
			ref := SliceRef{File: SliceFileName(z, tt), Z: z, T: tt}
			want, err := st.ReadSlice(node, ref)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.ReadSliceInto(node, ref, buf); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("slice (z=%d, t=%d) value %d: %d != %d", z, tt, i, buf[i], want[i])
				}
			}
			wantR, err := st.ReadSliceRegion(node, ref, 2, 6, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.ReadSliceRegionInto(node, ref, 2, 6, 1, 4, regionBuf); err != nil {
				t.Fatal(err)
			}
			for i := range wantR {
				if regionBuf[i] != wantR[i] {
					t.Fatalf("region value %d: %d != %d", i, regionBuf[i], wantR[i])
				}
			}
		}
	}
	// Wrong-size buffers are rejected.
	node := OwnerNode(meta, 0, 0)
	ref := SliceRef{File: SliceFileName(0, 0), Z: 0, T: 0}
	if err := st.ReadSliceInto(node, ref, make([]uint16, 5)); err == nil {
		t.Error("short slice buffer accepted")
	}
	if err := st.ReadSliceRegionInto(node, ref, 0, 4, 0, 4, make([]uint16, 5)); err == nil {
		t.Error("short region buffer accepted")
	}
}

// TestDecodeUint16s checks the strided bulk decoder against the scalar
// reference at lengths around the 4-value unroll boundary.
func TestDecodeUint16s(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 65, 66, 67} {
		src := make([]byte, 2*n)
		rng.Read(src)
		want := make([]uint16, n)
		for i := range want {
			want[i] = uint16(src[2*i]) | uint16(src[2*i+1])<<8
		}
		got := make([]uint16, n)
		DecodeUint16s(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d value %d: %#x != %#x", n, i, got[i], want[i])
			}
		}
	}
}

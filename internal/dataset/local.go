package dataset

import (
	"container/list"
	"context"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultMaxOpenFiles bounds the local backend's file-descriptor cache. A
// dataset node holds one file per 2D slice, so reads used to pay an
// open/stat/close per call; the cache keeps recently-read slices open and
// serves repeat reads (region reads issue one per row window, read-ahead
// revisits slices per chunk) from the same descriptor.
const DefaultMaxOpenFiles = 128

// LocalBackend serves a dataset from a local directory tree — the paper's
// node-local disks — through a bounded LRU cache of open file handles.
type LocalBackend struct {
	dir     string
	maxOpen int // <0 disables the handle cache (open per read)

	mu     sync.Mutex
	lru    *list.List // of *localEntry; front = most recently used
	byName map[string]*localEntry
	c      counters
}

// localEntry is one cached open file. refs counts the Objects currently
// holding it: entries are evicted only once unreferenced, so concurrent
// readers of the same slice share a descriptor safely (os.File.ReadAt is
// concurrency-safe and carries no shared offset).
type localEntry struct {
	name string
	f    *os.File
	size int64
	refs int
	elem *list.Element
}

// NewLocalBackend returns a Backend over the given dataset directory.
// maxOpen bounds the open-handle cache: 0 selects DefaultMaxOpenFiles and
// a negative value disables caching entirely (every Open hits the OS — the
// pre-backend behaviour, kept for the microbenchmark baseline).
func NewLocalBackend(dir string, maxOpen int) *LocalBackend {
	if maxOpen == 0 {
		maxOpen = DefaultMaxOpenFiles
	}
	return &LocalBackend{
		dir:     dir,
		maxOpen: maxOpen,
		lru:     list.New(),
		byName:  make(map[string]*localEntry),
	}
}

// Dir returns the backend's root directory.
func (b *LocalBackend) Dir() string { return b.dir }

// Scheme implements Backend.
func (b *LocalBackend) Scheme() string { return "file" }

// URL implements Backend.
func (b *LocalBackend) URL() string { return "file://" + b.dir }

func (b *LocalBackend) path(name string) string {
	return filepath.Join(b.dir, filepath.FromSlash(name))
}

// Open implements Backend. The returned Object's Close releases the cached
// handle back to the LRU instead of closing it.
func (b *LocalBackend) Open(ctx context.Context, name string) (Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.maxOpen < 0 {
		f, err := os.Open(b.path(name))
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		b.c.opens.Add(1)
		return &localObject{be: b, f: f, size: st.Size()}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byName[name]
	if e == nil {
		f, err := os.Open(b.path(name))
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		b.c.opens.Add(1)
		e = &localEntry{name: name, f: f, size: st.Size()}
		e.elem = b.lru.PushFront(e)
		b.byName[name] = e
		b.evictLocked()
	} else {
		b.lru.MoveToFront(e.elem)
	}
	e.refs++
	return &localObject{be: b, entry: e, f: e.f, size: e.size}, nil
}

// evictLocked closes least-recently-used unreferenced handles until the
// cache is within bounds. Entries still referenced by open Objects are
// skipped; they retry eviction when released.
func (b *LocalBackend) evictLocked() {
	for b.lru.Len() > b.maxOpen {
		evicted := false
		for el := b.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*localEntry)
			if e.refs > 0 {
				continue
			}
			b.lru.Remove(el)
			delete(b.byName, e.name)
			e.f.Close()
			evicted = true
			break
		}
		if !evicted {
			return // everything over budget is in use; bounded by concurrency
		}
	}
}

// release returns a cached handle and re-runs eviction in case the cache
// overflowed while every entry was referenced.
func (b *LocalBackend) release(e *localEntry) {
	b.mu.Lock()
	e.refs--
	b.evictLocked()
	b.mu.Unlock()
}

// ReadFile implements Backend.
func (b *LocalBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(b.path(name))
	if err != nil {
		return nil, err
	}
	b.c.reads.Add(1)
	b.c.readBytes.Add(int64(len(data)))
	return data, nil
}

// List implements Backend.
func (b *LocalBackend) List(ctx context.Context, dir string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(filepath.Join(b.dir, filepath.FromSlash(dir)))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements Backend.
func (b *LocalBackend) Stats() Stats { return b.c.stats(b.Scheme(), b.URL()) }

// Close implements Backend: every cached descriptor is closed, including
// ones still referenced (the store is done with the backend).
func (b *LocalBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, e := range b.byName {
		if err := e.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.byName = make(map[string]*localEntry)
	b.lru.Init()
	return first
}

// localObject is an Object over a (possibly shared) *os.File.
type localObject struct {
	be    *LocalBackend
	entry *localEntry // nil in open-per-read mode
	f     *os.File
	size  int64
	once  sync.Once
}

// ReadAt implements Object.
func (o *localObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n, err := o.f.ReadAt(p, off)
	o.be.c.reads.Add(1)
	o.be.c.readBytes.Add(int64(n))
	return n, err
}

// Size implements Object.
func (o *localObject) Size() int64 { return o.size }

// Close implements Object.
func (o *localObject) Close() error {
	var err error
	o.once.Do(func() {
		if o.entry != nil {
			o.be.release(o.entry)
		} else {
			err = o.f.Close()
		}
	})
	return err
}

// localDirOf returns the root directory when the backend (or the backend a
// cache or fault wrapper wraps) is local, else "".
func localDirOf(b Backend) string {
	switch be := b.(type) {
	case *LocalBackend:
		return be.Dir()
	case *CachedBackend:
		return localDirOf(be.inner)
	case *wrappedBackend:
		return localDirOf(be.Backend)
	}
	return ""
}

package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestChecksumsRoundTrip(t *testing.T) {
	v := randomVolume(11, [4]int{8, 6, 4, 3})
	st, meta := writeTemp(t, v, 2)
	if !meta.Checksums {
		t.Fatal("freshly written dataset not marked as checksummed")
	}
	out := make([]uint16, 8*6)
	for node := 0; node < meta.Nodes; node++ {
		refs, err := st.NodeIndex(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if !ref.HasCRC {
				t.Fatalf("slice %s has no checksum", ref.File)
			}
			if err := st.ReadSliceInto(node, ref, out); err != nil {
				t.Fatalf("verified read of %s: %v", ref.File, err)
			}
		}
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	v := randomVolume(12, [4]int{8, 6, 2, 2})
	st, _ := writeTemp(t, v, 1)
	refs, err := st.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	ref := refs[0]
	path := filepath.Join(st.NodeDir(0), ref.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := make([]uint16, 8*6)
	err = st.ReadSliceInto(0, ref, out)
	if !errors.Is(err, ErrDegradedData) {
		t.Fatalf("corrupt read err = %v, want ErrDegradedData", err)
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt read err = %v, want checksum mismatch", err)
	}
	// Region reads skip checksum verification by design: the flipped byte
	// still decodes, it just decodes wrong.
	if err := st.ReadSliceRegionInto(0, ref, 0, 4, 0, 3, out[:4*3]); err != nil {
		t.Fatalf("region read after flip: %v", err)
	}
}

func TestTruncatedAndMissingSlicesDegrade(t *testing.T) {
	v := randomVolume(13, [4]int{8, 6, 2, 2})
	st, _ := writeTemp(t, v, 1)
	refs, err := st.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint16, 8*6)

	trunc := filepath.Join(st.NodeDir(0), refs[0].File)
	if err := os.Truncate(trunc, 7); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadSliceInto(0, refs[0], out); !errors.Is(err, ErrDegradedData) {
		t.Fatalf("truncated read err = %v, want ErrDegradedData", err)
	}

	if err := os.Remove(filepath.Join(st.NodeDir(0), refs[1].File)); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadSliceInto(0, refs[1], out); !errors.Is(err, ErrDegradedData) {
		t.Fatalf("missing-file read err = %v, want ErrDegradedData", err)
	}
	if err := st.ReadSliceRegionInto(0, refs[1], 0, 8, 0, 6, out); !errors.Is(err, ErrDegradedData) {
		t.Fatalf("missing-file region read err = %v, want ErrDegradedData", err)
	}
}

// A pre-checksum index (three columns) still parses; its refs carry no CRC
// and whole-slice reads skip verification.
func TestLegacyIndexWithoutChecksums(t *testing.T) {
	v := randomVolume(14, [4]int{8, 6, 2, 2})
	st, meta := writeTemp(t, v, 1)
	idx := filepath.Join(st.NodeDir(0), "index.txt")
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	var legacy strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		f := strings.Fields(line)
		if len(f) != 4 {
			t.Fatalf("expected 4-column index line, got %q", line)
		}
		legacy.WriteString(strings.Join(f[:3], " ") + "\n")
	}
	if err := os.WriteFile(idx, []byte(legacy.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(st.Dir)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := st2.NodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != meta.Dims[2]*meta.Dims[3] {
		t.Fatalf("legacy index has %d refs", len(refs))
	}
	out := make([]uint16, 8*6)
	for _, ref := range refs {
		if ref.HasCRC {
			t.Fatalf("legacy ref %s claims a checksum", ref.File)
		}
		if err := st2.ReadSliceInto(0, ref, out); err != nil {
			t.Fatalf("legacy read of %s: %v", ref.File, err)
		}
	}
}

func TestCorruptSlices(t *testing.T) {
	if _, err := CorruptSlices(t.TempDir(), -0.1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := CorruptSlices(t.TempDir(), 1.5, 1); err == nil {
		t.Error("fraction above 1 accepted")
	}

	write := func() (*Store, string) {
		dir := t.TempDir()
		if _, err := Write(dir, randomVolume(15, [4]int{8, 6, 4, 4}), 2); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st, dir
	}

	st, dir := write()
	if out, err := CorruptSlices(dir, 0, 99); err != nil || out != nil {
		t.Fatalf("frac 0 = %v, %v, want no-op", out, err)
	}

	damaged, err := CorruptSlices(dir, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4; len(damaged) != want { // 16 slices * 0.25
		t.Fatalf("damaged %d slices, want %d: %v", len(damaged), want, damaged)
	}
	if !sortedStrings(damaged) {
		t.Errorf("damaged list not sorted: %v", damaged)
	}
	// Every damaged slice now fails a verified whole-slice read.
	degraded := 0
	out := make([]uint16, 8*6)
	for node := 0; node < st.Meta.Nodes; node++ {
		refs, err := st.NodeIndex(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if err := st.ReadSliceInto(node, ref, out); err != nil {
				if !errors.Is(err, ErrDegradedData) {
					t.Fatalf("read of %s: %v, want ErrDegradedData", ref.File, err)
				}
				degraded++
			}
		}
	}
	if degraded != len(damaged) {
		t.Errorf("%d slices read degraded, want %d", degraded, len(damaged))
	}

	// Same (frac, seed) on an identical dataset picks the same victims.
	_, dir2 := write()
	damaged2, err := CorruptSlices(dir2, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(damaged, damaged2) {
		t.Errorf("not deterministic:\n%v\n%v", damaged, damaged2)
	}

	// A tiny positive fraction still damages at least one slice.
	_, dir3 := write()
	if d, err := CorruptSlices(dir3, 0.001, 3); err != nil || len(d) != 1 {
		t.Fatalf("tiny fraction damaged %v (%v), want exactly 1", d, err)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

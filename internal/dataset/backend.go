package dataset

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync/atomic"
)

// ErrBackendUnavailable marks transport-level storage failures — a remote
// server that cannot be reached, keeps failing after retries, or answers
// with a server error. It is deliberately distinct from ErrDegradedData:
// degraded means "this slice's bytes are gone or wrong, the rest of the
// dataset is fine" (skippable under fault.SkipDegraded), while unavailable
// means "the storage itself is not answering" — skipping slices would
// silently drop the whole dataset, so these always abort.
var ErrBackendUnavailable = errors.New("dataset: backend unavailable")

// backendErrf builds an ErrBackendUnavailable-wrapped error; format may
// itself contain a %w for the underlying cause.
func backendErrf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBackendUnavailable}, args...)...)
}

// Object is one open dataset object (a slice file, index or header) served
// by a Backend. Reads are positioned and cancellable; implementations must
// be safe for concurrent ReadAt calls, matching io.ReaderAt semantics
// otherwise (a short read always carries a non-nil error, io.EOF included).
type Object interface {
	// ReadAt reads len(p) bytes at byte offset off into p.
	ReadAt(ctx context.Context, p []byte, off int64) (int, error)
	// Size returns the object's byte length as known at Open time.
	Size() int64
	// Close releases the handle. For pooled backends this returns the
	// handle to the pool rather than closing the underlying resource.
	Close() error
}

// Backend abstracts the storage a dataset is read from: a local directory
// tree, an in-memory blob set, or a remote server answering range reads.
// Object names are slash-separated paths relative to the dataset root
// ("dataset.json", "node000/index.txt", "node000/slice_t0000_z0000.raw");
// the per-slice checksum columns of the index files travel through
// unchanged, so the degraded-read semantics (CRC verify, ErrDegradedData)
// apply identically to every backend.
//
// Implementations must be safe for concurrent use: the reader filters open
// and read objects from many goroutines at once.
type Backend interface {
	// Scheme returns the backend's URL scheme ("file", "mem", "http").
	Scheme() string
	// URL returns the backend's root location in URL form.
	URL() string
	// Open opens the named object for positioned reads. A missing object
	// reports an error matching fs.ErrNotExist; a transport failure reports
	// one matching ErrBackendUnavailable.
	Open(ctx context.Context, name string) (Object, error)
	// ReadFile reads the whole named object (used for the header and the
	// index files, which are small and read once).
	ReadFile(ctx context.Context, name string) ([]byte, error)
	// List returns the names of the objects directly under the given
	// slash-separated directory ("" for the root), sorted.
	List(ctx context.Context, dir string) ([]string, error)
	// Stats snapshots the backend's I/O counters.
	Stats() Stats
	// Close releases every resource the backend holds (open handles,
	// idle connections). Objects opened earlier stay usable only on
	// backends that do not pool handles.
	Close() error
}

// Stats is a point-in-time snapshot of a backend's counters. The cache
// fields stay zero unless the backend is wrapped by a CachedBackend, which
// overlays its hit/miss/evict/fetch counters on the inner backend's I/O
// counts.
type Stats struct {
	Scheme string `json:"scheme"`
	URL    string `json:"url,omitempty"`
	// Opens counts real handle acquisitions (os.Open calls, HTTP HEADs) —
	// not cache-served reuses of an already-open handle.
	Opens int64 `json:"opens"`
	// Reads counts positioned and whole-object read operations issued to
	// the underlying storage; ReadBytes is their byte total.
	Reads     int64 `json:"reads"`
	ReadBytes int64 `json:"read_bytes"`
	// Block-cache counters (CachedBackend only): lookup hits and misses,
	// evictions of resident blocks, and the bytes fetched from the inner
	// backend to fill missed blocks.
	CacheHits       int64 `json:"cache_hits,omitempty"`
	CacheMisses     int64 `json:"cache_misses,omitempty"`
	CacheEvictions  int64 `json:"cache_evictions,omitempty"`
	CacheFetchBytes int64 `json:"cache_fetch_bytes,omitempty"`
	// Resilience counters, populated when the backend carries a
	// resilience.Set (URLOptions.Resilience / ResiliencePolicy): circuit
	// breaker state and transition counts, shared-retry-budget spend, and
	// hedged-read outcomes. StaleReads counts unavailable reads converted
	// to degraded by the serve-stale layer.
	BreakerState      string `json:"breaker_state,omitempty"`
	BreakerTrips      int64  `json:"breaker_trips,omitempty"`
	BreakerProbes     int64  `json:"breaker_probes,omitempty"`
	RetryBudgetSpent  int64  `json:"retry_budget_spent,omitempty"`
	RetryBudgetDenied int64  `json:"retry_budget_denied,omitempty"`
	HedgedReads       int64  `json:"hedged_reads,omitempty"`
	HedgeWins         int64  `json:"hedge_wins,omitempty"`
	StaleReads        int64  `json:"stale_reads,omitempty"`
}

// counters is the atomic counter set every backend embeds.
type counters struct {
	opens     atomic.Int64
	reads     atomic.Int64
	readBytes atomic.Int64
}

func (c *counters) stats(scheme, url string) Stats {
	return Stats{
		Scheme:    scheme,
		URL:       url,
		Opens:     c.opens.Load(),
		Reads:     c.reads.Load(),
		ReadBytes: c.readBytes.Load(),
	}
}

// notExistf builds an fs.ErrNotExist-matching error.
func notExistf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, fs.ErrNotExist)...)
}

// WrapObjects returns a Backend whose opened objects route every read
// through wrap — the fault-injection seam. The injectors in internal/fault
// (CorruptReaderAt, TruncatedReaderAt, SlowReaderAt) are plain io.ReaderAt
// wrappers, so they plug in here directly and exercise the same degraded-
// read detection (size check, CRC verify) on any backend, local or remote.
// wrap receives the object's name and may return r unchanged to leave an
// object healthy.
func WrapObjects(b Backend, wrap func(name string, r io.ReaderAt) io.ReaderAt) Backend {
	return &wrappedBackend{Backend: b, wrap: wrap}
}

type wrappedBackend struct {
	Backend
	wrap func(name string, r io.ReaderAt) io.ReaderAt
}

func (w *wrappedBackend) Open(ctx context.Context, name string) (Object, error) {
	obj, err := w.Backend.Open(ctx, name)
	if err != nil {
		return nil, err
	}
	r := w.wrap(name, &objectReaderAt{obj: obj})
	return &wrappedObject{inner: obj, r: r}, nil
}

// objectReaderAt adapts a ctx-aware Object to the plain io.ReaderAt the
// fault injectors wrap. The injectors are local and synchronous, so the
// background context loses nothing.
type objectReaderAt struct{ obj Object }

func (a *objectReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return a.obj.ReadAt(context.Background(), p, off)
}

type wrappedObject struct {
	inner Object
	r     io.ReaderAt
}

func (o *wrappedObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return o.r.ReadAt(p, off)
}

func (o *wrappedObject) Size() int64  { return o.inner.Size() }
func (o *wrappedObject) Close() error { return o.inner.Close() }

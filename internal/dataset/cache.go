package dataset

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultCacheBlockSize is the block granularity of the read cache when the
// caller asks for caching without sizing the blocks: 128 KiB holds a full
// row window of any realistic slice and keeps remote range reads chunky.
const DefaultCacheBlockSize = 128 * 1024

// CachedBackend layers a fixed-size block cache between any Backend and
// the readers — the rclone-VFS idiom: object bytes are cached in
// blockSize-aligned blocks under a global LRU budget of capacity blocks, so
// re-reads of hot slices (chunk overlap, read-ahead revisits, repeated
// sweeps) are served from memory instead of the backing store. The cache is
// read-through and never invalidates: dataset objects are immutable once
// the header is published.
//
// Only positioned object reads are cached; ReadFile (header, index files —
// read once each) and List pass through.
type CachedBackend struct {
	inner     Backend
	blockSize int
	capacity  int

	mu     sync.Mutex
	lru    *list.List // of *cacheBlock; front = most recently used
	blocks map[cacheKey]*cacheBlock

	hits, misses, evictions, fetchBytes atomic.Int64
}

type cacheKey struct {
	name string
	idx  int64 // block index: byte offset / blockSize
}

type cacheBlock struct {
	key  cacheKey
	data []byte
	elem *list.Element
}

// NewCachedBackend wraps inner with a cache of capacity blocks of blockSize
// bytes each. capacity must be positive; blockSize 0 selects
// DefaultCacheBlockSize, negative is rejected.
func NewCachedBackend(inner Backend, blockSize, capacity int) (*CachedBackend, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dataset: cache capacity %d blocks must be positive", capacity)
	}
	if blockSize == 0 {
		blockSize = DefaultCacheBlockSize
	}
	if blockSize < 0 {
		return nil, fmt.Errorf("dataset: cache block size %d must be positive", blockSize)
	}
	return &CachedBackend{
		inner:     inner,
		blockSize: blockSize,
		capacity:  capacity,
		lru:       list.New(),
		blocks:    make(map[cacheKey]*cacheBlock),
	}, nil
}

// Inner returns the wrapped backend.
func (b *CachedBackend) Inner() Backend { return b.inner }

// Scheme implements Backend (the inner backend's scheme; the cache is a
// layer, not a location).
func (b *CachedBackend) Scheme() string { return b.inner.Scheme() }

// URL implements Backend.
func (b *CachedBackend) URL() string { return b.inner.URL() }

// Open implements Backend.
func (b *CachedBackend) Open(ctx context.Context, name string) (Object, error) {
	obj, err := b.inner.Open(ctx, name)
	if err != nil {
		return nil, err
	}
	return &cachedObject{be: b, name: name, inner: obj}, nil
}

// ReadFile implements Backend.
func (b *CachedBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	return b.inner.ReadFile(ctx, name)
}

// List implements Backend.
func (b *CachedBackend) List(ctx context.Context, dir string) ([]string, error) {
	return b.inner.List(ctx, dir)
}

// Stats implements Backend: the inner backend's I/O counters overlaid with
// the cache's hit/miss/evict/fetch counters.
func (b *CachedBackend) Stats() Stats {
	s := b.inner.Stats()
	s.CacheHits += b.hits.Load()
	s.CacheMisses += b.misses.Load()
	s.CacheEvictions += b.evictions.Load()
	s.CacheFetchBytes += b.fetchBytes.Load()
	return s
}

// Close implements Backend.
func (b *CachedBackend) Close() error {
	b.mu.Lock()
	b.blocks = make(map[cacheKey]*cacheBlock)
	b.lru.Init()
	b.mu.Unlock()
	return b.inner.Close()
}

// lookup returns the cached block's bytes, or nil on a miss.
func (b *CachedBackend) lookup(key cacheKey) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	blk, ok := b.blocks[key]
	if !ok {
		return nil
	}
	b.lru.MoveToFront(blk.elem)
	return blk.data
}

// insert publishes a fetched block, evicting from the LRU tail past
// capacity. A concurrent fetch of the same block may have landed first;
// keeping the existing copy preserves LRU position and drops the duplicate.
func (b *CachedBackend) insert(key cacheKey, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.blocks[key]; ok {
		return
	}
	blk := &cacheBlock{key: key, data: data}
	blk.elem = b.lru.PushFront(blk)
	b.blocks[key] = blk
	for len(b.blocks) > b.capacity {
		tail := b.lru.Back()
		old := tail.Value.(*cacheBlock)
		b.lru.Remove(tail)
		delete(b.blocks, old.key)
		b.evictions.Add(1)
	}
}

// cachedObject serves positioned reads from the shared block cache,
// fetching missed blocks from the inner object at block granularity.
type cachedObject struct {
	be    *CachedBackend
	name  string
	inner Object
}

// ReadAt implements Object.
func (o *cachedObject) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	size := o.inner.Size()
	if off < 0 {
		return 0, fmt.Errorf("dataset: cached read at negative offset %d", off)
	}
	if off >= size {
		return 0, io.EOF
	}
	bs := int64(o.be.blockSize)
	n := 0
	for n < len(p) && off+int64(n) < size {
		pos := off + int64(n)
		idx := pos / bs
		key := cacheKey{name: o.name, idx: idx}
		blockOff := idx * bs
		blockLen := bs
		if blockOff+blockLen > size {
			blockLen = size - blockOff
		}
		data := o.be.lookup(key)
		if data == nil {
			o.be.misses.Add(1)
			buf := make([]byte, blockLen)
			rn, err := o.inner.ReadAt(ctx, buf, blockOff)
			o.be.fetchBytes.Add(int64(rn))
			if err != nil && !(err == io.EOF && int64(rn) == blockLen) {
				// A short block means the object shrank under us; surface the
				// partial bytes the caller's range covers, then the error.
				if int64(rn) > pos-blockOff {
					n += copy(p[n:], buf[pos-blockOff:rn])
				}
				return n, err
			}
			data = buf
			o.be.insert(key, data)
		} else {
			o.be.hits.Add(1)
		}
		if pos-blockOff >= int64(len(data)) {
			return n, io.EOF
		}
		n += copy(p[n:], data[pos-blockOff:])
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Object.
func (o *cachedObject) Size() int64 { return o.inner.Size() }

// Close implements Object.
func (o *cachedObject) Close() error { return o.inner.Close() }

package dataset

import (
	"strings"
	"testing"
)

// FuzzParseIndex throws arbitrary bytes at the index.txt parser. The parser
// must never panic, and on success every returned ref must satisfy the
// invariants the readers rely on: in-range coordinates, a non-empty file
// name, and a round-trip through writeIndex that parses back identically.
func FuzzParseIndex(f *testing.F) {
	// The two wire formats: PR-1's 3-column index and the current 4-column
	// index with the CRC-32C hex checksum.
	f.Add([]byte("slice_t0000_z0000.raw 0 0\nslice_t0001_z0002.raw 1 2\n"))
	f.Add([]byte("slice_t0000_z0000.raw 0 0 deadbeef\nslice_t0001_z0002.raw 1 2 0a1b2c3d\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n  \n")) // blank lines are skipped
	f.Add([]byte("a.raw 0"))
	f.Add([]byte("a.raw 0 0 ff ff"))
	f.Add([]byte("a.raw x 0"))
	f.Add([]byte("a.raw 0 0 nothex"))
	f.Add([]byte("a.raw -1 0"))
	f.Add([]byte("a.raw 99 99"))

	dims := [4]int{8, 8, 4, 3}
	f.Fuzz(func(t *testing.T, raw []byte) {
		refs, err := parseIndex(7, raw, dims)
		if err != nil {
			if !strings.Contains(err.Error(), "node 7") && !strings.Contains(err.Error(), "dataset:") {
				t.Errorf("error lost its context: %v", err)
			}
			return
		}
		for _, r := range refs {
			if r.File == "" {
				t.Fatalf("accepted ref with empty file name: %+v", r)
			}
			if r.T < 0 || r.T >= dims[3] || r.Z < 0 || r.Z >= dims[2] {
				t.Fatalf("accepted out-of-range ref: %+v", r)
			}
		}
		// Round-trip: re-serialize through the writer's formatter and
		// re-parse; the refs must survive unchanged.
		mem := NewMemBackend()
		if err := writeIndex(mem, "roundtrip.txt", refs); err != nil {
			t.Fatalf("writeIndex: %v", err)
		}
		data, ok := mem.files["roundtrip.txt"]
		if !ok {
			t.Fatal("writeIndex wrote nothing")
		}
		again, err := parseIndex(7, data, dims)
		if err != nil {
			t.Fatalf("re-parse of serialized index failed: %v\nindex:\n%s", err, data)
		}
		if len(again) != len(refs) {
			t.Fatalf("round trip changed ref count: %d != %d", len(again), len(refs))
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("ref %d changed in round trip: %+v != %+v", i, again[i], refs[i])
			}
		}
	})
}

// Package dataset implements the paper's disk-resident 4D dataset layout
// (§4.2): the 2D image slices making up each 3D volume are declustered
// round-robin across storage nodes; every slice is stored in its own raw
// file, and each storage node keeps a simple index file associating each
// image file with its ⟨time step, slice number⟩ tuple.
//
// On-disk layout under a dataset root directory:
//
//	dataset.json                 header: dims, node count, global min/max
//	node000/index.txt            lines: <filename> <t> <z>
//	node000/slice_t0000_z0000.raw X·Y little-endian uint16 values, x fastest
//	node001/...
//
// A "storage node" is a subdirectory; in a genuinely distributed deployment
// each subdirectory lives on a different machine's local disk, but the
// format (and all readers) only ever touch one node directory at a time, so
// the simulation on one host is faithful.
package dataset

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"haralick4d/internal/volume"
)

// FormatVersion identifies the on-disk format.
const FormatVersion = 1

// ErrDegradedData marks per-slice data failures — a missing, truncated,
// short-read or checksum-mismatched slice file. Callers (the reader filters
// under fault.SkipDegraded) classify with errors.Is and skip the slice
// instead of aborting; argument-validation errors (wrong buffer size, region
// out of bounds) are never marked degraded.
var ErrDegradedData = errors.New("dataset: degraded data")

// degradedf builds an ErrDegradedData-wrapped error; format may itself
// contain a %w for the underlying cause.
func degradedf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrDegradedData}, args...)...)
}

// castagnoli is the CRC-32C table used for the per-slice checksums (the
// polynomial with hardware support on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Distribution selects how 2D slices are declustered across storage nodes.
// The paper uses round-robin because "common analysis queries specify entire
// 3D volumes over a range of time steps" (§4.2); the alternatives are kept
// for the declustering ablation.
type Distribution int

const (
	// RoundRobinDist deals slices to nodes in turn by global slice id —
	// the paper's layout; every volume read touches all nodes evenly.
	RoundRobinDist Distribution = iota
	// BlockDist stores contiguous runs of slices per node — good locality
	// for single-node scans, poor parallelism for volume queries.
	BlockDist
	// SliceModDist places all time steps of slice z on node z mod N —
	// favors temporal queries of one slice, serializes volume reads of
	// few-slice datasets.
	SliceModDist
)

// String returns the distribution's flag name.
func (d Distribution) String() string {
	switch d {
	case RoundRobinDist:
		return "round-robin"
	case BlockDist:
		return "block"
	case SliceModDist:
		return "slice-mod"
	}
	return fmt.Sprintf("distribution(%d)", int(d))
}

// ParseDistribution is the inverse of String.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "round-robin", "rr":
		return RoundRobinDist, nil
	case "block":
		return BlockDist, nil
	case "slice-mod":
		return SliceModDist, nil
	}
	return 0, fmt.Errorf("dataset: unknown distribution %q", s)
}

// Meta is the dataset header stored in dataset.json. Min and Max record the
// global intensity range so distributed readers requantize consistently
// without a second pass over the data. Dist records the declustering
// policy (absent/zero = round-robin, the paper's layout).
type Meta struct {
	Version int          `json:"version"`
	Dims    [4]int       `json:"dims"` // X, Y, Z, T
	Nodes   int          `json:"nodes"`
	Min     uint16       `json:"min"`
	Max     uint16       `json:"max"`
	Dist    Distribution `json:"dist,omitempty"`
	// Checksums records that the index files carry per-slice CRC-32C
	// checksums (the optional fourth index column). Datasets written before
	// checksums existed read fine: the field is absent and whole-slice reads
	// simply skip verification.
	Checksums bool `json:"checksums,omitempty"`
}

// SliceRef locates one 2D image slice within a storage node.
type SliceRef struct {
	File string // file name relative to the node directory
	T, Z int
	// CRC is the CRC-32C of the slice file's raw bytes; HasCRC tells a
	// checksum of zero apart from a pre-checksum index line.
	CRC    uint32
	HasCRC bool
}

// SliceID returns the global linear id of the slice, t·Z + z — the order in
// which slices are dealt round-robin to storage nodes.
func SliceID(meta *Meta, z, t int) int { return t*meta.Dims[2] + z }

// OwnerNode returns the storage node that holds slice (z, t) under the
// dataset's declustering policy.
func OwnerNode(meta *Meta, z, t int) int {
	switch meta.Dist {
	case BlockDist:
		total := meta.Dims[2] * meta.Dims[3]
		return SliceID(meta, z, t) * meta.Nodes / total
	case SliceModDist:
		return z % meta.Nodes
	default:
		return SliceID(meta, z, t) % meta.Nodes
	}
}

// SliceFileName returns the canonical file name for slice (z, t).
func SliceFileName(z, t int) string { return fmt.Sprintf("slice_t%04d_z%04d.raw", t, z) }

func nodeDirName(node int) string { return fmt.Sprintf("node%03d", node) }

// Write declusters the volume across nodes storage-node subdirectories of
// dir with the paper's round-robin policy, creating the directory tree,
// slice files, per-node index files and the dataset header. It returns the
// header.
func Write(dir string, v *volume.Volume, nodes int) (*Meta, error) {
	return WriteDistributed(dir, v, nodes, RoundRobinDist)
}

// WriteDistributed is Write with an explicit declustering policy.
func WriteDistributed(dir string, v *volume.Volume, nodes int, dist Distribution) (*Meta, error) {
	return writeDataset(dirWriter{dir: dir}, v, nodes, dist)
}

// blobWriter is the write half of the storage abstraction: the dataset
// writer targets it so the same layout lands on a local directory tree
// (dirWriter) or in memory (MemBackend). Names are slash-separated paths
// relative to the dataset root.
type blobWriter interface {
	WriteFile(name string, data []byte) error
}

// dirWriter writes blobs atomically under a root directory, creating parent
// directories as needed.
type dirWriter struct{ dir string }

func (w dirWriter) WriteFile(name string, data []byte) error {
	path := filepath.Join(w.dir, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicWriteFile(path, data)
}

// writeDataset declusters the volume onto any blob writer in the canonical
// layout: slice files, per-node index files with checksum columns, and the
// header last (a crash at any earlier point leaves a root without
// dataset.json, which Open rejects outright instead of serving a partial
// dataset).
func writeDataset(w blobWriter, v *volume.Volume, nodes int, dist Distribution) (*Meta, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("dataset: node count %d must be >= 1", nodes)
	}
	if dist < RoundRobinDist || dist > SliceModDist {
		return nil, fmt.Errorf("dataset: invalid distribution %d", int(dist))
	}
	lo, hi := v.MinMax()
	meta := &Meta{Version: FormatVersion, Dims: v.Dims, Nodes: nodes, Min: lo, Max: hi, Dist: dist, Checksums: true}

	indexes := make([][]SliceRef, nodes)
	X, Y := v.Dims[0], v.Dims[1]
	buf := make([]byte, 2*X*Y)
	for t := 0; t < v.Dims[3]; t++ {
		for z := 0; z < v.Dims[2]; z++ {
			node := OwnerNode(meta, z, t)
			ref := SliceRef{File: SliceFileName(z, t), T: t, Z: z}
			sl := v.Slice(z, t)
			for i, val := range sl {
				binary.LittleEndian.PutUint16(buf[2*i:], val)
			}
			ref.CRC, ref.HasCRC = crc32.Checksum(buf, castagnoli), true
			data := make([]byte, len(buf))
			copy(data, buf)
			if err := w.WriteFile(nodeDirName(node)+"/"+ref.File, data); err != nil {
				return nil, fmt.Errorf("dataset: writing slice: %w", err)
			}
			indexes[node] = append(indexes[node], ref)
		}
	}
	for node, refs := range indexes {
		if err := writeIndex(w, nodeDirName(node)+"/index.txt", refs); err != nil {
			return nil, err
		}
	}
	hdr, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if err := w.WriteFile("dataset.json", append(hdr, '\n')); err != nil {
		return nil, fmt.Errorf("dataset: writing header: %w", err)
	}
	return meta, nil
}

func writeIndex(w blobWriter, name string, refs []SliceRef) error {
	var b strings.Builder
	for _, r := range refs {
		if r.HasCRC {
			fmt.Fprintf(&b, "%s %d %d %08x\n", r.File, r.T, r.Z, r.CRC)
		} else {
			fmt.Fprintf(&b, "%s %d %d\n", r.File, r.T, r.Z)
		}
	}
	if err := w.WriteFile(name, []byte(b.String())); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// atomicWriteFile publishes data at path via write-temp → fsync → rename, so
// a crash mid-write leaves at worst an orphaned "*.tmp" the readers never
// open — never a short or torn file under the final name.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Store provides read access to a dataset through a storage backend.
type Store struct {
	// Dir is the local root directory when the backend is local-FS (possibly
	// behind a cache layer), "" otherwise. Retained for callers that poke the
	// on-disk layout directly (corruption injection, node-dir tooling).
	Dir  string
	Meta Meta
	be   Backend
}

// Open reads the dataset header of a local directory and returns a store —
// the original entry point, now a thin shim over the backend machinery with
// the default file-descriptor cache.
func Open(dir string) (*Store, error) {
	return OpenBackend(context.Background(), NewLocalBackend(dir, 0))
}

// OpenBackend reads the dataset header through the given backend and returns
// a store whose reads go through it. ctx bounds the header fetch and is not
// retained. The store owns the backend; Close releases it.
func OpenBackend(ctx context.Context, be Backend) (*Store, error) {
	raw, err := be.ReadFile(ctx, "dataset.json")
	if err != nil {
		if errors.Is(err, ErrBackendUnavailable) {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("dataset: invalid header: %w", err)
	}
	if meta.Version != FormatVersion {
		return nil, fmt.Errorf("dataset: unsupported format version %d", meta.Version)
	}
	if meta.Nodes < 1 || volume.NumVoxels(meta.Dims) <= 0 {
		return nil, fmt.Errorf("dataset: corrupt header: %+v", meta)
	}
	return &Store{Dir: localDirOf(be), Meta: meta, be: be}, nil
}

// Backend returns the store's storage backend.
func (s *Store) Backend() Backend { return s.be }

// Stats returns the backend's I/O and cache counters.
func (s *Store) Stats() Stats { return s.be.Stats() }

// Close releases the backend (cached file handles, idle connections). Reads
// after Close fail.
func (s *Store) Close() error { return s.be.Close() }

// WithCache returns a store over the same dataset whose reads go through a
// fixed-size block cache of blocks × blockSize bytes (blockSize 0 selects
// DefaultCacheBlockSize) layered over this store's backend. The two stores
// share the backend; close only one of them.
func (s *Store) WithCache(blockSize, blocks int) (*Store, error) {
	cb, err := NewCachedBackend(s.be, blockSize, blocks)
	if err != nil {
		return nil, err
	}
	return &Store{Dir: s.Dir, Meta: s.Meta, be: cb}, nil
}

// NodeDir returns the local directory of the given storage node. Meaningful
// only for local-FS backends (Dir != "").
func (s *Store) NodeDir(node int) string { return filepath.Join(s.Dir, nodeDirName(node)) }

// nodeObjectName returns the backend name of a file in a node's directory.
func nodeObjectName(node int, file string) string { return nodeDirName(node) + "/" + file }

// NodeIndex parses the node's index file and returns its slice refs sorted
// by (T, Z).
func (s *Store) NodeIndex(node int) ([]SliceRef, error) {
	return s.NodeIndexContext(context.Background(), node)
}

// NodeIndexContext is NodeIndex bounded by ctx.
func (s *Store) NodeIndexContext(ctx context.Context, node int) ([]SliceRef, error) {
	if node < 0 || node >= s.Meta.Nodes {
		return nil, fmt.Errorf("dataset: node %d out of range [0, %d)", node, s.Meta.Nodes)
	}
	raw, err := s.be.ReadFile(ctx, nodeObjectName(node, "index.txt"))
	if err != nil {
		if errors.Is(err, ErrBackendUnavailable) {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: %w", err)
	}
	refs, err := parseIndex(node, raw, s.Meta.Dims)
	if err != nil {
		return nil, err
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].T != refs[j].T {
			return refs[i].T < refs[j].T
		}
		return refs[i].Z < refs[j].Z
	})
	return refs, nil
}

// parseIndex parses one node's index file: lines of "<file> <t> <z>" with an
// optional fourth CRC-32C hex column. Slice coordinates are range-checked
// against dims. Shared by the store and the format fuzz tests.
func parseIndex(node int, raw []byte, dims [4]int) ([]SliceRef, error) {
	var refs []SliceRef
	sc := bufio.NewScanner(bytes.NewReader(raw))
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("dataset: node %d index line %d: want 3 or 4 fields, got %d", node, line, len(fields))
		}
		var r SliceRef
		r.File = fields[0]
		var err error
		if r.T, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("dataset: node %d index line %d: %w", node, line, err)
		}
		if r.Z, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("dataset: node %d index line %d: %w", node, line, err)
		}
		if len(fields) == 4 {
			crc, err := strconv.ParseUint(fields[3], 16, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: node %d index line %d: bad checksum: %w", node, line, err)
			}
			r.CRC, r.HasCRC = uint32(crc), true
		}
		if r.T < 0 || r.T >= dims[3] || r.Z < 0 || r.Z >= dims[2] {
			return nil, fmt.Errorf("dataset: node %d index line %d: slice (z=%d, t=%d) out of range", node, line, r.Z, r.T)
		}
		refs = append(refs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return refs, nil
}

// rawBufPool recycles the scratch byte buffers the slice readers decode out
// of, so steady-state reads allocate only their output (or nothing, when the
// caller supplies it).
var rawBufPool sync.Pool // holds *[]byte

func getRawBuf(n int) []byte {
	if p, ok := rawBufPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func putRawBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	rawBufPool.Put(&b)
}

// DecodeUint16s decodes little-endian uint16s from src into dst. The hot
// loop reads 8 bytes (four values) per iteration instead of one 2-byte load
// per value; callers guarantee len(src) ≥ 2·len(dst).
func DecodeUint16s(dst []uint16, src []byte) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		w := binary.LittleEndian.Uint64(src[2*i:])
		dst[i] = uint16(w)
		dst[i+1] = uint16(w >> 16)
		dst[i+2] = uint16(w >> 32)
		dst[i+3] = uint16(w >> 48)
	}
	for ; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint16(src[2*i:])
	}
}

// sliceReadErr classifies a backend failure while reading a slice: transport
// and storage-layer failures (ErrBackendUnavailable) pass through unmarked —
// they say nothing about this slice and must abort even under SkipDegraded —
// while everything else (missing, truncated, short-read files) is per-slice
// degraded data.
func sliceReadErr(format string, args ...any) error {
	for _, a := range args {
		err, ok := a.(error)
		if !ok {
			continue
		}
		if errors.Is(err, ErrBackendUnavailable) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf(format, args...)
		}
	}
	return degradedf(format, args...)
}

// ReadSlice reads one whole 2D slice from the given node.
func (s *Store) ReadSlice(node int, ref SliceRef) ([]uint16, error) {
	return s.ReadSliceContext(context.Background(), node, ref)
}

// ReadSliceContext is ReadSlice bounded by ctx.
func (s *Store) ReadSliceContext(ctx context.Context, node int, ref SliceRef) ([]uint16, error) {
	X, Y := s.Meta.Dims[0], s.Meta.Dims[1]
	out := make([]uint16, X*Y)
	if err := s.ReadSliceIntoContext(ctx, node, ref, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSliceInto is ReadSlice decoding into the caller's X·Y-value buffer, so
// a streaming reader reuses one buffer per window instead of allocating the
// raw file plus the output on every call.
//
// When ref carries a checksum (datasets written with Meta.Checksums), the
// file's bytes are verified against it, so silent bit corruption surfaces as
// an ErrDegradedData-wrapped error — as do missing, truncated and
// short-read slices. Note that only whole-slice reads verify checksums; the
// positioned row reads of ReadSliceRegionInto detect truncation but not
// bit flips.
func (s *Store) ReadSliceInto(node int, ref SliceRef, out []uint16) error {
	return s.ReadSliceIntoContext(context.Background(), node, ref, out)
}

// ReadSliceIntoContext is ReadSliceInto bounded by ctx.
func (s *Store) ReadSliceIntoContext(ctx context.Context, node int, ref SliceRef, out []uint16) error {
	X, Y := s.Meta.Dims[0], s.Meta.Dims[1]
	if len(out) != X*Y {
		return fmt.Errorf("dataset: slice buffer holds %d values, want %d", len(out), X*Y)
	}
	obj, err := s.be.Open(ctx, nodeObjectName(node, ref.File))
	if err != nil {
		return sliceReadErr("slice %s: %w", ref.File, err)
	}
	defer obj.Close()
	if obj.Size() != int64(2*X*Y) {
		return degradedf("slice %s has %d bytes, want %d", ref.File, obj.Size(), 2*X*Y)
	}
	raw := getRawBuf(2 * X * Y)
	defer putRawBuf(raw)
	if n, err := obj.ReadAt(ctx, raw, 0); err != nil && !(err == io.EOF && n == len(raw)) {
		return sliceReadErr("reading %s: %w", ref.File, err)
	} else if n != len(raw) {
		return degradedf("reading %s: short read %d of %d bytes", ref.File, n, len(raw))
	}
	if ref.HasCRC {
		if got := crc32.Checksum(raw, castagnoli); got != ref.CRC {
			return degradedf("slice %s checksum mismatch: got %08x, want %08x", ref.File, got, ref.CRC)
		}
	}
	DecodeUint16s(out, raw)
	return nil
}

// ReadSliceRegion reads the 2D subsection [x0, x1)×[y0, y1) of a slice using
// positioned reads — the paper's "RFR filter reads a 2D subsection of each
// image slice". Row-sized reads keep the seek count at one per row.
func (s *Store) ReadSliceRegion(node int, ref SliceRef, x0, x1, y0, y1 int) ([]uint16, error) {
	return s.ReadSliceRegionContext(context.Background(), node, ref, x0, x1, y0, y1)
}

// ReadSliceRegionContext is ReadSliceRegion bounded by ctx.
func (s *Store) ReadSliceRegionContext(ctx context.Context, node int, ref SliceRef, x0, x1, y0, y1 int) ([]uint16, error) {
	X, Y := s.Meta.Dims[0], s.Meta.Dims[1]
	if x0 < 0 || x1 > X || y0 < 0 || y1 > Y || x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("dataset: region [%d,%d)x[%d,%d) outside slice %dx%d", x0, x1, y0, y1, X, Y)
	}
	out := make([]uint16, (x1-x0)*(y1-y0))
	if err := s.ReadSliceRegionIntoContext(ctx, node, ref, x0, x1, y0, y1, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSliceRegionInto is ReadSliceRegion decoding into the caller's
// (x1−x0)·(y1−y0)-value buffer.
func (s *Store) ReadSliceRegionInto(node int, ref SliceRef, x0, x1, y0, y1 int, out []uint16) error {
	return s.ReadSliceRegionIntoContext(context.Background(), node, ref, x0, x1, y0, y1, out)
}

// ReadSliceRegionIntoContext is ReadSliceRegionInto bounded by ctx.
func (s *Store) ReadSliceRegionIntoContext(ctx context.Context, node int, ref SliceRef, x0, x1, y0, y1 int, out []uint16) error {
	X, Y := s.Meta.Dims[0], s.Meta.Dims[1]
	if x0 < 0 || x1 > X || y0 < 0 || y1 > Y || x0 >= x1 || y0 >= y1 {
		return fmt.Errorf("dataset: region [%d,%d)x[%d,%d) outside slice %dx%d", x0, x1, y0, y1, X, Y)
	}
	w := x1 - x0
	if len(out) != w*(y1-y0) {
		return fmt.Errorf("dataset: region buffer holds %d values, want %d", len(out), w*(y1-y0))
	}
	obj, err := s.be.Open(ctx, nodeObjectName(node, ref.File))
	if err != nil {
		return sliceReadErr("slice %s: %w", ref.File, err)
	}
	defer obj.Close()
	row := getRawBuf(2 * w)
	defer putRawBuf(row)
	for y := y0; y < y1; y++ {
		off := int64(2 * (y*X + x0))
		// ReadAt returns a non-nil error (io.EOF included) whenever it reads
		// fewer than len(row) bytes, so a truncated slice file surfaces here
		// instead of yielding silently zeroed rows.
		if n, err := obj.ReadAt(ctx, row, off); err != nil && !(err == io.EOF && n == len(row)) {
			return sliceReadErr("slice %s row %d: read %d of %d bytes at offset %d: %w",
				ref.File, y, n, len(row), off, err)
		}
		DecodeUint16s(out[(y-y0)*w:(y-y0+1)*w], row)
	}
	return nil
}

// ReadVolume reads the entire dataset back into memory (the optimization
// footnote 1 of the paper applies only to datasets that fit in memory; this
// is also the test oracle).
func (s *Store) ReadVolume() (*volume.Volume, error) {
	return s.ReadVolumeContext(context.Background())
}

// ReadVolumeContext is ReadVolume bounded by ctx.
func (s *Store) ReadVolumeContext(ctx context.Context) (*volume.Volume, error) {
	v := volume.NewVolume(s.Meta.Dims)
	for node := 0; node < s.Meta.Nodes; node++ {
		refs, err := s.NodeIndexContext(ctx, node)
		if err != nil {
			return nil, err
		}
		for _, ref := range refs {
			sl, err := s.ReadSliceContext(ctx, node, ref)
			if err != nil {
				return nil, err
			}
			copy(v.Slice(ref.Z, ref.T), sl)
		}
	}
	return v, nil
}

// Validate checks that the union of all node indexes covers every (z, t)
// slice exactly once and that each slice is on its round-robin owner node.
func (s *Store) Validate() error {
	seen := make(map[[2]int]int)
	for node := 0; node < s.Meta.Nodes; node++ {
		refs, err := s.NodeIndex(node)
		if err != nil {
			return err
		}
		for _, ref := range refs {
			key := [2]int{ref.Z, ref.T}
			if prev, dup := seen[key]; dup {
				return fmt.Errorf("dataset: slice (z=%d, t=%d) indexed on nodes %d and %d", ref.Z, ref.T, prev, node)
			}
			seen[key] = node
			if want := OwnerNode(&s.Meta, ref.Z, ref.T); want != node {
				return fmt.Errorf("dataset: slice (z=%d, t=%d) on node %d, %v owner is %d", ref.Z, ref.T, node, s.Meta.Dist, want)
			}
		}
	}
	if want := s.Meta.Dims[2] * s.Meta.Dims[3]; len(seen) != want {
		return fmt.Errorf("dataset: %d slices indexed, want %d", len(seen), want)
	}
	return nil
}

// URL-addressed dataset opening: the redesigned entry point of the dataset
// API. dataset.Open(dir) remains as a thin local-FS shim over the same
// machinery.

package dataset

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"haralick4d/internal/resilience"
)

// URLOptions tunes OpenURL and NewBackend.
type URLOptions struct {
	// CacheBlocks enables the block-cache layer between the backend and the
	// readers: a fixed budget of this many blocks, shared across all
	// objects. 0 disables caching (the default for local reads).
	CacheBlocks int
	// CacheBlockSize is the cache's block granularity in bytes; 0 selects
	// DefaultCacheBlockSize. Meaningful only with CacheBlocks > 0.
	CacheBlockSize int
	// HTTPClient overrides http.DefaultClient for http(s) backends — the
	// seam for transport fault injection and custom TLS/timeouts.
	HTTPClient *http.Client
	// HTTPAttempts bounds tries per HTTP request; 0 selects
	// DefaultHTTPAttempts.
	HTTPAttempts int
	// LocalMaxOpen bounds the local backend's file-descriptor cache; 0
	// selects DefaultMaxOpenFiles, negative disables handle reuse.
	LocalMaxOpen int
	// Resilience attaches a pre-built — possibly shared — resilience set
	// (circuit breaker, retry budget, hedger) to http(s) backends. The
	// daemon passes per-host sets here so every job reading one host
	// shares one breaker and one storm-proof retry budget.
	Resilience *resilience.Set
	// ResiliencePolicy builds a private set for this backend when
	// Resilience is nil — the CLI path, parsed from -breaker,
	// -retry-budget and -hedge-after. Nil (with Resilience nil) leaves the
	// backend's plain retry loop untouched.
	ResiliencePolicy *resilience.Policy
	// ServeStale converts transport-unavailable positioned reads into
	// ErrDegradedData, so a run with fault-policy skip-degraded rides out
	// a backend brownout on cached blocks and reports the unreachable ROIs
	// degraded instead of aborting. Header and index reads still abort.
	ServeStale bool
}

// ParseURL splits and validates a dataset URL. Accepted forms:
//
//	/path/to/dir  or  file:///path/to/dir   local directory
//	mem://name                              registered in-memory backend
//	http://host/prefix, https://...         remote range-read backend
//
// A string without "://" is a local path. The returned rest is the
// scheme-specific remainder (path, registry name, or the full URL for
// http).
func ParseURL(raw string) (scheme, rest string, err error) {
	if raw == "" {
		return "", "", fmt.Errorf("dataset: empty dataset URL")
	}
	i := strings.Index(raw, "://")
	if i < 0 {
		return "file", raw, nil
	}
	scheme = raw[:i]
	rest = raw[i+len("://"):]
	switch scheme {
	case "file":
		if rest == "" {
			return "", "", fmt.Errorf("dataset: URL %q has an empty path", raw)
		}
		return scheme, rest, nil
	case "mem":
		if rest == "" || strings.ContainsAny(rest, "/") {
			return "", "", fmt.Errorf("dataset: mem URL %q must be mem://<registered-name>", raw)
		}
		return scheme, rest, nil
	case "http", "https":
		if rest == "" || strings.HasPrefix(rest, "/") {
			return "", "", fmt.Errorf("dataset: URL %q has no host", raw)
		}
		return scheme, raw, nil
	}
	return "", "", fmt.Errorf("dataset: unknown dataset URL scheme %q (want file, mem, http or https)", scheme)
}

// NewBackend resolves a dataset URL to a Backend, layering the block cache
// on when o asks for one.
func NewBackend(rawurl string, o *URLOptions) (Backend, error) {
	if o == nil {
		o = &URLOptions{}
	}
	scheme, rest, err := ParseURL(rawurl)
	if err != nil {
		return nil, err
	}
	var be Backend
	switch scheme {
	case "file":
		be = NewLocalBackend(rest, o.LocalMaxOpen)
	case "mem":
		mb, ok := LookupMem(rest)
		if !ok {
			return nil, fmt.Errorf("dataset: no in-memory backend registered as %q (use RegisterMem)", rest)
		}
		be = mb
	default: // http, https — ParseURL admits nothing else
		hb, err := NewHTTPBackend(rest, o.HTTPClient, o.HTTPAttempts)
		if err != nil {
			return nil, err
		}
		if o.Resilience != nil {
			hb.SetResilience(o.Resilience)
		} else if s := o.ResiliencePolicy.NewSet(); s != nil {
			hb.SetResilience(s)
		}
		be = hb
	}
	if o.CacheBlocks > 0 {
		cb, err := NewCachedBackend(be, o.CacheBlockSize, o.CacheBlocks)
		if err != nil {
			return nil, err
		}
		be = cb
	} else if o.CacheBlocks < 0 {
		return nil, fmt.Errorf("dataset: cache capacity %d blocks must not be negative", o.CacheBlocks)
	} else if o.CacheBlockSize != 0 {
		return nil, fmt.Errorf("dataset: cache block size set without a cache block budget")
	}
	if o.ServeStale {
		// Outermost, above the cache: cached blocks keep serving during a
		// brownout; only reads that need the sick backend degrade.
		be = newStaleBackend(be)
	}
	return be, nil
}

// OpenURL opens a dataset by URL: it resolves the backend (see ParseURL),
// reads and checks the header, and returns a Store whose reads go through
// that backend. ctx bounds the header fetch and is not retained.
func OpenURL(ctx context.Context, rawurl string, o *URLOptions) (*Store, error) {
	be, err := NewBackend(rawurl, o)
	if err != nil {
		return nil, err
	}
	return OpenBackend(ctx, be)
}
